module alamr

go 1.22
