// Gpdemo: the Gaussian-process regression layer on its own — fit a noisy 1D
// function, print the posterior mean and uncertainty band as an ASCII chart,
// and demonstrate hyperparameter optimization and incremental updates.
//
//	go run ./examples/gpdemo
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
	"alamr/internal/report"
)

func truth(x float64) float64 { return math.Sin(2*math.Pi*x) * math.Exp(-x) }

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(4))

	// Noisy training data on [0, 2].
	n := 12
	x := mat.NewDense(n, 1, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := 2 * rng.Float64()
		x.Set(i, 0, v)
		y[i] = truth(v) + 0.03*rng.NormFloat64()
	}

	g := gp.New(kernel.NewRBF(0.3, 1), gp.Config{Noise: 0.1, NormalizeY: true, Seed: 8})
	if err := g.Fit(x, y); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted kernel: %v, noise σ=%.3g, LML=%.2f\n", g.Kernel(), g.NoiseStd(), g.LogMarginalLikelihood())

	// Posterior over a dense grid.
	m := 64
	grid := mat.NewDense(m, 1, nil)
	for i := 0; i < m; i++ {
		grid.Set(i, 0, 2*float64(i)/float64(m-1))
	}
	mean, std := g.Predict(grid)
	upper := make([]float64, m)
	lower := make([]float64, m)
	exact := make([]float64, m)
	for i := 0; i < m; i++ {
		upper[i] = mean[i] + 2*std[i]
		lower[i] = mean[i] - 2*std[i]
		exact[i] = truth(grid.At(i, 0))
	}
	fmt.Print(report.ASCIIChart("GP posterior (a=mean, b/c=±2σ, d=truth)",
		[]string{"mean", "+2σ", "-2σ", "truth"},
		[][]float64{mean, upper, lower, exact}, 64, 18))

	// Incremental update: add one decisive observation where σ peaks.
	_, widest := maxIdx(std)
	point := grid.At(widest, 0)
	fmt.Printf("\nappending one observation at the most uncertain x=%.3f\n", point)
	if err := g.Append([]float64{point}, truth(point)); err != nil {
		log.Fatal(err)
	}
	_, stdAfter := g.Predict(grid)
	fmt.Printf("σ at that point: %.4f -> %.4f\n", std[widest], stdAfter[widest])
}

func maxIdx(v []float64) (float64, int) {
	best, idx := v[0], 0
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}
