// Surrogates: the three surrogate families side by side — the exact GP the
// paper uses, the treed local-model GP of its future work, and the sparse
// subset-of-regressors GP of its related work — fitted to the same AMR cost
// data, with accuracy, fit time, and model persistence demonstrated.
//
//	go run ./examples/surrogates
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/gp"
	"alamr/internal/kernel"
)

func main() {
	log.SetFlags(0)

	fmt.Println("generating a 300-job campaign...")
	ds, err := dataset.Generate(dataset.GenConfig{
		Seed: 31, NumJobs: 300, NumUnique: 250, RefNx: 64, RefTEnd: 0.15, RefSnaps: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	perm := rand.New(rand.NewSource(7)).Perm(ds.Len())
	train, test := perm[:220], perm[220:]
	xTrain, yTrain := ds.Features(train), ds.LogCost(train)
	xTest, costTest := ds.Features(test), ds.Cost(test)

	models := []struct {
		name  string
		model gp.Model
	}{
		{"exact GP", gp.New(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true, Seed: 1})},
		{"treed GP (leaf 64)", gp.NewTreed(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true, Seed: 1}, 64)},
		{"sparse GP (m=48)", gp.NewSparse(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true, Seed: 1}, 48)},
	}
	for _, m := range models {
		t0 := time.Now()
		if err := m.model.Fit(xTrain, yTrain); err != nil {
			log.Fatal(err)
		}
		fitTime := time.Since(t0)
		mu, _ := m.model.Predict(xTest)
		var mse float64
		for i, v := range mu {
			d := math.Pow(10, v) - costTest[i]
			mse += d * d
		}
		fmt.Printf("%-20s fit %8v   test RMSE %.4f node-hours\n",
			m.name, fitTime.Round(time.Millisecond), math.Sqrt(mse/float64(len(mu))))
	}

	// Persistence: save the exact GP, reload it, verify predictions agree.
	exact := models[0].model.(*gp.GP)
	path := "cost_model.json"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := exact.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	defer os.Remove(path)
	f2, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	back, err := gp.Load(f2)
	f2.Close()
	if err != nil {
		log.Fatal(err)
	}
	m1, _ := exact.Predict(xTest)
	m2, _ := back.Predict(xTest)
	var maxDiff float64
	for i := range m1 {
		maxDiff = math.Max(maxDiff, math.Abs(m1[i]-m2[i]))
	}
	fmt.Printf("\nsaved %s and reloaded it: max prediction difference %.2g\n", path, maxDiff)
}
