// Online: the true "online" mode the paper contrasts with its offline
// simulator — the learner proposes configurations from the full 1920-point
// design grid and a simulation-backed lab runs each one on demand (real
// shock-bubble hydrodynamics behind a cache, plus the Edison machine model).
//
// Watch two things: the one-step-ahead prediction error falling as the model
// learns, and the reference-solution cache staying small because the
// cost-efficient policy prefers physics it has already paid for.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/online"
)

func main() {
	log.SetFlags(0)

	lab := online.NewSimLab(online.SimLabConfig{Seed: 5})
	fmt.Println("online campaign: RGMA proposes, the simulated cluster runs")

	res, err := online.Run(lab, online.Config{
		Policy:         core.RGMA{},
		MaxExperiments: 25,
		Budget:         2.0, // node-hours
		MemLimitMB:     1.0,
		Seed:           17,
		InitDesign: []dataset.Combo{
			// The experimenter's warm-up run (paper: "verify correctness
			// first, then collect performance in a sequence of runs").
			{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nran %d experiments (stop: %s), %d physics references computed\n",
		len(res.Jobs), res.Reason, lab.NumReferenceRuns())
	n := len(res.CumCost)
	fmt.Printf("budget spent: %.3g node-hours, regret: %.3g\n", res.CumCost[n-1], res.CumRegret[n-1])
	fmt.Printf("one-step-ahead cost MAPE over the campaign: %.0f%%\n", 100*res.OneStepMAPE())

	fmt.Println("\nselection log (predicted vs actual cost):")
	for i := range res.ActualCost {
		j := res.Jobs[i+1] // Jobs[0] is the init design
		marker := ""
		if res.Violation[i] {
			marker = "  << exceeded memory limit"
		}
		fmt.Printf("  #%02d p=%-2d mx=%-2d ml=%d r0=%.1f rho=%.2f  pred %.4f  actual %.4f nh%s\n",
			i+1, j.P, j.Mx, j.MaxLevel, j.R0, j.RhoIn,
			res.PredictedCost[i], res.ActualCost[i], marker)
	}
}
