// Memlimit: the two-phase workflow the paper's §V-B simulates.
//
// Phase 1 runs a handful of exploratory simulations on a "bigmem" queue with
// no memory restriction (the Initial partition). Phase 2 switches to a
// regular queue with a hard per-process memory limit and lets memory-aware
// AL (RGMA) pick all further experiments, comparing it against the
// memory-oblivious RandGoodness on the same pool.
//
//	go run ./examples/memlimit
package main

import (
	"fmt"
	"log"
	"math/rand"

	"alamr/internal/core"
	"alamr/internal/dataset"
)

func main() {
	log.SetFlags(0)

	fmt.Println("generating a 180-job campaign...")
	ds, err := dataset.Generate(dataset.GenConfig{
		Seed: 21, NumJobs: 180, NumUnique: 150, RefNx: 64, RefTEnd: 0.15, RefSnaps: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	limit := core.PaperMemLimitMB(ds)
	fmt.Printf("phase 2 queue limit: %.3g MB per process\n", limit)
	over := 0
	for _, j := range ds.Jobs {
		if j.MemMB >= limit {
			over++
		}
	}
	fmt.Printf("%d of %d jobs in the pool would crash on the phase-2 queue\n\n", over, ds.Len())

	// One shared partition: phase 1 = Init (20 jobs, run on bigmem), phase 2
	// = Active under the limit.
	part, err := dataset.Split(ds, 20, 40, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}

	run := func(p core.Policy) *core.Trajectory {
		tr, err := core.RunTrajectory(ds, part, core.LoopConfig{
			Policy:        p,
			MaxIterations: 80,
			MemLimitMB:    limit,
			Seed:          9,
		})
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	aware := run(core.RGMA{})
	oblivious := run(core.RandGoodness{})

	summarize := func(name string, tr *core.Trajectory) {
		n := tr.Iterations()
		crashes := 0
		for _, v := range tr.Violation {
			if v {
				crashes++
			}
		}
		fmt.Printf("%-14s iterations=%-3d crashes=%-2d wasted=%.4g nh  total=%.4g nh  final cost RMSE=%.4g\n",
			name, n, crashes, tr.CumRegret[n-1], tr.CumCost[n-1], tr.CostRMSE[n-1])
	}
	fmt.Println("phase 2 results (crash = selected job exceeded the queue limit):")
	summarize("RGMA", aware)
	summarize("RandGoodness", oblivious)

	fmt.Println("\nRGMA spends those node-hours on jobs that finish; the oblivious")
	fmt.Println("policy burns its budget on jobs the queue kills at the last moment.")
}
