// Paramsweep: use the cost surrogate trained by active learning to answer
// the question the paper's introduction motivates — "which configurations
// can I afford?" — without running them.
//
// The example trains a cost model with the cost-efficient RandGoodness
// policy, then sweeps the full 1920-combination grid through the surrogate
// and prints (a) the predicted-cheapest configurations at the highest
// resolution and (b) everything predicted to fit a node-hour budget.
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"alamr/internal/dataset"
	"alamr/internal/gp"
	"alamr/internal/kernel"
)

// prediction pairs a grid combination with its surrogate prediction.
type prediction struct {
	combo    dataset.Combo
	costNH   float64
	sigmaLog float64
}

func main() {
	log.SetFlags(0)

	fmt.Println("generating a 200-job campaign...")
	ds, err := dataset.Generate(dataset.GenConfig{
		Seed: 11, NumJobs: 200, NumUnique: 170, RefNx: 64, RefTEnd: 0.15, RefSnaps: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Train a cost model on a random 140-job subset (playing the role of
	// the measurements AL would have selected).
	perm := rand.New(rand.NewSource(3)).Perm(ds.Len())
	train := perm[:140]
	g := gp.New(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true, Seed: 5})
	if err := g.Fit(ds.Features(train), ds.LogCost(train)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost model trained on %d jobs (LML %.1f)\n\n", len(train), g.LogMarginalLikelihood())

	// Sweep the full grid through the surrogate.
	combos := dataset.AllCombos()
	preds := make([]prediction, 0, len(combos))
	for _, c := range combos {
		f := dataset.ScaleFeatures(dataset.Job{P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn})
		mu, sigma := g.PredictOne(f[:])
		preds = append(preds, prediction{combo: c, costNH: math.Pow(10, mu), sigmaLog: sigma})
	}

	// (a) Cheapest predicted configurations at the deepest refinement.
	deep := preds[:0:0]
	for _, p := range preds {
		if p.combo.MaxLevel == 6 && p.combo.Mx == 32 {
			deep = append(deep, p)
		}
	}
	sort.Slice(deep, func(i, j int) bool { return deep[i].costNH < deep[j].costNH })
	fmt.Println("cheapest predicted maxlevel=6, mx=32 configurations:")
	for i := 0; i < 5 && i < len(deep); i++ {
		c := deep[i].combo
		fmt.Printf("  p=%-2d r0=%.1f rhoin=%.2f  -> %.3g node-hours (log10 σ=%.2f)\n",
			c.P, c.R0, c.RhoIn, deep[i].costNH, deep[i].sigmaLog)
	}

	// (b) Budget query: everything under 0.05 node-hours at maxlevel >= 5.
	const budget = 0.05
	count := 0
	for _, p := range preds {
		if p.combo.MaxLevel >= 5 && p.costNH <= budget {
			count++
		}
	}
	fmt.Printf("\n%d of %d maxlevel>=5 configurations predicted to fit a %.2f node-hour budget\n",
		count, countLevel(preds, 5), budget)

	// Sanity: compare surrogate vs truth on the held-out jobs.
	test := perm[140:]
	xTest := ds.Features(test)
	truth := ds.Cost(test)
	mu, _ := g.Predict(xTest)
	var rel float64
	for i := range mu {
		rel += math.Abs(math.Pow(10, mu[i])-truth[i]) / truth[i]
	}
	fmt.Printf("mean relative error on %d held-out jobs: %.1f%%\n", len(test), 100*rel/float64(len(test)))
}

func countLevel(preds []prediction, minLevel int) int {
	n := 0
	for _, p := range preds {
		if p.combo.MaxLevel >= minLevel {
			n++
		}
	}
	return n
}
