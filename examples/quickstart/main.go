// Quickstart: generate a small simulated AMR performance campaign, run one
// memory-aware active-learning trajectory on it, and print what the learner
// selected and how its models improved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"alamr/internal/core"
	"alamr/internal/dataset"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a reduced campaign (the full paper-scale campaign is 600
	//    jobs; amr-gen builds that one). This runs real shock-bubble
	//    hydrodynamics behind the scenes, so expect a few seconds.
	fmt.Println("generating a 150-job campaign (reduced scale)...")
	ds, err := dataset.Generate(dataset.GenConfig{
		Seed:      7,
		NumJobs:   150,
		NumUnique: 120,
		RefNx:     64,
		RefTEnd:   0.15,
		RefSnaps:  6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d jobs, cost %.3g..%.3g node-hours\n",
		ds.Len(), minOf(ds.Cost(nil)), maxOf(ds.Cost(nil)))

	// 2. Partition: 30 test, 10 initial, the rest form the Active pool the
	//    learner selects from.
	part, err := dataset.Split(ds, 10, 30, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run cost- and memory-aware AL (the paper's RGMA policy) with the
	//    paper's memory-limit rule.
	limit := core.PaperMemLimitMB(ds)
	fmt.Printf("memory limit: %.3g MB\n", limit)
	tr, err := core.RunTrajectory(ds, part, core.LoopConfig{
		Policy:        core.RGMA{},
		MaxIterations: 60,
		MemLimitMB:    limit,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outcome.
	n := tr.Iterations()
	fmt.Printf("\nran %d AL iterations (stop: %s)\n", n, tr.Reason)
	fmt.Printf("cost-model RMSE: %.4g -> %.4g node-hours\n", tr.InitCostRMSE, tr.CostRMSE[n-1])
	fmt.Printf("mem-model  RMSE: %.4g -> %.4g MB\n", tr.InitMemRMSE, tr.MemRMSE[n-1])
	fmt.Printf("total cost of selected experiments: %.4g node-hours\n", tr.CumCost[n-1])
	violations := 0
	for _, v := range tr.Violation {
		if v {
			violations++
		}
	}
	fmt.Printf("memory-limit violations: %d (regret %.4g node-hours)\n", violations, tr.CumRegret[n-1])

	fmt.Println("\nfirst selections (cheap, memory-safe jobs first is the expected pattern):")
	for i := 0; i < 5 && i < n; i++ {
		j := ds.Jobs[tr.Selected[i]]
		fmt.Printf("  #%d: p=%-2d mx=%-2d maxlevel=%d r0=%.1f rhoin=%.2f -> %.4g nh, %.3g MB\n",
			i+1, j.P, j.Mx, j.MaxLevel, j.R0, j.RhoIn, j.CostNH, j.MemMB)
	}
}

func minOf(x []float64) float64 {
	m := x[0]
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(x []float64) float64 {
	m := x[0]
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}
