// Observability: run a reduced active-learning trajectory with the metrics
// registry and span tracer enabled, then inspect everything the campaign
// recorded about itself — live-style Prometheus series, the end-of-run
// digest, and the span trace.
//
//	go run ./examples/observability
//
// The long-running commands expose the same registry over HTTP instead:
//
//	al-run -data dataset.csv -metrics-addr 127.0.0.1:9090 -trace-out trace.jsonl
//	curl -s http://127.0.0.1:9090/metrics | grep alamr_
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/obs"
	"alamr/internal/report"
)

func main() {
	log.SetFlags(0)

	// 1. Enable observability for the whole process. Every instrumented
	//    package (core, gp, mat, faults, online) starts writing through its
	//    handles; with no Enable call all of that is a no-op.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{RingSize: 1024})
	obs.Enable(reg, tracer)
	defer obs.Disable()

	// 2. Generate a reduced campaign and run one RGMA trajectory on it —
	//    the same workload as examples/quickstart, now instrumented.
	fmt.Println("generating a 150-job campaign (reduced scale)...")
	ds, err := dataset.Generate(dataset.GenConfig{
		Seed:      7,
		NumJobs:   150,
		NumUnique: 120,
		RefNx:     64,
		RefTEnd:   0.15,
		RefSnaps:  6,
	})
	if err != nil {
		log.Fatal(err)
	}
	part, err := dataset.Split(ds, 10, 30, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := core.RunTrajectory(ds, part, core.LoopConfig{
		Policy:        core.RGMA{},
		MaxIterations: 60,
		MemLimitMB:    core.PaperMemLimitMB(ds),
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trajectory done: %d iterations, stop=%s\n\n", tr.Iterations(), tr.Reason)

	// 3. The Prometheus exposition — what a scraper would see. Print just
	//    the campaign-level series; the full dump is reg.WritePrometheus.
	fmt.Println("selected /metrics series:")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "alamr_campaign_") || strings.HasPrefix(line, "alamr_loop_iterations") ||
			strings.HasPrefix(line, "alamr_cache_hits") || strings.HasPrefix(line, "alamr_gp_") {
			fmt.Println("  " + line)
		}
	}

	// 4. The end-of-run digest: every non-zero counter and gauge, plus
	//    count/mean per active histogram.
	fmt.Println("\nobservability summary:")
	if err := report.ObsSummary(reg).Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 5. The span trace. The tracer keeps the most recent RingSize events;
	//    -trace-out streams all of them to a JSONL file instead.
	evs := tracer.Events()
	fmt.Printf("\ntrace ring holds %d events; last 5:\n", len(evs))
	for _, ev := range evs[max(0, len(evs)-5):] {
		fmt.Printf("  #%d %-8s %.3gms %s\n", ev.Seq, ev.Name, float64(ev.DurNS)/1e6, ev.Detail)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
