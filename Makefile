GO ?= go

.PHONY: all build test ci bench bench-al bench-scale bench-scale-full bench-scale-smoke fmt vet race chaos chaos-remote obs-check sweep-smoke serve-smoke docs-check fidelity-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Race runs use -short: the equivalence tests scale their sizes down so the
# instrumented binary stays within CI time budgets. faults and online carry
# the concurrency-sensitive fault-injection and checkpoint paths; engine
# carries the sweep worker pool. The second line re-runs the streamed-pool
# engine tests explicitly (-count=1, no -short): the shard-parallel Select
# lanes and their worker-count-invariance pins must face the race detector
# at full size on every CI pass, never satisfied from the test cache.
race:
	$(GO) test -race -short ./internal/mat ./internal/kernel ./internal/gp \
		./internal/core ./internal/engine ./internal/faults ./internal/online \
		./internal/remotelab ./internal/report
	$(GO) test -race -count=1 -run 'TestStream|TestGridSource|TestScaleSmoke|TestPredictIntoSerial' \
		./internal/engine ./internal/gp

# sweep-smoke drives a tiny 2x2 policy-by-seed grid through the unified
# campaign engine under the race detector: concurrent workers sharing the
# obs registry, per-campaign labeled series, deterministic results.
sweep-smoke:
	$(GO) test -race -count=1 -run 'TestSweepSmoke|TestCampaignObsNoInterleave' \
		./internal/engine

# chaos stress-tests the fault-tolerant campaign runtime: high fault rates
# across 10 seeds (CHAOS=1 widens TestOnlineChaos from 3 to 10 seeds), plus
# every fault-injection, retry, and checkpoint/resume test, under -race.
chaos:
	CHAOS=1 $(GO) test -race -count=1 \
		-run 'Chaos|Fault|Retry|Censor|Checkpoint|Resume|Backoff' \
		./internal/faults ./internal/online

# chaos-remote is the distributed-execution gate: a four-process worker
# fleet (the test binary re-exec'ing itself as al-worker bodies) with one
# worker SIGKILLed mid-job must finish the campaign bitwise identical to an
# unkilled fleet, and a campaign killed mid-flight must resume through a
# brand-new dispatcher to the identical Result — both under -race.
chaos-remote:
	$(GO) test -race -count=1 -run 'TestChaosWorkerKill|TestDispatcherCampaignKillResume' \
		./internal/remotelab

# obs-check gates the observability layer: vet over the instrumented
# packages, the metric-name lint (unique names, alamr_ prefix, every name
# bound at Enable), the <2% disabled-overhead bound on the scoring hot path,
# and the bitwise kill-and-resume contract with tracing enabled, under -race.
obs-check:
	$(GO) vet ./internal/obs ./cmd/...
	$(GO) test -run 'TestMetricNamesUnique|TestAllMetricNamesBound' ./internal/obs
	$(GO) test -run 'TestObsOverheadGate' ./internal/gp
	$(GO) test -race -count=1 -run 'TracingEnabled|ObsSummary' \
		./internal/online ./internal/report

# serve-smoke gates the campaign daemon (internal/serve + cmd/al-serve):
# the whole package under -race — concurrent multi-tenant campaigns bitwise
# identical to direct engine runs, fair-share/priority scheduling, queue
# backpressure, the HTTP validation table, and the SIGKILL-mid-flight
# subprocess test that must resume every campaign from its checkpoint to
# byte-identical results — then the load tester against an embedded daemon,
# gating p99 submit/poll latency and writing BENCH_serve.json.
serve-smoke:
	$(GO) test -race -count=1 ./internal/serve
	$(GO) run ./cmd/al-loadtest -data dataset.csv -campaigns 24 -out BENCH_serve.json

# fidelity-smoke gates the multi-fidelity layer under the race detector:
# the 2-level replay grid (co-kriging surrogate + cost-per-information
# acquisition through the concurrent sweep engine), the one-level/rho=0
# equivalence pins against the exact GP, and the online fidelity campaign
# end to end — never satisfied from the test cache.
fidelity-smoke:
	$(GO) test -race -count=1 \
		-run 'TestFidelitySmoke|TestFidelityStudy|TestReplayFidelity|TestMultiFidOneLevelBitwiseExactGP|TestMultiFidRhoZeroMatchesIndependentGPs|TestOnlineFidelityEndToEnd|TestFidelityCampaignOverFleet' \
		./internal/engine ./internal/gp ./internal/online ./internal/remotelab

# docs-check keeps the documentation honest: every examples/specs file is
# canonical-form, every flag README.md/API.md shows exists in the binary it
# is shown on, and every alamr_* metric the docs mention is cataloged in
# internal/obs/names.go.
docs-check:
	$(GO) run ./cmd/docs-check

# ci is the gate for every PR: formatting, vet, full build, full test suite,
# then the race detector over the parallel-heavy packages, then the
# observability, sweep, serving, docs, and pool-scaling gates. The race
# target already covers ./internal/gp and ./internal/engine, so the
# cache-equivalence and streamed-pool tests run under the race detector here
# too.
ci: fmt vet build test race obs-check sweep-smoke fidelity-smoke serve-smoke docs-check chaos-remote bench-scale-smoke

# bench runs the linear-algebra / GP hot-path benchmarks and emits the raw
# `go test -json` event stream to BENCH_gp.json (one JSON object per line;
# benchmark results are in the "output" fields of Action=="output" events).
# Compare runs with `benchstat old.txt new.txt` if available, or grep
# "Benchmark.*ns/op". GOMAXPROCS governs the worker pool size; pin it for
# stable numbers, e.g. `GOMAXPROCS=4 make bench`.
bench:
	$(GO) test -run '^$$' -bench 'Chol|Mul|KernelMatrix|Fit' -benchmem -json \
		./internal/mat ./internal/kernel ./internal/gp > BENCH_gp.json
	@grep -o '"Output":".*ns/op[^"]*"' BENCH_gp.json | sed 's/"Output":"//; s/\\t/\t/g; s/\\n"//' || true

# bench-al measures the active-learning scoring engine: per-iteration pool
# re-scoring (both surrogates, direct Predict vs the incremental
# ScoringCache) across training sizes n and pool sizes m, plus the
# allocation-free Predict hot path. Raw `go test -json` events go to
# BENCH_al.json, same format as BENCH_gp.json.
bench-al:
	$(GO) test -run '^$$' -bench 'TrajectoryScoring|Predict' -benchmem -json \
		./internal/gp > BENCH_al.json
	@grep -o '"Output":".*ns/op[^"]*"' BENCH_al.json | sed 's/"Output":"//; s/\\t/\t/g; s/\\n"//' || true

# bench-scale measures the million-candidate selection step: one full
# pool-scoring pass per op across surrogate families, n in {2e3, 1e4}, m in
# {1e5, 1e6}, pool layouts (materialized vs streamed vs streamed+approximate
# shard pruning), and mat worker counts {1, 2, 4, GOMAXPROCS}. The B/op
# column is the pool-scoring working set: materialized pools allocate O(m),
# streamed pools O(workers·shard + k). Exact-model cases are skipped by
# default (the O(m·n²) pass is tens of minutes); run bench-scale-full to
# include them. bench-summary renders the table with a provenance header
# and a speedup-vs-workers column.
bench-scale:
	$(GO) test -run '^$$' -bench 'ScaleScoring' -benchtime 1x -benchmem -json \
		-timeout 60m ./internal/engine > BENCH_al.json
	$(GO) run ./cmd/bench-summary BENCH_al.json

# bench-scale-full is bench-scale with the exact-model cases included
# (-args -full); budget well over an hour at m=1e5.
bench-scale-full:
	$(GO) test -run '^$$' -bench 'ScaleScoring' -benchtime 1x -benchmem -json \
		-timeout 180m ./internal/engine -args -full > BENCH_al.json
	$(GO) run ./cmd/bench-summary BENCH_al.json

# bench-scale-smoke is the CI-sized correctness twin of bench-scale
# (n=500, m=1e4): every surrogate family's streamed shortlist winner must
# equal the materialized argmax, with and without approximate pruning, and
# the parallel Select must reproduce the serial shortlist bit for bit at
# 1, 2, 4, and GOMAXPROCS worker lanes (the worker-invariance pins).
bench-scale-smoke:
	$(GO) test -count=1 -run 'TestScaleSmoke|TestStreamSelectWorkerCountInvariant|TestStreamedReplayWorkerCountInvariant' \
		./internal/engine
