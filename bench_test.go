// Package bench holds the paper-level regeneration benchmarks: one
// benchmark per table and figure of the evaluation (§V), plus ablation
// benches for the design choices called out in DESIGN.md.
//
// Each benchmark runs its experiment end to end on a reduced-scale campaign
// (generated once per process) so `go test -bench=.` finishes on a laptop.
// Set ALAMR_FULL=1 to run at the paper's full scale (600 jobs, 150
// iterations, 10 partitions) — expect minutes per benchmark.
package bench

import (
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"alamr/internal/amr"
	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/experiments"
)

var (
	dsOnce sync.Once
	dsVal  *dataset.Dataset
	dsErr  error
)

func fullScale() bool { return os.Getenv("ALAMR_FULL") == "1" }

// benchDataset generates the campaign once per process.
func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		cfg := dataset.GenConfig{Seed: 42, NumJobs: 150, NumUnique: 120, RefNx: 64, RefTEnd: 0.15, RefSnaps: 6}
		if fullScale() {
			cfg = dataset.GenConfig{Seed: 42}
		}
		dsVal, dsErr = dataset.Generate(cfg)
	})
	if dsErr != nil {
		b.Fatal(dsErr)
	}
	return dsVal
}

func benchOpts(b *testing.B, ds *dataset.Dataset) experiments.Options {
	b.Helper()
	opts := experiments.Options{
		Dataset:       ds,
		Out:           io.Discard,
		Partitions:    2,
		MaxIterations: 20,
		Seed:          1,
	}
	if fullScale() {
		opts.Partitions = 10
		opts.MaxIterations = 150
	}
	return opts
}

// BenchmarkTable1Dataset regenerates the measurement campaign behind Table I
// (reference hydrodynamics + per-combination performance emulation + machine
// model + biased sampling) and summarizes it.
func BenchmarkTable1Dataset(b *testing.B) {
	cfg := dataset.GenConfig{Seed: 42, NumJobs: 60, NumUnique: 50, RefNx: 48, RefTEnd: 0.08, RefSnaps: 4}
	if fullScale() {
		cfg = dataset.GenConfig{Seed: 42}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.TableI(experiments.Options{Dataset: ds, Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Refinement runs the refinement-progression figure: the same
// shock-bubble problem solved at increasing maxlevel.
func BenchmarkFig1Refinement(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	cfg := experiments.Fig1Config{Levels: []int{1, 2, 3}, TEnd: 0.05}
	if fullScale() {
		cfg = experiments.Fig1Config{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(opts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2CostDistributions reproduces the per-policy selection cost
// distributions (violins) of Fig 2.
func BenchmarkFig2CostDistributions(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3CumulativeRegret reproduces the cumulative-regret comparison
// of memory-aware vs memory-oblivious policies (Fig 3).
func BenchmarkFig3CumulativeRegret(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ErrorTradeoffs reproduces the RMSE / cumulative-cost
// trade-off curves of Fig 4.
func BenchmarkFig4ErrorTradeoffs(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRGMAViolations reproduces the §V-C violation-timeline analysis
// (RGMA learning from its own mistakes at small n_init).
func BenchmarkRGMAViolations(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ViolationTimeline(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationKernels compares RBF vs ARD-RBF vs Matérn surrogates
// (the paper's future-work kernels).
func BenchmarkAblationKernels(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.KernelAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLog2P compares linear vs log2(p) feature scaling (§V-D).
func BenchmarkAblationLog2P(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Log2PAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGoodnessBase sweeps the RandGoodness base.
func BenchmarkAblationGoodnessBase(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GoodnessBaseAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMemLimit sweeps L_mem across quantiles (RGMA
// sensitivity).
func BenchmarkAblationMemLimit(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MemLimitSensitivity(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHyperoptCadence measures the accuracy/cost effect of the
// hyperparameter refit cadence (this implementation's one deviation knob
// from Algorithm 1, which refits every iteration).
func BenchmarkAblationHyperoptCadence(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HyperoptCadenceAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSubcycling compares the emulated work with global versus
// level-subcycled time stepping (a FORESTCLAW configuration choice that
// shifts the cost surface).
func BenchmarkAblationSubcycling(b *testing.B) {
	ref, err := amr.ReferenceRun(amr.ShockBubble{R0: 0.3, RhoIn: 0.1}, 64, 0.1, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sub := range []bool{false, true} {
			if _, err := amr.Emulate(ref, amr.EmulateConfig{Mx: 16, MaxLevel: 5, Subcycle: sub}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkALIteration isolates one full AL iteration (predict over the
// pool, select, absorb the sample) at a realistic model size.
func BenchmarkALIteration(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		part, err := dataset.Split(ds, 20, 30, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.RunTrajectory(ds, part, core.LoopConfig{
			Policy:        core.RGMA{},
			MaxIterations: 1,
			MemLimitMB:    core.PaperMemLimitMB(ds),
			Seed:          int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBatchSize runs the batch-mode AL study (future work §VI):
// selection quality vs campaign makespan for q ∈ {1, 4}.
func BenchmarkAblationBatchSize(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BatchSizeStudy(opts, []int{1, 4}, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTreedSurrogate compares the flat GP against the
// partitioned (treed) local-model surrogate of the paper's future work.
func BenchmarkAblationTreedSurrogate(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SurrogateAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWeightedError scores final cost models under uniform vs
// cost-weighted RMSE (§V-D's metric discussion).
func BenchmarkAblationWeightedError(b *testing.B) {
	ds := benchDataset(b)
	opts := benchOpts(b, ds)
	opts.MaxIterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WeightedErrorStudy(opts); err != nil {
			b.Fatal(err)
		}
	}
}
