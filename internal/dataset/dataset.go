// Package dataset defines the AMR performance dataset the active-learning
// study runs on: 600 shock-bubble jobs over the paper's 5-dimensional
// feature grid (Table I), the log10 response transforms, unit-cube feature
// scaling, Init/Active/Test partitioning, and CSV persistence.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/mat"
)

// ErrBadResponse classifies a job whose measured responses cannot enter the
// log-transformed models: zero, negative, or non-finite wall-clock, cost, or
// memory values. Callers that feed measurements into the GPs (the AL loops,
// the online campaign runtime) check for it with errors.Is and treat it as a
// corrupted measurement rather than letting log10 propagate NaN/Inf into a
// surrogate.
var ErrBadResponse = errors.New("dataset: non-positive or non-finite response")

// CheckResponses verifies that the job's measured responses are strictly
// positive and finite — the precondition of the log10 transforms LogCost and
// LogMem. A violation is reported as an error wrapping ErrBadResponse.
func (j Job) CheckResponses() error {
	bad := func(v float64) bool {
		return v <= 0 || math.IsNaN(v) || math.IsInf(v, 0)
	}
	switch {
	case bad(j.WallSec):
		return fmt.Errorf("%w: wall-clock %g sec (%+v)", ErrBadResponse, j.WallSec, j.Config())
	case bad(j.CostNH):
		return fmt.Errorf("%w: cost %g node-hours (%+v)", ErrBadResponse, j.CostNH, j.Config())
	case bad(j.MemMB):
		return fmt.Errorf("%w: memory %g MB (%+v)", ErrBadResponse, j.MemMB, j.Config())
	}
	return nil
}

// CheckResponses verifies every indexed job (all jobs when idx is nil)
// satisfies the log-transform precondition; see Job.CheckResponses.
func (d *Dataset) CheckResponses(idx []int) error {
	if idx == nil {
		for i, j := range d.Jobs {
			if err := j.CheckResponses(); err != nil {
				return fmt.Errorf("job %d: %w", i, err)
			}
		}
		return nil
	}
	for _, i := range idx {
		if err := d.Jobs[i].CheckResponses(); err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
	}
	return nil
}

// Feature grids from the paper (Table I): 5·4·4·4·6 = 1920 combinations.
var (
	GridP        = []int{4, 8, 16, 24, 32}
	GridMx       = []int{8, 16, 24, 32}
	GridMaxLevel = []int{3, 4, 5, 6}
	GridR0       = []float64{0.2, 0.3, 0.4, 0.5}
	GridRhoIn    = []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5}
)

// NumFeatures is the input-space dimension d.
const NumFeatures = 5

// FidelityFeature is the index of the fidelity dial — the AMR refinement
// depth MaxLevel — in the (scaled) feature vector. Multi-fidelity campaigns
// treat this column as the rung of a fidelity ladder rather than an
// ordinary design dimension.
const FidelityFeature = 2

// ScaleMaxLevel maps a MaxLevel grid value onto the unit-scaled feature
// axis the surrogates see (the FidelityFeature column of ScaleFeatures).
func ScaleMaxLevel(ml int) float64 {
	lo := float64(GridMaxLevel[0])
	hi := float64(GridMaxLevel[len(GridMaxLevel)-1])
	return (float64(ml) - lo) / (hi - lo)
}

// Job is one completed AMR simulation: the five features the paper sweeps
// and the measured responses.
type Job struct {
	P        int     // number of nodes
	Mx       int     // box size (cells per patch edge)
	MaxLevel int     // maximum refinement level
	R0       float64 // bubble size
	RhoIn    float64 // bubble density

	WallSec float64 // wall-clock seconds
	CostNH  float64 // cost in node-hours (wall × nodes / 3600)
	MemMB   float64 // MaxRSS per process, MB
}

// Config returns the job's feature combination.
func (j Job) Config() Combo {
	return Combo{P: j.P, Mx: j.Mx, MaxLevel: j.MaxLevel, R0: j.R0, RhoIn: j.RhoIn}
}

// Combo is a point of the feature grid.
type Combo struct {
	P, Mx, MaxLevel int
	R0, RhoIn       float64
}

// AllCombos enumerates the full 1920-point grid in deterministic order.
func AllCombos() []Combo {
	out := make([]Combo, 0, len(GridP)*len(GridMx)*len(GridMaxLevel)*len(GridR0)*len(GridRhoIn))
	for _, p := range GridP {
		for _, mx := range GridMx {
			for _, ml := range GridMaxLevel {
				for _, r0 := range GridR0 {
					for _, ri := range GridRhoIn {
						out = append(out, Combo{P: p, Mx: mx, MaxLevel: ml, R0: r0, RhoIn: ri})
					}
				}
			}
		}
	}
	return out
}

// Dataset is an ordered collection of jobs.
type Dataset struct {
	Jobs []Job
}

// Len returns the number of jobs.
func (d *Dataset) Len() int { return len(d.Jobs) }

// featureRange returns the min and max of each feature over the canonical
// grids (not the sampled data), so scaling is stable across datasets.
func featureRange() (lo, hi [NumFeatures]float64) {
	lo = [NumFeatures]float64{float64(GridP[0]), float64(GridMx[0]), float64(GridMaxLevel[0]), GridR0[0], GridRhoIn[0]}
	hi = [NumFeatures]float64{
		float64(GridP[len(GridP)-1]),
		float64(GridMx[len(GridMx)-1]),
		float64(GridMaxLevel[len(GridMaxLevel)-1]),
		GridR0[len(GridR0)-1],
		GridRhoIn[len(GridRhoIn)-1],
	}
	return lo, hi
}

// ScaleFeatures maps a job's features to the unit cube [0,1]^5, the
// preprocessing the paper applies before GPR fitting.
func ScaleFeatures(j Job) [NumFeatures]float64 {
	lo, hi := featureRange()
	raw := [NumFeatures]float64{float64(j.P), float64(j.Mx), float64(j.MaxLevel), j.R0, j.RhoIn}
	var out [NumFeatures]float64
	for i := range raw {
		out[i] = (raw[i] - lo[i]) / (hi[i] - lo[i])
	}
	return out
}

// ScaleFeaturesLog2P behaves like ScaleFeatures but uses log2(p) as the
// node-count feature, the preprocessing variant the paper's Discussion
// (§V-D) proposes for exponentially spaced machine sizes.
func ScaleFeaturesLog2P(j Job) [NumFeatures]float64 {
	out := ScaleFeatures(j)
	lo := math.Log2(float64(GridP[0]))
	hi := math.Log2(float64(GridP[len(GridP)-1]))
	out[0] = (math.Log2(float64(j.P)) - lo) / (hi - lo)
	return out
}

// Features assembles the scaled design matrix X for a subset of job indices
// (all jobs when idx is nil).
func (d *Dataset) Features(idx []int) *mat.Dense {
	return d.featuresWith(idx, ScaleFeatures)
}

// FeaturesLog2P assembles the design matrix using the log2(p) transform.
func (d *Dataset) FeaturesLog2P(idx []int) *mat.Dense {
	return d.featuresWith(idx, ScaleFeaturesLog2P)
}

func (d *Dataset) featuresWith(idx []int, scale func(Job) [NumFeatures]float64) *mat.Dense {
	if idx == nil {
		idx = make([]int, len(d.Jobs))
		for i := range idx {
			idx[i] = i
		}
	}
	x := mat.NewDense(len(idx), NumFeatures, nil)
	for r, i := range idx {
		f := scale(d.Jobs[i])
		copy(x.Row(r), f[:])
	}
	return x
}

// LogCost returns log10 of the cost response for the given indices (all
// when nil).
func (d *Dataset) LogCost(idx []int) []float64 {
	return d.response(idx, func(j Job) float64 { return math.Log10(j.CostNH) })
}

// LogMem returns log10 of the memory response (MB).
func (d *Dataset) LogMem(idx []int) []float64 {
	return d.response(idx, func(j Job) float64 { return math.Log10(j.MemMB) })
}

// Cost returns the raw cost response in node-hours.
func (d *Dataset) Cost(idx []int) []float64 {
	return d.response(idx, func(j Job) float64 { return j.CostNH })
}

// Mem returns the raw memory response in MB.
func (d *Dataset) Mem(idx []int) []float64 {
	return d.response(idx, func(j Job) float64 { return j.MemMB })
}

// Wall returns the raw wall-clock response in seconds.
func (d *Dataset) Wall(idx []int) []float64 {
	return d.response(idx, func(j Job) float64 { return j.WallSec })
}

func (d *Dataset) response(idx []int, f func(Job) float64) []float64 {
	if idx == nil {
		out := make([]float64, len(d.Jobs))
		for i, j := range d.Jobs {
			out[i] = f(j)
		}
		return out
	}
	out := make([]float64, len(idx))
	for r, i := range idx {
		out[r] = f(d.Jobs[i])
	}
	return out
}

// Validate checks that every job has physically sensible responses and
// on-grid features.
func (d *Dataset) Validate() error {
	onGridInt := func(v int, grid []int) bool {
		for _, g := range grid {
			if v == g {
				return true
			}
		}
		return false
	}
	onGridF := func(v float64, grid []float64) bool {
		for _, g := range grid {
			if math.Abs(v-g) < 1e-12 {
				return true
			}
		}
		return false
	}
	for i, j := range d.Jobs {
		if j.WallSec <= 0 || j.CostNH <= 0 || j.MemMB <= 0 {
			return fmt.Errorf("dataset: job %d has non-positive responses: %+v", i, j)
		}
		if !onGridInt(j.P, GridP) || !onGridInt(j.Mx, GridMx) || !onGridInt(j.MaxLevel, GridMaxLevel) {
			return fmt.Errorf("dataset: job %d has off-grid integer feature: %+v", i, j)
		}
		if !onGridF(j.R0, GridR0) || !onGridF(j.RhoIn, GridRhoIn) {
			return fmt.Errorf("dataset: job %d has off-grid physical feature: %+v", i, j)
		}
	}
	return nil
}

// UniqueCombos counts distinct feature combinations.
func (d *Dataset) UniqueCombos() int {
	seen := make(map[Combo]bool, len(d.Jobs))
	for _, j := range d.Jobs {
		seen[j.Config()] = true
	}
	return len(seen)
}
