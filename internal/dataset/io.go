package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"alamr/internal/stats"
)

// csvHeader is the canonical column layout.
var csvHeader = []string{"p", "mx", "maxlevel", "r0", "rhoin", "wall_sec", "cost_nh", "mem_mb"}

// WriteCSV writes the dataset in the canonical CSV layout.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, j := range d.Jobs {
		rec := []string{
			strconv.Itoa(j.P),
			strconv.Itoa(j.Mx),
			strconv.Itoa(j.MaxLevel),
			strconv.FormatFloat(j.R0, 'g', -1, 64),
			strconv.FormatFloat(j.RhoIn, 'g', -1, 64),
			strconv.FormatFloat(j.WallSec, 'g', -1, 64),
			strconv.FormatFloat(j.CostNH, 'g', -1, 64),
			strconv.FormatFloat(j.MemMB, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	if len(recs[0]) != len(csvHeader) || recs[0][0] != "p" {
		return nil, fmt.Errorf("dataset: unexpected CSV header %v", recs[0])
	}
	ds := &Dataset{Jobs: make([]Job, 0, len(recs)-1)}
	for ln, rec := range recs[1:] {
		ints := [3]int{}
		for i := 0; i < 3; i++ {
			v, err := strconv.Atoi(rec[i])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %s: %w", ln+2, csvHeader[i], err)
			}
			ints[i] = v
		}
		floats := [5]float64{}
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseFloat(rec[i+3], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %s: %w", ln+2, csvHeader[i+3], err)
			}
			floats[i] = v
		}
		ds.Jobs = append(ds.Jobs, Job{
			P: ints[0], Mx: ints[1], MaxLevel: ints[2],
			R0: floats[0], RhoIn: floats[1],
			WallSec: floats[2], CostNH: floats[3], MemMB: floats[4],
		})
	}
	return ds, nil
}

// SaveFile writes the dataset to a CSV file.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset CSV file.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// SummaryRow is one line of the Table I reproduction.
type SummaryRow struct {
	Name                   string
	Min, Median, Mean, Max float64
}

// TableI computes the dataset summary the paper reports: min/median/mean/max
// for every feature and response.
func (d *Dataset) TableI() []SummaryRow {
	col := func(name string, vals []float64) SummaryRow {
		s := stats.Summarize(vals)
		return SummaryRow{Name: name, Min: s.Min, Median: s.Median, Mean: s.Mean, Max: s.Max}
	}
	pf := func(f func(Job) float64) []float64 {
		out := make([]float64, len(d.Jobs))
		for i, j := range d.Jobs {
			out[i] = f(j)
		}
		return out
	}
	return []SummaryRow{
		col("p, # of nodes", pf(func(j Job) float64 { return float64(j.P) })),
		col("mx, box size", pf(func(j Job) float64 { return float64(j.Mx) })),
		col("maxlevel, max refinement level", pf(func(j Job) float64 { return float64(j.MaxLevel) })),
		col("r0, bubble size", pf(func(j Job) float64 { return j.R0 })),
		col("rhoin, bubble density", pf(func(j Job) float64 { return j.RhoIn })),
		col("wall clock time, seconds", pf(func(j Job) float64 { return j.WallSec })),
		col("cost, node-hours", pf(func(j Job) float64 { return j.CostNH })),
		col("memory, MB", pf(func(j Job) float64 { return j.MemMB })),
	}
}
