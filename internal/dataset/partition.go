package dataset

import (
	"fmt"
	"math/rand"

	"alamr/internal/stats"
)

// Partition assigns every job index to exactly one of the three roles the
// AL simulator uses (paper §IV): Init seeds the models, Active is the pool
// AL selects from one at a time, Test is held out for error estimation.
type Partition struct {
	Init   []int
	Active []int
	Test   []int
}

// Split randomly shuffles the dataset's job indices and carves out nTest
// test samples, nInit initial samples, and leaves the remainder active,
// matching the paper's 200/n_init/400−n_init scheme. It returns an error
// when the sizes do not fit.
func Split(d *Dataset, nInit, nTest int, rng *rand.Rand) (Partition, error) {
	n := d.Len()
	if nInit < 1 {
		return Partition{}, fmt.Errorf("dataset: nInit = %d, need >= 1", nInit)
	}
	if nTest < 1 {
		return Partition{}, fmt.Errorf("dataset: nTest = %d, need >= 1", nTest)
	}
	if nInit+nTest >= n {
		return Partition{}, fmt.Errorf("dataset: nInit+nTest = %d leaves no active samples of %d", nInit+nTest, n)
	}
	perm := stats.Shuffle(rng, n)
	p := Partition{
		Test:   append([]int(nil), perm[:nTest]...),
		Init:   append([]int(nil), perm[nTest:nTest+nInit]...),
		Active: append([]int(nil), perm[nTest+nInit:]...),
	}
	return p, nil
}

// Validate checks that the partition covers 0..n-1 exactly once.
func (p Partition) Validate(n int) error {
	seen := make([]bool, n)
	total := 0
	for _, group := range [][]int{p.Init, p.Active, p.Test} {
		for _, i := range group {
			if i < 0 || i >= n {
				return fmt.Errorf("dataset: partition index %d out of range %d", i, n)
			}
			if seen[i] {
				return fmt.Errorf("dataset: partition index %d appears twice", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("dataset: partition covers %d of %d indices", total, n)
	}
	return nil
}
