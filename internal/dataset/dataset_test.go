package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"alamr/internal/cluster"
)

func TestAllCombosSize(t *testing.T) {
	combos := AllCombos()
	if len(combos) != 1920 {
		t.Fatalf("grid size = %d want 1920", len(combos))
	}
	seen := make(map[Combo]bool, len(combos))
	for _, c := range combos {
		if seen[c] {
			t.Fatalf("duplicate combo %+v", c)
		}
		seen[c] = true
	}
}

func testJob() Job {
	return Job{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1, WallSec: 100, CostNH: 0.25, MemMB: 8}
}

func TestScaleFeaturesUnitCube(t *testing.T) {
	lo := Job{P: 4, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02, WallSec: 1, CostNH: 1, MemMB: 1}
	hi := Job{P: 32, Mx: 32, MaxLevel: 6, R0: 0.5, RhoIn: 0.5, WallSec: 1, CostNH: 1, MemMB: 1}
	for i, v := range ScaleFeatures(lo) {
		if v != 0 {
			t.Fatalf("lo feature %d = %g want 0", i, v)
		}
	}
	for i, v := range ScaleFeatures(hi) {
		if v != 1 {
			t.Fatalf("hi feature %d = %g want 1", i, v)
		}
	}
	mid := ScaleFeatures(testJob())
	for i, v := range mid {
		if v < 0 || v > 1 {
			t.Fatalf("feature %d = %g outside unit cube", i, v)
		}
	}
}

func TestScaleFeaturesLog2P(t *testing.T) {
	j := testJob()
	j.P = 8 // log2 8 = 3 → (3-2)/(5-2) = 1/3
	f := ScaleFeaturesLog2P(j)
	if math.Abs(f[0]-1.0/3.0) > 1e-12 {
		t.Fatalf("log2 p feature = %g want 1/3", f[0])
	}
	// Other features unchanged from linear scaling.
	lin := ScaleFeatures(j)
	for i := 1; i < NumFeatures; i++ {
		if f[i] != lin[i] {
			t.Fatalf("feature %d changed by log2 transform", i)
		}
	}
}

func smallDataset() *Dataset {
	return &Dataset{Jobs: []Job{
		{P: 4, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02, WallSec: 2, CostNH: 0.002, MemMB: 0.02},
		{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1, WallSec: 100, CostNH: 0.25, MemMB: 8},
		{P: 32, Mx: 32, MaxLevel: 6, R0: 0.5, RhoIn: 0.5, WallSec: 4000, CostNH: 11.8, MemMB: 32},
		{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1, WallSec: 105, CostNH: 0.26, MemMB: 8.1},
	}}
}

func TestResponsesAndTransforms(t *testing.T) {
	d := smallDataset()
	lc := d.LogCost(nil)
	if math.Abs(lc[1]-math.Log10(0.25)) > 1e-12 {
		t.Fatalf("LogCost = %v", lc)
	}
	lm := d.LogMem([]int{2})
	if math.Abs(lm[0]-math.Log10(32)) > 1e-12 {
		t.Fatalf("LogMem = %v", lm)
	}
	if d.Cost([]int{0})[0] != 0.002 || d.Mem([]int{0})[0] != 0.02 || d.Wall([]int{0})[0] != 2 {
		t.Fatal("raw responses wrong")
	}
}

func TestFeaturesMatrixShape(t *testing.T) {
	d := smallDataset()
	x := d.Features(nil)
	r, c := x.Dims()
	if r != 4 || c != NumFeatures {
		t.Fatalf("features dims %dx%d", r, c)
	}
	x2 := d.Features([]int{2})
	if x2.Rows() != 1 || x2.At(0, 0) != 1 {
		t.Fatalf("subset features wrong: %v", x2.Row(0))
	}
	xl := d.FeaturesLog2P([]int{1})
	if math.Abs(xl.At(0, 0)-1.0/3.0) > 1e-12 {
		t.Fatal("log2p matrix wrong")
	}
}

func TestValidate(t *testing.T) {
	d := smallDataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{Jobs: []Job{{P: 5, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02, WallSec: 1, CostNH: 1, MemMB: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("off-grid p accepted")
	}
	bad2 := &Dataset{Jobs: []Job{{P: 4, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02, WallSec: 0, CostNH: 1, MemMB: 1}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero wallclock accepted")
	}
}

func TestUniqueCombos(t *testing.T) {
	d := smallDataset()
	if got := d.UniqueCombos(); got != 3 {
		t.Fatalf("UniqueCombos = %d want 3", got)
	}
}

func TestSplitSizes(t *testing.T) {
	d := &Dataset{Jobs: make([]Job, 600)}
	rng := rand.New(rand.NewSource(1))
	p, err := Split(d, 50, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Init) != 50 || len(p.Test) != 200 || len(p.Active) != 350 {
		t.Fatalf("sizes %d/%d/%d", len(p.Init), len(p.Test), len(p.Active))
	}
	if err := p.Validate(600); err != nil {
		t.Fatal(err)
	}
}

func TestSplitValidation(t *testing.T) {
	d := &Dataset{Jobs: make([]Job, 10)}
	rng := rand.New(rand.NewSource(1))
	if _, err := Split(d, 0, 2, rng); err == nil {
		t.Fatal("nInit 0 accepted")
	}
	if _, err := Split(d, 2, 0, rng); err == nil {
		t.Fatal("nTest 0 accepted")
	}
	if _, err := Split(d, 5, 5, rng); err == nil {
		t.Fatal("no-active split accepted")
	}
}

func TestPartitionValidateCatchesCorruption(t *testing.T) {
	p := Partition{Init: []int{0}, Active: []int{1}, Test: []int{1}}
	if err := p.Validate(3); err == nil {
		t.Fatal("duplicate index accepted")
	}
	p2 := Partition{Init: []int{0}, Active: []int{1}, Test: []int{5}}
	if err := p2.Validate(3); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	p3 := Partition{Init: []int{0}, Active: []int{1}}
	if err := p3.Validate(3); err == nil {
		t.Fatal("incomplete cover accepted")
	}
}

// Property: Split always yields a valid exact partition.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		d := &Dataset{Jobs: make([]Job, n)}
		nTest := 1 + rng.Intn(n/3)
		nInit := 1 + rng.Intn(n/3)
		p, err := Split(d, nInit, nTest, rng)
		if err != nil {
			return nInit+nTest >= n
		}
		return p.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := smallDataset()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d want %d", back.Len(), d.Len())
	}
	for i := range d.Jobs {
		if d.Jobs[i] != back.Jobs[i] {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, d.Jobs[i], back.Jobs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("p,mx,maxlevel,r0,rhoin,wall_sec,cost_nh,mem_mb\nx,8,3,0.2,0.02,1,1,1\n")); err == nil {
		t.Fatal("non-integer p accepted")
	}
	if _, err := ReadCSV(strings.NewReader("p,mx,maxlevel,r0,rhoin,wall_sec,cost_nh,mem_mb\n4,8,3,zz,0.02,1,1,1\n")); err == nil {
		t.Fatal("non-float r0 accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := smallDataset()
	path := t.TempDir() + "/ds.csv"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatal("file round trip length mismatch")
	}
}

func TestTableI(t *testing.T) {
	d := smallDataset()
	rows := d.TableI()
	if len(rows) != 8 {
		t.Fatalf("TableI rows = %d want 8", len(rows))
	}
	if rows[0].Name != "p, # of nodes" || rows[0].Min != 4 || rows[0].Max != 32 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[6].Max != 11.8 {
		t.Fatalf("cost max = %g", rows[6].Max)
	}
}

// TestGenerateSmallCampaign is the integration test of the full generation
// pipeline at reduced scale (coarse reference, 40 unique + repeats).
func TestGenerateSmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("generation pipeline in -short mode")
	}
	ds, err := Generate(GenConfig{
		Seed:      11,
		NumJobs:   50,
		NumUnique: 40,
		RefNx:     48,
		RefTEnd:   0.08,
		RefSnaps:  4,
		Machine:   cluster.Edison(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 50 {
		t.Fatalf("jobs = %d want 50", ds.Len())
	}
	if got := ds.UniqueCombos(); got != 40 {
		t.Fatalf("unique combos = %d want 40", got)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Costs must vary substantially across the grid.
	costs := ds.Cost(nil)
	lo, hi := costs[0], costs[0]
	for _, c := range costs {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	if hi/lo < 10 {
		t.Fatalf("cost dynamic range only %g", hi/lo)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("generation pipeline in -short mode")
	}
	gen := func() *Dataset {
		ds, err := Generate(GenConfig{
			Seed: 5, NumJobs: 12, NumUnique: 10, RefNx: 32, RefTEnd: 0.05, RefSnaps: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := gen(), gen()
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("non-deterministic generation at job %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{NumUnique: 5000, NumJobs: 6000}); err == nil {
		t.Fatal("oversized NumUnique accepted")
	}
	if _, err := Generate(GenConfig{NumUnique: 100, NumJobs: 50}); err == nil {
		t.Fatal("NumJobs < NumUnique accepted")
	}
}
