package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"alamr/internal/amr"
	"alamr/internal/cluster"
	"alamr/internal/stats"
)

// GenConfig controls campaign generation.
type GenConfig struct {
	Seed      int64
	NumJobs   int // total jobs, paper: 600
	NumUnique int // distinct combinations, paper: 525
	RefNx     int // reference-solution resolution (default 128)
	RefTEnd   float64
	RefSnaps  int
	Machine   cluster.Machine
	Workers   int // parallel reference runs (default GOMAXPROCS)
	Subcycle  bool
	// RootsX, RootsY select the root forest of the campaign geometry
	// (default 8×4, the multi-quadrant coarse forest of the FORESTCLAW
	// shock-bubble configuration; examples use the cheaper 2×1).
	RootsX, RootsY int
	// CostBias shapes the sampling of unique combinations: selection weight
	// is cost^(-CostBias), so larger values sample the expensive corner more
	// sparsely, mirroring how the authors pre-selected their jobs to bound
	// total campaign cost (default 0.3).
	CostBias float64
}

func (c *GenConfig) setDefaults() {
	if c.NumJobs <= 0 {
		c.NumJobs = 600
	}
	if c.NumUnique <= 0 {
		c.NumUnique = 525
	}
	if c.RefNx <= 0 {
		c.RefNx = 128
	}
	if c.RefTEnd <= 0 {
		c.RefTEnd = 0.30
	}
	if c.RefSnaps <= 0 {
		c.RefSnaps = 12
	}
	if c.Machine.CoresPerNode == 0 {
		c.Machine = cluster.Edison()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CostBias <= 0 {
		c.CostBias = 0.25
	}
	if c.RootsX <= 0 {
		c.RootsX = 8
	}
	if c.RootsY <= 0 {
		c.RootsY = 4
	}
}

type physKey struct{ r0, rhoin float64 }

// Generate reproduces the paper's measurement campaign in simulation: one
// reference shock-bubble solution per physical parameter pair, a performance
// emulation for each of the 1920 grid combinations, cost-biased sampling of
// NumUnique distinct combinations plus repeats up to NumJobs, and finally a
// machine-model "run" of every selected job with seeded variability noise.
func Generate(cfg GenConfig) (*Dataset, error) {
	cfg.setDefaults()
	if cfg.NumUnique > len(AllCombos()) {
		return nil, fmt.Errorf("dataset: NumUnique %d exceeds grid size %d", cfg.NumUnique, len(AllCombos()))
	}
	if cfg.NumJobs < cfg.NumUnique {
		return nil, fmt.Errorf("dataset: NumJobs %d < NumUnique %d", cfg.NumJobs, cfg.NumUnique)
	}

	refs, err := buildReferences(cfg)
	if err != nil {
		return nil, err
	}

	combos := AllCombos()
	type emulated struct {
		combo Combo
		stats amr.EmulationStats
		base  cluster.Accounting // noise-free accounting
	}
	ems := make([]emulated, len(combos))
	var emErr error
	var emErrOnce sync.Once
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, c := range combos {
		wg.Add(1)
		go func(i int, c Combo) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ref := refs[physKey{c.R0, c.RhoIn}]
			st, err := amr.Emulate(ref, amr.EmulateConfig{
				Mx: c.Mx, MaxLevel: c.MaxLevel, Subcycle: cfg.Subcycle,
				RootsX: cfg.RootsX, RootsY: cfg.RootsY,
			})
			if err != nil {
				emErrOnce.Do(func() { emErr = err })
				return
			}
			acc, err := cfg.Machine.Simulate(cluster.JobSpec{Nodes: c.P, Mx: c.Mx, Stats: st}, nil)
			if err != nil {
				emErrOnce.Do(func() { emErr = err })
				return
			}
			ems[i] = emulated{combo: c, stats: st, base: acc}
		}(i, c)
	}
	wg.Wait()
	if emErr != nil {
		return nil, emErr
	}

	// Cost-biased sampling of unique combinations without replacement.
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := make([]float64, len(ems))
	for i, e := range ems {
		weights[i] = math.Pow(e.base.CostNodeHours, -cfg.CostBias)
	}
	chosen := sampleWithoutReplacement(rng, weights, cfg.NumUnique)

	// Repeats: the remaining slots re-measure uniformly chosen selected
	// combos (the paper's 75 second/third measurements).
	jobsIdx := append([]int(nil), chosen...)
	for len(jobsIdx) < cfg.NumJobs {
		jobsIdx = append(jobsIdx, chosen[rng.Intn(len(chosen))])
	}
	sort.Ints(jobsIdx)

	ds := &Dataset{Jobs: make([]Job, 0, cfg.NumJobs)}
	for n, ei := range jobsIdx {
		e := ems[ei]
		noise := rand.New(rand.NewSource(stats.SplitSeed(cfg.Seed, n+1)))
		acc, err := cfg.Machine.Simulate(cluster.JobSpec{Nodes: e.combo.P, Mx: e.combo.Mx, Stats: e.stats}, noise)
		if err != nil {
			return nil, err
		}
		ds.Jobs = append(ds.Jobs, Job{
			P: e.combo.P, Mx: e.combo.Mx, MaxLevel: e.combo.MaxLevel,
			R0: e.combo.R0, RhoIn: e.combo.RhoIn,
			WallSec: acc.WallClockSec,
			CostNH:  acc.CostNodeHours,
			MemMB:   acc.MaxRSSBytes / (1 << 20),
		})
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// buildReferences runs the 24 physical reference solutions in parallel.
func buildReferences(cfg GenConfig) (map[physKey]*amr.Reference, error) {
	refs := make(map[physKey]*amr.Reference)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	sem := make(chan struct{}, cfg.Workers)
	for _, r0 := range GridR0 {
		for _, ri := range GridRhoIn {
			wg.Add(1)
			go func(r0, ri float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				ref, err := amr.ReferenceRun(amr.ShockBubble{R0: r0, RhoIn: ri}, cfg.RefNx, cfg.RefTEnd, cfg.RefSnaps)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("dataset: reference (r0=%g, rhoin=%g): %w", r0, ri, err)
					}
					return
				}
				refs[physKey{r0, ri}] = ref
			}(r0, ri)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return refs, nil
}

// sampleWithoutReplacement draws k distinct indices with probability
// proportional to the weights.
func sampleWithoutReplacement(rng *rand.Rand, weights []float64, k int) []int {
	w := append([]float64(nil), weights...)
	out := make([]int, 0, k)
	for len(out) < k {
		i := stats.SampleDiscrete(rng, w)
		out = append(out, i)
		w[i] = 0
	}
	return out
}
