// Package euler implements the two-dimensional compressible Euler equations
// used by the shock-bubble interaction problem: conservative/primitive state
// conversions, HLLC approximate Riemann fluxes, MUSCL slope-limited
// reconstruction, and an exact Riemann solver used as a validation reference
// (Toro, "Riemann Solvers and Numerical Methods for Fluid Dynamics").
//
// The state vector is U = (ρ, ρu, ρv, E) with ideal-gas EOS
// p = (γ−1)(E − ½ρ(u²+v²)).
package euler

import (
	"fmt"
	"math"
)

// Gamma is the ratio of specific heats for the ideal-gas law (air).
const Gamma = 1.4

// NumFields is the number of conserved fields (ρ, ρu, ρv, E).
const NumFields = 4

// Cons is a conservative state (density, x-momentum, y-momentum, energy).
type Cons struct {
	Rho, Mx, My, E float64
}

// Prim is a primitive state (density, velocities, pressure).
type Prim struct {
	Rho, U, V, P float64
}

// ToPrim converts a conservative state to primitive variables.
func (c Cons) ToPrim() Prim {
	u := c.Mx / c.Rho
	v := c.My / c.Rho
	p := (Gamma - 1) * (c.E - 0.5*c.Rho*(u*u+v*v))
	return Prim{Rho: c.Rho, U: u, V: v, P: p}
}

// ToCons converts a primitive state to conservative variables.
func (p Prim) ToCons() Cons {
	e := p.P/(Gamma-1) + 0.5*p.Rho*(p.U*p.U+p.V*p.V)
	return Cons{Rho: p.Rho, Mx: p.Rho * p.U, My: p.Rho * p.V, E: e}
}

// SoundSpeed returns c = sqrt(γ p / ρ).
func (p Prim) SoundSpeed() float64 {
	if p.Rho <= 0 || p.P <= 0 {
		return 0
	}
	return math.Sqrt(Gamma * p.P / p.Rho)
}

// MaxWaveSpeed returns |u|+c along x and |v|+c along y, the CFL-limiting
// speeds.
func (p Prim) MaxWaveSpeed() (sx, sy float64) {
	c := p.SoundSpeed()
	return math.Abs(p.U) + c, math.Abs(p.V) + c
}

// Valid reports whether the state is physically admissible.
func (c Cons) Valid() bool {
	if c.Rho <= 0 || math.IsNaN(c.Rho) || math.IsInf(c.Rho, 0) {
		return false
	}
	p := c.ToPrim()
	return p.P > 0 && !math.IsNaN(p.P)
}

// FluxX returns the x-direction physical flux F(U).
func FluxX(c Cons) Cons {
	p := c.ToPrim()
	return Cons{
		Rho: c.Mx,
		Mx:  c.Mx*p.U + p.P,
		My:  c.My * p.U,
		E:   (c.E + p.P) * p.U,
	}
}

// FluxY returns the y-direction physical flux G(U).
func FluxY(c Cons) Cons {
	p := c.ToPrim()
	return Cons{
		Rho: c.My,
		Mx:  c.Mx * p.V,
		My:  c.My*p.V + p.P,
		E:   (c.E + p.P) * p.V,
	}
}

// swapXY exchanges the momentum components, rotating a state so y-direction
// problems can reuse the x-direction solver.
func swapXY(c Cons) Cons { return Cons{Rho: c.Rho, Mx: c.My, My: c.Mx, E: c.E} }

// HLLCFluxX computes the HLLC approximate Riemann flux across an x-face
// between left and right states (Toro §10.4, with Batten wave-speed
// estimates).
func HLLCFluxX(l, r Cons) Cons {
	pl, pr := l.ToPrim(), r.ToPrim()
	cl, cr := pl.SoundSpeed(), pr.SoundSpeed()

	// Pressure-based wave speed estimate (PVRS, Toro §10.5).
	rhoBar := 0.5 * (pl.Rho + pr.Rho)
	cBar := 0.5 * (cl + cr)
	pStar := 0.5*(pl.P+pr.P) - 0.5*(pr.U-pl.U)*rhoBar*cBar
	if pStar < 0 {
		pStar = 0
	}
	ql := waveSpeedFactor(pStar, pl.P)
	qr := waveSpeedFactor(pStar, pr.P)
	sl := pl.U - cl*ql
	sr := pr.U + cr*qr

	if sl >= 0 {
		return FluxX(l)
	}
	if sr <= 0 {
		return FluxX(r)
	}

	// Contact wave speed.
	sm := (pr.P - pl.P + pl.Rho*pl.U*(sl-pl.U) - pr.Rho*pr.U*(sr-pr.U)) /
		(pl.Rho*(sl-pl.U) - pr.Rho*(sr-pr.U))

	if sm >= 0 {
		return hllcStarFlux(l, pl, sl, sm)
	}
	return hllcStarFlux(r, pr, sr, sm)
}

// hllcStarFlux evaluates F = F(U) + s(U* − U) for the star region adjacent
// to the side with outer wave speed s.
func hllcStarFlux(u Cons, p Prim, s, sm float64) Cons {
	f := FluxX(u)
	coef := p.Rho * (s - p.U) / (s - sm)
	star := Cons{
		Rho: coef,
		Mx:  coef * sm,
		My:  coef * p.V,
		E:   coef * (u.E/p.Rho + (sm-p.U)*(sm+p.P/(p.Rho*(s-p.U)))),
	}
	return Cons{
		Rho: f.Rho + s*(star.Rho-u.Rho),
		Mx:  f.Mx + s*(star.Mx-u.Mx),
		My:  f.My + s*(star.My-u.My),
		E:   f.E + s*(star.E-u.E),
	}
}

func waveSpeedFactor(pStar, p float64) float64 {
	if pStar <= p {
		return 1
	}
	return math.Sqrt(1 + (Gamma+1)/(2*Gamma)*(pStar/p-1))
}

// HLLCFluxY computes the HLLC flux across a y-face by rotating into the
// x-frame.
func HLLCFluxY(l, r Cons) Cons {
	f := HLLCFluxX(swapXY(l), swapXY(r))
	return swapXY(f)
}

// MinMod is the classic symmetric slope limiter.
func MinMod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// MCLimiter is the monotonized-central limiter, sharper than MinMod while
// remaining TVD.
func MCLimiter(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	s := math.Copysign(1, a)
	return s * math.Min(0.5*math.Abs(a+b), math.Min(2*math.Abs(a), 2*math.Abs(b)))
}

// Limiter selects a slope limiter by name.
type Limiter int

// Supported limiters.
const (
	LimiterMinMod Limiter = iota
	LimiterMC
)

// Apply evaluates the limiter on the backward/forward differences a, b.
func (l Limiter) Apply(a, b float64) float64 {
	switch l {
	case LimiterMinMod:
		return MinMod(a, b)
	case LimiterMC:
		return MCLimiter(a, b)
	default:
		panic(fmt.Sprintf("euler: unknown limiter %d", l))
	}
}
