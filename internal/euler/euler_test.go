package euler

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPrim(rng *rand.Rand) Prim {
	return Prim{
		Rho: 0.1 + 2*rng.Float64(),
		U:   rng.NormFloat64(),
		V:   rng.NormFloat64(),
		P:   0.1 + 2*rng.Float64(),
	}
}

func consClose(a, b Cons, tol float64) bool {
	return math.Abs(a.Rho-b.Rho) < tol && math.Abs(a.Mx-b.Mx) < tol &&
		math.Abs(a.My-b.My) < tol && math.Abs(a.E-b.E) < tol
}

func TestPrimConsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPrim(rng)
		q := p.ToCons().ToPrim()
		return math.Abs(p.Rho-q.Rho) < 1e-12 && math.Abs(p.U-q.U) < 1e-12 &&
			math.Abs(p.V-q.V) < 1e-12 && math.Abs(p.P-q.P) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoundSpeed(t *testing.T) {
	p := Prim{Rho: 1, P: 1}
	want := math.Sqrt(1.4)
	if got := p.SoundSpeed(); math.Abs(got-want) > 1e-14 {
		t.Fatalf("SoundSpeed = %g want %g", got, want)
	}
	bad := Prim{Rho: -1, P: 1}
	if bad.SoundSpeed() != 0 {
		t.Fatal("negative density should give zero sound speed")
	}
}

func TestMaxWaveSpeed(t *testing.T) {
	p := Prim{Rho: 1, U: 2, V: -3, P: 1}
	c := p.SoundSpeed()
	sx, sy := p.MaxWaveSpeed()
	if math.Abs(sx-(2+c)) > 1e-14 || math.Abs(sy-(3+c)) > 1e-14 {
		t.Fatalf("MaxWaveSpeed = %g,%g", sx, sy)
	}
}

func TestValid(t *testing.T) {
	if !(Prim{Rho: 1, P: 1}).ToCons().Valid() {
		t.Fatal("valid state reported invalid")
	}
	if (Cons{Rho: -1, E: 1}).Valid() {
		t.Fatal("negative density reported valid")
	}
	if (Cons{Rho: 1, Mx: 10, E: 0.1}).Valid() {
		t.Fatal("negative pressure reported valid")
	}
	if (Cons{Rho: math.NaN(), E: 1}).Valid() {
		t.Fatal("NaN density reported valid")
	}
}

// HLLC consistency: the flux between identical states equals the physical
// flux.
func TestHLLCConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomPrim(rng).ToCons()
		return consClose(HLLCFluxX(u, u), FluxX(u), 1e-10) &&
			consClose(HLLCFluxY(u, u), FluxY(u), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// HLLC must be rotationally consistent: the y-flux of a state is the x-flux
// of the rotated state with momenta swapped.
func TestHLLCRotationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomPrim(rng).ToCons()
		r := randomPrim(rng).ToCons()
		fy := HLLCFluxY(l, r)
		fx := HLLCFluxX(swapXY(l), swapXY(r))
		return consClose(fy, swapXY(fx), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHLLCSupersonicUpwinding(t *testing.T) {
	// Supersonic flow to the right: flux must equal the left physical flux.
	l := Prim{Rho: 1, U: 10, P: 1}.ToCons()
	r := Prim{Rho: 0.5, U: 10, P: 0.8}.ToCons()
	if !consClose(HLLCFluxX(l, r), FluxX(l), 1e-12) {
		t.Fatal("supersonic right-moving flow not fully upwinded")
	}
	// Supersonic to the left.
	l2 := Prim{Rho: 1, U: -10, P: 1}.ToCons()
	r2 := Prim{Rho: 0.5, U: -10, P: 0.8}.ToCons()
	if !consClose(HLLCFluxX(l2, r2), FluxX(r2), 1e-12) {
		t.Fatal("supersonic left-moving flow not fully upwinded")
	}
}

func TestLimiters(t *testing.T) {
	// Opposite signs → zero slope.
	if MinMod(1, -1) != 0 || MCLimiter(1, -1) != 0 {
		t.Fatal("limiters must vanish at extrema")
	}
	// MinMod picks the smaller magnitude.
	if MinMod(1, 2) != 1 || MinMod(-3, -2) != -2 {
		t.Fatal("MinMod wrong branch")
	}
	// MC is bounded by 2*min and centered average.
	if got := MCLimiter(1, 3); got != 2 {
		t.Fatalf("MC(1,3) = %g want 2", got)
	}
	if got := MCLimiter(2, 2); got != 2 {
		t.Fatalf("MC(2,2) = %g want 2", got)
	}
}

func TestLimiterEnumApply(t *testing.T) {
	if LimiterMinMod.Apply(1, 2) != MinMod(1, 2) {
		t.Fatal("LimiterMinMod dispatch")
	}
	if LimiterMC.Apply(1, 2) != MCLimiter(1, 2) {
		t.Fatal("LimiterMC dispatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown limiter")
		}
	}()
	Limiter(99).Apply(1, 2)
}

// Property: limiter results are TVD-bounded: |φ(a,b)| ≤ 2·min(|a|,|b|) and
// the sign matches the inputs.
func TestLimiterTVDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		for _, lim := range []Limiter{LimiterMinMod, LimiterMC} {
			v := lim.Apply(a, b)
			if a*b <= 0 {
				if v != 0 {
					return false
				}
				continue
			}
			bound := 2 * math.Min(math.Abs(a), math.Abs(b))
			if math.Abs(v) > bound+1e-14 || v*a < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactRiemannSodStar(t *testing.T) {
	// Canonical Sod problem: p* ≈ 0.30313, u* ≈ 0.92745 (Toro Table 4.2).
	l := State1D{Rho: 1, U: 0, P: 1}
	r := State1D{Rho: 0.125, U: 0, P: 0.1}
	sample, err := ExactRiemann(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// The contact region carries p* and u*; sample just right of the contact.
	s := sample(0.93)
	if math.Abs(s.P-0.30313) > 1e-3 {
		t.Fatalf("p* = %g want 0.30313", s.P)
	}
	s2 := sample(0.92)
	if math.Abs(s2.U-0.92745) > 1e-3 {
		t.Fatalf("u* = %g want 0.92745", s2.U)
	}
	// Far field returns the inputs.
	if far := sample(-10); far != l {
		t.Fatalf("left far field = %+v", far)
	}
	if far := sample(10); far != r {
		t.Fatalf("right far field = %+v", far)
	}
}

func TestExactRiemannVacuum(t *testing.T) {
	l := State1D{Rho: 1, U: -100, P: 1}
	r := State1D{Rho: 1, U: 100, P: 1}
	if _, err := ExactRiemann(l, r); !errors.Is(err, ErrVacuum) {
		t.Fatalf("err = %v want ErrVacuum", err)
	}
}

func TestExactRiemannStrongShock(t *testing.T) {
	// Toro test 3: strong left rarefaction / right shock.
	l := State1D{Rho: 1, U: 0, P: 1000}
	r := State1D{Rho: 1, U: 0, P: 0.01}
	sample, err := ExactRiemann(l, r)
	if err != nil {
		t.Fatal(err)
	}
	s := sample(19.5) // just left of the shock (S ≈ 23.5), inside star region
	if math.Abs(s.P-460.894) > 1 {
		t.Fatalf("p* = %g want ≈460.894", s.P)
	}
	if math.Abs(s.U-19.5975) > 0.05 {
		t.Fatalf("u* = %g want ≈19.5975", s.U)
	}
}

// godunov1D advances the Sod problem with first-order Godunov + HLLC on a
// uniform 1D grid (v momentum unused) and returns cell-centred densities.
func godunov1D(n int, tEnd float64) ([]float64, []float64) {
	dx := 1.0 / float64(n)
	u := make([]Cons, n)
	for i := range u {
		x := (float64(i) + 0.5) * dx
		if x < 0.5 {
			u[i] = Prim{Rho: 1, P: 1}.ToCons()
		} else {
			u[i] = Prim{Rho: 0.125, P: 0.1}.ToCons()
		}
	}
	t := 0.0
	for t < tEnd {
		// CFL time step.
		smax := 0.0
		for _, c := range u {
			sx, _ := c.ToPrim().MaxWaveSpeed()
			if sx > smax {
				smax = sx
			}
		}
		dt := 0.45 * dx / smax
		if t+dt > tEnd {
			dt = tEnd - t
		}
		flux := make([]Cons, n+1)
		for i := 1; i < n; i++ {
			flux[i] = HLLCFluxX(u[i-1], u[i])
		}
		flux[0] = FluxX(u[0])
		flux[n] = FluxX(u[n-1])
		for i := 0; i < n; i++ {
			u[i].Rho -= dt / dx * (flux[i+1].Rho - flux[i].Rho)
			u[i].Mx -= dt / dx * (flux[i+1].Mx - flux[i].Mx)
			u[i].My -= dt / dx * (flux[i+1].My - flux[i].My)
			u[i].E -= dt / dx * (flux[i+1].E - flux[i].E)
		}
		t += dt
	}
	rho := make([]float64, n)
	xs := make([]float64, n)
	for i := range u {
		rho[i] = u[i].Rho
		xs[i] = (float64(i) + 0.5) * dx
	}
	return xs, rho
}

func TestSodShockTubeAgainstExact(t *testing.T) {
	const tEnd = 0.2
	xs, rho := godunov1D(400, tEnd)
	sample, err := ExactRiemann(State1D{Rho: 1, P: 1}, State1D{Rho: 0.125, P: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var l1 float64
	for i, x := range xs {
		exact := sample((x - 0.5) / tEnd)
		l1 += math.Abs(rho[i] - exact.Rho)
	}
	l1 /= float64(len(xs))
	if l1 > 0.01 {
		t.Fatalf("Sod L1 density error = %g, want < 0.01", l1)
	}
}

func TestGodunovConservation(t *testing.T) {
	// With outflow handled by physical-flux boundaries the interior update
	// conserves mass up to boundary fluxes; on a symmetric problem with
	// equal end states total mass drift must be tiny over a short run.
	n := 100
	dx := 1.0 / float64(n)
	_, rho := godunov1D(n, 0.05)
	var mass float64
	for _, r := range rho {
		mass += r * dx
	}
	// Initial mass = 0.5*1 + 0.5*0.125.
	want := 0.5 + 0.5*0.125
	if math.Abs(mass-want) > 1e-3 {
		t.Fatalf("mass = %g want %g", mass, want)
	}
}

func BenchmarkHLLCFlux(b *testing.B) {
	l := Prim{Rho: 1, U: 0.3, V: -0.1, P: 1}.ToCons()
	r := Prim{Rho: 0.5, U: -0.2, V: 0.4, P: 0.7}.ToCons()
	for i := 0; i < b.N; i++ {
		HLLCFluxX(l, r)
	}
}
