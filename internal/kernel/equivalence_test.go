package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"alamr/internal/mat"
)

func withWorkers(n int, fn func()) {
	prev := mat.SetWorkers(n)
	defer mat.SetWorkers(prev)
	fn()
}

func bitwiseEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomPoints(rng *rand.Rand, n, d int) *mat.Dense {
	data := make([]float64, n*d)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return mat.NewDense(n, d, data)
}

func eqKernels() []Kernel {
	return []Kernel{
		NewRBF(1.2, 1.1),
		NewARDRBF([]float64{1.1, 0.7, 1.5}, 1.2),
		NewMatern(1.5, 1.3, 1.0),
		NewMatern(2.5, 0.9, 1.1),
	}
}

func TestGramSerialParallelIdentical(t *testing.T) {
	for _, n := range []int{1, 3, 33, 64, 65, 127, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := randomPoints(rng, n, 3)
		for _, k := range eqKernels() {
			var serial, parallel *mat.Dense
			withWorkers(1, func() { serial = Gram(k, x) })
			withWorkers(8, func() { parallel = Gram(k, x) })
			if !bitwiseEqual(serial.RawData(), parallel.RawData()) {
				t.Fatalf("n=%d kernel=%T: parallel Gram differs from serial", n, k)
			}
		}
	}
}

func TestGramGradSerialParallelIdentical(t *testing.T) {
	for _, n := range []int{1, 33, 65, 127} {
		rng := rand.New(rand.NewSource(int64(n) + 1))
		x := randomPoints(rng, n, 3)
		for _, k := range eqKernels() {
			var gS, gP *mat.Dense
			var gradS, gradP []*mat.Dense
			withWorkers(1, func() { gS, gradS = GramGrad(k, x) })
			withWorkers(8, func() { gP, gradP = GramGrad(k, x) })
			if !bitwiseEqual(gS.RawData(), gP.RawData()) {
				t.Fatalf("n=%d kernel=%T: parallel GramGrad value differs", n, k)
			}
			if len(gradS) != len(gradP) {
				t.Fatalf("n=%d kernel=%T: gradient count differs", n, k)
			}
			for h := range gradS {
				if !bitwiseEqual(gradS[h].RawData(), gradP[h].RawData()) {
					t.Fatalf("n=%d kernel=%T: parallel gradient %d differs", n, k, h)
				}
			}
		}
	}
}

func TestCrossSerialParallelIdentical(t *testing.T) {
	for _, n := range []int{1, 33, 127} {
		rng := rand.New(rand.NewSource(int64(n) + 2))
		a := randomPoints(rng, n, 3)
		b := randomPoints(rng, n+5, 3)
		for _, k := range eqKernels() {
			var serial, parallel *mat.Dense
			withWorkers(1, func() { serial = Cross(k, a, b) })
			withWorkers(8, func() { parallel = Cross(k, a, b) })
			if !bitwiseEqual(serial.RawData(), parallel.RawData()) {
				t.Fatalf("n=%d kernel=%T: parallel Cross differs from serial", n, k)
			}
		}
	}
}

// The batch row evaluators use the precomputed-norms identity
// ‖x−y‖² = ‖x‖² + ‖y‖² − 2⟨x,y⟩, so they agree with the pairwise Eval
// only to numerical accuracy — except on the diagonal, which must cancel
// exactly.
func TestRowEvaluatorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, d := 60, 3
	x := randomPoints(rng, n, d)
	for _, k := range eqKernels() {
		ev := RowEvaluator(k, x)
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			ev(x.Row(i), 0, row)
			for j := 0; j < n; j++ {
				want := k.Eval(x.Row(i), x.Row(j))
				tol := 1e-10 * (1 + want)
				if diff := row[j] - want; diff > tol || diff < -tol {
					t.Fatalf("kernel=%T: row eval (%d,%d) = %g, Eval %g", k, i, j, row[j], want)
				}
			}
		}
	}
}

func TestGradRowEvaluatorMatchesEvalGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, d := 40, 3
	x := randomPoints(rng, n, d)
	for _, k := range eqKernels() {
		gev := GradRowEvaluator(k, x)
		nh := k.NumParams()
		val := make([]float64, n)
		grads := make([][]float64, nh)
		for h := range grads {
			grads[h] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			gev(x.Row(i), 0, val, grads)
			for j := 0; j < n; j++ {
				wantV, wantG := k.EvalGrad(x.Row(i), x.Row(j))
				tol := 1e-9
				if diff := val[j] - wantV; diff > tol || diff < -tol {
					t.Fatalf("kernel=%T: grad-row value (%d,%d) = %g, EvalGrad %g", k, i, j, val[j], wantV)
				}
				for h := 0; h < nh; h++ {
					if diff := grads[h][j] - wantG[h]; diff > tol || diff < -tol {
						t.Fatalf("kernel=%T: grad-row d%d (%d,%d) = %g, EvalGrad %g", k, h, i, j, grads[h][j], wantG[h])
					}
				}
			}
		}
	}
}

func TestGramSerialParallelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		d := 1 + rng.Intn(4)
		x := randomPoints(rng, n, d)
		k := NewRBF(math.Exp(rng.NormFloat64()*0.3), math.Exp(rng.NormFloat64()*0.3))
		var s, p *mat.Dense
		withWorkers(1, func() { s = Gram(k, x) })
		withWorkers(6, func() { p = Gram(k, x) })
		return bitwiseEqual(s.RawData(), p.RawData())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
