package kernel

import (
	"math/rand"
	"testing"

	"alamr/internal/mat"
)

// linKernel is a minimal custom kernel used to exercise the generic RowEval
// fallback.
type linKernel struct{ c float64 }

func (k *linKernel) Eval(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s + k.c
}
func (k *linKernel) EvalGrad(x, y []float64) (float64, []float64) {
	return k.Eval(x, y), []float64{0}
}
func (k *linKernel) NumParams() int        { return 1 }
func (k *linKernel) Params() []float64     { return []float64{k.c} }
func (k *linKernel) SetParams(p []float64) { k.c = p[0] }
func (k *linKernel) Clone() Kernel         { c := *k; return &c }
func (k *linKernel) String() string        { return "lin" }

func randRows(rng *rand.Rand, n, d int) *mat.Dense {
	x := mat.NewDense(n, d, nil)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return x
}

// An evaluator grown one Extend at a time must agree bitwise with one built
// fresh over the final matrix — the invariant that lets gp.Append skip the
// O(n·d) norm rebuild and that keeps incrementally maintained scoring
// caches equal to checkpoint-resume rebuilds.
func TestRowEvalExtendMatchesRebuildBitwise(t *testing.T) {
	const d, n0, appends = 3, 11, 25
	kernels := map[string]Kernel{
		"rbf":       NewRBF(0.7, 1.3),
		"ard":       NewARDRBF([]float64{0.5, 1.1, 2.0}, 0.9),
		"matern3/2": NewMatern(1.5, 0.8, 1.1),
		"matern5/2": NewMatern(2.5, 0.8, 1.1),
		"generic":   &linKernel{c: 0.25},
	}
	for name, k := range kernels {
		rng := rand.New(rand.NewSource(17))
		xs := randRows(rng, n0, d)
		grown := NewRowEval(k, xs)
		for a := 0; a < appends; a++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			xs = xs.AppendRow(row)
			grown.Extend(xs)
		}
		fresh := NewRowEval(k, xs)

		probe := make([]float64, d)
		for trial := 0; trial < 5; trial++ {
			for j := range probe {
				probe[j] = rng.NormFloat64()
			}
			n := xs.Rows()
			a := make([]float64, n)
			b := make([]float64, n)
			grown.Eval(probe, 0, a)
			fresh.Eval(probe, 0, b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: grown[%d] = %g, fresh = %g (must be bitwise equal)", name, i, a[i], b[i])
				}
			}
			// Offsets (the gp.Append border uses from = n−1 windows).
			tail := make([]float64, 1)
			grown.Eval(probe, n-1, tail)
			if tail[0] != b[n-1] {
				t.Fatalf("%s: offset eval %g, full eval %g", name, tail[0], b[n-1])
			}
		}
		// Both must agree with the scalar kernel within roundoff.
		vals := make([]float64, xs.Rows())
		fresh.Eval(probe, 0, vals)
		for i := range vals {
			want := k.Eval(probe, xs.Row(i))
			if diff := vals[i] - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%s: row eval[%d] = %g, scalar Eval = %g", name, i, vals[i], want)
			}
		}
	}
}
