// Package kernel implements the covariance functions used for Gaussian
// process regression: the isotropic squared exponential (RBF) of the paper,
// plus the anisotropic (ARD) RBF and the Matérn 3/2 and 5/2 family that the
// paper lists as future work.
//
// All hyperparameters live in log space, which makes positivity automatic
// and lets the optimizer work unconstrained. Gradients are with respect to
// the log-space parameters, the form needed by the marginal-likelihood
// ascent in package gp.
package kernel

import (
	"fmt"
	"math"

	"alamr/internal/mat"
)

// Kernel is a positive-semidefinite covariance function with tunable
// log-space hyperparameters.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
	// EvalGrad returns k(x, y) and dk/dθ for each log-space parameter θ.
	// The gradient slice is owned by the caller.
	EvalGrad(x, y []float64) (float64, []float64)
	// NumParams reports the number of hyperparameters.
	NumParams() int
	// Params returns a copy of the log-space hyperparameters.
	Params() []float64
	// SetParams replaces the log-space hyperparameters.
	SetParams(p []float64)
	// Clone returns an independent copy.
	Clone() Kernel
	// String names the kernel and its current hyperparameters.
	String() string
}

// RBF is the isotropic squared-exponential kernel
//
//	k(x, y) = σ_f² exp(−|x−y|² / (2ℓ²))
//
// with log-space parameters (log ℓ, log σ_f). This is the kernel the paper
// uses throughout (eq. 7).
type RBF struct {
	logLen, logAmp float64
}

// NewRBF creates an RBF kernel with the given length scale and amplitude
// (standard deviation σ_f), both of which must be positive.
func NewRBF(lengthScale, amplitude float64) *RBF {
	if lengthScale <= 0 || amplitude <= 0 {
		panic(fmt.Sprintf("kernel: RBF needs positive hyperparameters, got ℓ=%g σ_f=%g", lengthScale, amplitude))
	}
	return &RBF{logLen: math.Log(lengthScale), logAmp: math.Log(amplitude)}
}

// Eval implements Kernel.
func (k *RBF) Eval(x, y []float64) float64 {
	l := math.Exp(k.logLen)
	amp2 := math.Exp(2 * k.logAmp)
	return amp2 * math.Exp(-mat.SqDist(x, y)/(2*l*l))
}

// EvalGrad implements Kernel. Derivatives:
//
//	dk/d(log ℓ)   = k · r²/ℓ²
//	dk/d(log σ_f) = 2k
func (k *RBF) EvalGrad(x, y []float64) (float64, []float64) {
	l := math.Exp(k.logLen)
	amp2 := math.Exp(2 * k.logAmp)
	r2 := mat.SqDist(x, y)
	v := amp2 * math.Exp(-r2/(2*l*l))
	return v, []float64{v * r2 / (l * l), 2 * v}
}

// NumParams implements Kernel.
func (k *RBF) NumParams() int { return 2 }

// Params implements Kernel.
func (k *RBF) Params() []float64 { return []float64{k.logLen, k.logAmp} }

// SetParams implements Kernel.
func (k *RBF) SetParams(p []float64) {
	if len(p) != 2 {
		panic(fmt.Sprintf("kernel: RBF.SetParams got %d params, want 2", len(p)))
	}
	k.logLen, k.logAmp = p[0], p[1]
}

// Clone implements Kernel.
func (k *RBF) Clone() Kernel { c := *k; return &c }

// LengthScale returns ℓ.
func (k *RBF) LengthScale() float64 { return math.Exp(k.logLen) }

// Amplitude returns σ_f.
func (k *RBF) Amplitude() float64 { return math.Exp(k.logAmp) }

// String implements Kernel.
func (k *RBF) String() string {
	return fmt.Sprintf("RBF(ℓ=%.4g, σ_f=%.4g)", k.LengthScale(), k.Amplitude())
}

// ARDRBF is the anisotropic squared-exponential kernel with one length
// scale per input dimension:
//
//	k(x, y) = σ_f² exp(−½ Σ_d (x_d−y_d)²/ℓ_d²)
type ARDRBF struct {
	logLens []float64
	logAmp  float64
}

// NewARDRBF creates an anisotropic RBF kernel with per-dimension length
// scales.
func NewARDRBF(lengthScales []float64, amplitude float64) *ARDRBF {
	if len(lengthScales) == 0 {
		panic("kernel: ARDRBF needs at least one length scale")
	}
	if amplitude <= 0 {
		panic("kernel: ARDRBF needs positive amplitude")
	}
	ll := make([]float64, len(lengthScales))
	for i, l := range lengthScales {
		if l <= 0 {
			panic(fmt.Sprintf("kernel: ARDRBF length scale %d is %g, must be positive", i, l))
		}
		ll[i] = math.Log(l)
	}
	return &ARDRBF{logLens: ll, logAmp: math.Log(amplitude)}
}

func (k *ARDRBF) scaledSq(x, y []float64) float64 {
	if len(x) != len(k.logLens) || len(y) != len(k.logLens) {
		panic(fmt.Sprintf("kernel: ARDRBF input dim %d/%d, want %d", len(x), len(y), len(k.logLens)))
	}
	var s float64
	for d := range x {
		l := math.Exp(k.logLens[d])
		r := (x[d] - y[d]) / l
		s += r * r
	}
	return s
}

// Eval implements Kernel.
func (k *ARDRBF) Eval(x, y []float64) float64 {
	return math.Exp(2*k.logAmp) * math.Exp(-0.5*k.scaledSq(x, y))
}

// EvalGrad implements Kernel.
func (k *ARDRBF) EvalGrad(x, y []float64) (float64, []float64) {
	v := k.Eval(x, y)
	g := make([]float64, len(k.logLens)+1)
	for d := range k.logLens {
		l := math.Exp(k.logLens[d])
		r := (x[d] - y[d]) / l
		g[d] = v * r * r
	}
	g[len(k.logLens)] = 2 * v
	return v, g
}

// NumParams implements Kernel.
func (k *ARDRBF) NumParams() int { return len(k.logLens) + 1 }

// Params implements Kernel.
func (k *ARDRBF) Params() []float64 {
	p := make([]float64, len(k.logLens)+1)
	copy(p, k.logLens)
	p[len(k.logLens)] = k.logAmp
	return p
}

// SetParams implements Kernel.
func (k *ARDRBF) SetParams(p []float64) {
	if len(p) != len(k.logLens)+1 {
		panic(fmt.Sprintf("kernel: ARDRBF.SetParams got %d params, want %d", len(p), len(k.logLens)+1))
	}
	copy(k.logLens, p[:len(k.logLens)])
	k.logAmp = p[len(k.logLens)]
}

// Clone implements Kernel.
func (k *ARDRBF) Clone() Kernel {
	c := &ARDRBF{logLens: mat.CopyVec(k.logLens), logAmp: k.logAmp}
	return c
}

// String implements Kernel.
func (k *ARDRBF) String() string {
	ls := make([]float64, len(k.logLens))
	for i, l := range k.logLens {
		ls[i] = math.Exp(l)
	}
	return fmt.Sprintf("ARDRBF(ℓ=%.4g, σ_f=%.4g)", ls, math.Exp(k.logAmp))
}

// Matern is the Matérn kernel with smoothness ν ∈ {3/2, 5/2}:
//
//	ν=3/2: k = σ_f² (1+a)       exp(−a),  a = √3 r/ℓ
//	ν=5/2: k = σ_f² (1+a+a²/3) exp(−a),  a = √5 r/ℓ
type Matern struct {
	nu             float64 // 1.5 or 2.5
	logLen, logAmp float64
}

// NewMatern creates a Matérn kernel. nu must be 1.5 or 2.5.
func NewMatern(nu, lengthScale, amplitude float64) *Matern {
	if nu != 1.5 && nu != 2.5 {
		panic(fmt.Sprintf("kernel: Matérn ν must be 1.5 or 2.5, got %g", nu))
	}
	if lengthScale <= 0 || amplitude <= 0 {
		panic("kernel: Matérn needs positive hyperparameters")
	}
	return &Matern{nu: nu, logLen: math.Log(lengthScale), logAmp: math.Log(amplitude)}
}

// Eval implements Kernel.
func (k *Matern) Eval(x, y []float64) float64 {
	v, _ := k.evalA(math.Sqrt(mat.SqDist(x, y)))
	return v
}

// evalA returns k and a (the scaled distance).
func (k *Matern) evalA(r float64) (float64, float64) {
	l := math.Exp(k.logLen)
	amp2 := math.Exp(2 * k.logAmp)
	var a float64
	if k.nu == 1.5 {
		a = math.Sqrt(3) * r / l
		return amp2 * (1 + a) * math.Exp(-a), a
	}
	a = math.Sqrt(5) * r / l
	return amp2 * (1 + a + a*a/3) * math.Exp(-a), a
}

// EvalGrad implements Kernel. With a ∝ 1/ℓ, da/d(log ℓ) = −a, giving
//
//	ν=3/2: dk/d(log ℓ) = σ_f² a²        exp(−a)
//	ν=5/2: dk/d(log ℓ) = σ_f² a²(1+a)/3 exp(−a)
func (k *Matern) EvalGrad(x, y []float64) (float64, []float64) {
	r := math.Sqrt(mat.SqDist(x, y))
	v, a := k.evalA(r)
	amp2 := math.Exp(2 * k.logAmp)
	var dLen float64
	if k.nu == 1.5 {
		dLen = amp2 * a * a * math.Exp(-a)
	} else {
		dLen = amp2 * a * a * (1 + a) / 3 * math.Exp(-a)
	}
	return v, []float64{dLen, 2 * v}
}

// NumParams implements Kernel.
func (k *Matern) NumParams() int { return 2 }

// Params implements Kernel.
func (k *Matern) Params() []float64 { return []float64{k.logLen, k.logAmp} }

// SetParams implements Kernel.
func (k *Matern) SetParams(p []float64) {
	if len(p) != 2 {
		panic(fmt.Sprintf("kernel: Matern.SetParams got %d params, want 2", len(p)))
	}
	k.logLen, k.logAmp = p[0], p[1]
}

// Clone implements Kernel.
func (k *Matern) Clone() Kernel { c := *k; return &c }

// Nu returns the smoothness parameter.
func (k *Matern) Nu() float64 { return k.nu }

// String implements Kernel.
func (k *Matern) String() string {
	return fmt.Sprintf("Matern(ν=%g, ℓ=%.4g, σ_f=%.4g)", k.nu, math.Exp(k.logLen), math.Exp(k.logAmp))
}

// RowEvaluator returns a batch fast path over a fixed design matrix xs:
// the returned function fills out[t] = k(x, xs.Row(from+t)) for t in
// [0, len(out)). For the RBF, ARD-RBF and Matérn kernels it hoists the
// hyperparameter transforms (three math.Exp calls per pair in the naive
// per-pair Eval) out of the loop and reuses squared norms of the rows of
// xs precomputed once per evaluator, so a row costs one exponential per
// pair plus a d-length dot. Other kernels fall back to per-pair Eval.
//
// The evaluator captures the kernel's hyperparameters at construction time
// and is safe for concurrent use; it must be rebuilt if the kernel's
// parameters or xs change. Callers that grow xs incrementally should hold a
// RowEval (NewRowEval) instead and use its O(d) Extend.
func RowEvaluator(k Kernel, xs *mat.Dense) func(x []float64, from int, out []float64) {
	return NewRowEval(k, xs).Eval
}

// GradRowEvaluator is the gradient companion of RowEvaluator: it fills
// val[t] = k(x, xs.Row(from+t)) and grads[p][t] = dk/dθ_p for each
// log-space hyperparameter. Safe for concurrent use.
func GradRowEvaluator(k Kernel, xs *mat.Dense) func(x []float64, from int, val []float64, grads [][]float64) {
	switch kk := k.(type) {
	case *RBF:
		l := math.Exp(kk.logLen)
		invl2 := 1 / (l * l)
		inv2l2 := 0.5 * invl2
		amp2 := math.Exp(2 * kk.logAmp)
		norms := rowSqNorms(xs)
		return func(x []float64, from int, val []float64, grads [][]float64) {
			nx := sqNorm(x)
			g0, g1 := grads[0], grads[1]
			for t := range val {
				r2 := sqDistVia(nx, norms[from+t], x, xs.Row(from+t))
				v := amp2 * math.Exp(-r2*inv2l2)
				val[t] = v
				g0[t] = v * r2 * invl2
				g1[t] = 2 * v
			}
		}
	case *ARDRBF:
		d := len(kk.logLens)
		invL := make([]float64, d)
		for i, ll := range kk.logLens {
			invL[i] = math.Exp(-ll)
		}
		amp2 := math.Exp(2 * kk.logAmp)
		return func(x []float64, from int, val []float64, grads [][]float64) {
			rd2 := make([]float64, d)
			for t := range val {
				y := xs.Row(from + t)
				var s float64
				for dd := 0; dd < d; dd++ {
					r := (x[dd] - y[dd]) * invL[dd]
					r2 := r * r
					rd2[dd] = r2
					s += r2
				}
				v := amp2 * math.Exp(-0.5*s)
				val[t] = v
				for dd := 0; dd < d; dd++ {
					grads[dd][t] = v * rd2[dd]
				}
				grads[d][t] = 2 * v
			}
		}
	case *Matern:
		l := math.Exp(kk.logLen)
		amp2 := math.Exp(2 * kk.logAmp)
		half := kk.nu == 1.5
		c1 := math.Sqrt(3) / l
		if !half {
			c1 = math.Sqrt(5) / l
		}
		norms := rowSqNorms(xs)
		return func(x []float64, from int, val []float64, grads [][]float64) {
			nx := sqNorm(x)
			g0, g1 := grads[0], grads[1]
			for t := range val {
				a := c1 * math.Sqrt(sqDistVia(nx, norms[from+t], x, xs.Row(from+t)))
				e := math.Exp(-a)
				if half {
					val[t] = amp2 * (1 + a) * e
					g0[t] = amp2 * a * a * e
				} else {
					val[t] = amp2 * (1 + a + a*a/3) * e
					g0[t] = amp2 * a * a * (1 + a) / 3 * e
				}
				g1[t] = 2 * val[t]
			}
		}
	default:
		return func(x []float64, from int, val []float64, grads [][]float64) {
			for t := range val {
				v, dv := k.EvalGrad(x, xs.Row(from+t))
				val[t] = v
				for p := range dv {
					grads[p][t] = dv[p]
				}
			}
		}
	}
}

// sqNorm returns Σ v_d², in the same left-to-right order rowSqNorms uses,
// so that diagonal distances cancel exactly.
func sqNorm(v []float64) float64 {
	var s float64
	for _, a := range v {
		s += a * a
	}
	return s
}

// rowSqNorms precomputes the squared norm of every row of xs.
func rowSqNorms(xs *mat.Dense) []float64 {
	n := xs.Rows()
	norms := make([]float64, n)
	mat.ParallelFor(n, mat.ChunkFor(2*xs.Cols()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			norms[i] = sqNorm(xs.Row(i))
		}
	})
	return norms
}

// sqDistVia computes |x−y|² = |x|² + |y|² − 2x·y from precomputed norms,
// clamped at zero against cancellation.
func sqDistVia(nx, ny float64, x, y []float64) float64 {
	var dot float64
	for i, v := range x {
		dot += v * y[i]
	}
	r2 := nx + ny - 2*dot
	if r2 < 0 {
		return 0
	}
	return r2
}

// scaleDims returns x scaled element-wise by invL.
func scaleDims(x, invL []float64) []float64 {
	z := make([]float64, len(x))
	for i, v := range x {
		z[i] = v * invL[i]
	}
	return z
}

// scaledRows precomputes the length-scale-normalized rows of xs, their
// squared norms, and the scale factors themselves.
func (k *ARDRBF) scaledRows(xs *mat.Dense) (*mat.Dense, []float64, []float64) {
	d := len(k.logLens)
	invL := make([]float64, d)
	for i, ll := range k.logLens {
		invL[i] = math.Exp(-ll)
	}
	n := xs.Rows()
	z := mat.NewDense(n, d, nil)
	zn := make([]float64, n)
	mat.ParallelFor(n, mat.ChunkFor(4*d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := xs.Row(i)
			zi := z.Row(i)
			for dd := 0; dd < d; dd++ {
				zi[dd] = row[dd] * invL[dd]
			}
			zn[i] = sqNorm(zi)
		}
	})
	return z, zn, invL
}

// gramChunk sizes row chunks for symmetric assembly: a row of the Gram
// matrix costs ~32 flops per pair (one exponential dominates).
func gramChunk(n int) int { return mat.ChunkFor(32 * (n/2 + 1)) }

// Gram fills an n×n covariance matrix for the rows of x. The upper
// triangle is assembled row-parallel through the RowEvaluator fast path,
// then mirrored; every element is written by exactly one goroutine, so the
// result is identical for any worker count.
func Gram(k Kernel, x *mat.Dense) *mat.Dense {
	n := x.Rows()
	g := mat.NewDense(n, n, nil)
	ev := RowEvaluator(k, x)
	mat.ParallelFor(n, gramChunk(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ev(x.Row(i), i, g.Row(i)[i:])
		}
	})
	mirrorLower(g)
	return g
}

// mirrorLower copies the upper triangle of g into the lower triangle,
// row-parallel over destination rows.
func mirrorLower(g *mat.Dense) {
	n := g.Rows()
	mat.ParallelFor(n, mat.ChunkFor(n), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			rj := g.Row(j)
			for i := 0; i < j; i++ {
				rj[i] = g.Row(i)[j]
			}
		}
	})
}

// GramGrad returns the covariance matrix together with one matrix per
// hyperparameter holding dK/dθ element-wise. Assembly is row-parallel via
// the GradRowEvaluator fast path.
func GramGrad(k Kernel, x *mat.Dense) (*mat.Dense, []*mat.Dense) {
	n := x.Rows()
	p := k.NumParams()
	g := mat.NewDense(n, n, nil)
	grads := make([]*mat.Dense, p)
	for t := range grads {
		grads[t] = mat.NewDense(n, n, nil)
	}
	ev := GradRowEvaluator(k, x)
	mat.ParallelFor(n, gramChunk(n), func(lo, hi int) {
		local := make([][]float64, p)
		for i := lo; i < hi; i++ {
			for t := 0; t < p; t++ {
				local[t] = grads[t].Row(i)[i:]
			}
			ev(x.Row(i), i, g.Row(i)[i:], local)
		}
	})
	mirrorLower(g)
	for t := 0; t < p; t++ {
		mirrorLower(grads[t])
	}
	return g, grads
}

// Cross fills the m×n covariance matrix between the rows of a and b,
// row-parallel over the rows of a.
func Cross(k Kernel, a, b *mat.Dense) *mat.Dense {
	m, n := a.Rows(), b.Rows()
	g := mat.NewDense(m, n, nil)
	ev := RowEvaluator(k, b)
	mat.ParallelFor(m, mat.ChunkFor(32*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ev(a.Row(i), 0, g.Row(i))
		}
	})
	return g
}
