package kernel

import (
	"math"

	"alamr/internal/mat"
)

// RowEval is the stateful form of the batch kernel-row fast path: it
// evaluates full rows of k(x, ·) against a design matrix and can grow with
// that matrix one row at a time, the shape of the active-learning loop
// (`gp.Append`). Compared with rebuilding a RowEvaluator per append — which
// recomputes every precomputed squared norm, O(n·d) wasted work per
// iteration — Extend is O(d).
//
// Eval is safe for concurrent use. Extend mutates the evaluator and must
// not race with Eval; the GP serializes them (Append and Predict never
// overlap on one model). An evaluator must be rebuilt from scratch whenever
// the kernel's hyperparameters change — Extend only tracks data growth.
type RowEval interface {
	// Eval fills out[t] = k(x, xs.Row(from+t)) for t in [0, len(out)).
	Eval(x []float64, from int, out []float64)
	// Extend absorbs the last row of xs, which must be the evaluator's
	// design matrix grown by exactly one row (mat.Dense.AppendRow
	// semantics: earlier rows are unchanged). The appended row's derived
	// state (squared norm, scaled copy) is computed with the same scalar
	// kernels a fresh evaluator uses, so an extended evaluator and a
	// rebuilt one agree bitwise.
	Extend(xs *mat.Dense)
}

// NewRowEval builds the evaluator for k over xs. The RBF, ARD-RBF and
// Matérn kernels get specialized implementations with hoisted
// hyperparameter transforms and precomputed row norms; other kernels fall
// back to per-pair Eval.
func NewRowEval(k Kernel, xs *mat.Dense) RowEval {
	switch kk := k.(type) {
	case *RBF:
		l := math.Exp(kk.logLen)
		return &rbfRowEval{
			xs:     xs,
			norms:  rowSqNorms(xs),
			inv2l2: 1 / (2 * l * l),
			amp2:   math.Exp(2 * kk.logAmp),
		}
	case *ARDRBF:
		z, zn, invL := kk.scaledRows(xs)
		return &ardRowEval{z: z, zn: zn, invL: invL, amp2: math.Exp(2 * kk.logAmp)}
	case *Matern:
		l := math.Exp(kk.logLen)
		c1 := math.Sqrt(3) / l
		half := kk.nu == 1.5
		if !half {
			c1 = math.Sqrt(5) / l
		}
		return &maternRowEval{
			xs:    xs,
			norms: rowSqNorms(xs),
			c1:    c1,
			amp2:  math.Exp(2 * kk.logAmp),
			half:  half,
		}
	default:
		return &genericRowEval{k: k, xs: xs}
	}
}

// rbfRowEval is the isotropic squared-exponential fast path: one
// exponential plus a d-length dot per pair, via |x−y|² = |x|²+|y|²−2x·y.
type rbfRowEval struct {
	xs     *mat.Dense
	norms  []float64
	inv2l2 float64
	amp2   float64
}

func (e *rbfRowEval) Eval(x []float64, from int, out []float64) {
	nx := sqNorm(x)
	for t := range out {
		out[t] = e.amp2 * math.Exp(-sqDistVia(nx, e.norms[from+t], x, e.xs.Row(from+t))*e.inv2l2)
	}
}

func (e *rbfRowEval) Extend(xs *mat.Dense) {
	e.xs = xs
	e.norms = append(e.norms, sqNorm(xs.Row(xs.Rows()-1)))
}

// ardRowEval pre-scales the design rows by the inverse length scales once,
// so each pair costs one exponential plus a dot over the scaled rows.
type ardRowEval struct {
	z    *mat.Dense
	zn   []float64
	invL []float64
	amp2 float64
}

func (e *ardRowEval) Eval(x []float64, from int, out []float64) {
	zx := scaleDims(x, e.invL)
	nx := sqNorm(zx)
	for t := range out {
		out[t] = e.amp2 * math.Exp(-0.5*sqDistVia(nx, e.zn[from+t], zx, e.z.Row(from+t)))
	}
}

func (e *ardRowEval) Extend(xs *mat.Dense) {
	zr := scaleDims(xs.Row(xs.Rows()-1), e.invL)
	e.z = e.z.AppendRow(zr)
	e.zn = append(e.zn, sqNorm(zr))
}

type maternRowEval struct {
	xs    *mat.Dense
	norms []float64
	c1    float64
	amp2  float64
	half  bool // ν = 3/2
}

func (e *maternRowEval) Eval(x []float64, from int, out []float64) {
	nx := sqNorm(x)
	for t := range out {
		a := e.c1 * math.Sqrt(sqDistVia(nx, e.norms[from+t], x, e.xs.Row(from+t)))
		if e.half {
			out[t] = e.amp2 * (1 + a) * math.Exp(-a)
		} else {
			out[t] = e.amp2 * (1 + a + a*a/3) * math.Exp(-a)
		}
	}
}

func (e *maternRowEval) Extend(xs *mat.Dense) {
	e.xs = xs
	e.norms = append(e.norms, sqNorm(xs.Row(xs.Rows()-1)))
}

// genericRowEval is the per-pair fallback for custom kernels; Extend only
// needs to re-point at the grown matrix.
type genericRowEval struct {
	k  Kernel
	xs *mat.Dense
}

func (e *genericRowEval) Eval(x []float64, from int, out []float64) {
	for t := range out {
		out[t] = e.k.Eval(x, e.xs.Row(from+t))
	}
}

func (e *genericRowEval) Extend(xs *mat.Dense) { e.xs = xs }
