package kernel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"alamr/internal/mat"
)

func approx(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func allKernels(dim int) []Kernel {
	ls := make([]float64, dim)
	for i := range ls {
		ls[i] = 0.5 + 0.3*float64(i)
	}
	return []Kernel{
		NewRBF(0.7, 1.3),
		NewARDRBF(ls, 1.1),
		NewMatern(1.5, 0.8, 0.9),
		NewMatern(2.5, 0.6, 1.2),
	}
}

func TestKernelAtZeroDistance(t *testing.T) {
	x := []float64{0.3, -0.2, 0.9}
	for _, k := range allKernels(3) {
		v := k.Eval(x, x)
		// k(x,x) = σ_f² for every stationary kernel here.
		p := k.Params()
		amp2 := math.Exp(2 * p[len(p)-1])
		if !approx(v, amp2, 1e-12) {
			t.Fatalf("%v: k(x,x) = %g want %g", k, v, amp2)
		}
	}
}

func TestKernelSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range allKernels(4) {
		for trial := 0; trial < 20; trial++ {
			x := randVec(rng, 4)
			y := randVec(rng, 4)
			if !approx(k.Eval(x, y), k.Eval(y, x), 1e-14) {
				t.Fatalf("%v not symmetric", k)
			}
		}
	}
}

func TestKernelDecay(t *testing.T) {
	// Covariance must decrease with distance for stationary kernels.
	for _, k := range allKernels(1) {
		prev := k.Eval([]float64{0}, []float64{0})
		for r := 0.1; r < 5; r += 0.1 {
			v := k.Eval([]float64{0}, []float64{r})
			if v > prev+1e-14 {
				t.Fatalf("%v not monotonically decaying at r=%g", k, r)
			}
			prev = v
		}
	}
}

func TestRBFKnownValue(t *testing.T) {
	k := NewRBF(1, 1)
	// |x-y|² = 2 → k = exp(-1).
	got := k.Eval([]float64{0, 0}, []float64{1, 1})
	if !approx(got, math.Exp(-1), 1e-14) {
		t.Fatalf("RBF = %g want %g", got, math.Exp(-1))
	}
}

func TestRBFAccessors(t *testing.T) {
	k := NewRBF(0.5, 2)
	if !approx(k.LengthScale(), 0.5, 1e-14) || !approx(k.Amplitude(), 2, 1e-14) {
		t.Fatalf("accessors: ℓ=%g σ=%g", k.LengthScale(), k.Amplitude())
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := map[string]func(){
		"rbf zero length":   func() { NewRBF(0, 1) },
		"rbf neg amp":       func() { NewRBF(1, -1) },
		"ard empty":         func() { NewARDRBF(nil, 1) },
		"ard zero length":   func() { NewARDRBF([]float64{1, 0}, 1) },
		"ard bad amp":       func() { NewARDRBF([]float64{1}, 0) },
		"matern bad nu":     func() { NewMatern(2.0, 1, 1) },
		"matern bad length": func() { NewMatern(1.5, -1, 1) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestParamsRoundTrip(t *testing.T) {
	for _, k := range allKernels(3) {
		p := k.Params()
		for i := range p {
			p[i] += 0.1
		}
		k.SetParams(p)
		got := k.Params()
		for i := range p {
			if got[i] != p[i] {
				t.Fatalf("%T params round trip failed", k)
			}
		}
	}
}

func TestSetParamsWrongLenPanics(t *testing.T) {
	for _, k := range allKernels(2) {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			k.SetParams(make([]float64, k.NumParams()+1))
		})
	}
}

func TestCloneIndependent(t *testing.T) {
	for _, k := range allKernels(2) {
		c := k.Clone()
		p := c.Params()
		p[0] += 5
		c.SetParams(p)
		if k.Params()[0] == c.Params()[0] {
			t.Fatalf("%T Clone shares state", k)
		}
	}
}

func TestStringMentionsKernel(t *testing.T) {
	if !strings.Contains(NewRBF(1, 1).String(), "RBF") {
		t.Fatal("RBF String()")
	}
	if !strings.Contains(NewMatern(2.5, 1, 1).String(), "2.5") {
		t.Fatal("Matern String()")
	}
}

// Finite-difference check of every kernel's analytic gradient.
func TestEvalGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const h = 1e-6
	for _, k := range allKernels(3) {
		for trial := 0; trial < 10; trial++ {
			x := randVec(rng, 3)
			y := randVec(rng, 3)
			v, g := k.EvalGrad(x, y)
			if !approx(v, k.Eval(x, y), 1e-13) {
				t.Fatalf("%v EvalGrad value mismatch", k)
			}
			p0 := k.Params()
			for t2 := 0; t2 < k.NumParams(); t2++ {
				p := mat.CopyVec(p0)
				p[t2] += h
				k.SetParams(p)
				vp := k.Eval(x, y)
				p[t2] -= 2 * h
				k.SetParams(p)
				vm := k.Eval(x, y)
				k.SetParams(p0)
				fd := (vp - vm) / (2 * h)
				if math.Abs(fd-g[t2]) > 1e-5*math.Max(1, math.Abs(fd)) {
					t.Fatalf("%v grad[%d] = %g, fd = %g", k, t2, g[t2], fd)
				}
			}
		}
	}
}

func TestARDRBFDimMismatchPanics(t *testing.T) {
	k := NewARDRBF([]float64{1, 1}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Eval([]float64{1}, []float64{1})
}

func TestARDRBFAnisotropy(t *testing.T) {
	// Short length scale in dim 0 → faster decay along dim 0.
	k := NewARDRBF([]float64{0.1, 10}, 1)
	v0 := k.Eval([]float64{0, 0}, []float64{1, 0})
	v1 := k.Eval([]float64{0, 0}, []float64{0, 1})
	if v0 >= v1 {
		t.Fatalf("expected anisotropic decay: %g vs %g", v0, v1)
	}
}

func TestMaternSmoothnessOrdering(t *testing.T) {
	// At moderate distance, higher ν (smoother) stays closer to the RBF.
	m32 := NewMatern(1.5, 1, 1)
	m52 := NewMatern(2.5, 1, 1)
	rbf := NewRBF(1, 1)
	x, y := []float64{0}, []float64{1.0}
	v32, v52, vr := m32.Eval(x, y), m52.Eval(x, y), rbf.Eval(x, y)
	if !(math.Abs(v52-vr) < math.Abs(v32-vr)) {
		t.Fatalf("ν ordering violated: |%g−%g| vs |%g−%g|", v52, vr, v32, vr)
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 12, 3)
	for _, k := range allKernels(3) {
		g := Gram(k, x)
		for i := 0; i < 12; i++ {
			for j := 0; j < 12; j++ {
				if g.At(i, j) != g.At(j, i) {
					t.Fatalf("%v Gram not symmetric", k)
				}
			}
		}
		// PSD check: Cholesky with tiny jitter must succeed.
		if _, err := mat.NewCholeskyJitter(g, 1e-12, 1e-6); err != nil {
			t.Fatalf("%v Gram not PSD: %v", k, err)
		}
	}
}

func TestGramGradConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 6, 2)
	k := NewRBF(0.9, 1.1)
	g, grads := GramGrad(k, x)
	g2 := Gram(k, x)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if g.At(i, j) != g2.At(i, j) {
				t.Fatal("GramGrad value differs from Gram")
			}
		}
	}
	if len(grads) != k.NumParams() {
		t.Fatalf("grads count = %d", len(grads))
	}
	// Spot check one entry against EvalGrad.
	_, dv := k.EvalGrad(x.Row(1), x.Row(4))
	for t2 := range dv {
		if !approx(grads[t2].At(1, 4), dv[t2], 1e-14) {
			t.Fatalf("grad matrix mismatch at param %d", t2)
		}
	}
}

func TestCross(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 4, 2)
	b := randMat(rng, 3, 2)
	k := NewRBF(1, 1)
	c := Cross(k, a, b)
	r, cl := c.Dims()
	if r != 4 || cl != 3 {
		t.Fatalf("Cross dims %dx%d", r, cl)
	}
	if !approx(c.At(2, 1), k.Eval(a.Row(2), b.Row(1)), 1e-14) {
		t.Fatal("Cross entry mismatch")
	}
}

// Property: Gram matrices are PSD for arbitrary random inputs — the defining
// property of a covariance function.
func TestGramPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		d := 1 + rng.Intn(4)
		x := randMat(rng, n, d)
		for _, k := range allKernels(d) {
			g := Gram(k, x)
			// Quadratic form zᵀGz must be ≥ −tol for random z.
			z := randVec(rng, n)
			q := mat.Dot(z, g.MulVec(z))
			if q < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: k(x,y) ≤ k(x,x) for all stationary kernels (Cauchy–Schwarz).
func TestKernelBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		x := randVec(rng, d)
		y := randVec(rng, d)
		for _, k := range allKernels(d) {
			if k.Eval(x, y) > k.Eval(x, x)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randMat(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c, nil)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

func BenchmarkGramRBF200(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 200, 5)
	k := NewRBF(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gram(k, x)
	}
}
