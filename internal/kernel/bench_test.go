package kernel

import (
	"math/rand"
	"testing"

	"alamr/internal/mat"
)

var kernBenchSizes = []struct {
	name string
	n    int
}{
	{"50", 50},
	{"200", 200},
	{"600", 600},
	{"1920", 1920},
}

const benchDims = 2 // the paper's (log2 p, mx·2^maxlevel) feature space

func benchInputs(n int) *mat.Dense {
	rng := rand.New(rand.NewSource(int64(n)))
	x := mat.NewDense(n, benchDims, nil)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for d := range row {
			row[d] = rng.NormFloat64()
		}
	}
	return x
}

func BenchmarkKernelMatrixRBF(b *testing.B) {
	k := NewRBF(1.2, 0.8)
	for _, bs := range kernBenchSizes {
		if testing.Short() && bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x := benchInputs(bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gram(k, x)
			}
		})
	}
}

func BenchmarkKernelMatrixARD(b *testing.B) {
	k := NewARDRBF([]float64{1.2, 0.7}, 0.8)
	for _, bs := range kernBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x := benchInputs(bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gram(k, x)
			}
		})
	}
}

func BenchmarkKernelMatrixMatern(b *testing.B) {
	k := NewMatern(2.5, 1.2, 0.8)
	for _, bs := range kernBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x := benchInputs(bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gram(k, x)
			}
		})
	}
}

func BenchmarkKernelMatrixGrad(b *testing.B) {
	k := NewRBF(1.2, 0.8)
	for _, bs := range kernBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x := benchInputs(bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GramGrad(k, x)
			}
		})
	}
}

func BenchmarkKernelCross(b *testing.B) {
	k := NewRBF(1.2, 0.8)
	for _, bs := range kernBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x := benchInputs(bs.n)
			y := benchInputs(bs.n / 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Cross(k, y, x)
			}
		})
	}
}
