package online

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alamr/internal/faults"
	"alamr/internal/obs"
)

// TestOnlineKillResumeWithTracingEnabled extends the kill-and-resume
// bitwise contract to observability-enabled runs: metrics and tracing are
// write-only, so a campaign killed and resumed with a live registry and
// tracer must still reproduce the uninterrupted (obs-disabled) trajectory
// exactly — same selections, same censored observations, same health
// ledger, RNG streams untouched.
func TestOnlineKillResumeWithTracingEnabled(t *testing.T) {
	const seed = 31

	// Reference: the uninterrupted run with observability OFF.
	obs.Disable()
	uninterrupted, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), campaignCfg(seed))
	if err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}

	// Kill-and-resume with observability ON for both processes.
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerConfig{Out: f})
	obs.Enable(reg, tr)
	defer obs.Disable()

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	cfg := campaignCfg(seed)
	cfg.CheckpointPath = path
	kl := &killLab{inner: faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), after: 5}
	if _, err := Run(kl, cfg); err == nil {
		t.Fatal("campaign survived the kill")
	}
	resumed, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), cfg)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !reflect.DeepEqual(resumed, uninterrupted) {
		t.Fatalf("tracing-enabled resume diverged from obs-disabled run\nresumed: %+v\nuninterrupted: %+v",
			resumed, uninterrupted)
	}

	// The instrumentation actually fired: phases traced, checkpoints and
	// the restore counted.
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events during the campaign")
	}
	if n, _ := reg.CounterValue(obs.MetricCheckpointWrites); n == 0 {
		t.Fatal("checkpoint writes not counted")
	}
	if n, _ := reg.CounterValue(obs.MetricCheckpointRestores); n != 1 {
		t.Fatalf("checkpoint restores = %d, want 1", n)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("trace JSONL empty (err=%v)", err)
	}
}
