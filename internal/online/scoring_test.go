package online

import (
	"math"
	"testing"

	"alamr/internal/dataset"
	"alamr/internal/faults"
	"alamr/internal/mat"
)

// After a full faults-injected campaign — censored OOM feeds that grow only
// the memory surrogate, retries, periodic refits, and pool removals — the
// live scoring caches must still agree with direct Predict over the final
// pool within the pinned 1e-12 tolerance. This is the online counterpart of
// the gp-level equivalence suite, driven by the real feed paths instead of
// a synthetic schedule.
func TestOnlineScoringCacheMatchesPredict(t *testing.T) {
	lab := faults.MustFaultyLab(newFakeLab(), faultyCfg(19))
	c := newCampaign(lab, campaignCfg(19))
	c.cfg.setDefaults()
	if err := c.init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	if _, err := c.loop(); err != nil {
		t.Fatalf("loop: %v", err)
	}
	if c.res.Health.Censored == 0 {
		t.Fatal("fault cocktail produced no censored feeds; the test lost its point")
	}
	if got, want := c.costCache.Len(), len(c.pool); got != want {
		t.Fatalf("cost cache tracks %d candidates, pool has %d", got, want)
	}

	x := mat.NewDense(len(c.pool), dataset.NumFeatures, nil)
	for i, combo := range c.pool {
		f := dataset.ScaleFeatures(dataset.Job{P: combo.P, Mx: combo.Mx, MaxLevel: combo.MaxLevel, R0: combo.R0, RhoIn: combo.RhoIn})
		copy(x.Row(i), f[:])
	}
	for _, m := range []struct {
		name    string
		scores  func() (mu, sigma []float64)
		predict func(*mat.Dense) (mu, sigma []float64)
	}{
		{"cost", c.costCache.Scores, c.gpCost.Predict},
		{"mem", c.memCache.Scores, c.gpMem.Predict},
	} {
		mu, sigma := m.scores()
		wantMu, wantSigma := m.predict(x)
		for i := range wantMu {
			if math.Abs(mu[i]-wantMu[i]) > 1e-12 || math.Abs(sigma[i]-wantSigma[i]) > 1e-12 {
				t.Fatalf("%s surrogate: candidate %d: cached (%.17g, %.17g) vs Predict (%.17g, %.17g)",
					m.name, i, mu[i], sigma[i], wantMu[i], wantSigma[i])
			}
		}
	}
}
