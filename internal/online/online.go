// Package online implements the "online" counterpart of the paper's offline
// AL simulator (§IV): instead of replaying a database of precomputed
// samples, the learner proposes any configuration from the full design grid
// and a Lab actually runs it. The provided SimLab backs experiments with the
// AMR performance emulator and the cluster machine model, so a complete
// online campaign runs in seconds; the Lab interface is the seam where a
// real batch system would plug in.
package online

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"alamr/internal/amr"
	"alamr/internal/cluster"
	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
	"alamr/internal/stats"
)

// Lab runs experiments on demand.
type Lab interface {
	// Run executes the configuration and returns the measured job.
	Run(c dataset.Combo) (dataset.Job, error)
	// Candidates enumerates the full design space.
	Candidates() []dataset.Combo
}

// SimLab is a Lab backed by the AMR emulator + machine model. Reference
// solutions are computed lazily (one per physical parameter pair) and
// cached, so only the physics the learner actually explores is simulated.
type SimLab struct {
	machine  cluster.Machine
	refNx    int
	refTEnd  float64
	refSnaps int
	rootsX   int
	rootsY   int
	subcycle bool
	seed     int64

	mu   sync.Mutex
	refs map[[2]float64]*amr.Reference
	runs int
}

// SimLabConfig configures the simulation-backed lab; zero values match the
// dataset generator's defaults.
type SimLabConfig struct {
	Machine  cluster.Machine
	RefNx    int
	RefTEnd  float64
	RefSnaps int
	RootsX   int
	RootsY   int
	Subcycle bool
	Seed     int64
}

// NewSimLab creates a simulation-backed lab.
func NewSimLab(cfg SimLabConfig) *SimLab {
	if cfg.Machine.CoresPerNode == 0 {
		cfg.Machine = cluster.Edison()
	}
	if cfg.RefNx <= 0 {
		cfg.RefNx = 64
	}
	if cfg.RefTEnd <= 0 {
		cfg.RefTEnd = 0.15
	}
	if cfg.RefSnaps <= 0 {
		cfg.RefSnaps = 6
	}
	if cfg.RootsX <= 0 {
		cfg.RootsX = 8
	}
	if cfg.RootsY <= 0 {
		cfg.RootsY = 4
	}
	return &SimLab{
		machine:  cfg.Machine,
		refNx:    cfg.RefNx,
		refTEnd:  cfg.RefTEnd,
		refSnaps: cfg.RefSnaps,
		rootsX:   cfg.RootsX,
		rootsY:   cfg.RootsY,
		subcycle: cfg.Subcycle,
		seed:     cfg.Seed,
		refs:     make(map[[2]float64]*amr.Reference),
	}
}

// Candidates implements Lab: the paper's full 1920-combination grid.
func (l *SimLab) Candidates() []dataset.Combo { return dataset.AllCombos() }

// NumReferenceRuns reports how many physics references have been computed —
// the expensive part of the lab, worth watching in experiments.
func (l *SimLab) NumReferenceRuns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.refs)
}

// Run implements Lab.
func (l *SimLab) Run(c dataset.Combo) (dataset.Job, error) {
	ref, err := l.reference(c.R0, c.RhoIn)
	if err != nil {
		return dataset.Job{}, err
	}
	st, err := amr.Emulate(ref, amr.EmulateConfig{
		Mx: c.Mx, MaxLevel: c.MaxLevel,
		RootsX: l.rootsX, RootsY: l.rootsY,
		Subcycle: l.subcycle,
	})
	if err != nil {
		return dataset.Job{}, err
	}
	l.mu.Lock()
	l.runs++
	run := l.runs
	l.mu.Unlock()
	noise := rand.New(rand.NewSource(stats.SplitSeed(l.seed, run)))
	acc, err := l.machine.Simulate(cluster.JobSpec{Nodes: c.P, Mx: c.Mx, Stats: st}, noise)
	if err != nil {
		return dataset.Job{}, err
	}
	return dataset.Job{
		P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
		WallSec: acc.WallClockSec,
		CostNH:  acc.CostNodeHours,
		MemMB:   acc.MaxRSSBytes / (1 << 20),
	}, nil
}

func (l *SimLab) reference(r0, rhoin float64) (*amr.Reference, error) {
	key := [2]float64{r0, rhoin}
	l.mu.Lock()
	ref, ok := l.refs[key]
	l.mu.Unlock()
	if ok {
		return ref, nil
	}
	ref, err := amr.ReferenceRun(amr.ShockBubble{R0: r0, RhoIn: rhoin}, l.refNx, l.refTEnd, l.refSnaps)
	if err != nil {
		return nil, fmt.Errorf("online: reference (r0=%g, rhoin=%g): %w", r0, rhoin, err)
	}
	l.mu.Lock()
	l.refs[key] = ref
	l.mu.Unlock()
	return ref, nil
}

// Config drives an online AL campaign.
type Config struct {
	Policy core.Policy
	// InitDesign is the experimenter-chosen warm-up set (the paper's
	// "experimenters' intuition rather than AL" phase). Empty uses one
	// median-ish configuration, mirroring the n_init=1 scenario.
	InitDesign []dataset.Combo
	// Budget stops the campaign once cumulative cost exceeds it
	// (node-hours; 0 = unlimited).
	Budget float64
	// MaxExperiments bounds the number of AL-selected runs (default 50).
	MaxExperiments int
	// MemLimitMB, Kernel, GP, Seed as in core.LoopConfig.
	MemLimitMB float64
	Kernel     kernel.Kernel
	GP         gp.Config
	Seed       int64
}

func (c *Config) setDefaults() {
	if c.MaxExperiments <= 0 {
		c.MaxExperiments = 50
	}
	if c.Kernel == nil {
		c.Kernel = kernel.NewRBF(0.5, 1)
	}
	if c.GP.Noise == 0 {
		c.GP.Noise = 0.1
	}
	c.GP.NormalizeY = true
	if len(c.InitDesign) == 0 {
		c.InitDesign = []dataset.Combo{{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1}}
	}
}

// Result records an online campaign.
type Result struct {
	Jobs []dataset.Job // all executed jobs, init design first

	// Per-AL-selection records (indices align with Jobs[len(InitDesign):]).
	PredictedCost []float64 // one-step-ahead cost prediction (node-hours)
	ActualCost    []float64
	PredictedMem  []float64 // one-step-ahead memory prediction (MB)
	ActualMem     []float64
	CumCost       []float64
	CumRegret     []float64
	Violation     []bool

	Reason core.StopReason
}

// OneStepMAPE returns the mean absolute percentage error of the
// one-step-ahead cost predictions — the natural online accuracy metric when
// no held-out test set exists.
func (r *Result) OneStepMAPE() float64 {
	if len(r.PredictedCost) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range r.PredictedCost {
		s += math.Abs(r.PredictedCost[i]-r.ActualCost[i]) / r.ActualCost[i]
	}
	return s / float64(len(r.PredictedCost))
}

// Run executes an online AL campaign against the lab.
func Run(lab Lab, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if cfg.Policy == nil {
		return nil, errors.New("online: Config.Policy is required")
	}

	res := &Result{Reason: core.StopMaxIterations}

	// Warm-up phase: run the initial design.
	var xRows [][]float64
	var logCost, logMem []float64
	for _, c := range cfg.InitDesign {
		job, err := lab.Run(c)
		if err != nil {
			return nil, fmt.Errorf("online: init design run: %w", err)
		}
		res.Jobs = append(res.Jobs, job)
		f := dataset.ScaleFeatures(job)
		xRows = append(xRows, f[:])
		logCost = append(logCost, math.Log10(job.CostNH))
		logMem = append(logMem, math.Log10(job.MemMB))
	}

	gpCost := gp.New(cfg.Kernel, cfg.GP)
	gpMem := gp.New(cfg.Kernel, cfg.GP)
	if err := gpCost.Fit(rowsToDense(xRows), logCost); err != nil {
		return nil, err
	}
	if err := gpMem.Fit(rowsToDense(xRows), logMem); err != nil {
		return nil, err
	}
	gpCost.SetRestarts(0)
	gpMem.SetRestarts(0)

	// Candidate pool: the design grid minus what already ran.
	ran := make(map[dataset.Combo]bool, len(cfg.InitDesign))
	for _, c := range cfg.InitDesign {
		ran[c] = true
	}
	var pool []dataset.Combo
	for _, c := range lab.Candidates() {
		if !ran[c] {
			pool = append(pool, c)
		}
	}

	rng := rand.New(rand.NewSource(stats.SplitSeed(cfg.Seed, 0)))
	memLimitLog := math.Inf(1)
	memLimitRaw := math.Inf(1)
	if cfg.MemLimitMB > 0 {
		memLimitLog = math.Log10(cfg.MemLimitMB)
		memLimitRaw = cfg.MemLimitMB
	}

	var cumCost, cumRegret float64
	for sel := 0; sel < cfg.MaxExperiments && len(pool) > 0; sel++ {
		x := mat.NewDense(len(pool), dataset.NumFeatures, nil)
		for i, c := range pool {
			f := dataset.ScaleFeatures(dataset.Job{P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn})
			copy(x.Row(i), f[:])
		}
		muC, sigC := gpCost.Predict(x)
		muM, sigM := gpMem.Predict(x)
		cands := &core.Candidates{
			X: x, MuCost: muC, SigmaCost: sigC, MuMem: muM, SigmaMem: sigM,
			MemLimitLog: memLimitLog,
		}
		pick, err := cfg.Policy.Select(cands, rng)
		if err != nil {
			if errors.Is(err, core.ErrAllExceedLimit) {
				res.Reason = core.StopMemoryLimit
				break
			}
			return nil, fmt.Errorf("online: selection %d: %w", sel, err)
		}

		combo := pool[pick]
		job, err := lab.Run(combo)
		if err != nil {
			return nil, fmt.Errorf("online: running %+v: %w", combo, err)
		}
		res.Jobs = append(res.Jobs, job)
		res.PredictedCost = append(res.PredictedCost, math.Pow(10, muC[pick]))
		res.ActualCost = append(res.ActualCost, job.CostNH)
		res.PredictedMem = append(res.PredictedMem, math.Pow(10, muM[pick]))
		res.ActualMem = append(res.ActualMem, job.MemMB)

		cumCost += job.CostNH
		violated := job.MemMB >= memLimitRaw
		if violated {
			cumRegret += job.CostNH
		}
		res.CumCost = append(res.CumCost, cumCost)
		res.CumRegret = append(res.CumRegret, cumRegret)
		res.Violation = append(res.Violation, violated)

		fx := dataset.ScaleFeatures(job)
		if err := gpCost.Append(fx[:], math.Log10(job.CostNH)); err != nil {
			return nil, err
		}
		if err := gpMem.Append(fx[:], math.Log10(job.MemMB)); err != nil {
			return nil, err
		}
		if (sel+1)%10 == 0 {
			if err := gpCost.Refit(); err != nil {
				return nil, err
			}
			if err := gpMem.Refit(); err != nil {
				return nil, err
			}
		}

		pool = append(pool[:pick], pool[pick+1:]...)

		if cfg.Budget > 0 && cumCost >= cfg.Budget {
			res.Reason = core.StopReason("budget-exhausted")
			break
		}
	}
	if len(pool) == 0 && res.Reason == core.StopMaxIterations {
		res.Reason = core.StopPoolExhausted
	}
	return res, nil
}

func rowsToDense(rows [][]float64) *mat.Dense {
	x := mat.NewDense(len(rows), len(rows[0]), nil)
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return x
}
