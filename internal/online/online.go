// Package online implements the "online" counterpart of the paper's offline
// AL simulator (§IV): instead of replaying a database of precomputed
// samples, the learner proposes any configuration from the full design grid
// and a Lab actually runs it. The provided SimLab backs experiments with the
// AMR performance emulator and the cluster machine model, so a complete
// online campaign runs in seconds; the Lab interface is the seam where a
// real batch system would plug in.
//
// The campaign runtime is fault tolerant: lab failures are classified
// through the internal/faults taxonomy, retryable faults are retried with
// exponential backoff, OOM kills become censored memory observations (the
// model learns MaxRSS >= limit while the wasted cost still accrues to
// CC/CR, the §V-C "learns from its own failures" mechanism), and only fatal
// errors or an exhausted retry budget stop a campaign — returning the
// partial Result rather than discarding it. With Config.CheckpointPath set,
// the loop state is atomically checkpointed after every experiment and a
// killed campaign resumes bitwise-identically.
package online

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"

	"alamr/internal/amr"
	"alamr/internal/cluster"
	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/faults"
	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
	"alamr/internal/obs"
	"alamr/internal/stats"
)

// Lab runs experiments on demand (see engine.Lab): Run executes one
// configuration and returns the measured job, Candidates enumerates the full
// design space.
type Lab = engine.Lab

// SimLab is a Lab backed by the AMR emulator + machine model. Reference
// solutions are computed lazily (one per physical parameter pair) and
// cached, so only the physics the learner actually explores is simulated.
type SimLab struct {
	machine  cluster.Machine
	refNx    int
	refTEnd  float64
	refSnaps int
	rootsX   int
	rootsY   int
	subcycle bool
	seed     int64

	mu   sync.Mutex
	refs map[[2]float64]*amr.Reference
	runs int
}

// SimLabConfig configures the simulation-backed lab; zero values match the
// dataset generator's defaults.
type SimLabConfig struct {
	Machine  cluster.Machine
	RefNx    int
	RefTEnd  float64
	RefSnaps int
	RootsX   int
	RootsY   int
	Subcycle bool
	Seed     int64
}

// NewSimLab creates a simulation-backed lab.
func NewSimLab(cfg SimLabConfig) *SimLab {
	if cfg.Machine.CoresPerNode == 0 {
		cfg.Machine = cluster.Edison()
	}
	if cfg.RefNx <= 0 {
		cfg.RefNx = 64
	}
	if cfg.RefTEnd <= 0 {
		cfg.RefTEnd = 0.15
	}
	if cfg.RefSnaps <= 0 {
		cfg.RefSnaps = 6
	}
	if cfg.RootsX <= 0 {
		cfg.RootsX = 8
	}
	if cfg.RootsY <= 0 {
		cfg.RootsY = 4
	}
	return &SimLab{
		machine:  cfg.Machine,
		refNx:    cfg.RefNx,
		refTEnd:  cfg.RefTEnd,
		refSnaps: cfg.RefSnaps,
		rootsX:   cfg.RootsX,
		rootsY:   cfg.RootsY,
		subcycle: cfg.Subcycle,
		seed:     cfg.Seed,
		refs:     make(map[[2]float64]*amr.Reference),
	}
}

// Candidates implements Lab: the paper's full 1920-combination grid.
func (l *SimLab) Candidates() []dataset.Combo { return dataset.AllCombos() }

// NumReferenceRuns reports how many physics references have been computed —
// the expensive part of the lab, worth watching in experiments.
func (l *SimLab) NumReferenceRuns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.refs)
}

// Run implements Lab: each call advances the lab's run counter, which seeds
// that run's measurement noise.
func (l *SimLab) Run(c dataset.Combo) (dataset.Job, error) {
	l.mu.Lock()
	l.runs++
	run := l.runs
	l.mu.Unlock()
	return l.RunSeeded(c, stats.SplitSeed(l.seed, run))
}

// RunSeeded executes the configuration with an explicitly-seeded noise
// stream instead of drawing from the lab's own run counter. The result is a
// pure function of (c, noiseSeed), which is what lets a remote dispatcher
// assign run indices centrally and re-execute a lost job on any worker with
// an identical outcome.
func (l *SimLab) RunSeeded(c dataset.Combo, noiseSeed int64) (dataset.Job, error) {
	ref, err := l.reference(c.R0, c.RhoIn)
	if err != nil {
		return dataset.Job{}, err
	}
	st, err := amr.Emulate(ref, amr.EmulateConfig{
		Mx: c.Mx, MaxLevel: c.MaxLevel,
		RootsX: l.rootsX, RootsY: l.rootsY,
		Subcycle: l.subcycle,
	})
	if err != nil {
		return dataset.Job{}, err
	}
	noise := rand.New(rand.NewSource(noiseSeed))
	acc, err := l.machine.Simulate(cluster.JobSpec{Nodes: c.P, Mx: c.Mx, Stats: st}, noise)
	if err != nil {
		return dataset.Job{}, err
	}
	return dataset.Job{
		P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
		WallSec: acc.WallClockSec,
		CostNH:  acc.CostNodeHours,
		MemMB:   acc.MaxRSSBytes / (1 << 20),
	}, nil
}

// simLabState is the JSON schema of the lab's checkpointable state: the run
// counter that seeds per-run measurement noise. The reference cache is pure
// deterministic computation and is rebuilt lazily after a restore.
type simLabState struct {
	Runs int `json:"runs"`
}

// LabState implements faults.Resumable so campaign checkpoints can restore
// the lab's noise stream position exactly.
func (l *SimLab) LabState() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return json.Marshal(simLabState{Runs: l.runs})
}

// RestoreLabState implements faults.Resumable.
func (l *SimLab) RestoreLabState(state []byte) error {
	var st simLabState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("online: decoding SimLab state: %w", err)
	}
	l.mu.Lock()
	l.runs = st.Runs
	l.mu.Unlock()
	return nil
}

func (l *SimLab) reference(r0, rhoin float64) (*amr.Reference, error) {
	key := [2]float64{r0, rhoin}
	l.mu.Lock()
	ref, ok := l.refs[key]
	l.mu.Unlock()
	if ok {
		return ref, nil
	}
	ref, err := amr.ReferenceRun(amr.ShockBubble{R0: r0, RhoIn: rhoin}, l.refNx, l.refTEnd, l.refSnaps)
	if err != nil {
		return nil, fmt.Errorf("online: reference (r0=%g, rhoin=%g): %w", r0, rhoin, err)
	}
	l.mu.Lock()
	l.refs[key] = ref
	l.mu.Unlock()
	return ref, nil
}

// Config drives an online AL campaign.
type Config struct {
	Policy core.Policy
	// InitDesign is the experimenter-chosen warm-up set (the paper's
	// "experimenters' intuition rather than AL" phase). Empty uses one
	// median-ish configuration, mirroring the n_init=1 scenario.
	InitDesign []dataset.Combo
	// Budget stops the campaign once cumulative cost exceeds it
	// (node-hours; 0 = unlimited).
	Budget float64
	// MaxExperiments bounds the number of AL-selected runs (default 50).
	MaxExperiments int
	// MemLimitMB, Kernel, GP, Seed as in core.LoopConfig.
	MemLimitMB float64
	Kernel     kernel.Kernel
	GP         gp.Config
	Seed       int64
	// Model selects the surrogate family from the engine registry
	// ("exact", "sparse", "treed", "multifid"); nil means the exact GP —
	// or the co-kriging multifid model when Fidelity is set. The model name
	// is recorded in checkpoints, so a resume under a different surrogate
	// family is rejected instead of silently diverging.
	Model *engine.ModelSpec
	// Fidelity turns the campaign multi-fidelity: the lab's candidate grid
	// is restricted to the ladder's MaxLevel rungs, the surrogates become
	// co-kriging models over the ladder, the default init design seeds every
	// rung, and policies see a per-candidate FidelityView (which the
	// costperinfo acquisition requires). The ladder is stamped into
	// checkpoints and validated on resume, like the model name.
	Fidelity *engine.FidelitySpec

	// Retry paces repeated attempts on failed jobs; the zero value means
	// up to 3 attempts with 1s-base exponential backoff and deterministic
	// jitter (see faults.RetryPolicy).
	Retry faults.RetryPolicy
	// CheckpointPath, when non-empty, enables campaign checkpoint/resume:
	// the loop state is atomically serialized there (temp file + rename)
	// and a fresh Run against an existing checkpoint resumes mid-campaign,
	// reproducing the uninterrupted trajectory bit for bit.
	CheckpointPath string
	// CheckpointEvery writes the checkpoint every k-th experiment
	// (default 1: after every experiment).
	CheckpointEvery int
	// Campaign optionally records this run into per-campaign labeled obs
	// series (set by the sweep runner; nil outside sweeps).
	Campaign *engine.CampaignObs
	// Stop optionally requests cooperative cancellation: polled at every
	// round boundary, a true return ends the campaign with StopCancelled.
	// The last completed experiment is checkpointed as usual, so a cancelled
	// campaign's state stays consistent on disk.
	Stop func() bool
}

func (c *Config) setDefaults() {
	if c.MaxExperiments <= 0 {
		c.MaxExperiments = 50
	}
	if c.Kernel == nil {
		c.Kernel = kernel.NewRBF(0.5, 1)
	}
	if c.GP.Noise == 0 {
		c.GP.Noise = 0.1
	}
	c.GP.NormalizeY = true
	if len(c.InitDesign) == 0 {
		base := dataset.Combo{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1}
		if c.Fidelity != nil {
			// Seed every rung so each δ-GP of the co-kriging ladder starts
			// fitted (MultiFid needs at least the base level populated).
			for _, l := range c.Fidelity.Levels {
				b := base
				b.MaxLevel = l
				c.InitDesign = append(c.InitDesign, b)
			}
		} else {
			c.InitDesign = []dataset.Combo{base}
		}
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
}

// hyperoptEvery is the online loop's full-refit cadence: every k-th
// selection re-optimizes hyperparameters; the others use the O(n²)
// incremental update.
const hyperoptEvery = 10

// Result records an online campaign.
type Result struct {
	Jobs []dataset.Job // all executed jobs, init design first

	// Per-AL-selection records (indices align with Jobs[len(InitDesign):]).
	PredictedCost []float64 // one-step-ahead cost prediction (node-hours)
	ActualCost    []float64
	PredictedMem  []float64 // one-step-ahead memory prediction (MB)
	ActualMem     []float64
	CumCost       []float64
	CumRegret     []float64
	Violation     []bool
	// Censored marks selections that were killed (OOM/timeout): their
	// ActualCost is the cost wasted up to the kill, and for OOM kills
	// ActualMem is the RSS limit — a lower bound, not a measurement.
	Censored []bool
	// SelectedLevel records each AL selection's fidelity ladder index
	// (multi-fidelity campaigns only; absent otherwise, keeping
	// single-fidelity checkpoints byte-identical).
	SelectedLevel []int `json:"SelectedLevel,omitempty"`

	// Health is the campaign's fault ledger: every lab attempt is accounted
	// as a success, a retried failure, a censored kill, or a fatal stop.
	Health Health

	Reason core.StopReason
}

// Health aggregates the fault-tolerance bookkeeping of a campaign.
type Health struct {
	// Attempts counts every lab execution. The ledger always balances:
	// Attempts = Successes + Retries + Censored + Fatal.
	Attempts  int `json:"attempts"`
	Successes int `json:"successes"`
	Retries   int `json:"retries"`
	Censored  int `json:"censored"`
	Fatal     int `json:"fatal"`
	// FaultsByClass counts failed attempts per fault class;
	// LostNHByClass attributes the wasted node-hours to each class.
	FaultsByClass map[string]int     `json:"faults_by_class,omitempty"`
	LostNHByClass map[string]float64 `json:"lost_nh_by_class,omitempty"`
	// LostNH is the total node-hours charged to failed attempts.
	LostNH float64 `json:"lost_nh"`
	// BackoffSec is the total (virtual or real) retry backoff delay.
	BackoffSec float64 `json:"backoff_sec,omitempty"`
}

// absorb folds one retry-layer outcome into the ledger.
func (h *Health) absorb(o faults.Outcome) {
	h.Attempts += o.Attempts
	h.Retries += o.Retries
	switch {
	case o.OK:
		h.Successes++
	case o.Fault != nil && o.Fault.Severity == faults.Censored:
		h.Censored++
	default:
		h.Fatal++
	}
	h.LostNH += o.LostNH
	h.BackoffSec += o.BackoffSec
	if len(o.ByClass) > 0 && h.FaultsByClass == nil {
		h.FaultsByClass = make(map[string]int)
	}
	for cl, n := range o.ByClass {
		h.FaultsByClass[string(cl)] += n
	}
	if len(o.LostNHByClass) > 0 && h.LostNHByClass == nil {
		h.LostNHByClass = make(map[string]float64)
	}
	for cl, nh := range o.LostNHByClass {
		h.LostNHByClass[string(cl)] += nh
	}
}

// Consistent verifies the attempt ledger balances: every attempt is exactly
// one of success, retried failure, censored kill, or fatal stop.
func (h *Health) Consistent() bool {
	return h.Attempts == h.Successes+h.Retries+h.Censored+h.Fatal
}

// OneStepMAPE returns the mean absolute percentage error of the
// one-step-ahead cost predictions — the natural online accuracy metric when
// no held-out test set exists. Censored selections enter with the partial
// cost observed up to the kill.
func (r *Result) OneStepMAPE() float64 {
	if len(r.PredictedCost) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range r.PredictedCost {
		s += math.Abs(r.PredictedCost[i]-r.ActualCost[i]) / r.ActualCost[i]
	}
	return s / float64(len(r.PredictedCost))
}

// campaign is the mutable state of one online run. Everything needed to
// resume bitwise-identically is either here or derivable from the feed log:
// the GPs are rebuilt by replaying feeds, the candidate pool by filtering
// the grid against executed configurations, and the policy RNG by skipping
// the recorded number of draws.
type campaign struct {
	lab Lab
	cfg Config
	res *Result

	gpCost, gpMem gp.Model
	pool          []dataset.Combo
	src           *stats.CountingSource
	rng           *rand.Rand
	feeds         []feedRec
	initLen       int

	// poolX and the two caches mirror pool: scaled features in grid order
	// plus one incremental posterior cache per surrogate (the
	// model-appropriate gp.PoolCache), so each selection re-scores the
	// pool in O(m·n) — or O(m·k) sparse, O(m·leaf) treed — instead of
	// re-solving per candidate. Exact and treed caches built after a
	// checkpoint resume rebuild through the flat solve path and therefore
	// agree bitwise with caches maintained across an uninterrupted run;
	// the sparse cache resynchronizes exactly at every refit cadence (see
	// gp.SparseScoringCache). Nil caches (custom surrogates) fall back to
	// direct Predict over poolX.
	poolX     *mat.Dense
	costCache gp.PoolCache
	memCache  gp.PoolCache

	memLimitLog, memLimitRaw float64
	cumCost, cumRegret       float64
}

// feedRec is one entry of the model feed log: which scaled-feature row was
// absorbed by which surrogate (a censored OOM kill feeds only the memory
// model, with the clamped lower bound), and whether a hyperparameter refit
// followed. Replaying the log reproduces the GP state exactly.
type feedRec struct {
	X       []float64 `json:"x"`
	LogCost *float64  `json:"log_cost,omitempty"`
	LogMem  *float64  `json:"log_mem,omitempty"`
	Refit   bool      `json:"refit,omitempty"`
	Init    bool      `json:"init,omitempty"`
}

func newCampaign(lab Lab, cfg Config) *campaign {
	c := &campaign{
		lab: lab,
		cfg: cfg,
		res: &Result{Reason: core.StopMaxIterations},
		src: stats.NewCountingSource(stats.SplitSeed(cfg.Seed, 0)),
	}
	c.rng = rand.New(c.src)
	c.memLimitLog = math.Inf(1)
	c.memLimitRaw = math.Inf(1)
	if cfg.MemLimitMB > 0 {
		c.memLimitLog = math.Log10(cfg.MemLimitMB)
		c.memLimitRaw = cfg.MemLimitMB
	}
	return c
}

// runJob executes one configuration through the retry layer and folds the
// outcome into the campaign health ledger.
func (c *campaign) runJob(combo dataset.Combo) faults.Outcome {
	p := c.cfg.Retry
	if p.Seed == 0 {
		p.Seed = c.cfg.Seed
	}
	out := faults.RunWithRetry(c.lab, combo, p)
	c.res.Health.absorb(out)
	return out
}

// fatalError wraps a terminal outcome into the campaign-stopping error.
func fatalError(combo dataset.Combo, out faults.Outcome) error {
	if out.Exhausted {
		return fmt.Errorf("online: retry budget exhausted on %+v after %d attempts: %w",
			combo, out.Attempts, out.Fault)
	}
	return fmt.Errorf("online: running %+v: %w", combo, out.Fault)
}

// init runs the warm-up design and fits the initial surrogates. Jobs that
// completed before a failure are preserved: on a fatal fault the partial
// Result is returned to the caller alongside the error.
func (c *campaign) init() error {
	for _, combo := range c.cfg.InitDesign {
		out := c.runJob(combo)
		switch {
		case out.OK:
			job := out.Job
			c.res.Jobs = append(c.res.Jobs, job)
			f := dataset.ScaleFeatures(job)
			lc, lm := math.Log10(job.CostNH), math.Log10(job.MemMB)
			c.feeds = append(c.feeds, feedRec{X: append([]float64(nil), f[:]...), LogCost: &lc, LogMem: &lm, Init: true})
		case out.Fault != nil && out.Fault.Severity == faults.Censored && !out.Exhausted:
			// A killed warm-up job still teaches what it can: an OOM kill
			// contributes the censored memory bound; a timeout contributes
			// nothing but its wasted cost stays on the ledger.
			job := out.Fault.Job
			c.res.Jobs = append(c.res.Jobs, job)
			if out.Fault.Class == faults.ClassOOM && job.MemMB > 0 {
				f := dataset.ScaleFeatures(job)
				lm := math.Log10(job.MemMB)
				c.feeds = append(c.feeds, feedRec{X: append([]float64(nil), f[:]...), LogMem: &lm, Init: true})
			}
		default:
			c.res.Reason = core.StopFault
			return fatalError(combo, out)
		}
	}
	c.initLen = len(c.feeds)

	spFit := obs.SpanFit.Start()
	var err error
	c.gpCost, c.gpMem, err = fitFromFeeds(c.cfg, c.feeds[:c.initLen])
	spFit.End()
	if err != nil {
		c.res.Reason = core.StopFault
		return err
	}
	c.rebuildPool()
	c.buildCaches()
	return c.saveCheckpoint(false)
}

// fitFromFeeds builds and fits both surrogates from init-phase feed
// records. The cost and memory training sets may differ: censored warm-up
// jobs contribute only their memory bound. The surrogate family comes from
// cfg.Model via the engine registry; nil keeps the exact GP, so existing
// campaigns (and their checkpoints) are untouched.
func fitFromFeeds(cfg Config, init []feedRec) (gp.Model, gp.Model, error) {
	var xc, xm [][]float64
	var yc, ym []float64
	for _, f := range init {
		if f.LogCost != nil {
			xc = append(xc, f.X)
			yc = append(yc, *f.LogCost)
		}
		if f.LogMem != nil {
			xm = append(xm, f.X)
			ym = append(ym, *f.LogMem)
		}
	}
	if len(yc) == 0 || len(ym) == 0 {
		return nil, nil, errors.New("online: init design yielded no usable observations (all warm-up jobs failed)")
	}
	gpCost, err := newSurrogate(cfg)
	if err != nil {
		return nil, nil, err
	}
	gpMem, err := newSurrogate(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := gpCost.Fit(rowsToDense(xc), yc); err != nil {
		return nil, nil, err
	}
	if err := gpMem.Fit(rowsToDense(xm), ym); err != nil {
		return nil, nil, err
	}
	gpCost.SetRestarts(0)
	gpMem.SetRestarts(0)
	return gpCost, gpMem, nil
}

// newSurrogate constructs one unfitted surrogate of the configured family.
// A fidelity campaign without an explicit model gets the co-kriging multifid
// surrogate — a plain GP cannot tell the ladder's rungs apart.
func newSurrogate(cfg Config) (gp.Model, error) {
	deps := engine.ModelDeps{Kernel: cfg.Kernel, GP: cfg.GP, Fidelity: cfg.Fidelity}
	if cfg.Model != nil {
		return engine.BuildModel(*cfg.Model, deps)
	}
	if cfg.Fidelity != nil {
		return engine.BuildModel(engine.ModelSpec{Name: engine.ModelMultiFid}, deps)
	}
	return gp.New(cfg.Kernel, cfg.GP), nil
}

// rebuildPool derives the candidate pool: the design grid minus every
// configuration that has already executed (including censored kills), and —
// in a fidelity campaign — minus every configuration whose MaxLevel is off
// the ladder. Filtering preserves grid order, so a resumed pool is identical
// to one maintained incrementally.
func (c *campaign) rebuildPool() {
	ran := make(map[dataset.Combo]bool, len(c.res.Jobs))
	for _, j := range c.res.Jobs {
		ran[j.Config()] = true
	}
	c.pool = c.pool[:0]
	for _, combo := range c.lab.Candidates() {
		if ran[combo] {
			continue
		}
		if c.cfg.Fidelity != nil && c.cfg.Fidelity.LevelOf(combo.MaxLevel) < 0 {
			continue
		}
		c.pool = append(c.pool, combo)
	}
}

// buildCaches attaches the incremental scoring caches (and the pool-order
// feature matrix they score) to the fitted surrogates. Called once the
// pool and both GPs exist — after init and after a checkpoint resume. A
// censored OOM feed appends only to the memory GP; since each cache tracks
// exactly its own GP, the cost cache simply stays valid through it.
func (c *campaign) buildCaches() {
	if len(c.pool) == 0 {
		return
	}
	x := mat.NewDense(len(c.pool), dataset.NumFeatures, nil)
	for i, combo := range c.pool {
		f := dataset.ScaleFeatures(dataset.Job{P: combo.P, Mx: combo.Mx, MaxLevel: combo.MaxLevel, R0: combo.R0, RhoIn: combo.RhoIn})
		copy(x.Row(i), f[:])
	}
	c.poolX = x
	c.costCache = gp.NewPoolCache(c.gpCost, x)
	c.memCache = gp.NewPoolCache(c.gpMem, x)
	if c.costCache == nil || c.memCache == nil {
		// Uncacheable model type: fall back to direct scoring in Score.
		if c.costCache != nil {
			c.costCache.Close()
		}
		if c.memCache != nil {
			c.memCache.Close()
		}
		c.costCache, c.memCache = nil, nil
	}
}

// applyFeed absorbs one selection's feed record into the live surrogates.
func (c *campaign) applyFeed(f feedRec) error {
	if f.LogCost != nil {
		if err := c.gpCost.Append(f.X, *f.LogCost); err != nil {
			return fmt.Errorf("online: cost update: %w", err)
		}
	}
	if f.LogMem != nil {
		if err := c.gpMem.Append(f.X, *f.LogMem); err != nil {
			return fmt.Errorf("online: memory update: %w", err)
		}
	}
	if f.Refit {
		if err := c.gpCost.Refit(); err != nil {
			return fmt.Errorf("online: cost refit: %w", err)
		}
		if err := c.gpMem.Refit(); err != nil {
			return fmt.Errorf("online: memory refit: %w", err)
		}
	}
	return nil
}

// The campaign implements engine.LoopEnv: the unified loop in
// internal/engine drives Algorithm 1 while these methods serve the live lab
// side — scoring from the incremental caches, executing proposals through
// the retry layer, and absorbing results as feed records so checkpoints can
// replay them.

// PoolLen implements engine.LoopEnv.
func (c *campaign) PoolLen() int { return len(c.pool) }

// Score implements engine.LoopEnv: model predictions for the remaining
// pool, straight from the incremental scoring caches.
func (c *campaign) Score() *core.Candidates {
	var muC, sigC, muM, sigM []float64
	if c.costCache != nil {
		muC, sigC = c.costCache.Scores()
		muM, sigM = c.memCache.Scores()
	} else {
		muC, sigC = c.gpCost.Predict(c.poolX)
		muM, sigM = c.gpMem.Predict(c.poolX)
	}
	cands := &core.Candidates{
		X: c.poolX, MuCost: muC, SigmaCost: sigC, MuMem: muM, SigmaMem: sigM,
		MemLimitLog: c.memLimitLog,
	}
	if f := c.cfg.Fidelity; f != nil {
		lv := make([]int, len(c.pool))
		for i, combo := range c.pool {
			lv[i] = f.LevelOf(combo.MaxLevel)
		}
		var gains []float64
		if fs, ok := c.costCache.(gp.FidelityScorer); ok {
			gains = fs.TopInfoGains()
		} else if mf, ok := c.gpCost.(*gp.MultiFid); ok {
			gains = mf.TopInfoGains(c.poolX)
		}
		cands.Fid = &engine.FidelityView{Level: lv, TopGain: gains}
	}
	return cands
}

// Execute implements engine.LoopEnv: run the proposal through the retry
// layer and classify the outcome. A censored kill (OOM/timeout) is a valid
// partial observation; for OOM kills the kill itself is the limit violation
// (§V-C) — the wasted cost accrues to CC and CR. Anything else is fatal.
func (c *campaign) Execute(pick int) (engine.Execution, error) {
	combo := c.pool[pick]
	level := 0
	if c.cfg.Fidelity != nil {
		level = c.cfg.Fidelity.LevelOf(combo.MaxLevel)
	}
	out := c.runJob(combo)
	switch {
	case out.OK:
		return engine.Execution{Job: out.Job, Level: level}, nil
	case out.Fault != nil && out.Fault.Severity == faults.Censored && !out.Exhausted:
		return engine.Execution{
			Job:      out.Fault.Job,
			Level:    level,
			Censored: true,
			Violated: out.Fault.Class == faults.ClassOOM,
		}, nil
	default:
		return engine.Execution{}, fatalError(combo, out)
	}
}

// Record implements engine.LoopEnv: append the executed pick to the Result
// and mirror the running totals for checkpoints.
func (c *campaign) Record(pick int, cands *core.Candidates, e engine.Execution, violated bool, cumCost, cumRegret float64) {
	res := c.res
	res.Jobs = append(res.Jobs, e.Job)
	res.PredictedCost = append(res.PredictedCost, math.Pow(10, cands.MuCost[pick]))
	res.ActualCost = append(res.ActualCost, e.Job.CostNH)
	res.PredictedMem = append(res.PredictedMem, math.Pow(10, cands.MuMem[pick]))
	res.ActualMem = append(res.ActualMem, e.Job.MemMB)
	res.CumCost = append(res.CumCost, cumCost)
	res.CumRegret = append(res.CumRegret, cumRegret)
	res.Violation = append(res.Violation, violated)
	res.Censored = append(res.Censored, e.Censored)
	if c.cfg.Fidelity != nil {
		res.SelectedLevel = append(res.SelectedLevel, e.Level)
		obs.FidelitySelections.Inc(strconv.Itoa(e.Level))
	}
	c.cumCost, c.cumRegret = cumCost, cumRegret
}

// Absorb implements engine.LoopEnv: turn the execution into a feed record,
// apply it to the live surrogates, and log it for checkpoint replay. A
// successful run feeds both models; an OOM kill feeds only the clamped
// memory observation y >= log10(L_mem) — the model learns avoidance from
// its own failure; other censored kills contribute nothing but still tick
// the refit cadence.
func (c *campaign) Absorb(pick int, e engine.Execution, refit bool) error {
	feed := feedRec{Refit: refit}
	switch {
	case !e.Censored:
		f := dataset.ScaleFeatures(e.Job)
		feed.X = append([]float64(nil), f[:]...)
		lc, lm := math.Log10(e.Job.CostNH), math.Log10(e.Job.MemMB)
		feed.LogCost, feed.LogMem = &lc, &lm
	case e.Violated && e.Job.MemMB > 0:
		f := dataset.ScaleFeatures(e.Job)
		feed.X = append([]float64(nil), f[:]...)
		lm := math.Log10(e.Job.MemMB)
		feed.LogMem = &lm
	}
	if err := c.applyFeed(feed); err != nil {
		return err
	}
	c.feeds = append(c.feeds, feed)
	return nil
}

// Remove implements engine.LoopEnv: drop the picks from the pool, its
// feature matrix, and both scoring caches.
func (c *campaign) Remove(picks []int) {
	for _, pick := range picks {
		c.pool = append(c.pool[:pick], c.pool[pick+1:]...)
		c.poolX = c.poolX.RemoveRow(pick)
		if c.costCache != nil {
			c.costCache.Remove(pick)
			c.memCache.Remove(pick)
		}
	}
}

// Refit implements engine.LoopEnv (q>1 round cadence — unused online, where
// refits ride the per-selection feed records so resume replays them).
func (c *campaign) Refit() error { return nil }

// RoundEnd implements engine.LoopEnv: budget stop, then the periodic
// checkpoint. A checkpoint error aborts with the reason unchanged.
func (c *campaign) RoundEnd(selDone, picked int) (core.StopReason, bool, error) {
	if c.cfg.Budget > 0 && c.cumCost >= c.cfg.Budget {
		return core.StopBudget, true, nil
	}
	if selDone%c.cfg.CheckpointEvery == 0 {
		if err := c.saveCheckpoint(false); err != nil {
			return "", false, err
		}
	}
	return "", false, nil
}

// loop runs AL selections until a stop condition fires, delegating
// Algorithm 1 to the unified engine loop. It degrades gracefully: censored
// kills are absorbed as partial observations and only fatal faults abort —
// returning the partial Result with the error.
func (c *campaign) loop() (*Result, error) {
	res := c.res
	reason, err := engine.RunLoop(c, engine.LoopParams{
		Policy:        c.cfg.Policy,
		RNG:           c.rng,
		StartSel:      len(res.PredictedCost),
		MaxSel:        c.cfg.MaxExperiments,
		HyperoptEvery: hyperoptEvery,
		MemLimitRaw:   c.memLimitRaw,
		MemLimitMB:    c.cfg.MemLimitMB,
		CumCost:       c.cumCost,
		CumRegret:     c.cumRegret,
		Campaign:      c.cfg.Campaign,
		Stop:          c.cfg.Stop,
	})
	if reason != "" {
		res.Reason = reason
	}
	if err != nil {
		return res, err
	}
	if len(c.pool) == 0 && res.Reason == core.StopMaxIterations {
		res.Reason = core.StopPoolExhausted
	}
	// A cancelled campaign is checkpointed as still-in-flight: a later Run
	// against the same checkpoint resumes it instead of replaying the
	// cancelled partial result as final.
	if err := c.saveCheckpoint(res.Reason != engine.StopCancelled); err != nil {
		return res, err
	}
	return res, nil
}

// Run executes an online AL campaign against the lab. On fatal faults the
// partial Result accumulated so far is returned alongside the error; with
// Config.CheckpointPath set, an existing checkpoint is resumed instead of
// starting over.
func Run(lab Lab, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if cfg.Policy == nil {
		return nil, errors.New("online: Config.Policy is required")
	}
	if cfg.Fidelity != nil {
		if err := cfg.Fidelity.Validate(); err != nil {
			return nil, err
		}
		for _, combo := range cfg.InitDesign {
			if cfg.Fidelity.LevelOf(combo.MaxLevel) < 0 {
				return nil, fmt.Errorf("online: init design combo %+v has maxlevel %d off the fidelity ladder %v",
					combo, combo.MaxLevel, cfg.Fidelity.Levels)
			}
		}
		obs.FidelityLevels.Set(float64(len(cfg.Fidelity.Levels)))
	}

	if cfg.CheckpointPath != "" {
		ck, err := readCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			if err := validateCheckpoint(cfg, ck); err != nil {
				return nil, err
			}
			if ck.Done {
				return ck.Result, nil
			}
			c, err := resumeCampaign(lab, cfg, ck)
			if err != nil {
				return nil, err
			}
			return c.loop()
		}
	}

	c := newCampaign(lab, cfg)
	if err := c.init(); err != nil {
		return c.res, err
	}
	return c.loop()
}

func rowsToDense(rows [][]float64) *mat.Dense {
	x := mat.NewDense(len(rows), len(rows[0]), nil)
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return x
}
