package online

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"alamr/internal/core"
	"alamr/internal/faults"
)

// The golden_pr5 tests pin fixed-seed online campaigns captured from the
// pre-engine loop (PR 5); see the matching helper in core for the
// capture/compare protocol.
const goldenDir = "../../results/golden_pr5"

func goldenCheck(t *testing.T, name string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join(goldenDir, name+".json")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with GOLDEN_UPDATE=1 go test): %v", err)
	}
	if !bytes.Equal(data, want) {
		i := 0
		for i < len(data) && i < len(want) && data[i] == want[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) string {
			if hi > len(b) {
				return string(b[lo:])
			}
			return string(b[lo:hi])
		}
		t.Fatalf("%s diverges from the pinned pre-refactor campaign at byte %d:\n got ...%s...\nwant ...%s...",
			name, i, clip(data), clip(want))
	}
}

func TestGoldenOnlineClean(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy core.Policy
	}{
		{"randuniform", core.RandUniform{}},
		{"randgoodness", core.RandGoodness{}},
		{"rgma", core.RGMA{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(newFakeLab(), Config{
				Policy:         tc.policy,
				MaxExperiments: 12,
				MemLimitMB:     0.35,
				Seed:           7,
			})
			if err != nil {
				t.Fatal(err)
			}
			goldenCheck(t, "online_clean_"+tc.name, res)
		})
	}
}

func TestGoldenOnlineBudget(t *testing.T) {
	res, err := Run(newFakeLab(), Config{
		Policy:         core.MaxSigma{},
		MaxExperiments: 40,
		Budget:         0.5,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "online_budget_maxsigma", res)
}

// TestGoldenOnlineFaulty pins a campaign through the full fault cocktail:
// retries, censored OOM kills feeding only the memory surrogate, and the
// health ledger.
func TestGoldenOnlineFaulty(t *testing.T) {
	res, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(31)), campaignCfg(31))
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "online_faulty_rgma", res)
}

// TestGoldenOnlineResumeMatchesPin kills the faulty campaign mid-flight and
// resumes from its checkpoint; the resumed result must match the same
// pinned bytes as the uninterrupted run.
func TestGoldenOnlineResumeMatchesPin(t *testing.T) {
	cfg := campaignCfg(31)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.ckpt")
	kl := &killLab{inner: faults.MustFaultyLab(newFakeLab(), faultyCfg(31)), after: 5}
	if _, err := Run(kl, cfg); err == nil {
		t.Fatal("campaign survived the kill")
	}
	resumed, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(31)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "online_faulty_rgma", resumed)
}
