package online

import (
	"context"
	"errors"
	"fmt"

	"alamr/internal/dataset"
	"alamr/internal/engine"
)

// The online package contributes the simulation-backed lab and the
// online-mode spec runner to the engine's registries, so online campaigns
// are fully describable as CampaignSpec data and executable through
// engine.RunCampaignSpec:
// {"mode": "online", "online": {"lab": {"name": "sim"}}, ...}.
func init() {
	engine.RegisterLab("sim", func(s engine.LabSpec, _ engine.LabDeps) (engine.Lab, error) {
		return NewSimLab(SimLabConfig{
			RefNx:    s.RefNx,
			RefTEnd:  s.RefTEnd,
			RefSnaps: s.RefSnaps,
			Seed:     s.Seed,
		}), nil
	})
	engine.RegisterModeRunner(engine.ModeOnline,
		func(ctx context.Context, spec engine.CampaignSpec, ds *dataset.Dataset, scope *engine.CampaignObs) (any, error) {
			return RunSpecCtx(ctx, spec, ds, scope)
		})
}

// RunSpec materializes and executes an online-mode campaign spec. The
// dataset is only needed for mem_limit_paper_rule calibration (and for the
// "replay" lab); it may be nil otherwise.
func RunSpec(spec engine.CampaignSpec, ds *dataset.Dataset) (*Result, error) {
	return RunSpecCtx(nil, spec, ds, nil)
}

// RunSpecScoped is RunSpec with a per-campaign obs scope attached (the sweep
// runner passes each item's scope through here).
func RunSpecScoped(spec engine.CampaignSpec, ds *dataset.Dataset, scope *engine.CampaignObs) (*Result, error) {
	return RunSpecCtx(nil, spec, ds, scope)
}

// RunSpecCtx is RunSpecScoped with cooperative cancellation: a cancelled
// context ends the campaign with StopCancelled at the next round boundary.
func RunSpecCtx(ctx context.Context, spec engine.CampaignSpec, ds *dataset.Dataset, scope *engine.CampaignObs) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Mode != engine.ModeOnline {
		return nil, fmt.Errorf("online: RunSpec needs an online spec, got mode %q", spec.Mode)
	}
	o := spec.Online
	lab, err := engine.BuildLab(o.Lab, engine.LabDeps{Dataset: ds})
	if err != nil {
		return nil, err
	}
	pol, err := engine.BuildPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Policy:          pol,
		InitDesign:      o.InitDesign,
		Budget:          o.Budget,
		MaxExperiments:  o.MaxExperiments,
		Seed:            spec.Seed,
		Model:           spec.Model,
		Fidelity:        spec.Fidelity,
		CheckpointPath:  o.CheckpointPath,
		CheckpointEvery: o.CheckpointEvery,
		Campaign:        scope,
	}
	if ctx != nil && ctx.Done() != nil {
		cfg.Stop = func() bool { return ctx.Err() != nil }
	}
	if spec.Kernel != nil {
		if cfg.Kernel, err = engine.BuildKernel(*spec.Kernel); err != nil {
			return nil, err
		}
	}
	if o.MaxAttempts > 0 {
		cfg.Retry.MaxAttempts = o.MaxAttempts
	}
	switch {
	case spec.MemLimitPaperRule:
		if ds == nil {
			return nil, errors.New("online: mem_limit_paper_rule needs the offline dataset for calibration")
		}
		cfg.MemLimitMB = engine.PaperMemLimitMB(ds)
	case spec.MemLimitMB > 0:
		cfg.MemLimitMB = spec.MemLimitMB
	}
	return Run(lab, cfg)
}
