package online

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/faults"
)

// countKills tallies censored selections of a campaign.
func countKills(res *Result) int {
	n := 0
	for _, c := range res.Censored {
		if c {
			n++
		}
	}
	return n
}

// TestOnlineTransientFaultsRecovered: with retryable faults and a retry
// budget, the campaign completes at full length and the ledger accounts for
// every attempt.
func TestOnlineTransientFaultsRecovered(t *testing.T) {
	lab := faults.MustFaultyLab(newFakeLab(), faults.LabConfig{
		Seed: 7, PTransient: 0.25, PCorrupt: 0.1,
	})
	res, err := Run(lab, Config{
		Policy:         core.RandGoodness{},
		MaxExperiments: 20,
		Seed:           7,
		Retry:          faults.RetryPolicy{MaxAttempts: 8},
	})
	if err != nil {
		t.Fatalf("campaign did not survive retryable faults: %v", err)
	}
	if len(res.Jobs) != 21 {
		t.Fatalf("jobs = %d want 21", len(res.Jobs))
	}
	h := res.Health
	if !h.Consistent() {
		t.Fatalf("ledger does not balance: %+v", h)
	}
	if h.Retries == 0 {
		t.Fatal("25% transient rate caused no retries")
	}
	if h.Successes != 21 {
		t.Fatalf("successes = %d want 21", h.Successes)
	}
	// Every failed attempt is classified.
	total := 0
	for _, n := range h.FaultsByClass {
		total += n
	}
	if total != h.Attempts-h.Successes {
		t.Fatalf("classified faults %d != failed attempts %d", total, h.Attempts-h.Successes)
	}
	if h.BackoffSec <= 0 {
		t.Fatal("retries accrued no backoff")
	}
}

// TestOnlineCensoredOOMObservations: OOM kills must not abort the campaign;
// they surface as censored selections whose ActualMem is clamped at the RSS
// limit, whose wasted cost accrues to CC and CR, and which feed the memory
// model.
func TestOnlineCensoredOOMObservations(t *testing.T) {
	const limit = 0.3
	lab := faults.MustFaultyLab(newFakeLab(), faults.LabConfig{Seed: 13, RSSLimitMB: limit})
	res, err := Run(lab, Config{
		// MaxSigma chases uncertainty into the high-memory corner, so kills
		// are guaranteed.
		Policy:         core.MaxSigma{},
		MaxExperiments: 25,
		MemLimitMB:     limit,
		Seed:           13,
	})
	if err != nil {
		t.Fatalf("campaign aborted on OOM kills: %v", err)
	}
	kills := countKills(res)
	if kills == 0 {
		t.Fatal("MaxSigma campaign triggered no OOM kills")
	}
	if res.Health.Censored != kills {
		t.Fatalf("ledger censored %d != censored selections %d", res.Health.Censored, kills)
	}
	for i, cen := range res.Censored {
		if !cen {
			continue
		}
		if res.ActualMem[i] != limit {
			t.Fatalf("selection %d: censored ActualMem %g want clamp at %g", i, res.ActualMem[i], limit)
		}
		if !res.Violation[i] {
			t.Fatalf("selection %d: OOM kill not counted as violation", i)
		}
		if res.ActualCost[i] <= 0 {
			t.Fatalf("selection %d: no partial cost charged", i)
		}
		// Wasted cost accrues to cumulative regret.
		prev := 0.0
		if i > 0 {
			prev = res.CumRegret[i-1]
		}
		if res.CumRegret[i] <= prev {
			t.Fatalf("selection %d: kill cost missing from CR", i)
		}
	}
}

// TestOnlineCensoringReducesViolations is the §V-C analogue: RGMA fed with
// its own censored OOM observations must hit the limit far less often than a
// memory-blind uniform sampler under the same fault injector.
func TestOnlineCensoringReducesViolations(t *testing.T) {
	const limit = 0.3
	run := func(p core.Policy) *Result {
		lab := faults.MustFaultyLab(newFakeLab(), faults.LabConfig{Seed: 17, RSSLimitMB: limit})
		res, err := Run(lab, Config{
			Policy:         p,
			MaxExperiments: 40,
			MemLimitMB:     limit,
			Seed:           17,
			InitDesign: []dataset.Combo{
				{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1},
				{P: 4, Mx: 32, MaxLevel: 5, R0: 0.3, RhoIn: 0.1},
			},
		})
		if err != nil {
			t.Fatalf("%s campaign failed: %v", p.Name(), err)
		}
		return res
	}
	rgma := run(core.RGMA{})
	uniform := run(core.RandUniform{})
	kr, ku := countKills(rgma), countKills(uniform)
	if ku == 0 {
		t.Fatal("uniform sampling triggered no kills; limit not binding")
	}
	if kr >= ku {
		t.Fatalf("censored feedback did not reduce kills: rgma %d vs uniform %d", kr, ku)
	}
	// Learning shows within the RGMA trajectory too: the second half of the
	// campaign violates no more than the first.
	half := len(rgma.Censored) / 2
	first, second := 0, 0
	for i, c := range rgma.Censored {
		if !c {
			continue
		}
		if i < half {
			first++
		} else {
			second++
		}
	}
	if second > first {
		t.Fatalf("kills increased over time: first half %d, second half %d", first, second)
	}
}

// TestOnlineInitDesignKeepsPartialJobs is the warm-up robustness contract:
// a fatal failure in the middle of the init design returns the jobs already
// run instead of discarding them.
func TestOnlineInitDesignKeepsPartialJobs(t *testing.T) {
	lab := &errLab{fakeLab{combos: dataset.AllCombos()}} // fails from the 4th run on
	res, err := Run(lab, Config{
		Policy: core.RandUniform{},
		Seed:   5,
		InitDesign: []dataset.Combo{
			{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1},
			{P: 16, Mx: 16, MaxLevel: 4, R0: 0.4, RhoIn: 0.2},
			{P: 4, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.05},
			{P: 32, Mx: 24, MaxLevel: 5, R0: 0.5, RhoIn: 0.35},
			{P: 24, Mx: 32, MaxLevel: 6, R0: 0.2, RhoIn: 0.5},
		},
	})
	if err == nil {
		t.Fatal("fatal init failure swallowed")
	}
	if res == nil {
		t.Fatal("partial result discarded")
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("preserved %d warm-up jobs, want 3", len(res.Jobs))
	}
	if res.Reason != core.StopFault {
		t.Fatalf("reason %s", res.Reason)
	}
	if res.Health.Fatal != 1 || !res.Health.Consistent() {
		t.Fatalf("health %+v", res.Health)
	}
}

// TestOnlineRetryBudgetExhaustionReturnsPartial: when a job burns its whole
// attempt budget the campaign stops — but with everything learned so far.
func TestOnlineRetryBudgetExhaustionReturnsPartial(t *testing.T) {
	lab := faults.MustFaultyLab(newFakeLab(), faults.LabConfig{Seed: 23, PTransient: 0.45})
	res, err := Run(lab, Config{
		Policy:         core.RandUniform{},
		MaxExperiments: 60,
		Seed:           23,
		Retry:          faults.RetryPolicy{MaxAttempts: 3},
	})
	if err == nil {
		// Statistically near-impossible with p=0.45 and 3 attempts over 60
		// jobs (p(all survive) < 0.5%), and the seed is fixed anyway.
		t.Fatal("expected an exhausted retry budget")
	}
	var f *faults.Fault
	if !errors.As(err, &f) {
		t.Fatalf("terminal error not classified: %v", err)
	}
	if res == nil || len(res.Jobs) == 0 {
		t.Fatal("partial results discarded on exhaustion")
	}
	if res.Health.Fatal != 1 || !res.Health.Consistent() {
		t.Fatalf("health %+v", res.Health)
	}
}

// TestOnlineChaos drives RGMA campaigns through a hostile injector across
// seeds: every campaign must either complete or stop gracefully with
// partial results and a balanced ledger. `make chaos` raises the seed count
// via the CHAOS environment variable.
func TestOnlineChaos(t *testing.T) {
	seeds := 3
	if os.Getenv("CHAOS") != "" {
		seeds = 10
	}
	completed := 0
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			lab := faults.MustFaultyLab(newFakeLab(), faults.LabConfig{
				Seed:         int64(s),
				RSSLimitMB:   0.5,
				WallLimitSec: 40,
				PTransient:   0.3,
				PCorrupt:     0.15,
			})
			res, err := Run(lab, Config{
				Policy:         core.RGMA{},
				MaxExperiments: 25,
				MemLimitMB:     0.5,
				Seed:           int64(100 + s),
				Retry:          faults.RetryPolicy{MaxAttempts: 6},
			})
			if res == nil {
				t.Fatalf("no result at all: %v", err)
			}
			if !res.Health.Consistent() {
				t.Fatalf("ledger does not balance: %+v", res.Health)
			}
			if err != nil {
				if res.Health.Fatal == 0 {
					t.Fatalf("error without a fatal ledger entry: %v", err)
				}
				t.Logf("graceful stop after %d jobs: %v", len(res.Jobs), err)
				return
			}
			completed++
			if len(res.Jobs) == 0 {
				t.Fatal("completed with no jobs")
			}
			injected := lab.InjectedByClass()
			if injected[faults.ClassTransient] == 0 {
				t.Fatalf("chaos injected no transients: %v", injected)
			}
		})
	}
	if completed == 0 {
		t.Fatalf("no campaign completed across %d seeds", seeds)
	}
}
