package online

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"slices"

	"alamr/internal/core"
	"alamr/internal/engine"
	"alamr/internal/faults"
	"alamr/internal/obs"
	"alamr/internal/stats"
)

// checkpointVersion gates the on-disk schema; bump it whenever checkpointFile
// or feedRec changes incompatibly.
const checkpointVersion = 1

// Sentinel errors distinguishing the checkpoint-restore failure modes, so
// operators (and tests) can tell a half-written file from a trashed one from
// a checkpoint that simply belongs to a different campaign. All are wrapped
// with file/context detail — match with errors.Is.
var (
	// ErrCheckpointCorrupt marks checkpoint bytes that do not decode as the
	// expected schema: malformed JSON mid-file, a missing result, or an
	// internally inconsistent record.
	ErrCheckpointCorrupt = errors.New("checkpoint corrupt")
	// ErrCheckpointTruncated marks a checkpoint cut short — an empty file or
	// JSON that ends mid-value, the signature of a crash during an
	// non-atomic copy (the writer itself renames atomically).
	ErrCheckpointTruncated = errors.New("checkpoint truncated")
	// ErrCheckpointModelMismatch marks a checkpoint written under a
	// different surrogate model than the resuming configuration.
	ErrCheckpointModelMismatch = errors.New("checkpoint surrogate model mismatch")
)

// checkpointFile is the versioned JSON schema of a campaign checkpoint. A
// checkpoint carries the full Result so far, the model feed log (replayed to
// rebuild the exact GP state), the policy RNG stream position, and the
// optional lab state — everything a fresh process needs to continue the
// trajectory bitwise-identically.
type checkpointFile struct {
	Version   int             `json:"version"`
	Policy    string          `json:"policy"`
	Seed      int64           `json:"seed"`
	InitLen   int             `json:"init_len"`
	RNGDraws  uint64          `json:"rng_draws"`
	CumCost   float64         `json:"cum_cost"`
	CumRegret float64         `json:"cum_regret"`
	Model     string          `json:"model,omitempty"`
	Fidelity  []int           `json:"fidelity,omitempty"`
	Feeds     []feedRec       `json:"feeds"`
	Result    *Result         `json:"result"`
	LabState  json.RawMessage `json:"lab_state,omitempty"`
	Done      bool            `json:"done,omitempty"`
}

// saveCheckpoint atomically serializes the campaign state: the checkpoint is
// written to a temp file in the destination directory and renamed into
// place, so a crash mid-write never corrupts the previous checkpoint.
func (c *campaign) saveCheckpoint(done bool) error {
	if c.cfg.CheckpointPath == "" {
		return nil
	}
	sp := obs.SpanCheckpointWrite.Start()
	defer sp.End()
	ck := checkpointFile{
		Version:   checkpointVersion,
		Policy:    c.cfg.Policy.Name(),
		Seed:      c.cfg.Seed,
		InitLen:   c.initLen,
		RNGDraws:  c.src.Draws(),
		CumCost:   c.cumCost,
		CumRegret: c.cumRegret,
		Model:     configModelName(c.cfg),
		Fidelity:  configFidelityLadder(c.cfg),
		Feeds:     c.feeds,
		Result:    c.res,
		Done:      done,
	}
	if r, ok := c.lab.(faults.Resumable); ok {
		st, err := r.LabState()
		if err != nil {
			return fmt.Errorf("online: capturing lab state: %w", err)
		}
		ck.LabState = st
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("online: encoding checkpoint: %w", err)
	}
	tmp := c.cfg.CheckpointPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("online: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("online: committing checkpoint: %w", err)
	}
	obs.CheckpointWrites.Inc()
	return nil
}

// readCheckpoint loads a checkpoint; a missing file returns (nil, nil) so
// the caller starts a fresh campaign.
func readCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("online: reading checkpoint: %w", err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("online: checkpoint %s is empty: %w", path, ErrCheckpointTruncated)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		if truncatedJSON(data, err) {
			return nil, fmt.Errorf("online: checkpoint %s ends mid-record (%v): %w", path, err, ErrCheckpointTruncated)
		}
		return nil, fmt.Errorf("online: decoding checkpoint %s (%v): %w", path, err, ErrCheckpointCorrupt)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("online: checkpoint %s has version %d, want %d: %w", path, ck.Version, checkpointVersion, ErrCheckpointCorrupt)
	}
	if ck.Result == nil {
		return nil, fmt.Errorf("online: checkpoint %s carries no result: %w", path, ErrCheckpointCorrupt)
	}
	return &ck, nil
}

// truncatedJSON reports whether a decode failure is consistent with the
// input being cut short rather than garbled: the decoder ran off the end of
// the data ("unexpected end of JSON input" surfaces as a SyntaxError whose
// offset sits at or past the last byte).
func truncatedJSON(data []byte, err error) bool {
	var syn *json.SyntaxError
	if !errors.As(err, &syn) {
		return false
	}
	return syn.Offset >= int64(len(data))
}

// validateCheckpoint rejects checkpoints written under a different campaign
// identity before any state is replayed or returned.
func validateCheckpoint(cfg Config, ck *checkpointFile) error {
	if ck.Policy != cfg.Policy.Name() {
		return fmt.Errorf("online: checkpoint was written by policy %q, resuming with %q", ck.Policy, cfg.Policy.Name())
	}
	if ck.Seed != cfg.Seed {
		return fmt.Errorf("online: checkpoint seed %d does not match config seed %d", ck.Seed, cfg.Seed)
	}
	if ck.InitLen > len(ck.Feeds) {
		return fmt.Errorf("online: corrupt checkpoint: init length %d exceeds %d feed records", ck.InitLen, len(ck.Feeds))
	}
	if got, want := canonicalModelName(ck.Model), canonicalModelName(configModelName(cfg)); got != want {
		return fmt.Errorf("online: checkpoint was written with surrogate model %q, resuming with %q: %w", got, want, ErrCheckpointModelMismatch)
	}
	if !slices.Equal(ck.Fidelity, configFidelityLadder(cfg)) {
		return fmt.Errorf("online: checkpoint was written with fidelity ladder %v, resuming with %v: %w",
			ck.Fidelity, configFidelityLadder(cfg), ErrCheckpointModelMismatch)
	}
	return nil
}

// configModelName reports the configured surrogate family name; "" for the
// default exact GP (and in pre-model checkpoints, which omitted the field).
// A fidelity campaign's implicit default is the co-kriging model, so its
// checkpoints are stamped "multifid" even with a nil Model spec.
func configModelName(cfg Config) string {
	if cfg.Model == nil {
		if cfg.Fidelity != nil {
			return engine.ModelMultiFid
		}
		return ""
	}
	return cfg.Model.Name
}

// configFidelityLadder reports the configured fidelity ladder's MaxLevel
// values; nil for single-fidelity campaigns (and pre-fidelity checkpoints,
// which omitted the field).
func configFidelityLadder(cfg Config) []int {
	if cfg.Fidelity == nil {
		return nil
	}
	return cfg.Fidelity.Levels
}

// canonicalModelName folds the empty name into the explicit default so a
// checkpoint written before the model field existed resumes under an
// explicit {"name": "exact"} spec, and vice versa.
func canonicalModelName(name string) string {
	if name == "" {
		return engine.ModelExact
	}
	return name
}

// resumeCampaign reconstructs the exact mid-campaign state from a
// checkpoint: surrogates by replaying the feed log (the GP hot path is
// bitwise deterministic, so replay lands on the identical model), the
// candidate pool by filtering the grid against executed configurations, the
// policy RNG by skipping the recorded draw count, and the lab's own counters
// via faults.Resumable.
func resumeCampaign(lab Lab, cfg Config, ck *checkpointFile) (*campaign, error) {
	sp := obs.SpanCheckpointRestore.Start()
	defer sp.End()
	c := newCampaign(lab, cfg)
	c.res = ck.Result
	c.res.Reason = core.StopMaxIterations
	c.feeds = ck.Feeds
	c.initLen = ck.InitLen
	c.cumCost = ck.CumCost
	c.cumRegret = ck.CumRegret

	var err error
	c.gpCost, c.gpMem, err = fitFromFeeds(cfg, c.feeds[:c.initLen])
	if err != nil {
		return nil, fmt.Errorf("online: replaying init fit: %w", err)
	}
	for _, f := range c.feeds[c.initLen:] {
		if err := c.applyFeed(f); err != nil {
			return nil, fmt.Errorf("online: replaying feed log: %w", err)
		}
	}

	if len(ck.LabState) > 0 {
		r, ok := lab.(faults.Resumable)
		if !ok {
			return nil, errors.New("online: checkpoint carries lab state but the lab cannot restore it")
		}
		if err := r.RestoreLabState(ck.LabState); err != nil {
			return nil, fmt.Errorf("online: restoring lab state: %v: %w", err, ErrCheckpointCorrupt)
		}
	}

	c.src = stats.NewCountingSource(stats.SplitSeed(cfg.Seed, 0))
	c.src.Skip(ck.RNGDraws)
	c.rng = rand.New(c.src)

	c.rebuildPool()
	// Freshly built caches rebuild through the flat solve path, which is
	// bitwise identical to the incremental extension an uninterrupted run
	// performed — the resumed trajectory's scores, and hence selections,
	// match exactly.
	c.buildCaches()
	obs.CheckpointRestores.Inc()
	return c, nil
}
