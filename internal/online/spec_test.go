package online

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/engine"
)

// specDataset builds a small dataset whose jobs cover distinct grid combos,
// suitable for backing a ReplayLab.
func specDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	combos := dataset.AllCombos()
	rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	ds := &dataset.Dataset{}
	for _, c := range combos[:n] {
		wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
			(1 + c.R0) / (0.3 + c.RhoIn)
		ds.Jobs = append(ds.Jobs, dataset.Job{
			P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
			WallSec: wall,
			CostNH:  wall * float64(c.P) / 3600,
			MemMB:   0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) / math.Sqrt(float64(c.P)),
		})
	}
	return ds
}

// TestSimLabRegistered: the package's init contributes the "sim" lab to the
// engine registry, so online campaigns are fully spec-describable.
func TestSimLabRegistered(t *testing.T) {
	lab, err := engine.BuildLab(engine.LabSpec{Name: "sim", RefNx: 32, RefTEnd: 0.05, RefSnaps: 3, Seed: 7}, engine.LabDeps{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lab.(*SimLab); !ok {
		t.Fatalf("sim lab built %T want *SimLab", lab)
	}
	found := false
	for _, name := range engine.LabNames() {
		if name == "sim" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sim missing from LabNames: %v", engine.LabNames())
	}
}

func onlineSpec(ds *dataset.Dataset) engine.CampaignSpec {
	return engine.CampaignSpec{
		Version: engine.SpecVersion,
		Name:    "replay-lab-campaign",
		Mode:    engine.ModeOnline,
		Policy:  engine.PolicySpec{Name: "randgoodness"},
		Seed:    5,
		Online: &engine.OnlineSpec{
			Lab:            engine.LabSpec{Name: "replay"},
			MaxExperiments: 10,
			InitDesign:     []dataset.Combo{ds.Jobs[0].Config()},
		},
	}
}

// TestRunSpecAgainstReplayLab drives a full online campaign through the
// declarative layer with the offline dataset as the lab — the seam where the
// two execution modes meet.
func TestRunSpecAgainstReplayLab(t *testing.T) {
	ds := specDataset(80, 41)
	res, err := RunSpec(onlineSpec(ds), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PredictedCost) != 10 || len(res.Jobs) != 11 {
		t.Fatalf("campaign ran %d selections, %d jobs", len(res.PredictedCost), len(res.Jobs))
	}
	if !res.Health.Consistent() {
		t.Fatalf("health ledger inconsistent: %+v", res.Health)
	}
	// Every executed job must be a dataset entry (the lab replays, never
	// invents).
	index := map[dataset.Combo]bool{}
	for _, j := range ds.Jobs {
		index[j.Config()] = true
	}
	for _, j := range res.Jobs {
		if !index[j.Config()] {
			t.Fatalf("job %+v not from the dataset", j.Config())
		}
	}
}

// TestRunSpecMatchesDirectRun: the spec layer must configure the identical
// campaign as calling Run with a hand-built Config.
func TestRunSpecMatchesDirectRun(t *testing.T) {
	ds := specDataset(80, 41)
	spec := onlineSpec(ds)
	viaSpec, err := RunSpec(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(engine.NewReplayLab(ds), Config{
		Policy:         core.RandGoodness{},
		MaxExperiments: 10,
		Seed:           5,
		InitDesign:     []dataset.Combo{ds.Jobs[0].Config()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSpec, direct) {
		t.Fatal("spec-layer campaign differs from the direct Run call")
	}
}

func TestRunSpecValidation(t *testing.T) {
	ds := specDataset(20, 42)
	spec := onlineSpec(ds)
	spec.Mode = engine.ModeReplay
	spec.Online = nil
	spec.Replay = &engine.ReplaySpec{NInit: 5}
	if _, err := RunSpec(spec, ds); err == nil || !strings.Contains(err.Error(), "needs an online spec") {
		t.Fatalf("replay spec accepted by RunSpec: %v", err)
	}

	// The sim lab needs no dataset, so the paper-rule check is what trips.
	spec = onlineSpec(ds)
	spec.Online.Lab = engine.LabSpec{Name: "sim"}
	spec.MemLimitPaperRule = true
	if _, err := RunSpec(spec, nil); err == nil || !strings.Contains(err.Error(), "needs the offline dataset") {
		t.Fatalf("paper rule without dataset accepted: %v", err)
	}
}
