package online

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/engine"
)

// fidelityLadder is the shared 3-rung ladder of the online fidelity tests.
func fidelityLadder() *engine.FidelitySpec {
	return &engine.FidelitySpec{Levels: []int{3, 4, 6}}
}

func fidelityCampaignCfg(seed int64) Config {
	return Config{
		Policy:         engine.CostPerInfo{},
		MaxExperiments: 12,
		Seed:           seed,
		Fidelity:       fidelityLadder(),
	}
}

// TestOnlineFidelityEndToEnd drives a live multi-fidelity campaign: the
// candidate pool restricts to the ladder, the default init design seeds every
// rung, the cost-per-information acquisition selects across rungs, and every
// selection's ladder level is recorded.
func TestOnlineFidelityEndToEnd(t *testing.T) {
	res, err := Run(newFakeLab(), fidelityCampaignCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	ladder := fidelityLadder()
	// Default init design: one seed per rung.
	if want := len(ladder.Levels) + 12; len(res.Jobs) != want {
		t.Fatalf("ran %d jobs, want %d (one init per rung + 12 selections)", len(res.Jobs), want)
	}
	for i, j := range res.Jobs {
		if ladder.LevelOf(j.MaxLevel) < 0 {
			t.Fatalf("job %d ran at maxlevel %d, off the ladder %v", i, j.MaxLevel, ladder.Levels)
		}
	}
	if len(res.SelectedLevel) != len(res.PredictedCost) {
		t.Fatalf("recorded %d selection levels for %d selections", len(res.SelectedLevel), len(res.PredictedCost))
	}
	low := false
	for i, lv := range res.SelectedLevel {
		if lv < 0 || lv >= len(ladder.Levels) {
			t.Fatalf("selection %d has ladder level %d", i, lv)
		}
		if want := ladder.LevelOf(res.Jobs[len(ladder.Levels)+i].MaxLevel); lv != want {
			t.Fatalf("selection %d recorded level %d, job says %d", i, lv, want)
		}
		if lv < len(ladder.Levels)-1 {
			low = true
		}
	}
	if !low {
		t.Fatal("cost-per-information never spent a cheap rung; the fidelity dial is dead")
	}
}

// TestOnlineFidelitySingleFidelityResultUnchanged: a campaign without a
// fidelity section must not grow a SelectedLevel record (its checkpoint JSON
// stays byte-compatible with pre-fidelity files).
func TestOnlineFidelitySingleFidelityResultUnchanged(t *testing.T) {
	res, err := Run(newFakeLab(), Config{Policy: engine.RandGoodness{}, MaxExperiments: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SelectedLevel != nil {
		t.Fatalf("single-fidelity campaign recorded levels: %v", res.SelectedLevel)
	}
}

// TestOnlineFidelityDeterministic pins reproducibility of the co-kriging
// campaign: identical seeds give bitwise-identical Results.
func TestOnlineFidelityDeterministic(t *testing.T) {
	a, err := Run(newFakeLab(), fidelityCampaignCfg(29))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(newFakeLab(), fidelityCampaignCfg(29))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fidelity campaign not reproducible:\n%+v\nvs\n%+v", a, b)
	}
}

// TestOnlineFidelityCheckpointKillResume: a multi-fidelity campaign killed
// mid-flight and resumed from its checkpoint reproduces the uninterrupted
// trajectory bitwise — per-level surrogate state, ladder selections and all.
func TestOnlineFidelityCheckpointKillResume(t *testing.T) {
	const seed = 17
	uninterrupted, err := Run(newFakeLab(), fidelityCampaignCfg(seed))
	if err != nil {
		t.Fatal(err)
	}

	for _, killAfter := range []int{4, 7, 11} {
		cfg := fidelityCampaignCfg(seed)
		cfg.CheckpointPath = filepath.Join(t.TempDir(), "fid.ckpt")
		kl := &killLab{inner: newFakeLab(), after: killAfter}
		if _, err := Run(kl, cfg); err == nil {
			t.Fatalf("killAfter=%d: campaign survived the kill", killAfter)
		}
		resumed, err := Run(newFakeLab(), cfg)
		if err != nil {
			t.Fatalf("killAfter=%d: resume failed: %v", killAfter, err)
		}
		if !reflect.DeepEqual(resumed, uninterrupted) {
			t.Fatalf("killAfter=%d: resumed fidelity trajectory diverged\nresumed: %+v\nuninterrupted: %+v",
				killAfter, resumed, uninterrupted)
		}
	}
}

// TestOnlineFidelityResumeRejectsLadderMismatch: the checkpoint stamps the
// fidelity ladder as part of the campaign identity; resuming under a
// different ladder — or none — must fail with the model-mismatch sentinel
// before any state is replayed.
func TestOnlineFidelityResumeRejectsLadderMismatch(t *testing.T) {
	cfg := fidelityCampaignCfg(23)
	cfg.MaxExperiments = 4
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "fid.ckpt")
	if _, err := Run(newFakeLab(), cfg); err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Fidelity = &engine.FidelitySpec{Levels: []int{3, 5, 6}}
	if _, err := Run(newFakeLab(), bad); !errors.Is(err, ErrCheckpointModelMismatch) {
		t.Fatalf("ladder mismatch accepted: %v", err)
	}
	bad = cfg
	bad.Fidelity = nil
	if _, err := Run(newFakeLab(), bad); !errors.Is(err, ErrCheckpointModelMismatch) {
		t.Fatalf("fidelity checkpoint resumed as single-fidelity: %v", err)
	}
}

// TestOnlineFidelityInitDesignValidation: explicit warm-up combos must sit on
// the ladder, and a malformed ladder is rejected before the lab runs.
func TestOnlineFidelityInitDesignValidation(t *testing.T) {
	cfg := fidelityCampaignCfg(5)
	cfg.InitDesign = []dataset.Combo{{P: 8, Mx: 16, MaxLevel: 5, R0: 0.3, RhoIn: 0.1}}
	if _, err := Run(newFakeLab(), cfg); err == nil {
		t.Fatal("off-ladder init design accepted")
	}
	cfg = fidelityCampaignCfg(5)
	cfg.Fidelity = &engine.FidelitySpec{Levels: []int{6, 3}}
	if _, err := Run(newFakeLab(), cfg); err == nil {
		t.Fatal("descending ladder accepted")
	}
}

// TestRunSpecOnlineFidelity: an online fidelity campaign is fully
// spec-describable, and the spec layer configures the identical campaign as
// a hand-built Config.
func TestRunSpecOnlineFidelity(t *testing.T) {
	ds := specDataset(160, 47)
	ladder := fidelityLadder()
	var initDesign []dataset.Combo
	for _, l := range ladder.Levels {
		for _, j := range ds.Jobs {
			if j.MaxLevel == l {
				initDesign = append(initDesign, j.Config())
				break
			}
		}
	}
	if len(initDesign) != len(ladder.Levels) {
		t.Fatalf("dataset covers %d of %d rungs", len(initDesign), len(ladder.Levels))
	}
	spec := engine.CampaignSpec{
		Version:  engine.SpecVersion,
		Name:     "online-fidelity",
		Mode:     engine.ModeOnline,
		Policy:   engine.PolicySpec{Name: "costperinfo"},
		Seed:     11,
		Fidelity: ladder,
		Online: &engine.OnlineSpec{
			Lab:            engine.LabSpec{Name: "replay"},
			MaxExperiments: 8,
			InitDesign:     initDesign,
		},
	}
	viaSpec, err := RunSpec(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(engine.NewReplayLab(ds), Config{
		Policy:         engine.CostPerInfo{},
		MaxExperiments: 8,
		Seed:           11,
		Fidelity:       fidelityLadder(),
		InitDesign:     initDesign,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSpec, direct) {
		t.Fatal("spec-layer fidelity campaign differs from the direct Run call")
	}
	if len(viaSpec.SelectedLevel) != len(viaSpec.PredictedCost) {
		t.Fatalf("spec campaign recorded %d levels for %d selections",
			len(viaSpec.SelectedLevel), len(viaSpec.PredictedCost))
	}
}

// slowLab delays every lab call, giving the chaos test a wide window to
// SIGKILL the campaign subprocess mid-round.
type slowLab struct {
	inner Lab
	delay time.Duration
}

func (l *slowLab) Candidates() []dataset.Combo { return l.inner.Candidates() }

func (l *slowLab) Run(c dataset.Combo) (dataset.Job, error) {
	time.Sleep(l.delay)
	return l.inner.Run(c)
}

// TestFidelityCampaignHelper is not a test: it is the campaign subprocess
// body the SIGKILL chaos test spawns by re-exec'ing the test binary. Without
// the env gate it skips.
func TestFidelityCampaignHelper(t *testing.T) {
	path := os.Getenv("AL_FIDELITY_CKPT")
	if path == "" {
		t.Skip("helper process: only meaningful when re-exec'd by the chaos test")
	}
	cfg := fidelityCampaignCfg(41)
	cfg.CheckpointPath = path
	if _, err := Run(&slowLab{inner: newFakeLab(), delay: 60 * time.Millisecond}, cfg); err != nil {
		t.Fatalf("helper campaign: %v", err)
	}
}

// TestOnlineFidelityChaosSIGKILLResume is the crash-recovery acceptance pin
// for multi-fidelity campaigns: a real OS process running the campaign is
// SIGKILLed mid-round (no deferred cleanup, no atexit — the hard kill), and
// a fresh process resuming from the surviving checkpoint must land on a
// Result bitwise identical to an uninterrupted run.
func TestOnlineFidelityChaosSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a campaign subprocess; run directly or via make chaos")
	}
	const seed = 41
	uninterrupted, err := Run(newFakeLab(), fidelityCampaignCfg(seed))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "chaos-fid.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run=^TestFidelityCampaignHelper$")
	cmd.Env = append(os.Environ(), "AL_FIDELITY_CKPT="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the first checkpoint to land, then SIGKILL the campaign. The
	// helper's per-job slowdown leaves most of the campaign still to run, so
	// the kill is mid-flight by a wide margin.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign subprocess never wrote a checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait()

	ck, err := readCheckpoint(path)
	if err != nil {
		t.Fatalf("surviving checkpoint unreadable: %v", err)
	}
	if ck.Done {
		t.Fatal("campaign finished before the kill; the chaos window is too narrow")
	}
	if got, want := ck.Model, engine.ModelMultiFid; got != want {
		t.Fatalf("checkpoint stamps model %q, want %q", got, want)
	}

	cfg := fidelityCampaignCfg(seed)
	cfg.CheckpointPath = path
	resumed, err := Run(newFakeLab(), cfg)
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if !reflect.DeepEqual(resumed, uninterrupted) {
		t.Fatalf("post-SIGKILL resume diverged from the uninterrupted run\nresumed: %+v\nuninterrupted: %+v",
			resumed, uninterrupted)
	}
}
