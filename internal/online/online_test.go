package online

import (
	"fmt"
	"math"
	"testing"

	"alamr/internal/core"
	"alamr/internal/dataset"
)

// fakeLab is a deterministic analytic lab for fast tests.
type fakeLab struct {
	runs   int
	combos []dataset.Combo
}

func newFakeLab() *fakeLab {
	return &fakeLab{combos: dataset.AllCombos()}
}

func (l *fakeLab) Candidates() []dataset.Combo { return l.combos }

func (l *fakeLab) Run(c dataset.Combo) (dataset.Job, error) {
	l.runs++
	wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
		(1 + c.R0) / (0.3 + c.RhoIn)
	return dataset.Job{
		P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
		WallSec: wall,
		CostNH:  wall * float64(c.P) / 3600,
		MemMB:   0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) / math.Sqrt(float64(c.P)),
	}, nil
}

type errLab struct{ fakeLab }

func (l *errLab) Run(c dataset.Combo) (dataset.Job, error) {
	if l.runs >= 3 {
		return dataset.Job{}, fmt.Errorf("cluster on fire")
	}
	return l.fakeLab.Run(c)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(newFakeLab(), Config{}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestOnlineCampaignBasics(t *testing.T) {
	lab := newFakeLab()
	res, err := Run(lab, Config{
		Policy:         core.RandGoodness{},
		MaxExperiments: 15,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 16 { // 1 init + 15 selected
		t.Fatalf("jobs = %d want 16", len(res.Jobs))
	}
	if len(res.PredictedCost) != 15 || len(res.CumCost) != 15 {
		t.Fatalf("record lengths %d/%d", len(res.PredictedCost), len(res.CumCost))
	}
	if lab.runs != 16 {
		t.Fatalf("lab executed %d runs want 16", lab.runs)
	}
	// No duplicate configurations.
	seen := map[dataset.Combo]bool{}
	for _, j := range res.Jobs {
		if seen[j.Config()] {
			t.Fatalf("config %+v ran twice", j.Config())
		}
		seen[j.Config()] = true
	}
	// One-step-ahead MAPE should be a real number.
	if m := res.OneStepMAPE(); math.IsNaN(m) || m < 0 {
		t.Fatalf("MAPE = %g", m)
	}
}

func TestOnlinePredictionsImprove(t *testing.T) {
	lab := newFakeLab()
	res, err := Run(lab, Config{
		Policy:         core.RandUniform{},
		MaxExperiments: 60,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare MAPE on the first vs last third of online selections: the
	// model should get more accurate as data accumulates.
	third := len(res.PredictedCost) / 3
	mape := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += math.Abs(res.PredictedCost[i]-res.ActualCost[i]) / res.ActualCost[i]
		}
		return s / float64(hi-lo)
	}
	early, late := mape(0, third), mape(2*third, len(res.PredictedCost))
	if late >= early {
		t.Fatalf("one-step error did not improve: early %.3f late %.3f", early, late)
	}
}

func TestOnlineBudgetStops(t *testing.T) {
	lab := newFakeLab()
	res, err := Run(lab, Config{
		Policy:         core.MaxSigma{}, // seeks expensive/uncertain configs
		MaxExperiments: 1000,
		Budget:         0.5,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != core.StopReason("budget-exhausted") {
		t.Fatalf("reason = %s", res.Reason)
	}
	n := len(res.CumCost)
	if res.CumCost[n-1] < 0.5 {
		t.Fatalf("stopped below budget: %g", res.CumCost[n-1])
	}
	// Only the final selection may exceed the budget.
	if n >= 2 && res.CumCost[n-2] >= 0.5 {
		t.Fatalf("kept selecting past budget: %v", res.CumCost[n-2:])
	}
}

func TestOnlineMemoryLimitRGMA(t *testing.T) {
	lab := newFakeLab()
	res, err := Run(lab, Config{
		Policy:         core.RGMA{},
		MaxExperiments: 40,
		MemLimitMB:     0.3,
		Seed:           4,
		InitDesign: []dataset.Combo{
			{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1},
			{P: 4, Mx: 32, MaxLevel: 5, R0: 0.3, RhoIn: 0.1}, // a high-memory point to inform the model
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for _, v := range res.Violation {
		if v {
			violations++
		}
	}
	if violations > 3 {
		t.Fatalf("online RGMA violated the limit %d times", violations)
	}
}

func TestOnlineLabErrorPropagates(t *testing.T) {
	lab := &errLab{fakeLab{combos: dataset.AllCombos()}}
	_, err := Run(lab, Config{Policy: core.RandUniform{}, MaxExperiments: 10, Seed: 5})
	if err == nil {
		t.Fatal("lab failure swallowed")
	}
}

func TestSimLabRunsAndCachesReferences(t *testing.T) {
	lab := NewSimLab(SimLabConfig{RefNx: 32, RefTEnd: 0.05, RefSnaps: 3, Seed: 6})
	c := dataset.Combo{P: 8, Mx: 8, MaxLevel: 3, R0: 0.3, RhoIn: 0.1}
	job, err := lab.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if job.CostNH <= 0 || job.MemMB <= 0 {
		t.Fatalf("bad job %+v", job)
	}
	if lab.NumReferenceRuns() != 1 {
		t.Fatalf("references = %d want 1", lab.NumReferenceRuns())
	}
	// Same physics, different grid: no new reference.
	c2 := c
	c2.Mx = 16
	if _, err := lab.Run(c2); err != nil {
		t.Fatal(err)
	}
	if lab.NumReferenceRuns() != 1 {
		t.Fatalf("references = %d want 1 (cache miss)", lab.NumReferenceRuns())
	}
	// Different physics: one more.
	c3 := c
	c3.R0 = 0.4
	if _, err := lab.Run(c3); err != nil {
		t.Fatal(err)
	}
	if lab.NumReferenceRuns() != 2 {
		t.Fatalf("references = %d want 2", lab.NumReferenceRuns())
	}
	if len(lab.Candidates()) != 1920 {
		t.Fatalf("candidates = %d", len(lab.Candidates()))
	}
}

func TestOnlineEndToEndWithSimLab(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed online campaign in -short mode")
	}
	lab := NewSimLab(SimLabConfig{RefNx: 32, RefTEnd: 0.05, RefSnaps: 3, Seed: 7})
	res, err := Run(lab, Config{
		Policy:         core.RGMA{},
		MaxExperiments: 6,
		Seed:           8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 7 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	// The cost-efficient policy should mostly stick to physics it has seen,
	// keeping the reference cache small.
	if lab.NumReferenceRuns() > 7 {
		t.Fatalf("surprisingly many reference runs: %d", lab.NumReferenceRuns())
	}
}
