package online

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/faults"
)

// faultyCfg is the shared fault cocktail of the determinism and resume
// tests: every injectable class is live.
func faultyCfg(seed int64) faults.LabConfig {
	return faults.LabConfig{
		Seed:       seed,
		RSSLimitMB: 0.35,
		PTransient: 0.15,
		PCorrupt:   0.1,
	}
}

func campaignCfg(seed int64) Config {
	return Config{
		Policy:         core.RGMA{},
		MaxExperiments: 14,
		MemLimitMB:     0.35,
		Seed:           seed,
		Retry:          faults.RetryPolicy{MaxAttempts: 6},
	}
}

// TestOnlineFaultyCampaignDeterministic pins the reproducibility guarantee:
// with fixed seeds, a campaign run through the fault injector — retries,
// censored observations and all — is bitwise identical across runs.
// (reflect.DeepEqual compares float64 slices exactly; Results never carry
// NaN, so equality here is bitwise equality.)
func TestOnlineFaultyCampaignDeterministic(t *testing.T) {
	run := func() (*Result, error) {
		lab := faults.MustFaultyLab(newFakeLab(), faultyCfg(31))
		return Run(lab, campaignCfg(31))
	}
	a, errA := run()
	b, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error mismatch: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault campaign not reproducible:\n%+v\nvs\n%+v", a, b)
	}
	if !a.Health.Consistent() {
		t.Fatalf("health ledger does not balance: %+v", a.Health)
	}
	if a.Health.Attempts <= a.Health.Successes {
		t.Fatalf("fault cocktail injected nothing: %+v", a.Health)
	}
}

// killLab wraps a lab and fails fatally (with an unclassifiable error) after
// a fixed number of calls — the test's stand-in for kill -9.
type killLab struct {
	inner Lab
	after int
	calls int
}

func (l *killLab) Candidates() []dataset.Combo { return l.inner.Candidates() }

func (l *killLab) Run(c dataset.Combo) (dataset.Job, error) {
	l.calls++
	if l.calls > l.after {
		return dataset.Job{}, errors.New("process killed")
	}
	return l.inner.Run(c)
}

func (l *killLab) LabState() ([]byte, error) {
	if r, ok := l.inner.(faults.Resumable); ok {
		return r.LabState()
	}
	return nil, nil
}

func (l *killLab) RestoreLabState(b []byte) error {
	if r, ok := l.inner.(faults.Resumable); ok {
		return r.RestoreLabState(b)
	}
	return nil
}

// TestOnlineCheckpointKillResume is the crash-recovery contract: a campaign
// killed mid-flight and resumed from its checkpoint produces a Result
// bitwise identical to an uninterrupted run — same selections, same
// censored observations, same health ledger.
func TestOnlineCheckpointKillResume(t *testing.T) {
	const seed = 31
	uninterrupted, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), campaignCfg(seed))
	if err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}

	for _, killAfter := range []int{1, 5, 11} {
		path := filepath.Join(t.TempDir(), "campaign.ckpt")

		// First process: dies after killAfter lab calls.
		cfg := campaignCfg(seed)
		cfg.CheckpointPath = path
		kl := &killLab{inner: faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), after: killAfter}
		partial, err := Run(kl, cfg)
		if err == nil {
			t.Fatalf("killAfter=%d: campaign survived the kill", killAfter)
		}
		if partial == nil {
			t.Fatalf("killAfter=%d: no partial result returned", killAfter)
		}
		if partial.Reason != core.StopFault {
			t.Fatalf("killAfter=%d: reason %s", killAfter, partial.Reason)
		}
		// A kill during the warm-up job (killAfter=1) predates the first
		// checkpoint write; resume then simply starts fresh. Later kills
		// must find a checkpoint on disk.
		if killAfter > 1 {
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("killAfter=%d: no checkpoint on disk: %v", killAfter, err)
			}
		}

		// Second process: fresh lab, fresh campaign, same checkpoint.
		resumed, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), cfg)
		if err != nil {
			t.Fatalf("killAfter=%d: resume failed: %v", killAfter, err)
		}
		if !reflect.DeepEqual(resumed, uninterrupted) {
			t.Fatalf("killAfter=%d: resumed trajectory diverged from uninterrupted run\nresumed: %+v\nuninterrupted: %+v",
				killAfter, resumed, uninterrupted)
		}

		// Running once more against the finished checkpoint is idempotent.
		again, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), cfg)
		if err != nil {
			t.Fatalf("killAfter=%d: rerun after done: %v", killAfter, err)
		}
		if !reflect.DeepEqual(again, uninterrupted) {
			t.Fatalf("killAfter=%d: done checkpoint not idempotent", killAfter)
		}
	}
}

// TestOnlineCheckpointCleanLab verifies checkpoint/resume also holds for a
// plain fault-free lab (no Resumable state beyond determinism).
func TestOnlineCheckpointCleanLab(t *testing.T) {
	cfg := Config{Policy: core.RandGoodness{}, MaxExperiments: 10, Seed: 5}
	uninterrupted, err := Run(newFakeLab(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "clean.ckpt")
	cfg.CheckpointPath = path
	kl := &killLab{inner: newFakeLab(), after: 6}
	if _, err := Run(kl, cfg); err == nil {
		t.Fatal("campaign survived the kill")
	}
	resumed, err := Run(newFakeLab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, uninterrupted) {
		t.Fatal("resumed clean-lab trajectory diverged")
	}
}

func TestOnlineResumeRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	cfg := Config{Policy: core.RandGoodness{}, MaxExperiments: 3, Seed: 9, CheckpointPath: path}
	if _, err := Run(newFakeLab(), cfg); err != nil {
		t.Fatal(err)
	}
	// Finished checkpoints replay idempotently even under a changed policy?
	// No: config mismatch must be detected before any replay.
	bad := cfg
	bad.Policy = core.MaxSigma{}
	if _, err := Run(newFakeLab(), bad); err == nil {
		t.Fatal("policy mismatch accepted")
	}
	bad = cfg
	bad.Seed = 10
	if _, err := Run(newFakeLab(), bad); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestReadCheckpointErrors(t *testing.T) {
	if ck, err := readCheckpoint(filepath.Join(t.TempDir(), "missing")); ck != nil || err != nil {
		t.Fatalf("missing file: %v %v", ck, err)
	}
	p := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCheckpoint(p); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := os.WriteFile(p, []byte(`{"version": 99, "result": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCheckpoint(p); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestCheckpointRestoreErrorPaths pins the failure taxonomy of checkpoint
// restoration: a truncated file, garbled bytes, corrupted lab state, and a
// surrogate-model mismatch each surface a distinct sentinel (errors.Is) so
// operators can tell a crashed copy from a trashed disk from a
// wrong-campaign resume.
func TestCheckpointRestoreErrorPaths(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	seed := int64(31)

	// Produce a real mid-campaign checkpoint by killing the lab partway.
	cfg := campaignCfg(seed)
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 1
	kl := &killLab{inner: faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), after: 5}
	if _, err := Run(kl, cfg); err == nil {
		t.Fatal("kill-lab campaign unexpectedly completed")
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	sentinels := map[string]error{
		"corrupt":   ErrCheckpointCorrupt,
		"truncated": ErrCheckpointTruncated,
		"mismatch":  ErrCheckpointModelMismatch,
	}
	// check asserts err wraps exactly the named sentinel and none other.
	check := func(t *testing.T, err error, want string) {
		t.Helper()
		if err == nil {
			t.Fatal("damaged checkpoint resumed without error")
		}
		for name, sentinel := range sentinels {
			if got := errors.Is(err, sentinel); got != (name == want) {
				t.Fatalf("error %q: errors.Is(%s) = %v, want the %s sentinel only", err, name, got, want)
			}
		}
	}
	resume := func(t *testing.T, data []byte, cfg Config) error {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), cfg)
		return err
	}

	t.Run("truncated file", func(t *testing.T) {
		check(t, resume(t, good[:len(good)/2], cfg), "truncated")
	})
	t.Run("empty file", func(t *testing.T) {
		check(t, resume(t, nil, cfg), "truncated")
	})
	t.Run("corrupted bytes", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		copy(bad[4:], []byte("####")) // garble inside the JSON, same length
		check(t, resume(t, bad, cfg), "corrupt")
	})
	t.Run("corrupted lab state", func(t *testing.T) {
		var ck map[string]json.RawMessage
		if err := json.Unmarshal(good, &ck); err != nil {
			t.Fatal(err)
		}
		if _, ok := ck["lab_state"]; !ok {
			t.Fatal("checkpoint carries no lab state to corrupt")
		}
		// Valid JSON (the outer decode succeeds) whose shape the faulty
		// lab's RestoreLabState rejects.
		ck["lab_state"] = json.RawMessage(`{"attempts": "not-a-list"}`)
		bad, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		check(t, resume(t, bad, cfg), "corrupt")
	})
	t.Run("model mismatch", func(t *testing.T) {
		mcfg := cfg
		mcfg.Model = &engine.ModelSpec{Name: engine.ModelSparse, Inducing: 16}
		check(t, resume(t, good, mcfg), "mismatch")
	})
	t.Run("intact checkpoint still resumes", func(t *testing.T) {
		if err := os.WriteFile(path, good, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(faults.MustFaultyLab(newFakeLab(), faultyCfg(seed)), cfg); err != nil {
			t.Fatalf("undamaged checkpoint failed to resume: %v", err)
		}
	})
}
