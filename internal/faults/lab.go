package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"alamr/internal/dataset"
)

// Lab is the experiment-execution seam the injector wraps. It is
// structurally identical to online.Lab, so a FaultyLab drops into the online
// campaign runtime unchanged.
type Lab interface {
	Run(c dataset.Combo) (dataset.Job, error)
	Candidates() []dataset.Combo
}

// Resumable is an optional Lab capability: labs that carry internal state a
// campaign checkpoint must capture (run counters, per-configuration attempt
// counters) implement it so a killed campaign can restore the lab exactly
// and resume bitwise-identically.
type Resumable interface {
	LabState() ([]byte, error)
	RestoreLabState(state []byte) error
}

// LabConfig configures the fault injector.
type LabConfig struct {
	// Seed drives all fault draws; every (seed, combo, attempt) triple is
	// an independent deterministic stream.
	Seed int64
	// RSSLimitMB enables the OOM killer: any job whose true MaxRSS reaches
	// the limit is killed, its memory observation censored at the limit and
	// a partial cost charged (0 = no OOM enforcement).
	RSSLimitMB float64
	// WallLimitSec enables the wall-clock killer: jobs running longer are
	// killed and charged for the allocation actually consumed (0 = none).
	WallLimitSec float64
	// PTransient is the per-attempt probability of a transient node/launch
	// failure (retryable; a deterministic fraction of the job's cost is
	// lost to the crashed run).
	PTransient float64
	// PCorrupt is the per-attempt probability that a completed job returns
	// a corrupted (NaN/Inf/negative) measurement instead of a clean one.
	PCorrupt float64
}

// Validate rejects injector configurations that would silently misbehave:
// probabilities outside [0, 1] and limits that are NaN, infinite, or
// negative. A probability of exactly 1 is allowed (always-inject is how the
// exhaustion tests drive the retry ladder); values above 1 are almost
// certainly mistyped percentages.
func (c LabConfig) Validate() error {
	checkProb := func(name string, p float64) error {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("faults: %s must be a probability in [0, 1], got %g", name, p)
		}
		return nil
	}
	if err := checkProb("PTransient", c.PTransient); err != nil {
		return err
	}
	if err := checkProb("PCorrupt", c.PCorrupt); err != nil {
		return err
	}
	checkLimit := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("faults: %s must be a finite non-negative limit (0 disables), got %g", name, v)
		}
		return nil
	}
	if err := checkLimit("RSSLimitMB", c.RSSLimitMB); err != nil {
		return err
	}
	return checkLimit("WallLimitSec", c.WallLimitSec)
}

// FaultyLab wraps a Lab and injects classified failures. All injection is
// deterministic: the fault draws of attempt k on configuration c depend only
// on (Seed, c, k).
type FaultyLab struct {
	inner Lab
	cfg   LabConfig

	mu       sync.Mutex
	attempts map[dataset.Combo]int
	counts   map[Class]int
}

// NewFaultyLab wraps inner with the fault injector; the configuration is
// validated up front so a NaN limit or out-of-range probability fails loudly
// instead of silently disabling (or saturating) a fault class.
func NewFaultyLab(inner Lab, cfg LabConfig) (*FaultyLab, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FaultyLab{
		inner:    inner,
		cfg:      cfg,
		attempts: make(map[dataset.Combo]int),
		counts:   make(map[Class]int),
	}, nil
}

// MustFaultyLab is NewFaultyLab for configurations known valid at compile
// time (tests, examples); it panics on a validation error.
func MustFaultyLab(inner Lab, cfg LabConfig) *FaultyLab {
	l, err := NewFaultyLab(inner, cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Candidates implements Lab.
func (l *FaultyLab) Candidates() []dataset.Combo { return l.inner.Candidates() }

// InjectedByClass reports how many faults of each class the lab has injected
// (introspection for tests and reports).
func (l *FaultyLab) InjectedByClass() map[Class]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[Class]int, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

func (l *FaultyLab) note(c Class) {
	l.mu.Lock()
	l.counts[c]++
	l.mu.Unlock()
}

// Run implements Lab: it executes the wrapped lab and then applies, in
// order, transient-crash, OOM-kill, timeout-kill, and measurement-corruption
// faults. Corrupted measurements are returned as a seemingly successful Job
// — exactly how a real lab misbehaves — and are caught downstream by
// ValidateJob.
func (l *FaultyLab) Run(c dataset.Combo) (dataset.Job, error) {
	l.mu.Lock()
	l.attempts[c]++
	attempt := l.attempts[c]
	l.mu.Unlock()
	rng := rand.New(rand.NewSource(attemptSeed(l.cfg.Seed, c, attempt)))

	job, err := l.inner.Run(c)
	if err != nil {
		// The wrapped lab itself failed: not injected, not classified.
		return dataset.Job{}, err
	}

	if l.cfg.PTransient > 0 && rng.Float64() < l.cfg.PTransient {
		// Node died partway through the run: a fraction of the cost is
		// gone, nothing was measured.
		frac := 0.5 * rng.Float64()
		l.note(ClassTransient)
		return dataset.Job{}, &Fault{
			Class:    ClassTransient,
			Severity: Retryable,
			Combo:    c,
			Attempt:  attempt,
			LostNH:   frac * job.CostNH,
			Err:      fmt.Errorf("node failure after %.0f%% of the run", 100*frac),
		}
	}

	if l.cfg.RSSLimitMB > 0 && job.MemMB >= l.cfg.RSSLimitMB {
		// OOM kill: the kill happens when the resident set crosses the
		// limit, some deterministic fraction of the way through the run.
		// The surviving observation is censored: MaxRSS >= limit.
		frac := 0.25 + 0.75*rng.Float64()
		killed := job
		killed.MemMB = l.cfg.RSSLimitMB
		killed.WallSec *= frac
		killed.CostNH *= frac
		l.note(ClassOOM)
		return dataset.Job{}, &Fault{
			Class:    ClassOOM,
			Severity: Censored,
			Combo:    c,
			Attempt:  attempt,
			LostNH:   killed.CostNH,
			Job:      killed,
		}
	}

	if l.cfg.WallLimitSec > 0 && job.WallSec > l.cfg.WallLimitSec {
		// Timeout kill: charged for the allocation consumed; the memory
		// reading dies with the job.
		scale := l.cfg.WallLimitSec / job.WallSec
		killed := job
		killed.WallSec = l.cfg.WallLimitSec
		killed.CostNH *= scale
		killed.MemMB = 0
		l.note(ClassTimeout)
		return dataset.Job{}, &Fault{
			Class:    ClassTimeout,
			Severity: Censored,
			Combo:    c,
			Attempt:  attempt,
			LostNH:   killed.CostNH,
			Job:      killed,
		}
	}

	if l.cfg.PCorrupt > 0 && rng.Float64() < l.cfg.PCorrupt {
		bad := job
		switch rng.Intn(3) {
		case 0:
			bad.CostNH = math.NaN()
		case 1:
			bad.MemMB = math.Inf(1)
		default:
			bad.MemMB = -bad.MemMB
		}
		l.note(ClassCorrupt)
		return bad, nil
	}

	return job, nil
}

// faultyLabState is the JSON schema of the injector's checkpointable state.
type faultyLabState struct {
	Attempts []comboAttempts `json:"attempts"`
	Inner    json.RawMessage `json:"inner,omitempty"`
}

type comboAttempts struct {
	Combo dataset.Combo `json:"combo"`
	N     int           `json:"n"`
}

// LabState implements Resumable: the per-configuration attempt counters
// (which drive the fault streams) plus the wrapped lab's own state, if any.
func (l *FaultyLab) LabState() ([]byte, error) {
	l.mu.Lock()
	st := faultyLabState{Attempts: make([]comboAttempts, 0, len(l.attempts))}
	for c, n := range l.attempts {
		st.Attempts = append(st.Attempts, comboAttempts{Combo: c, N: n})
	}
	l.mu.Unlock()
	sort.Slice(st.Attempts, func(i, j int) bool {
		a, b := st.Attempts[i].Combo, st.Attempts[j].Combo
		switch {
		case a.P != b.P:
			return a.P < b.P
		case a.Mx != b.Mx:
			return a.Mx < b.Mx
		case a.MaxLevel != b.MaxLevel:
			return a.MaxLevel < b.MaxLevel
		case a.R0 != b.R0:
			return a.R0 < b.R0
		default:
			return a.RhoIn < b.RhoIn
		}
	})
	if r, ok := l.inner.(Resumable); ok {
		inner, err := r.LabState()
		if err != nil {
			return nil, fmt.Errorf("faults: inner lab state: %w", err)
		}
		st.Inner = inner
	}
	return json.Marshal(st)
}

// RestoreLabState implements Resumable.
func (l *FaultyLab) RestoreLabState(state []byte) error {
	var st faultyLabState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("faults: decoding lab state: %w", err)
	}
	l.mu.Lock()
	l.attempts = make(map[dataset.Combo]int, len(st.Attempts))
	for _, a := range st.Attempts {
		l.attempts[a.Combo] = a.N
	}
	l.mu.Unlock()
	if len(st.Inner) > 0 {
		r, ok := l.inner.(Resumable)
		if !ok {
			return fmt.Errorf("faults: checkpoint carries inner lab state but the wrapped lab cannot restore it")
		}
		return r.RestoreLabState(st.Inner)
	}
	return nil
}
