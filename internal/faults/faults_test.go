package faults

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"alamr/internal/dataset"
)

// analyticLab is a deterministic fault-free lab for tests: responses depend
// only on the configuration.
type analyticLab struct {
	runs   int
	combos []dataset.Combo
}

func newAnalyticLab() *analyticLab { return &analyticLab{combos: dataset.AllCombos()} }

func (l *analyticLab) Candidates() []dataset.Combo { return l.combos }

func (l *analyticLab) Run(c dataset.Combo) (dataset.Job, error) {
	l.runs++
	wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
		(1 + c.R0) / (0.3 + c.RhoIn)
	return dataset.Job{
		P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
		WallSec: wall,
		CostNH:  wall * float64(c.P) / 3600,
		MemMB:   0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) / math.Sqrt(float64(c.P)),
	}, nil
}

func TestClassifySeverities(t *testing.T) {
	if s := Classify(errors.New("boom")); s != Fatal {
		t.Fatalf("unknown error classified %v", s)
	}
	f := &Fault{Class: ClassTransient, Severity: Retryable}
	if s := Classify(fmt.Errorf("wrapped: %w", f)); s != Retryable {
		t.Fatalf("wrapped fault classified %v", s)
	}
	if got, ok := AsFault(fmt.Errorf("x: %w", f)); !ok || got != f {
		t.Fatal("AsFault failed through wrapping")
	}
}

func TestValidateJobClassifiesCorruption(t *testing.T) {
	good := dataset.Job{WallSec: 1, CostNH: 1, MemMB: 1}
	if err := ValidateJob(good, 1); err != nil {
		t.Fatalf("good job rejected: %v", err)
	}
	cases := []dataset.Job{
		{WallSec: 1, CostNH: math.NaN(), MemMB: 1},
		{WallSec: 1, CostNH: 1, MemMB: math.Inf(1)},
		{WallSec: 1, CostNH: 1, MemMB: -3},
		{WallSec: 0, CostNH: 1, MemMB: 1},
	}
	for i, j := range cases {
		err := ValidateJob(j, 2)
		if err == nil {
			t.Fatalf("case %d accepted", i)
		}
		f, ok := AsFault(err)
		if !ok || f.Class != ClassCorrupt || f.Severity != Retryable {
			t.Fatalf("case %d misclassified: %v", i, err)
		}
		if !errors.Is(err, dataset.ErrBadResponse) {
			t.Fatalf("case %d does not wrap ErrBadResponse", i)
		}
		if math.IsNaN(f.LostNH) || f.LostNH < 0 {
			t.Fatalf("case %d lost node-hours %g", i, f.LostNH)
		}
	}
}

// TestFaultyLabDeterministicPerAttempt pins the reproducibility contract:
// the outcome of attempt k on configuration c depends only on (seed, c, k),
// not on what ran in between.
func TestFaultyLabDeterministicPerAttempt(t *testing.T) {
	cfg := LabConfig{Seed: 11, PTransient: 0.4, PCorrupt: 0.3, RSSLimitMB: 0.4}
	combos := dataset.AllCombos()[:40]

	// Records are compared as formatted strings: corrupted jobs carry NaN,
	// which never compares equal to itself under reflect.DeepEqual.
	trace := func(order []dataset.Combo) map[string][]string {
		lab := MustFaultyLab(newAnalyticLab(), cfg)
		out := make(map[string][]string)
		for _, c := range order {
			for a := 0; a < 3; a++ {
				j, err := lab.Run(c)
				key := fmt.Sprintf("%+v", c)
				out[key] = append(out[key], fmt.Sprintf("%+v | %v", j, err))
			}
		}
		return out
	}

	fwd := trace(combos)
	rev := make([]dataset.Combo, len(combos))
	for i, c := range combos {
		rev[len(combos)-1-i] = c
	}
	bwd := trace(rev)
	if !reflect.DeepEqual(fwd, bwd) {
		t.Fatal("fault outcomes depend on execution order")
	}
}

func TestFaultyLabOOMCensorsAtLimit(t *testing.T) {
	const limit = 0.4
	lab := MustFaultyLab(newAnalyticLab(), LabConfig{Seed: 3, RSSLimitMB: limit})
	inner := newAnalyticLab()
	oom, clean := 0, 0
	for _, c := range dataset.AllCombos()[:200] {
		truth, _ := inner.Run(c)
		j, err := lab.Run(c)
		if truth.MemMB >= limit {
			f, ok := AsFault(err)
			if !ok || f.Class != ClassOOM || f.Severity != Censored {
				t.Fatalf("over-limit job not OOM-classified: %v", err)
			}
			if f.Job.MemMB != limit {
				t.Fatalf("censored memory %g want %g", f.Job.MemMB, limit)
			}
			if f.Job.CostNH <= 0 || f.Job.CostNH > truth.CostNH {
				t.Fatalf("partial cost %g outside (0, %g]", f.Job.CostNH, truth.CostNH)
			}
			if f.LostNH != f.Job.CostNH {
				t.Fatalf("lost %g != charged %g", f.LostNH, f.Job.CostNH)
			}
			oom++
		} else {
			if err != nil {
				t.Fatalf("under-limit job failed: %v", err)
			}
			if j != truth {
				t.Fatalf("clean job altered: %+v vs %+v", j, truth)
			}
			clean++
		}
	}
	if oom == 0 || clean == 0 {
		t.Fatalf("degenerate split oom=%d clean=%d", oom, clean)
	}
}

func TestFaultyLabTimeoutKills(t *testing.T) {
	lab := MustFaultyLab(newAnalyticLab(), LabConfig{Seed: 5, WallLimitSec: 10})
	inner := newAnalyticLab()
	kills := 0
	for _, c := range dataset.AllCombos()[:100] {
		truth, _ := inner.Run(c)
		_, err := lab.Run(c)
		if truth.WallSec <= 10 {
			if err != nil {
				t.Fatalf("fast job killed: %v", err)
			}
			continue
		}
		f, ok := AsFault(err)
		if !ok || f.Class != ClassTimeout || f.Severity != Censored {
			t.Fatalf("slow job not timeout-classified: %v", err)
		}
		if f.Job.WallSec != 10 {
			t.Fatalf("killed wall %g", f.Job.WallSec)
		}
		want := truth.CostNH * 10 / truth.WallSec
		if math.Abs(f.LostNH-want) > 1e-12 {
			t.Fatalf("charged %g want %g", f.LostNH, want)
		}
		kills++
	}
	if kills == 0 {
		t.Fatal("no timeouts triggered")
	}
}

func TestFaultyLabCorruptReturnsBadMeasurement(t *testing.T) {
	lab := MustFaultyLab(newAnalyticLab(), LabConfig{Seed: 9, PCorrupt: 1})
	j, err := lab.Run(dataset.Combo{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1})
	if err != nil {
		t.Fatalf("corrupt job should surface as a bad measurement, got error %v", err)
	}
	if ValidateJob(j, 1) == nil {
		t.Fatalf("corrupted job passed validation: %+v", j)
	}
}

func TestFaultyLabStateRoundTrip(t *testing.T) {
	cfg := LabConfig{Seed: 21, PTransient: 0.5}
	lab := MustFaultyLab(newAnalyticLab(), cfg)
	c := dataset.Combo{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1}
	var first []error
	for i := 0; i < 4; i++ {
		_, err := lab.Run(c)
		first = append(first, err)
	}
	st, err := lab.LabState()
	if err != nil {
		t.Fatal(err)
	}
	// Continue the original and a restored copy in lockstep.
	fresh := MustFaultyLab(newAnalyticLab(), cfg)
	if err := fresh.RestoreLabState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ja, ea := lab.Run(c)
		jb, eb := fresh.Run(c)
		if ja != jb || fmt.Sprint(ea) != fmt.Sprint(eb) {
			t.Fatalf("restored lab diverged at %d: (%v, %v) vs (%v, %v)", i, ja, ea, jb, eb)
		}
	}
}

func TestRunWithRetryRecoversTransients(t *testing.T) {
	// High transient rate + generous budget: retry until clean.
	lab := MustFaultyLab(newAnalyticLab(), LabConfig{Seed: 2, PTransient: 0.6})
	p := RetryPolicy{MaxAttempts: 20, Seed: 2}
	retried := false
	for _, c := range dataset.AllCombos()[:30] {
		out := RunWithRetry(lab, c, p)
		if !out.OK {
			t.Fatalf("retry failed to recover %+v: %+v", c, out.Fault)
		}
		if out.Attempts != out.Retries+1 {
			t.Fatalf("accounting: attempts %d retries %d", out.Attempts, out.Retries)
		}
		if out.Retries > 0 {
			retried = true
			if out.BackoffSec <= 0 {
				t.Fatal("retries without backoff accounting")
			}
		}
	}
	if !retried {
		t.Fatal("transient rate 0.6 produced no retries")
	}
}

func TestRunWithRetryCensoredIsTerminal(t *testing.T) {
	lab := MustFaultyLab(newAnalyticLab(), LabConfig{Seed: 2, RSSLimitMB: 1e-6})
	out := RunWithRetry(lab, dataset.Combo{P: 4, Mx: 32, MaxLevel: 6, R0: 0.5, RhoIn: 0.02}, RetryPolicy{})
	if out.OK || out.Fault == nil || out.Fault.Class != ClassOOM {
		t.Fatalf("outcome %+v", out)
	}
	if out.Attempts != 1 || out.Retries != 0 {
		t.Fatalf("censored kill was retried: %+v", out)
	}
}

func TestRunWithRetryBudgetExhaustion(t *testing.T) {
	lab := MustFaultyLab(newAnalyticLab(), LabConfig{Seed: 4, PTransient: 1})
	slept := 0
	out := RunWithRetry(lab, dataset.Combo{P: 8, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02}, RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(float64) { slept++ },
	})
	if out.OK || !out.Exhausted {
		t.Fatalf("outcome %+v", out)
	}
	if out.Attempts != 4 || out.Retries != 3 || slept != 3 {
		t.Fatalf("attempts=%d retries=%d sleeps=%d", out.Attempts, out.Retries, slept)
	}
	if out.ByClass[ClassTransient] != 4 {
		t.Fatalf("by-class %v", out.ByClass)
	}
}

func TestRunWithRetryUnknownErrorIsFatal(t *testing.T) {
	lab := &failingLab{analyticLab: *newAnalyticLab()}
	out := RunWithRetry(lab, dataset.Combo{P: 8, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02}, RetryPolicy{})
	if out.OK || out.Exhausted {
		t.Fatalf("outcome %+v", out)
	}
	if out.Fault.Class != ClassUnknown || out.Fault.Severity != Fatal || out.Attempts != 1 {
		t.Fatalf("fault %+v attempts %d", out.Fault, out.Attempts)
	}
}

type failingLab struct{ analyticLab }

func (l *failingLab) Run(dataset.Combo) (dataset.Job, error) {
	return dataset.Job{}, errors.New("cluster on fire")
}

func TestBackoffGrowsAndIsDeterministic(t *testing.T) {
	p := RetryPolicy{BaseBackoffSec: 1, MaxBackoffSec: 16, Seed: 6}
	c := dataset.Combo{P: 4, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02}
	prevBase := 0.0
	for a := 1; a <= 6; a++ {
		d := p.Backoff(c, a)
		if d != p.Backoff(c, a) {
			t.Fatal("jitter not deterministic")
		}
		base := math.Min(16, math.Pow(2, float64(a-1)))
		if d < 0.5*base || d >= 1.5*base {
			t.Fatalf("attempt %d delay %g outside jitter band of %g", a, d, base)
		}
		if base > prevBase && a > 1 && d <= 0 {
			t.Fatalf("non-positive delay %g", d)
		}
		prevBase = base
	}
}

func TestLabConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     LabConfig
		wantErr string // substring of the error, "" = valid
	}{
		{name: "zero value", cfg: LabConfig{}},
		{name: "typical", cfg: LabConfig{Seed: 1, RSSLimitMB: 4096, WallLimitSec: 600, PTransient: 0.1, PCorrupt: 0.05}},
		{name: "probabilities at zero", cfg: LabConfig{PTransient: 0, PCorrupt: 0}},
		{name: "negative transient probability", cfg: LabConfig{PTransient: -0.1}, wantErr: "PTransient"},
		{name: "negative corrupt probability", cfg: LabConfig{PCorrupt: -1e-9}, wantErr: "PCorrupt"},
		{name: "transient probability of one (always inject)", cfg: LabConfig{PTransient: 1}},
		{name: "corrupt probability above one", cfg: LabConfig{PCorrupt: 40}, wantErr: "PCorrupt"},
		{name: "transient probability above one", cfg: LabConfig{PTransient: 1.5}, wantErr: "PTransient"},
		{name: "NaN transient probability", cfg: LabConfig{PTransient: math.NaN()}, wantErr: "PTransient"},
		{name: "NaN RSS limit", cfg: LabConfig{RSSLimitMB: math.NaN()}, wantErr: "RSSLimitMB"},
		{name: "negative RSS limit", cfg: LabConfig{RSSLimitMB: -1}, wantErr: "RSSLimitMB"},
		{name: "infinite RSS limit", cfg: LabConfig{RSSLimitMB: math.Inf(1)}, wantErr: "RSSLimitMB"},
		{name: "NaN wall limit", cfg: LabConfig{WallLimitSec: math.NaN()}, wantErr: "WallLimitSec"},
		{name: "negative wall limit", cfg: LabConfig{WallLimitSec: -3}, wantErr: "WallLimitSec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				if _, nerr := NewFaultyLab(newAnalyticLab(), tc.cfg); nerr != nil {
					t.Fatalf("NewFaultyLab rejected valid config: %v", nerr)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted: %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the bad field %q", err, tc.wantErr)
			}
			if _, nerr := NewFaultyLab(newAnalyticLab(), tc.cfg); nerr == nil {
				t.Fatal("NewFaultyLab accepted invalid config")
			}
		})
	}
}
