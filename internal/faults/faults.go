// Package faults makes the campaign runtime's failure modes explicit. The
// paper's central premise is that real AMR jobs die — a selection whose true
// MaxRSS exceeds L_mem is killed by the batch system and its cost is wasted
// (Cumulative Regret, §V), and RGMA "learns from its own failures" (§V-C) —
// so this package provides:
//
//   - an error taxonomy (Class × Severity) that tells the campaign loop
//     whether a failed experiment should be retried, absorbed as a censored
//     observation, or must stop the campaign;
//   - FaultyLab, a seeded, deterministic fault injector wrapped around any
//     Lab: OOM kills at a configurable RSS limit, wall-clock timeout kills,
//     transient node/launch failures, and corrupted measurements;
//   - RunWithRetry, the retry layer with exponential backoff, deterministic
//     jitter, and a per-job attempt budget.
//
// Everything is reproducible: each (seed, configuration, attempt) triple
// derives an independent RNG, so fault sequences do not depend on goroutine
// schedules or on how many other jobs ran in between.
package faults

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/dataset"
)

// Class names what physically went wrong with an experiment attempt.
type Class string

// Fault classes.
const (
	// ClassOOM: the job's resident set crossed the enforced RSS limit and
	// the batch system killed it. The memory observation is censored at the
	// limit (a lower bound on the true MaxRSS) and the cost spent until the
	// kill is wasted.
	ClassOOM Class = "oom"
	// ClassTimeout: the job exceeded its wall-clock allocation and was
	// killed; the cost of the full allocation is wasted and no trustworthy
	// measurement survives.
	ClassTimeout Class = "timeout"
	// ClassTransient: a node or launch failure unrelated to the
	// configuration — the canonical retryable error.
	ClassTransient Class = "transient"
	// ClassCorrupt: the job ran but its measurement is unusable
	// (NaN/Inf/non-positive responses).
	ClassCorrupt Class = "corrupt"
	// ClassUnknown wraps errors the taxonomy cannot classify; they are
	// always fatal.
	ClassUnknown Class = "unknown"
)

// Classes lists the injectable fault classes in deterministic order (for
// stable reports).
func Classes() []Class {
	return []Class{ClassOOM, ClassTimeout, ClassTransient, ClassCorrupt, ClassUnknown}
}

// Severity tells the campaign loop how to react to a fault.
type Severity int

// Severities, in escalation order.
const (
	// Retryable faults may succeed on a repeated attempt (transient node
	// failures, corrupted measurements).
	Retryable Severity = iota
	// Censored faults killed the job deterministically (OOM, timeout):
	// retrying the same configuration would fail again, but a partial,
	// bound-type observation survives and the wasted cost is known.
	Censored
	// Fatal faults cannot be classified and must stop the campaign.
	Fatal
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Retryable:
		return "retryable"
	case Censored:
		return "censored"
	case Fatal:
		return "fatal"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Fault is a classified experiment failure.
type Fault struct {
	Class    Class
	Severity Severity
	// Combo is the configuration whose attempt failed.
	Combo dataset.Combo
	// Attempt is the 1-based attempt number on this configuration.
	Attempt int
	// LostNH is the node-hours charged to the failed attempt (wasted cost).
	LostNH float64
	// Job carries the partial observation of a censored kill: for OOM the
	// MemMB field is the RSS limit (a lower bound on the true usage) and
	// WallSec/CostNH reflect the execution up to the kill; for timeouts the
	// memory reading is lost (MemMB is 0).
	Job dataset.Job
	// Err is the underlying error, if any.
	Err error
}

// Error implements error.
func (f *Fault) Error() string {
	msg := fmt.Sprintf("faults: %s (%s) on %+v attempt %d, %.4g node-hours lost",
		f.Class, f.Severity, f.Combo, f.Attempt, f.LostNH)
	if f.Err != nil {
		msg += ": " + f.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying error to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// AsFault extracts a *Fault from an error chain.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// Classify maps any error to its severity: classified faults carry their
// own, everything else is fatal.
func Classify(err error) Severity {
	if f, ok := AsFault(err); ok {
		return f.Severity
	}
	return Fatal
}

// ValidateJob checks a returned measurement for corruption (the guard the
// online runtime applies to every lab result before feeding the GPs). A
// violation is classified as a retryable ClassCorrupt fault wrapping
// dataset.ErrBadResponse: the job may well produce a clean measurement when
// re-run.
func ValidateJob(job dataset.Job, attempt int) error {
	if err := job.CheckResponses(); err != nil {
		lost := job.CostNH
		if math.IsNaN(lost) || math.IsInf(lost, 0) || lost < 0 {
			lost = 0
		}
		return &Fault{
			Class:    ClassCorrupt,
			Severity: Retryable,
			Combo:    job.Config(),
			Attempt:  attempt,
			LostNH:   lost,
			Err:      err,
		}
	}
	return nil
}

// attemptSeed derives the deterministic RNG seed of one attempt from the
// injector seed, the configuration, and the attempt number, via FNV-1a over
// the exact field bytes. Fault draws therefore depend only on *what* is run
// and *how many times*, never on global ordering — the property that makes
// retries and checkpoint/resume bitwise-reproducible.
func attemptSeed(seed int64, c dataset.Combo, attempt int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(seed))
	mix(uint64(c.P))
	mix(uint64(c.Mx))
	mix(uint64(c.MaxLevel))
	mix(math.Float64bits(c.R0))
	mix(math.Float64bits(c.RhoIn))
	mix(uint64(attempt))
	return int64(h)
}
