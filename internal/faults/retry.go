package faults

import (
	"math"
	"math/rand"

	"alamr/internal/dataset"
	"alamr/internal/obs"
)

// RetryPolicy bounds and paces repeated attempts on one configuration.
type RetryPolicy struct {
	// MaxAttempts is the per-job attempt budget, counting the first try
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseBackoffSec and MaxBackoffSec shape the exponential backoff:
	// attempt k waits min(Max, Base·2^(k-1)) seconds scaled by a
	// deterministic jitter factor in [0.5, 1.5).
	BaseBackoffSec float64
	MaxBackoffSec  float64
	// Seed drives the jitter; like fault injection, the jitter of attempt k
	// on configuration c depends only on (Seed, c, k).
	Seed int64
	// Sleep, when non-nil, is called with each backoff delay in seconds. A
	// real batch-system lab passes a wall-clock sleeper; the simulation labs
	// leave it nil and the delay is only accounted, not waited out.
	Sleep func(seconds float64) `json:"-"`
}

func (p *RetryPolicy) setDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoffSec <= 0 {
		p.BaseBackoffSec = 1
	}
	if p.MaxBackoffSec <= 0 {
		p.MaxBackoffSec = 60
	}
}

// Backoff returns the deterministic post-failure delay (seconds) before
// retrying configuration c after failed attempt number attempt (1-based).
func (p RetryPolicy) Backoff(c dataset.Combo, attempt int) float64 {
	p.setDefaults()
	d := p.BaseBackoffSec * math.Pow(2, float64(attempt-1))
	if d > p.MaxBackoffSec {
		d = p.MaxBackoffSec
	}
	// Deterministic jitter in [0.5, 1.5): decorrelates fleets of retrying
	// jobs without sacrificing reproducibility.
	jrng := rand.New(rand.NewSource(attemptSeed(p.Seed^0x6a09e667f3bcc908, c, attempt)))
	return d * (0.5 + jrng.Float64())
}

// Outcome is the bookkeeping of one job executed through the retry layer.
type Outcome struct {
	// Job is the successful measurement when OK.
	Job dataset.Job
	// OK reports a full, uncensored observation.
	OK bool
	// Fault is the terminal classified failure when !OK.
	Fault *Fault
	// Exhausted reports that the attempt budget ran out on retryable
	// failures — a campaign-stopping condition.
	Exhausted bool

	// Attempts counts lab.Run calls; Retries counts the failed attempts
	// that were followed by another try, so
	// Attempts = Retries + 1 terminal attempt.
	Attempts int
	Retries  int
	// LostNH accumulates node-hours charged to failed attempts.
	LostNH float64
	// BackoffSec accumulates the (virtual or real) backoff delay.
	BackoffSec float64
	// ByClass counts the failed attempts by fault class; LostNHByClass
	// attributes the wasted node-hours to each class.
	ByClass       map[Class]int
	LostNHByClass map[Class]float64
}

// RunWithRetry executes one configuration through the lab under the retry
// policy: retryable faults (transient failures, corrupted measurements) are
// retried with exponential backoff and deterministic jitter until the
// attempt budget is spent; censored kills (OOM, timeout) and fatal errors
// terminate immediately — retrying a job that deterministically exceeds its
// limits would only waste more allocation. Every returned measurement is
// validated before being accepted.
func RunWithRetry(lab Lab, c dataset.Combo, p RetryPolicy) Outcome {
	p.setDefaults()
	out := Outcome{ByClass: make(map[Class]int), LostNHByClass: make(map[Class]float64)}
	for {
		out.Attempts++
		obs.FaultAttempts.Inc()
		job, err := lab.Run(c)
		if err == nil {
			err = ValidateJob(job, out.Attempts)
		}
		if err == nil {
			out.Job = job
			out.OK = true
			obs.FaultSuccess.Inc()
			return out
		}

		if f, ok := AsFault(err); ok {
			out.Fault = f
			out.ByClass[f.Class]++
			out.LostNH += f.LostNH
			out.LostNHByClass[f.Class] += f.LostNH
		} else {
			out.Fault = &Fault{
				Class:    ClassUnknown,
				Severity: Fatal,
				Combo:    c,
				Attempt:  out.Attempts,
				Err:      err,
			}
			out.ByClass[ClassUnknown]++
		}
		obs.FaultByClass.Inc(string(out.Fault.Class))

		// Terminal classification mirrors online.Health.absorb: a censored
		// kill counts as censored, every other terminal failure (fatal or an
		// exhausted retry budget) counts as fatal — so the obs counters
		// reconcile with the campaign health ledger by construction.
		if out.Fault.Severity != Retryable {
			if out.Fault.Severity == Censored {
				obs.FaultCensored.Inc()
			} else {
				obs.FaultFatal.Inc()
			}
			return out
		}
		if out.Attempts >= p.MaxAttempts {
			out.Exhausted = true
			obs.FaultFatal.Inc()
			return out
		}
		out.Retries++
		obs.FaultRetries.Inc()
		delay := p.Backoff(c, out.Attempts)
		out.BackoffSec += delay
		obs.FaultBackoff.Observe(delay)
		if p.Sleep != nil {
			p.Sleep(delay)
		}
	}
}
