package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/mat"
)

// BatchStrategy chooses how a q-batch is assembled from a single-candidate
// policy — the "multiple simulations in parallel at each iteration" scheme
// the paper's future work proposes (§VI). Selecting q > 1 candidates before
// retraining trades selection optimality for wall-clock: the models are
// stale for all but the first pick of each round.
type BatchStrategy int

// Batch strategies.
const (
	// BatchIndependent re-invokes the policy q times, removing each pick
	// from the candidate set but leaving predictions untouched (pure
	// stale-model selection).
	BatchIndependent BatchStrategy = iota
	// BatchConstantLiar re-invokes the policy q times, after each pick
	// "hallucinating" that the measurement came back equal to the current
	// predicted mean: the candidate's uncertainty is zeroed and neighboring
	// candidates' cost uncertainty is discounted by their kernel-style
	// proximity. This is the constant-liar heuristic from the batch
	// Bayesian-optimization literature, adapted to the goodness policies.
	BatchConstantLiar
)

// String names the strategy.
func (s BatchStrategy) String() string {
	switch s {
	case BatchIndependent:
		return "independent"
	case BatchConstantLiar:
		return "constant-liar"
	default:
		return fmt.Sprintf("BatchStrategy(%d)", int(s))
	}
}

// SelectBatch picks q distinct candidates using the given base policy and
// strategy. It returns the selected indices into the candidate set, in
// selection order. When the policy signals ErrAllExceedLimit midway, the
// picks made so far are returned along with the error, so callers can run a
// partial batch before terminating.
func SelectBatch(p Policy, c *Candidates, q int, strategy BatchStrategy, rng *rand.Rand) ([]int, error) {
	if q < 1 {
		return nil, fmt.Errorf("core: batch size %d, need >= 1", q)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	n := c.Len()
	if q > n {
		q = n
	}

	// Work on a mutable copy with an index map back to the original set.
	work := &Candidates{
		X:           c.X,
		MuCost:      mat.CopyVec(c.MuCost),
		SigmaCost:   mat.CopyVec(c.SigmaCost),
		MuMem:       mat.CopyVec(c.MuMem),
		SigmaMem:    mat.CopyVec(c.SigmaMem),
		MemLimitLog: c.MemLimitLog,
	}
	orig := make([]int, n)
	for i := range orig {
		orig[i] = i
	}
	rows := make([][]float64, n)
	if c.X != nil {
		for i := 0; i < n; i++ {
			rows[i] = mat.CopyVec(c.X.Row(i))
		}
	}

	var picks []int
	for len(picks) < q {
		idx, err := p.Select(work, rng)
		if err != nil {
			if errors.Is(err, ErrAllExceedLimit) && len(picks) > 0 {
				return picks, err
			}
			return picks, err
		}
		picks = append(picks, orig[idx])

		if strategy == BatchConstantLiar && rows[0] != nil {
			hallucinate(work, rows, idx)
		}

		// Remove the pick from the working set.
		last := work.Len() - 1
		swapRemove := func(v []float64) []float64 {
			v[idx] = v[last]
			return v[:last]
		}
		work.MuCost = swapRemove(work.MuCost)
		work.SigmaCost = swapRemove(work.SigmaCost)
		work.MuMem = swapRemove(work.MuMem)
		work.SigmaMem = swapRemove(work.SigmaMem)
		orig[idx] = orig[last]
		orig = orig[:last]
		rows[idx] = rows[last]
		rows = rows[:last]
		work.X = nil // row storage is tracked in rows; X is no longer aligned
	}
	return picks, nil
}

// hallucinate applies the constant-liar update: candidates near the pick
// (in feature space) have their cost uncertainty discounted, mimicking the
// posterior shrinkage the real measurement would cause.
func hallucinate(c *Candidates, rows [][]float64, pick int) {
	xp := rows[pick]
	// Effective length scale: the unit cube with d dimensions; 0.3 is the
	// same order as the fitted length scales on this data.
	const l2 = 0.3 * 0.3
	for i := range c.SigmaCost {
		if i == pick {
			continue
		}
		w := math.Exp(-mat.SqDist(rows[i], xp) / (2 * l2))
		c.SigmaCost[i] *= 1 - w
		c.SigmaMem[i] *= 1 - w
	}
	c.SigmaCost[pick] = 0
	c.SigmaMem[pick] = 0
}
