package core

import (
	"math/rand"

	"alamr/internal/dataset"
	"alamr/internal/engine"
)

// BatchStrategy controls how a q-batch of candidates is assembled from a
// single-point policy.
type BatchStrategy = engine.BatchStrategy

// Batch strategies (see engine.BatchStrategy).
const (
	BatchIndependent  = engine.BatchIndependent
	BatchConstantLiar = engine.BatchConstantLiar
)

// SelectBatch picks up to q distinct candidates by repeatedly applying the
// policy to a working copy of the candidate set.
func SelectBatch(p Policy, c *Candidates, q int, strategy BatchStrategy, rng *rand.Rand) ([]int, error) {
	return engine.SelectBatch(p, c, q, strategy, rng)
}

// RunBatchTrajectory executes Algorithm 1 with q-batch selection, the
// parallel-selection scheme the paper's future work proposes (see
// engine.RunReplayBatch).
func RunBatchTrajectory(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, q int, strategy BatchStrategy) (*Trajectory, error) {
	return engine.RunReplayBatch(ds, part, cfg, q, strategy)
}
