package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"alamr/internal/dataset"
	"alamr/internal/mat"
	"alamr/internal/stats"
)

// RunBatchTrajectory executes Algorithm 1 with q-batch selection, the
// parallel-selection scheme the paper's future work proposes: each round the
// (stale) models pick q candidates, all q simulations "run", and the models
// retrain once on the whole batch. Per-selection metrics (CC, CR,
// violations) are recorded exactly as in the sequential loop; the RMSE
// curves advance once per round — all q selections of a round share the
// post-round value, since that is the first moment a new model exists.
func RunBatchTrajectory(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, q int, strategy BatchStrategy) (*Trajectory, error) {
	cfg.setDefaults()
	if cfg.Policy == nil {
		return nil, errors.New("core: LoopConfig.Policy is required")
	}
	if q < 1 {
		return nil, fmt.Errorf("core: batch size %d, need >= 1", q)
	}
	if err := part.Validate(ds.Len()); err != nil {
		return nil, err
	}
	if len(part.Init) == 0 || len(part.Active) == 0 || len(part.Test) == 0 {
		return nil, errors.New("core: partition must have non-empty Init, Active, and Test")
	}
	if err := checkLogPrecondition(ds, part); err != nil {
		return nil, err
	}

	features := func(idx []int) *mat.Dense {
		if cfg.Log2P {
			return ds.FeaturesLog2P(idx)
		}
		return ds.Features(idx)
	}

	xInit := features(part.Init)
	xTest := features(part.Test)
	costTest := ds.Cost(part.Test)
	memTest := ds.Mem(part.Test)

	gpCost := cfg.newModel()
	if err := gpCost.Fit(xInit, ds.LogCost(part.Init)); err != nil {
		return nil, fmt.Errorf("core: initial cost fit: %w", err)
	}
	gpMem := cfg.newModel()
	if err := gpMem.Fit(xInit, ds.LogMem(part.Init)); err != nil {
		return nil, fmt.Errorf("core: initial memory fit: %w", err)
	}
	gpCost.SetRestarts(0)
	gpMem.SetRestarts(0)

	tr := &Trajectory{
		Policy: fmt.Sprintf("%s[q=%d,%s]", cfg.Policy.Name(), q, strategy),
		NInit:  len(part.Init),
		Seed:   cfg.Seed,
	}
	tr.InitCostRMSE = nonLogRMSE(gpCost, xTest, costTest)
	tr.InitMemRMSE = nonLogRMSE(gpMem, xTest, memTest)

	remaining := append([]int(nil), part.Active...)
	rng := rand.New(rand.NewSource(stats.SplitSeed(cfg.Seed, 0)))

	maxSel := len(remaining)
	if cfg.MaxIterations > 0 && cfg.MaxIterations < maxSel {
		maxSel = cfg.MaxIterations
	}
	memLimitRaw := math.Inf(1)
	memLimitLog := math.Inf(1)
	if cfg.MemLimitMB > 0 {
		memLimitRaw = cfg.MemLimitMB
		memLimitLog = math.Log10(cfg.MemLimitMB)
	}

	var cumCost, cumRegret float64
	round := 0
	// As in the sequential loop, the scorer owns the pool features and
	// serves each round's Candidates from the incremental posterior caches
	// (or direct Predict for non-GP surrogates / DirectScoring).
	scorer := newPoolScorer(gpCost, gpMem, features(remaining), cfg.DirectScoring)
	defer scorer.close()
	tr.Reason = StopPoolExhausted
	for len(tr.Selected) < maxSel && len(remaining) > 0 {
		want := q
		if rem := maxSel - len(tr.Selected); rem < want {
			want = rem
		}
		cands := scorer.candidates(memLimitLog)
		picks, err := SelectBatch(cfg.Policy, cands, want, strategy, rng)
		if err != nil && !errors.Is(err, ErrAllExceedLimit) {
			return nil, fmt.Errorf("core: batch round %d: %w", round, err)
		}
		stopped := errors.Is(err, ErrAllExceedLimit)
		if len(picks) == 0 {
			tr.Reason = StopMemoryLimit
			break
		}

		// Record and absorb every pick of the round.
		for _, pick := range picks {
			dsIdx := remaining[pick]
			job := ds.Jobs[dsIdx]
			tr.Selected = append(tr.Selected, dsIdx)
			tr.SelectedCost = append(tr.SelectedCost, job.CostNH)
			tr.SelectedMem = append(tr.SelectedMem, job.MemMB)
			cumCost += job.CostNH
			violated := job.MemMB >= memLimitRaw
			if violated {
				cumRegret += job.CostNH
			}
			tr.CumCost = append(tr.CumCost, cumCost)
			tr.CumRegret = append(tr.CumRegret, cumRegret)
			tr.Violation = append(tr.Violation, violated)

			if err := gpCost.Append(scorer.row(pick), math.Log10(job.CostNH)); err != nil {
				return nil, fmt.Errorf("core: cost update round %d: %w", round, err)
			}
			if err := gpMem.Append(scorer.row(pick), math.Log10(job.MemMB)); err != nil {
				return nil, fmt.Errorf("core: memory update round %d: %w", round, err)
			}
		}
		// Remove picked indices from the pool: the index slice is rebuilt
		// via a drop set, the scorer in descending position order (so
		// earlier removals do not shift later positions).
		drop := make(map[int]bool, len(picks))
		for _, p := range picks {
			drop[p] = true
		}
		next := remaining[:0]
		for i, idx := range remaining {
			if !drop[i] {
				next = append(next, idx)
			}
		}
		remaining = next
		sorted := append([]int(nil), picks...)
		sort.Ints(sorted)
		for i := len(sorted) - 1; i >= 0; i-- {
			scorer.remove(sorted[i])
		}

		round++
		if round%maxInt(cfg.HyperoptEvery/q, 1) == 0 {
			if err := gpCost.Refit(); err != nil {
				return nil, fmt.Errorf("core: cost refit round %d: %w", round, err)
			}
			if err := gpMem.Refit(); err != nil {
				return nil, fmt.Errorf("core: memory refit round %d: %w", round, err)
			}
		}

		// One post-round RMSE value, replicated across the round's picks.
		cr := nonLogRMSE(gpCost, xTest, costTest)
		mr := nonLogRMSE(gpMem, xTest, memTest)
		for range picks {
			tr.CostRMSE = append(tr.CostRMSE, cr)
			tr.MemRMSE = append(tr.MemRMSE, mr)
		}
		if stopped {
			tr.Reason = StopMemoryLimit
			break
		}
	}
	if tr.Reason == StopPoolExhausted && len(remaining) > 0 {
		tr.Reason = StopMaxIterations
	}
	tr.FinalHyperCost = gpCost.Hyperparams()
	tr.FinalHyperMem = gpMem.Hyperparams()
	return tr, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
