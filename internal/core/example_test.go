package core

import (
	"fmt"
	"math/rand"

	"alamr/internal/dataset"
)

// Example runs the paper's Algorithm 1 end to end on a small synthetic
// campaign: memory-aware RGMA selects 20 experiments and the trajectory
// records everything the evaluation needs.
func Example() {
	ds := synthDataset(120, 42)
	part, err := dataset.Split(ds, 10, 40, rand.New(rand.NewSource(7)))
	if err != nil {
		panic(err)
	}
	tr, err := RunTrajectory(ds, part, LoopConfig{
		Policy:        RGMA{},
		MaxIterations: 20,
		MemLimitMB:    PaperMemLimitMB(ds),
		Seed:          13,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("policy: %s\n", tr.Policy)
	fmt.Printf("selections: %d (stop: %s)\n", tr.Iterations(), tr.Reason)
	fmt.Printf("error improved: %v\n", tr.CostRMSE[19] < tr.InitCostRMSE)
	fmt.Printf("regret bounded by cost: %v\n", tr.CumRegret[19] <= tr.CumCost[19])
	// Output:
	// policy: RGMA
	// selections: 20 (stop: max-iterations)
	// error improved: true
	// regret bounded by cost: true
}
