package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"alamr/internal/dataset"
	"alamr/internal/mat"
)

func batchCands(n int, limitLog float64) *Candidates {
	x := mat.NewDense(n, 2, nil)
	muC := make([]float64, n)
	sigC := make([]float64, n)
	muM := make([]float64, n)
	sigM := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)/float64(n))
		x.Set(i, 1, 0.5)
		muC[i] = float64(i) * 0.1
		sigC[i] = 0.2
		muM[i] = float64(i) * 0.05
		sigM[i] = 0.1
	}
	return &Candidates{X: x, MuCost: muC, SigmaCost: sigC, MuMem: muM, SigmaMem: sigM, MemLimitLog: limitLog}
}

func TestSelectBatchDistinct(t *testing.T) {
	c := batchCands(10, math.Inf(1))
	rng := rand.New(rand.NewSource(1))
	for _, strategy := range []BatchStrategy{BatchIndependent, BatchConstantLiar} {
		picks, err := SelectBatch(RandGoodness{}, c, 4, strategy, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) != 4 {
			t.Fatalf("%v: picks = %d want 4", strategy, len(picks))
		}
		seen := map[int]bool{}
		for _, p := range picks {
			if p < 0 || p >= 10 || seen[p] {
				t.Fatalf("%v: invalid or duplicate pick %d in %v", strategy, p, picks)
			}
			seen[p] = true
		}
	}
}

func TestSelectBatchClampsToPool(t *testing.T) {
	c := batchCands(3, math.Inf(1))
	picks, err := SelectBatch(MinPred{}, c, 10, BatchIndependent, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 3 {
		t.Fatalf("picks = %d want 3", len(picks))
	}
}

func TestSelectBatchValidation(t *testing.T) {
	c := batchCands(3, math.Inf(1))
	if _, err := SelectBatch(MinPred{}, c, 0, BatchIndependent, nil); err == nil {
		t.Fatal("q=0 accepted")
	}
	empty := &Candidates{}
	if _, err := SelectBatch(MinPred{}, empty, 1, BatchIndependent, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestSelectBatchDeterministicGreedy(t *testing.T) {
	// MinPred with distinct costs: batch must be the q cheapest, in order.
	c := batchCands(6, math.Inf(1))
	picks, err := SelectBatch(MinPred{}, c, 3, BatchIndependent, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v want %v", picks, want)
		}
	}
}

func TestSelectBatchConstantLiarSpreads(t *testing.T) {
	// Two tight clusters of candidates; with MaxSigma + constant liar the
	// second pick should come from the other cluster because the first
	// pick's neighborhood lost its uncertainty.
	x := mat.NewDense(4, 1, []float64{0.0, 0.01, 1.0, 0.99})
	c := &Candidates{
		X:           x,
		MuCost:      []float64{0, 0, 0, 0},
		SigmaCost:   []float64{1.0, 0.99, 0.98, 0.97},
		MuMem:       []float64{0, 0, 0, 0},
		SigmaMem:    []float64{0, 0, 0, 0},
		MemLimitLog: math.Inf(1),
	}
	picks, err := SelectBatch(MaxSigma{}, c, 2, BatchConstantLiar, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if picks[0] != 0 {
		t.Fatalf("first pick = %d want 0", picks[0])
	}
	if picks[1] != 2 && picks[1] != 3 {
		t.Fatalf("constant liar did not spread: picks = %v", picks)
	}
	// Independent selection would have taken the near-duplicate instead.
	c2 := &Candidates{
		X:           x,
		MuCost:      []float64{0, 0, 0, 0},
		SigmaCost:   []float64{1.0, 0.99, 0.98, 0.97},
		MuMem:       []float64{0, 0, 0, 0},
		SigmaMem:    []float64{0, 0, 0, 0},
		MemLimitLog: math.Inf(1),
	}
	ind, err := SelectBatch(MaxSigma{}, c2, 2, BatchIndependent, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if ind[1] != 1 {
		t.Fatalf("independent picks = %v, expected the near-duplicate 1", ind)
	}
}

func TestSelectBatchRGMAPartialOnLimit(t *testing.T) {
	// Only one candidate satisfies the limit: batch returns it plus the
	// termination error.
	c := batchCands(4, math.Inf(1))
	c.MemLimitLog = 0.06 // only candidates 0 (0.0) and 1 (0.05) satisfy
	picks, err := SelectBatch(RGMA{}, c, 4, BatchIndependent, rand.New(rand.NewSource(6)))
	if !errors.Is(err, ErrAllExceedLimit) {
		t.Fatalf("err = %v want ErrAllExceedLimit", err)
	}
	if len(picks) != 2 {
		t.Fatalf("partial picks = %v want 2 entries", picks)
	}
}

func TestBatchStrategyString(t *testing.T) {
	if BatchIndependent.String() != "independent" || BatchConstantLiar.String() != "constant-liar" {
		t.Fatal("strategy names")
	}
	if BatchStrategy(9).String() == "" {
		t.Fatal("unknown strategy name empty")
	}
}

func TestRunBatchTrajectoryBookkeeping(t *testing.T) {
	ds := synthDataset(120, 60)
	part := smallPartition(t, ds, 10, 40, 16)
	tr, err := RunBatchTrajectory(ds, part, LoopConfig{
		Policy: RandGoodness{}, MaxIterations: 24, Seed: 7,
	}, 4, BatchConstantLiar)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Iterations() != 24 {
		t.Fatalf("selections = %d want 24", tr.Iterations())
	}
	if tr.Policy != "RandGoodness[q=4,constant-liar]" {
		t.Fatalf("policy label = %q", tr.Policy)
	}
	seen := map[int]bool{}
	for _, idx := range tr.Selected {
		if seen[idx] {
			t.Fatalf("duplicate selection %d", idx)
		}
		seen[idx] = true
	}
	if len(tr.CostRMSE) != 24 || len(tr.CumCost) != 24 {
		t.Fatalf("metric lengths %d/%d", len(tr.CostRMSE), len(tr.CumCost))
	}
	for i := 1; i < 24; i++ {
		if tr.CumCost[i] < tr.CumCost[i-1] {
			t.Fatal("CumCost not monotone")
		}
	}
}

func TestRunBatchTrajectoryQ1MatchesSequentialShape(t *testing.T) {
	ds := synthDataset(100, 61)
	part := smallPartition(t, ds, 10, 30, 17)
	tr, err := RunBatchTrajectory(ds, part, LoopConfig{
		Policy: MinPred{}, MaxIterations: 10, Seed: 9,
	}, 1, BatchIndependent)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunTrajectory(ds, part, LoopConfig{
		Policy: MinPred{}, MaxIterations: 10, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy deterministic policy: identical selections regardless of loop
	// implementation (refit cadence differs slightly, but the first picks
	// before the first refit must agree).
	for i := 0; i < 5; i++ {
		if tr.Selected[i] != seq.Selected[i] {
			t.Fatalf("selection %d: batch %d vs sequential %d", i, tr.Selected[i], seq.Selected[i])
		}
	}
}

func TestRunBatchTrajectoryLargerBatchesCheaperPerModel(t *testing.T) {
	// Larger q means fewer model rebuilds; the run must still learn.
	ds := synthDataset(120, 62)
	part := smallPartition(t, ds, 10, 40, 18)
	tr, err := RunBatchTrajectory(ds, part, LoopConfig{
		Policy: MaxSigma{}, MaxIterations: 40, Seed: 11,
	}, 8, BatchConstantLiar)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CostRMSE[len(tr.CostRMSE)-1] >= tr.InitCostRMSE {
		t.Fatalf("batch run did not learn: %g -> %g", tr.InitCostRMSE, tr.CostRMSE[len(tr.CostRMSE)-1])
	}
}

func TestRunBatchTrajectoryValidation(t *testing.T) {
	ds := synthDataset(50, 63)
	part := smallPartition(t, ds, 5, 20, 19)
	if _, err := RunBatchTrajectory(ds, part, LoopConfig{}, 2, BatchIndependent); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := RunBatchTrajectory(ds, part, LoopConfig{Policy: MinPred{}}, 0, BatchIndependent); err == nil {
		t.Fatal("q=0 accepted")
	}
}

func TestTrajectoryJSONRoundTrip(t *testing.T) {
	ds := synthDataset(80, 64)
	part := smallPartition(t, ds, 8, 25, 20)
	tr, err := RunTrajectory(ds, part, LoopConfig{Policy: MinPred{}, MaxIterations: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrajectoryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy != tr.Policy || back.Iterations() != tr.Iterations() {
		t.Fatalf("round trip changed trajectory: %+v", back)
	}
	for i := range tr.CostRMSE {
		if back.CostRMSE[i] != tr.CostRMSE[i] {
			t.Fatal("metrics changed in round trip")
		}
	}
	if _, err := ReadTrajectoryJSON(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// errPolicy fails every selection — a stand-in for a worker whose task is
// broken from the start.
type errPolicy struct{}

func (errPolicy) Name() string { return "ErrPolicy" }
func (errPolicy) Select(*Candidates, *rand.Rand) (int, error) {
	return 0, errors.New("policy exploded")
}

// panicPolicy panics on selection — a stand-in for a worker hitting a bug.
type panicPolicy struct{}

func (panicPolicy) Name() string { return "PanicPolicy" }
func (panicPolicy) Select(*Candidates, *rand.Rand) (int, error) {
	panic("selection bug")
}

// TestRunBatchIsolatesWorkerErrors: one broken spec must not discard the
// trajectories of its healthy siblings.
func TestRunBatchIsolatesWorkerErrors(t *testing.T) {
	ds := synthDataset(90, 61)
	grouped, err := RunBatch(ds, BatchConfig{
		Specs: []BatchSpec{
			{Policy: RandUniform{}, NInit: 5},
			{Policy: errPolicy{}, NInit: 5},
		},
		NTest:      30,
		Partitions: 2,
		Seed:       44,
		Template:   LoopConfig{MaxIterations: 5},
	})
	if err == nil {
		t.Fatal("broken spec reported no error")
	}
	good := grouped[BatchSpec{Policy: RandUniform{}, NInit: 5}.Key()]
	if len(good) != 2 {
		t.Fatalf("healthy spec kept %d trajectories, want 2", len(good))
	}
	if _, ok := grouped[BatchSpec{Policy: errPolicy{}, NInit: 5}.Key()]; ok {
		t.Fatal("failed tasks grouped as results")
	}
	if got := err.Error(); !strings.Contains(got, "ErrPolicy") || !strings.Contains(got, "policy exploded") {
		t.Fatalf("error does not identify the failing task: %v", got)
	}
}

// TestRunBatchRecoversWorkerPanic: a panicking worker becomes a per-task
// error, not a crashed process.
func TestRunBatchRecoversWorkerPanic(t *testing.T) {
	ds := synthDataset(90, 62)
	grouped, err := RunBatch(ds, BatchConfig{
		Specs: []BatchSpec{
			{Policy: RandUniform{}, NInit: 5},
			{Policy: panicPolicy{}, NInit: 5},
		},
		NTest:      30,
		Partitions: 1,
		Seed:       45,
		Template:   LoopConfig{MaxIterations: 5},
	})
	if err == nil {
		t.Fatal("panic swallowed silently")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "selection bug") {
		t.Fatalf("panic not surfaced in the error: %v", err)
	}
	if len(grouped[BatchSpec{Policy: RandUniform{}, NInit: 5}.Key()]) != 1 {
		t.Fatal("panic discarded the healthy sibling")
	}
}

// TestRunTrajectoryRejectsBadResponses pins the log-transform guard: a
// non-positive or non-finite response in the training pool is refused as a
// classified dataset.ErrBadResponse instead of feeding NaN to a surrogate.
func TestRunTrajectoryRejectsBadResponses(t *testing.T) {
	ds := synthDataset(80, 63)
	part := smallPartition(t, ds, 8, 30, 9)
	ds.Jobs[part.Active[0]].CostNH = math.NaN()
	if _, err := RunTrajectory(ds, part, LoopConfig{Policy: RandUniform{}, MaxIterations: 5}); !errors.Is(err, dataset.ErrBadResponse) {
		t.Fatalf("NaN cost not classified: %v", err)
	}
	if _, err := RunBatchTrajectory(ds, part, LoopConfig{Policy: RandUniform{}, MaxIterations: 5}, 2, BatchConstantLiar); !errors.Is(err, dataset.ErrBadResponse) {
		t.Fatalf("batch loop: NaN cost not classified: %v", err)
	}
	ds.Jobs[part.Active[0]].CostNH = 1
	ds.Jobs[part.Init[0]].MemMB = -3
	if _, err := RunTrajectory(ds, part, LoopConfig{Policy: RandUniform{}, MaxIterations: 5}); !errors.Is(err, dataset.ErrBadResponse) {
		t.Fatalf("negative memory not classified: %v", err)
	}
}
