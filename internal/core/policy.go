// Package core implements the paper's contribution: cost- and memory-aware
// active learning for computer experiments. An AL loop (Algorithm 1 in the
// paper) incrementally trains two Gaussian-process surrogates — one for job
// cost, one for peak memory — and a candidate-selection policy decides which
// experiment to run next. The five policies of §IV-B are provided:
// RandUniform, MaxSigma, MinPred, RandGoodness, and the memory-aware RGMA
// (Algorithm 2).
//
// Since PR 5 the execution core — the fit/score/select/feed loop, the
// policies, and the batch-selection strategies — lives in internal/engine,
// shared with the online campaign runner. core re-exports that API
// unchanged (type aliases below) and keeps the replay-facing conveniences:
// RunTrajectory/RunBatchTrajectory, the RunBatch study driver, and the
// curve aggregation helpers.
package core

import "alamr/internal/engine"

// Re-exported engine types: the selection layer.
type (
	// Candidates carries the model state a policy sees at one AL iteration.
	Candidates = engine.Candidates
	// Policy selects the next experiment from the candidate set.
	Policy = engine.Policy
	// RandUniform selects uniformly at random (the paper's baseline).
	RandUniform = engine.RandUniform
	// MaxSigma selects the candidate with the largest cost uncertainty.
	MaxSigma = engine.MaxSigma
	// MinPred greedily selects the cheapest predicted candidate.
	MinPred = engine.MinPred
	// RandGoodness samples proportionally to the cost goodness (§IV-B).
	RandGoodness = engine.RandGoodness
	// RGMA is RandGoodness with Memory Awareness (Algorithm 2).
	RGMA = engine.RGMA
	// ExpectedImprovement is the Bayesian-optimization baseline (§II-C).
	ExpectedImprovement = engine.ExpectedImprovement
)

// ErrAllExceedLimit is returned by memory-aware policies when every
// remaining candidate is predicted to violate the memory limit.
var ErrAllExceedLimit = engine.ErrAllExceedLimit
