package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/stats"
)

// PaperMemLimitMB computes the memory limit the paper's evaluation uses
// (see engine.PaperMemLimitMB).
func PaperMemLimitMB(ds *dataset.Dataset) float64 { return engine.PaperMemLimitMB(ds) }

// BatchSpec pairs a policy with an initial-partition size.
type BatchSpec struct {
	Policy Policy
	NInit  int
}

// Key identifies the spec in batch results.
func (s BatchSpec) Key() string { return fmt.Sprintf("%s/ninit=%d", s.Policy.Name(), s.NInit) }

// BatchConfig drives a family of AL trajectories: every spec runs on every
// random partition, in parallel (the Go analogue of the paper's
// multiprocessing batch mode).
type BatchConfig struct {
	Specs      []BatchSpec
	NTest      int // test partition size (default 200)
	Partitions int // random partitions per spec (default 10)
	Workers    int // goroutines (default GOMAXPROCS)
	Seed       int64
	// Template provides the loop settings shared by all runs (memory limit,
	// iteration cap, kernel, ...); Policy and Seed are overridden per run.
	Template LoopConfig
}

func (c *BatchConfig) setDefaults() {
	if c.NTest <= 0 {
		c.NTest = 200
	}
	if c.Partitions <= 0 {
		c.Partitions = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// RunBatch executes every (spec, partition) combination on the engine's
// sweep runner and groups the trajectories by spec key. Partitions are
// shared across specs with the same NInit so policies are compared on
// identical data splits; all randomness is derived deterministically from
// cfg.Seed.
//
// Worker failures are isolated by the sweep: a task that errors (or panics)
// does not abort the batch or discard its siblings. All completed
// trajectories are returned grouped as usual, alongside an error joining
// every per-task failure — callers distinguish "all good" (nil error),
// "partial" (non-nil error, non-empty map), and "nothing" (non-nil error,
// empty map).
func RunBatch(ds *dataset.Dataset, cfg BatchConfig) (map[string][]*Trajectory, error) {
	cfg.setDefaults()
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("core: RunBatch needs at least one spec")
	}

	type task struct {
		spec BatchSpec
		part dataset.Partition
		seed int64
	}
	var tasks []task
	for pi := 0; pi < cfg.Partitions; pi++ {
		// One partition per (partition index, nInit): identical splits for
		// every policy at the same nInit.
		parts := make(map[int]dataset.Partition)
		for _, spec := range cfg.Specs {
			part, ok := parts[spec.NInit]
			if !ok {
				rng := rand.New(rand.NewSource(stats.SplitSeed(cfg.Seed, pi*1000+spec.NInit)))
				var err error
				part, err = dataset.Split(ds, spec.NInit, cfg.NTest, rng)
				if err != nil {
					return nil, err
				}
				parts[spec.NInit] = part
			}
			tasks = append(tasks, task{
				spec: spec,
				part: part,
				seed: stats.SplitSeed(cfg.Seed, 7919*pi+len(tasks)),
			})
		}
	}

	items := make([]engine.SweepItem, len(tasks))
	for i := range tasks {
		tk := tasks[i]
		items[i] = engine.SweepItem{
			ID: fmt.Sprintf("%d:%s", i, tk.spec.Key()),
			Run: func(scope *engine.CampaignObs) (any, error) {
				loopCfg := cfg.Template
				loopCfg.Policy = tk.spec.Policy
				loopCfg.Seed = tk.seed
				loopCfg.Campaign = scope
				return engine.RunReplay(ds, tk.part, loopCfg)
			},
		}
	}
	results, _ := engine.Sweep(engine.SweepConfig{Workers: cfg.Workers, Items: items})

	var failures []error
	grouped := make(map[string][]*Trajectory)
	for i, r := range results {
		if r.Err != nil {
			failures = append(failures, fmt.Errorf("core: batch task %d (%s): %w", i, tasks[i].spec.Key(), r.Err))
			continue
		}
		grouped[tasks[i].spec.Key()] = append(grouped[tasks[i].spec.Key()], r.Value.(*Trajectory))
	}
	return grouped, errors.Join(failures...)
}

// CurveSet extracts one named per-iteration series from each trajectory.
func CurveSet(trs []*Trajectory, metric string) ([][]float64, error) {
	out := make([][]float64, len(trs))
	for i, tr := range trs {
		switch metric {
		case "cost-rmse":
			out[i] = tr.CostRMSE
		case "mem-rmse":
			out[i] = tr.MemRMSE
		case "cum-cost":
			out[i] = tr.CumCost
		case "cum-regret":
			out[i] = tr.CumRegret
		default:
			return nil, fmt.Errorf("core: unknown metric %q", metric)
		}
	}
	return out, nil
}

// AggregateCurves computes the pointwise median and IQR band of a metric
// across trajectories.
func AggregateCurves(trs []*Trajectory, metric string) (stats.Band, error) {
	series, err := CurveSet(trs, metric)
	if err != nil {
		return stats.Band{}, err
	}
	return stats.AggregateBand(series, 0.25, 0.75), nil
}

// ReadTrajectoryJSON parses a trajectory written by Trajectory.WriteJSON.
func ReadTrajectoryJSON(r io.Reader) (*Trajectory, error) {
	return engine.ReadTrajectoryJSON(r)
}
