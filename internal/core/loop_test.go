package core

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/dataset"
	"alamr/internal/stats"
)

// synthDataset builds a synthetic but structured dataset: responses are
// smooth functions of the grid features plus mild log-normal noise, so GPR
// can actually learn them.
func synthDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	combos := dataset.AllCombos()
	ds := &dataset.Dataset{}
	for i := 0; i < n; i++ {
		c := combos[rng.Intn(len(combos))]
		noise := math.Exp(rng.NormFloat64() * 0.05)
		wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
			(1 + 2*c.R0) * (1 / (0.2 + c.RhoIn)) * noise
		cost := wall * float64(c.P) / 360 // compressed scale for the test
		mem := 0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) /
			math.Sqrt(float64(c.P)) * math.Exp(rng.NormFloat64()*0.02)
		ds.Jobs = append(ds.Jobs, dataset.Job{
			P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
			WallSec: wall, CostNH: cost, MemMB: mem,
		})
	}
	return ds
}

func smallPartition(t *testing.T, ds *dataset.Dataset, nInit, nTest int, seed int64) dataset.Partition {
	t.Helper()
	part, err := dataset.Split(ds, nInit, nTest, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func runSmall(t *testing.T, policy Policy, maxIter int, memLimit float64) *Trajectory {
	t.Helper()
	ds := synthDataset(120, 42)
	part := smallPartition(t, ds, 10, 40, 7)
	tr, err := RunTrajectory(ds, part, LoopConfig{
		Policy:        policy,
		MaxIterations: maxIter,
		MemLimitMB:    memLimit,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunTrajectoryBookkeeping(t *testing.T) {
	tr := runSmall(t, RandUniform{}, 25, 0)
	if tr.Iterations() != 25 {
		t.Fatalf("iterations = %d want 25", tr.Iterations())
	}
	if tr.Reason != StopMaxIterations {
		t.Fatalf("reason = %s", tr.Reason)
	}
	// Uniqueness of selections.
	seen := map[int]bool{}
	for _, idx := range tr.Selected {
		if seen[idx] {
			t.Fatalf("index %d selected twice", idx)
		}
		seen[idx] = true
	}
	// Metric lengths all match.
	n := tr.Iterations()
	for name, l := range map[string]int{
		"CostRMSE": len(tr.CostRMSE), "MemRMSE": len(tr.MemRMSE),
		"CumCost": len(tr.CumCost), "CumRegret": len(tr.CumRegret),
		"Violation": len(tr.Violation), "SelectedCost": len(tr.SelectedCost),
	} {
		if l != n {
			t.Fatalf("%s has length %d want %d", name, l, n)
		}
	}
	// CC monotone; CR monotone and bounded by CC.
	for i := 0; i < n; i++ {
		if i > 0 && tr.CumCost[i] < tr.CumCost[i-1] {
			t.Fatal("CumCost not monotone")
		}
		if i > 0 && tr.CumRegret[i] < tr.CumRegret[i-1] {
			t.Fatal("CumRegret not monotone")
		}
		if tr.CumRegret[i] > tr.CumCost[i]+1e-12 {
			t.Fatal("CumRegret exceeds CumCost")
		}
	}
	if len(tr.FinalHyperCost) == 0 || len(tr.FinalHyperMem) == 0 {
		t.Fatal("final hyperparameters not recorded")
	}
}

func TestRunTrajectoryNoLimitNoRegret(t *testing.T) {
	tr := runSmall(t, RandUniform{}, 15, 0)
	for i, v := range tr.Violation {
		if v || tr.CumRegret[i] != 0 {
			t.Fatal("regret recorded without a memory limit")
		}
	}
}

func TestLearningReducesRMSE(t *testing.T) {
	tr := runSmall(t, MaxSigma{}, 60, 0)
	last := tr.CostRMSE[len(tr.CostRMSE)-1]
	if last >= tr.InitCostRMSE {
		t.Fatalf("cost RMSE did not improve: init %g final %g", tr.InitCostRMSE, last)
	}
}

func TestMinPredSelectsCheaperThanUniform(t *testing.T) {
	greedy := runSmall(t, MinPred{}, 30, 0)
	uniform := runSmall(t, RandUniform{}, 30, 0)
	if greedy.CumCost[29] >= uniform.CumCost[29] {
		t.Fatalf("MinPred CC %g not below RandUniform CC %g",
			greedy.CumCost[29], uniform.CumCost[29])
	}
}

func TestRGMAAvoidsViolations(t *testing.T) {
	ds := synthDataset(150, 43)
	limit := stats.Quantile(ds.Mem(nil), 0.7)
	part := smallPartition(t, ds, 25, 40, 8)
	run := func(p Policy) int {
		tr, err := RunTrajectory(ds, part, LoopConfig{
			Policy: p, MaxIterations: 40, MemLimitMB: limit, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range tr.Violation {
			if v {
				n++
			}
		}
		return n
	}
	vRGMA := run(RGMA{})
	vUniform := run(RandUniform{})
	if vRGMA >= vUniform {
		t.Fatalf("RGMA violations %d not below RandUniform %d", vRGMA, vUniform)
	}
}

func TestRGMAEarlyTermination(t *testing.T) {
	ds := synthDataset(100, 44)
	// Limit below every sample: after the init fit, all candidates are
	// predicted to exceed.
	limit := stats.Min(ds.Mem(nil)) * 0.5
	part := smallPartition(t, ds, 15, 30, 9)
	tr, err := RunTrajectory(ds, part, LoopConfig{
		Policy: RGMA{}, MemLimitMB: limit, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reason != StopMemoryLimit {
		t.Fatalf("reason = %s want %s", tr.Reason, StopMemoryLimit)
	}
	if tr.Iterations() > 5 {
		t.Fatalf("expected near-immediate stop, ran %d iterations", tr.Iterations())
	}
}

func TestStableStopping(t *testing.T) {
	ds := synthDataset(120, 45)
	part := smallPartition(t, ds, 30, 40, 10)
	tr, err := RunTrajectory(ds, part, LoopConfig{
		Policy: MaxSigma{},
		Seed:   21,
		Stable: &StableStopConfig{Window: 3, Tol: 0.5}, // generous: triggers fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reason != StopStable {
		t.Fatalf("reason = %s want %s", tr.Reason, StopStable)
	}
	if tr.Iterations() >= len(part.Active) {
		t.Fatal("stable stop did not shorten the run")
	}
}

func TestPoolExhaustion(t *testing.T) {
	ds := synthDataset(60, 46)
	part := smallPartition(t, ds, 10, 30, 11) // 20 active
	tr, err := RunTrajectory(ds, part, LoopConfig{Policy: RandUniform{}, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reason != StopPoolExhausted {
		t.Fatalf("reason = %s", tr.Reason)
	}
	if tr.Iterations() != 20 {
		t.Fatalf("iterations = %d want 20", tr.Iterations())
	}
}

func TestRunTrajectoryValidation(t *testing.T) {
	ds := synthDataset(50, 47)
	part := smallPartition(t, ds, 5, 20, 12)
	if _, err := RunTrajectory(ds, part, LoopConfig{}); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := part
	bad.Init = nil
	if _, err := RunTrajectory(ds, bad, LoopConfig{Policy: RandUniform{}}); err == nil {
		t.Fatal("broken partition accepted")
	}
}

func TestTrajectoryDeterminism(t *testing.T) {
	ds := synthDataset(100, 48)
	part := smallPartition(t, ds, 10, 30, 13)
	run := func() *Trajectory {
		tr, err := RunTrajectory(ds, part, LoopConfig{
			Policy: RandGoodness{}, MaxIterations: 20, Seed: 29,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatalf("selection diverged at %d", i)
		}
	}
	for i := range a.CostRMSE {
		if a.CostRMSE[i] != b.CostRMSE[i] {
			t.Fatalf("metrics diverged at %d", i)
		}
	}
}

func TestLog2PTransformRuns(t *testing.T) {
	ds := synthDataset(80, 49)
	part := smallPartition(t, ds, 10, 30, 14)
	tr, err := RunTrajectory(ds, part, LoopConfig{
		Policy: MinPred{}, MaxIterations: 10, Seed: 31, Log2P: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Iterations() != 10 {
		t.Fatalf("iterations = %d", tr.Iterations())
	}
}

func TestHyperoptEveryOneMatchesPaperAlgorithm(t *testing.T) {
	// HyperoptEvery=1 refits at every iteration (exactly Algorithm 1); the
	// run must still work and produce valid metrics.
	ds := synthDataset(60, 50)
	part := smallPartition(t, ds, 8, 20, 15)
	tr, err := RunTrajectory(ds, part, LoopConfig{
		Policy: MaxSigma{}, MaxIterations: 8, HyperoptEvery: 1, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.CostRMSE {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("invalid RMSE %g", v)
		}
	}
}

func TestRunBatchGroupingAndDeterminism(t *testing.T) {
	ds := synthDataset(90, 51)
	cfg := BatchConfig{
		Specs: []BatchSpec{
			{Policy: RandUniform{}, NInit: 5},
			{Policy: MinPred{}, NInit: 5},
		},
		NTest:      30,
		Partitions: 2,
		Seed:       37,
		Template:   LoopConfig{MaxIterations: 8},
	}
	a, err := RunBatch(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 {
		t.Fatalf("groups = %d want 2", len(a))
	}
	for key, trs := range a {
		if len(trs) != 2 {
			t.Fatalf("%s has %d trajectories want 2", key, len(trs))
		}
	}
	b, err := RunBatch(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for key := range a {
		for i := range a[key] {
			if a[key][i].CumCost[0] != b[key][i].CumCost[0] {
				t.Fatalf("batch non-deterministic for %s[%d]", key, i)
			}
		}
	}
}

func TestRunBatchSharedPartitions(t *testing.T) {
	ds := synthDataset(90, 52)
	got, err := RunBatch(ds, BatchConfig{
		Specs: []BatchSpec{
			{Policy: RandUniform{}, NInit: 5},
			{Policy: MaxSigma{}, NInit: 5},
		},
		NTest:      30,
		Partitions: 1,
		Seed:       41,
		Template:   LoopConfig{MaxIterations: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same nInit → same partition → identical initial RMSE for both
	// policies.
	var inits []float64
	for _, trs := range got {
		inits = append(inits, trs[0].InitCostRMSE)
	}
	if len(inits) != 2 || inits[0] != inits[1] {
		t.Fatalf("policies did not share partitions: %v", inits)
	}
}

func TestRunBatchValidation(t *testing.T) {
	ds := synthDataset(50, 53)
	if _, err := RunBatch(ds, BatchConfig{}); err == nil {
		t.Fatal("empty specs accepted")
	}
}

func TestCurveSetAndAggregate(t *testing.T) {
	trs := []*Trajectory{
		{CostRMSE: []float64{3, 2, 1}, CumCost: []float64{1, 2, 3}, CumRegret: []float64{0, 0, 1}, MemRMSE: []float64{1, 1, 1}},
		{CostRMSE: []float64{4, 3, 2}, CumCost: []float64{2, 3, 4}, CumRegret: []float64{0, 1, 1}, MemRMSE: []float64{2, 2, 2}},
	}
	for _, metric := range []string{"cost-rmse", "mem-rmse", "cum-cost", "cum-regret"} {
		set, err := CurveSet(trs, metric)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != 2 || len(set[0]) != 3 {
			t.Fatalf("%s shape wrong", metric)
		}
	}
	if _, err := CurveSet(trs, "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
	band, err := AggregateCurves(trs, "cost-rmse")
	if err != nil {
		t.Fatal(err)
	}
	if band.Mid[0] != 3.5 {
		t.Fatalf("median = %g want 3.5", band.Mid[0])
	}
}

func TestPaperMemLimit(t *testing.T) {
	ds := synthDataset(200, 54)
	l := PaperMemLimitMB(ds)
	mx := stats.Max(ds.Mem(nil))
	if l <= 0 || l >= mx {
		t.Fatalf("limit %g outside (0, %g)", l, mx)
	}
	// The bytes^0.95 rule lands in the upper half of the range for MB-scale
	// data.
	if l < mx*0.2 {
		t.Fatalf("limit %g suspiciously low vs max %g", l, mx)
	}
}
