package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func cands(muC, sigC, muM, sigM []float64, limitLog float64) *Candidates {
	return &Candidates{
		MuCost: muC, SigmaCost: sigC, MuMem: muM, SigmaMem: sigM,
		MemLimitLog: limitLog,
	}
}

func flat(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestPolicyNames(t *testing.T) {
	for name, p := range map[string]Policy{
		"RandUniform":  RandUniform{},
		"MaxSigma":     MaxSigma{},
		"MinPred":      MinPred{},
		"RandGoodness": RandGoodness{},
		"RGMA":         RGMA{},
	} {
		if p.Name() != name {
			t.Fatalf("Name() = %q want %q", p.Name(), name)
		}
	}
}

func TestValidateEmptyAndInconsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	empty := cands(nil, nil, nil, nil, math.Inf(1))
	if _, err := (RandUniform{}).Select(empty, rng); err == nil {
		t.Fatal("empty candidates accepted")
	}
	bad := cands([]float64{1, 2}, []float64{1}, []float64{1, 2}, []float64{1, 2}, math.Inf(1))
	if _, err := (MaxSigma{}).Select(bad, rng); err == nil {
		t.Fatal("inconsistent candidates accepted")
	}
}

func TestMaxSigmaPicksLargestUncertainty(t *testing.T) {
	c := cands([]float64{0, 0, 0}, []float64{0.1, 0.7, 0.3}, flat(3, 0), flat(3, 0), math.Inf(1))
	got, err := (MaxSigma{}).Select(c, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MaxSigma picked %d want 1", got)
	}
}

func TestMinPredPicksCheapest(t *testing.T) {
	// Equal sigmas: argmax(σ−μ) = argmin μ.
	c := cands([]float64{2, -1, 0.5}, flat(3, 0.1), flat(3, 0), flat(3, 0), math.Inf(1))
	got, err := (MinPred{}).Select(c, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MinPred picked %d want 1", got)
	}
}

func TestMinPredDominatedByMu(t *testing.T) {
	// Even a large uncertainty cannot overcome a big cost difference — the
	// degeneracy the paper names the policy after.
	c := cands([]float64{3, 0}, []float64{0.9, 0.05}, flat(2, 0), flat(2, 0), math.Inf(1))
	got, _ := (MinPred{}).Select(c, rand.New(rand.NewSource(4)))
	if got != 1 {
		t.Fatalf("MinPred picked %d want 1", got)
	}
}

func TestRandUniformCoversAll(t *testing.T) {
	c := cands(flat(4, 0), flat(4, 0), flat(4, 0), flat(4, 0), math.Inf(1))
	rng := rand.New(rand.NewSource(5))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		got, err := (RandUniform{}).Select(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[got] = true
	}
	if len(seen) != 4 {
		t.Fatalf("RandUniform covered %d of 4", len(seen))
	}
}

func TestRandGoodnessPrefersCheap(t *testing.T) {
	// Candidate 0 is 2 decades cheaper: goodness ratio 100:1.
	c := cands([]float64{-1, 1}, flat(2, 0.1), flat(2, 0), flat(2, 0), math.Inf(1))
	rng := rand.New(rand.NewSource(6))
	counts := [2]int{}
	for i := 0; i < 5000; i++ {
		got, err := (RandGoodness{}).Select(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[got]++
	}
	frac := float64(counts[0]) / 5000
	if math.Abs(frac-100.0/101.0) > 0.01 {
		t.Fatalf("cheap fraction = %g want ~0.99", frac)
	}
}

func TestRandGoodnessBaseSkew(t *testing.T) {
	// A higher base skews harder toward the cheap candidate.
	c := cands([]float64{0, 0.5}, flat(2, 0), flat(2, 0), flat(2, 0), math.Inf(1))
	sample := func(p Policy) float64 {
		rng := rand.New(rand.NewSource(7))
		n, hits := 4000, 0
		for i := 0; i < n; i++ {
			got, err := p.Select(c, rng)
			if err != nil {
				t.Fatal(err)
			}
			if got == 0 {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	f10 := sample(RandGoodness{Base: 10})
	f100 := sample(RandGoodness{Base: 100})
	if f100 <= f10 {
		t.Fatalf("base 100 not more skewed: %g vs %g", f100, f10)
	}
}

func TestGoodnessOverflowGuard(t *testing.T) {
	// Exponents far beyond float range must not produce Inf/NaN weights.
	c := cands([]float64{-400, 400}, flat(2, 0), flat(2, 0), flat(2, 0), math.Inf(1))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		got, err := (RandGoodness{}).Select(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("picked the 800-decade more expensive candidate")
		}
	}
}

func TestRGMAFiltersViolators(t *testing.T) {
	// Candidate 0 is cheapest but predicted over the limit.
	c := cands(
		[]float64{-3, 0, 0.2},
		flat(3, 0.1),
		[]float64{2, 0.5, 0.4}, // log10 MB predictions
		flat(3, 0.1),
		1.0, // limit 10 MB → log 1
	)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		got, err := (RGMA{}).Select(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			t.Fatal("RGMA selected a predicted violator")
		}
	}
}

func TestRGMAAllExceed(t *testing.T) {
	c := cands(flat(2, 0), flat(2, 0.1), []float64{3, 4}, flat(2, 0.1), 1.0)
	if _, err := (RGMA{}).Select(c, rand.New(rand.NewSource(10))); !errors.Is(err, ErrAllExceedLimit) {
		t.Fatalf("err = %v want ErrAllExceedLimit", err)
	}
}

func TestRGMANoLimitBehavesLikeRandGoodness(t *testing.T) {
	c := cands([]float64{-1, 1}, flat(2, 0.1), flat(2, 0), flat(2, 0), math.Inf(1))
	a := rand.New(rand.NewSource(11))
	b := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		ga, err := (RGMA{}).Select(c, a)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := (RandGoodness{}).Select(c, b)
		if err != nil {
			t.Fatal(err)
		}
		if ga != gb {
			t.Fatalf("RGMA without limit diverged from RandGoodness at %d", i)
		}
	}
}

func TestSatisfying(t *testing.T) {
	c := cands(flat(3, 0), flat(3, 0), []float64{0.5, 1.5, 0.9}, flat(3, 0), 1.0)
	s := c.Satisfying()
	if len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Fatalf("Satisfying = %v", s)
	}
}

// Property: every policy returns an index within range for arbitrary valid
// candidate sets.
func TestPoliciesInRangeProperty(t *testing.T) {
	policies := []Policy{RandUniform{}, MaxSigma{}, MinPred{}, RandGoodness{}, RGMA{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		muC := make([]float64, n)
		sigC := make([]float64, n)
		muM := make([]float64, n)
		sigM := make([]float64, n)
		for i := 0; i < n; i++ {
			muC[i] = rng.NormFloat64() * 2
			sigC[i] = rng.Float64()
			muM[i] = rng.NormFloat64()
			sigM[i] = rng.Float64()
		}
		c := cands(muC, sigC, muM, sigM, 0.5)
		for _, p := range policies {
			got, err := p.Select(c, rng)
			if err != nil {
				if errors.Is(err, ErrAllExceedLimit) {
					continue
				}
				return false
			}
			if got < 0 || got >= n {
				return false
			}
			if p.Name() == "RGMA" && muM[got] >= 0.5 {
				return false // RGMA must never pick a predicted violator
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedImprovementPrefersLowMeanHighSigma(t *testing.T) {
	// Candidate 1 has the lowest mean; candidate 2 matches the incumbent
	// mean but with large uncertainty. EI must pick one of those, never the
	// clearly-worse candidate 0.
	c := cands(
		[]float64{2.0, 0.0, 0.1},
		[]float64{0.01, 0.01, 0.8},
		flat(3, 0), flat(3, 0), math.Inf(1),
	)
	rng := rand.New(rand.NewSource(20))
	got, err := (ExpectedImprovement{}).Select(c, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("EI picked the dominated candidate")
	}
}

func TestExpectedImprovementUncertaintyBreaksTies(t *testing.T) {
	// Equal means: the higher-σ candidate has higher EI.
	c := cands(
		[]float64{0, 0},
		[]float64{0.05, 0.5},
		flat(2, 0), flat(2, 0), math.Inf(1),
	)
	got, err := (ExpectedImprovement{}).Select(c, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("EI picked %d want 1", got)
	}
}

func TestBOLocalizesALGeneralizes(t *testing.T) {
	// The §II-C contrast: on the same partition and budget, EI concentrates
	// its samples near the cheap corner (low selection diversity) while the
	// AL policy keeps learning globally, ending with better test RMSE.
	ds := synthDataset(150, 70)
	part := smallPartition(t, ds, 15, 40, 21)
	run := func(p Policy) *Trajectory {
		tr, err := RunTrajectory(ds, part, LoopConfig{Policy: p, MaxIterations: 40, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	bo := run(ExpectedImprovement{})
	al := run(MaxSigma{})
	if al.CostRMSE[39] >= bo.CostRMSE[39] {
		t.Fatalf("AL RMSE %g not better than BO %g — the paper's §II-C contrast failed",
			al.CostRMSE[39], bo.CostRMSE[39])
	}
}
