package core

import (
	"alamr/internal/gp"
	"alamr/internal/mat"
)

// poolScorer produces each iteration's Candidates over the remaining pool.
// When both surrogates are plain *gp.GP it scores through a pair of
// incremental gp.ScoringCache instances — O(m·n) per iteration instead of
// the O(m·n²) of predicting the whole pool from scratch — and falls back to
// direct Predict for other gp.Model implementations (treed, sparse) or when
// the caller forces the reference path (LoopConfig.DirectScoring).
//
// The scorer also owns the pool-order feature matrix: rows are removed in
// lockstep with the caller's index bookkeeping, so policies and batch
// selection keep seeing exactly the matrix the per-iteration rebuild used
// to produce.
type poolScorer struct {
	costModel, memModel gp.Model
	costCache, memCache *gp.ScoringCache
	x                   *mat.Dense
}

func newPoolScorer(costModel, memModel gp.Model, x *mat.Dense, direct bool) *poolScorer {
	s := &poolScorer{costModel: costModel, memModel: memModel, x: x}
	if direct {
		return s
	}
	gc, okCost := costModel.(*gp.GP)
	gm, okMem := memModel.(*gp.GP)
	if okCost && okMem {
		s.costCache = gp.NewScoringCache(gc, x)
		s.memCache = gp.NewScoringCache(gm, x)
	}
	return s
}

// candidates scores the live pool with both surrogates.
func (s *poolScorer) candidates(memLimitLog float64) *Candidates {
	var muC, sigC, muM, sigM []float64
	if s.costCache != nil {
		muC, sigC = s.costCache.Scores()
		muM, sigM = s.memCache.Scores()
	} else {
		muC, sigC = s.costModel.Predict(s.x)
		muM, sigM = s.memModel.Predict(s.x)
	}
	return &Candidates{
		X: s.x, MuCost: muC, SigmaCost: sigC, MuMem: muM, SigmaMem: sigM,
		MemLimitLog: memLimitLog,
	}
}

// row returns the feature row at pool position p. The view is invalidated
// by remove; callers must use it (or copy it) before removing.
func (s *poolScorer) row(p int) []float64 { return s.x.Row(p) }

// remove drops pool position p from the feature matrix and both caches,
// mirroring the caller's own order-preserving index delete.
func (s *poolScorer) remove(p int) {
	s.x = s.x.RemoveRow(p)
	if s.costCache != nil {
		s.costCache.Remove(p)
		s.memCache.Remove(p)
	}
}

// close detaches the caches so the surrogates stop maintaining them.
func (s *poolScorer) close() {
	if s.costCache != nil {
		s.costCache.Close()
		s.memCache.Close()
	}
}
