package core

import (
	"reflect"
	"testing"
)

// The acceptance contract of the incremental scoring engine: on fixed
// seeds, the cache-driven loop must make exactly the same policy selections
// (same RNG draws, same indices, same metrics) as the direct-Predict
// reference loop. reflect.DeepEqual on Trajectory compares every float64
// slice exactly; trajectories never carry NaN, so this is bitwise equality
// of the recorded run.
func TestCachedLoopMatchesDirectLoop(t *testing.T) {
	ds := synthDataset(140, 42)
	part := smallPartition(t, ds, 10, 40, 7)
	policies := []Policy{RandUniform{}, MaxSigma{}, RandGoodness{}, RGMA{}}
	for _, p := range policies {
		cfg := LoopConfig{
			Policy:        p,
			MaxIterations: 30,
			MemLimitMB:    0.08,
			HyperoptEvery: 7,
			Seed:          13,
		}
		cached, err := RunTrajectory(ds, part, cfg)
		if err != nil {
			t.Fatalf("%s: cached run: %v", p.Name(), err)
		}
		cfg.DirectScoring = true
		direct, err := RunTrajectory(ds, part, cfg)
		if err != nil {
			t.Fatalf("%s: direct run: %v", p.Name(), err)
		}
		if !reflect.DeepEqual(cached.Selected, direct.Selected) {
			t.Fatalf("%s: selections diverged\ncached: %v\ndirect: %v", p.Name(), cached.Selected, direct.Selected)
		}
		if !reflect.DeepEqual(cached, direct) {
			t.Fatalf("%s: trajectories diverged beyond selections\ncached: %+v\ndirect: %+v", p.Name(), cached, direct)
		}
	}
}

// Same contract for the q-batch loop, which additionally exercises the
// constant-liar batch strategies reading candidate feature rows from the
// scorer-maintained pool matrix and the descending-order batch removal.
func TestCachedBatchLoopMatchesDirectLoop(t *testing.T) {
	ds := synthDataset(140, 43)
	part := smallPartition(t, ds, 10, 40, 9)
	for _, strategy := range []BatchStrategy{BatchIndependent, BatchConstantLiar} {
		cfg := LoopConfig{
			Policy:        RandGoodness{},
			MaxIterations: 24,
			MemLimitMB:    0.08,
			HyperoptEvery: 8,
			Seed:          17,
		}
		cached, err := RunBatchTrajectory(ds, part, cfg, 3, strategy)
		if err != nil {
			t.Fatalf("%s: cached run: %v", strategy, err)
		}
		cfg.DirectScoring = true
		direct, err := RunBatchTrajectory(ds, part, cfg, 3, strategy)
		if err != nil {
			t.Fatalf("%s: direct run: %v", strategy, err)
		}
		if !reflect.DeepEqual(cached, direct) {
			t.Fatalf("%s: batch trajectories diverged\ncached: %+v\ndirect: %+v", strategy, cached, direct)
		}
	}
}

// The stable-predictions stopping path predicts on the held-out test set
// (never the pool); it must be unaffected by the scoring engine.
func TestCachedLoopStableStopMatchesDirect(t *testing.T) {
	ds := synthDataset(140, 44)
	part := smallPartition(t, ds, 12, 40, 11)
	cfg := LoopConfig{
		Policy:        MaxSigma{},
		MaxIterations: 40,
		Seed:          3,
		Stable:        &StableStopConfig{Window: 3, Tol: 0.02},
	}
	cached, err := RunTrajectory(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DirectScoring = true
	cfg.Stable = &StableStopConfig{Window: 3, Tol: 0.02}
	direct, err := RunTrajectory(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, direct) {
		t.Fatalf("stable-stop trajectories diverged\ncached: %+v\ndirect: %+v", cached, direct)
	}
}
