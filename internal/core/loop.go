package core

import (
	"alamr/internal/dataset"
	"alamr/internal/engine"
)

// Re-exported engine types: loop configuration and results.
type (
	// LoopConfig configures one active-learning trajectory (Algorithm 1).
	LoopConfig = engine.LoopConfig
	// StableStopConfig enables the stabilizing-predictions stop heuristic.
	StableStopConfig = engine.StableStopConfig
	// StopReason records why a trajectory ended.
	StopReason = engine.StopReason
	// Trajectory records everything the evaluation needs about one AL run.
	Trajectory = engine.Trajectory
)

// Stop reasons (see engine.StopReason).
const (
	StopPoolExhausted = engine.StopPoolExhausted
	StopMaxIterations = engine.StopMaxIterations
	StopMemoryLimit   = engine.StopMemoryLimit
	StopStable        = engine.StopStable
	StopBudget        = engine.StopBudget
	StopFault         = engine.StopFault
	StopCancelled     = engine.StopCancelled
)

// RunTrajectory executes Algorithm 1 on one partition of the dataset and
// returns the recorded trajectory. It is the replay-mode entry point of the
// unified engine loop (engine.RunReplay).
func RunTrajectory(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig) (*Trajectory, error) {
	return engine.RunReplay(ds, part, cfg)
}
