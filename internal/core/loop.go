package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/dataset"
	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
	"alamr/internal/obs"
	"alamr/internal/stats"
)

// LoopConfig configures one active-learning trajectory (Algorithm 1).
type LoopConfig struct {
	Policy Policy
	// Kernel is the covariance prototype for both surrogates (default
	// isotropic RBF with ℓ=0.5, σ_f=1 on the unit-cube features).
	Kernel kernel.Kernel
	// GP carries the surrogate configuration; zero value uses sensible
	// defaults (optimized noise starting at 0.1, normalized targets).
	GP gp.Config
	// MemLimitMB is the maximum allowed memory usage L_mem in MB; 0
	// disables memory awareness entirely. When set, regret is recorded
	// against this limit for every policy, and memory-aware policies filter
	// candidates by it.
	MemLimitMB float64
	// MaxIterations bounds the number of AL selections (0 = exhaust the
	// Active pool).
	MaxIterations int
	// HyperoptEvery re-optimizes hyperparameters every k-th iteration
	// (default 10); other iterations use the O(n²) incremental update. Set
	// to 1 to refit every iteration exactly as the paper's Algorithm 1.
	HyperoptEvery int
	// Seed drives the policy's randomness.
	Seed int64
	// Log2P selects the log2(p) feature transform (paper §V-D).
	Log2P bool
	// Stable optionally enables the stabilizing-predictions stopping
	// heuristic (paper §V-D, third discussion point).
	Stable *StableStopConfig
	// NewModel overrides the surrogate constructor (default: a plain GP
	// with Kernel and GP config). Use gp.NewTreed for the partitioned
	// local-model variant of the paper’s future work.
	NewModel func() gp.Model
	// DirectScoring disables the incremental posterior cache and re-scores
	// the remaining pool with full GP predictions every iteration — the
	// O(m·n²) reference path the cache is pinned against in the equivalence
	// tests. Non-*gp.GP surrogates always use this path.
	DirectScoring bool
}

// newModel builds one surrogate instance.
func (c *LoopConfig) newModel() gp.Model {
	if c.NewModel != nil {
		return c.NewModel()
	}
	return gp.New(c.Kernel, c.GP)
}

func (c *LoopConfig) setDefaults() {
	if c.Kernel == nil {
		c.Kernel = kernel.NewRBF(0.5, 1)
	}
	if c.GP.Noise == 0 {
		c.GP.Noise = 0.1
	}
	c.GP.NormalizeY = true
	if c.HyperoptEvery <= 0 {
		c.HyperoptEvery = 10
	}
}

// StableStopConfig stops the loop once predictions on the Test partition
// have stabilized: when the mean absolute change of consecutive predictions
// stays below Tol for Window consecutive iterations.
type StableStopConfig struct {
	Window int     // consecutive stable iterations required (default 5)
	Tol    float64 // mean |Δμ| threshold in log10 space (default 0.005)
}

func (s *StableStopConfig) setDefaults() {
	if s.Window <= 0 {
		s.Window = 5
	}
	if s.Tol <= 0 {
		s.Tol = 0.005
	}
}

// StopReason records why a trajectory ended.
type StopReason string

// Stop reasons.
const (
	StopPoolExhausted StopReason = "pool-exhausted"
	StopMaxIterations StopReason = "max-iterations"
	StopMemoryLimit   StopReason = "all-exceed-memory-limit"
	StopStable        StopReason = "stable-predictions"
	StopBudget        StopReason = "budget-exhausted"
	// StopFault ends a campaign that hit a fatal (unclassifiable) lab error
	// or spent a job's whole retry budget; partial results are returned
	// alongside the error.
	StopFault StopReason = "fatal-fault"
)

// Trajectory records everything the evaluation needs about one AL run: the
// selection order and the per-iteration metrics of §V-B.
type Trajectory struct {
	Policy string
	NInit  int
	Seed   int64

	// Selected holds dataset indices in selection order.
	Selected []int
	// SelectedCost/SelectedMem are the actual (non-log) responses of the
	// selected jobs, in order.
	SelectedCost []float64
	SelectedMem  []float64

	// Per-iteration metrics, recorded after the models absorb iteration i.
	CostRMSE  []float64 // non-log RMSE on the Test partition
	MemRMSE   []float64
	CumCost   []float64 // CC: running sum of selected actual costs
	CumRegret []float64 // CR: running sum of costs of limit-violating picks
	Violation []bool    // whether pick i violated the memory limit

	// InitCostRMSE / InitMemRMSE are the test errors after the initial fit,
	// before any AL selection.
	InitCostRMSE, InitMemRMSE float64

	Reason StopReason
	// FinalHyperCost / FinalHyperMem are the models' log-space
	// hyperparameters at the end of the run.
	FinalHyperCost, FinalHyperMem []float64
}

// Iterations returns the number of AL selections performed.
func (t *Trajectory) Iterations() int { return len(t.Selected) }

// checkLogPrecondition verifies every job a loop will log-transform (the
// Init seeds and the Active pool) carries strictly positive, finite
// responses. Rejecting up front turns a silent NaN in a surrogate's
// training set into a classified dataset.ErrBadResponse.
func checkLogPrecondition(ds *dataset.Dataset, part dataset.Partition) error {
	for _, idx := range [][]int{part.Init, part.Active} {
		if err := ds.CheckResponses(idx); err != nil {
			return fmt.Errorf("core: dataset fails the log-transform precondition: %w", err)
		}
	}
	return nil
}

// RunTrajectory executes Algorithm 1 on one partition of the dataset and
// returns the recorded trajectory.
func RunTrajectory(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig) (*Trajectory, error) {
	cfg.setDefaults()
	if cfg.Policy == nil {
		return nil, errors.New("core: LoopConfig.Policy is required")
	}
	if err := part.Validate(ds.Len()); err != nil {
		return nil, err
	}
	if len(part.Init) == 0 || len(part.Active) == 0 || len(part.Test) == 0 {
		return nil, errors.New("core: partition must have non-empty Init, Active, and Test")
	}
	if err := checkLogPrecondition(ds, part); err != nil {
		return nil, err
	}

	features := func(idx []int) *mat.Dense {
		if cfg.Log2P {
			return ds.FeaturesLog2P(idx)
		}
		return ds.Features(idx)
	}

	xInit := features(part.Init)
	xTest := features(part.Test)
	costTest := ds.Cost(part.Test)
	memTest := ds.Mem(part.Test)

	spFit := obs.SpanFit.Start()
	gpCost := cfg.newModel()
	if err := gpCost.Fit(xInit, ds.LogCost(part.Init)); err != nil {
		return nil, fmt.Errorf("core: initial cost fit: %w", err)
	}
	gpMem := cfg.newModel()
	if err := gpMem.Fit(xInit, ds.LogMem(part.Init)); err != nil {
		return nil, fmt.Errorf("core: initial memory fit: %w", err)
	}
	spFit.End()
	// Subsequent refits warm start from the previous optimum (Algorithm 1's
	// note); random restarts are only needed for the initial fit.
	gpCost.SetRestarts(0)
	gpMem.SetRestarts(0)

	tr := &Trajectory{
		Policy: cfg.Policy.Name(),
		NInit:  len(part.Init),
		Seed:   cfg.Seed,
	}
	tr.InitCostRMSE = nonLogRMSE(gpCost, xTest, costTest)
	tr.InitMemRMSE = nonLogRMSE(gpMem, xTest, memTest)

	remaining := append([]int(nil), part.Active...)
	rng := rand.New(rand.NewSource(stats.SplitSeed(cfg.Seed, 0)))

	maxIter := len(remaining)
	if cfg.MaxIterations > 0 && cfg.MaxIterations < maxIter {
		maxIter = cfg.MaxIterations
	}
	if cfg.Stable != nil {
		cfg.Stable.setDefaults()
	}
	var prevTestMu []float64
	stableRun := 0

	var cumCost, cumRegret float64
	memLimitRaw := math.Inf(1)
	memLimitLog := math.Inf(1)
	if cfg.MemLimitMB > 0 {
		memLimitRaw = cfg.MemLimitMB
		memLimitLog = math.Log10(cfg.MemLimitMB)
	}

	// The scorer owns the pool features for the whole run: candidates are
	// re-scored each iteration through the incremental posterior caches
	// (or direct Predict, see LoopConfig.DirectScoring) and rows leave the
	// matrix in lockstep with the index bookkeeping below.
	scorer := newPoolScorer(gpCost, gpMem, features(remaining), cfg.DirectScoring)
	defer scorer.close()

	tr.Reason = StopPoolExhausted
	for iter := 0; iter < maxIter; iter++ {
		spScore := obs.SpanScore.Start()
		cands := scorer.candidates(memLimitLog)
		spScore.End()
		spSelect := obs.SpanSelect.Start()
		pick, err := cfg.Policy.Select(cands, rng)
		spSelect.End()
		if err != nil {
			if errors.Is(err, ErrAllExceedLimit) {
				tr.Reason = StopMemoryLimit
				break
			}
			return nil, fmt.Errorf("core: policy %s at iteration %d: %w", cfg.Policy.Name(), iter, err)
		}
		if pick < 0 || pick >= len(remaining) {
			return nil, fmt.Errorf("core: policy %s returned out-of-range index %d of %d", cfg.Policy.Name(), pick, len(remaining))
		}

		spRun := obs.SpanRun.Start()
		dsIdx := remaining[pick]
		job := ds.Jobs[dsIdx]
		tr.Selected = append(tr.Selected, dsIdx)
		tr.SelectedCost = append(tr.SelectedCost, job.CostNH)
		tr.SelectedMem = append(tr.SelectedMem, job.MemMB)

		cumCost += job.CostNH
		violated := job.MemMB >= memLimitRaw
		if violated {
			cumRegret += job.CostNH
			obs.CampaignViolations.Inc()
		}
		tr.CumCost = append(tr.CumCost, cumCost)
		tr.CumRegret = append(tr.CumRegret, cumRegret)
		tr.Violation = append(tr.Violation, violated)
		spRun.End()
		obs.CampaignCumCost.Set(cumCost)
		obs.CampaignCumRegret.Set(cumRegret)
		if cfg.MemLimitMB > 0 {
			obs.CampaignHeadroom.Set(memLimitRaw - job.MemMB)
		}
		obs.JobCost.Observe(job.CostNH)
		obs.JobMem.Observe(job.MemMB)

		// Absorb the measurement into both models (Algorithm 1 lines 10-11):
		// periodic full refit with warm-started hyperparameters, incremental
		// rank-1 update otherwise. The row view must be consumed before
		// scorer.remove shifts the pool matrix; Append copies it.
		xNew := scorer.row(pick)
		logC := math.Log10(job.CostNH)
		logM := math.Log10(job.MemMB)
		if (iter+1)%cfg.HyperoptEvery == 0 {
			spHyper := obs.SpanHyperopt.Start()
			if err := appendAndRefit(gpCost, xNew, logC); err != nil {
				return nil, fmt.Errorf("core: cost refit at iteration %d: %w", iter, err)
			}
			if err := appendAndRefit(gpMem, xNew, logM); err != nil {
				return nil, fmt.Errorf("core: memory refit at iteration %d: %w", iter, err)
			}
			spHyper.End()
		} else {
			spFeed := obs.SpanFeed.Start()
			if err := gpCost.Append(xNew, logC); err != nil {
				return nil, fmt.Errorf("core: cost update at iteration %d: %w", iter, err)
			}
			if err := gpMem.Append(xNew, logM); err != nil {
				return nil, fmt.Errorf("core: memory update at iteration %d: %w", iter, err)
			}
			spFeed.End()
		}

		remaining = append(remaining[:pick], remaining[pick+1:]...)
		scorer.remove(pick)
		obs.LoopIterations.Inc()
		obs.PoolSize.Set(float64(len(remaining)))

		tr.CostRMSE = append(tr.CostRMSE, nonLogRMSE(gpCost, xTest, costTest))
		tr.MemRMSE = append(tr.MemRMSE, nonLogRMSE(gpMem, xTest, memTest))

		if cfg.Stable != nil {
			muTest, _ := gpCost.Predict(xTest)
			if prevTestMu != nil {
				if meanAbsDiff(muTest, prevTestMu) < cfg.Stable.Tol {
					stableRun++
				} else {
					stableRun = 0
				}
				if stableRun >= cfg.Stable.Window {
					prevTestMu = muTest
					tr.Reason = StopStable
					break
				}
			}
			prevTestMu = muTest
		}
	}
	if tr.Reason == StopPoolExhausted && len(remaining) > 0 {
		tr.Reason = StopMaxIterations
	}
	tr.FinalHyperCost = gpCost.Hyperparams()
	tr.FinalHyperMem = gpMem.Hyperparams()
	return tr, nil
}

func appendAndRefit(g gp.Model, x []float64, y float64) error {
	if err := g.Append(x, y); err != nil {
		return err
	}
	return g.Refit()
}

// nonLogRMSE evaluates the paper's error metric (eq. 10): predictions are
// exponentiated back to the raw response scale and compared with the
// unmodified test measurements.
func nonLogRMSE(g gp.Model, xTest *mat.Dense, actual []float64) float64 {
	mu, _ := g.Predict(xTest)
	pred := make([]float64, len(mu))
	for i, m := range mu {
		pred[i] = math.Pow(10, m)
	}
	return stats.RMSE(pred, actual)
}

func meanAbsDiff(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}
