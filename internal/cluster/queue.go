package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Queue is a minimal batch-system model: a pool of TotalNodes nodes served
// FIFO with EASY backfill (a later job may start early if it fits in the
// idle nodes without delaying the queue head). It answers the campaign-level
// question the paper's future work raises about batch-mode AL: selecting q
// simulations per round costs selection quality but lets the machine run
// them concurrently.
type Queue struct {
	TotalNodes int
}

// QueuedJob is one submission.
type QueuedJob struct {
	Nodes      int
	WallSec    float64
	SubmitTime float64 // seconds since campaign start
}

// Schedule places the jobs and returns per-job start/end times plus the
// makespan (time the last job finishes). Jobs are considered in submission
// order (FIFO); backfill may reorder starts but never delays an earlier
// job's start.
type Schedule struct {
	Start    []float64
	End      []float64
	Makespan float64
	// WaitSec is the total time jobs spent queued (start − submit).
	WaitSec float64
}

// Schedule simulates the queue.
func (q Queue) Schedule(jobs []QueuedJob) (Schedule, error) {
	if q.TotalNodes < 1 {
		return Schedule{}, fmt.Errorf("cluster: queue needs >= 1 node")
	}
	for i, j := range jobs {
		if j.Nodes < 1 || j.Nodes > q.TotalNodes {
			return Schedule{}, fmt.Errorf("cluster: job %d needs %d of %d nodes", i, j.Nodes, q.TotalNodes)
		}
		if j.WallSec <= 0 {
			return Schedule{}, fmt.Errorf("cluster: job %d has non-positive wall time", i)
		}
		if j.SubmitTime < 0 {
			return Schedule{}, fmt.Errorf("cluster: job %d has negative submit time", i)
		}
	}
	n := len(jobs)
	sched := Schedule{Start: make([]float64, n), End: make([]float64, n)}
	if n == 0 {
		return sched, nil
	}

	var active []runningJob
	free := q.TotalNodes
	now := 0.0
	started := make([]bool, n)
	remaining := n

	// order of consideration: FIFO by submit time (stable).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].SubmitTime < jobs[order[b]].SubmitTime })

	for remaining > 0 {
		// Release finished jobs at the current time.
		keep := active[:0]
		for _, r := range active {
			if r.end <= now+1e-12 {
				free += r.nodes
			} else {
				keep = append(keep, r)
			}
		}
		active = keep

		// Head of the FIFO among submitted-but-unstarted jobs.
		head := -1
		for _, i := range order {
			if !started[i] && jobs[i].SubmitTime <= now+1e-12 {
				head = i
				break
			}
		}

		progressed := false
		if head >= 0 && jobs[head].Nodes <= free {
			startJob(&sched, jobs, head, now, &free, &active, started)
			remaining--
			progressed = true
		} else if head >= 0 {
			// Backfill: the head waits for nodes; compute its earliest start
			// (shadow time) and start any later submitted job that fits in
			// the current idle nodes AND finishes before the shadow time.
			shadow := shadowTime(q.TotalNodes, active, free, jobs[head].Nodes)
			for _, i := range order {
				if started[i] || i == head || jobs[i].SubmitTime > now+1e-12 {
					continue
				}
				if jobs[i].Nodes <= free && now+jobs[i].WallSec <= shadow+1e-9 {
					startJob(&sched, jobs, i, now, &free, &active, started)
					remaining--
					progressed = true
					break
				}
			}
		}
		if progressed {
			continue
		}

		// Advance time to the next event: a job completion or a submission.
		next := math.Inf(1)
		for _, r := range active {
			if r.end < next {
				next = r.end
			}
		}
		for _, i := range order {
			if !started[i] && jobs[i].SubmitTime > now && jobs[i].SubmitTime < next {
				next = jobs[i].SubmitTime
			}
		}
		if math.IsInf(next, 1) {
			return Schedule{}, fmt.Errorf("cluster: scheduler deadlock with %d jobs pending", remaining)
		}
		now = next
	}

	for i := range jobs {
		if sched.End[i] > sched.Makespan {
			sched.Makespan = sched.End[i]
		}
		sched.WaitSec += sched.Start[i] - jobs[i].SubmitTime
	}
	return sched, nil
}

// runningJob tracks one executing job's end time and node count.
type runningJob struct {
	end   float64
	nodes int
}

func startJob(s *Schedule, jobs []QueuedJob, i int, now float64, free *int, active *[]runningJob, started []bool) {
	s.Start[i] = now
	s.End[i] = now + jobs[i].WallSec
	*free -= jobs[i].Nodes
	*active = append(*active, runningJob{end: s.End[i], nodes: jobs[i].Nodes})
	started[i] = true
}

// shadowTime computes the earliest time the queue head (needing `need`
// nodes) can start, given the currently running jobs.
func shadowTime(total int, active []runningJob, free, need int) float64 {
	if need <= free {
		return 0
	}
	ends := append([]runningJob(nil), active...)
	sort.Slice(ends, func(a, b int) bool { return ends[a].end < ends[b].end })
	f := free
	for _, r := range ends {
		f += r.nodes
		if f >= need {
			return r.end
		}
	}
	return math.Inf(1)
}
