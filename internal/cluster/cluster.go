// Package cluster models the supercomputer the paper ran on — Edison at
// NERSC, a Cray XC30 with two-socket 12-core Ivy Bridge nodes and an Aries
// dragonfly interconnect — at the fidelity needed to turn the AMR emulator's
// machine-independent work counters into the accounting records SLURM
// produced for the original dataset: wall-clock time, job cost in
// node-hours, and peak per-process resident set size (MaxRSS).
//
// The model is deliberately simple and documented: compute time from a
// per-core cell-update rate with a load-imbalance factor from the patch
// distribution, communication from an α–β (latency–bandwidth) model of ghost
// exchanges and per-step collectives, memory from per-rank patch buffers,
// and run-to-run machine variability from seeded log-normal noise (the
// paper's 75 repeated measurements capture exactly this effect).
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/amr"
)

// Machine describes the modeled system.
type Machine struct {
	Name         string
	CoresPerNode int
	// CellRate is the per-core cell-update rate (updates/sec) for the
	// finite-volume kernel.
	CellRate float64
	// WorkAmplification scales the emulated work to the paper's full-length
	// simulations: the emulator integrates a shortened physical window, the
	// original campaign ran the shock across the whole domain.
	WorkAmplification float64
	// Alpha is the per-message latency (seconds); Beta the inverse
	// bandwidth (seconds per byte) of the interconnect.
	Alpha, Beta float64
	// StartupSec covers MPI initialization, executable load, and initial
	// I/O — the floor every job pays regardless of size.
	StartupSec float64
	// BaseRSSBytes is the per-rank footprint of the solver before any patch
	// is allocated.
	BaseRSSBytes float64
	// PatchOverheadBytes is the per-patch metadata footprint (quadrant
	// bookkeeping, neighbor tables).
	PatchOverheadBytes float64
	// NoiseSigma is the standard deviation of the log-normal wall-clock
	// noise modeling machine variability.
	NoiseSigma float64
	// MemNoiseSigma is the (smaller) log-normal noise on MaxRSS.
	MemNoiseSigma float64
}

// Edison returns the machine model for NERSC Edison (Cray XC30): 24 cores
// per node at 2.4 GHz, Aries dragonfly interconnect. Rates are calibrated so
// the regenerated campaign spans the same cost and memory ranges as the
// paper's Table I.
func Edison() Machine {
	return Machine{
		Name:               "edison",
		CoresPerNode:       24,
		CellRate:           2.0e6,
		WorkAmplification:  32,
		Alpha:              2.0e-6,
		Beta:               1.0 / 8.0e9,
		StartupSec:         1.0,
		BaseRSSBytes:       16 << 10,
		PatchOverheadBytes: 2 << 10,
		NoiseSigma:         0.06,
		MemNoiseSigma:      0.015,
	}
}

// JobSpec describes one batch job: an emulated AMR workload placed on a node
// count.
type JobSpec struct {
	Nodes int
	Mx    int
	Stats amr.EmulationStats
}

// Accounting is the SLURM-style record for a completed job.
type Accounting struct {
	WallClockSec  float64
	CostNodeHours float64 // wall-clock × nodes / 3600, the paper's cost response
	MaxRSSBytes   float64 // peak per-process resident set size
	Ranks         int
	ComputeSec    float64
	CommSec       float64
}

// PatchBytes returns the memory footprint of one patch at the given size:
// interior+ghost cells, four conserved fields, double precision, with the
// solver's working set (double buffer, integrator stage storage, and flux
// work arrays — six field-sized arrays in total, matching a ForestCLAW-style
// patch).
func PatchBytes(mx int) float64 {
	w := float64(mx + 2*amr.NG)
	return w * w * 4 * 8 * 6
}

// Simulate produces the accounting record for a job. rng supplies the
// machine-variability noise; pass a deterministic source for reproducible
// campaigns, or nil for a noise-free record.
func (m Machine) Simulate(spec JobSpec, rng *rand.Rand) (Accounting, error) {
	if spec.Nodes < 1 {
		return Accounting{}, fmt.Errorf("cluster: job needs >= 1 node, got %d", spec.Nodes)
	}
	if spec.Mx < 4 {
		return Accounting{}, fmt.Errorf("cluster: invalid mx %d", spec.Mx)
	}
	st := spec.Stats
	if st.CellUpdates < 0 || st.PeakPatches < 0 {
		return Accounting{}, fmt.Errorf("cluster: negative work counters")
	}
	ranks := spec.Nodes * m.CoresPerNode

	// --- Compute time -----------------------------------------------------
	// Patches are the unit of distribution; parallelism saturates at the
	// number of concurrently existing patches, and the discrete patch count
	// per rank produces load imbalance.
	meanPatches := math.Max(st.MeanPatches, 1)
	patchesPerRank := math.Ceil(meanPatches / float64(ranks))
	imbalance := patchesPerRank * float64(ranks) / meanPatches // >= 1
	if imbalance > float64(ranks) {
		imbalance = float64(ranks)
	}
	work := st.CellUpdates * m.WorkAmplification
	computeSec := work / (m.CellRate * float64(ranks)) * imbalance

	// --- Communication time ----------------------------------------------
	// Ghost exchange: each resident patch sends/receives four face messages
	// per step; message size is one face strip.
	steps := st.Steps * m.WorkAmplification
	faceBytes := float64(spec.Mx+2*amr.NG) * float64(amr.NG) * 4 * 8
	msgsPerStep := 4 * patchesPerRank
	ghostSec := steps * (msgsPerStep*m.Alpha + msgsPerStep*faceBytes*m.Beta)
	// Per-step collectives (CFL allreduce) plus regrid collectives scale
	// with log2(ranks).
	logRanks := math.Log2(float64(ranks)) + 1
	collSec := (steps + st.Regrids*m.WorkAmplification*4) * m.Alpha * logRanks
	commSec := ghostSec + collSec

	wall := m.StartupSec + computeSec + commSec
	if rng != nil && m.NoiseSigma > 0 {
		wall *= math.Exp(rng.NormFloat64() * m.NoiseSigma)
	}

	// --- Memory -----------------------------------------------------------
	// Peak patches per rank dictate MaxRSS; the distribution of peak-time
	// patches follows the same ceil-based imbalance as compute.
	peakPerRank := math.Ceil(float64(maxInt(st.PeakPatches, 1)) / float64(ranks))
	rss := m.BaseRSSBytes + peakPerRank*(PatchBytes(spec.Mx)+m.PatchOverheadBytes)
	if rng != nil && m.MemNoiseSigma > 0 {
		rss *= math.Exp(rng.NormFloat64() * m.MemNoiseSigma)
	}

	return Accounting{
		WallClockSec:  wall,
		CostNodeHours: wall * float64(spec.Nodes) / 3600,
		MaxRSSBytes:   rss,
		Ranks:         ranks,
		ComputeSec:    computeSec,
		CommSec:       commSec,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
