package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"alamr/internal/amr"
)

func workload(cells float64, patches int) amr.EmulationStats {
	return amr.EmulationStats{
		CellUpdates: cells,
		Steps:       cells / float64(patches) / 64,
		GhostCells:  cells / 10,
		Regrids:     cells / 1e6,
		PeakPatches: patches,
		MeanPatches: float64(patches) * 0.8,
	}
}

func TestSimulateValidation(t *testing.T) {
	m := Edison()
	if _, err := m.Simulate(JobSpec{Nodes: 0, Mx: 8}, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := m.Simulate(JobSpec{Nodes: 1, Mx: 1}, nil); err == nil {
		t.Fatal("tiny mx accepted")
	}
	if _, err := m.Simulate(JobSpec{Nodes: 1, Mx: 8, Stats: amr.EmulationStats{CellUpdates: -1}}, nil); err == nil {
		t.Fatal("negative work accepted")
	}
}

func TestCostIsWallTimesNodes(t *testing.T) {
	m := Edison()
	acc, err := m.Simulate(JobSpec{Nodes: 8, Mx: 16, Stats: workload(1e8, 100)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := acc.WallClockSec * 8 / 3600
	if math.Abs(acc.CostNodeHours-want) > 1e-12 {
		t.Fatalf("cost = %g want %g", acc.CostNodeHours, want)
	}
	if acc.Ranks != 8*24 {
		t.Fatalf("ranks = %d", acc.Ranks)
	}
}

func TestStartupFloor(t *testing.T) {
	m := Edison()
	acc, err := m.Simulate(JobSpec{Nodes: 4, Mx: 8, Stats: workload(1, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc.WallClockSec < m.StartupSec {
		t.Fatalf("wall %g below startup floor %g", acc.WallClockSec, m.StartupSec)
	}
}

func TestMoreWorkTakesLonger(t *testing.T) {
	m := Edison()
	small, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 16, Stats: workload(1e7, 50)}, nil)
	big, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 16, Stats: workload(1e9, 50)}, nil)
	if big.WallClockSec <= small.WallClockSec {
		t.Fatalf("100x work not slower: %g vs %g", big.WallClockSec, small.WallClockSec)
	}
}

func TestStrongScalingSpeedsUpLargeJobs(t *testing.T) {
	m := Edison()
	// Plenty of patches so parallelism is not patch-limited.
	st := workload(1e10, 4000)
	p4, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 16, Stats: st}, nil)
	p32, _ := m.Simulate(JobSpec{Nodes: 32, Mx: 16, Stats: st}, nil)
	if p32.WallClockSec >= p4.WallClockSec {
		t.Fatalf("no speedup: %g vs %g", p32.WallClockSec, p4.WallClockSec)
	}
	// But cost (node-hours) should not improve superlinearly.
	if p32.CostNodeHours < p4.CostNodeHours*0.9 {
		t.Fatalf("suspicious superlinear cost: %g vs %g", p32.CostNodeHours, p4.CostNodeHours)
	}
}

func TestParallelismSaturatesAtPatchCount(t *testing.T) {
	m := Edison()
	// Few patches: adding nodes cannot speed up compute.
	st := workload(1e9, 4)
	p4, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 16, Stats: st}, nil)
	p32, _ := m.Simulate(JobSpec{Nodes: 32, Mx: 16, Stats: st}, nil)
	if p32.ComputeSec < p4.ComputeSec*0.9 {
		t.Fatalf("patch-limited job scaled: %g vs %g", p32.ComputeSec, p4.ComputeSec)
	}
}

func TestMemoryScalesWithPatchesPerRank(t *testing.T) {
	m := Edison()
	few := workload(1e7, 96) // 1 patch per rank at 4 nodes
	many := workload(1e7, 9600)
	a, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 16, Stats: few}, nil)
	b, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 16, Stats: many}, nil)
	if b.MaxRSSBytes <= a.MaxRSSBytes {
		t.Fatalf("memory did not grow with patches: %g vs %g", b.MaxRSSBytes, a.MaxRSSBytes)
	}
	// Spreading the same patches over more nodes shrinks per-rank memory.
	c, _ := m.Simulate(JobSpec{Nodes: 32, Mx: 16, Stats: many}, nil)
	if c.MaxRSSBytes >= b.MaxRSSBytes {
		t.Fatalf("memory did not shrink with more nodes: %g vs %g", c.MaxRSSBytes, b.MaxRSSBytes)
	}
}

func TestMemoryScalesWithMx(t *testing.T) {
	m := Edison()
	st := workload(1e7, 960)
	small, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 8, Stats: st}, nil)
	big, _ := m.Simulate(JobSpec{Nodes: 4, Mx: 32, Stats: st}, nil)
	if big.MaxRSSBytes <= small.MaxRSSBytes {
		t.Fatalf("memory not growing with mx: %g vs %g", big.MaxRSSBytes, small.MaxRSSBytes)
	}
}

func TestPatchBytes(t *testing.T) {
	// (8+4)² cells × 4 fields × 8 bytes × 6 field-sized arrays.
	want := 12.0 * 12 * 4 * 8 * 6
	if got := PatchBytes(8); got != want {
		t.Fatalf("PatchBytes(8) = %g want %g", got, want)
	}
}

func TestNoiseReproducibleAndBounded(t *testing.T) {
	m := Edison()
	st := workload(1e8, 200)
	a, _ := m.Simulate(JobSpec{Nodes: 8, Mx: 16, Stats: st}, rand.New(rand.NewSource(7)))
	b, _ := m.Simulate(JobSpec{Nodes: 8, Mx: 16, Stats: st}, rand.New(rand.NewSource(7)))
	if a.WallClockSec != b.WallClockSec || a.MaxRSSBytes != b.MaxRSSBytes {
		t.Fatal("same seed produced different accounting")
	}
	c, _ := m.Simulate(JobSpec{Nodes: 8, Mx: 16, Stats: st}, rand.New(rand.NewSource(8)))
	if a.WallClockSec == c.WallClockSec {
		t.Fatal("different seeds produced identical wall clock")
	}
	noiseless, _ := m.Simulate(JobSpec{Nodes: 8, Mx: 16, Stats: st}, nil)
	ratio := a.WallClockSec / noiseless.WallClockSec
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("noise ratio %g outside plausible band", ratio)
	}
}

// Property: accounting values are positive and finite for random workloads.
func TestAccountingFiniteProperty(t *testing.T) {
	m := Edison()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := amr.EmulationStats{
			CellUpdates: rng.Float64() * 1e10,
			Steps:       rng.Float64() * 1e4,
			GhostCells:  rng.Float64() * 1e8,
			Regrids:     rng.Float64() * 1e3,
			PeakPatches: 1 + rng.Intn(5000),
		}
		st.MeanPatches = float64(st.PeakPatches) * (0.5 + 0.5*rng.Float64())
		nodes := []int{4, 8, 16, 24, 32}[rng.Intn(5)]
		mx := []int{8, 16, 24, 32}[rng.Intn(4)]
		acc, err := m.Simulate(JobSpec{Nodes: nodes, Mx: mx, Stats: st}, rng)
		if err != nil {
			return false
		}
		ok := acc.WallClockSec > 0 && acc.CostNodeHours > 0 && acc.MaxRSSBytes > 0
		return ok && !math.IsInf(acc.WallClockSec, 0) && !math.IsNaN(acc.WallClockSec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cost is monotone in nodes for fixed wall-clock-dominating
// startup (tiny jobs): more nodes, more node-hours.
func TestTinyJobCostMonotoneInNodesProperty(t *testing.T) {
	m := Edison()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := workload(100+rng.Float64()*1000, 2)
		prev := 0.0
		for _, n := range []int{4, 8, 16, 32} {
			acc, err := m.Simulate(JobSpec{Nodes: n, Mx: 8, Stats: st}, nil)
			if err != nil || acc.CostNodeHours <= prev {
				return false
			}
			prev = acc.CostNodeHours
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
