package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueueValidation(t *testing.T) {
	if _, err := (Queue{}).Schedule(nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
	q := Queue{TotalNodes: 4}
	if _, err := q.Schedule([]QueuedJob{{Nodes: 8, WallSec: 1}}); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := q.Schedule([]QueuedJob{{Nodes: 1, WallSec: 0}}); err == nil {
		t.Fatal("zero wall time accepted")
	}
	if _, err := q.Schedule([]QueuedJob{{Nodes: 1, WallSec: 1, SubmitTime: -1}}); err == nil {
		t.Fatal("negative submit accepted")
	}
}

func TestQueueEmpty(t *testing.T) {
	s, err := (Queue{TotalNodes: 4}).Schedule([]QueuedJob{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 {
		t.Fatalf("makespan = %g", s.Makespan)
	}
}

func TestQueueSequentialWhenFull(t *testing.T) {
	// Each job takes the whole machine: strict serialization.
	q := Queue{TotalNodes: 4}
	jobs := []QueuedJob{
		{Nodes: 4, WallSec: 10},
		{Nodes: 4, WallSec: 20},
		{Nodes: 4, WallSec: 5},
	}
	s, err := q.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 0 || s.Start[1] != 10 || s.Start[2] != 30 {
		t.Fatalf("starts = %v", s.Start)
	}
	if s.Makespan != 35 {
		t.Fatalf("makespan = %g want 35", s.Makespan)
	}
}

func TestQueueParallelWhenFits(t *testing.T) {
	q := Queue{TotalNodes: 8}
	jobs := []QueuedJob{
		{Nodes: 4, WallSec: 10},
		{Nodes: 4, WallSec: 10},
	}
	s, err := q.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 0 || s.Start[1] != 0 {
		t.Fatalf("starts = %v", s.Start)
	}
	if s.Makespan != 10 {
		t.Fatalf("makespan = %g want 10", s.Makespan)
	}
}

func TestQueueBackfill(t *testing.T) {
	// Job 0 holds 3 of 4 nodes for 100 s. Job 1 (head) needs all 4 and must
	// wait. Job 2 needs 1 node for 50 s: it fits in the idle node and ends
	// before the shadow time, so backfill starts it immediately.
	q := Queue{TotalNodes: 4}
	jobs := []QueuedJob{
		{Nodes: 3, WallSec: 100},
		{Nodes: 4, WallSec: 10},
		{Nodes: 1, WallSec: 50},
	}
	s, err := q.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[2] != 0 {
		t.Fatalf("backfill did not start job 2 at 0: %v", s.Start)
	}
	if s.Start[1] != 100 {
		t.Fatalf("head start = %g want 100", s.Start[1])
	}
}

func TestQueueBackfillNeverDelaysHead(t *testing.T) {
	// Job 2 would fit in the idle node but runs past the shadow time, so it
	// must NOT backfill.
	q := Queue{TotalNodes: 4}
	jobs := []QueuedJob{
		{Nodes: 3, WallSec: 100},
		{Nodes: 4, WallSec: 10},
		{Nodes: 1, WallSec: 500},
	}
	s, err := q.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[1] != 100 {
		t.Fatalf("head delayed to %g", s.Start[1])
	}
	if s.Start[2] < 100 {
		t.Fatalf("long job backfilled at %g and would have delayed the head", s.Start[2])
	}
}

func TestQueueRespectsSubmitTimes(t *testing.T) {
	q := Queue{TotalNodes: 4}
	jobs := []QueuedJob{
		{Nodes: 1, WallSec: 5, SubmitTime: 100},
	}
	s, err := q.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 100 {
		t.Fatalf("started before submission: %g", s.Start[0])
	}
	if s.WaitSec != 0 {
		t.Fatalf("wait = %g want 0", s.WaitSec)
	}
}

// Property: schedules are feasible — no job starts before submission, node
// usage never exceeds the machine, and every job runs exactly WallSec.
func TestQueueFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := Queue{TotalNodes: 4 + rng.Intn(28)}
		n := 1 + rng.Intn(20)
		jobs := make([]QueuedJob, n)
		for i := range jobs {
			jobs[i] = QueuedJob{
				Nodes:      1 + rng.Intn(q.TotalNodes),
				WallSec:    0.5 + rng.Float64()*100,
				SubmitTime: rng.Float64() * 50,
			}
		}
		s, err := q.Schedule(jobs)
		if err != nil {
			return false
		}
		for i, j := range jobs {
			if s.Start[i] < j.SubmitTime-1e-9 {
				return false
			}
			if math.Abs(s.End[i]-s.Start[i]-j.WallSec) > 1e-9 {
				return false
			}
		}
		// Check node capacity at every start event.
		for i := range jobs {
			t0 := s.Start[i]
			used := 0
			for k, j := range jobs {
				if s.Start[k] <= t0+1e-9 && s.End[k] > t0+1e-9 {
					used += j.Nodes
				}
			}
			if used > q.TotalNodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: makespan is at least the critical lower bounds (max single job;
// total node-seconds / machine size).
func TestQueueMakespanLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := Queue{TotalNodes: 4 + rng.Intn(12)}
		n := 1 + rng.Intn(15)
		jobs := make([]QueuedJob, n)
		var area, longest float64
		for i := range jobs {
			jobs[i] = QueuedJob{Nodes: 1 + rng.Intn(q.TotalNodes), WallSec: 1 + rng.Float64()*50}
			area += float64(jobs[i].Nodes) * jobs[i].WallSec
			if jobs[i].WallSec > longest {
				longest = jobs[i].WallSec
			}
		}
		s, err := q.Schedule(jobs)
		if err != nil {
			return false
		}
		lb := math.Max(longest, area/float64(q.TotalNodes))
		return s.Makespan >= lb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
