package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"alamr/internal/dataset"
	"alamr/internal/obs"
)

// synthDS builds a small synthetic dataset with smooth cost/memory response
// surfaces (the engine-package twin of the core test helper).
func synthDS(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	combos := dataset.AllCombos()
	ds := &dataset.Dataset{}
	for i := 0; i < n; i++ {
		c := combos[rng.Intn(len(combos))]
		noise := math.Exp(rng.NormFloat64() * 0.05)
		wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
			(1 + 2*c.R0) * (1 / (0.2 + c.RhoIn)) * noise
		cost := wall * float64(c.P) / 360
		mem := 0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) /
			math.Sqrt(float64(c.P)) * math.Exp(rng.NormFloat64()*0.02)
		ds.Jobs = append(ds.Jobs, dataset.Job{
			P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
			WallSec: wall, CostNH: cost, MemMB: mem,
		})
	}
	return ds
}

func replaySpec(name, policy string, seed int64, nInit, maxIter int) CampaignSpec {
	return CampaignSpec{
		Version:       SpecVersion,
		Name:          name,
		Mode:          ModeReplay,
		Policy:        PolicySpec{Name: policy},
		Seed:          seed,
		MaxIterations: maxIter,
		HyperoptEvery: 5,
		Replay:        &ReplaySpec{NInit: nInit, NTest: 30},
	}
}

// TestSweepSmoke is the tiny 2x2 grid `make sweep-smoke` runs under the race
// detector: two policies x two seeds, concurrent workers, per-campaign obs.
func TestSweepSmoke(t *testing.T) {
	obs.Disable()
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	defer obs.Disable()

	ds := synthDS(100, 51)
	var specs []CampaignSpec
	for _, policy := range []string{"randuniform", "maxsigma"} {
		for _, seed := range []int64{1, 2} {
			specs = append(specs, replaySpec(fmt.Sprintf("smoke/%s/%d", policy, seed), policy, seed, 6, 3))
		}
	}
	trs, err := SweepReplaySpecs(ds, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 4 {
		t.Fatalf("got %d trajectories want 4", len(trs))
	}
	for i, tr := range trs {
		if tr == nil || tr.Iterations() != 3 {
			t.Fatalf("campaign %d: trajectory %+v, want 3 iterations", i, tr)
		}
	}
}

// TestSweepNInitPolicyStudy runs the acceptance grid — n_init in {1, 50,
// 100} x the five paper policies — twice with different worker counts and
// requires identical trajectories: sweep output must not depend on
// scheduling.
func TestSweepNInitPolicyStudy(t *testing.T) {
	ds := synthDS(300, 52)
	policies := []string{"randuniform", "maxsigma", "minpred", "randgoodness", "rgma"}
	var specs []CampaignSpec
	for _, nInit := range []int{1, 50, 100} {
		for _, policy := range policies {
			s := replaySpec(fmt.Sprintf("%s/ninit=%d", policy, nInit), policy, int64(40+nInit), nInit, 4)
			s.MemLimitPaperRule = true
			specs = append(specs, s)
		}
	}
	first, err := SweepReplaySpecs(ds, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	second, err := SweepReplaySpecs(ds, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(specs) || len(second) != len(specs) {
		t.Fatalf("got %d/%d trajectories want %d", len(first), len(second), len(specs))
	}
	for i := range specs {
		if first[i] == nil {
			t.Fatalf("campaign %s: nil trajectory", specs[i].Name)
		}
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Fatalf("campaign %s: trajectories differ between worker counts", specs[i].Name)
		}
	}
}

// TestSweepIsolatesFailures: one failing or panicking campaign must neither
// abort the sweep nor disturb its siblings, and results stay positional.
func TestSweepIsolatesFailures(t *testing.T) {
	items := []SweepItem{
		{ID: "ok-1", Run: func(*CampaignObs) (any, error) { return 10, nil }},
		{ID: "broken", Run: func(*CampaignObs) (any, error) { return nil, errors.New("policy exploded") }},
		{ID: "panicky", Run: func(*CampaignObs) (any, error) { panic("selection bug") }},
		{ID: "ok-2", Run: func(*CampaignObs) (any, error) { return 20, nil }},
	}
	results, err := Sweep(SweepConfig{Workers: 2, Items: items})
	if err == nil {
		t.Fatal("joined error missing")
	}
	for _, want := range []string{"sweep campaign broken", "policy exploded", "sweep campaign panicky", "panic: selection bug"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error %q missing %q", err, want)
		}
	}
	if results[0].Value != 10 || results[3].Value != 20 {
		t.Fatalf("sibling results disturbed: %+v", results)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatalf("per-item errors not recorded: %+v", results)
	}
	if results[2].Value != nil {
		t.Fatalf("panicking campaign produced a value: %+v", results[2])
	}
}

func TestSweepEmptyAndSequential(t *testing.T) {
	results, err := Sweep(SweepConfig{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty sweep: %v %v", results, err)
	}
	// Workers=1 must execute strictly in item order (shared mutable state).
	var order []string
	items := []SweepItem{
		{ID: "a", Run: func(*CampaignObs) (any, error) { order = append(order, "a"); return nil, nil }},
		{ID: "b", Run: func(*CampaignObs) (any, error) { order = append(order, "b"); return nil, nil }},
		{ID: "c", Run: func(*CampaignObs) (any, error) { order = append(order, "c"); return nil, nil }},
	}
	if _, err := Sweep(SweepConfig{Workers: 1, Items: items}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "abc" {
		t.Fatalf("sequential sweep ran out of order: %v", order)
	}
}

// TestCampaignObsNoInterleave runs two campaigns concurrently and checks
// that their labeled per-campaign series stay separable: each campaign's
// iteration counter equals its own trajectory length, and the cum-cost
// gauges carry each campaign's own final value.
func TestCampaignObsNoInterleave(t *testing.T) {
	obs.Disable()
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	defer obs.Disable()

	ds := synthDS(140, 53)
	specs := []CampaignSpec{
		replaySpec("camp-a", "randuniform", 3, 10, 12),
		replaySpec("camp-b", "randgoodness", 4, 10, 9),
	}
	trs, err := SweepReplaySpecs(ds, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		iters, ok := reg.CounterValue(obs.Labeled(obs.MetricSweepIterations, obs.LabelCampaign, spec.Name))
		if !ok || iters != int64(trs[i].Iterations()) {
			t.Fatalf("campaign %s: iterations counter = %d (found %v) want %d",
				spec.Name, iters, ok, trs[i].Iterations())
		}
		cc, ok := reg.GaugeValue(obs.Labeled(obs.MetricSweepCumCost, obs.LabelCampaign, spec.Name))
		want := trs[i].CumCost[len(trs[i].CumCost)-1]
		if !ok || cc != want {
			t.Fatalf("campaign %s: cum-cost gauge = %g (found %v) want %g", spec.Name, cc, ok, want)
		}
	}
}
