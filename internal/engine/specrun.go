package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"alamr/internal/dataset"
)

// The mode-runner registry closes the last gap between "a CampaignSpec" and
// "a running campaign": each execution mode registers one SpecRunner, and
// every caller — the CLI binaries, al-serve's worker pool, tests — executes
// specs through the same RunCampaignSpec entry point instead of hand-rolling
// its own mode switch. engine registers ModeReplay below; internal/online
// contributes ModeOnline from its init, exactly like the "sim" lab.

// SpecRunner executes one validated campaign spec. The context is the
// cooperative cancellation signal (polled at round boundaries); ds is the
// offline dataset (nil when the spec does not need it, see
// SpecNeedsDataset); scope optionally labels the campaign's metric series.
// The result is mode-specific: *Trajectory for replay, *online.Result for
// online.
type SpecRunner func(ctx context.Context, spec CampaignSpec, ds *dataset.Dataset, scope *CampaignObs) (any, error)

var (
	modeMu  sync.RWMutex
	modeReg = map[string]SpecRunner{}
)

// RegisterModeRunner adds (or replaces) the runner for a campaign mode.
func RegisterModeRunner(mode string, run SpecRunner) {
	modeMu.Lock()
	defer modeMu.Unlock()
	modeReg[normName(mode)] = run
}

// ModeNames lists the registered campaign modes, sorted.
func ModeNames() []string {
	modeMu.RLock()
	defer modeMu.RUnlock()
	return sortedKeys(modeReg)
}

// RunCampaignSpec validates and executes a campaign spec of either mode
// through the mode-runner registry. A nil ctx runs without cancellation.
func RunCampaignSpec(ctx context.Context, spec CampaignSpec, ds *dataset.Dataset, scope *CampaignObs) (any, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	modeMu.RLock()
	run, ok := modeReg[normName(spec.Mode)]
	modeMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: no runner registered for mode %q (registered: %s)",
			spec.Mode, strings.Join(ModeNames(), ", "))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return run(ctx, spec, ds, scope)
}

// SpecNeedsDataset reports whether executing the spec requires the offline
// dataset: every replay-mode campaign, any campaign using the paper's
// memory-limit rule (calibrated against the dataset), and online campaigns
// backed by the "replay" lab.
func SpecNeedsDataset(spec CampaignSpec) bool {
	if spec.Mode == ModeReplay || spec.MemLimitPaperRule {
		return true
	}
	return spec.Mode == ModeOnline && spec.Online != nil && normName(spec.Online.Lab.Name) == "replay"
}

// LoadSpecForRun is the shared -spec translation block of the campaign
// binaries: load and validate the spec file, then load the dataset — lazily,
// only when the spec actually needs it (see SpecNeedsDataset), so an online
// sim campaign runs without any dataset file present. A spec that needs the
// dataset with no path supplied fails early with a message naming the
// reason. Online-mode specs additionally have their lab name checked against
// the registry here, since Validate defers lab resolution to run time.
func LoadSpecForRun(specPath, dataPath string) (CampaignSpec, *dataset.Dataset, error) {
	spec, err := LoadCampaignSpec(specPath)
	if err != nil {
		return CampaignSpec{}, nil, err
	}
	if spec.Mode == ModeOnline {
		if err := LabRegistered(spec.Online.Lab.Name); err != nil {
			return CampaignSpec{}, nil, err
		}
	}
	var ds *dataset.Dataset
	if SpecNeedsDataset(spec) {
		if dataPath == "" {
			return CampaignSpec{}, nil, fmt.Errorf(
				"engine: spec %s needs the offline dataset (replay mode, the %q lab, or mem_limit_paper_rule); pass -data",
				specPath, "replay")
		}
		if ds, err = dataset.LoadFile(dataPath); err != nil {
			return CampaignSpec{}, nil, fmt.Errorf("engine: loading dataset for %s: %w", specPath, err)
		}
	}
	return spec, ds, nil
}

func init() {
	RegisterModeRunner(ModeReplay, func(ctx context.Context, spec CampaignSpec, ds *dataset.Dataset, scope *CampaignObs) (any, error) {
		return runReplaySpecCtx(ctx, ds, spec, scope)
	})
}

// runReplaySpecCtx is RunReplaySpecScoped with cooperative cancellation
// wired from the context into the loop's Stop hook.
func runReplaySpecCtx(ctx context.Context, ds *dataset.Dataset, spec CampaignSpec, scope *CampaignObs) (*Trajectory, error) {
	if spec.Fidelity != nil && ds != nil {
		// Fidelity campaigns run against the ladder-only subset; the
		// trajectory's Selected indices refer to the filtered dataset.
		ds = spec.Fidelity.Filter(ds)
	}
	part, cfg, err := spec.ReplayPlan(ds)
	if err != nil {
		return nil, err
	}
	cfg.Campaign = scope
	if ctx != nil && ctx.Done() != nil {
		cfg.Stop = func() bool { return ctx.Err() != nil }
	}
	if b := spec.Replay.Batch; b != nil {
		strategy := BatchIndependent
		if b.Strategy != "" {
			strategy, err = BuildStrategy(b.Strategy)
			if err != nil {
				return nil, err
			}
		}
		return RunReplayBatch(ds, part, cfg, b.Q, strategy)
	}
	return RunReplay(ds, part, cfg)
}
