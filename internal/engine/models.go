package engine

import (
	"fmt"
	"strings"

	"alamr/internal/dataset"
	"alamr/internal/gp"
	"alamr/internal/kernel"
)

// Surrogate model names built into the registry.
const (
	ModelExact    = "exact"
	ModelSparse   = "sparse"
	ModelTreed    = "treed"
	ModelMultiFid = "multifid"
)

// ModelSpec names a registered surrogate family plus its capacity knobs.
// The zero spec (and a nil *ModelSpec on CampaignSpec) means the exact GP —
// the default every pre-existing campaign file and golden runs under.
type ModelSpec struct {
	Name string `json:"name"`
	// Inducing is the sparse model's inducing-point budget k (default 64).
	// Scoring costs O(k²) per candidate direct or O(k) cached, so k bounds
	// the per-iteration cost independently of the training-set size n.
	Inducing int `json:"inducing,omitempty"`
	// LeafSize is the treed model's leaf capacity (default 64, minimum 8).
	LeafSize int `json:"leaf_size,omitempty"`
	// Rebalance is the treed model's re-split trigger factor: a leaf splits
	// once it exceeds rebalance×leaf_size rows (default 2, minimum 1).
	Rebalance int `json:"rebalance,omitempty"`
}

// ModelDeps carries the runtime inputs a model constructor needs beyond its
// spec: the covariance prototype, the per-surrogate GP configuration, and
// (for the co-kriging family) the campaign's fidelity ladder.
type ModelDeps struct {
	Kernel   kernel.Kernel
	GP       gp.Config
	Fidelity *FidelitySpec
}

var modelReg = map[string]func(ModelSpec, ModelDeps) (gp.Model, error){}

// RegisterModel adds (or replaces) a surrogate constructor under name.
func RegisterModel(name string, build func(ModelSpec, ModelDeps) (gp.Model, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	modelReg[normName(name)] = build
}

// ModelNames lists the registered surrogate names, sorted.
func ModelNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(modelReg)
}

// BuildModel constructs the surrogate a spec names. An empty name means
// ModelExact. Unknown names report the registered alternatives.
func BuildModel(s ModelSpec, deps ModelDeps) (gp.Model, error) {
	name := s.Name
	if name == "" {
		name = ModelExact
	}
	regMu.RLock()
	build, ok := modelReg[normName(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown model %q (registered: %s)", s.Name, strings.Join(ModelNames(), ", "))
	}
	return build(s, deps)
}

// validateModelSpec checks a spec's structure without constructing anything
// heavyweight (Validate must stay cheap and side-effect free).
func validateModelSpec(s *ModelSpec) error {
	regMu.RLock()
	_, ok := modelReg[normName(s.Name)]
	regMu.RUnlock()
	if s.Name != "" && !ok {
		return fmt.Errorf("engine: unknown model %q (registered: %s)", s.Name, strings.Join(ModelNames(), ", "))
	}
	if s.Inducing < 0 {
		return fmt.Errorf("engine: model inducing must be >= 0, got %d", s.Inducing)
	}
	if s.LeafSize < 0 {
		return fmt.Errorf("engine: model leaf_size must be >= 0, got %d", s.LeafSize)
	}
	if s.Rebalance < 0 {
		return fmt.Errorf("engine: model rebalance must be >= 0, got %d", s.Rebalance)
	}
	return nil
}

func init() {
	RegisterModel(ModelExact, func(_ ModelSpec, d ModelDeps) (gp.Model, error) {
		return gp.New(d.Kernel, d.GP), nil
	})
	RegisterModel(ModelSparse, func(s ModelSpec, d ModelDeps) (gp.Model, error) {
		k := s.Inducing
		if k <= 0 {
			k = 64
		}
		return gp.NewSparse(d.Kernel, d.GP, k), nil
	})
	RegisterModel(ModelTreed, func(s ModelSpec, d ModelDeps) (gp.Model, error) {
		leaf := s.LeafSize
		if leaf <= 0 {
			leaf = 64
		}
		t := gp.NewTreed(d.Kernel, d.GP, leaf)
		if s.Rebalance > 0 {
			t.SetRebalance(s.Rebalance)
		}
		return t, nil
	})
	RegisterModel(ModelMultiFid, func(_ ModelSpec, d ModelDeps) (gp.Model, error) {
		if d.Fidelity == nil {
			return nil, fmt.Errorf("engine: model %q needs a fidelity ladder (spec %q section)", ModelMultiFid, "fidelity")
		}
		return gp.NewMultiFid(d.Kernel, d.GP, gp.MultiFidConfig{
			Dim:    dataset.FidelityFeature,
			Ladder: d.Fidelity.ScaledLadder(),
		})
	})
}
