package engine

import (
	"encoding/json"
	"fmt"
	"io"

	"alamr/internal/dataset"
	"alamr/internal/gp"
	"alamr/internal/kernel"
)

// LoopConfig configures one active-learning trajectory (Algorithm 1).
type LoopConfig struct {
	Policy Policy
	// Kernel is the covariance prototype for both surrogates (default
	// isotropic RBF with ℓ=0.5, σ_f=1 on the unit-cube features).
	Kernel kernel.Kernel
	// GP carries the surrogate configuration; zero value uses sensible
	// defaults (optimized noise starting at 0.1, normalized targets).
	GP gp.Config
	// MemLimitMB is the maximum allowed memory usage L_mem in MB; 0
	// disables memory awareness entirely. When set, regret is recorded
	// against this limit for every policy, and memory-aware policies filter
	// candidates by it.
	MemLimitMB float64
	// MaxIterations bounds the number of AL selections (0 = exhaust the
	// Active pool).
	MaxIterations int
	// HyperoptEvery re-optimizes hyperparameters every k-th iteration
	// (default 10); other iterations use the O(n²) incremental update. Set
	// to 1 to refit every iteration exactly as the paper's Algorithm 1.
	HyperoptEvery int
	// Seed drives the policy's randomness.
	Seed int64
	// Log2P selects the log2(p) feature transform (paper §V-D).
	Log2P bool
	// Stable optionally enables the stabilizing-predictions stopping
	// heuristic (paper §V-D, third discussion point).
	Stable *StableStopConfig
	// Model selects the surrogate family from the model registry ("exact",
	// "sparse", "treed"); nil means the exact GP, preserving the historical
	// default exactly.
	Model *ModelSpec
	// NewModel overrides the surrogate constructor entirely (it wins over
	// Model). Use for custom gp.Model implementations not in the registry.
	NewModel func() gp.Model
	// Fidelity turns the loop multi-fidelity: the partition is expected to
	// span the declared MaxLevel ladder, the default surrogate becomes the
	// co-kriging "multifid" model, candidate sets carry a FidelityView, and
	// selections record their ladder level. Nil preserves the
	// single-fidelity code paths exactly.
	Fidelity *FidelitySpec
	// Pool optionally replaces the materialized candidate pool with the
	// streamed/sharded top-k pool (see StreamSelect): candidates are scored
	// shard by shard into a bounded shortlist, so peak pool memory is
	// O(shard + k) instead of O(m). Only shortlist-safe policies (pure
	// argmax rankers: maxsigma, minpred) are supported.
	Pool *PoolSpec
	// DirectScoring disables the incremental posterior cache and re-scores
	// the remaining pool with full GP predictions every iteration — the
	// O(m·n²) reference path the cache is pinned against in the equivalence
	// tests. Non-*gp.GP surrogates always use this path.
	DirectScoring bool
	// Campaign optionally attaches per-campaign labeled instruments so
	// concurrent sweeps keep separable metric series; nil records into the
	// shared campaign gauges only.
	Campaign *CampaignObs
	// Stop optionally requests cooperative cancellation: it is polled at
	// every round boundary and a true return ends the trajectory with
	// StopCancelled (partial results intact, no error).
	Stop func() bool
}

// newModel builds one surrogate instance: the NewModel override, then the
// registry entry Model names, then the exact GP.
func (c *LoopConfig) newModel() (gp.Model, error) {
	if c.NewModel != nil {
		return c.NewModel(), nil
	}
	deps := ModelDeps{Kernel: c.Kernel, GP: c.GP, Fidelity: c.Fidelity}
	if c.Model != nil {
		return BuildModel(*c.Model, deps)
	}
	if c.Fidelity != nil {
		return BuildModel(ModelSpec{Name: ModelMultiFid}, deps)
	}
	return gp.New(c.Kernel, c.GP), nil
}

func (c *LoopConfig) setDefaults() {
	if c.Kernel == nil {
		c.Kernel = kernel.NewRBF(0.5, 1)
	}
	if c.GP.Noise == 0 {
		c.GP.Noise = 0.1
	}
	c.GP.NormalizeY = true
	if c.HyperoptEvery <= 0 {
		c.HyperoptEvery = 10
	}
}

// StableStopConfig stops the loop once predictions on the Test partition
// have stabilized: when the mean absolute change of consecutive predictions
// stays below Tol for Window consecutive iterations.
type StableStopConfig struct {
	Window int     `json:"window,omitempty"` // consecutive stable iterations required (default 5)
	Tol    float64 `json:"tol,omitempty"`    // mean |Δμ| threshold in log10 space (default 0.005)
}

func (s *StableStopConfig) setDefaults() {
	if s.Window <= 0 {
		s.Window = 5
	}
	if s.Tol <= 0 {
		s.Tol = 0.005
	}
}

// StopReason records why a trajectory ended.
type StopReason string

// Stop reasons.
const (
	StopPoolExhausted StopReason = "pool-exhausted"
	StopMaxIterations StopReason = "max-iterations"
	StopMemoryLimit   StopReason = "all-exceed-memory-limit"
	StopStable        StopReason = "stable-predictions"
	StopBudget        StopReason = "budget-exhausted"
	// StopFault ends a campaign that hit a fatal (unclassifiable) lab error
	// or spent a job's whole retry budget; partial results are returned
	// alongside the error.
	StopFault StopReason = "fatal-fault"
	// StopCancelled ends a campaign whose caller asked it to stop (see
	// LoopParams.Stop) — e.g. a DELETE against a running al-serve campaign.
	// The partial result is returned without an error; the loop stops at the
	// next round boundary, after the in-flight experiment completes.
	StopCancelled StopReason = "cancelled"
)

// Trajectory records everything the evaluation needs about one AL run: the
// selection order and the per-iteration metrics of §V-B.
type Trajectory struct {
	Policy string
	NInit  int
	Seed   int64

	// Selected holds dataset indices in selection order.
	Selected []int
	// SelectedCost/SelectedMem are the actual (non-log) responses of the
	// selected jobs, in order.
	SelectedCost []float64
	SelectedMem  []float64
	// SelectedLevel holds each selection's fidelity ladder index
	// (multi-fidelity campaigns only; omitted — and absent from the JSON —
	// in single-fidelity runs, so historical goldens stay byte-identical).
	SelectedLevel []int `json:"SelectedLevel,omitempty"`

	// Per-iteration metrics, recorded after the models absorb iteration i.
	CostRMSE  []float64 // non-log RMSE on the Test partition
	MemRMSE   []float64
	CumCost   []float64 // CC: running sum of selected actual costs
	CumRegret []float64 // CR: running sum of costs of limit-violating picks
	Violation []bool    // whether pick i violated the memory limit

	// InitCostRMSE / InitMemRMSE are the test errors after the initial fit,
	// before any AL selection.
	InitCostRMSE, InitMemRMSE float64

	Reason StopReason
	// FinalHyperCost / FinalHyperMem are the models' log-space
	// hyperparameters at the end of the run.
	FinalHyperCost, FinalHyperMem []float64
}

// Iterations returns the number of AL selections performed.
func (t *Trajectory) Iterations() int { return len(t.Selected) }

// WriteJSON serializes the trajectory for later aggregation.
func (t *Trajectory) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrajectoryJSON reads a trajectory written by WriteJSON.
func ReadTrajectoryJSON(r io.Reader) (*Trajectory, error) {
	var t Trajectory
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("engine: decoding trajectory: %w", err)
	}
	return &t, nil
}

// checkLogPrecondition verifies every job a loop will log-transform (the
// Init seeds and the Active pool) carries strictly positive, finite
// responses. Rejecting up front turns a silent NaN in a surrogate's
// training set into a classified dataset.ErrBadResponse.
func checkLogPrecondition(ds *dataset.Dataset, part dataset.Partition) error {
	for _, idx := range [][]int{part.Init, part.Active} {
		if err := ds.CheckResponses(idx); err != nil {
			return fmt.Errorf("engine: dataset fails the log-transform precondition: %w", err)
		}
	}
	return nil
}
