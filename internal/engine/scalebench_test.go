package engine

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// benchFull opts the scale benchmarks into the exact-model pool passes
// (O(m·n²) — tens of minutes at m=10⁵). Off by default so `make
// bench-scale` finishes in sparse/treed time; pass `-args -full` to
// measure the exact family too.
var benchFull = flag.Bool("full", false, "include the slow exact-model scale benchmark cases")

// The scale benchmark suite measures one full pool-scoring pass — the
// per-iteration cost of an AL campaign's selection step — across surrogate
// families (exact where feasible, sparse, treed), training-set sizes, pool
// sizes, and pool layouts (materialized vs streamed vs streamed+pruning).
// `make bench-scale` records it into BENCH_al.json; `make bench-scale-smoke`
// runs the TestScaleSmoke correctness twin in CI.

const scaleDim = 5

func scaleTarget(row []float64) float64 {
	return math.Sin(2*row[0])*math.Cos(row[1]) + 0.3*row[2]*row[3] - 0.2*row[4]
}

func scaleTrainSet(rng *rand.Rand, n int) (*mat.Dense, []float64, []float64) {
	x := mat.NewDense(n, scaleDim, nil)
	yc := make([]float64, n)
	ym := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 3
		}
		yc[i] = scaleTarget(row) + 0.05*rng.NormFloat64()
		ym[i] = 0.5*row[0] + 0.25*row[4] + 0.05*rng.NormFloat64()
	}
	return x, yc, ym
}

// scaleGrid factors m into a 5-axis Cartesian grid (m must be a multiple of
// 10^4): {m/10^4, 10, 10, 10, 10}, axis values spread over [0, 3].
func scaleGrid(m int) GridSource {
	lens := []int{m / 10000, 10, 10, 10, 10}
	axes := make([][]float64, len(lens))
	for j, l := range lens {
		ax := make([]float64, l)
		for i := range ax {
			if l == 1 {
				ax[i] = 1.5
			} else {
				ax[i] = 3 * float64(i) / float64(l-1)
			}
		}
		axes[j] = ax
	}
	return GridSource{Axes: axes}
}

// fitScaleModels builds and fits a cost/mem surrogate pair of the named
// family on n synthetic observations. Hyperparameters are fixed: the suite
// measures scoring, not optimization.
func fitScaleModels(tb testing.TB, model string, n int) (gp.Model, gp.Model) {
	tb.Helper()
	deps := ModelDeps{
		Kernel: kernel.NewRBF(0.8, 1.2),
		GP:     gp.Config{Noise: 0.1, FixedNoise: true, NoOptimize: true},
	}
	spec := ModelSpec{Name: model}
	rng := rand.New(rand.NewSource(int64(n)))
	x, yc, ym := scaleTrainSet(rng, n)
	cost, err := BuildModel(spec, deps)
	if err != nil {
		tb.Fatal(err)
	}
	mem, err := BuildModel(spec, deps)
	if err != nil {
		tb.Fatal(err)
	}
	if err := cost.Fit(x, yc); err != nil {
		tb.Fatal(err)
	}
	if err := mem.Fit(x, ym); err != nil {
		tb.Fatal(err)
	}
	return cost, mem
}

// materializedPass is the baseline selection step: predict the whole pool
// through both surrogates and scan for the rank argmax.
func materializedPass(cost, mem gp.Model, poolX *mat.Dense, rank RankFunc) (int, float64) {
	muC, sigC := cost.Predict(poolX)
	muM, sigM := mem.Predict(poolX)
	best, bestRank := -1, math.Inf(-1)
	for i := range muC {
		if r := rank(muC[i], sigC[i], muM[i], sigM[i]); r > bestRank {
			best, bestRank = i, r
		}
	}
	return best, bestRank
}

// exactFeasible bounds the exact GP to combinations whose O(m·n²) scoring
// pass completes in benchmark-tolerable time.
func exactFeasible(n, m int) bool { return n <= 2000 && m <= 100000 }

func BenchmarkScaleScoring(b *testing.B) {
	rank, _ := rankerFor("maxsigma")
	for _, n := range []int{2000, 10000} {
		for _, model := range []string{ModelExact, ModelSparse, ModelTreed} {
			var cost, mem gp.Model // fitted lazily, shared across pool sizes
			for _, m := range []int{100000, 1000000} {
				if model == ModelExact && !exactFeasible(n, m) {
					continue
				}
				if model == ModelExact && m >= 100000 && !*benchFull {
					b.Logf("skipping n=%d/m=%d/model=%s: exact-model pool pass is O(m·n²); pass -args -full to include it", n, m, model)
					continue
				}
				if cost == nil {
					cost, mem = fitScaleModels(b, model, n)
				}
				src := scaleGrid(m)
				name := fmt.Sprintf("n=%d/m=%d/model=%s", n, m, model)

				// The workers axis sweeps the same pass at 1, 2, 4, and
				// GOMAXPROCS mat workers (deduplicated); bench-summary
				// derives its speedup column from the workers=1 row.
				for _, wc := range streamWorkerCounts() {
					wc := wc
					b.Run(fmt.Sprintf("%s/pool=materialized/workers=%d", name, wc), func(b *testing.B) {
						prev := mat.SetWorkers(wc)
						defer mat.SetWorkers(prev)
						poolX := mat.NewDense(m, scaleDim, nil)
						src.Fill(0, m, poolX)
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							materializedPass(cost, mem, poolX, rank)
						}
					})
					for _, mode := range []struct {
						tag    string
						approx bool
					}{{"streamed", false}, {"streamed-approx", true}} {
						b.Run(fmt.Sprintf("%s/pool=%s/workers=%d", name, mode.tag, wc), func(b *testing.B) {
							prev := mat.SetWorkers(wc)
							defer mat.SetWorkers(prev)
							st := NewStreamState(src, cost, mem, StreamConfig{
								ShardSize: 4096, TopK: 64, Approx: mode.approx, Rank: rank,
							})
							st.Select() // steady state: bounds primed before timing
							b.ReportAllocs()
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								st.Select()
							}
						})
					}
				}
			}
		}
	}
}

// TestScaleSmoke is the CI-sized twin (n=500, m=10^4): for every surrogate
// family the streamed shortlist winner must be the materialized argmax, and
// the approximate mode must agree with the exact stream.
func TestScaleSmoke(t *testing.T) {
	const n, m = 500, 10000
	rank, _ := rankerFor("maxsigma")
	src := scaleGrid(m)
	poolX := mat.NewDense(m, scaleDim, nil)
	src.Fill(0, m, poolX)
	for _, model := range []string{ModelExact, ModelSparse, ModelTreed} {
		cost, mem := fitScaleModels(t, model, n)
		wantID, wantRank := materializedPass(cost, mem, poolX, rank)
		for _, approx := range []bool{false, true} {
			st := NewStreamState(src, cost, mem, StreamConfig{
				ShardSize: 1024, TopK: 16, Approx: approx, Rank: rank,
			})
			for round := 0; round < 3; round++ { // re-select: exercises prune bounds
				c, ids := st.Select()
				if len(ids) != 16 {
					t.Fatalf("%s approx=%v: shortlist size %d, want 16", model, approx, len(ids))
				}
				if ids[0] != wantID || rank(c.MuCost[0], c.SigmaCost[0], c.MuMem[0], c.SigmaMem[0]) != wantRank {
					t.Fatalf("%s approx=%v round %d: shortlist winner %d (rank %g), materialized argmax %d (rank %g)",
						model, approx, round, ids[0], rank(c.MuCost[0], c.SigmaCost[0], c.MuMem[0], c.SigmaMem[0]), wantID, wantRank)
				}
			}
		}
	}
}
