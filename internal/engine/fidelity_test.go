package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"alamr/internal/dataset"
)

func TestFidelitySpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec FidelitySpec
		want string // substring of the error; "" = valid
	}{
		{"three-level ladder", FidelitySpec{Levels: []int{3, 4, 6}}, ""},
		{"full ladder", FidelitySpec{Levels: []int{3, 4, 5, 6}}, ""},
		{"single rung", FidelitySpec{Levels: []int{5}}, ""},
		{"empty", FidelitySpec{}, "at least one level"},
		{"off grid", FidelitySpec{Levels: []int{3, 7}}, "not on the maxlevel grid"},
		{"descending", FidelitySpec{Levels: []int{4, 3}}, "strictly ascending"},
		{"repeated", FidelitySpec{Levels: []int{4, 4}}, "strictly ascending"},
		{"negative init", FidelitySpec{Levels: []int{3, 6}, InitPerLevel: -1}, "init_per_level"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFidelityScaledLadder(t *testing.T) {
	f := FidelitySpec{Levels: []int{3, 4, 6}}
	got := f.ScaledLadder()
	want := []float64{0, 1.0 / 3.0, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("ScaledLadder = %v want %v", got, want)
		}
	}
	if f.TopLevel() != 6 {
		t.Fatalf("TopLevel = %d want 6", f.TopLevel())
	}
}

// TestFidelitySplit pins the fidelity-aware partition contract: Test is
// drawn from the top rung only, Init seeds every rung with the per-level
// count, and the partition covers the (filtered) dataset exactly once.
func TestFidelitySplit(t *testing.T) {
	f := &FidelitySpec{Levels: []int{3, 4, 6}, InitPerLevel: 4}
	full := synthDS(300, 7)
	ds := f.Filter(full)
	for _, j := range ds.Jobs {
		if j.MaxLevel == 5 {
			t.Fatal("Filter kept an off-ladder job")
		}
	}

	part, err := f.split(ds, 2 /* ignored: InitPerLevel wins */, 20, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(ds.Len()); err != nil {
		t.Fatal(err)
	}
	if len(part.Test) != 20 {
		t.Fatalf("Test size = %d want 20", len(part.Test))
	}
	for _, i := range part.Test {
		if ds.Jobs[i].MaxLevel != 6 {
			t.Fatalf("Test job %d has maxlevel %d, want top rung 6", i, ds.Jobs[i].MaxLevel)
		}
	}
	initPer := map[int]int{}
	for _, i := range part.Init {
		initPer[ds.Jobs[i].MaxLevel]++
	}
	for _, l := range f.Levels {
		if initPer[l] != 4 {
			t.Fatalf("Init has %d jobs at maxlevel %d, want 4 (per-level seeding)", initPer[l], l)
		}
	}

	// Unfiltered dataset: the split refuses off-ladder jobs loudly.
	if _, err := f.split(full, 2, 20, rand.New(rand.NewSource(9))); err == nil ||
		!strings.Contains(err.Error(), "off the ladder") {
		t.Fatalf("unfiltered split: err = %v", err)
	}
}

// TestFidelitySplitDeterministic pins that equal seeds give equal partitions
// (the property checkpoint resume and golden reruns rely on).
func TestFidelitySplitDeterministic(t *testing.T) {
	f := &FidelitySpec{Levels: []int{3, 4, 6}, InitPerLevel: 3}
	ds := f.Filter(synthDS(250, 11))
	a, err := f.split(ds, 3, 15, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.split(ds, 3, 15, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range map[string][2][]int{
		"Test":   {a.Test, b.Test},
		"Init":   {a.Init, b.Init},
		"Active": {a.Active, b.Active},
	} {
		if len(s[0]) != len(s[1]) {
			t.Fatalf("%s: lengths differ", k)
		}
		for i := range s[0] {
			if s[0][i] != s[1][i] {
				t.Fatalf("%s[%d]: %d != %d", k, i, s[0][i], s[1][i])
			}
		}
	}
}

func TestCostPerInfoPolicy(t *testing.T) {
	c := &Candidates{
		MuCost:      []float64{0, 1, 0}, // candidate 1 is 10x more expensive
		SigmaCost:   []float64{1, 1, 1},
		MuMem:       []float64{0, 0, 0},
		SigmaMem:    []float64{0.1, 0.1, 0.1},
		MemLimitLog: math.Inf(1),
		Fid: &FidelityView{
			Level:   []int{0, 1, 1},
			TopGain: []float64{1, 4, 0.5},
		},
	}
	rng := rand.New(rand.NewSource(1))
	pick, err := CostPerInfo{}.Select(c, rng)
	if err != nil {
		t.Fatal(err)
	}
	// gains/cost: 1/1, 4/10, 0.5/1 → candidate 0 wins.
	if pick != 0 {
		t.Fatalf("pick = %d want 0", pick)
	}

	// Memory filter removes the winner; next-best satisfying candidate wins.
	c.MuMem = []float64{5, 0, 0}
	c.MemLimitLog = 1
	pick, err = CostPerInfo{}.Select(c, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pick != 2 {
		t.Fatalf("pick with mem filter = %d want 2", pick)
	}

	// Everything over the limit → the loop's early-termination signal.
	c.MuMem = []float64{5, 5, 5}
	if _, err := (CostPerInfo{}).Select(c, rng); !errors.Is(err, ErrAllExceedLimit) {
		t.Fatalf("all over limit: err = %v", err)
	}

	// Without a fidelity view the policy refuses to score.
	c.MuMem = []float64{0, 0, 0}
	c.Fid = nil
	if _, err := (CostPerInfo{}).Select(c, rng); err == nil {
		t.Fatal("expected error without FidelityView")
	}
}

func TestFidelitySpecValidationInCampaignSpec(t *testing.T) {
	base := func() CampaignSpec {
		s := replaySpec("fid", "costperinfo", 1, 3, 10)
		s.Fidelity = &FidelitySpec{Levels: []int{3, 4, 6}}
		return s
	}
	if err := func() error { s := base(); return s.Validate() }(); err != nil {
		t.Fatalf("valid fidelity spec rejected: %v", err)
	}

	s := base()
	s.Fidelity = nil
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "fidelity") {
		t.Fatalf("costperinfo without fidelity: err = %v", err)
	}

	s = base()
	s.Model = &ModelSpec{Name: ModelTreed}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "multifid") {
		t.Fatalf("fidelity with treed model: err = %v", err)
	}

	s = replaySpec("mf", "rgma", 1, 3, 10)
	s.Model = &ModelSpec{Name: ModelMultiFid}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "fidelity") {
		t.Fatalf("multifid model without fidelity: err = %v", err)
	}

	s = base()
	s.Replay.Batch = &BatchSelectSpec{Q: 2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "batch") {
		t.Fatalf("fidelity with batch: err = %v", err)
	}

	s = base()
	s.Kernel = &KernelSpec{Name: "ard-rbf", LengthScales: []float64{0.5, 0.5, 0.5, 0.5, 0.5}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "length_scales") {
		t.Fatalf("fidelity with 5-dim ard-rbf: err = %v", err)
	}
	s.Kernel.LengthScales = []float64{0.5, 0.5, 0.5, 0.5}
	if err := s.Validate(); err != nil {
		t.Fatalf("fidelity with 4-dim ard-rbf rejected: %v", err)
	}
}

// TestReplayFidelityEndToEnd drives a 3-level replay campaign through
// RunCampaignSpec: the default surrogate becomes the co-kriging model, the
// cost-per-information policy consumes per-candidate gains, and the
// trajectory records each selection's ladder level.
func TestReplayFidelityEndToEnd(t *testing.T) {
	ds := synthDS(400, 21)
	spec := replaySpec("fid-e2e", "costperinfo", 5, 3, 20)
	spec.Replay.NTest = 25
	spec.Fidelity = &FidelitySpec{Levels: []int{3, 4, 6}, InitPerLevel: 3}

	res, err := RunCampaignSpec(nil, spec, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.(*Trajectory)
	if tr.Iterations() != 20 {
		t.Fatalf("iterations = %d want 20", tr.Iterations())
	}
	if len(tr.SelectedLevel) != tr.Iterations() {
		t.Fatalf("SelectedLevel has %d entries for %d selections", len(tr.SelectedLevel), tr.Iterations())
	}
	for i, lv := range tr.SelectedLevel {
		if lv < 0 || lv > 2 {
			t.Fatalf("SelectedLevel[%d] = %d outside ladder", i, lv)
		}
	}
	// Selected indices refer to the filtered dataset; every selected job
	// must sit on the ladder and match its recorded level.
	fds := spec.Fidelity.Filter(ds)
	idx := spec.Fidelity.levelIndex()
	for i, sel := range tr.Selected {
		if want := idx[fds.Jobs[sel].MaxLevel]; tr.SelectedLevel[i] != want {
			t.Fatalf("selection %d: recorded level %d, job says %d", i, tr.SelectedLevel[i], want)
		}
	}
	// The whole point of cost-per-information: the campaign spends cheap
	// rungs, so not every selection is top-fidelity.
	low := 0
	for _, lv := range tr.SelectedLevel {
		if lv < 2 {
			low++
		}
	}
	if low == 0 {
		t.Fatal("cost-per-information never selected a low-fidelity candidate")
	}
}

// TestReplayFidelityDeterministic pins run-to-run determinism of the whole
// multi-fidelity replay path (selection order and recorded levels).
func TestReplayFidelityDeterministic(t *testing.T) {
	ds := synthDS(300, 33)
	spec := replaySpec("fid-det", "costperinfo", 9, 2, 12)
	spec.Replay.NTest = 20
	spec.Fidelity = &FidelitySpec{Levels: []int{3, 5, 6}, InitPerLevel: 2}

	run := func() *Trajectory {
		res, err := RunCampaignSpec(nil, spec, ds, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.(*Trajectory)
	}
	a, b := run(), run()
	if len(a.Selected) != len(b.Selected) {
		t.Fatalf("runs differ in length: %d vs %d", len(a.Selected), len(b.Selected))
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] || a.SelectedLevel[i] != b.SelectedLevel[i] {
			t.Fatalf("selection %d differs: (%d,%d) vs (%d,%d)",
				i, a.Selected[i], a.SelectedLevel[i], b.Selected[i], b.SelectedLevel[i])
		}
	}
	for i := range a.CostRMSE {
		if a.CostRMSE[i] != b.CostRMSE[i] {
			t.Fatalf("CostRMSE[%d] differs: %v vs %v", i, a.CostRMSE[i], b.CostRMSE[i])
		}
	}
}

// TestFidelitySmoke is the 2-level replay grid `make fidelity-smoke` runs
// under the race detector: two seeds x {2-level co-kriging campaign,
// single-fidelity baseline} through the concurrent sweep engine. The
// multi-fidelity runs must record an on-ladder level per selection; the
// baselines must stay level-free.
func TestFidelitySmoke(t *testing.T) {
	ds := synthDS(200, 61)
	var specs []CampaignSpec
	for _, seed := range []int64{1, 2} {
		fid := replaySpec(fmt.Sprintf("fid-smoke/mf/%d", seed), "costperinfo", seed, 4, 6)
		fid.Replay.NTest = 25
		fid.Fidelity = &FidelitySpec{Levels: []int{3, 6}, InitPerLevel: 2}
		base := replaySpec(fmt.Sprintf("fid-smoke/sf/%d", seed), "rgma", seed, 4, 6)
		base.Replay.NTest = 25
		specs = append(specs, fid, base)
	}
	trs, err := SweepReplaySpecs(ds, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trs {
		if tr == nil || tr.Iterations() != 6 {
			t.Fatalf("campaign %s: trajectory %+v, want 6 iterations", specs[i].Name, tr)
		}
		if specs[i].Fidelity == nil {
			if tr.SelectedLevel != nil {
				t.Fatalf("campaign %s: single-fidelity trajectory grew levels %v", specs[i].Name, tr.SelectedLevel)
			}
			continue
		}
		if len(tr.SelectedLevel) != tr.Iterations() {
			t.Fatalf("campaign %s: %d levels for %d selections", specs[i].Name, len(tr.SelectedLevel), tr.Iterations())
		}
		for j, lv := range tr.SelectedLevel {
			if lv < 0 || lv >= len(specs[i].Fidelity.Levels) {
				t.Fatalf("campaign %s: SelectedLevel[%d] = %d off the 2-rung ladder", specs[i].Name, j, lv)
			}
		}
	}
}

// TestSingleFidelityTrajectoryJSONUnchanged pins the golden-compatibility
// contract: a single-fidelity trajectory serializes without any
// SelectedLevel key, byte-identically to the pre-fidelity schema.
func TestSingleFidelityTrajectoryJSONUnchanged(t *testing.T) {
	ds := synthDS(120, 3)
	spec := replaySpec("plain", "rgma", 2, 5, 8)
	res, err := RunCampaignSpec(nil, spec, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.(*Trajectory).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "SelectedLevel") {
		t.Fatal("single-fidelity trajectory JSON grew a SelectedLevel key")
	}
}

// TestReplayLabErrNotInPool is the table test for the typed absent-feed
// error: present and removed configurations serve jobs, absent ones report
// ErrNotInPool (classifiable with errors.Is).
func TestReplayLabErrNotInPool(t *testing.T) {
	ds := synthDS(60, 17)
	lab := NewReplayLab(ds)
	present := ds.Jobs[0].Config()
	removed := ds.Jobs[1].Config()
	lab.Remove(removed)

	cases := []struct {
		name    string
		combo   dataset.Combo
		wantErr bool
	}{
		{"present", present, false},
		{"removed stays runnable", removed, false},
		{"absent", dataset.Combo{P: 9999, Mx: 8, MaxLevel: 3, R0: 0.2, RhoIn: 0.02}, true},
		{"zero combo", dataset.Combo{}, true},
	}
	for _, tc := range cases {
		_, err := lab.Run(tc.combo)
		if !tc.wantErr {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, ErrNotInPool) {
			t.Errorf("%s: err = %v, want ErrNotInPool", tc.name, err)
		}
	}
}
