package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"alamr/internal/dataset"
	"alamr/internal/stats"
)

// SpecVersion is the current CampaignSpec schema version. Specs carry their
// version explicitly so stored campaign files stay decodable across schema
// changes.
const SpecVersion = 1

// Campaign modes.
const (
	ModeReplay = "replay"
	ModeOnline = "online"
)

// CampaignSpec is the declarative description of one campaign: everything
// RunReplaySpec (or online.RunSpec) needs, as plain data. Specs are
// validated, versioned, and byte-stable under marshal→unmarshal→marshal, so
// they serve as both command-line input (-spec file.json) and provenance
// records of what actually ran.
type CampaignSpec struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	// Mode selects the execution environment: ModeReplay runs against the
	// offline dataset, ModeOnline against a registered lab.
	Mode   string      `json:"mode"`
	Policy PolicySpec  `json:"policy"`
	Kernel *KernelSpec `json:"kernel,omitempty"`
	// Model selects the surrogate family ("exact", "sparse", "treed");
	// omitted means the exact GP, so every historical spec keeps its
	// behavior (and its goldens) unchanged.
	Model *ModelSpec `json:"model,omitempty"`
	Seed  int64      `json:"seed,omitempty"`
	// MemLimitMB sets L_mem directly; MemLimitPaperRule derives it from the
	// dataset with the paper's 95%-of-max rule instead. At most one of the
	// two may be set; neither disables memory awareness.
	MemLimitMB        float64 `json:"mem_limit_mb,omitempty"`
	MemLimitPaperRule bool    `json:"mem_limit_paper_rule,omitempty"`
	HyperoptEvery     int     `json:"hyperopt_every,omitempty"`
	MaxIterations     int     `json:"max_iterations,omitempty"`
	Log2P             bool    `json:"log2p,omitempty"`
	// Fidelity turns the campaign multi-fidelity: candidates become
	// (point, fidelity) pairs over the declared MaxLevel ladder, the
	// surrogates become co-kriging models ("multifid", the default model
	// when this section is present), and cost-per-information acquisition
	// becomes available. Omitted means single-fidelity — the exact
	// historical code paths.
	Fidelity *FidelitySpec `json:"fidelity,omitempty"`

	Replay *ReplaySpec `json:"replay,omitempty"`
	Online *OnlineSpec `json:"online,omitempty"`
}

// PolicySpec names a registered policy plus its tunables.
type PolicySpec struct {
	Name string `json:"name"`
	// Base is the goodness base of randgoodness/rgma (default 10).
	Base float64 `json:"base,omitempty"`
	// Xi is the exploration margin of expectedimprovement (default 0.01).
	Xi float64 `json:"xi,omitempty"`
}

// KernelSpec names a registered kernel plus its hyperparameter seeds.
type KernelSpec struct {
	Name         string    `json:"name"`
	LengthScale  float64   `json:"length_scale,omitempty"`
	Amplitude    float64   `json:"amplitude,omitempty"`
	LengthScales []float64 `json:"length_scales,omitempty"` // ard-rbf only
}

// ReplaySpec holds the replay-mode parameters.
type ReplaySpec struct {
	NInit int `json:"n_init"`
	NTest int `json:"n_test,omitempty"` // default 200
	// PartitionSeed seeds the Init/Active/Test split (default: the
	// campaign Seed).
	PartitionSeed int64             `json:"partition_seed,omitempty"`
	DirectScoring bool              `json:"direct_scoring,omitempty"`
	Stable        *StableStopConfig `json:"stable,omitempty"`
	Batch         *BatchSelectSpec  `json:"batch,omitempty"`
	// Pool switches candidate scoring to the streamed/sharded top-k pool
	// (peak pool memory O(shard + top_k) instead of O(pool)). Requires a
	// shortlist-safe policy (maxsigma, minpred) and no batch section.
	Pool *PoolSpec `json:"pool,omitempty"`
}

// PoolSpec configures the streamed candidate pool.
type PoolSpec struct {
	// Shard is the number of candidates scored per slab (default 4096);
	// peak pool memory is proportional to it.
	Shard int `json:"shard,omitempty"`
	// TopK is the shortlist size handed to the policy (default 64).
	TopK int `json:"top_k,omitempty"`
	// Approx enables upper-bound shard pruning: shards whose best possible
	// rank cannot reach the current k-th best are skipped. Exact for
	// σ-monotone ranks (maxsigma); bounded-staleness otherwise (see
	// RefreshEvery and DESIGN.md).
	Approx bool `json:"approx,omitempty"`
	// RefreshEvery forces a full un-pruned rescore every k-th iteration in
	// approximate mode (default 16), bounding prune-bound staleness.
	RefreshEvery int `json:"refresh_every,omitempty"`
}

// BatchSelectSpec enables q-batch selection in replay mode.
type BatchSelectSpec struct {
	Q        int    `json:"q"`
	Strategy string `json:"strategy,omitempty"` // default "independent"
}

// LabSpec names a registered lab plus its construction parameters.
type LabSpec struct {
	Name     string  `json:"name"`
	RefNx    int     `json:"ref_nx,omitempty"`
	RefTEnd  float64 `json:"ref_t_end,omitempty"`
	RefSnaps int     `json:"ref_snaps,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	// Remote-lab ("remote") parameters: the TCP address the dispatcher
	// listens on for al-worker connections ("127.0.0.1:0" picks a free
	// port), how many workers must connect before the campaign starts, the
	// heartbeat deadline after which a silent worker is declared lost, and
	// how long a dispatch waits for any live worker before charging a
	// retryable fault.
	Listen       string  `json:"listen,omitempty"`
	MinWorkers   int     `json:"min_workers,omitempty"`
	HeartbeatSec float64 `json:"heartbeat_sec,omitempty"`
	WaitSec      float64 `json:"wait_sec,omitempty"`
	// RSSLimitMB makes the remote fleet enforce an OOM kill threshold:
	// workers report jobs whose MaxRSS reaches it as censored observations.
	RSSLimitMB float64 `json:"rss_limit_mb,omitempty"`
}

// OnlineSpec holds the online-mode parameters.
type OnlineSpec struct {
	Lab             LabSpec         `json:"lab"`
	MaxExperiments  int             `json:"max_experiments,omitempty"`
	Budget          float64         `json:"budget,omitempty"`
	MaxAttempts     int             `json:"max_attempts,omitempty"`
	CheckpointPath  string          `json:"checkpoint_path,omitempty"`
	CheckpointEvery int             `json:"checkpoint_every,omitempty"`
	InitDesign      []dataset.Combo `json:"init_design,omitempty"`
}

// Validate checks the spec's structure and that every name it references is
// registered (lab names are deferred to BuildLab, since labs register from
// higher layers).
func (s *CampaignSpec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("engine: spec version %d, this build understands %d", s.Version, SpecVersion)
	}
	switch s.Mode {
	case ModeReplay:
		if s.Replay == nil {
			return fmt.Errorf("engine: replay spec needs a %q section", "replay")
		}
		if s.Online != nil {
			return fmt.Errorf("engine: replay spec must not carry an %q section", "online")
		}
		if s.Replay.NInit < 1 {
			return fmt.Errorf("engine: replay spec needs n_init >= 1, got %d", s.Replay.NInit)
		}
		if b := s.Replay.Batch; b != nil {
			if b.Q < 1 {
				return fmt.Errorf("engine: batch spec needs q >= 1, got %d", b.Q)
			}
			if b.Strategy != "" {
				if _, err := BuildStrategy(b.Strategy); err != nil {
					return err
				}
			}
		}
		if p := s.Replay.Pool; p != nil {
			if s.Replay.Batch != nil {
				return fmt.Errorf("engine: streamed pool and batch selection are mutually exclusive")
			}
			if p.Shard < 0 || p.TopK < 0 || p.RefreshEvery < 0 {
				return fmt.Errorf("engine: pool spec fields must be >= 0")
			}
			if _, ok := rankerFor(s.Policy.Name); !ok {
				return fmt.Errorf("engine: policy %q is not shortlist-safe; the streamed pool supports: %s",
					s.Policy.Name, strings.Join(RankerNames(), ", "))
			}
		}
	case ModeOnline:
		if s.Online == nil {
			return fmt.Errorf("engine: online spec needs an %q section", "online")
		}
		if s.Replay != nil {
			return fmt.Errorf("engine: online spec must not carry a %q section", "replay")
		}
		if s.Online.Lab.Name == "" {
			return fmt.Errorf("engine: online spec needs a lab name")
		}
	default:
		return fmt.Errorf("engine: unknown mode %q (want %q or %q)", s.Mode, ModeReplay, ModeOnline)
	}
	if _, err := BuildPolicy(s.Policy); err != nil {
		return err
	}
	if s.Kernel != nil {
		if _, err := BuildKernel(*s.Kernel); err != nil {
			return err
		}
	}
	if s.Model != nil {
		if err := validateModelSpec(s.Model); err != nil {
			return err
		}
	}
	if s.Fidelity != nil {
		if err := s.Fidelity.Validate(); err != nil {
			return err
		}
		if s.Model != nil && s.Model.Name != "" && normName(s.Model.Name) != ModelMultiFid {
			return fmt.Errorf("engine: fidelity campaigns need the %q model, got %q", ModelMultiFid, s.Model.Name)
		}
		if s.Mode == ModeReplay && s.Replay.Batch != nil {
			return fmt.Errorf("engine: fidelity campaigns do not support batch selection")
		}
		if s.Kernel != nil && normName(s.Kernel.Name) == "ard-rbf" && len(s.Kernel.LengthScales) != dataset.NumFeatures-1 {
			return fmt.Errorf("engine: fidelity surrogates strip the fidelity column: ard-rbf needs %d length_scales, got %d",
				dataset.NumFeatures-1, len(s.Kernel.LengthScales))
		}
	} else {
		if s.Model != nil && normName(s.Model.Name) == ModelMultiFid {
			return fmt.Errorf("engine: model %q needs a %q section", ModelMultiFid, "fidelity")
		}
		if isCostPerInfo(s.Policy.Name) {
			return fmt.Errorf("engine: policy %q needs a %q section", s.Policy.Name, "fidelity")
		}
	}
	if s.MemLimitMB < 0 {
		return fmt.Errorf("engine: mem_limit_mb must be >= 0, got %g", s.MemLimitMB)
	}
	if s.MemLimitMB > 0 && s.MemLimitPaperRule {
		return fmt.Errorf("engine: mem_limit_mb and mem_limit_paper_rule are mutually exclusive")
	}
	return nil
}

// ParseCampaignSpec decodes and validates a spec. Unknown fields are
// rejected so typos fail loudly instead of silently running defaults.
func ParseCampaignSpec(data []byte) (CampaignSpec, error) {
	var s CampaignSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return CampaignSpec{}, fmt.Errorf("engine: decoding campaign spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return CampaignSpec{}, err
	}
	return s, nil
}

// LoadCampaignSpec reads and validates a spec file.
func LoadCampaignSpec(path string) (CampaignSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return CampaignSpec{}, fmt.Errorf("engine: reading campaign spec: %w", err)
	}
	return ParseCampaignSpec(data)
}

// Marshal serializes the spec in the canonical form (indented, trailing
// newline). Marshal∘Parse∘Marshal is byte-stable.
func (s *CampaignSpec) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("engine: encoding campaign spec: %w", err)
	}
	return append(data, '\n'), nil
}

// PaperMemLimitMB computes the memory limit the paper's evaluation uses:
// 95% of the largest log-transformed memory response. The transformation the
// paper's two stated equivalences are consistent with is log10 of the
// response in bytes, giving L_mem = (max bytes)^0.95 ≈ 42% of the largest
// raw response for Table I's dataset.
func PaperMemLimitMB(ds *dataset.Dataset) float64 {
	maxMB := stats.Max(ds.Mem(nil))
	maxBytes := maxMB * (1 << 20)
	return math.Pow(10, 0.95*math.Log10(maxBytes)) / (1 << 20)
}

// ReplayPlan materializes the partition and loop configuration a
// replay-mode spec describes against the dataset. Commands use it to report
// derived values (e.g. the paper-rule limit) before running.
func (s *CampaignSpec) ReplayPlan(ds *dataset.Dataset) (dataset.Partition, LoopConfig, error) {
	if err := s.Validate(); err != nil {
		return dataset.Partition{}, LoopConfig{}, err
	}
	if s.Mode != ModeReplay {
		return dataset.Partition{}, LoopConfig{}, fmt.Errorf("engine: ReplayPlan needs a replay spec, got mode %q", s.Mode)
	}
	r := s.Replay
	nTest := r.NTest
	if nTest <= 0 {
		nTest = 200
	}
	pseed := r.PartitionSeed
	if pseed == 0 {
		pseed = s.Seed
	}
	var part dataset.Partition
	var err error
	if s.Fidelity != nil {
		// Fidelity-aware split: Test drawn from the top rung only, Init
		// seeded per rung. The dataset must already be ladder-only (callers
		// filter with FidelitySpec.Filter; runReplaySpecCtx does this), so
		// Trajectory.Selected indices refer to the filtered dataset.
		part, err = s.Fidelity.split(ds, r.NInit, nTest, rand.New(rand.NewSource(pseed)))
	} else {
		part, err = dataset.Split(ds, r.NInit, nTest, rand.New(rand.NewSource(pseed)))
	}
	if err != nil {
		return dataset.Partition{}, LoopConfig{}, err
	}

	pol, err := BuildPolicy(s.Policy)
	if err != nil {
		return dataset.Partition{}, LoopConfig{}, err
	}
	cfg := LoopConfig{
		Policy:        pol,
		Seed:          s.Seed,
		MaxIterations: s.MaxIterations,
		HyperoptEvery: s.HyperoptEvery,
		Log2P:         s.Log2P,
		DirectScoring: r.DirectScoring,
		Model:         s.Model,
		Pool:          r.Pool,
		Fidelity:      s.Fidelity,
	}
	if s.Kernel != nil {
		k, err := BuildKernel(*s.Kernel)
		if err != nil {
			return dataset.Partition{}, LoopConfig{}, err
		}
		cfg.Kernel = k
	}
	switch {
	case s.MemLimitPaperRule:
		cfg.MemLimitMB = PaperMemLimitMB(ds)
	case s.MemLimitMB > 0:
		cfg.MemLimitMB = s.MemLimitMB
	}
	if r.Stable != nil {
		// Copy: the loop writes defaults into the struct, and one spec may
		// be run many times (sweeps).
		st := *r.Stable
		cfg.Stable = &st
	}
	return part, cfg, nil
}

// RunReplaySpec materializes and executes a replay-mode campaign spec.
func RunReplaySpec(ds *dataset.Dataset, spec CampaignSpec) (*Trajectory, error) {
	return RunReplaySpecScoped(ds, spec, nil)
}

// RunReplaySpecScoped is RunReplaySpec with a per-campaign obs scope
// attached (Sweep passes each item's scope through here).
func RunReplaySpecScoped(ds *dataset.Dataset, spec CampaignSpec, scope *CampaignObs) (*Trajectory, error) {
	return runReplaySpecCtx(nil, ds, spec, scope)
}

// ReplaySpecItem wraps a replay spec as one sweep campaign. The item ID is
// the spec name (or the policy/seed pair when unnamed).
func ReplaySpecItem(ds *dataset.Dataset, spec CampaignSpec) SweepItem {
	id := spec.Name
	if id == "" {
		id = fmt.Sprintf("%s/seed=%d", spec.Policy.Name, spec.Seed)
	}
	return SweepItem{
		ID: id,
		Run: func(scope *CampaignObs) (any, error) {
			return RunReplaySpecScoped(ds, spec, scope)
		},
	}
}

// SweepReplaySpecs executes a grid of replay specs across the worker pool
// and returns the trajectories in spec order.
func SweepReplaySpecs(ds *dataset.Dataset, specs []CampaignSpec, workers int) ([]*Trajectory, error) {
	items := make([]SweepItem, len(specs))
	for i, spec := range specs {
		items[i] = ReplaySpecItem(ds, spec)
	}
	results, err := Sweep(SweepConfig{Workers: workers, Items: items})
	trs := make([]*Trajectory, len(results))
	for i, r := range results {
		if tr, ok := r.Value.(*Trajectory); ok {
			trs[i] = tr
		}
	}
	return trs, err
}
