package engine

import (
	"math"
	"math/rand"
)

// ExpectedImprovement is a Bayesian-optimization acquisition baseline: it
// selects the candidate maximizing the expected improvement over the best
// (lowest-cost) observation so far, treating the cost model as the objective
// to *minimize*. The paper (§II-C) argues this is the wrong goal for
// performance modeling — BO localizes sampling around the optimum instead of
// building a globally accurate surrogate — and this policy exists to
// demonstrate exactly that failure mode in the evaluation harness.
type ExpectedImprovement struct {
	// Xi is the exploration margin ξ (default 0.01 in log10 cost units).
	Xi float64
}

// Name implements Policy.
func (ExpectedImprovement) Name() string { return "ExpectedImprovement" }

// Select implements Policy. The incumbent is the smallest predicted mean
// among candidates (a pool-based stand-in for the best observation, which
// the policy does not see directly).
func (p ExpectedImprovement) Select(c *Candidates, rng *rand.Rand) (int, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	xi := p.Xi
	if xi <= 0 {
		xi = 0.01
	}
	best := math.Inf(1)
	for _, m := range c.MuCost {
		if m < best {
			best = m
		}
	}
	bestEI, bestIdx := math.Inf(-1), 0
	for i := range c.MuCost {
		ei := expectedImprovement(best-xi, c.MuCost[i], c.SigmaCost[i])
		if ei > bestEI {
			bestEI, bestIdx = ei, i
		}
	}
	return bestIdx, nil
}

// expectedImprovement computes E[max(target − Y, 0)] for Y ~ N(mu, sigma²).
func expectedImprovement(target, mu, sigma float64) float64 {
	if sigma <= 0 {
		if mu < target {
			return target - mu
		}
		return 0
	}
	z := (target - mu) / sigma
	return (target-mu)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
