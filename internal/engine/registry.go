package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"alamr/internal/dataset"
	"alamr/internal/kernel"
)

// The registries map spec names to constructors so campaigns are fully
// describable as data (CampaignSpec) and commands shrink to flag→spec
// translation. All registries are safe for concurrent use; names are
// case-insensitive. Registration normally happens from init functions —
// engine registers its own builtins below, internal/online contributes the
// "sim" lab.

var (
	regMu       sync.RWMutex
	policyReg   = map[string]func(PolicySpec) (Policy, error){}
	kernelReg   = map[string]func(KernelSpec) (kernel.Kernel, error){}
	strategyReg = map[string]BatchStrategy{}
	labReg      = map[string]func(LabSpec, LabDeps) (Lab, error){}
)

// LabDeps carries the runtime dependencies a lab constructor may need
// beyond its spec — notably the offline dataset for the replay lab.
type LabDeps struct {
	Dataset *dataset.Dataset
}

func normName(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// RegisterPolicy adds (or replaces) a policy constructor under name.
func RegisterPolicy(name string, build func(PolicySpec) (Policy, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	policyReg[normName(name)] = build
}

// RegisterKernel adds (or replaces) a kernel constructor under name.
func RegisterKernel(name string, build func(KernelSpec) (kernel.Kernel, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	kernelReg[normName(name)] = build
}

// RegisterStrategy adds (or replaces) a batch-strategy name.
func RegisterStrategy(name string, s BatchStrategy) {
	regMu.Lock()
	defer regMu.Unlock()
	strategyReg[normName(name)] = s
}

// RegisterLab adds (or replaces) a lab constructor under name.
func RegisterLab(name string, build func(LabSpec, LabDeps) (Lab, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	labReg[normName(name)] = build
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(policyReg)
}

// KernelNames lists the registered kernel names, sorted.
func KernelNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(kernelReg)
}

// StrategyNames lists the registered batch-strategy names, sorted.
func StrategyNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(strategyReg)
}

// LabNames lists the registered lab names, sorted.
func LabNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(labReg)
}

// BuildPolicy constructs the policy a spec names. Unknown names report the
// registered alternatives.
func BuildPolicy(s PolicySpec) (Policy, error) {
	regMu.RLock()
	build, ok := policyReg[normName(s.Name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown policy %q (registered: %s)", s.Name, strings.Join(PolicyNames(), ", "))
	}
	return build(s)
}

// BuildKernel constructs the kernel a spec names.
func BuildKernel(s KernelSpec) (kernel.Kernel, error) {
	regMu.RLock()
	build, ok := kernelReg[normName(s.Name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown kernel %q (registered: %s)", s.Name, strings.Join(KernelNames(), ", "))
	}
	return build(s)
}

// BuildStrategy resolves a batch-strategy name.
func BuildStrategy(name string) (BatchStrategy, error) {
	regMu.RLock()
	s, ok := strategyReg[normName(name)]
	regMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("engine: unknown batch strategy %q (registered: %s)", name, strings.Join(StrategyNames(), ", "))
	}
	return s, nil
}

// LabRegistered reports whether a lab name resolves in the registry without
// constructing the lab (construction can have side effects — the "remote"
// lab binds a listener). Unknown names report the registered alternatives,
// with the same message BuildLab would produce.
func LabRegistered(name string) error {
	regMu.RLock()
	_, ok := labReg[normName(name)]
	regMu.RUnlock()
	if !ok {
		return fmt.Errorf("engine: unknown lab %q (registered: %s)", name, strings.Join(LabNames(), ", "))
	}
	return nil
}

// BuildLab constructs the lab a spec names. The "sim" lab registers from
// internal/online; "replay" is built in and requires deps.Dataset.
func BuildLab(s LabSpec, deps LabDeps) (Lab, error) {
	regMu.RLock()
	build, ok := labReg[normName(s.Name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown lab %q (registered: %s)", s.Name, strings.Join(LabNames(), ", "))
	}
	return build(s, deps)
}

func init() {
	simple := func(p Policy) func(PolicySpec) (Policy, error) {
		return func(PolicySpec) (Policy, error) { return p, nil }
	}
	RegisterPolicy("randuniform", simple(RandUniform{}))
	RegisterPolicy("uniform", simple(RandUniform{}))
	RegisterPolicy("maxsigma", simple(MaxSigma{}))
	RegisterPolicy("minpred", simple(MinPred{}))
	RegisterPolicy("randgoodness", func(s PolicySpec) (Policy, error) { return RandGoodness{Base: s.Base}, nil })
	RegisterPolicy("goodness", func(s PolicySpec) (Policy, error) { return RandGoodness{Base: s.Base}, nil })
	RegisterPolicy("rgma", func(s PolicySpec) (Policy, error) { return RGMA{Base: s.Base}, nil })
	RegisterPolicy("expectedimprovement", func(s PolicySpec) (Policy, error) { return ExpectedImprovement{Xi: s.Xi}, nil })
	RegisterPolicy("ei", func(s PolicySpec) (Policy, error) { return ExpectedImprovement{Xi: s.Xi}, nil })

	RegisterKernel("rbf", func(s KernelSpec) (kernel.Kernel, error) {
		ls, amp := s.LengthScale, s.Amplitude
		if ls <= 0 {
			ls = 0.5
		}
		if amp <= 0 {
			amp = 1
		}
		return kernel.NewRBF(ls, amp), nil
	})
	RegisterKernel("ard-rbf", func(s KernelSpec) (kernel.Kernel, error) {
		if len(s.LengthScales) == 0 {
			return nil, errors.New("engine: kernel ard-rbf needs length_scales")
		}
		amp := s.Amplitude
		if amp <= 0 {
			amp = 1
		}
		return kernel.NewARDRBF(s.LengthScales, amp), nil
	})
	matern := func(nu float64) func(KernelSpec) (kernel.Kernel, error) {
		return func(s KernelSpec) (kernel.Kernel, error) {
			ls, amp := s.LengthScale, s.Amplitude
			if ls <= 0 {
				ls = 0.5
			}
			if amp <= 0 {
				amp = 1
			}
			return kernel.NewMatern(nu, ls, amp), nil
		}
	}
	RegisterKernel("matern32", matern(1.5))
	RegisterKernel("matern52", matern(2.5))

	RegisterStrategy("independent", BatchIndependent)
	RegisterStrategy("constant-liar", BatchConstantLiar)
	RegisterStrategy("constant_liar", BatchConstantLiar)

	RegisterLab("replay", func(_ LabSpec, deps LabDeps) (Lab, error) {
		if deps.Dataset == nil {
			return nil, errors.New("engine: the replay lab needs LabDeps.Dataset")
		}
		return NewReplayLab(deps.Dataset), nil
	})
}
