package engine

import (
	"math"
	"testing"
)

// Moved from core when the EI policy moved into the engine (PR 5): the
// closed-form checks of the acquisition function's internals.
func TestExpectedImprovementMath(t *testing.T) {
	// Degenerate sigma: EI = max(target-mu, 0).
	if got := expectedImprovement(1, 0.5, 0); got != 0.5 {
		t.Fatalf("EI = %g want 0.5", got)
	}
	if got := expectedImprovement(1, 2, 0); got != 0 {
		t.Fatalf("EI = %g want 0", got)
	}
	// Symmetric case: target == mu → EI = sigma/sqrt(2π).
	want := 0.7 / math.Sqrt(2*math.Pi)
	if got := expectedImprovement(0, 0, 0.7); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EI = %g want %g", got, want)
	}
	// CDF sanity.
	if math.Abs(stdNormCDF(0)-0.5) > 1e-12 {
		t.Fatal("CDF(0) != 0.5")
	}
	if stdNormCDF(5) < 0.999 || stdNormCDF(-5) > 0.001 {
		t.Fatal("CDF tails wrong")
	}
}
