package engine

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// streamWorkerCounts is the axis the worker-invariance tests sweep:
// serial reference, two lanes, four lanes, and whatever this machine
// would use by default, deduplicated and sorted.
func streamWorkerCounts() []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if w >= 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// streamFamilyFixture is streamFixture generalized over the surrogate
// family: the same synthetic data fit through the exact, sparse, or treed
// model so the parallel scoring path is exercised against every
// PredictIntoSerial implementation.
func streamFamilyFixture(t testing.TB, family string, seed int64, n, m int) (cost, mem gp.Model, pool *mat.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, 3, nil)
	yc := make([]float64, n)
	ym := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.Float64()*2)
		}
		yc[i] = x.Row(i)[0]*1.3 - x.Row(i)[1] + 0.2*rng.NormFloat64()
		ym[i] = x.Row(i)[2] * 0.7
	}
	build := func() gp.Model {
		cfg := gp.Config{Noise: 0.1, NoOptimize: true}
		switch family {
		case "sparse":
			return gp.NewSparse(kernel.NewRBF(0.8, 1), cfg, 16)
		case "treed":
			return gp.NewTreed(kernel.NewRBF(0.8, 1), cfg, 24)
		default:
			return gp.New(kernel.NewRBF(0.8, 1), cfg)
		}
	}
	cost, mem = build(), build()
	if err := cost.Fit(x, yc); err != nil {
		t.Fatal(err)
	}
	if err := mem.Fit(x, ym); err != nil {
		t.Fatal(err)
	}
	pool = mat.NewDense(m, 3, nil)
	for i := 0; i < m; i++ {
		for j := 0; j < 3; j++ {
			pool.Set(i, j, rng.Float64()*2)
		}
	}
	return cost, mem, pool
}

// shortlistRecord snapshots one Select result: ids in order plus all four
// score fields, the exact surface the acceptance criterion pins.
func shortlistRecord(c *Candidates, ids []int) []streamEntry {
	rec := make([]streamEntry, len(ids))
	for i := range ids {
		rec[i] = streamEntry{
			id:  ids[i],
			muC: c.MuCost[i], sigC: c.SigmaCost[i],
			muM: c.MuMem[i], sigM: c.SigmaMem[i],
		}
	}
	return rec
}

// runStreamScript executes a deterministic multi-round Select / Remove /
// Append schedule at a given worker count, rebuilding the models from
// scratch so every run starts from an identical posterior, and returns the
// per-round shortlist records. Round 2 invalidates the prune bounds the
// way the replay loop does after a hyperparameter refit.
func runStreamScript(t *testing.T, family, rankName string, approx bool, workers int) [][]streamEntry {
	t.Helper()
	prev := mat.SetWorkers(workers)
	defer mat.SetWorkers(prev)
	cost, mem, pool := streamFamilyFixture(t, family, 77, 40, 500)
	rank, ok := rankerFor(rankName)
	if !ok {
		t.Fatalf("unknown ranker %q", rankName)
	}
	st := NewStreamState(DenseSource{X: pool}, cost, mem, StreamConfig{
		ShardSize: 64, TopK: 8, Approx: approx, RefreshEvery: 3,
		Rank: rank, NonMonotoneRank: !rankerIsMonotone(rankName),
	})
	rng := rand.New(rand.NewSource(99))
	var script [][]streamEntry
	for round := 0; round < 5; round++ {
		c, ids := st.Select()
		script = append(script, shortlistRecord(c, ids))
		pick := ids[0]
		st.Remove(pick)
		y := rng.NormFloat64()
		if err := cost.Append(pool.Row(pick), y); err != nil {
			t.Fatal(err)
		}
		if err := mem.Append(pool.Row(pick), 0.5*y); err != nil {
			t.Fatal(err)
		}
		if round == 2 {
			st.InvalidateBounds() // the post-refit reset the replay loop performs
		}
	}
	return script
}

// TestStreamSelectWorkerCountInvariant is the tentpole acceptance pin: for
// every surrogate family, both ranker classes (σ-monotone maxsigma, mean-
// coupled minpred), with pruning on and off, the shortlist — ids, order,
// and all four score fields, bitwise — is identical at every worker count.
// Runs under -race via the race make target, which also makes it the data-
// race pin for the parallel lanes.
func TestStreamSelectWorkerCountInvariant(t *testing.T) {
	counts := streamWorkerCounts()
	for _, family := range []string{"exact", "sparse", "treed"} {
		for _, rankName := range []string{"maxsigma", "minpred"} {
			for _, approx := range []bool{false, true} {
				want := runStreamScript(t, family, rankName, approx, counts[0])
				for _, w := range counts[1:] {
					got := runStreamScript(t, family, rankName, approx, w)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s approx=%v: shortlists at %d workers diverge from %d workers",
							family, rankName, approx, w, counts[0])
					}
				}
			}
		}
	}
}

// runResumeScript is runStreamScript's checkpoint-resume variant: at round
// rebuildAt (if >= 0) the StreamState is discarded and rebuilt from
// scratch — the restore path, which persists only the tombstone set — and
// every tombstone is re-applied before the schedule continues.
func runResumeScript(t *testing.T, rankName string, approx bool, workers, rebuildAt int) [][]streamEntry {
	t.Helper()
	prev := mat.SetWorkers(workers)
	defer mat.SetWorkers(prev)
	cost, mem, pool := streamFamilyFixture(t, "exact", 78, 40, 400)
	rank, _ := rankerFor(rankName)
	cfg := StreamConfig{
		ShardSize: 64, TopK: 8, Approx: approx, RefreshEvery: 1 << 20,
		Rank: rank, NonMonotoneRank: !rankerIsMonotone(rankName),
	}
	st := NewStreamState(DenseSource{X: pool}, cost, mem, cfg)
	rng := rand.New(rand.NewSource(101))
	var tombstones []int
	var script [][]streamEntry
	for round := 0; round < 6; round++ {
		if round == rebuildAt {
			st = NewStreamState(DenseSource{X: pool}, cost, mem, cfg)
			for _, id := range tombstones {
				st.Remove(id)
			}
		}
		c, ids := st.Select()
		script = append(script, shortlistRecord(c, ids))
		pick := ids[0]
		st.Remove(pick)
		tombstones = append(tombstones, pick)
		y := rng.NormFloat64()
		if err := cost.Append(pool.Row(pick), y); err != nil {
			t.Fatal(err)
		}
		if err := mem.Append(pool.Row(pick), 0.5*y); err != nil {
			t.Fatal(err)
		}
	}
	return script
}

// TestStreamStateRebuildMatches: a StreamState rebuilt mid-campaign from
// the tombstone set alone (the checkpoint-resume path — prune bounds and
// the previous k-th rank are not persisted) continues the identical
// shortlist sequence, at every worker count. For the σ-monotone rank this
// holds even with pruning enabled, because pruning is exact there; for the
// mean-coupled rank it holds in exact mode, where the prune threshold is
// never consulted.
func TestStreamStateRebuildMatches(t *testing.T) {
	cases := []struct {
		rankName string
		approx   bool
	}{
		{"maxsigma", true},
		{"minpred", false},
	}
	for _, tc := range cases {
		want := runResumeScript(t, tc.rankName, tc.approx, 1, -1)
		for _, w := range streamWorkerCounts() {
			got := runResumeScript(t, tc.rankName, tc.approx, w, 3)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s approx=%v: resumed run at %d workers diverges from uninterrupted serial run",
					tc.rankName, tc.approx, w)
			}
		}
	}
}

// TestStreamedReplayWorkerCountInvariant runs full streamed replay
// campaigns — hyperopt refits included (HyperoptEvery 5 over 12
// iterations) — and requires the whole trajectory to be identical at every
// worker count. This covers the end-to-end loop: fit, refit with bound
// invalidation, parallel Select, shortlist translation, feedback.
func TestStreamedReplayWorkerCountInvariant(t *testing.T) {
	ds := synthDS(150, 60)
	specs := map[string]CampaignSpec{}
	maxs := replaySpec("wc/maxsigma", "maxsigma", 9, 10, 12)
	maxs.Replay.Pool = &PoolSpec{Shard: 16, TopK: 4, Approx: true, RefreshEvery: 1 << 20}
	specs["maxsigma"] = maxs
	minp := replaySpec("wc/minpred", "minpred", 9, 10, 12)
	minp.Replay.Pool = &PoolSpec{Shard: 16, TopK: 4, Approx: true, RefreshEvery: 4}
	specs["minpred"] = minp

	for name, spec := range specs {
		var want *Trajectory
		for i, w := range streamWorkerCounts() {
			prev := mat.SetWorkers(w)
			got, err := RunReplaySpec(ds, spec)
			mat.SetWorkers(prev)
			if err != nil {
				t.Fatalf("%s at %d workers: %v", name, w, err)
			}
			if i == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: trajectory at %d workers diverges from serial", name, w)
			}
		}
	}
}

// TestGridSourceSingleAxis: the degenerate one-dimensional grid decodes to
// the axis itself, across unaligned Fill windows.
func TestGridSourceSingleAxis(t *testing.T) {
	ax := []float64{-1, 0, 2.5, 7, 11}
	src := GridSource{Axes: [][]float64{ax}}
	if src.Len() != 5 || src.Dim() != 1 {
		t.Fatalf("Len=%d Dim=%d, want 5 and 1", src.Len(), src.Dim())
	}
	dst := mat.NewDense(3, 1, nil)
	src.Fill(2, 5, dst)
	for i := 0; i < 3; i++ {
		if dst.Row(i)[0] != ax[2+i] {
			t.Fatalf("candidate %d decoded to %v, want %v", 2+i, dst.Row(i)[0], ax[2+i])
		}
	}
}

// TestStreamShardBoundaryAlignment: a pool whose size is an exact multiple
// of the shard size (no tail shard) and one with a single-candidate tail
// shard both produce the exact top-k, serial and parallel.
func TestStreamShardBoundaryAlignment(t *testing.T) {
	rank, _ := rankerFor("maxsigma")
	for _, m := range []int{256, 257} { // 256: boundary exactly at pool end; 257: 1-row tail
		cost, mem, pool := streamFixture(t, 61, 40, m)
		want := bruteTopK(cost, mem, pool, nil, rank, 10)
		for _, w := range streamWorkerCounts() {
			prev := mat.SetWorkers(w)
			st := NewStreamState(DenseSource{X: pool}, cost, mem,
				StreamConfig{ShardSize: 64, TopK: 10, Rank: rank})
			c, ids := st.Select()
			mat.SetWorkers(prev)
			checkShortlist(t, "boundary", c, ids, want)
		}
	}
}

// TestStreamRemoveLastLiveInShard: tombstoning every candidate of a shard
// leaves its prune bound valid — the next scoring pass records -Inf, the
// shard prunes forever after, and the shortlist stays exact.
func TestStreamRemoveLastLiveInShard(t *testing.T) {
	cost, mem, pool := streamFixture(t, 62, 40, 128)
	rank, _ := rankerFor("maxsigma")
	st := NewStreamState(DenseSource{X: pool}, cost, mem, StreamConfig{
		ShardSize: 32, TopK: 6, Approx: true, RefreshEvery: 1 << 20, Rank: rank,
	})
	removed := map[int]bool{}
	c, ids := st.Select() // primes the bounds
	checkShortlist(t, "primed", c, ids, bruteTopK(cost, mem, pool, removed, rank, 6))
	for id := 32; id < 64; id++ { // empty out shard 1 entirely
		st.Remove(id)
		removed[id] = true
	}
	st.InvalidateBounds() // force a full rescore so shard 1 is certainly revisited
	c, ids = st.Select()  // rescores shard 1, observes it empty
	checkShortlist(t, "emptied", c, ids, bruteTopK(cost, mem, pool, removed, rank, 6))
	if !math.IsInf(st.prevBest[1], -1) {
		t.Fatalf("empty shard bound %g, want -Inf", st.prevBest[1])
	}
	if st.Live() != 128-32 {
		t.Fatalf("live %d, want %d", st.Live(), 128-32)
	}
	c, ids = st.Select() // -Inf bound must prune, not corrupt, the empty shard
	checkShortlist(t, "pruned", c, ids, bruteTopK(cost, mem, pool, removed, rank, 6))
}
