package engine

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
	"alamr/internal/obs"
)

// streamFixture fits two small exact GPs and builds a random candidate
// pool, the minimal ingredients for exercising StreamState directly.
func streamFixture(t testing.TB, seed int64, n, m int) (cost, mem gp.Model, pool *mat.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, 3, nil)
	yc := make([]float64, n)
	ym := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.Float64()*2)
		}
		yc[i] = x.Row(i)[0]*1.3 - x.Row(i)[1] + 0.2*rng.NormFloat64()
		ym[i] = x.Row(i)[2] * 0.7
	}
	gc := gp.New(kernel.NewRBF(0.8, 1), gp.Config{Noise: 0.1, NoOptimize: true})
	gm := gp.New(kernel.NewRBF(0.8, 1), gp.Config{Noise: 0.1, NoOptimize: true})
	if err := gc.Fit(x, yc); err != nil {
		t.Fatal(err)
	}
	if err := gm.Fit(x, ym); err != nil {
		t.Fatal(err)
	}
	pool = mat.NewDense(m, 3, nil)
	for i := 0; i < m; i++ {
		for j := 0; j < 3; j++ {
			pool.Set(i, j, rng.Float64()*2)
		}
	}
	return gc, gm, pool
}

// bruteTopK is the reference: score the whole pool, rank every live
// candidate, sort by (rank desc, id asc), truncate to k.
func bruteTopK(cost, mem gp.Model, pool *mat.Dense, removed map[int]bool, rank RankFunc, k int) []streamEntry {
	muC, sigC := cost.Predict(pool)
	muM, sigM := mem.Predict(pool)
	var all []streamEntry
	for i := 0; i < pool.Rows(); i++ {
		if removed[i] {
			continue
		}
		all = append(all, streamEntry{
			id: i, rank: rank(muC[i], sigC[i], muM[i], sigM[i]),
			muC: muC[i], sigC: sigC[i], muM: muM[i], sigM: sigM[i],
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].better(all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func checkShortlist(t *testing.T, tag string, c *Candidates, ids []int, want []streamEntry) {
	t.Helper()
	if len(ids) != len(want) {
		t.Fatalf("%s: shortlist has %d entries, want %d", tag, len(ids), len(want))
	}
	for i, w := range want {
		if ids[i] != w.id {
			t.Fatalf("%s: shortlist[%d] = id %d, want %d", tag, i, ids[i], w.id)
		}
		if c.MuCost[i] != w.muC || c.SigmaCost[i] != w.sigC || c.MuMem[i] != w.muM || c.SigmaMem[i] != w.sigM {
			t.Fatalf("%s: shortlist[%d] scores diverge from full-pool Predict", tag, i)
		}
	}
}

// TestStreamSelectExactTopK: the sharded heap-merge shortlist is the exact
// top-k a full materialized scan would produce — same ids, same order,
// bitwise-same scores — across removals and shard-boundary sizes.
func TestStreamSelectExactTopK(t *testing.T) {
	cost, mem, pool := streamFixture(t, 21, 40, 501) // 501: a partial tail shard
	rank, _ := rankerFor("maxsigma")
	st := NewStreamState(DenseSource{X: pool}, cost, mem, StreamConfig{ShardSize: 64, TopK: 10, Rank: rank})
	removed := map[int]bool{}
	for round := 0; round < 4; round++ {
		c, ids := st.Select()
		checkShortlist(t, "round", c, ids, bruteTopK(cost, mem, pool, removed, rank, 10))
		// Remove the winner plus an arbitrary mid candidate, as a loop would.
		for _, id := range []int{ids[0], ids[len(ids)/2]} {
			st.Remove(id)
			removed[id] = true
		}
	}
	if st.Live() != pool.Rows()-8 {
		t.Fatalf("live %d, want %d", st.Live(), pool.Rows()-8)
	}
}

// TestStreamApproxExactForSigmaMonotoneRank: with the maxsigma rank the
// per-shard bound is a true upper bound (posterior sigma never increases as
// observations accumulate), so approximate pruning still returns the exact
// top-k across a schedule of appends and removals.
func TestStreamApproxExactForSigmaMonotoneRank(t *testing.T) {
	cost, mem, pool := streamFixture(t, 22, 40, 640)
	rank, _ := rankerFor("maxsigma")
	approx := NewStreamState(DenseSource{X: pool}, cost, mem,
		StreamConfig{ShardSize: 64, TopK: 8, Approx: true, RefreshEvery: 1 << 30, Rank: rank})
	rng := rand.New(rand.NewSource(23))
	removed := map[int]bool{}
	for round := 0; round < 8; round++ {
		c, ids := approx.Select()
		checkShortlist(t, "round", c, ids, bruteTopK(cost, mem, pool, removed, rank, 8))
		pick := ids[0]
		approx.Remove(pick)
		removed[pick] = true
		// Absorb the pick as a new observation; sigma shrinks pool-wide.
		if err := cost.Append(pool.Row(pick), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
		if err := mem.Append(pool.Row(pick), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGridSourceDecode: mixed-radix decoding against an explicitly
// materialized Cartesian product, last axis fastest.
func TestGridSourceDecode(t *testing.T) {
	src := GridSource{Axes: [][]float64{{1, 2}, {10, 20, 30}, {0.5}}}
	if src.Len() != 6 || src.Dim() != 3 {
		t.Fatalf("Len=%d Dim=%d, want 6 and 3", src.Len(), src.Dim())
	}
	var want [][]float64
	for _, a := range []float64{1, 2} {
		for _, b := range []float64{10, 20, 30} {
			want = append(want, []float64{a, b, 0.5})
		}
	}
	// Decode in two unaligned chunks to exercise the lo offset.
	got := mat.NewDense(6, 3, nil)
	src.Fill(0, 4, got)
	chunk := mat.NewDense(2, 3, nil)
	src.Fill(4, 6, chunk)
	copy(got.Row(4), chunk.Row(0))
	copy(got.Row(5), chunk.Row(1))
	for i := range want {
		if !reflect.DeepEqual(got.Row(i), want[i]) {
			t.Fatalf("candidate %d decoded to %v, want %v", i, got.Row(i), want[i])
		}
	}
}

// TestStreamedReplayMatchesMaterialized: a streamed-pool replay campaign
// must produce the identical trajectory to the default materialized pool
// for every shortlist-safe policy — the shortlist argmax is the pool
// argmax.
func TestStreamedReplayMatchesMaterialized(t *testing.T) {
	ds := synthDS(150, 55)
	for _, policy := range []string{"maxsigma", "minpred"} {
		base := replaySpec("mat/"+policy, policy, 5, 10, 6)
		streamed := replaySpec("stream/"+policy, policy, 5, 10, 6)
		streamed.Replay.Pool = &PoolSpec{Shard: 32, TopK: 8}

		want, err := RunReplaySpec(ds, base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunReplaySpec(ds, streamed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %s: streamed trajectory differs from materialized", policy)
		}
	}
}

// TestStreamedReplayApproxMatchesMaterialized: approximate pruning under
// the sigma-monotone maxsigma rank keeps the trajectory exact.
func TestStreamedReplayApproxMatchesMaterialized(t *testing.T) {
	ds := synthDS(150, 56)
	base := replaySpec("mat/approx", "maxsigma", 6, 10, 8)
	streamed := replaySpec("stream/approx", "maxsigma", 6, 10, 8)
	streamed.Replay.Pool = &PoolSpec{Shard: 16, TopK: 4, Approx: true, RefreshEvery: 4}

	want, err := RunReplaySpec(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunReplaySpec(ds, streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("approximate streamed trajectory differs from materialized")
	}
}

// TestStreamedReplayApproxSurvivesHyperopt: a hyperparameter refit can
// raise sigma everywhere at once, breaking the monotone-drift premise the
// prune bounds rest on. With RefreshEvery effectively infinite, exactness
// across the campaign's refits (HyperoptEvery 5, 12 iterations) rests
// entirely on the loop invalidating the bounds after each refit.
func TestStreamedReplayApproxSurvivesHyperopt(t *testing.T) {
	ds := synthDS(150, 58)
	base := replaySpec("mat/hyper", "maxsigma", 9, 10, 12)
	streamed := replaySpec("stream/hyper", "maxsigma", 9, 10, 12)
	streamed.Replay.Pool = &PoolSpec{Shard: 16, TopK: 4, Approx: true, RefreshEvery: 1 << 20}

	want, err := RunReplaySpec(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunReplaySpec(ds, streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("approximate streamed trajectory drifted from materialized across hyperopt refits")
	}
}

// TestInvalidateBoundsForcesRescore: after InvalidateBounds every shard's
// prune bound is +Inf again, so the next Select rescores the whole pool
// even in approximate mode.
func TestInvalidateBoundsForcesRescore(t *testing.T) {
	cost, mem, x := streamFixture(t, 59, 40, 200)
	st := NewStreamState(DenseSource{X: x}, cost, mem, StreamConfig{
		ShardSize: 32, TopK: 4, Approx: true, RefreshEvery: 1 << 20,
	})
	st.Select() // primes the per-shard bounds
	for s, b := range st.prevBest {
		if math.IsInf(b, 1) {
			t.Fatalf("shard %d bound not primed", s)
		}
	}
	st.InvalidateBounds()
	for s, b := range st.prevBest {
		if !math.IsInf(b, 1) {
			t.Fatalf("shard %d bound %g after InvalidateBounds, want +Inf", s, b)
		}
	}
}

// TestSparseModelReplayRuns: a sparse-surrogate streamed campaign runs end
// to end through the spec layer and yields a full trajectory.
func TestSparseModelReplayRuns(t *testing.T) {
	ds := synthDS(200, 57)
	spec := replaySpec("sparse/stream", "maxsigma", 7, 30, 5)
	spec.Model = &ModelSpec{Name: ModelSparse, Inducing: 16}
	spec.Replay.Pool = &PoolSpec{Shard: 32, TopK: 8, Approx: true}
	tr, err := RunReplaySpec(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Iterations() != 5 {
		t.Fatalf("got %d iterations, want 5", tr.Iterations())
	}
	treed := replaySpec("treed/stream", "maxsigma", 7, 30, 5)
	treed.Model = &ModelSpec{Name: ModelTreed, LeafSize: 24}
	treed.Replay.Pool = &PoolSpec{Shard: 32, TopK: 8}
	tr, err = RunReplaySpec(ds, treed)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Iterations() != 5 {
		t.Fatalf("treed: got %d iterations, want 5", tr.Iterations())
	}
}

// TestPoolSpecValidation: the streamed pool composes only with
// shortlist-safe policies and never with batch selection.
func TestPoolSpecValidation(t *testing.T) {
	s := replaySpec("bad/batch", "maxsigma", 1, 5, 3)
	s.Replay.Pool = &PoolSpec{}
	s.Replay.Batch = &BatchSelectSpec{Q: 2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("pool+batch: got %v", err)
	}

	s = replaySpec("bad/policy", "rgma", 1, 5, 3)
	s.Replay.Pool = &PoolSpec{}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "shortlist-safe") {
		t.Fatalf("non-ranker policy: got %v", err)
	}
	for _, name := range RankerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list ranker %q", err, name)
		}
	}

	s = replaySpec("bad/neg", "maxsigma", 1, 5, 3)
	s.Replay.Pool = &PoolSpec{TopK: -1}
	if err := s.Validate(); err == nil {
		t.Fatal("negative top_k accepted")
	}
}

// TestStreamObsReconciles: the scored/pruned counters partition the
// shard-visit count, the live gauge tracks the pool, and the cache-op
// counters record the sparse surrogate's extend traffic.
func TestStreamObsReconciles(t *testing.T) {
	obs.Disable()
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	defer obs.Disable()

	ds := synthDS(200, 58)
	spec := replaySpec("obs/stream", "maxsigma", 9, 20, 6)
	spec.Model = &ModelSpec{Name: ModelSparse, Inducing: 16}
	spec.Replay.Pool = &PoolSpec{Shard: 32, TopK: 8, Approx: true, RefreshEvery: 3}
	if _, err := RunReplaySpec(ds, spec); err != nil {
		t.Fatal(err)
	}

	scored, _ := reg.CounterValue(obs.MetricPoolShardsScored)
	pruned, _ := reg.CounterValue(obs.MetricPoolShardsPruned)
	pool := 200 - 30 - 20 // jobs minus test and init partitions
	nShards := int64((pool + 31) / 32)
	iters := int64(6)
	if scored+pruned != nShards*iters {
		t.Fatalf("scored %d + pruned %d != %d shards x %d selects", scored, pruned, nShards, iters)
	}
	if scored < nShards {
		t.Fatalf("scored %d: the first select can never prune", scored)
	}
	live, ok := reg.GaugeValue(obs.MetricPoolStreamLive)
	if !ok || live != float64(pool-int(iters)+1) {
		// The gauge is set at the start of each Select, before that
		// iteration's pick is removed: pool - (iters-1) picks so far.
		t.Fatalf("live gauge %v (ok=%v), want %d", live, ok, pool-int(iters)+1)
	}
	// The streamed pool scores through the model directly (no attached
	// cache); a materialized sparse campaign exercises the cache-op
	// counters.
	matSpec := replaySpec("obs/mat", "maxsigma", 9, 20, 6)
	matSpec.Model = &ModelSpec{Name: ModelSparse, Inducing: 16}
	if _, err := RunReplaySpec(ds, matSpec); err != nil {
		t.Fatal(err)
	}
	extends, _ := reg.CounterValue(obs.Labeled(obs.MetricModelCacheOps, "kind", obs.ModelCacheSparseExtend))
	rebuilds, _ := reg.CounterValue(obs.Labeled(obs.MetricModelCacheOps, "kind", obs.ModelCacheSparseRebuild))
	if extends == 0 || rebuilds == 0 {
		t.Fatalf("materialized sparse campaign recorded extends=%d rebuilds=%d cache ops", extends, rebuilds)
	}
}
