package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alamr/internal/gp"
	"alamr/internal/kernel"
)

func TestSpecRoundTripByteStable(t *testing.T) {
	specs := []CampaignSpec{
		{
			Version: SpecVersion, Name: "full-replay", Mode: ModeReplay,
			Policy:        PolicySpec{Name: "rgma", Base: 100},
			Kernel:        &KernelSpec{Name: "matern52", LengthScale: 0.4, Amplitude: 2},
			Seed:          9,
			MemLimitMB:    123.5,
			HyperoptEvery: 5, MaxIterations: 30, Log2P: true,
			Replay: &ReplaySpec{
				NInit: 10, NTest: 40, PartitionSeed: 3, DirectScoring: true,
				Stable: &StableStopConfig{Window: 4, Tol: 0.01},
				Batch:  &BatchSelectSpec{Q: 3, Strategy: "constant-liar"},
			},
		},
		{
			Version: SpecVersion, Name: "streamed-sparse", Mode: ModeReplay,
			Policy: PolicySpec{Name: "maxsigma"},
			Model:  &ModelSpec{Name: "sparse", Inducing: 128},
			Seed:   4,
			Replay: &ReplaySpec{
				NInit: 20, NTest: 40,
				Pool: &PoolSpec{Shard: 8192, TopK: 32, Approx: true, RefreshEvery: 8},
			},
		},
		{
			Version: SpecVersion, Name: "treed-model", Mode: ModeReplay,
			Policy: PolicySpec{Name: "minpred"},
			Model:  &ModelSpec{Name: "treed", LeafSize: 256, Rebalance: 3},
			Replay: &ReplaySpec{NInit: 10, NTest: 40},
		},
		{
			Version: SpecVersion, Name: "fidelity-replay", Mode: ModeReplay,
			Policy:   PolicySpec{Name: "costperinfo"},
			Fidelity: &FidelitySpec{Levels: []int{3, 4, 6}, InitPerLevel: 5},
			Seed:     2,
			Replay:   &ReplaySpec{NInit: 15, NTest: 40},
		},
		{
			Version: SpecVersion, Name: "full-online", Mode: ModeOnline,
			Policy:            PolicySpec{Name: "ei", Xi: 0.05},
			MemLimitPaperRule: false, MemLimitMB: 2,
			Online: &OnlineSpec{
				Lab:            LabSpec{Name: "replay"},
				MaxExperiments: 12, Budget: 0.5, MaxAttempts: 4,
				CheckpointEvery: 2,
			},
		},
	}
	for _, spec := range specs {
		spec := spec
		first, err := spec.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseCampaignSpec(first)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		second, err := parsed.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: marshal -> parse -> marshal not byte-stable:\n%s\nvs\n%s", spec.Name, first, second)
		}
		if !reflect.DeepEqual(spec, parsed) {
			t.Fatalf("%s: parsed spec differs: %+v vs %+v", spec.Name, spec, parsed)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseCampaignSpec([]byte(`{"version":1,"mode":"replay","policy":{"name":"rgma"},"replay":{"n_init":5},"bogus":1}`))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	valid := func() CampaignSpec {
		return CampaignSpec{
			Version: SpecVersion, Mode: ModeReplay,
			Policy: PolicySpec{Name: "rgma"},
			Replay: &ReplaySpec{NInit: 5},
		}
	}
	cases := []struct {
		name   string
		mutate func(*CampaignSpec)
		want   string
	}{
		{"bad version", func(s *CampaignSpec) { s.Version = 2 }, "spec version 2"},
		{"bad mode", func(s *CampaignSpec) { s.Mode = "offline" }, "unknown mode"},
		{"missing replay section", func(s *CampaignSpec) { s.Replay = nil }, `needs a "replay" section`},
		{"conflicting sections", func(s *CampaignSpec) { s.Online = &OnlineSpec{Lab: LabSpec{Name: "sim"}} }, `must not carry an "online" section`},
		{"bad n_init", func(s *CampaignSpec) { s.Replay.NInit = 0 }, "n_init >= 1"},
		{"bad batch q", func(s *CampaignSpec) { s.Replay.Batch = &BatchSelectSpec{Q: 0} }, "q >= 1"},
		{"unknown strategy", func(s *CampaignSpec) { s.Replay.Batch = &BatchSelectSpec{Q: 2, Strategy: "psychic"} }, "unknown batch strategy"},
		{"unknown policy", func(s *CampaignSpec) { s.Policy.Name = "zigzag" }, `unknown policy "zigzag"`},
		{"unknown kernel", func(s *CampaignSpec) { s.Kernel = &KernelSpec{Name: "fourier"} }, `unknown kernel "fourier"`},
		{"negative limit", func(s *CampaignSpec) { s.MemLimitMB = -1 }, "mem_limit_mb must be >= 0"},
		{"conflicting limits", func(s *CampaignSpec) { s.MemLimitMB = 1; s.MemLimitPaperRule = true }, "mutually exclusive"},
		{"unknown model", func(s *CampaignSpec) { s.Model = &ModelSpec{Name: "oracle"} }, `unknown model "oracle"`},
		{"negative inducing", func(s *CampaignSpec) { s.Model = &ModelSpec{Name: "sparse", Inducing: -1} }, "inducing must be >= 0"},
		{"online without lab", func(s *CampaignSpec) {
			s.Mode = ModeOnline
			s.Replay = nil
			s.Online = &OnlineSpec{}
		}, "needs a lab name"},
	}
	for _, tc := range cases {
		s := valid()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	s := valid()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestUnknownNamesListAlternatives: every registry's unknown-name error must
// name the registered alternatives so typos are self-diagnosing.
func TestUnknownNamesListAlternatives(t *testing.T) {
	if _, err := BuildPolicy(PolicySpec{Name: "zigzag"}); err == nil ||
		!strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "rgma") {
		t.Fatalf("policy error lacks alternatives: %v", err)
	}
	if _, err := BuildKernel(KernelSpec{Name: "fourier"}); err == nil ||
		!strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "rbf") {
		t.Fatalf("kernel error lacks alternatives: %v", err)
	}
	if _, err := BuildStrategy("psychic"); err == nil ||
		!strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "constant-liar") {
		t.Fatalf("strategy error lacks alternatives: %v", err)
	}
	if _, err := BuildLab(LabSpec{Name: "marslab"}, LabDeps{}); err == nil ||
		!strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "replay") {
		t.Fatalf("lab error lacks alternatives: %v", err)
	}
	if _, err := BuildModel(ModelSpec{Name: "oracle"}, ModelDeps{}); err == nil ||
		!strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "sparse") {
		t.Fatalf("model error lacks alternatives: %v", err)
	}
}

// TestEveryRegistryEntryConstructible: each registered name must build from
// a plain spec (ard-rbf additionally needs its length scales, the replay lab
// its dataset).
func TestEveryRegistryEntryConstructible(t *testing.T) {
	for _, name := range PolicyNames() {
		if p, err := BuildPolicy(PolicySpec{Name: name}); err != nil || p == nil {
			t.Fatalf("policy %s: %v", name, err)
		}
	}
	for _, name := range KernelNames() {
		s := KernelSpec{Name: name}
		if name == "ard-rbf" {
			s.LengthScales = []float64{0.5, 0.5, 0.5, 0.5, 0.5}
		}
		if k, err := BuildKernel(s); err != nil || k == nil {
			t.Fatalf("kernel %s: %v", name, err)
		}
	}
	for _, name := range StrategyNames() {
		if _, err := BuildStrategy(name); err != nil {
			t.Fatalf("strategy %s: %v", name, err)
		}
	}
	ds := synthDS(20, 5)
	for _, name := range LabNames() {
		if l, err := BuildLab(LabSpec{Name: name}, LabDeps{Dataset: ds}); err != nil || l == nil {
			t.Fatalf("lab %s: %v", name, err)
		}
	}
	deps := ModelDeps{Kernel: kernel.NewRBF(0.5, 1), GP: gp.Config{Noise: 0.1}}
	for _, name := range ModelNames() {
		d := deps
		if name == ModelMultiFid {
			// The co-kriging family needs its fidelity ladder.
			d.Fidelity = &FidelitySpec{Levels: []int{3, 4, 6}}
		}
		if m, err := BuildModel(ModelSpec{Name: name}, d); err != nil || m == nil {
			t.Fatalf("model %s: %v", name, err)
		}
	}
}

// TestExampleSpecsValid keeps the shipped example specs loadable and in the
// canonical Marshal form, so the README quick-start cannot rot.
func TestExampleSpecsValid(t *testing.T) {
	paths, err := filepath.Glob("../../examples/specs/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example specs found under examples/specs/")
	}
	for _, p := range paths {
		spec, err := LoadCampaignSpec(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := spec.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, canon) {
			t.Errorf("%s is not in canonical spec form; want:\n%s", p, canon)
		}
	}
}

// TestRunReplaySpecMatchesDirect: executing through the spec layer must be
// the identical campaign as materializing the plan and calling RunReplay.
func TestRunReplaySpecMatchesDirect(t *testing.T) {
	ds := synthDS(130, 54)
	spec := replaySpec("direct-vs-spec", "rgma", 11, 12, 8)
	spec.MemLimitPaperRule = true

	viaSpec, err := RunReplaySpec(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	part, cfg, err := spec.ReplayPlan(ds)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunReplay(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSpec, direct) {
		t.Fatal("spec-layer trajectory differs from the direct engine call")
	}
}
