package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"

	"alamr/internal/gp"
	"alamr/internal/mat"
	"alamr/internal/obs"
)

// The streamed candidate pool replaces materialize-everything scoring for
// pools too large to hold per-candidate state: candidates are generated
// and scored shard by shard, every shard reduces into a bounded top-k
// heap, and the heaps merge into one exact global top-k shortlist. Peak
// pool memory is O(workers·shard + k) — per-worker feature slabs, score
// vectors, and partial heaps, plus the shortlist — instead of the O(m·n) a
// ScoringCache pins or the O(m) a materialized score pass allocates.
//
// Shard scoring is parallel: Select dispatches W = min(mat.Workers(),
// shards) worker lanes over the internal/mat pool, each lane claiming
// shards from a shared atomic cursor, scoring them serially
// (PredictIntoSerial — the lanes *are* the parallelism) into its own slabs
// and bounded heap, while a per-lane filler goroutine generates the next
// claimed shard into the other half of a double-buffered slab so
// CandidateSource.Fill cost overlaps scoring. The shortlist is independent
// of scheduling at every worker count: the top-k under the strict total
// order (rank desc, id asc) is a unique set, each candidate's scores are
// computed in full by exactly one lane with a floating-point evaluation
// order fixed by the shard layout alone, and the final merge sorts the
// union of the lanes' heaps under that same order — so which lane scored
// which shard cannot change the result. mat.SetWorkers(1) degrades to the
// fully serial reference path.
//
// The optional approximate mode additionally prunes shards whose best
// previously-observed rank cannot reach the current k-th best. For
// σ-monotone ranks (maxsigma: the posterior σ of every candidate is
// non-increasing as observations accumulate, for the exact, sparse, and
// per-leaf treed surrogates alike) the last observed shard maximum is a
// valid upper bound and the prune test compares it against a shared
// monotone lower bound on the final k-th rank (any lane that has filled
// its local heap publishes its heap root via an atomic CAS-max: k
// candidates rank at least that high, so the final k-th rank can only be
// higher). A stale read of the bound is always a smaller value, so racing
// lanes can only prune less, never more — pruning stays exact under any
// interleaving, even though *which* shards get pruned may vary with the
// schedule. For mean-coupled ranks (minpred) a mid-call bound is not valid
// and a schedule-dependent prune set would make the output depend on the
// worker count, so the prune threshold is instead the previous Select's
// final k-th rank — deterministic by construction, boundedly stale, with
// RefreshEvery forcing a full un-pruned rescore every k-th call.
// DESIGN.md §Surrogate scaling states both bounds precisely.

// CandidateSource yields candidate feature rows on demand, so a pool can
// exist without ever materializing m×d storage. Fill must be safe for
// concurrent use with distinct dst buffers: the parallel Select calls it
// from per-worker filler goroutines (both built-in sources are read-only
// during Fill).
type CandidateSource interface {
	// Len is the total number of candidates.
	Len() int
	// Dim is the feature dimensionality.
	Dim() int
	// Fill writes rows [lo, hi) into the first hi-lo rows of dst.
	Fill(lo, hi int, dst *mat.Dense)
}

// DenseSource adapts an already-materialized feature matrix (e.g. the
// replay dataset, which is resident regardless) to CandidateSource.
type DenseSource struct{ X *mat.Dense }

// Len implements CandidateSource.
func (s DenseSource) Len() int { return s.X.Rows() }

// Dim implements CandidateSource.
func (s DenseSource) Dim() int { return s.X.Cols() }

// Fill implements CandidateSource.
func (s DenseSource) Fill(lo, hi int, dst *mat.Dense) {
	for i := lo; i < hi; i++ {
		copy(dst.Row(i-lo), s.X.Row(i))
	}
}

// GridSource is the lazy Cartesian grid: candidate i decodes mixed-radix
// into one coordinate per axis. A 10⁶-candidate grid occupies the axis
// slices only — this is the source the scale benchmarks stream from.
type GridSource struct{ Axes [][]float64 }

// Len implements CandidateSource.
func (s GridSource) Len() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax)
	}
	return n
}

// Dim implements CandidateSource.
func (s GridSource) Dim() int { return len(s.Axes) }

// Fill implements CandidateSource. The last axis varies fastest.
func (s GridSource) Fill(lo, hi int, dst *mat.Dense) {
	d := len(s.Axes)
	for i := lo; i < hi; i++ {
		row := dst.Row(i - lo)
		rem := i
		for j := d - 1; j >= 0; j-- {
			ax := s.Axes[j]
			row[j] = ax[rem%len(ax)]
			rem /= len(ax)
		}
	}
}

// RankFunc scores one candidate for shortlist ordering; higher is better.
// It must be the same criterion the policy maximizes, so the policy's
// argmax over the shortlist equals its argmax over the full pool.
type RankFunc func(muC, sigC, muM, sigM float64) float64

// rankerSpec pairs a shortlist criterion with its pruning class: monotone
// ranks can only decrease as observations accumulate (they depend on σ
// alone), so stale per-shard maxima are true upper bounds and approximate
// pruning stays exact.
type rankerSpec struct {
	fn       RankFunc
	monotone bool
}

// rankers maps shortlist-safe policy names to their selection criterion.
// Only pure argmax policies qualify: sampling policies (randuniform,
// randgoodness, rgma) draw from the whole pool and cannot run on a
// shortlist.
var rankers = map[string]rankerSpec{
	"maxsigma": {fn: func(muC, sigC, muM, sigM float64) float64 { return sigC }, monotone: true},
	"minpred":  {fn: func(muC, sigC, muM, sigM float64) float64 { return sigC - muC }},
}

func rankerFor(name string) (RankFunc, bool) {
	r, ok := rankers[normName(name)]
	return r.fn, ok
}

// rankerIsMonotone reports whether the named criterion is σ-monotone (see
// rankerSpec); unknown names report false.
func rankerIsMonotone(name string) bool { return rankers[normName(name)].monotone }

// RankerNames lists the shortlist-safe policy names, sorted.
func RankerNames() []string { return sortedKeys(rankers) }

// StreamConfig tunes StreamState; the zero value gets defaults.
type StreamConfig struct {
	ShardSize    int  // candidates per slab (default 4096)
	TopK         int  // shortlist size (default 64)
	Approx       bool // enable upper-bound shard pruning
	RefreshEvery int  // approx: full rescore every k-th call (default 16)
	Rank         RankFunc
	// NonMonotoneRank declares that Rank is not σ-monotone (its value can
	// rise for a fixed candidate as observations accumulate, e.g. minpred's
	// mean term). Approximate pruning then thresholds against the previous
	// Select's final k-th rank — a deterministic, boundedly-stale test —
	// instead of the in-call shared lower bound, which is exact only for
	// monotone ranks. Leave false for σ-only criteria like maxsigma.
	NonMonotoneRank bool
}

func (c *StreamConfig) setDefaults() {
	if c.ShardSize <= 0 {
		c.ShardSize = 4096
	}
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 16
	}
}

// streamEntry is one shortlist candidate: its source id and scores.
type streamEntry struct {
	id        int
	rank      float64
	muC, sigC float64
	muM, sigM float64
}

// better orders entries like a first-max full scan: higher rank wins, ties
// go to the smaller source id.
func (e streamEntry) better(o streamEntry) bool {
	if e.rank != o.rank {
		return e.rank > o.rank
	}
	return e.id < o.id
}

// fillReq asks a worker lane's filler goroutine to generate rows [lo, hi)
// into dst (one half of the lane's double-buffered slab).
type fillReq struct {
	lo, hi int
	dst    *mat.Dense
}

// streamWorker is one scoring lane's private state, reused across Select
// calls: a double-buffered feature slab (the second half allocated only
// when prefetch runs), score buffers, a bounded partial heap, and the
// lane's shard counters (aggregated into the obs totals after the merge).
type streamWorker struct {
	xbuf                 [2]*mat.Dense
	muC, sigC, muM, sigM []float64
	heap                 []streamEntry
	scored, pruned       int64

	req  chan fillReq
	done chan struct{}
}

// startFiller launches the lane's shard-generation goroutine. The protocol
// allows one outstanding request: every req send is matched by one done
// receive before the next send, so the capacity-1 channels never block the
// filler.
func (w *streamWorker) startFiller(src CandidateSource) {
	w.req = make(chan fillReq, 1)
	w.done = make(chan struct{}, 1)
	go func(req chan fillReq, done chan struct{}) {
		for r := range req {
			src.Fill(r.lo, r.hi, r.dst)
			done <- struct{}{}
		}
	}(w.req, w.done)
}

// stopFiller shuts the lane's filler down; all requests must be drained.
func (w *streamWorker) stopFiller() {
	close(w.req)
	w.req, w.done = nil, nil
}

// kthBound is the shared monotone lower bound on the final k-th shortlist
// rank, published across lanes with a CAS-max. Any lane whose local heap
// holds k entries knows the merged top-k ranks at least as high as its
// heap root, so raising the bound to that root is always sound; a stale
// (lower) read by another lane only prunes less.
type kthBound struct{ bits atomic.Uint64 }

func (b *kthBound) store(v float64) { b.bits.Store(math.Float64bits(v)) }

func (b *kthBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

// raise lifts the bound to v if v is higher; concurrent raises keep the
// maximum. Comparison is on float values, not bit patterns.
func (b *kthBound) raise(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// StreamState is a streamed candidate pool usable across AL iterations: it
// keeps per-shard prune bounds and candidate tombstones, and produces one
// exact (or boundedly approximate) top-k shortlist per Select call.
// Select, Remove, and InvalidateBounds must not overlap (one selection
// loop owns the state); Select parallelizes internally.
type StreamState struct {
	src       CandidateSource
	cost, mem gp.Model
	cfg       StreamConfig

	removed  map[int]bool
	live     int
	prevBest []float64 // per-shard upper bound: last observed max rank
	calls    int
	lastKth  float64 // previous Select's final k-th rank (non-monotone prune threshold)

	workers []*streamWorker
}

// intoPredictor is the allocation-free batched prediction surface; every
// built-in surrogate (exact, sparse, treed) implements it.
type intoPredictor interface {
	PredictInto(xs *mat.Dense, mean, std []float64)
}

// serialPredictor is the single-goroutine form of intoPredictor, the one a
// parallel Select's worker lanes call: the lanes are the parallelism, so
// nested worker-pool dispatch inside the model would only add scheduling
// churn. All built-in surrogates implement it with per-call scratch,
// bitwise-equal to PredictInto.
type serialPredictor interface {
	PredictIntoSerial(xs *mat.Dense, mean, std []float64)
}

// predictShard scores one shard, writing into the reusable buffers when the
// model allows and falling back to the allocating Predict otherwise. serial
// selects the single-goroutine model path (used inside worker lanes).
func predictShard(m gp.Model, xs *mat.Dense, mean, std []float64, serial bool) ([]float64, []float64) {
	rows := xs.Rows()
	if serial {
		if sp, ok := m.(serialPredictor); ok {
			sp.PredictIntoSerial(xs, mean[:rows], std[:rows])
			return mean[:rows], std[:rows]
		}
	}
	if ip, ok := m.(intoPredictor); ok {
		ip.PredictInto(xs, mean[:rows], std[:rows])
		return mean[:rows], std[:rows]
	}
	return m.Predict(xs)
}

// NewStreamState builds a streamed pool over src scored by the two fitted
// surrogates.
func NewStreamState(src CandidateSource, cost, mem gp.Model, cfg StreamConfig) *StreamState {
	cfg.setDefaults()
	if cfg.Rank == nil {
		cfg.Rank = rankers["maxsigma"].fn
	}
	n := src.Len()
	nShards := (n + cfg.ShardSize - 1) / cfg.ShardSize
	st := &StreamState{
		src:      src,
		cost:     cost,
		mem:      mem,
		cfg:      cfg,
		removed:  make(map[int]bool),
		live:     n,
		prevBest: make([]float64, nShards),
		lastKth:  math.Inf(-1),
	}
	for i := range st.prevBest {
		st.prevBest[i] = math.Inf(1) // never prune an unscored shard
	}
	return st
}

// Live reports the number of non-removed candidates.
func (st *StreamState) Live() int { return st.live }

// Remove tombstones candidate id (a source index). Tombstones only lower a
// shard's true maximum, so stale prune bounds stay valid upper bounds —
// including when the last live candidate of a shard goes: the shard's next
// scoring pass records -Inf and it prunes forever after.
func (st *StreamState) Remove(id int) {
	if !st.removed[id] {
		st.removed[id] = true
		st.live--
	}
}

// InvalidateBounds resets every shard's prune bound, forcing the next
// Select to rescore the whole pool. Required after any wholesale posterior
// change (a hyperparameter refit): stale shard maxima are upper bounds
// only while the posterior drifts monotonically, and a refit can raise σ
// everywhere at once. The replay loop calls this on every hyperopt.
func (st *StreamState) InvalidateBounds() {
	for i := range st.prevBest {
		st.prevBest[i] = math.Inf(1)
	}
	st.lastKth = math.Inf(-1)
}

// pushBounded maintains a bounded worst-at-root heap of the best k entries.
func pushBounded(h []streamEntry, e streamEntry, k int) []streamEntry {
	if len(h) < k {
		h = append(h, e)
		// Sift up: parent must be worse than child (root = worst).
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if h[i].better(h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
		return h
	}
	if !e.better(h[0]) {
		return h
	}
	h[0] = e
	// Sift down: push the new root toward the leaves past any worse child.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && h[i].better(h[l]) && h[worst].better(h[l]) {
			worst = l
		}
		if r < len(h) && h[i].better(h[r]) && h[worst].better(h[r]) {
			worst = r
		}
		if worst == i {
			break
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
	return h
}

// ensureWorkers sizes the lane pool to w, allocating each lane's slabs and
// buffers once and reusing them across Select calls. The second slab half
// exists only where prefetch runs (parallel lanes), keeping the serial
// path's footprint at one shard.
func (st *StreamState) ensureWorkers(w int, prefetch bool) {
	shard := st.cfg.ShardSize
	dim := st.src.Dim()
	for len(st.workers) < w {
		st.workers = append(st.workers, nil)
	}
	for i := 0; i < w; i++ {
		sw := st.workers[i]
		if sw == nil {
			sw = &streamWorker{
				muC:  make([]float64, shard),
				sigC: make([]float64, shard),
				muM:  make([]float64, shard),
				sigM: make([]float64, shard),
			}
			sw.xbuf[0] = mat.NewDense(shard, dim, nil)
			st.workers[i] = sw
		}
		if prefetch && sw.xbuf[1] == nil {
			sw.xbuf[1] = mat.NewDense(shard, dim, nil)
		}
	}
}

// scoreShard predicts one filled shard through both surrogates, reduces
// its live candidates into the lane's bounded heap, and refreshes the
// shard's prune bound. Writes touch lane-private state plus prevBest[s],
// which only this lane (the shard's claimant) writes.
func (st *StreamState) scoreShard(w *streamWorker, s, lo, hi int, xs *mat.Dense, bound *kthBound, useShared, serial bool) {
	obs.PoolShardsInflight.Add(1)
	sp := obs.SpanShardScore.Start()
	muC, sigC := predictShard(st.cost, xs, w.muC, w.sigC, serial)
	muM, sigM := predictShard(st.mem, xs, w.muM, w.sigM, serial)
	k := st.cfg.TopK
	best := math.Inf(-1)
	for i := 0; i < hi-lo; i++ {
		id := lo + i
		if st.removed[id] {
			continue
		}
		r := st.cfg.Rank(muC[i], sigC[i], muM[i], sigM[i])
		if r > best {
			best = r
		}
		w.heap = pushBounded(w.heap, streamEntry{id: id, rank: r, muC: muC[i], sigC: sigC[i], muM: muM[i], sigM: sigM[i]}, k)
	}
	st.prevBest[s] = best
	w.scored++
	if useShared && len(w.heap) == k {
		bound.raise(w.heap[0].rank)
	}
	sp.End()
	obs.PoolShardsInflight.Add(-1)
}

// scoreLoop is one lane's Select body: claim shards off the shared cursor
// (consuming prune decisions inline), generate, and score. threshold is
// the deterministic non-monotone prune limit; useShared switches to the
// in-call monotone bound. In parallel mode the lane's filler generates the
// next claimed shard into the other slab half while this goroutine scores
// the current one.
func (st *StreamState) scoreLoop(w *streamWorker, next *atomic.Int64, bound *kthBound, threshold float64, useShared, prune, parallel bool, nShards int) {
	n := st.src.Len()
	shard := st.cfg.ShardSize
	dim := st.src.Dim()
	claim := func() int {
		for {
			s := int(next.Add(1)) - 1
			if s >= nShards {
				return -1
			}
			if prune {
				lim := threshold
				if useShared {
					lim = bound.load()
				}
				if st.prevBest[s] < lim {
					// Every candidate here ranked below the k-th-rank lower
					// bound the last time the shard was scored — nothing can
					// enter the shortlist. Strict <: ties are never pruned,
					// preserving first-max order.
					w.pruned++
					continue
				}
			}
			return s
		}
	}
	view := func(buf, s int) (*mat.Dense, int, int) {
		lo := s * shard
		hi := lo + shard
		if hi > n {
			hi = n
		}
		xs := w.xbuf[buf]
		if hi-lo != shard {
			xs = mat.NewDense(hi-lo, dim, xs.RawData()[:(hi-lo)*dim])
		}
		return xs, lo, hi
	}
	if !parallel {
		// Serial reference path: fill and score in place, letting the
		// model's own PredictInto fan out over the mat pool if it can.
		for s := claim(); s >= 0; s = claim() {
			xs, lo, hi := view(0, s)
			st.src.Fill(lo, hi, xs)
			st.scoreShard(w, s, lo, hi, xs, bound, useShared, false)
		}
		return
	}
	w.startFiller(st.src)
	defer w.stopFiller()
	cur := claim()
	if cur < 0 {
		return
	}
	buf := 0
	xs, lo, hi := view(buf, cur)
	w.req <- fillReq{lo: lo, hi: hi, dst: xs}
	for cur >= 0 {
		<-w.done // the current shard's slab is ready
		curXS, curLo, curHi, curS := xs, lo, hi, cur
		if cur = claim(); cur >= 0 {
			buf = 1 - buf
			xs, lo, hi = view(buf, cur)
			w.req <- fillReq{lo: lo, hi: hi, dst: xs}
		}
		st.scoreShard(w, curS, curLo, curHi, curXS, bound, useShared, true)
	}
}

// Select scores the pool shard by shard — fanned out over min(Workers,
// shards) lanes, see the package comment for the determinism argument —
// and returns the top-k shortlist as a Candidates block plus the
// shortlist's source ids, both ordered by (rank desc, id asc) so a
// first-max policy scan picks the same candidate a full-pool scan would.
// The Candidates' slices are freshly allocated (size k); the X matrix
// holds the shortlist rows only.
func (st *StreamState) Select() (*Candidates, []int) {
	n := st.src.Len()
	shard := st.cfg.ShardSize
	k := st.cfg.TopK
	nShards := (n + shard - 1) / shard
	st.calls++
	refresh := !st.cfg.Approx || st.cfg.RefreshEvery <= 1 || st.calls%st.cfg.RefreshEvery == 1
	prune := st.cfg.Approx && !refresh
	useShared := prune && !st.cfg.NonMonotoneRank
	threshold := math.Inf(-1) // -Inf never prunes (strict <)
	if prune && st.cfg.NonMonotoneRank {
		threshold = st.lastKth
	}
	var bound kthBound
	bound.store(math.Inf(-1))

	w := mat.Workers()
	if w > nShards {
		w = nShards
	}
	if w < 1 {
		w = 1
	}
	st.ensureWorkers(w, w > 1)
	for _, sw := range st.workers[:w] {
		sw.heap = sw.heap[:0]
		sw.scored, sw.pruned = 0, 0
	}
	var next atomic.Int64
	if w == 1 {
		st.scoreLoop(st.workers[0], &next, &bound, threshold, useShared, prune, false, nShards)
	} else {
		mat.ParallelWorkers(w, func(lane int) {
			st.scoreLoop(st.workers[lane], &next, &bound, threshold, useShared, prune, true, nShards)
		})
	}

	var scored, pruned int64
	for _, sw := range st.workers[:w] {
		scored += sw.scored
		pruned += sw.pruned
	}
	obs.PoolShardsScored.Add(scored)
	obs.PoolShardsPruned.Add(pruned)
	obs.PoolStreamLive.Set(float64(st.live))
	if r := obs.Default(); r != nil {
		for lane, sw := range st.workers[:w] {
			if sw.scored > 0 {
				r.Counter(obs.Labeled(obs.MetricPoolWorkerShards, obs.LabelWorker, strconv.Itoa(lane)),
					"streamed-pool shards scored, by worker lane").Add(sw.scored)
			}
		}
	}

	// Merge: the union of the lanes' bounded heaps contains the global
	// top-k (each lane kept the best k of its own shards), and sorting
	// under the strict total order recovers it independent of which lane
	// held what.
	var out []streamEntry
	for _, sw := range st.workers[:w] {
		out = append(out, sw.heap...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].better(out[j]) })
	if len(out) > k {
		out = out[:k]
	}
	if len(out) == k {
		st.lastKth = out[k-1].rank
	} else {
		st.lastKth = math.Inf(-1)
	}

	ids := make([]int, len(out))
	c := &Candidates{
		X:           mat.NewDense(len(out), st.src.Dim(), nil),
		MuCost:      make([]float64, len(out)),
		SigmaCost:   make([]float64, len(out)),
		MuMem:       make([]float64, len(out)),
		SigmaMem:    make([]float64, len(out)),
		MemLimitLog: math.Inf(1),
	}
	one := mat.NewDense(1, st.src.Dim(), nil)
	for i, e := range out {
		ids[i] = e.id
		c.MuCost[i], c.SigmaCost[i] = e.muC, e.sigC
		c.MuMem[i], c.SigmaMem[i] = e.muM, e.sigM
		st.src.Fill(e.id, e.id+1, one)
		copy(c.X.Row(i), one.Row(0))
	}
	return c, ids
}

// streamScorer adapts a StreamState to the replay loop's scorer surface:
// the policy sees the shortlist as its candidate set, and shortlist picks
// translate back to pool positions through the sorted live-id mirror.
type streamScorer struct {
	st  *StreamState
	ids []int // pool position → source id; sorted ascending (mirror of remaining)

	shortIDs []int      // shortlist position → source id, from the last Select
	shortX   *mat.Dense // shortlist feature rows, from the last Select
}

func newStreamScorer(cost, mem gp.Model, x *mat.Dense, spec *PoolSpec, rank RankFunc, monotone bool) *streamScorer {
	cfg := StreamConfig{Rank: rank, NonMonotoneRank: !monotone}
	if spec != nil {
		cfg.ShardSize = spec.Shard
		cfg.TopK = spec.TopK
		cfg.Approx = spec.Approx
		cfg.RefreshEvery = spec.RefreshEvery
	}
	ids := make([]int, x.Rows())
	for i := range ids {
		ids[i] = i
	}
	return &streamScorer{
		st:  NewStreamState(DenseSource{X: x}, cost, mem, cfg),
		ids: ids,
	}
}

func (s *streamScorer) candidates(memLimitLog float64) *Candidates {
	c, ids := s.st.Select()
	c.MemLimitLog = memLimitLog
	s.shortIDs = ids
	s.shortX = c.X
	return c
}

// row returns the features of shortlist pick p (valid until the next
// candidates call, matching the loop's consume-before-Remove contract).
func (s *streamScorer) row(p int) []float64 { return s.shortX.Row(p) }

// translate maps shortlist pick p to its pool position via binary search
// in the sorted live-id mirror.
func (s *streamScorer) translate(p int) int {
	id := s.shortIDs[p]
	pos := sort.SearchInts(s.ids, id)
	if pos >= len(s.ids) || s.ids[pos] != id {
		panic(fmt.Sprintf("engine: streamed pool lost candidate id %d", id))
	}
	return pos
}

// remove drops the candidate at pool position p: tombstoned in the stream
// state, compacted out of the id mirror.
func (s *streamScorer) remove(p int) {
	s.st.Remove(s.ids[p])
	s.ids = append(s.ids[:p], s.ids[p+1:]...)
}

// invalidate resets the prune bounds after a model refit (see
// StreamState.InvalidateBounds).
func (s *streamScorer) invalidate() { s.st.InvalidateBounds() }

// fidelityGains is unavailable on the shortlist path: the streamed pool
// supports shortlist-safe rankers only, none of which consume gains.
func (s *streamScorer) fidelityGains() []float64 { return nil }

func (s *streamScorer) close() {}
