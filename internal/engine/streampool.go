package engine

import (
	"fmt"
	"math"
	"sort"

	"alamr/internal/gp"
	"alamr/internal/mat"
	"alamr/internal/obs"
)

// The streamed candidate pool replaces materialize-everything scoring for
// pools too large to hold per-candidate state: candidates are generated
// and scored shard by shard (each shard fanned out over the worker pool by
// the surrogate's own batched Predict, which uses mat.ParallelFor), every
// shard reduces into a bounded top-k heap, and the shards' heaps merge
// into one exact global top-k shortlist. Peak pool memory is
// O(shard + k) — the shard feature slab, its two score vectors, and the
// shortlist — instead of the O(m·n) a ScoringCache pins or the O(m) a
// materialized score pass allocates.
//
// The optional approximate mode additionally prunes shards whose best
// previously-observed rank cannot reach the current k-th best. For
// σ-monotone ranks (maxsigma: the posterior σ of every candidate is
// non-increasing as observations accumulate, for the exact, sparse, and
// per-leaf treed surrogates alike) the last observed shard maximum is a
// valid upper bound, so pruning returns the exact top-k. For mean-coupled
// ranks (minpred) the bound can go stale; RefreshEvery forces a full
// un-pruned rescore every k-th call to bound the staleness window.
// DESIGN.md §Surrogate scaling states the bound precisely.

// CandidateSource yields candidate feature rows on demand, so a pool can
// exist without ever materializing m×d storage.
type CandidateSource interface {
	// Len is the total number of candidates.
	Len() int
	// Dim is the feature dimensionality.
	Dim() int
	// Fill writes rows [lo, hi) into the first hi-lo rows of dst.
	Fill(lo, hi int, dst *mat.Dense)
}

// DenseSource adapts an already-materialized feature matrix (e.g. the
// replay dataset, which is resident regardless) to CandidateSource.
type DenseSource struct{ X *mat.Dense }

// Len implements CandidateSource.
func (s DenseSource) Len() int { return s.X.Rows() }

// Dim implements CandidateSource.
func (s DenseSource) Dim() int { return s.X.Cols() }

// Fill implements CandidateSource.
func (s DenseSource) Fill(lo, hi int, dst *mat.Dense) {
	for i := lo; i < hi; i++ {
		copy(dst.Row(i-lo), s.X.Row(i))
	}
}

// GridSource is the lazy Cartesian grid: candidate i decodes mixed-radix
// into one coordinate per axis. A 10⁶-candidate grid occupies the axis
// slices only — this is the source the scale benchmarks stream from.
type GridSource struct{ Axes [][]float64 }

// Len implements CandidateSource.
func (s GridSource) Len() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax)
	}
	return n
}

// Dim implements CandidateSource.
func (s GridSource) Dim() int { return len(s.Axes) }

// Fill implements CandidateSource. The last axis varies fastest.
func (s GridSource) Fill(lo, hi int, dst *mat.Dense) {
	d := len(s.Axes)
	for i := lo; i < hi; i++ {
		row := dst.Row(i - lo)
		rem := i
		for j := d - 1; j >= 0; j-- {
			ax := s.Axes[j]
			row[j] = ax[rem%len(ax)]
			rem /= len(ax)
		}
	}
}

// RankFunc scores one candidate for shortlist ordering; higher is better.
// It must be the same criterion the policy maximizes, so the policy's
// argmax over the shortlist equals its argmax over the full pool.
type RankFunc func(muC, sigC, muM, sigM float64) float64

// rankers maps shortlist-safe policy names to their selection criterion.
// Only pure argmax policies qualify: sampling policies (randuniform,
// randgoodness, rgma) draw from the whole pool and cannot run on a
// shortlist.
var rankers = map[string]RankFunc{
	"maxsigma": func(muC, sigC, muM, sigM float64) float64 { return sigC },
	"minpred":  func(muC, sigC, muM, sigM float64) float64 { return sigC - muC },
}

func rankerFor(name string) (RankFunc, bool) {
	r, ok := rankers[normName(name)]
	return r, ok
}

// RankerNames lists the shortlist-safe policy names, sorted.
func RankerNames() []string { return sortedKeys(rankers) }

// StreamConfig tunes StreamState; the zero value gets defaults.
type StreamConfig struct {
	ShardSize    int  // candidates per slab (default 4096)
	TopK         int  // shortlist size (default 64)
	Approx       bool // enable upper-bound shard pruning
	RefreshEvery int  // approx: full rescore every k-th call (default 16)
	Rank         RankFunc
}

func (c *StreamConfig) setDefaults() {
	if c.ShardSize <= 0 {
		c.ShardSize = 4096
	}
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 16
	}
}

// streamEntry is one shortlist candidate: its source id and scores.
type streamEntry struct {
	id        int
	rank      float64
	muC, sigC float64
	muM, sigM float64
}

// better orders entries like a first-max full scan: higher rank wins, ties
// go to the smaller source id.
func (e streamEntry) better(o streamEntry) bool {
	if e.rank != o.rank {
		return e.rank > o.rank
	}
	return e.id < o.id
}

// StreamState is a streamed candidate pool usable across AL iterations: it
// keeps per-shard prune bounds and candidate tombstones, and produces one
// exact (or boundedly approximate) top-k shortlist per Select call.
type StreamState struct {
	src       CandidateSource
	cost, mem gp.Model
	cfg       StreamConfig

	removed  map[int]bool
	live     int
	prevBest []float64 // per-shard upper bound: last observed max rank
	calls    int

	xbuf *mat.Dense // shard feature slab, reused across shards and calls
	heap []streamEntry

	// Per-shard score buffers, reused across shards and calls whenever the
	// surrogate supports PredictInto (all built-in families do) — this is
	// what keeps the streamed path's allocations O(shard + k) rather than
	// O(m) per Select.
	muC, sigC, muM, sigM []float64
}

// intoPredictor is the allocation-free batched prediction surface; every
// built-in surrogate (exact, sparse, treed) implements it.
type intoPredictor interface {
	PredictInto(xs *mat.Dense, mean, std []float64)
}

// predictShard scores one shard, writing into the reusable buffers when the
// model allows and falling back to the allocating Predict otherwise.
func predictShard(m gp.Model, xs *mat.Dense, mean, std []float64) ([]float64, []float64) {
	if ip, ok := m.(intoPredictor); ok {
		rows := xs.Rows()
		ip.PredictInto(xs, mean[:rows], std[:rows])
		return mean[:rows], std[:rows]
	}
	return m.Predict(xs)
}

// NewStreamState builds a streamed pool over src scored by the two fitted
// surrogates.
func NewStreamState(src CandidateSource, cost, mem gp.Model, cfg StreamConfig) *StreamState {
	cfg.setDefaults()
	if cfg.Rank == nil {
		cfg.Rank = rankers["maxsigma"]
	}
	n := src.Len()
	nShards := (n + cfg.ShardSize - 1) / cfg.ShardSize
	st := &StreamState{
		src:      src,
		cost:     cost,
		mem:      mem,
		cfg:      cfg,
		removed:  make(map[int]bool),
		live:     n,
		prevBest: make([]float64, nShards),
		xbuf:     mat.NewDense(cfg.ShardSize, src.Dim(), nil),
		muC:      make([]float64, cfg.ShardSize),
		sigC:     make([]float64, cfg.ShardSize),
		muM:      make([]float64, cfg.ShardSize),
		sigM:     make([]float64, cfg.ShardSize),
	}
	for i := range st.prevBest {
		st.prevBest[i] = math.Inf(1) // never prune an unscored shard
	}
	return st
}

// Live reports the number of non-removed candidates.
func (st *StreamState) Live() int { return st.live }

// Remove tombstones candidate id (a source index). Tombstones only lower a
// shard's true maximum, so stale prune bounds stay valid upper bounds.
func (st *StreamState) Remove(id int) {
	if !st.removed[id] {
		st.removed[id] = true
		st.live--
	}
}

// InvalidateBounds resets every shard's prune bound, forcing the next
// Select to rescore the whole pool. Required after any wholesale posterior
// change (a hyperparameter refit): stale shard maxima are upper bounds
// only while the posterior drifts monotonically, and a refit can raise σ
// everywhere at once. The replay loop calls this on every hyperopt.
func (st *StreamState) InvalidateBounds() {
	for i := range st.prevBest {
		st.prevBest[i] = math.Inf(1)
	}
}

// heapPush maintains a bounded worst-at-root heap of the best k entries.
func (st *StreamState) heapPush(e streamEntry, k int) {
	if len(st.heap) < k {
		st.heap = append(st.heap, e)
		// Sift up: parent must be worse than child (root = worst).
		for i := len(st.heap) - 1; i > 0; {
			p := (i - 1) / 2
			if st.heap[i].better(st.heap[p]) {
				break
			}
			st.heap[i], st.heap[p] = st.heap[p], st.heap[i]
			i = p
		}
		return
	}
	if !e.better(st.heap[0]) {
		return
	}
	st.heap[0] = e
	// Sift down: push the new root toward the leaves past any worse child.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(st.heap) && st.heap[i].better(st.heap[l]) && st.heap[worst].better(st.heap[l]) {
			worst = l
		}
		if r < len(st.heap) && st.heap[i].better(st.heap[r]) && st.heap[worst].better(st.heap[r]) {
			worst = r
		}
		if worst == i {
			break
		}
		st.heap[i], st.heap[worst] = st.heap[worst], st.heap[i]
		i = worst
	}
}

// kthRank is the weakest shortlisted rank once the heap is full.
func (st *StreamState) kthRank() (float64, bool) {
	if len(st.heap) < st.cfg.TopK {
		return 0, false
	}
	return st.heap[0].rank, true
}

// Select scores the pool shard by shard and returns the top-k shortlist as
// a Candidates block plus the shortlist's source ids, both ordered by
// (rank desc, id asc) so a first-max policy scan picks the same candidate
// a full-pool scan would. The Candidates' slices are freshly allocated
// (size k); the X matrix holds the shortlist rows only.
func (st *StreamState) Select() (*Candidates, []int) {
	n := st.src.Len()
	shard := st.cfg.ShardSize
	k := st.cfg.TopK
	st.heap = st.heap[:0]
	st.calls++
	refresh := !st.cfg.Approx || st.cfg.RefreshEvery <= 1 || st.calls%st.cfg.RefreshEvery == 1

	for lo, s := 0, 0; lo < n; lo, s = lo+shard, s+1 {
		hi := lo + shard
		if hi > n {
			hi = n
		}
		if kth, full := st.kthRank(); st.cfg.Approx && !refresh && full && st.prevBest[s] < kth {
			// Every candidate in this shard ranked below the current k-th
			// best the last time it was scored, and the rank's upper bound
			// is non-increasing — nothing here can enter the shortlist.
			// Strict <: ties are never pruned, preserving first-max order.
			obs.PoolShardsPruned.Inc()
			continue
		}
		rows := hi - lo
		xs := st.xbuf
		if rows != shard {
			xs = mat.NewDense(rows, st.src.Dim(), st.xbuf.RawData()[:rows*st.src.Dim()])
		}
		st.src.Fill(lo, hi, xs)
		muC, sigC := predictShard(st.cost, xs, st.muC, st.sigC)
		muM, sigM := predictShard(st.mem, xs, st.muM, st.sigM)
		best := math.Inf(-1)
		for i := 0; i < rows; i++ {
			id := lo + i
			if st.removed[id] {
				continue
			}
			r := st.cfg.Rank(muC[i], sigC[i], muM[i], sigM[i])
			if r > best {
				best = r
			}
			st.heapPush(streamEntry{id: id, rank: r, muC: muC[i], sigC: sigC[i], muM: muM[i], sigM: sigM[i]}, k)
		}
		st.prevBest[s] = best
		obs.PoolShardsScored.Inc()
	}
	obs.PoolStreamLive.Set(float64(st.live))

	out := append([]streamEntry(nil), st.heap...)
	sort.Slice(out, func(i, j int) bool { return out[i].better(out[j]) })
	ids := make([]int, len(out))
	c := &Candidates{
		X:           mat.NewDense(len(out), st.src.Dim(), nil),
		MuCost:      make([]float64, len(out)),
		SigmaCost:   make([]float64, len(out)),
		MuMem:       make([]float64, len(out)),
		SigmaMem:    make([]float64, len(out)),
		MemLimitLog: math.Inf(1),
	}
	one := mat.NewDense(1, st.src.Dim(), nil)
	for i, e := range out {
		ids[i] = e.id
		c.MuCost[i], c.SigmaCost[i] = e.muC, e.sigC
		c.MuMem[i], c.SigmaMem[i] = e.muM, e.sigM
		st.src.Fill(e.id, e.id+1, one)
		copy(c.X.Row(i), one.Row(0))
	}
	return c, ids
}

// streamScorer adapts a StreamState to the replay loop's scorer surface:
// the policy sees the shortlist as its candidate set, and shortlist picks
// translate back to pool positions through the sorted live-id mirror.
type streamScorer struct {
	st  *StreamState
	ids []int // pool position → source id; sorted ascending (mirror of remaining)

	shortIDs []int      // shortlist position → source id, from the last Select
	shortX   *mat.Dense // shortlist feature rows, from the last Select
}

func newStreamScorer(cost, mem gp.Model, x *mat.Dense, spec *PoolSpec, rank RankFunc) *streamScorer {
	cfg := StreamConfig{Rank: rank}
	if spec != nil {
		cfg.ShardSize = spec.Shard
		cfg.TopK = spec.TopK
		cfg.Approx = spec.Approx
		cfg.RefreshEvery = spec.RefreshEvery
	}
	ids := make([]int, x.Rows())
	for i := range ids {
		ids[i] = i
	}
	return &streamScorer{
		st:  NewStreamState(DenseSource{X: x}, cost, mem, cfg),
		ids: ids,
	}
}

func (s *streamScorer) candidates(memLimitLog float64) *Candidates {
	c, ids := s.st.Select()
	c.MemLimitLog = memLimitLog
	s.shortIDs = ids
	s.shortX = c.X
	return c
}

// row returns the features of shortlist pick p (valid until the next
// candidates call, matching the loop's consume-before-Remove contract).
func (s *streamScorer) row(p int) []float64 { return s.shortX.Row(p) }

// translate maps shortlist pick p to its pool position via binary search
// in the sorted live-id mirror.
func (s *streamScorer) translate(p int) int {
	id := s.shortIDs[p]
	pos := sort.SearchInts(s.ids, id)
	if pos >= len(s.ids) || s.ids[pos] != id {
		panic(fmt.Sprintf("engine: streamed pool lost candidate id %d", id))
	}
	return pos
}

// remove drops the candidate at pool position p: tombstoned in the stream
// state, compacted out of the id mirror.
func (s *streamScorer) remove(p int) {
	s.st.Remove(s.ids[p])
	s.ids = append(s.ids[:p], s.ids[p+1:]...)
}

// invalidate resets the prune bounds after a model refit (see
// StreamState.InvalidateBounds).
func (s *streamScorer) invalidate() { s.st.InvalidateBounds() }

func (s *streamScorer) close() {}
