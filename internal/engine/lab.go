package engine

import (
	"fmt"

	"alamr/internal/dataset"
)

// Lab runs experiments on demand — the execution seam of an online
// campaign. internal/online provides the live simulator-backed SimLab;
// ReplayLab below serves the offline dataset through the same interface.
type Lab interface {
	// Run executes the configuration and returns the measured job.
	Run(c dataset.Combo) (dataset.Job, error)
	// Candidates enumerates the configurations currently available.
	Candidates() []dataset.Combo
}

// ReplayLab serves a precomputed job database through the Lab interface:
// Run is a table lookup into the dataset and Remove drops a configuration
// from the candidate pool. It lets any Lab consumer — most notably an
// online campaign — execute against replay data, which is how the replay
// and online execution modes meet behind one seam.
type ReplayLab struct {
	ds    *dataset.Dataset
	index map[dataset.Combo]int
	order []dataset.Combo
	gone  map[dataset.Combo]bool
}

// NewReplayLab indexes the dataset by configuration. When the dataset holds
// repeated measurements of one configuration, the first occurrence wins
// (dataset order), keeping lookups deterministic.
func NewReplayLab(ds *dataset.Dataset) *ReplayLab {
	l := &ReplayLab{
		ds:    ds,
		index: make(map[dataset.Combo]int, ds.Len()),
		gone:  make(map[dataset.Combo]bool),
	}
	for i, j := range ds.Jobs {
		c := j.Config()
		if _, ok := l.index[c]; !ok {
			l.index[c] = i
			l.order = append(l.order, c)
		}
	}
	return l
}

// Run implements Lab by looking the configuration up in the dataset.
// Removed configurations stay runnable: Remove only shrinks the candidate
// pool, mirroring how a pool-based campaign re-runs nothing it already
// selected.
func (l *ReplayLab) Run(c dataset.Combo) (dataset.Job, error) {
	i, ok := l.index[c]
	if !ok {
		return dataset.Job{}, fmt.Errorf("engine: configuration %+v is not in the replay dataset", c)
	}
	return l.ds.Jobs[i], nil
}

// Candidates implements Lab: all dataset configurations not yet removed, in
// dataset order.
func (l *ReplayLab) Candidates() []dataset.Combo {
	out := make([]dataset.Combo, 0, len(l.order))
	for _, c := range l.order {
		if !l.gone[c] {
			out = append(out, c)
		}
	}
	return out
}

// Remove drops a configuration from the candidate pool (remove-from-pool
// semantic: the offline pool only ever shrinks). Unknown configurations are
// a no-op.
func (l *ReplayLab) Remove(c dataset.Combo) {
	if _, ok := l.index[c]; ok {
		l.gone[c] = true
	}
}

// PoolLen reports how many candidates remain.
func (l *ReplayLab) PoolLen() int {
	n := 0
	for _, c := range l.order {
		if !l.gone[c] {
			n++
		}
	}
	return n
}
