package engine

import (
	"errors"
	"fmt"

	"alamr/internal/dataset"
)

// ErrNotInPool classifies a ReplayLab.Run request for a configuration the
// replay dataset never measured. Callers distinguish it (errors.Is) from
// infrastructure faults: asking for an absent feed is a caller bug or a
// stale candidate list, not a retryable lab failure.
var ErrNotInPool = errors.New("engine: configuration is not in the replay dataset")

// Lab runs experiments on demand — the execution seam of an online
// campaign. internal/online provides the live simulator-backed SimLab;
// ReplayLab below serves the offline dataset through the same interface.
type Lab interface {
	// Run executes the configuration and returns the measured job.
	Run(c dataset.Combo) (dataset.Job, error)
	// Candidates enumerates the configurations currently available.
	Candidates() []dataset.Combo
}

// ReplayLab serves a precomputed job database through the Lab interface:
// Run is a table lookup into the dataset and Remove drops a configuration
// from the candidate pool. It lets any Lab consumer — most notably an
// online campaign — execute against replay data, which is how the replay
// and online execution modes meet behind one seam.
type ReplayLab struct {
	ds    *dataset.Dataset
	index map[dataset.Combo]int
	order []dataset.Combo
	gone  map[dataset.Combo]bool
	live  int
}

// NewReplayLab indexes the dataset by configuration. When the dataset holds
// repeated measurements of one configuration, the first occurrence wins
// (dataset order), keeping lookups deterministic.
func NewReplayLab(ds *dataset.Dataset) *ReplayLab {
	l := &ReplayLab{
		ds:    ds,
		index: make(map[dataset.Combo]int, ds.Len()),
		gone:  make(map[dataset.Combo]bool),
	}
	for i, j := range ds.Jobs {
		c := j.Config()
		if _, ok := l.index[c]; !ok {
			l.index[c] = i
			l.order = append(l.order, c)
		}
	}
	l.live = len(l.order)
	return l
}

// Run implements Lab by looking the configuration up in the dataset.
// Removed configurations stay runnable: Remove only shrinks the candidate
// pool, mirroring how a pool-based campaign re-runs nothing it already
// selected.
func (l *ReplayLab) Run(c dataset.Combo) (dataset.Job, error) {
	i, ok := l.index[c]
	if !ok {
		return dataset.Job{}, fmt.Errorf("%w: %+v", ErrNotInPool, c)
	}
	return l.ds.Jobs[i], nil
}

// Candidates implements Lab: all dataset configurations not yet removed, in
// dataset order. When removed entries come to dominate the order slice
// (more than half), it is first compacted in place so repeated polling on a
// heavily-drained pool stops re-walking dead entries; the amortized cost per
// call is O(live).
func (l *ReplayLab) Candidates() []dataset.Combo {
	l.compact()
	out := make([]dataset.Combo, 0, l.live)
	for _, c := range l.order {
		if !l.gone[c] {
			out = append(out, c)
		}
	}
	return out
}

// compact drops removed entries from the order slice once they outnumber the
// survivors, preserving dataset order. Each removed entry is walked at most
// O(1) amortized times across the lab's lifetime: an entry survives at most
// one doubling of the dead fraction before a compaction sweeps it out.
func (l *ReplayLab) compact() {
	if len(l.order) <= 2*l.live {
		return
	}
	keep := l.order[:0]
	for _, c := range l.order {
		if l.gone[c] {
			delete(l.gone, c)
			continue
		}
		keep = append(keep, c)
	}
	l.order = keep
}

// Remove drops a configuration from the candidate pool (remove-from-pool
// semantic: the offline pool only ever shrinks). Unknown or already-removed
// configurations are a no-op.
func (l *ReplayLab) Remove(c dataset.Combo) {
	if _, ok := l.index[c]; ok && !l.gone[c] {
		l.gone[c] = true
		l.live--
	}
}

// PoolLen reports how many candidates remain, in O(1).
func (l *ReplayLab) PoolLen() int { return l.live }
