package engine

import "alamr/internal/obs"

// CampaignObs scopes the campaign-level metrics to one named campaign via
// labeled series (`{campaign="..."}`), so a sweep of concurrent campaigns
// keeps separable counters instead of interleaving writes into the shared
// process-wide gauges. A nil *CampaignObs is valid and records nothing —
// solo campaigns pay no overhead.
type CampaignObs struct {
	id         string
	iterations *obs.Counter
	violations *obs.Counter
	cumCost    *obs.Gauge
	cumRegret  *obs.Gauge
}

// NewCampaignObs binds per-campaign labeled instruments in the process
// registry. When observability is disabled it returns an inert scope whose
// methods are no-ops (the obs instruments are nil-receiver-safe).
func NewCampaignObs(id string) *CampaignObs {
	c := &CampaignObs{id: id}
	r := obs.Default()
	if r == nil {
		return c
	}
	c.iterations = r.Counter(obs.Labeled(obs.MetricSweepIterations, obs.LabelCampaign, id),
		"AL selections performed by this campaign")
	c.violations = r.Counter(obs.Labeled(obs.MetricSweepViolations, obs.LabelCampaign, id),
		"memory-limit violations in this campaign")
	c.cumCost = r.Gauge(obs.Labeled(obs.MetricSweepCumCost, obs.LabelCampaign, id),
		"cumulative cost CC of this campaign in node-hours")
	c.cumRegret = r.Gauge(obs.Labeled(obs.MetricSweepCumRegret, obs.LabelCampaign, id),
		"cumulative regret CR of this campaign in node-hours")
	return c
}

// ID returns the campaign identifier the scope was created with.
func (c *CampaignObs) ID() string {
	if c == nil {
		return ""
	}
	return c.id
}

// recordSelection updates the per-campaign series after one selection.
func (c *CampaignObs) recordSelection(violated bool, cumCost, cumRegret float64) {
	if c == nil {
		return
	}
	c.iterations.Inc()
	if violated {
		c.violations.Inc()
	}
	c.cumCost.Set(cumCost)
	c.cumRegret.Set(cumRegret)
}
