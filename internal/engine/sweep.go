package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// SweepItem is one campaign in a sweep grid. Run receives the item's
// per-campaign obs scope (nil-safe) and returns the campaign's result.
type SweepItem struct {
	// ID names the campaign; it becomes the `campaign` label value of the
	// item's metric series and identifies it in sweep errors.
	ID string
	// Run executes the campaign.
	Run func(scope *CampaignObs) (any, error)
}

// SweepConfig configures a sweep execution.
type SweepConfig struct {
	// Workers bounds concurrent campaigns (default GOMAXPROCS). Use 1 to
	// force strictly sequential execution in item order — required when the
	// items share mutable state, e.g. one live lab.
	Workers int
	// Items is the campaign grid, in result order.
	Items []SweepItem
}

// SweepResult pairs one item's outcome with its identity. Results are
// returned positionally — result i always belongs to Items[i], regardless
// of completion order — so sweep output is deterministic.
type SweepResult struct {
	ID    string
	Value any
	Err   error
}

// Sweep executes a grid of campaigns across a bounded worker pool with
// per-campaign isolation: each item gets its own obs scope, a panic inside
// one campaign is converted to that item's error, and remaining campaigns
// keep running. Items are dispatched in slice order (with Workers == 1 that
// is also the execution order). The joined error aggregates every failed
// item; per-item errors stay addressable in the result slice.
func Sweep(cfg SweepConfig) ([]SweepResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfg.Items) {
		workers = len(cfg.Items)
	}
	results := make([]SweepResult, len(cfg.Items))
	if len(cfg.Items) == 0 {
		return results, nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				item := cfg.Items[i]
				results[i] = SweepResult{ID: item.ID}
				results[i].Value, results[i].Err = runItem(item)
			}
		}()
	}
	for i := range cfg.Items {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var failures []error
	for i := range results {
		if results[i].Err != nil {
			failures = append(failures, fmt.Errorf("engine: sweep campaign %s: %w", results[i].ID, results[i].Err))
		}
	}
	return results, errors.Join(failures...)
}

// runItem isolates one campaign: its obs scope is scoped to the item ID and
// a panic is degraded to an error so sibling campaigns survive.
func runItem(item SweepItem) (value any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: sweep worker panic: %v", r)
		}
	}()
	return item.Run(NewCampaignObs(item.ID))
}
