package engine

import (
	"strings"
	"testing"

	"alamr/internal/dataset"
)

func TestReplayLabServesDataset(t *testing.T) {
	ds := synthDS(80, 31) // sampling with replacement -> repeated combos
	lab := NewReplayLab(ds)

	unique := make(map[dataset.Combo]int)
	for i, j := range ds.Jobs {
		if _, ok := unique[j.Config()]; !ok {
			unique[j.Config()] = i
		}
	}
	cands := lab.Candidates()
	if len(cands) != len(unique) {
		t.Fatalf("candidates = %d want %d unique combos", len(cands), len(unique))
	}
	if lab.PoolLen() != len(cands) {
		t.Fatalf("PoolLen = %d want %d", lab.PoolLen(), len(cands))
	}

	// First occurrence wins: the job served for a repeated combo is the
	// earliest dataset entry with that configuration.
	for _, c := range cands {
		job, err := lab.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if job != ds.Jobs[unique[c]] {
			t.Fatalf("combo %+v served job %+v want first occurrence %+v", c, job, ds.Jobs[unique[c]])
		}
	}

	if _, err := lab.Run(dataset.Combo{P: 9999}); err == nil ||
		!strings.Contains(err.Error(), "not in the replay dataset") {
		t.Fatalf("unknown combo: err = %v", err)
	}
}

func TestReplayLabRemove(t *testing.T) {
	ds := synthDS(60, 32)
	lab := NewReplayLab(ds)
	cands := lab.Candidates()
	victim := cands[0]

	lab.Remove(victim)
	if lab.PoolLen() != len(cands)-1 {
		t.Fatalf("PoolLen after Remove = %d want %d", lab.PoolLen(), len(cands)-1)
	}
	for _, c := range lab.Candidates() {
		if c == victim {
			t.Fatal("removed combo still listed as candidate")
		}
	}
	// Removed configurations stay runnable (a campaign may re-examine what
	// it already executed), and removing the unknown is a no-op.
	if _, err := lab.Run(victim); err != nil {
		t.Fatalf("removed combo no longer runnable: %v", err)
	}
	lab.Remove(dataset.Combo{P: 9999})
	if lab.PoolLen() != len(cands)-1 {
		t.Fatal("removing an unknown combo changed the pool")
	}
}

func TestReplayLabRemoveIdempotentAndCompacting(t *testing.T) {
	ds := synthDS(200, 33)
	lab := NewReplayLab(ds)
	all := lab.Candidates()
	total := len(all)

	// Double-remove must not double-decrement the live count.
	lab.Remove(all[0])
	lab.Remove(all[0])
	if lab.PoolLen() != total-1 {
		t.Fatalf("PoolLen after double remove = %d want %d", lab.PoolLen(), total-1)
	}

	// Drain most of the pool so the compaction threshold (dead > live)
	// trips, then verify order, contents, and counts all survive it.
	for _, c := range all[1 : total-3] {
		lab.Remove(c)
	}
	want := []dataset.Combo{all[total-3], all[total-2], all[total-1]}
	if lab.PoolLen() != len(want) {
		t.Fatalf("PoolLen after drain = %d want %d", lab.PoolLen(), len(want))
	}
	got := lab.Candidates()
	if len(got) != len(want) {
		t.Fatalf("Candidates after drain = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dataset order lost after compaction: got %v want %v", got, want)
		}
	}
	if len(lab.order) != len(want) {
		t.Fatalf("order not compacted: len = %d want %d", len(lab.order), len(want))
	}
	if len(lab.gone) != 0 {
		t.Fatalf("compaction left %d stale gone entries", len(lab.gone))
	}

	// Survivors still behave after compaction: runnable, removable.
	if _, err := lab.Run(want[0]); err != nil {
		t.Fatalf("survivor not runnable after compaction: %v", err)
	}
	lab.Remove(want[1])
	if lab.PoolLen() != 2 {
		t.Fatalf("PoolLen after post-compaction remove = %d want 2", lab.PoolLen())
	}
	got = lab.Candidates()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[2] {
		t.Fatalf("post-compaction candidates = %v want [%v %v]", got, want[0], want[2])
	}
}
