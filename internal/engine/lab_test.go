package engine

import (
	"strings"
	"testing"

	"alamr/internal/dataset"
)

func TestReplayLabServesDataset(t *testing.T) {
	ds := synthDS(80, 31) // sampling with replacement -> repeated combos
	lab := NewReplayLab(ds)

	unique := make(map[dataset.Combo]int)
	for i, j := range ds.Jobs {
		if _, ok := unique[j.Config()]; !ok {
			unique[j.Config()] = i
		}
	}
	cands := lab.Candidates()
	if len(cands) != len(unique) {
		t.Fatalf("candidates = %d want %d unique combos", len(cands), len(unique))
	}
	if lab.PoolLen() != len(cands) {
		t.Fatalf("PoolLen = %d want %d", lab.PoolLen(), len(cands))
	}

	// First occurrence wins: the job served for a repeated combo is the
	// earliest dataset entry with that configuration.
	for _, c := range cands {
		job, err := lab.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if job != ds.Jobs[unique[c]] {
			t.Fatalf("combo %+v served job %+v want first occurrence %+v", c, job, ds.Jobs[unique[c]])
		}
	}

	if _, err := lab.Run(dataset.Combo{P: 9999}); err == nil ||
		!strings.Contains(err.Error(), "not in the replay dataset") {
		t.Fatalf("unknown combo: err = %v", err)
	}
}

func TestReplayLabRemove(t *testing.T) {
	ds := synthDS(60, 32)
	lab := NewReplayLab(ds)
	cands := lab.Candidates()
	victim := cands[0]

	lab.Remove(victim)
	if lab.PoolLen() != len(cands)-1 {
		t.Fatalf("PoolLen after Remove = %d want %d", lab.PoolLen(), len(cands)-1)
	}
	for _, c := range lab.Candidates() {
		if c == victim {
			t.Fatal("removed combo still listed as candidate")
		}
	}
	// Removed configurations stay runnable (a campaign may re-examine what
	// it already executed), and removing the unknown is a no-op.
	if _, err := lab.Run(victim); err != nil {
		t.Fatalf("removed combo no longer runnable: %v", err)
	}
	lab.Remove(dataset.Combo{P: 9999})
	if lab.PoolLen() != len(cands)-1 {
		t.Fatal("removing an unknown combo changed the pool")
	}
}
