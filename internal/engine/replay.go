package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"alamr/internal/dataset"
	"alamr/internal/gp"
	"alamr/internal/mat"
	"alamr/internal/obs"
	"alamr/internal/stats"
)

// RunReplay executes Algorithm 1 against the offline dataset (the paper's
// replay evaluation, §IV) on one partition and returns the recorded
// trajectory.
func RunReplay(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig) (*Trajectory, error) {
	return runReplay(ds, part, cfg, 1, BatchIndependent, false)
}

// RunReplayBatch is RunReplay with q-batch selection, the parallel-selection
// scheme the paper's future work proposes: each round the (stale) models
// pick q candidates, all q simulations "run", and the models retrain once on
// the whole batch. Per-selection metrics (CC, CR, violations) are recorded
// exactly as in the sequential loop; the RMSE curves advance once per round
// — all q selections of a round share the post-round value, since that is
// the first moment a new model exists.
func RunReplayBatch(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, q int, strategy BatchStrategy) (*Trajectory, error) {
	if q < 1 {
		return nil, fmt.Errorf("engine: batch size %d, need >= 1", q)
	}
	return runReplay(ds, part, cfg, q, strategy, true)
}

// replayEnv adapts the offline dataset to LoopEnv: "executing" a candidate
// is a table lookup into the precomputed job database.
type replayEnv struct {
	ds        *dataset.Dataset
	tr        *Trajectory
	remaining []int
	scorer    scorer

	gpCost, gpMem     gp.Model
	xTest             *mat.Dense
	costTest, memTest []float64
	memLimitLog       float64

	// batch selects the per-round RMSE recording (and disables the
	// stability check, which is defined per-iteration).
	batch  bool
	stable *StableStopConfig

	// fid is the fidelity ladder bookkeeping of a multi-fidelity campaign;
	// nil keeps every scored candidate set fidelity-free.
	fid *fidelityRuntime

	prevTestMu []float64
	stableRun  int
}

func (e *replayEnv) PoolLen() int { return len(e.remaining) }

func (e *replayEnv) Score() *Candidates {
	c := e.scorer.candidates(e.memLimitLog)
	if e.fid != nil {
		// Candidate levels in candidates order (identity translate for the
		// materialized pool, shortlist translate for the streamed one); the
		// partition's levels were validated against the ladder up front.
		lv := make([]int, c.Len())
		for i := range lv {
			lv[i], _ = e.fid.level(e.ds.Jobs[e.remaining[e.scorer.translate(i)]].MaxLevel)
		}
		c.Fid = &FidelityView{Level: lv, TopGain: e.scorer.fidelityGains()}
	}
	return c
}

func (e *replayEnv) Execute(pick int) (Execution, error) {
	ex := Execution{Job: e.ds.Jobs[e.remaining[e.scorer.translate(pick)]]}
	if e.fid != nil {
		ex.Level, _ = e.fid.level(ex.Job.MaxLevel)
	}
	return ex, nil
}

func (e *replayEnv) Record(pick int, _ *Candidates, ex Execution, violated bool, cumCost, cumRegret float64) {
	job := ex.Job
	e.tr.Selected = append(e.tr.Selected, e.remaining[e.scorer.translate(pick)])
	e.tr.SelectedCost = append(e.tr.SelectedCost, job.CostNH)
	e.tr.SelectedMem = append(e.tr.SelectedMem, job.MemMB)
	e.tr.CumCost = append(e.tr.CumCost, cumCost)
	e.tr.CumRegret = append(e.tr.CumRegret, cumRegret)
	e.tr.Violation = append(e.tr.Violation, violated)
	if e.fid != nil {
		e.tr.SelectedLevel = append(e.tr.SelectedLevel, ex.Level)
		obs.FidelitySelections.Inc(strconv.Itoa(ex.Level))
	}
}

// Absorb feeds the measurement into both models (Algorithm 1 lines 10-11):
// periodic full refit with warm-started hyperparameters, incremental rank-1
// update otherwise. The row view must be consumed before Remove shifts the
// pool matrix; Append copies it.
func (e *replayEnv) Absorb(pick int, ex Execution, refit bool) error {
	xNew := e.scorer.row(pick)
	logC := math.Log10(ex.Job.CostNH)
	logM := math.Log10(ex.Job.MemMB)
	if refit {
		if err := appendAndRefit(e.gpCost, xNew, logC); err != nil {
			return fmt.Errorf("engine: cost refit after %d selections: %w", e.tr.Iterations(), err)
		}
		if err := appendAndRefit(e.gpMem, xNew, logM); err != nil {
			return fmt.Errorf("engine: memory refit after %d selections: %w", e.tr.Iterations(), err)
		}
		e.scorer.invalidate()
		return nil
	}
	if err := e.gpCost.Append(xNew, logC); err != nil {
		return fmt.Errorf("engine: cost update after %d selections: %w", e.tr.Iterations(), err)
	}
	if err := e.gpMem.Append(xNew, logM); err != nil {
		return fmt.Errorf("engine: memory update after %d selections: %w", e.tr.Iterations(), err)
	}
	return nil
}

// Remove drops the round's picks: the index slice is rebuilt via a drop
// set, the scorer in descending position order (so earlier removals do not
// shift later positions). Picks arrive as candidates-indices and are
// translated to pool positions first (identity for the materialized pool).
func (e *replayEnv) Remove(picks []int) {
	// Translate before any removal shifts positions.
	pos := make([]int, len(picks))
	drop := make(map[int]bool, len(picks))
	for i, p := range picks {
		pos[i] = e.scorer.translate(p)
		drop[pos[i]] = true
	}
	next := e.remaining[:0]
	for i, idx := range e.remaining {
		if !drop[i] {
			next = append(next, idx)
		}
	}
	e.remaining = next
	sort.Ints(pos)
	for i := len(pos) - 1; i >= 0; i-- {
		e.scorer.remove(pos[i])
	}
}

func (e *replayEnv) Refit() error {
	if err := e.gpCost.Refit(); err != nil {
		return fmt.Errorf("engine: cost refit after %d selections: %w", e.tr.Iterations(), err)
	}
	if err := e.gpMem.Refit(); err != nil {
		return fmt.Errorf("engine: memory refit after %d selections: %w", e.tr.Iterations(), err)
	}
	e.scorer.invalidate()
	return nil
}

func (e *replayEnv) RoundEnd(selDone, picked int) (StopReason, bool, error) {
	// One post-round RMSE value; in batch mode it is replicated across the
	// round's picks (the sequential loop has picked == 1).
	cr := nonLogRMSE(e.gpCost, e.xTest, e.costTest)
	mr := nonLogRMSE(e.gpMem, e.xTest, e.memTest)
	for i := 0; i < picked; i++ {
		e.tr.CostRMSE = append(e.tr.CostRMSE, cr)
		e.tr.MemRMSE = append(e.tr.MemRMSE, mr)
	}

	if !e.batch && e.stable != nil {
		muTest, _ := e.gpCost.Predict(e.xTest)
		if e.prevTestMu != nil {
			if meanAbsDiff(muTest, e.prevTestMu) < e.stable.Tol {
				e.stableRun++
			} else {
				e.stableRun = 0
			}
			if e.stableRun >= e.stable.Window {
				e.prevTestMu = muTest
				return StopStable, true, nil
			}
		}
		e.prevTestMu = muTest
	}
	return "", false, nil
}

// runReplay is the one replay-mode entry point behind RunReplay and
// RunReplayBatch: it fits the initial surrogates, builds the replay
// environment, and hands control to the shared RunLoop.
func runReplay(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, q int, strategy BatchStrategy, batch bool) (*Trajectory, error) {
	cfg.setDefaults()
	if cfg.Policy == nil {
		return nil, errors.New("engine: LoopConfig.Policy is required")
	}
	if err := part.Validate(ds.Len()); err != nil {
		return nil, err
	}
	if len(part.Init) == 0 || len(part.Active) == 0 || len(part.Test) == 0 {
		return nil, errors.New("engine: partition must have non-empty Init, Active, and Test")
	}
	if err := checkLogPrecondition(ds, part); err != nil {
		return nil, err
	}
	var fid *fidelityRuntime
	if cfg.Fidelity != nil {
		if batch {
			return nil, errors.New("engine: fidelity campaigns do not support batch selection")
		}
		if err := cfg.Fidelity.Validate(); err != nil {
			return nil, err
		}
		fid = newFidelityRuntime(cfg.Fidelity)
		// Validate the whole partition against the ladder up front so the
		// per-round level lookups cannot fail mid-campaign.
		for _, idx := range [][]int{part.Init, part.Active, part.Test} {
			for _, i := range idx {
				if _, err := fid.level(ds.Jobs[i].MaxLevel); err != nil {
					return nil, fmt.Errorf("engine: job %d: %w", i, err)
				}
			}
		}
		obs.FidelityLevels.Set(float64(len(cfg.Fidelity.Levels)))
	}

	features := func(idx []int) *mat.Dense {
		if cfg.Log2P {
			return ds.FeaturesLog2P(idx)
		}
		return ds.Features(idx)
	}

	xInit := features(part.Init)
	xTest := features(part.Test)
	costTest := ds.Cost(part.Test)
	memTest := ds.Mem(part.Test)

	spFit := obs.SpanFit.Start()
	gpCost, err := cfg.newModel()
	if err != nil {
		spFit.End()
		return nil, err
	}
	if err := gpCost.Fit(xInit, ds.LogCost(part.Init)); err != nil {
		spFit.End()
		return nil, fmt.Errorf("engine: initial cost fit: %w", err)
	}
	gpMem, err := cfg.newModel()
	if err != nil {
		spFit.End()
		return nil, err
	}
	if err := gpMem.Fit(xInit, ds.LogMem(part.Init)); err != nil {
		spFit.End()
		return nil, fmt.Errorf("engine: initial memory fit: %w", err)
	}
	spFit.End()
	// Subsequent refits warm start from the previous optimum (Algorithm 1's
	// note); random restarts are only needed for the initial fit.
	gpCost.SetRestarts(0)
	gpMem.SetRestarts(0)

	name := cfg.Policy.Name()
	if batch {
		name = fmt.Sprintf("%s[q=%d,%s]", cfg.Policy.Name(), q, strategy)
	}
	tr := &Trajectory{
		Policy: name,
		NInit:  len(part.Init),
		Seed:   cfg.Seed,
	}
	tr.InitCostRMSE = nonLogRMSE(gpCost, xTest, costTest)
	tr.InitMemRMSE = nonLogRMSE(gpMem, xTest, memTest)

	remaining := append([]int(nil), part.Active...)
	rng := rand.New(rand.NewSource(stats.SplitSeed(cfg.Seed, 0)))

	maxSel := len(remaining)
	if cfg.MaxIterations > 0 && cfg.MaxIterations < maxSel {
		maxSel = cfg.MaxIterations
	}
	if cfg.Stable != nil {
		cfg.Stable.setDefaults()
	}
	memLimitRaw, memLimitLog := memLimits(cfg.MemLimitMB)

	// The scorer owns the pool features for the whole run: candidates are
	// re-scored each round through the incremental posterior caches (or
	// direct Predict, see LoopConfig.DirectScoring; or the streamed
	// sharded top-k pool, see LoopConfig.Pool) and rows leave the pool in
	// lockstep with the environment's index bookkeeping.
	var sc scorer
	if cfg.Pool != nil {
		if batch {
			return nil, errors.New("engine: streamed pool and batch selection are mutually exclusive")
		}
		rank, ok := rankerFor(cfg.Policy.Name())
		if !ok {
			return nil, fmt.Errorf("engine: policy %q is not shortlist-safe; the streamed pool supports: %s",
				cfg.Policy.Name(), strings.Join(RankerNames(), ", "))
		}
		sc = newStreamScorer(gpCost, gpMem, features(remaining), cfg.Pool, rank,
			rankerIsMonotone(cfg.Policy.Name()))
	} else {
		sc = newPoolScorer(gpCost, gpMem, features(remaining), cfg.DirectScoring)
	}
	env := &replayEnv{
		ds:          ds,
		tr:          tr,
		remaining:   remaining,
		scorer:      sc,
		gpCost:      gpCost,
		gpMem:       gpMem,
		xTest:       xTest,
		costTest:    costTest,
		memTest:     memTest,
		memLimitLog: memLimitLog,
		batch:       batch,
		stable:      cfg.Stable,
		fid:         fid,
	}
	defer env.scorer.close()

	tr.Reason = StopPoolExhausted
	reason, err := RunLoop(env, LoopParams{
		Policy:        cfg.Policy,
		RNG:           rng,
		MaxSel:        maxSel,
		HyperoptEvery: cfg.HyperoptEvery,
		Q:             q,
		Strategy:      strategy,
		MemLimitRaw:   memLimitRaw,
		MemLimitMB:    cfg.MemLimitMB,
		Campaign:      cfg.Campaign,
		Stop:          cfg.Stop,
	})
	if err != nil {
		return nil, err
	}
	if reason != "" {
		tr.Reason = reason
	}
	if tr.Reason == StopPoolExhausted && len(env.remaining) > 0 {
		tr.Reason = StopMaxIterations
	}
	tr.FinalHyperCost = gpCost.Hyperparams()
	tr.FinalHyperMem = gpMem.Hyperparams()
	return tr, nil
}

func appendAndRefit(g gp.Model, x []float64, y float64) error {
	if err := g.Append(x, y); err != nil {
		return err
	}
	return g.Refit()
}

// nonLogRMSE evaluates the paper's error metric (eq. 10): predictions are
// exponentiated back to the raw response scale and compared with the
// unmodified test measurements.
func nonLogRMSE(g gp.Model, xTest *mat.Dense, actual []float64) float64 {
	mu, _ := g.Predict(xTest)
	pred := make([]float64, len(mu))
	for i, m := range mu {
		pred[i] = math.Pow(10, m)
	}
	return stats.RMSE(pred, actual)
}

func meanAbsDiff(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}
