package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/dataset"
	"alamr/internal/obs"
)

// Execution is the outcome of running one selected candidate: the measured
// job plus the censoring/violation verdict the environment already knows.
// The loop applies the raw memory-limit threshold on top for uncensored
// jobs, so replay and online campaigns share one regret accounting.
type Execution struct {
	Job dataset.Job
	// Censored marks a run that was killed before completing (e.g. an OOM
	// kill): its responses are partial and must not feed the cost surrogate.
	Censored bool
	// Violated pre-judges the memory-limit violation for censored runs (an
	// OOM kill is the violation even though MemMB is only a lower bound).
	Violated bool
	// Level is the executed candidate's fidelity ladder index
	// (multi-fidelity campaigns only; always 0 otherwise).
	Level int
}

// LoopEnv is the execution seam of the unified campaign loop: everything
// Algorithm 1 needs from "the world" — scoring the remaining pool, running a
// selected candidate, recording it, feeding the surrogates, and the
// per-round bookkeeping — behind one interface. The replay environment
// serves the offline dataset; the online campaign proposes live jobs.
// Indices handed to Execute/Record/Absorb/Remove refer to positions in the
// most recent Score() result.
type LoopEnv interface {
	// PoolLen reports how many candidates remain.
	PoolLen() int
	// Score produces model predictions for the remaining pool.
	Score() *Candidates
	// Execute runs the pick-th candidate. A returned error is fatal and
	// aborts the loop with StopFault.
	Execute(pick int) (Execution, error)
	// Record appends the executed pick to the environment's result record.
	// It runs before Absorb and before Remove, so pick still addresses the
	// scored pool.
	Record(pick int, cands *Candidates, e Execution, violated bool, cumCost, cumRegret float64)
	// Absorb feeds the measurement into the surrogates; refit requests a
	// hyperparameter re-optimization alongside the update (q=1 cadence).
	Absorb(pick int, e Execution, refit bool) error
	// Remove drops the round's picks from the pool after all of them have
	// been recorded and absorbed.
	Remove(picks []int)
	// Refit re-optimizes both surrogates on the round cadence (q>1 only).
	Refit() error
	// RoundEnd runs the environment's per-round epilogue (RMSE curves,
	// stability checks, budget checks, checkpoints). selDone is the total
	// number of selections so far, picked the size of the round just
	// finished. A non-empty reason with stop=true terminates the loop; an
	// error aborts it, keeping the reason ("" preserves the caller's
	// default).
	RoundEnd(selDone, picked int) (StopReason, bool, error)
}

// LoopParams carries the loop-level knobs shared by both execution modes.
type LoopParams struct {
	Policy Policy
	// RNG is the policy's randomness stream; the loop never draws from it
	// directly, so checkpointed draw counts stay exact.
	RNG *rand.Rand
	// StartSel is the number of selections already recorded (resume offset).
	StartSel int
	// MaxSel bounds the total number of selections.
	MaxSel int
	// HyperoptEvery is the refit cadence in selections (q=1) or is divided
	// by Q for the round cadence (q>1).
	HyperoptEvery int
	// Q is the batch size; 0/1 selects the sequential single-pick path.
	Q int
	// Strategy assembles q-batches from the single-point policy.
	Strategy BatchStrategy
	// MemLimitRaw is the violation threshold in MB (+Inf when unlimited).
	MemLimitRaw float64
	// MemLimitMB is the configured limit (>0 enables the headroom gauge).
	MemLimitMB float64
	// CumCost / CumRegret are running totals carried in from a resume.
	CumCost, CumRegret float64
	// Campaign optionally records into per-campaign labeled series.
	Campaign *CampaignObs
	// Stop, when non-nil, is polled before every round; a true return ends
	// the loop with StopCancelled. Cancellation is cooperative and lands on
	// round boundaries only, so a checkpointed campaign cancelled mid-flight
	// still holds a consistent (resumable) state.
	Stop func() bool
}

// RunLoop drives Algorithm 1 against the environment: score the pool, let
// the policy select, execute, account cost/regret, feed the surrogates, and
// run the environment's round epilogue — until the pool or the selection
// budget is exhausted, a stop condition fires, or a fault aborts the run.
// The returned reason is "" when the loop ran out of pool/budget naturally
// (callers keep their own default), and names the stop condition otherwise.
func RunLoop(env LoopEnv, p LoopParams) (StopReason, error) {
	q := p.Q
	if q < 1 {
		q = 1
	}
	cumCost, cumRegret := p.CumCost, p.CumRegret
	sel := p.StartSel
	round := 0
	for sel < p.MaxSel && env.PoolLen() > 0 {
		if p.Stop != nil && p.Stop() {
			return StopCancelled, nil
		}
		want := q
		if rem := p.MaxSel - sel; rem < want {
			want = rem
		}
		spScore := obs.SpanScore.Start()
		cands := env.Score()
		spScore.End()

		spSelect := obs.SpanSelect.Start()
		var picks []int
		var err error
		if q == 1 {
			// Single-pick fast path: call the policy directly so the RNG draw
			// sequence matches the historical sequential loop exactly.
			var pick int
			pick, err = p.Policy.Select(cands, p.RNG)
			if err == nil {
				picks = []int{pick}
			}
		} else {
			picks, err = SelectBatch(p.Policy, cands, want, p.Strategy, p.RNG)
		}
		spSelect.End()
		if err != nil && !errors.Is(err, ErrAllExceedLimit) {
			return StopFault, fmt.Errorf("engine: policy %s at selection %d: %w", p.Policy.Name(), sel, err)
		}
		// A memory-aware policy that ran out of satisfying candidates partway
		// through a batch still finishes the round with what it picked, then
		// stops.
		partial := errors.Is(err, ErrAllExceedLimit)
		if len(picks) == 0 {
			return StopMemoryLimit, nil
		}

		for _, pick := range picks {
			if pick < 0 || pick >= env.PoolLen() {
				return StopFault, fmt.Errorf("engine: policy %s returned out-of-range index %d of %d", p.Policy.Name(), pick, env.PoolLen())
			}
			spRun := obs.SpanRun.Start()
			e, execErr := env.Execute(pick)
			spRun.End()
			if execErr != nil {
				return StopFault, execErr
			}
			job := e.Job
			violated := e.Violated
			if !e.Censored && job.MemMB >= p.MemLimitRaw {
				violated = true
			}
			cumCost += job.CostNH
			if violated {
				cumRegret += job.CostNH
				obs.CampaignViolations.Inc()
			}
			env.Record(pick, cands, e, violated, cumCost, cumRegret)
			obs.CampaignCumCost.Set(cumCost)
			obs.CampaignCumRegret.Set(cumRegret)
			if p.MemLimitMB > 0 {
				obs.CampaignHeadroom.Set(p.MemLimitRaw - job.MemMB)
			}
			obs.JobCost.Observe(job.CostNH)
			obs.JobMem.Observe(job.MemMB)
			p.Campaign.recordSelection(violated, cumCost, cumRegret)

			refit := q == 1 && (sel+1)%p.HyperoptEvery == 0
			// Span handles hold atomic state and must not be copied.
			spHandle := &obs.SpanFeed
			if refit {
				spHandle = &obs.SpanHyperopt
			}
			spFeed := spHandle.Start()
			if err := env.Absorb(pick, e, refit); err != nil {
				return StopFault, err
			}
			spFeed.End()
			sel++
		}

		env.Remove(picks)
		obs.LoopIterations.Add(int64(len(picks)))
		obs.PoolSize.Set(float64(env.PoolLen()))

		round++
		if q > 1 && round%maxInt(p.HyperoptEvery/q, 1) == 0 {
			spHyper := obs.SpanHyperopt.Start()
			if err := env.Refit(); err != nil {
				spHyper.End()
				return StopFault, err
			}
			spHyper.End()
		}

		reason, stop, err := env.RoundEnd(sel, len(picks))
		if err != nil {
			return reason, err
		}
		if stop {
			return reason, nil
		}
		if partial {
			return StopMemoryLimit, nil
		}
	}
	return "", nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// memLimits derives the raw and log-space violation thresholds from a
// configured limit (0 or negative disables both → +Inf).
func memLimits(memLimitMB float64) (raw, log float64) {
	raw, log = math.Inf(1), math.Inf(1)
	if memLimitMB > 0 {
		raw = memLimitMB
		log = math.Log10(memLimitMB)
	}
	return raw, log
}
