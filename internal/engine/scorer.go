package engine

import (
	"alamr/internal/gp"
	"alamr/internal/mat"
)

// scorer is the replay loop's candidate-scoring surface. The materialized
// poolScorer hands the policy the whole remaining pool; the streamScorer
// (streampool.go) hands it a top-k shortlist whose picks translate back to
// pool positions.
type scorer interface {
	candidates(memLimitLog float64) *Candidates
	// row returns the features of pick p (a candidates-index); the view
	// must be consumed before remove shifts the pool.
	row(p int) []float64
	// translate maps pick p (a candidates-index) to its pool position.
	translate(p int) int
	// remove drops the candidate at pool position p.
	remove(p int)
	// invalidate discards any state derived from the previous posterior;
	// the loop calls it after every hyperparameter refit.
	invalidate()
	// fidelityGains returns the per-candidate top-fidelity information
	// gains in candidates order when the cost surrogate can provide them
	// (multi-fidelity models), nil otherwise.
	fidelityGains() []float64
	close()
}

// poolScorer produces candidate predictions for the remaining pool each
// iteration. Unless direct scoring is forced it attaches the
// model-appropriate incremental pool cache (gp.NewPoolCache): ScoringCache
// for exact GPs (bitwise-identical to direct Predict — an algebraic
// reformulation, not an approximation), the Sherman-Morrison sparse cache
// for SoR surrogates (bitwise on rebuild, ≤1e-8 across incremental
// extends), and the per-leaf-routed cache for treed surrogates (bitwise,
// inherited from the per-leaf ScoringCaches).
type poolScorer struct {
	costModel, memModel gp.Model
	costCache, memCache gp.PoolCache
	x                   *mat.Dense
}

func newPoolScorer(costModel, memModel gp.Model, x *mat.Dense, direct bool) *poolScorer {
	s := &poolScorer{costModel: costModel, memModel: memModel, x: x}
	if !direct {
		s.costCache = gp.NewPoolCache(costModel, x)
		s.memCache = gp.NewPoolCache(memModel, x)
		if s.costCache == nil || s.memCache == nil {
			// Mixed or uncacheable model types: fall back to direct scoring.
			if s.costCache != nil {
				s.costCache.Close()
			}
			if s.memCache != nil {
				s.memCache.Close()
			}
			s.costCache, s.memCache = nil, nil
		}
	}
	return s
}

func (s *poolScorer) candidates(memLimitLog float64) *Candidates {
	var muC, sigC, muM, sigM []float64
	if s.costCache != nil {
		muC, sigC = s.costCache.Scores()
		muM, sigM = s.memCache.Scores()
	} else {
		muC, sigC = s.costModel.Predict(s.x)
		muM, sigM = s.memModel.Predict(s.x)
	}
	return &Candidates{
		X:           s.x,
		MuCost:      muC,
		SigmaCost:   sigC,
		MuMem:       muM,
		SigmaMem:    sigM,
		MemLimitLog: memLimitLog,
	}
}

func (s *poolScorer) row(p int) []float64 { return s.x.Row(p) }

func (s *poolScorer) translate(p int) int { return p }

func (s *poolScorer) remove(p int) {
	s.x = s.x.RemoveRow(p)
	if s.costCache != nil {
		s.costCache.Remove(p)
		s.memCache.Remove(p)
	}
}

// invalidate is a no-op: the attached pool caches register with their
// models and invalidate themselves on refit.
func (s *poolScorer) invalidate() {}

// fidelityGains serves the cost surrogate's top-fidelity information gains:
// from the multi-fidelity pool cache when one is attached, directly from
// the model on the direct-scoring path, nil for single-fidelity surrogates.
func (s *poolScorer) fidelityGains() []float64 {
	if fs, ok := s.costCache.(gp.FidelityScorer); ok {
		return fs.TopInfoGains()
	}
	if mf, ok := s.costModel.(*gp.MultiFid); ok {
		return mf.TopInfoGains(s.x)
	}
	return nil
}

func (s *poolScorer) close() {
	if s.costCache != nil {
		s.costCache.Close()
		s.memCache.Close()
	}
}
