package engine

import (
	"alamr/internal/gp"
	"alamr/internal/mat"
)

// poolScorer produces candidate predictions for the remaining pool each
// iteration. When both surrogates are exact GPs (and direct scoring is not
// forced) it attaches incremental ScoringCaches so the per-iteration cost is
// O(n·m) instead of refitting-from-scratch O(n·m²); otherwise it falls back
// to direct Predict calls. Both paths return bitwise-identical scores — the
// cache is an algebraic reformulation, not an approximation.
type poolScorer struct {
	costModel, memModel gp.Model
	costCache, memCache *gp.ScoringCache
	x                   *mat.Dense
}

func newPoolScorer(costModel, memModel gp.Model, x *mat.Dense, direct bool) *poolScorer {
	s := &poolScorer{costModel: costModel, memModel: memModel, x: x}
	gc, okc := costModel.(*gp.GP)
	gm, okm := memModel.(*gp.GP)
	if okc && okm && !direct {
		s.costCache = gp.NewScoringCache(gc, x)
		s.memCache = gp.NewScoringCache(gm, x)
	}
	return s
}

func (s *poolScorer) candidates(memLimitLog float64) *Candidates {
	var muC, sigC, muM, sigM []float64
	if s.costCache != nil {
		muC, sigC = s.costCache.Scores()
		muM, sigM = s.memCache.Scores()
	} else {
		muC, sigC = s.costModel.Predict(s.x)
		muM, sigM = s.memModel.Predict(s.x)
	}
	return &Candidates{
		X:           s.x,
		MuCost:      muC,
		SigmaCost:   sigC,
		MuMem:       muM,
		SigmaMem:    sigM,
		MemLimitLog: memLimitLog,
	}
}

func (s *poolScorer) row(p int) []float64 { return s.x.Row(p) }

func (s *poolScorer) remove(p int) {
	s.x = s.x.RemoveRow(p)
	if s.costCache != nil {
		s.costCache.Remove(p)
		s.memCache.Remove(p)
	}
}

func (s *poolScorer) close() {
	if s.costCache != nil {
		s.costCache.Close()
		s.memCache.Close()
	}
}
