package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/mat"
)

// BatchStrategy controls how a q-batch of candidates is assembled from a
// single-point policy (§VI of the paper discusses batch selection as the
// natural extension for parallel clusters).
type BatchStrategy int

const (
	// BatchIndependent repeatedly applies the policy without updating the
	// model state between picks: fast, but the batch may cluster.
	BatchIndependent BatchStrategy = iota
	// BatchConstantLiar hallucinates reduced uncertainty near each pick
	// before selecting the next, spreading the batch across the pool.
	BatchConstantLiar
)

// String implements fmt.Stringer.
func (s BatchStrategy) String() string {
	switch s {
	case BatchIndependent:
		return "independent"
	case BatchConstantLiar:
		return "constant-liar"
	default:
		return fmt.Sprintf("BatchStrategy(%d)", int(s))
	}
}

// SelectBatch picks up to q distinct candidates by repeatedly applying the
// policy to a working copy of the candidate set. Returned indices refer to
// the original candidate set. When a memory-aware policy exhausts the
// satisfying candidates mid-batch, the picks so far are returned alongside
// ErrAllExceedLimit.
func SelectBatch(p Policy, c *Candidates, q int, strategy BatchStrategy, rng *rand.Rand) ([]int, error) {
	if q < 1 {
		return nil, fmt.Errorf("engine: batch size %d, need >= 1", q)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	n := c.Len()
	if q > n {
		q = n
	}

	work := &Candidates{
		MuCost:      mat.CopyVec(c.MuCost),
		SigmaCost:   mat.CopyVec(c.SigmaCost),
		MuMem:       mat.CopyVec(c.MuMem),
		SigmaMem:    mat.CopyVec(c.SigmaMem),
		MemLimitLog: c.MemLimitLog,
		X:           c.X,
	}

	orig := make([]int, n)
	rows := make([][]float64, n)
	for i := range orig {
		orig[i] = i
		if c.X != nil {
			rows[i] = c.X.Row(i)
		}
	}

	var picks []int
	for len(picks) < q && len(orig) > 0 {
		idx, err := p.Select(work, rng)
		if err != nil {
			if errors.Is(err, ErrAllExceedLimit) && len(picks) > 0 {
				return picks, err
			}
			return picks, err
		}
		if idx < 0 || idx >= len(orig) {
			return picks, fmt.Errorf("engine: policy %s returned out-of-range index %d of %d", p.Name(), idx, len(orig))
		}
		picks = append(picks, orig[idx])

		if strategy == BatchConstantLiar && rows[0] != nil {
			hallucinate(work, rows, idx)
		}

		last := len(orig) - 1
		work.MuCost[idx] = work.MuCost[last]
		work.MuCost = work.MuCost[:last]
		work.SigmaCost[idx] = work.SigmaCost[last]
		work.SigmaCost = work.SigmaCost[:last]
		work.MuMem[idx] = work.MuMem[last]
		work.MuMem = work.MuMem[:last]
		work.SigmaMem[idx] = work.SigmaMem[last]
		work.SigmaMem = work.SigmaMem[:last]
		orig[idx] = orig[last]
		orig = orig[:last]
		rows[idx] = rows[last]
		rows = rows[:last]
		// The working matrix no longer lines up after a swap-remove; policies
		// only read the mu/sigma vectors, so drop it rather than rebuilding.
		work.X = nil
	}
	return picks, nil
}

// hallucinate shrinks the uncertainty of candidates near the picked point,
// emulating the "constant liar" fantasy observation without refitting: the
// picked point's sigmas drop to zero and neighbours are damped by an RBF
// weight in scaled feature space.
func hallucinate(work *Candidates, rows [][]float64, pick int) {
	const l2 = 0.3 * 0.3
	xp := rows[pick]
	for i := range rows {
		if i == pick || rows[i] == nil {
			continue
		}
		w := math.Exp(-mat.SqDist(rows[i], xp) / (2 * l2))
		work.SigmaCost[i] *= 1 - w
		work.SigmaMem[i] *= 1 - w
	}
	work.SigmaCost[pick] = 0
	work.SigmaMem[pick] = 0
}
