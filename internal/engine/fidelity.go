package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/dataset"
	"alamr/internal/stats"
)

// FidelitySpec is the versioned CampaignSpec block that turns a campaign
// multi-fidelity: candidates become (point, fidelity) pairs where the
// fidelity dial is the AMR refinement depth MaxLevel, the surrogates become
// co-kriging models over the ladder (gp.MultiFid), and the acquisition may
// choose which rung to run, not just which point. A spec without this block
// compiles down to the exact single-fidelity code paths.
type FidelitySpec struct {
	// Levels are the MaxLevel grid values forming the ladder, strictly
	// ascending; the last entry is the top (target) fidelity the campaign
	// is accountable for (test error is measured there).
	Levels []int `json:"levels"`
	// InitPerLevel is how many Init jobs the replay partition draws per
	// ladder level (default: the replay section's n_init, i.e. n_init
	// seeds at every rung).
	InitPerLevel int `json:"init_per_level,omitempty"`
}

// Validate checks the ladder's structure against the dataset grid. The spec
// layer calls it from CampaignSpec.Validate; direct online.Config users call
// it themselves (online.Run does).
func (f *FidelitySpec) Validate() error {
	if len(f.Levels) == 0 {
		return errors.New("engine: fidelity spec needs at least one level")
	}
	if len(f.Levels) > len(dataset.GridMaxLevel) {
		return fmt.Errorf("engine: fidelity ladder has %d levels, the maxlevel grid has %d", len(f.Levels), len(dataset.GridMaxLevel))
	}
	for i, l := range f.Levels {
		if !onMaxLevelGrid(l) {
			return fmt.Errorf("engine: fidelity level %d is not on the maxlevel grid %v", l, dataset.GridMaxLevel)
		}
		if i > 0 && l <= f.Levels[i-1] {
			return fmt.Errorf("engine: fidelity levels must be strictly ascending, got %v", f.Levels)
		}
	}
	if f.InitPerLevel < 0 {
		return fmt.Errorf("engine: fidelity init_per_level must be >= 0, got %d", f.InitPerLevel)
	}
	return nil
}

func onMaxLevelGrid(l int) bool {
	for _, g := range dataset.GridMaxLevel {
		if l == g {
			return true
		}
	}
	return false
}

// ScaledLadder returns the ladder's dial values on the scaled feature axis
// (the dataset.FidelityFeature column the surrogates see).
func (f *FidelitySpec) ScaledLadder() []float64 {
	out := make([]float64, len(f.Levels))
	for i, l := range f.Levels {
		out[i] = dataset.ScaleMaxLevel(l)
	}
	return out
}

// levelIndex maps MaxLevel grid values to ladder indices.
func (f *FidelitySpec) levelIndex() map[int]int {
	idx := make(map[int]int, len(f.Levels))
	for i, l := range f.Levels {
		idx[l] = i
	}
	return idx
}

// TopLevel returns the MaxLevel value of the ladder's top rung.
func (f *FidelitySpec) TopLevel() int { return f.Levels[len(f.Levels)-1] }

// LevelOf resolves a MaxLevel dial value to its ladder index, or -1 when the
// value is off the ladder. The ladder is at most len(dataset.GridMaxLevel)
// entries, so the linear scan is the cheap option even per candidate.
func (f *FidelitySpec) LevelOf(maxLevel int) int {
	for i, l := range f.Levels {
		if l == maxLevel {
			return i
		}
	}
	return -1
}

// Filter returns the subset of the dataset whose jobs sit on the fidelity
// ladder, in dataset order. Replay campaigns run against the filtered
// dataset, so a fidelity Trajectory's Selected indices refer to it.
func (f *FidelitySpec) Filter(ds *dataset.Dataset) *dataset.Dataset {
	idx := f.levelIndex()
	out := &dataset.Dataset{}
	for _, j := range ds.Jobs {
		if _, ok := idx[j.MaxLevel]; ok {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// split is the fidelity-aware replacement for dataset.Split: the Test
// partition is drawn from top-rung jobs only (the campaign is evaluated at
// the target fidelity), Init draws perLevel seeds from every rung so each
// δ-GP starts fitted, and everything else stays Active. One shuffled pass
// assigns every index, so the partition covers the dataset exactly once.
func (f *FidelitySpec) split(ds *dataset.Dataset, nInit, nTest int, rng *rand.Rand) (dataset.Partition, error) {
	if nTest < 1 {
		return dataset.Partition{}, fmt.Errorf("dataset: nTest = %d, need >= 1", nTest)
	}
	perLevel := f.InitPerLevel
	if perLevel <= 0 {
		perLevel = nInit
	}
	if perLevel < 1 {
		return dataset.Partition{}, fmt.Errorf("engine: fidelity split needs init_per_level >= 1, got %d", perLevel)
	}
	idx := f.levelIndex()
	counts := make([]int, len(f.Levels))
	for i, j := range ds.Jobs {
		li, ok := idx[j.MaxLevel]
		if !ok {
			return dataset.Partition{}, fmt.Errorf(
				"engine: job %d has maxlevel %d off the ladder %v (filter the dataset with FidelitySpec.Filter first)",
				i, j.MaxLevel, f.Levels)
		}
		counts[li]++
	}
	top := len(f.Levels) - 1
	if counts[top] < nTest+perLevel+1 {
		return dataset.Partition{}, fmt.Errorf(
			"engine: top fidelity level %d has %d jobs, needs >= %d (n_test + init + 1 active)",
			f.Levels[top], counts[top], nTest+perLevel+1)
	}
	for li, c := range counts {
		if c < perLevel {
			return dataset.Partition{}, fmt.Errorf(
				"engine: fidelity level %d has %d jobs, needs >= %d init seeds", f.Levels[li], c, perLevel)
		}
	}

	perm := stats.Shuffle(rng, ds.Len())
	var p dataset.Partition
	testLeft := nTest
	initLeft := make([]int, len(f.Levels))
	for i := range initLeft {
		initLeft[i] = perLevel
	}
	for _, i := range perm {
		li := idx[ds.Jobs[i].MaxLevel]
		switch {
		case li == top && testLeft > 0:
			p.Test = append(p.Test, i)
			testLeft--
		case initLeft[li] > 0:
			p.Init = append(p.Init, i)
			initLeft[li]--
		default:
			p.Active = append(p.Active, i)
		}
	}
	return p, nil
}

// FidelityView is the per-candidate fidelity state a multi-fidelity
// campaign attaches to the Candidates a policy scores.
type FidelityView struct {
	// Level is each candidate's ladder index (0 = cheapest rung).
	Level []int
	// TopGain is each candidate's predicted top-fidelity information gain
	// w_l²·σ_δl²(x) — how much observing it at its own rung shrinks the
	// top-rung posterior variance (nil when the surrogate cannot say).
	TopGain []float64
}

// CostPerInfo is the multi-fidelity acquisition: among the candidates
// predicted to satisfy the memory limit, select the one maximizing
// predicted top-fidelity information per predicted dollar,
//
//	score(x, l) = w_l²·σ_δl²(x) / 10^μ_cost(x, l).
//
// Because cheap rungs divide by orders-of-magnitude smaller predicted
// costs, the policy spends low-fidelity first and escalates to expensive
// rungs only when the cheap ones stop carrying top-level information
// (their δ variance collapses or the ladder correlation ρ decays). The
// argmax is deterministic (first maximum wins). It requires a fidelity
// campaign: scoring without a FidelityView is an error.
type CostPerInfo struct{}

// Name implements Policy.
func (CostPerInfo) Name() string { return "CostPerInfo" }

// Select implements Policy.
func (CostPerInfo) Select(c *Candidates, rng *rand.Rand) (int, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	if c.Fid == nil || len(c.Fid.TopGain) != c.Len() {
		return 0, errors.New("engine: CostPerInfo needs per-candidate fidelity gains (multi-fidelity campaigns only)")
	}
	satisfying := c.Satisfying()
	if len(satisfying) == 0 {
		return 0, ErrAllExceedLimit
	}
	best, bestIdx := math.Inf(-1), satisfying[0]
	for _, i := range satisfying {
		if v := c.Fid.TopGain[i] / math.Pow(10, c.MuCost[i]); v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx, nil
}

// isCostPerInfo reports whether a policy spec names the multi-fidelity
// acquisition (which cannot run without a fidelity section).
func isCostPerInfo(name string) bool {
	n := normName(name)
	return n == "costperinfo" || n == "cpi"
}

// fidelityRuntime is the replay environment's ladder bookkeeping: MaxLevel
// to ladder-index resolution for attaching the FidelityView and recording
// per-selection levels.
type fidelityRuntime struct {
	spec  *FidelitySpec
	index map[int]int
}

func newFidelityRuntime(spec *FidelitySpec) *fidelityRuntime {
	return &fidelityRuntime{spec: spec, index: spec.levelIndex()}
}

// level resolves a job's MaxLevel to its ladder index.
func (f *fidelityRuntime) level(maxLevel int) (int, error) {
	li, ok := f.index[maxLevel]
	if !ok {
		return 0, fmt.Errorf("engine: maxlevel %d is off the fidelity ladder %v", maxLevel, f.spec.Levels)
	}
	return li, nil
}

func init() {
	RegisterPolicy("costperinfo", func(PolicySpec) (Policy, error) { return CostPerInfo{}, nil })
	RegisterPolicy("cpi", func(PolicySpec) (Policy, error) { return CostPerInfo{}, nil })
}
