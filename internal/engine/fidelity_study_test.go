package engine

import (
	"fmt"
	"math"
	"testing"
)

// costToRMSE is the study metric: the cumulative cost (CC, node-hours) a
// campaign has spent when its top-fidelity test RMSE first reaches tau,
// +Inf when it never does. Both axes already live on the trajectory, so the
// metric is a pure readout.
func costToRMSE(tr *Trajectory, tau float64) float64 {
	for i, r := range tr.CostRMSE {
		if r <= tau {
			return tr.CumCost[i]
		}
	}
	return math.Inf(1)
}

// bestRMSE is the lowest test RMSE a trajectory ever reaches (the curve is
// not monotone: hyperparameter refits can move it in either direction).
func bestRMSE(tr *Trajectory) float64 {
	best := math.Inf(1)
	for _, r := range tr.CostRMSE {
		best = math.Min(best, r)
	}
	return best
}

// TestFidelityStudyBeatsSingleFidelityBaseline is the acceptance study for
// the multi-fidelity engine (EXPERIMENTS.md, "Multi-fidelity cost-to-RMSE").
// Over five seeds it sweeps, through the concurrent sweep engine,
//
//   - a 3-level {3,4,6} campaign: co-kriging surrogate + cost-per-information
//     acquisition (the full multi-fidelity stack), and
//   - the single-fidelity RGMA baseline at the target fidelity (a one-rung
//     {6} ladder, whose surrogate is bitwise the exact GP): the strongest
//     single-fidelity competitor, since only top-rung observations bear
//     directly on the top-rung test surface,
//
// both evaluated on top-fidelity test partitions drawn from the same
// dataset with the same seed. Per seed, the accuracy bar tau is the loosest
// best-RMSE of the pair — the accuracy both campaigns demonstrably reach —
// and the claim pinned here is that the 3-level campaign reaches it on a
// smaller cumulative cost, for every seed and (by a wide margin) on
// average: cheap rungs buy target-fidelity accuracy for fewer node-hours.
func TestFidelityStudyBeatsSingleFidelityBaseline(t *testing.T) {
	ds := synthDS(800, 71)
	seeds := []int64{1, 2, 3, 4, 5}

	var specs []CampaignSpec
	for _, seed := range seeds {
		mf := replaySpec(fmt.Sprintf("study/mf3/%d", seed), "costperinfo", seed, 6, 60)
		mf.HyperoptEvery = 15
		mf.Replay.NTest = 40
		mf.Fidelity = &FidelitySpec{Levels: []int{3, 4, 6}, InitPerLevel: 6}
		sf := replaySpec(fmt.Sprintf("study/sf6/%d", seed), "rgma", seed, 6, 40)
		sf.HyperoptEvery = 15
		sf.Replay.NTest = 40
		sf.Fidelity = &FidelitySpec{Levels: []int{6}, InitPerLevel: 6}
		specs = append(specs, mf, sf)
	}
	trs, err := SweepReplaySpecs(ds, specs, 2)
	if err != nil {
		t.Fatal(err)
	}

	var mfSum, sfSum float64
	for i := 0; i < len(trs); i += 2 {
		mf, sf := trs[i], trs[i+1]
		tau := math.Max(bestRMSE(mf), bestRMSE(sf))
		mfCC, sfCC := costToRMSE(mf, tau), costToRMSE(sf, tau)
		t.Logf("seed %d: tau %6.2f  3-level %7.2f nh  single-fidelity %7.2f nh",
			seeds[i/2], tau, mfCC, sfCC)
		if math.IsInf(mfCC, 1) || math.IsInf(sfCC, 1) {
			t.Fatalf("seed %d: a campaign never reached its own paired tau %g", seeds[i/2], tau)
		}
		if mfCC >= sfCC {
			t.Errorf("seed %d: 3-level campaign spent %.2f nh to reach RMSE %.2f, single-fidelity RGMA only %.2f nh",
				seeds[i/2], mfCC, tau, sfCC)
		}
		mfSum += mfCC
		sfSum += sfCC
	}
	t.Logf("mean cost-to-RMSE: 3-level %.2f nh, single-fidelity %.2f nh (%.1fx)",
		mfSum/float64(len(seeds)), sfSum/float64(len(seeds)), sfSum/mfSum)
	if mfSum*2 >= sfSum {
		t.Fatalf("mean 3-level cost-to-RMSE (%.2f nh) is not at least 2x cheaper than single-fidelity RGMA (%.2f nh)",
			mfSum/float64(len(seeds)), sfSum/float64(len(seeds)))
	}
}
