package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alamr/internal/dataset"
)

// specRunDataset builds a small dataset with well-conditioned responses,
// mirroring the helper the online package uses for its spec tests.
func specRunDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	combos := dataset.AllCombos()
	rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	ds := &dataset.Dataset{}
	for _, c := range combos[:n] {
		wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
			(1 + c.R0) / (0.3 + c.RhoIn)
		ds.Jobs = append(ds.Jobs, dataset.Job{
			P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
			WallSec: wall,
			CostNH:  wall * float64(c.P) / 3600,
			MemMB:   0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) / math.Sqrt(float64(c.P)),
		})
	}
	return ds
}

func replayRunSpec(name string, iters int) CampaignSpec {
	return CampaignSpec{
		Version:       SpecVersion,
		Name:          name,
		Mode:          ModeReplay,
		Policy:        PolicySpec{Name: "maxsigma"},
		Seed:          11,
		MaxIterations: iters,
		Replay:        &ReplaySpec{NInit: 8, NTest: 20},
	}
}

// TestRunCampaignSpecReplayMatchesDirect: the mode-runner registry must
// execute a replay spec identically to the direct RunReplaySpec path.
func TestRunCampaignSpecReplayMatchesDirect(t *testing.T) {
	ds := specRunDataset(60, 3)
	spec := replayRunSpec("registry-replay", 6)

	direct, err := RunReplaySpec(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := RunCampaignSpec(context.Background(), spec, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := viaRegistry.(*Trajectory)
	if !ok {
		t.Fatalf("replay runner returned %T, want *Trajectory", viaRegistry)
	}
	if !reflect.DeepEqual(direct, tr) {
		t.Fatalf("registry trajectory differs from direct run")
	}
}

// TestRunCampaignSpecUnknownMode: an unregistered mode must fail with the
// registered alternatives, matching the other registries' style.
func TestRunCampaignSpecUnknownMode(t *testing.T) {
	spec := replayRunSpec("bad-mode", 2)
	spec.Mode = "batch"
	_, err := RunCampaignSpec(context.Background(), spec, specRunDataset(40, 4), nil)
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("unknown mode accepted: %v", err)
	}
}

// TestRunCampaignSpecCancelled: a cancelled context must end the trajectory
// with StopCancelled and partial results, not an error.
func TestRunCampaignSpecCancelled(t *testing.T) {
	ds := specRunDataset(60, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first round: zero selections
	v, err := RunCampaignSpec(ctx, replayRunSpec("cancelled", 10), ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := v.(*Trajectory)
	if tr.Reason != StopCancelled {
		t.Fatalf("reason = %s want %s", tr.Reason, StopCancelled)
	}
	if tr.Iterations() != 0 {
		t.Fatalf("cancelled-before-start trajectory performed %d selections", tr.Iterations())
	}
}

// TestSpecNeedsDataset pins the dataset-requirement rule the shared loader
// enforces.
func TestSpecNeedsDataset(t *testing.T) {
	onlineSpec := func(lab string, paperRule bool) CampaignSpec {
		return CampaignSpec{
			Version:           SpecVersion,
			Mode:              ModeOnline,
			Policy:            PolicySpec{Name: "rgma"},
			MemLimitPaperRule: paperRule,
			Online:            &OnlineSpec{Lab: LabSpec{Name: lab}},
		}
	}
	cases := []struct {
		name string
		spec CampaignSpec
		want bool
	}{
		{"replay mode", replayRunSpec("r", 1), true},
		{"online sim", onlineSpec("sim", false), false},
		{"online replay lab", onlineSpec("replay", false), true},
		{"online sim + paper rule", onlineSpec("sim", true), true},
	}
	for _, tc := range cases {
		if got := SpecNeedsDataset(tc.spec); got != tc.want {
			t.Errorf("%s: SpecNeedsDataset = %v want %v", tc.name, got, tc.want)
		}
	}
}

// TestLoadSpecForRun table-tests the shared -spec translation block the
// campaign binaries use: file errors, validation errors, the needs-dataset
// check, and the online lab-name check.
func TestLoadSpecForRun(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	csvPath := filepath.Join(dir, "ds.csv")
	if err := specRunDataset(40, 7).SaveFile(csvPath); err != nil {
		t.Fatal(err)
	}
	replayPath := write("replay.json",
		`{"version":1,"mode":"replay","policy":{"name":"maxsigma"},"replay":{"n_init":4}}`)
	// The "sim" lab lives in internal/online and is not registered in this
	// package's tests; stand in a stub lab to exercise the loader's
	// known-lab path without an import cycle.
	RegisterLab("specrun-test-lab", func(LabSpec, LabDeps) (Lab, error) {
		return nil, errors.New("stub lab: not constructible")
	})
	onlineSimPath := write("online-sim.json",
		`{"version":1,"mode":"online","policy":{"name":"maxsigma"},"online":{"lab":{"name":"specrun-test-lab"}}}`)
	badLabPath := write("bad-lab.json",
		`{"version":1,"mode":"online","policy":{"name":"maxsigma"},"online":{"lab":{"name":"slurm"}}}`)
	badPolicyPath := write("bad-policy.json",
		`{"version":1,"mode":"replay","policy":{"name":"entropy"},"replay":{"n_init":4}}`)

	cases := []struct {
		name     string
		specPath string
		dataPath string
		wantErr  string // "" = success
		wantDS   bool
	}{
		{"missing file", filepath.Join(dir, "nope.json"), "", "reading campaign spec", false},
		{"unknown policy", badPolicyPath, "", "unknown policy", false},
		{"unknown lab", badLabPath, "", "unknown lab", false},
		{"replay without data", replayPath, "", "needs the offline dataset", false},
		{"replay with data", replayPath, csvPath, "", true},
		{"online sim without data", onlineSimPath, "", "", false},
		{"online sim ignores data path", onlineSimPath, filepath.Join(dir, "no.csv"), "", false},
		{"bad data path", replayPath, filepath.Join(dir, "no.csv"), "loading dataset", false},
	}
	for _, tc := range cases {
		spec, ds, err := LoadSpecForRun(tc.specPath, tc.dataPath)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
			continue
		}
		if (ds != nil) != tc.wantDS {
			t.Errorf("%s: dataset presence = %v want %v", tc.name, ds != nil, tc.wantDS)
		}
		if spec.Version != SpecVersion {
			t.Errorf("%s: spec not loaded", tc.name)
		}
	}
}

// TestLabRegistered: the side-effect-free lab lookup must agree with the
// registry and report alternatives for unknown names.
func TestLabRegistered(t *testing.T) {
	if err := LabRegistered("replay"); err != nil {
		t.Fatalf("replay lab unknown: %v", err)
	}
	err := LabRegistered("slurm")
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown lab error missing alternatives: %v", err)
	}
}
