// Package engine is the unified campaign executor: one implementation of
// the paper's Algorithm-1 fit/score/select/feed loop that both execution
// modes share. The offline replay mode (§IV, RunReplay/RunReplayBatch)
// replays the precomputed job database; the online mode
// (internal/online.Run) proposes configurations against a live Lab. Both
// are thin environments (LoopEnv) around RunLoop, so regret accounting,
// censored-OOM semantics, obs spans, and stop conditions exist exactly
// once.
//
// On top of the loop the package provides the declarative layer: a
// string-keyed registry for policies, kernels, batch strategies, and labs;
// a versioned JSON CampaignSpec that fully describes a campaign; and
// Sweep, a bounded worker pool that executes grids of campaigns with
// per-campaign isolation and deterministic result ordering.
package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/mat"
	"alamr/internal/stats"
)

// Candidates carries the model state a policy sees at one AL iteration: the
// remaining candidate configurations and the two models' predictive means
// and standard deviations for them, all in log10 response space (the space
// the models are trained in).
type Candidates struct {
	X *mat.Dense // remaining candidate feature rows

	MuCost, SigmaCost []float64 // cost model predictions (log10 node-hours)
	MuMem, SigmaMem   []float64 // memory model predictions (log10 MB)

	// MemLimitLog is log10 of the maximum allowed memory usage L_mem;
	// +Inf when no limit applies.
	MemLimitLog float64

	// Fid carries each candidate's fidelity state in multi-fidelity
	// campaigns; nil in single-fidelity runs. Fidelity-agnostic policies
	// ignore it.
	Fid *FidelityView
}

// Len returns the number of remaining candidates.
func (c *Candidates) Len() int { return len(c.MuCost) }

func (c *Candidates) validate() error {
	n := c.Len()
	if n == 0 {
		return errors.New("engine: empty candidate set")
	}
	if len(c.SigmaCost) != n || len(c.MuMem) != n || len(c.SigmaMem) != n {
		return fmt.Errorf("engine: inconsistent candidate vectors (%d/%d/%d/%d)",
			n, len(c.SigmaCost), len(c.MuMem), len(c.SigmaMem))
	}
	if c.X != nil && c.X.Rows() != n {
		return fmt.Errorf("engine: candidate matrix has %d rows for %d candidates", c.X.Rows(), n)
	}
	return nil
}

// Satisfying returns the indices whose predicted memory lies strictly below
// the limit (the classification step of Algorithm 2).
func (c *Candidates) Satisfying() []int {
	out := make([]int, 0, c.Len())
	for i, m := range c.MuMem {
		if m < c.MemLimitLog {
			out = append(out, i)
		}
	}
	return out
}

// ErrAllExceedLimit is returned by memory-aware policies when every
// remaining candidate is predicted to violate the memory limit; the AL loop
// treats it as the early-termination signal discussed in the paper (§V-D).
var ErrAllExceedLimit = errors.New("engine: all remaining candidates predicted to exceed the memory limit")

// Policy selects the next experiment from the candidate set. rng is the
// policy's private randomness stream.
type Policy interface {
	Name() string
	Select(c *Candidates, rng *rand.Rand) (int, error)
}

// RandUniform selects uniformly at random, ignoring the models — the
// paper's reference baseline.
type RandUniform struct{}

// Name implements Policy.
func (RandUniform) Name() string { return "RandUniform" }

// Select implements Policy.
func (RandUniform) Select(c *Candidates, rng *rand.Rand) (int, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	return rng.Intn(c.Len()), nil
}

// MaxSigma selects the candidate with the largest cost-prediction
// uncertainty (uncertainty sampling / variance reduction).
type MaxSigma struct{}

// Name implements Policy.
func (MaxSigma) Name() string { return "MaxSigma" }

// Select implements Policy.
func (MaxSigma) Select(c *Candidates, rng *rand.Rand) (int, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	_, idx := mat.MaxVec(c.SigmaCost)
	return idx, nil
}

// MinPred selects argmax(σ_cost − μ_cost) in log space. As the paper
// observes, the variation of μ dominates σ so the policy degenerates to
// greedily selecting the cheapest predicted candidate — hence its name.
type MinPred struct{}

// Name implements Policy.
func (MinPred) Name() string { return "MinPred" }

// Select implements Policy.
func (MinPred) Select(c *Candidates, rng *rand.Rand) (int, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	best, idx := math.Inf(-1), 0
	for i := range c.MuCost {
		if v := c.SigmaCost[i] - c.MuCost[i]; v > best {
			best, idx = v, i
		}
	}
	return idx, nil
}

// RandGoodness samples a candidate from the discrete distribution
// proportional to the cost "goodness" g = Base^(σ_cost − μ_cost): mostly
// cheap candidates with occasional expensive exploration (§IV-B).
type RandGoodness struct {
	// Base of the goodness exponent; the paper argues for 10 to match the
	// log10 preprocessing (higher bases skew harder toward cheap samples).
	Base float64
}

// Name implements Policy.
func (p RandGoodness) Name() string { return "RandGoodness" }

func (p RandGoodness) base() float64 {
	if p.Base <= 1 {
		return 10
	}
	return p.Base
}

// Select implements Policy.
func (p RandGoodness) Select(c *Candidates, rng *rand.Rand) (int, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	w := goodness(c.MuCost, c.SigmaCost, nil, p.base())
	return stats.SampleDiscrete(rng, w), nil
}

// RGMA is RandGoodness with Memory Awareness (Algorithm 2): candidates whose
// predicted memory exceeds L_mem are filtered out before the goodness draw.
type RGMA struct {
	Base float64
}

// Name implements Policy.
func (p RGMA) Name() string { return "RGMA" }

func (p RGMA) base() float64 {
	if p.Base <= 1 {
		return 10
	}
	return p.Base
}

// Select implements Policy.
func (p RGMA) Select(c *Candidates, rng *rand.Rand) (int, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	satisfying := c.Satisfying()
	if len(satisfying) == 0 {
		return 0, ErrAllExceedLimit
	}
	w := goodness(c.MuCost, c.SigmaCost, satisfying, p.base())
	return satisfying[stats.SampleDiscrete(rng, w)], nil
}

// goodness computes Base^(σ−μ) over the selected indices (all when idx is
// nil), guarding against overflow by shifting the exponent: the shift
// cancels after normalization in the discrete draw.
func goodness(mu, sigma []float64, idx []int, base float64) []float64 {
	n := len(mu)
	if idx != nil {
		n = len(idx)
	}
	expo := make([]float64, n)
	maxE := math.Inf(-1)
	for i := 0; i < n; i++ {
		j := i
		if idx != nil {
			j = idx[i]
		}
		expo[i] = sigma[j] - mu[j]
		if expo[i] > maxE {
			maxE = expo[i]
		}
	}
	w := make([]float64, n)
	for i, e := range expo {
		w[i] = math.Pow(base, e-maxE)
	}
	return w
}
