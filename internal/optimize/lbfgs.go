// Package optimize provides the unconstrained minimizers used for Gaussian
// process hyperparameter fitting: a limited-memory BFGS with a strong-Wolfe
// line search, a derivative-free Nelder–Mead simplex method, and a
// multi-start driver that combines warm starts with random restarts.
//
// All routines minimize; callers maximizing a log marginal likelihood pass
// its negation.
package optimize

import (
	"errors"
	"math"

	"alamr/internal/mat"
)

// Objective evaluates a function and its gradient at x. The returned gradient
// must be a fresh slice (callers retain it across iterations).
type Objective func(x []float64) (f float64, grad []float64)

// Func evaluates a function value only (for derivative-free methods).
type Func func(x []float64) float64

// Result reports the outcome of an optimization run.
type Result struct {
	X          []float64 // best point found
	F          float64   // objective value at X
	Iterations int       // outer iterations performed
	Evals      int       // objective evaluations
	Converged  bool      // whether the tolerance test passed
}

// LBFGSConfig controls the L-BFGS minimizer. The zero value selects
// reasonable defaults via (c *LBFGSConfig) setDefaults.
type LBFGSConfig struct {
	Memory   int     // history pairs to retain (default 8)
	MaxIter  int     // maximum outer iterations (default 200)
	GradTol  float64 // stop when the sup-norm of the gradient falls below (default 1e-6)
	FuncTol  float64 // stop on relative objective change below (default 1e-10)
	StepInit float64 // initial step for the very first line search (default 1)
}

func (c *LBFGSConfig) setDefaults() {
	if c.Memory <= 0 {
		c.Memory = 8
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.GradTol <= 0 {
		c.GradTol = 1e-6
	}
	if c.FuncTol <= 0 {
		c.FuncTol = 1e-10
	}
	if c.StepInit <= 0 {
		c.StepInit = 1
	}
}

// ErrLineSearchFailed indicates the strong-Wolfe search could not find an
// acceptable step; the best point seen so far is still returned in Result.
var ErrLineSearchFailed = errors.New("optimize: line search failed")

// LBFGS minimizes obj starting from x0.
//
// The implementation follows Nocedal & Wright (Numerical Optimization,
// 2nd ed.): two-loop recursion for the search direction, strong-Wolfe line
// search (c1=1e-4, c2=0.9), and history pairs accepted only when the
// curvature condition sᵀy > 0 holds.
func LBFGS(obj Objective, x0 []float64, cfg LBFGSConfig) (Result, error) {
	cfg.setDefaults()
	n := len(x0)
	x := mat.CopyVec(x0)
	f, g := obj(x)
	evals := 1
	res := Result{X: mat.CopyVec(x), F: f, Evals: evals}
	if !isFinite(f) || !mat.AllFinite(g) {
		return res, errors.New("optimize: objective not finite at the starting point")
	}

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair
	dir := make([]float64, n)
	alphaBuf := make([]float64, cfg.Memory)

	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iterations = iter + 1
		if supNorm(g) < cfg.GradTol {
			res.Converged = true
			break
		}

		// Two-loop recursion: dir = -H·g.
		copy(dir, g)
		for i := len(hist) - 1; i >= 0; i-- {
			h := hist[i]
			alphaBuf[i] = h.rho * mat.Dot(h.s, dir)
			mat.AxpyTo(dir, -alphaBuf[i], h.y, dir)
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			gamma := mat.Dot(last.s, last.y) / mat.Dot(last.y, last.y)
			mat.ScaleVec(gamma, dir)
		}
		for i := 0; i < len(hist); i++ {
			h := hist[i]
			beta := h.rho * mat.Dot(h.y, dir)
			mat.AxpyTo(dir, alphaBuf[i]-beta, h.s, dir)
		}
		mat.ScaleVec(-1, dir)

		d0 := mat.Dot(g, dir)
		if d0 >= 0 {
			// Not a descent direction (stale curvature); reset to steepest
			// descent.
			hist = hist[:0]
			copy(dir, g)
			mat.ScaleVec(-1, dir)
			d0 = -mat.Dot(g, g)
			if d0 == 0 {
				res.Converged = true
				break
			}
		}

		step := 1.0
		if iter == 0 {
			step = math.Min(cfg.StepInit, 1/math.Max(supNorm(g), 1e-12))
		}
		fNew, gNew, stepTaken, nEval, lsErr := wolfeLineSearch(obj, x, dir, f, g, d0, step)
		evals += nEval
		res.Evals = evals
		if lsErr != nil {
			res.X, res.F = mat.CopyVec(x), f
			return res, ErrLineSearchFailed
		}

		xNew := make([]float64, n)
		mat.AxpyTo(xNew, stepTaken, dir, x)

		s := mat.SubVec(xNew, x)
		y := mat.SubVec(gNew, g)
		if sy := mat.Dot(s, y); sy > 1e-12*mat.Norm2(s)*mat.Norm2(y) {
			if len(hist) == cfg.Memory {
				hist = hist[1:]
			}
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
		}

		fPrev := f
		x, f, g = xNew, fNew, gNew
		res.X, res.F = mat.CopyVec(x), f
		if math.Abs(fPrev-f) <= cfg.FuncTol*(math.Abs(f)+1e-15) {
			res.Converged = true
			break
		}
	}
	res.X, res.F = mat.CopyVec(x), f
	return res, nil
}

// wolfeLineSearch finds a step satisfying the strong Wolfe conditions along
// dir from x, given f0=f(x), g0=∇f(x) and the directional derivative d0<0.
// It implements the bracket/zoom scheme of Nocedal & Wright, Algorithm 3.5/3.6.
func wolfeLineSearch(obj Objective, x, dir []float64, f0 float64, g0 []float64, d0, step float64) (f float64, g []float64, alpha float64, evals int, err error) {
	const (
		c1       = 1e-4
		c2       = 0.9
		maxIter  = 40
		alphaMax = 1e10
	)
	n := len(x)
	xt := make([]float64, n)
	eval := func(a float64) (float64, []float64, float64) {
		mat.AxpyTo(xt, a, dir, x)
		fv, gv := obj(xt)
		evals++
		return fv, gv, mat.Dot(gv, dir)
	}

	alphaPrev, fPrev, dPrev := 0.0, f0, d0
	a := step
	var fa, da float64
	var ga []float64
	for i := 0; i < maxIter; i++ {
		fa, ga, da = eval(a)
		if !isFinite(fa) {
			// Overshot into a non-finite region: shrink hard.
			a = 0.5 * (alphaPrev + a)
			continue
		}
		if fa > f0+c1*a*d0 || (i > 0 && fa >= fPrev) {
			return zoom(obj, eval, x, dir, f0, d0, alphaPrev, a, fPrev, fa, dPrev, &evals)
		}
		if math.Abs(da) <= -c2*d0 {
			return fa, ga, a, evals, nil
		}
		if da >= 0 {
			return zoom(obj, eval, x, dir, f0, d0, a, alphaPrev, fa, fPrev, da, &evals)
		}
		alphaPrev, fPrev, dPrev = a, fa, da
		a *= 2
		if a > alphaMax {
			break
		}
	}
	return f0, g0, 0, evals, ErrLineSearchFailed
}

// zoom narrows a bracketing interval [lo,hi] until a strong-Wolfe step is
// found.
func zoom(obj Objective, eval func(float64) (float64, []float64, float64), x, dir []float64, f0, d0, lo, hi, fLo, fHi, dLo float64, evals *int) (float64, []float64, float64, int, error) {
	const (
		c1      = 1e-4
		c2      = 0.9
		maxIter = 40
	)
	_ = fHi
	for i := 0; i < maxIter; i++ {
		a := 0.5 * (lo + hi)
		fa, ga, da := eval(a)
		if fa > f0+c1*a*d0 || fa >= fLo {
			hi = a
		} else {
			if math.Abs(da) <= -c2*d0 {
				return fa, ga, a, *evals, nil
			}
			if da*(hi-lo) >= 0 {
				hi = lo
			}
			lo, fLo, dLo = a, fa, da
		}
		if math.Abs(hi-lo) < 1e-14*(math.Abs(lo)+1) {
			if fa <= f0+c1*a*d0 {
				return fa, ga, a, *evals, nil
			}
			break
		}
	}
	_ = dLo
	return 0, nil, 0, *evals, ErrLineSearchFailed
}

func supNorm(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
