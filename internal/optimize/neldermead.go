package optimize

import (
	"math"
	"sort"

	"alamr/internal/mat"
)

// NelderMeadConfig controls the derivative-free simplex minimizer. The zero
// value selects standard coefficients.
type NelderMeadConfig struct {
	MaxIter     int     // maximum iterations (default 200*dim)
	FuncTol     float64 // stop when simplex f-spread falls below (default 1e-10)
	SimplexTol  float64 // stop when simplex diameter falls below (default 1e-10)
	InitialStep float64 // initial simplex edge length (default 0.1)
}

func (c *NelderMeadConfig) setDefaults(dim int) {
	if c.MaxIter <= 0 {
		c.MaxIter = 200 * dim
	}
	if c.FuncTol <= 0 {
		c.FuncTol = 1e-10
	}
	if c.SimplexTol <= 0 {
		c.SimplexTol = 1e-10
	}
	if c.InitialStep <= 0 {
		c.InitialStep = 0.1
	}
}

// NelderMead minimizes f starting from x0 using the downhill simplex method
// with standard reflection/expansion/contraction/shrink coefficients
// (1, 2, 0.5, 0.5).
func NelderMead(f Func, x0 []float64, cfg NelderMeadConfig) Result {
	n := len(x0)
	cfg.setDefaults(n)

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: mat.CopyVec(x0), f: eval(x0)}
	for i := 0; i < n; i++ {
		x := mat.CopyVec(x0)
		if x[i] != 0 {
			x[i] += cfg.InitialStep * math.Abs(x[i])
		} else {
			x[i] = cfg.InitialStep
		}
		simplex[i+1] = vertex{x: x, f: eval(x)}
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		best, worst := simplex[0], simplex[n]

		if worst.f-best.f <= cfg.FuncTol*(math.Abs(best.f)+1e-15) && simplexDiameter(simplex[0].x, simplex[n].x) <= cfg.SimplexTol {
			break
		}

		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j, v := range simplex[i].x {
				centroid[j] += v
			}
		}
		mat.ScaleVec(1/float64(n), centroid)

		// Reflection.
		for j := range trial {
			trial[j] = centroid[j] + (centroid[j] - worst.x[j])
		}
		fr := eval(trial)
		switch {
		case fr < best.f:
			// Expansion.
			exp := make([]float64, n)
			for j := range exp {
				exp[j] = centroid[j] + 2*(centroid[j]-worst.x[j])
			}
			fe := eval(exp)
			if fe < fr {
				simplex[n] = vertex{x: exp, f: fe}
			} else {
				simplex[n] = vertex{x: mat.CopyVec(trial), f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: mat.CopyVec(trial), f: fr}
		default:
			// Contraction (outside if the reflected point improved on the
			// worst, inside otherwise).
			con := make([]float64, n)
			if fr < worst.f {
				for j := range con {
					con[j] = centroid[j] + 0.5*(trial[j]-centroid[j])
				}
			} else {
				for j := range con {
					con[j] = centroid[j] + 0.5*(worst.x[j]-centroid[j])
				}
			}
			fc := eval(con)
			if fc < math.Min(fr, worst.f) {
				simplex[n] = vertex{x: con, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return Result{
		X:          mat.CopyVec(simplex[0].x),
		F:          simplex[0].f,
		Iterations: iter,
		Evals:      evals,
		Converged:  iter < cfg.MaxIter,
	}
}

func simplexDiameter(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
