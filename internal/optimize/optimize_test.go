package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic builds f(x) = Σ wᵢ (xᵢ-cᵢ)², a strictly convex bowl.
func quadratic(w, c []float64) Objective {
	return func(x []float64) (float64, []float64) {
		var f float64
		g := make([]float64, len(x))
		for i := range x {
			d := x[i] - c[i]
			f += w[i] * d * d
			g[i] = 2 * w[i] * d
		}
		return f, g
	}
}

// rosenbrock is the classic banana function, minimum f=0 at (1,1).
func rosenbrock(x []float64) (float64, []float64) {
	a, b := x[0], x[1]
	f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	g := []float64{
		-2*(1-a) - 400*a*(b-a*a),
		200 * (b - a*a),
	}
	return f, g
}

func TestLBFGSQuadratic(t *testing.T) {
	obj := quadratic([]float64{1, 10, 100}, []float64{3, -2, 0.5})
	res, err := LBFGS(obj, []float64{0, 0, 0}, LBFGSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-5 {
			t.Fatalf("X[%d] = %g want %g", i, res.X[i], want[i])
		}
	}
	if res.F > 1e-9 {
		t.Fatalf("F = %g want ~0", res.F)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	res, err := LBFGS(rosenbrock, []float64{-1.2, 1}, LBFGSConfig{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Fatalf("X = %v want (1,1); f=%g iters=%d", res.X, res.F, res.Iterations)
	}
}

func TestLBFGSAlreadyAtMinimum(t *testing.T) {
	obj := quadratic([]float64{1, 1}, []float64{0, 0})
	res, err := LBFGS(obj, []float64{0, 0}, LBFGSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected immediate convergence at minimum")
	}
	if res.F != 0 {
		t.Fatalf("F = %g want 0", res.F)
	}
}

func TestLBFGSNonFiniteStart(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		return math.NaN(), []float64{0}
	}
	if _, err := LBFGS(obj, []float64{1}, LBFGSConfig{}); err == nil {
		t.Fatal("expected error for NaN objective")
	}
}

func TestLBFGSHandlesLogBarrier(t *testing.T) {
	// f(x) = x - log(x): minimum at x=1; non-finite for x<=0, so the line
	// search must shrink past the barrier.
	obj := func(x []float64) (float64, []float64) {
		if x[0] <= 0 {
			return math.Inf(1), []float64{0}
		}
		return x[0] - math.Log(x[0]), []float64{1 - 1/x[0]}
	}
	res, err := LBFGS(obj, []float64{5}, LBFGSConfig{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 {
		t.Fatalf("X = %v want 1", res.X)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + 5*(x[1]+1)*(x[1]+1)
	}
	res := NelderMead(f, []float64{0, 0}, NelderMeadConfig{})
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Fatalf("X = %v want (2,-1)", res.X)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		v, _ := rosenbrock(x)
		return v
	}
	res := NelderMead(f, []float64{-1.2, 1}, NelderMeadConfig{MaxIter: 5000})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("X = %v want (1,1); f=%g", res.X, res.F)
	}
}

func TestNelderMeadNaNTreatedAsInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	res := NelderMead(f, []float64{2}, NelderMeadConfig{})
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Fatalf("X = %v want 1", res.X)
	}
}

func TestMultiStartFindsGlobalBasin(t *testing.T) {
	// Double well: f(x) = (x²-1)² + 0.3x has global minimum near x=-1.
	obj := func(x []float64) (float64, []float64) {
		v := x[0]
		f := (v*v-1)*(v*v-1) + 0.3*v
		g := []float64{4*v*(v*v-1) + 0.3}
		return f, g
	}
	rng := rand.New(rand.NewSource(42))
	// Warm start near the wrong (local) minimum at x≈+1.
	res := MultiStart(obj, [][]float64{{0.9}}, MultiStartConfig{
		Restarts: 20,
		Lower:    []float64{-3},
		Upper:    []float64{3},
	}, rng)
	if res.X[0] > 0 {
		t.Fatalf("X = %v: stuck in local minimum", res.X)
	}
}

func TestMultiStartWarmOnly(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{7})
	res := MultiStart(obj, [][]float64{{0}}, MultiStartConfig{}, nil)
	if math.Abs(res.X[0]-7) > 1e-5 {
		t.Fatalf("X = %v want 7", res.X)
	}
}

func TestMultiStartAllDivergeFallback(t *testing.T) {
	// Objective that is finite at the warm start but whose gradient pushes
	// the line search into failure immediately: constant with zero gradient
	// triggers instant convergence instead — use a cliff.
	obj := func(x []float64) (float64, []float64) {
		return math.Inf(1), []float64{1}
	}
	res := MultiStart(obj, [][]float64{{2}}, MultiStartConfig{}, nil)
	if res.X == nil {
		t.Fatal("MultiStart returned nil X")
	}
	if res.X[0] != 2 {
		t.Fatalf("fallback X = %v want warm start 2", res.X)
	}
}

// Property: L-BFGS on a random convex quadratic recovers the center.
func TestLBFGSQuadraticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		w := make([]float64, n)
		c := make([]float64, n)
		x0 := make([]float64, n)
		for i := range w {
			w[i] = 0.5 + 4*rng.Float64()
			c[i] = rng.NormFloat64() * 3
			x0[i] = rng.NormFloat64() * 3
		}
		res, err := LBFGS(quadratic(w, c), x0, LBFGSConfig{MaxIter: 400})
		if err != nil {
			return false
		}
		for i := range c {
			if math.Abs(res.X[i]-c[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Nelder–Mead never returns a worse value than its starting point.
func TestNelderMeadMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		c := make([]float64, n)
		x0 := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
			x0[i] = rng.NormFloat64()
		}
		fn := func(x []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - c[i]
				s += d * d
			}
			return s
		}
		res := NelderMead(fn, x0, NelderMeadConfig{MaxIter: 50})
		return res.F <= fn(x0)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLBFGSRosenbrock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := LBFGS(rosenbrock, []float64{-1.2, 1}, LBFGSConfig{MaxIter: 500}); err != nil {
			b.Fatal(err)
		}
	}
}
