package optimize

import (
	"math"
	"math/rand"

	"alamr/internal/mat"
)

// MultiStartConfig drives repeated local optimizations from different
// starting points: every warm start supplied by the caller plus Restarts
// random points drawn uniformly from [Lower, Upper] per dimension.
type MultiStartConfig struct {
	Restarts int       // random restarts in addition to the warm starts
	Lower    []float64 // per-dimension lower bound for random starts
	Upper    []float64 // per-dimension upper bound for random starts
	LBFGS    LBFGSConfig
	// FallbackNM enables a Nelder–Mead polish whenever L-BFGS fails its
	// line search (e.g. on noisy or barely-differentiable objectives).
	FallbackNM bool
}

// MultiStart minimizes obj from each warm start and from cfg.Restarts random
// points, returning the best result found. rng must be non-nil when
// cfg.Restarts > 0.
func MultiStart(obj Objective, warmStarts [][]float64, cfg MultiStartConfig, rng *rand.Rand) Result {
	best := Result{F: math.Inf(1)}
	try := func(x0 []float64) {
		r, err := LBFGS(obj, x0, cfg.LBFGS)
		if err != nil && cfg.FallbackNM {
			nm := NelderMead(func(x []float64) float64 { f, _ := obj(x); return f }, x0, NelderMeadConfig{})
			if nm.F < r.F {
				r = nm
			}
		}
		if isFinite(r.F) && r.F < best.F {
			best = r
		}
		best.Evals += r.Evals
	}
	for _, w := range warmStarts {
		try(w)
	}
	dim := 0
	if len(warmStarts) > 0 {
		dim = len(warmStarts[0])
	} else if len(cfg.Lower) > 0 {
		dim = len(cfg.Lower)
	}
	for i := 0; i < cfg.Restarts; i++ {
		x0 := make([]float64, dim)
		for j := range x0 {
			lo, hi := -1.0, 1.0
			if j < len(cfg.Lower) {
				lo = cfg.Lower[j]
			}
			if j < len(cfg.Upper) {
				hi = cfg.Upper[j]
			}
			x0[j] = lo + rng.Float64()*(hi-lo)
		}
		try(x0)
	}
	if best.X == nil && len(warmStarts) > 0 {
		// Every attempt diverged; fall back to the first warm start so the
		// caller always receives a usable point.
		f, _ := obj(warmStarts[0])
		best.X = mat.CopyVec(warmStarts[0])
		best.F = f
	}
	return best
}
