package mat

import (
	"math/rand"
	"testing"
)

// Benchmark sizes straddle the parallel threshold and cover the paper's
// workloads: n=50 (early AL iterations), n=200 (mid-trajectory), n=600
// (the Table I campaign size), n=1920 (the full combination space).
var benchSizes = []struct {
	name string
	n    int
}{
	{"50", 50},
	{"200", 200},
	{"600", 600},
	{"1920", 1920},
}

func BenchmarkMul(b *testing.B) {
	for _, bs := range benchSizes {
		if testing.Short() && bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randomDense(rng, bs.n, bs.n)
			y := randomDense(rng, bs.n, bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Mul(x, y)
			}
		})
	}
}

// mulBranchy is the seed implementation of Mul, kept here as the reference
// for the branch-removal micro-benchmark: the `if av == 0` test per inner
// element stalls the pipeline on dense GP matrices where it almost never
// fires.
func mulBranchy(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols, nil)
	for i := 0; i < a.rows; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range ai {
			if av == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range bk {
				oi[j] += av * bv
			}
		}
	}
	return out
}

func BenchmarkMulBranchyRef(b *testing.B) {
	for _, bs := range benchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randomDense(rng, bs.n, bs.n)
			y := randomDense(rng, bs.n, bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mulBranchy(x, y)
			}
		})
	}
}

func BenchmarkMulVec(b *testing.B) {
	for _, bs := range benchSizes {
		b.Run(bs.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			m := randomDense(rng, bs.n, bs.n)
			x := randomVec(rng, bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVec(x)
			}
		})
	}
}

func BenchmarkMulVecT(b *testing.B) {
	for _, bs := range benchSizes {
		b.Run(bs.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			m := randomDense(rng, bs.n, bs.n)
			x := randomVec(rng, bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVecT(x)
			}
		})
	}
}

func BenchmarkChol(b *testing.B) {
	for _, bs := range benchSizes {
		if testing.Short() && bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			a := randomSPD(rng, bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewCholesky(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCholSolveVec(b *testing.B) {
	for _, bs := range benchSizes {
		b.Run(bs.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			a := randomSPD(rng, bs.n)
			ch, err := NewCholesky(a)
			if err != nil {
				b.Fatal(err)
			}
			rhs := randomVec(rng, bs.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.SolveVec(rhs)
			}
		})
	}
}

func BenchmarkCholInverse(b *testing.B) {
	for _, bs := range benchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			a := randomSPD(rng, bs.n)
			ch, err := NewCholesky(a)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.Inverse()
			}
		})
	}
}
