package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaling avoids overflow for extreme magnitudes.
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		r := v / mx
		s += r * r
	}
	return mx * math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// AxpyTo stores y + alpha*x into dst. dst may alias y or x.
func AxpyTo(dst []float64, alpha float64, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: AxpyTo length mismatch")
	}
	for i := range dst {
		dst[i] = y[i] + alpha*x[i]
	}
}

// ScaleVec multiplies every element of x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SubVec returns a-b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: SubVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a+b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Outer returns the outer product a bᵀ.
func Outer(a, b []float64) *Dense {
	m := NewDense(len(a), len(b), nil)
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, bv := range b {
			row[j] = av * bv
		}
	}
	return m
}

// MaxVec returns the maximum element of x and its index. It panics on an
// empty slice.
func MaxVec(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("mat: MaxVec of empty slice")
	}
	best, idx := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// MinVec returns the minimum element of x and its index. It panics on an
// empty slice.
func MinVec(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("mat: MinVec of empty slice")
	}
	best, idx := x[0], 0
	for i, v := range x[1:] {
		if v < best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// SumVec returns the sum of elements of x using Neumaier-compensated
// summation, which stays accurate even when partial sums cancel.
func SumVec(x []float64) float64 {
	var sum, comp float64
	for _, v := range x {
		t := sum + v
		if math.Abs(sum) >= math.Abs(v) {
			comp += (sum - t) + v
		} else {
			comp += (v - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// AllFinite reports whether every element of x is finite.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
