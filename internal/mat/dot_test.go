package mat

import (
	"math/rand"
	"testing"
)

// adot and axpy dispatch to assembly kernels when the CPU supports them;
// these tests pin the dispatching versions against naive references across
// lengths that straddle the vector width, the unroll factor, and the
// scalar-tail path.
var dotLens = []int{0, 1, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 257}

func TestADotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range dotLens {
		a := randomVec(rng, n)
		b := randomVec(rng, n)
		var naive float64
		for i := range a {
			naive += a[i] * b[i]
		}
		got := adot(a, b)
		scale := 1.0
		if naive < -1 || naive > 1 {
			scale = naive
			if scale < 0 {
				scale = -scale
			}
		}
		if diff := got - naive; diff > 1e-12*scale || diff < -1e-12*scale {
			t.Fatalf("n=%d: adot = %.17g, naive = %.17g", n, got, naive)
		}
	}
}

func TestADotDeterministicAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range dotLens {
		a := randomVec(rng, n)
		b := randomVec(rng, n)
		first := adot(a, b)
		for k := 0; k < 4; k++ {
			if got := adot(a, b); got != first {
				t.Fatalf("n=%d: adot not reproducible: %v vs %v", n, got, first)
			}
		}
	}
}

func TestAxpyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range dotLens {
		x := randomVec(rng, n)
		y := randomVec(rng, n)
		alpha := rng.NormFloat64()
		want := make([]float64, n)
		for i := range y {
			want[i] = y[i] + alpha*x[i]
		}
		got := append([]float64(nil), y...)
		axpy(alpha, x, got)
		for i := range want {
			diff := got[i] - want[i]
			if diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("n=%d: axpy[%d] = %.17g, naive = %.17g", n, i, got[i], want[i])
			}
		}
	}
}

func TestAxpyDeterministicAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range dotLens {
		x := randomVec(rng, n)
		y := randomVec(rng, n)
		alpha := rng.NormFloat64()
		first := append([]float64(nil), y...)
		axpy(alpha, x, first)
		for k := 0; k < 4; k++ {
			got := append([]float64(nil), y...)
			axpy(alpha, x, got)
			if !bitwiseEqual(got, first) {
				t.Fatalf("n=%d: axpy not reproducible", n)
			}
		}
	}
}

func BenchmarkDotKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{64, 600, 1920} {
		x := randomVec(rng, n)
		y := randomVec(rng, n)
		b.Run(itoa(n), func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				s += adot(x, y)
			}
			sinkFloat = s
		})
	}
}

var sinkFloat float64

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
