package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot even after the maximum jitter has been applied.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// cholBlock is the panel width of the blocked factorization and solves. It
// is a fixed constant: the grouping of partial inner products — and hence
// the floating-point result — must depend only on the problem size, never
// on the worker count, for the determinism contract to hold.
const cholBlock = 64

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ, together with the diagonal jitter that
// was required to make the factorization succeed.
//
// The factor is stored packed: row i occupies i+1 contiguous elements
// starting at i(i+1)/2. Packed rows halve the memory of a square factor and
// make Extend (growing the factor by one bordered row, the AL fast path) an
// amortized O(n) append instead of an O(n²) reallocation-and-copy.
type Cholesky struct {
	n      int
	data   []float64
	jitter float64
}

// row returns packed row i (length i+1).
func (c *Cholesky) row(i int) []float64 {
	off := i * (i + 1) / 2
	return c.data[off : off+i+1]
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. The input is not modified.
//
// The factorization is right-looking and blocked: each iteration factors a
// cholBlock-wide diagonal block serially, then fans the panel solve and the
// trailing-matrix update out over the worker pool. Each element of the
// factor is produced by exactly one goroutine with a summation order fixed
// by (n, cholBlock) alone, so parallel and serial runs agree bitwise.
func NewCholesky(a *Dense) (*Cholesky, error) {
	return newCholesky(a, 0)
}

// NewCholeskyJitter factorizes a, adding an escalating diagonal jitter
// (starting at start, multiplied by 10 each retry, up to max) whenever a
// pivot is non-positive. This is the standard defence for Gram matrices with
// duplicated rows, which are a normal condition in active learning datasets
// containing repeated measurements.
func NewCholeskyJitter(a *Dense, start, max float64) (*Cholesky, error) {
	ch, err := newCholesky(a, 0)
	if err == nil {
		return ch, nil
	}
	for j := start; j <= max; j *= 10 {
		ch, err = newCholesky(a, j)
		if err == nil {
			return ch, nil
		}
	}
	return nil, fmt.Errorf("%w (after jitter up to %g)", ErrNotPositiveDefinite, max)
}

func newCholesky(a *Dense, jitter float64) (*Cholesky, error) {
	if a.rows != a.cols {
		panic("mat: Cholesky of non-square matrix")
	}
	n := a.rows
	c := &Cholesky{n: n, data: make([]float64, n*(n+1)/2), jitter: jitter}
	ParallelFor(n, chunkFor(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(c.row(i), a.data[i*a.cols:i*a.cols+i+1])
		}
	})
	if jitter != 0 {
		for i := 0; i < n; i++ {
			c.row(i)[i] += jitter
		}
	}
	if err := c.factor(); err != nil {
		return nil, err
	}
	return c, nil
}

// factor runs the blocked right-looking factorization in place over the
// packed lower triangle of A already loaded into c.data.
func (c *Cholesky) factor() error {
	n := c.n
	for kb := 0; kb < n; kb += cholBlock {
		kend := kb + cholBlock
		if kend > n {
			kend = n
		}
		// Diagonal block: unblocked serial factorization of A[kb:kend, kb:kend].
		for j := kb; j < kend; j++ {
			rj := c.row(j)
			s := rj[j] - adot(rj[kb:j], rj[kb:j])
			if s <= 0 || math.IsNaN(s) {
				return ErrNotPositiveDefinite
			}
			d := math.Sqrt(s)
			rj[j] = d
			for i := j + 1; i < kend; i++ {
				ri := c.row(i)
				ri[j] = (ri[j] - adot(ri[kb:j], rj[kb:j])) / d
			}
		}
		if kend == n {
			break
		}
		// Panel solve: L[kend:, kb:kend] = A[kend:, kb:kend]·L_bbᵀ⁻¹,
		// forward substitution per row; rows are independent.
		bw := kend - kb
		ParallelFor(n-kend, chunkFor(bw*bw), func(lo, hi int) {
			for i := kend + lo; i < kend+hi; i++ {
				ri := c.row(i)
				for j := kb; j < kend; j++ {
					rj := c.row(j)
					ri[j] = (ri[j] - adot(ri[kb:j], rj[kb:j])) / rj[j]
				}
			}
		})
		// Trailing update: A[i,j] -= L[i, kb:kend]·L[j, kb:kend] for
		// kend <= j <= i. Row-parallel and tiled over i so each (cold)
		// j-panel row is streamed from cache once per tile instead of
		// once per row. Tiling only reorders whole adot calls, never the
		// summation inside one, so chunk and tile boundaries stay outside
		// the numerical contract and each element is updated once per
		// block.
		const iTile = 8
		ParallelFor(n-kend, chunkFor(bw*(n-kend)/2+1), func(lo, hi int) {
			for it := kend + lo; it < kend+hi; it += iTile {
				itEnd := it + iTile
				if itEnd > kend+hi {
					itEnd = kend + hi
				}
				for j := kend; j < itEnd; j++ {
					pj := c.row(j)[kb:kend]
					i := it
					if j > i {
						i = j
					}
					for ; i < itEnd; i++ {
						ri := c.row(i)
						ri[j] -= adot(ri[kb:kend], pj)
					}
				}
			}
		})
	}
	return nil
}

// CholeskyFromFactor wraps an existing lower-triangular factor L (so that
// A = L Lᵀ) without refactorizing. The caller asserts that l is lower
// triangular with positive diagonal. The factor is packed into private
// storage; l is not retained.
func CholeskyFromFactor(l *Dense, jitter float64) *Cholesky {
	if l.rows != l.cols {
		panic("mat: CholeskyFromFactor of non-square factor")
	}
	n := l.rows
	c := &Cholesky{n: n, data: make([]float64, n*(n+1)/2), jitter: jitter}
	for i := 0; i < n; i++ {
		copy(c.row(i), l.data[i*l.cols:i*l.cols+i+1])
	}
	return c
}

// Extend grows the factorization of an n×n matrix A to n+1 by a bordered
// row: given the solved border l = L⁻¹k and the new pivot d (so that the
// extended matrix is [[A, k],[kᵀ, lᵀl+d²]]), it appends one packed row in
// amortized O(n) — no reallocation of the existing factor.
func (c *Cholesky) Extend(border []float64, pivot float64) {
	if len(border) != c.n {
		panic(fmt.Sprintf("mat: Extend border length %d does not match size %d", len(border), c.n))
	}
	if pivot <= 0 || math.IsNaN(pivot) {
		panic(fmt.Sprintf("mat: Extend pivot %g must be positive", pivot))
	}
	c.data = append(c.data, border...)
	c.data = append(c.data, pivot)
	c.n++
}

// L returns the lower-triangular factor as a newly allocated dense matrix.
// It is a copy: mutating it does not affect the factorization.
func (c *Cholesky) L() *Dense {
	l := NewDense(c.n, c.n, nil)
	for i := 0; i < c.n; i++ {
		copy(l.data[i*c.n:i*c.n+i+1], c.row(i))
	}
	return l
}

// Jitter reports the diagonal jitter that was added before factorization.
func (c *Cholesky) Jitter() float64 { return c.jitter }

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// SolveVec solves A x = b where A = L Lᵀ, returning x.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: SolveVec length %d does not match size %d", len(b), c.n))
	}
	x := make([]float64, c.n)
	copy(x, b)
	c.forwardInPlace(x)
	c.backwardInPlace(x)
	return x
}

// SolveVecToSerial solves A x = b into dst on the calling goroutine, the
// scratch-buffer form of SolveVec for per-candidate solves that already run
// inside an outer parallel section (the sparse scoring paths). Both
// triangular sweeps use the same blocked groupings as SolveVec, so the
// result is bitwise identical. dst may alias b.
func (c *Cholesky) SolveVecToSerial(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: SolveVecToSerial lengths %d/%d do not match size %d", len(dst), len(b), c.n))
	}
	copy(dst, b)
	c.forwardBlocked(dst, false)
	c.backwardSerial(dst)
}

// backwardSerial solves Lᵀ x = x without dispatching to the worker pool. It
// applies the same per-element groupings as backwardInPlace's in-block
// substitution (a strict top-down scalar recurrence per element), so serial
// and pooled backward solves agree bitwise.
func (c *Cholesky) backwardSerial(x []float64) {
	n := c.n
	if n == 0 {
		return
	}
	kbStart := ((n - 1) / cholBlock) * cholBlock
	for kb := kbStart; kb >= 0; kb -= cholBlock {
		kend := kb + cholBlock
		if kend > n {
			kend = n
		}
		for i := kend - 1; i >= kb; i-- {
			s := x[i]
			for k := i + 1; k < kend; k++ {
				s -= c.row(k)[i] * x[k]
			}
			x[i] = s / c.row(i)[i]
		}
		if kb == 0 {
			break
		}
		for k := kb; k < kend; k++ {
			rk := c.row(k)[:kb]
			xk := x[k]
			for j, v := range rk {
				x[j] -= xk * v
			}
		}
	}
}

// Rank1Update replaces the factorization of A with that of A + u uᵀ in
// O(n²), the classic Givens-based cholupdate run over the packed lower
// factor. This is the sparse surrogate's append fast path: absorbing one
// observation updates the inducing-space normal matrix A by exactly one
// rank-1 term, so the O(n³) refactorization is never needed. u is consumed
// (overwritten with intermediate values).
func (c *Cholesky) Rank1Update(u []float64) {
	if len(u) != c.n {
		panic(fmt.Sprintf("mat: Rank1Update length %d does not match size %d", len(u), c.n))
	}
	n := c.n
	for k := 0; k < n; k++ {
		rk := c.row(k)
		d := rk[k]
		r := math.Hypot(d, u[k])
		cos, sin := r/d, u[k]/d
		rk[k] = r
		if k == n-1 {
			break
		}
		// Column k of the packed factor is strided: element (i, k) lives at
		// row(i)[k]. n is the inducing count (small), so the strided walk
		// stays cheap relative to the row-major hot paths.
		for i := k + 1; i < n; i++ {
			ri := c.row(i)
			ri[k] = (ri[k] + sin*u[i]) / cos
			u[i] = cos*u[i] - sin*ri[k]
		}
	}
}

// ForwardSolveVec solves L y = b, the half-solve used for predictive
// variances (v = L⁻¹k*).
func (c *Cholesky) ForwardSolveVec(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: ForwardSolveVec length %d does not match size %d", len(b), c.n))
	}
	y := make([]float64, c.n)
	copy(y, b)
	c.forwardInPlace(y)
	return y
}

// forwardInPlace solves L y = y. Blocked: after the serial in-block
// substitution, the updates to the rows below the block are independent and
// fan out over the pool.
func (c *Cholesky) forwardInPlace(y []float64) {
	c.forwardBlocked(y, true)
}

// forwardBlocked is the blocked forward substitution behind both solve
// entry points. The parallel and serial paths compute every y[i] from the
// same adot groupings in the same order, so they are bitwise-identical; the
// serial path exists for per-candidate solves that already run inside an
// outer parallel section, where a nested dispatch is pure allocation
// overhead.
func (c *Cholesky) forwardBlocked(y []float64, parallel bool) {
	n := c.n
	for kb := 0; kb < n; kb += cholBlock {
		kend := kb + cholBlock
		if kend > n {
			kend = n
		}
		for i := kb; i < kend; i++ {
			ri := c.row(i)
			y[i] = (y[i] - adot(ri[kb:i], y[kb:i])) / ri[i]
		}
		if kend == n {
			break
		}
		if parallel {
			bw := kend - kb
			ParallelFor(n-kend, chunkFor(2*bw), func(lo, hi int) {
				for i := kend + lo; i < kend+hi; i++ {
					y[i] -= adot(c.row(i)[kb:kend], y[kb:kend])
				}
			})
		} else {
			for i := kend; i < n; i++ {
				y[i] -= adot(c.row(i)[kb:kend], y[kb:kend])
			}
		}
	}
}

// backwardInPlace solves Lᵀ x = x. Blocks run from the bottom; after the
// serial in-block substitution the remaining update is a sequence of
// row-contiguous axpys, parallel over disjoint ranges of x.
func (c *Cholesky) backwardInPlace(x []float64) {
	n := c.n
	if n == 0 {
		return
	}
	kbStart := ((n - 1) / cholBlock) * cholBlock
	for kb := kbStart; kb >= 0; kb -= cholBlock {
		kend := kb + cholBlock
		if kend > n {
			kend = n
		}
		for i := kend - 1; i >= kb; i-- {
			s := x[i]
			for k := i + 1; k < kend; k++ {
				s -= c.row(k)[i] * x[k]
			}
			x[i] = s / c.row(i)[i]
		}
		if kb == 0 {
			break
		}
		bw := kend - kb
		ParallelFor(kb, chunkFor(2*bw), func(lo, hi int) {
			for k := kb; k < kend; k++ {
				rk := c.row(k)[lo:hi]
				xs := x[lo:hi]
				xk := x[k]
				for j, v := range rk {
					xs[j] -= xk * v
				}
			}
		})
	}
}

// Solve solves A X = B column by column, returning X. Columns are
// independent and solved in parallel.
func (c *Cholesky) Solve(b *Dense) *Dense {
	n := c.n
	if b.rows != n {
		panic(fmt.Sprintf("mat: Solve rows %d does not match size %d", b.rows, n))
	}
	x := NewDense(n, b.cols, nil)
	ParallelFor(b.cols, chunkFor(2*n*n), func(lo, hi int) {
		col := make([]float64, n)
		for j := lo; j < hi; j++ {
			for i := 0; i < n; i++ {
				col[i] = b.data[i*b.cols+j]
			}
			c.forwardInPlace(col)
			c.backwardInPlace(col)
			for i := 0; i < n; i++ {
				x.data[i*x.cols+j] = col[i]
			}
		}
	})
	return x
}

// Inverse returns A⁻¹ from the factorization as L⁻ᵀL⁻¹: first U = L⁻ᵀ is
// built one row at a time (row j of U is the forward solve of e_j, a
// contiguous write), then A⁻¹_ij = U_i·U_j over the shared tail. Both
// passes are row-parallel with contiguous access, roughly 6x less work
// than solving for each unit vector through both triangles.
func (c *Cholesky) Inverse() *Dense {
	n := c.n
	u := NewDense(n, n, nil)
	ParallelFor(n, chunkFor(n*n/2+1), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			uj := u.data[j*n : (j+1)*n]
			uj[j] = 1 / c.row(j)[j]
			for i := j + 1; i < n; i++ {
				ri := c.row(i)
				uj[i] = -adot(ri[j:i], uj[j:i]) / ri[i]
			}
		}
	})
	out := NewDense(n, n, nil)
	ParallelFor(n, chunkFor(n*n/2+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ui := u.data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				uj := u.data[j*n : (j+1)*n]
				out.data[i*n+j] = adot(ui[j:], uj[j:])
			}
		}
	})
	// Mirror the upper triangle into the lower.
	ParallelFor(n, chunkFor(n), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			for i := 0; i < j; i++ {
				out.data[j*n+i] = out.data[i*n+j]
			}
		}
	})
	return out
}

// LogDet returns log |A| = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.row(i)[i])
	}
	return 2 * s
}

// SolveLowerVec solves L y = b for a general lower-triangular dense l.
func SolveLowerVec(l *Dense, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveLowerVec length %d does not match size %d", len(b), n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		li := l.data[i*l.cols : i*l.cols+i]
		y[i] = (b[i] - adot(li, y[:i])) / l.data[i*l.cols+i]
	}
	return y
}

// SolveUpperTransposedVec solves Lᵀ x = y given a lower-triangular dense L.
func SolveUpperTransposedVec(l *Dense, y []float64) []float64 {
	n := l.rows
	if len(y) != n {
		panic(fmt.Sprintf("mat: SolveUpperTransposedVec length %d does not match size %d", len(y), n))
	}
	x := make([]float64, n)
	copy(x, y)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.data[k*l.cols+i] * x[k]
		}
		x[i] = s / l.data[i*l.cols+i]
	}
	return x
}
