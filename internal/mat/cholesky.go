package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot even after the maximum jitter has been applied.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ, together with the diagonal jitter that
// was required to make the factorization succeed.
type Cholesky struct {
	l      *Dense
	jitter float64
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. The input is not modified.
func NewCholesky(a *Dense) (*Cholesky, error) {
	return newCholesky(a, 0)
}

// NewCholeskyJitter factorizes a, adding an escalating diagonal jitter
// (starting at start, multiplied by 10 each retry, up to max) whenever a
// pivot is non-positive. This is the standard defence for Gram matrices with
// duplicated rows, which are a normal condition in active learning datasets
// containing repeated measurements.
func NewCholeskyJitter(a *Dense, start, max float64) (*Cholesky, error) {
	ch, err := newCholesky(a, 0)
	if err == nil {
		return ch, nil
	}
	for j := start; j <= max; j *= 10 {
		ch, err = newCholesky(a, j)
		if err == nil {
			return ch, nil
		}
	}
	return nil, fmt.Errorf("%w (after jitter up to %g)", ErrNotPositiveDefinite, max)
}

func newCholesky(a *Dense, jitter float64) (*Cholesky, error) {
	if a.rows != a.cols {
		panic("mat: Cholesky of non-square matrix")
	}
	n := a.rows
	l := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			if i == j {
				s += jitter
			}
			li := l.data[i*n:]
			lj := l.data[j*n:]
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrNotPositiveDefinite
				}
				l.data[i*n+j] = math.Sqrt(s)
			} else {
				l.data[i*n+j] = s / l.data[j*n+j]
			}
		}
	}
	return &Cholesky{l: l, jitter: jitter}, nil
}

// CholeskyFromFactor wraps an existing lower-triangular factor L (so that
// A = L Lᵀ) without refactorizing. The caller asserts that l is lower
// triangular with positive diagonal; it is not copied.
func CholeskyFromFactor(l *Dense, jitter float64) *Cholesky {
	if l.rows != l.cols {
		panic("mat: CholeskyFromFactor of non-square factor")
	}
	return &Cholesky{l: l, jitter: jitter}
}

// L returns the lower-triangular factor. The caller must not modify it.
func (c *Cholesky) L() *Dense { return c.l }

// Jitter reports the diagonal jitter that was added before factorization.
func (c *Cholesky) Jitter() float64 { return c.jitter }

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.l.rows }

// SolveVec solves A x = b where A = L Lᵀ, returning x.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := c.forwardSolve(b)
	return c.backwardSolve(y)
}

// forwardSolve solves L y = b.
func (c *Cholesky) forwardSolve(b []float64) []float64 {
	n := c.l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveVec length %d does not match size %d", len(b), n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		li := c.l.data[i*n:]
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	return y
}

// backwardSolve solves Lᵀ x = y.
func (c *Cholesky) backwardSolve(y []float64) []float64 {
	n := c.l.rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * x[k]
		}
		x[i] = s / c.l.data[i*n+i]
	}
	return x
}

// Solve solves A X = B column by column, returning X.
func (c *Cholesky) Solve(b *Dense) *Dense {
	n := c.l.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: Solve rows %d does not match size %d", b.rows, n))
	}
	x := NewDense(n, b.cols, nil)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		sol := c.SolveVec(col)
		for i := 0; i < n; i++ {
			x.data[i*x.cols+j] = sol[i]
		}
	}
	return x
}

// Inverse returns A⁻¹ computed column by column from the factorization.
func (c *Cholesky) Inverse() *Dense {
	return c.Solve(Eye(c.l.rows))
}

// LogDet returns log |A| = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n := c.l.rows
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.l.data[i*n+i])
	}
	return 2 * s
}

// SolveLowerVec solves L y = b for a general lower-triangular matrix l.
func SolveLowerVec(l *Dense, b []float64) []float64 {
	ch := Cholesky{l: l}
	return ch.forwardSolve(b)
}

// SolveUpperTransposedVec solves Lᵀ x = y given a lower-triangular L.
func SolveUpperTransposedVec(l *Dense, y []float64) []float64 {
	ch := Cholesky{l: l}
	return ch.backwardSolve(y)
}
