// Package mat provides the dense linear algebra needed by Gaussian process
// regression: matrices, vectors, Cholesky factorization of symmetric
// positive-definite systems, triangular solves, and log-determinants.
//
// The package is deliberately small and self-contained (stdlib only). All
// matrices are dense, row-major float64. Dimensions are validated eagerly;
// shape errors are programming errors and therefore panic, mirroring the
// behaviour of slice indexing.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates an r-by-c matrix. If data is nil a zero matrix is
// allocated; otherwise data is used directly (not copied) and must have
// length r*c.
func NewDense(r, c int, data []float64) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice view (not a copy).
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RawData returns the backing slice.
func (m *Dense) RawData() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows, nil)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element of m by s, in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddDiag adds v to every diagonal element, in place. The matrix must be
// square.
func (m *Dense) AddDiag(v float64) {
	if m.rows != m.cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += v
	}
}

// Add stores a+b into m (which may alias a or b). All shapes must match.
func (m *Dense) Add(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols || m.rows != a.rows || m.cols != a.cols {
		panic("mat: Add shape mismatch")
	}
	for i := range m.data {
		m.data[i] = a.data[i] + b.data[i]
	}
}

// Sub stores a-b into m (which may alias a or b). All shapes must match.
func (m *Dense) Sub(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols || m.rows != a.rows || m.cols != a.cols {
		panic("mat: Sub shape mismatch")
	}
	for i := range m.data {
		m.data[i] = a.data[i] - b.data[i]
	}
}

// Mul returns the product a*b as a new matrix.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols, nil)
	for i := 0; i < a.rows; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range ai {
			if av == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range bk {
				oi[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d does not match cols %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range ri {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns the product mᵀ*x without materializing the transpose.
func (m *Dense) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("mat: MulVecT length %d does not match rows %d", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range ri {
			out[j] += xi * v
		}
	}
	return out
}

// Eye returns the n-by-n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic("mat: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Symmetrize replaces m with (m+mᵀ)/2, removing numerical asymmetry.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("mat: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := 0.5 * (m.data[i*m.cols+j] + m.data[j*m.cols+i])
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
