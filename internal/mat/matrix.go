// Package mat provides the dense linear algebra needed by Gaussian process
// regression: matrices, vectors, Cholesky factorization of symmetric
// positive-definite systems, triangular solves, and log-determinants.
//
// The package is deliberately small and self-contained (stdlib only). All
// matrices are dense, row-major float64. Dimensions are validated eagerly;
// shape errors are programming errors and therefore panic, mirroring the
// behaviour of slice indexing.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates an r-by-c matrix. If data is nil a zero matrix is
// allocated; otherwise data is used directly (not copied) and must have
// length r*c.
func NewDense(r, c int, data []float64) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice view (not a copy).
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RawData returns the backing slice.
func (m *Dense) RawData() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// AppendRow returns an (r+1)-by-c matrix consisting of m's rows followed by
// row. The backing slice grows with append semantics, so repeated calls on
// the returned matrix copy storage O(log n) times rather than every call —
// the amortized-growth fast path of the AL loop. The receiver remains a
// valid view of its original rows (which are shared with the result until
// the next reallocation), so callers must treat m as frozen after the call.
func (m *Dense) AppendRow(row []float64) *Dense {
	if len(row) != m.cols {
		panic(fmt.Sprintf("mat: AppendRow length %d does not match cols %d", len(row), m.cols))
	}
	data := append(m.data, row...)
	return &Dense{rows: m.rows + 1, cols: m.cols, data: data}
}

// RemoveRow returns an (r−1)-by-c matrix with row i deleted, preserving the
// order of the remaining rows. The backing storage is reused (rows below i
// are copied down in place), so a pool matrix shrunk once per AL iteration
// never reallocates. The receiver must be treated as consumed: its storage
// is shared with — and partially overwritten by — the result.
func (m *Dense) RemoveRow(i int) *Dense {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: RemoveRow index %d out of range %d", i, m.rows))
	}
	if m.rows == 1 {
		return &Dense{rows: 0, cols: m.cols, data: m.data[:0]}
	}
	copy(m.data[i*m.cols:], m.data[(i+1)*m.cols:])
	return &Dense{rows: m.rows - 1, cols: m.cols, data: m.data[:(m.rows-1)*m.cols]}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows, nil)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element of m by s, in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddDiag adds v to every diagonal element, in place. The matrix must be
// square.
func (m *Dense) AddDiag(v float64) {
	if m.rows != m.cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += v
	}
}

// Add stores a+b into m (which may alias a or b). All shapes must match.
func (m *Dense) Add(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols || m.rows != a.rows || m.cols != a.cols {
		panic("mat: Add shape mismatch")
	}
	for i := range m.data {
		m.data[i] = a.data[i] + b.data[i]
	}
}

// Sub stores a-b into m (which may alias a or b). All shapes must match.
func (m *Dense) Sub(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols || m.rows != a.rows || m.cols != a.cols {
		panic("mat: Sub shape mismatch")
	}
	for i := range m.data {
		m.data[i] = a.data[i] - b.data[i]
	}
}

// mulKC is the k-dimension tile of Mul: at float64 width it keeps the
// active panel of b (mulKC rows) resident in L2 while a row of the output
// accumulates, which is what makes the classic i-k-j loop order scale past
// cache-sized operands.
const mulKC = 256

// Mul returns the product a*b as a new matrix. Rows of the output are
// computed in parallel; within a row, accumulation over k is in ascending
// order regardless of tiling or worker count, so results are deterministic.
// The inner loop is branch-free: GP covariance operands are dense, so
// per-element zero tests only cost pipeline stalls.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols, nil)
	ParallelFor(a.rows, chunkFor(a.cols*b.cols), func(lo, hi int) {
		for kb := 0; kb < a.cols; kb += mulKC {
			kend := kb + mulKC
			if kend > a.cols {
				kend = a.cols
			}
			for i := lo; i < hi; i++ {
				ai := a.data[i*a.cols : (i+1)*a.cols]
				oi := out.data[i*out.cols : (i+1)*out.cols]
				for k := kb; k < kend; k++ {
					bk := b.data[k*b.cols : (k+1)*b.cols]
					axpy(ai[k], bk, oi)
				}
			}
		}
	})
	return out
}

// MulVec returns the matrix-vector product m*x. Output rows are computed in
// parallel with the unrolled deterministic dot kernel.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d does not match cols %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	ParallelFor(m.rows, chunkFor(2*m.cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = adot(m.data[i*m.cols:(i+1)*m.cols], x)
		}
	})
	return out
}

// MulVecT returns the product mᵀ*x without materializing the transpose.
// Workers own disjoint column ranges of the output; each element
// accumulates over rows in ascending order, so the result is deterministic
// and branch-free.
func (m *Dense) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("mat: MulVecT length %d does not match rows %d", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	ParallelFor(m.cols, chunkFor(2*m.rows), func(lo, hi int) {
		for i := 0; i < m.rows; i++ {
			axpy(x[i], m.data[i*m.cols+lo:i*m.cols+hi], out[lo:hi])
		}
	})
	return out
}

// Eye returns the n-by-n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic("mat: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Symmetrize replaces m with (m+mᵀ)/2, removing numerical asymmetry.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("mat: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := 0.5 * (m.data[i*m.cols+j] + m.data[j*m.cols+i])
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
