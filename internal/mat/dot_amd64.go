//go:build amd64

package mat

import "math"

func dotAsm(a, b *float64, n int) float64
func axpyAsm(alpha float64, x, y *float64, n int)
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (lo, hi uint32)

// haveFMA reports whether the AVX2+FMA kernels are usable: the CPU must
// advertise FMA and AVX2, and the OS must save YMM state across context
// switches (OSXSAVE + XCR0 bits 1 and 2).
var haveFMA = func() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidAsm(1, 0)
	const fmaBit, osxsaveBit, avxBit = 1 << 12, 1 << 27, 1 << 28
	if c&fmaBit == 0 || c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	if lo, _ := xgetbvAsm(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuidAsm(7, 0)
	return b&(1<<5) != 0 // AVX2
}()

// asmDotMin is the slice length below which the call overhead of the
// assembly kernel exceeds its throughput advantage.
const asmDotMin = 16

// adot is the dispatching inner product used by the dense kernels. The
// evaluation order is a fixed function of the slice length (and, across
// machines, of the instruction set), never of the worker count — parallel
// and serial runs agree bitwise either way.
func adot(a, b []float64) float64 {
	if haveFMA && len(a) >= asmDotMin {
		return dotAsm(&a[0], &b[0], len(a))
	}
	return dot4(a, b)
}

// axpy computes y[i] += alpha*x[i]. On the FMA path every element —
// including the tail, via math.FMA — uses fused rounding, so the result
// does not depend on where the vector kernel stops.
func axpy(alpha float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	if haveFMA && n >= 16 {
		q := n &^ 15
		axpyAsm(alpha, &x[0], &y[0], q)
		for i := q; i < n; i++ {
			y[i] = math.FMA(alpha, x[i], y[i])
		}
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
