// AVX2+FMA kernels for the hot inner loops. Only reached when runtime
// detection (dot_amd64.go) confirms AVX2, FMA, and OS support for YMM
// state; every function has a pure-Go fallback.
//
// Summation order is fixed by the vector layout: four 4-lane accumulators
// striped over the input, combined as (Y0+Y1)+(Y2+Y3), then a fixed
// horizontal reduction. The order is a function of the slice length only,
// which is what the determinism contract requires.

#include "textflag.h"

// func dotAsm(a, b *float64, n int) float64
TEXT ·dotAsm(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $4, DX            // DX = n / 16
	JZ   dottail
dotloop16:
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  dotloop16
dottail:
	// Combine: Y0 = (Y0+Y1) + (Y2+Y3), then low128+high128, then
	// lane0+lane1.
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0
	// Scalar tail: remaining n mod 16 elements, fused into the total in
	// ascending order.
	ANDQ $15, CX
	JZ   dotdone
dottailloop:
	VMOVSD (SI), X2
	VFMADD231SD (DI), X2, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  dottailloop
dotdone:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func axpyAsm(alpha float64, x, y *float64, n int)
// y[0:n] = fma(alpha, x[0:n], y[0:n]); n must be a multiple of 16
// (the Go wrapper handles the tail with math.FMA for identical rounding).
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y7
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), DX
	SHRQ $4, DX
	JZ   axpydone
axpyloop16:
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	VFMADD231PD (SI), Y7, Y0
	VFMADD231PD 32(SI), Y7, Y1
	VFMADD231PD 64(SI), Y7, Y2
	VFMADD231PD 96(SI), Y7, Y3
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  axpyloop16
axpydone:
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (lo, hi uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET
