package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-14) {
		t.Fatalf("Norm2 = %g want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g want 0", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %g", got)
	}
	want := big * math.Sqrt2
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Norm2 = %g want %g", got, want)
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist([]float64{1, 1}, []float64{4, 5}); got != 25 {
		t.Fatalf("SqDist = %g want 25", got)
	}
}

func TestAxpyTo(t *testing.T) {
	dst := make([]float64, 2)
	AxpyTo(dst, 2, []float64{1, 2}, []float64{10, 20})
	if dst[0] != 12 || dst[1] != 24 {
		t.Fatalf("AxpyTo = %v want [12 24]", dst)
	}
	// Aliased destination.
	y := []float64{1, 1}
	AxpyTo(y, 3, []float64{1, 2}, y)
	if y[0] != 4 || y[1] != 7 {
		t.Fatalf("aliased AxpyTo = %v want [4 7]", y)
	}
}

func TestScaleCopySubAdd(t *testing.T) {
	x := []float64{1, 2}
	ScaleVec(3, x)
	if x[1] != 6 {
		t.Fatalf("ScaleVec = %v", x)
	}
	c := CopyVec(x)
	c[0] = 100
	if x[0] != 3 {
		t.Fatal("CopyVec shares storage")
	}
	s := SubVec([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Fatalf("SubVec = %v", s)
	}
	a := AddVec([]float64{1, 2}, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Fatalf("AddVec = %v", a)
	}
}

func TestOuter(t *testing.T) {
	m := Outer([]float64{1, 2}, []float64{3, 4, 5})
	r, c := m.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("Outer dims %dx%d", r, c)
	}
	if m.At(1, 2) != 10 {
		t.Fatalf("Outer(1,2) = %g want 10", m.At(1, 2))
	}
}

func TestMinMaxVec(t *testing.T) {
	v := []float64{3, -1, 7, 2}
	if mx, i := MaxVec(v); mx != 7 || i != 2 {
		t.Fatalf("MaxVec = %g,%d", mx, i)
	}
	if mn, i := MinVec(v); mn != -1 || i != 1 {
		t.Fatalf("MinVec = %g,%d", mn, i)
	}
}

func TestMinMaxVecEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"max": func() { MaxVec(nil) },
		"min": func() { MinVec(nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSumVecCompensated(t *testing.T) {
	// Kahan summation keeps 1 visible despite the large cancelling pair.
	v := []float64{1e16, 1, -1e16}
	if got := SumVec(v); got != 1 {
		t.Fatalf("SumVec = %g want 1", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

// Property: Cauchy–Schwarz |a·b| <= |a||b|.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomVec(rng, n)
		b := randomVec(rng, n)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SqDist(a,b) == |a-b|².
func TestSqDistNormConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomVec(rng, n)
		b := randomVec(rng, n)
		d := Norm2(SubVec(a, b))
		return almostEqual(SqDist(a, b), d*d, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
