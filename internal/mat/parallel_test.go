package mat

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// withWorkers runs fn under a fixed parallelism target, restoring the
// previous setting afterwards.
func withWorkers(n int, fn func()) {
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

// eqSizes straddle both the dispatch thresholds and the cholBlock panel
// width, so each test exercises the pure-serial path, the single-block
// path, and the multi-block parallel path.
var eqSizes = []int{1, 3, 33, 63, 64, 65, 127, 200, 257}

func bitwiseEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] || math.Signbit(a[i]) != math.Signbit(b[i]) {
			return false
		}
	}
	return true
}

func TestParallelForCoversEachIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		counts := make([]int64, n)
		withWorkers(8, func() {
			ParallelFor(n, 3, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&counts[i], 1)
				}
			})
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelSumDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randomVec(rng, 1000)
	sum := func() float64 {
		return ParallelSum(len(x), 1, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i]
			}
			return s
		})
	}
	var serial, par2, par16 float64
	withWorkers(1, func() { serial = sum() })
	withWorkers(2, func() { par2 = sum() })
	withWorkers(16, func() { par16 = sum() })
	if serial != par2 || serial != par16 {
		t.Fatalf("ParallelSum differs across worker counts: %v %v %v", serial, par2, par16)
	}
}

func TestMulSerialParallelIdentical(t *testing.T) {
	for _, n := range eqSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randomDense(rng, n, n+1)
		b := randomDense(rng, n+1, n)
		var serial, parallel *Dense
		withWorkers(1, func() { serial = Mul(a, b) })
		withWorkers(8, func() { parallel = Mul(a, b) })
		if !bitwiseEqual(serial.RawData(), parallel.RawData()) {
			t.Fatalf("n=%d: parallel Mul differs from serial", n)
		}
	}
}

func TestMulVecSerialParallelIdentical(t *testing.T) {
	for _, n := range eqSizes {
		rng := rand.New(rand.NewSource(int64(n) + 1))
		m := randomDense(rng, n, n)
		x := randomVec(rng, n)
		var serial, parallel, parallelT, serialT []float64
		withWorkers(1, func() { serial = m.MulVec(x); serialT = m.MulVecT(x) })
		withWorkers(8, func() { parallel = m.MulVec(x); parallelT = m.MulVecT(x) })
		if !bitwiseEqual(serial, parallel) {
			t.Fatalf("n=%d: parallel MulVec differs from serial", n)
		}
		if !bitwiseEqual(serialT, parallelT) {
			t.Fatalf("n=%d: parallel MulVecT differs from serial", n)
		}
	}
}

func TestCholeskySerialParallelIdentical(t *testing.T) {
	for _, n := range eqSizes {
		rng := rand.New(rand.NewSource(int64(n) + 2))
		a := randomSPD(rng, n)
		rhs := randomVec(rng, n)
		var chS, chP *Cholesky
		var err error
		withWorkers(1, func() { chS, err = NewCholesky(a) })
		if err != nil {
			t.Fatalf("n=%d: serial factorization failed: %v", n, err)
		}
		withWorkers(8, func() { chP, err = NewCholesky(a) })
		if err != nil {
			t.Fatalf("n=%d: parallel factorization failed: %v", n, err)
		}
		if !bitwiseEqual(chS.data, chP.data) {
			t.Fatalf("n=%d: parallel Cholesky factor differs from serial", n)
		}
		var xS, xP, fS, fP []float64
		var invS, invP *Dense
		withWorkers(1, func() { xS = chS.SolveVec(rhs); fS = chS.ForwardSolveVec(rhs); invS = chS.Inverse() })
		withWorkers(8, func() { xP = chP.SolveVec(rhs); fP = chP.ForwardSolveVec(rhs); invP = chP.Inverse() })
		if !bitwiseEqual(xS, xP) {
			t.Fatalf("n=%d: parallel SolveVec differs from serial", n)
		}
		if !bitwiseEqual(fS, fP) {
			t.Fatalf("n=%d: parallel ForwardSolveVec differs from serial", n)
		}
		if !bitwiseEqual(invS.RawData(), invP.RawData()) {
			t.Fatalf("n=%d: parallel Inverse differs from serial", n)
		}
	}
}

// Property: serial/parallel equivalence holds for arbitrary seeds and sizes,
// not just the hand-picked boundary cases.
func TestCholeskySerialParallelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		a := randomSPD(rng, n)
		var chS, chP *Cholesky
		var errS, errP error
		withWorkers(1, func() { chS, errS = NewCholesky(a) })
		withWorkers(7, func() { chP, errP = NewCholesky(a) })
		if (errS == nil) != (errP == nil) {
			return false
		}
		if errS != nil {
			return true
		}
		return bitwiseEqual(chS.data, chP.data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSerialParallelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(120)
		k := 1 + rng.Intn(120)
		n := 1 + rng.Intn(120)
		a := randomDense(rng, m, k)
		b := randomDense(rng, k, n)
		var s, p *Dense
		withWorkers(1, func() { s = Mul(a, b) })
		withWorkers(5, func() { p = Mul(a, b) })
		return bitwiseEqual(s.RawData(), p.RawData())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Blocked factorization must agree with a naive reference Cholesky to
// numerical accuracy (the summation orders differ, so the comparison is
// tolerance-based, not bitwise).
func TestCholeskyMatchesNaiveReference(t *testing.T) {
	naive := func(a *Dense) *Dense {
		n := a.Rows()
		l := NewDense(n, n, nil)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := a.At(i, j)
				for k := 0; k < j; k++ {
					s -= l.At(i, k) * l.At(j, k)
				}
				if i == j {
					l.Set(i, j, math.Sqrt(s))
				} else {
					l.Set(i, j, s/l.At(j, j))
				}
			}
		}
		return l
	}
	for _, n := range eqSizes {
		rng := rand.New(rand.NewSource(int64(n) + 3))
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := naive(a)
		got := ch.L()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if !almostEqual(got.At(i, j), want.At(i, j), 1e-9) {
					t.Fatalf("n=%d: L[%d,%d] = %g, naive %g", n, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// Extend must produce the same factor as refactorizing the bordered matrix
// from scratch.
func TestCholeskyExtendMatchesRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 80
	full := randomSPD(rng, n+1)
	sub := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		copy(sub.Row(i), full.Row(i)[:n])
	}
	ch, err := NewCholesky(sub)
	if err != nil {
		t.Fatal(err)
	}
	border := make([]float64, n)
	for i := 0; i < n; i++ {
		border[i] = full.At(i, n)
	}
	l := ch.ForwardSolveVec(border)
	d2 := full.At(n, n) - Dot(l, l)
	if d2 <= 0 {
		t.Fatalf("bordered pivot %g not positive", d2)
	}
	ch.Extend(l, math.Sqrt(d2))
	if ch.Size() != n+1 {
		t.Fatalf("Size after Extend = %d want %d", ch.Size(), n+1)
	}
	want, err := NewCholesky(full)
	if err != nil {
		t.Fatal(err)
	}
	gl, wl := ch.L(), want.L()
	for i := 0; i <= n; i++ {
		for j := 0; j <= i; j++ {
			if !almostEqual(gl.At(i, j), wl.At(i, j), 1e-8) {
				t.Fatalf("extended L[%d,%d] = %g, refactorized %g", i, j, gl.At(i, j), wl.At(i, j))
			}
		}
	}
}

// Extend must not reallocate on every call: over a burst of appends the
// backing array should grow O(log k) times.
func TestCholeskyExtendAmortizedGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomSPD(rng, 8)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	grows := 0
	for i := 0; i < 200; i++ {
		before := cap(ch.data)
		border := make([]float64, ch.Size())
		ch.Extend(border, 1)
		if cap(ch.data) != before {
			grows++
		}
	}
	if grows > 20 {
		t.Fatalf("Extend reallocated %d times over 200 appends; growth is not amortized", grows)
	}
}

func TestDotBlockedMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{0, 1, 3, 4, 5, 17, 256} {
		a := randomVec(rng, n)
		b := randomVec(rng, n)
		if !almostEqual(DotBlocked(a, b), Dot(a, b), 1e-12) {
			t.Fatalf("n=%d: DotBlocked diverges from Dot", n)
		}
	}
}

func TestTraceMulElemMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, n := range []int{1, 17, 200} {
		a := randomDense(rng, n, n)
		b := randomDense(rng, n, n)
		var naive float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				naive += a.At(i, j) * b.At(i, j)
			}
		}
		var serial, parallel float64
		withWorkers(1, func() { serial = TraceMulElem(a, b) })
		withWorkers(8, func() { parallel = TraceMulElem(a, b) })
		if serial != parallel {
			t.Fatalf("n=%d: TraceMulElem differs across worker counts", n)
		}
		if !almostEqual(serial, naive, 1e-10) {
			t.Fatalf("n=%d: TraceMulElem = %g naive %g", n, serial, naive)
		}
	}
}

func TestAppendRowAmortized(t *testing.T) {
	m := NewDense(1, 3, []float64{1, 2, 3})
	grows := 0
	for i := 0; i < 200; i++ {
		before := cap(m.RawData())
		m = m.AppendRow([]float64{4, 5, 6})
		if cap(m.RawData()) != before {
			grows++
		}
	}
	if m.Rows() != 201 {
		t.Fatalf("Rows = %d want 201", m.Rows())
	}
	if grows > 20 {
		t.Fatalf("AppendRow reallocated %d times over 200 appends", grows)
	}
	if m.At(200, 2) != 6 || m.At(0, 0) != 1 {
		t.Fatal("AppendRow corrupted contents")
	}
}

// TestParallelWorkersEachBodyOnce: every body fn(0..w-1) runs exactly once,
// across serial (SetWorkers(1)), caller-only (w=1), and dispatched modes.
func TestParallelWorkersEachBodyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, w := range []int{0, 1, 2, 5, 16} {
			counts := make([]int64, w+1)
			withWorkers(workers, func() {
				ParallelWorkers(w, func(id int) {
					atomic.AddInt64(&counts[id], 1)
				})
			})
			for id := 0; id < w; id++ {
				if counts[id] != 1 {
					t.Fatalf("workers=%d w=%d: body %d ran %d times", workers, w, id, counts[id])
				}
			}
		}
	}
}

// TestParallelWorkersNested: a body may itself call into the parallel
// layer; the never-blocking pool discipline keeps nesting deadlock-free.
func TestParallelWorkersNested(t *testing.T) {
	withWorkers(4, func() {
		var total atomic.Int64
		ParallelWorkers(4, func(id int) {
			ParallelFor(100, 1, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		})
		if total.Load() != 400 {
			t.Fatalf("nested ParallelFor covered %d indices, want 400", total.Load())
		}
	})
}
