package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSPD builds a well-conditioned SPD matrix B Bᵀ + n·I.
func randSPD(n int, rng *rand.Rand) *Dense {
	b := NewDense(n, n, nil)
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	a := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.data[i*n+k] * b.data[j*n+k]
			}
			a.data[i*n+j] = s
		}
		a.data[i*n+i] += float64(n)
	}
	return a
}

func TestForwardSolveVecToMatchesForwardSolveVec(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 130} {
		rng := rand.New(rand.NewSource(int64(n)))
		ch, err := NewCholesky(randSPD(n, rng))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := ch.ForwardSolveVec(b)
		dst := make([]float64, n)
		ch.ForwardSolveVecTo(dst, b)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: ForwardSolveVecTo[%d] = %g, ForwardSolveVec = %g", n, i, dst[i], want[i])
			}
		}
		// The serial variant must be bitwise-identical to the parallel one.
		serial := make([]float64, n)
		ch.ForwardSolveVecToSerial(serial, b)
		for i := range want {
			if serial[i] != want[i] {
				t.Fatalf("n=%d: ForwardSolveVecToSerial[%d] = %g, ForwardSolveVec = %g", n, i, serial[i], want[i])
			}
		}
		// Aliasing dst onto b is allowed.
		ch.ForwardSolveVecTo(b, b)
		for i := range want {
			if b[i] != want[i] {
				t.Fatalf("n=%d: aliased solve diverged at %d", n, i)
			}
		}
	}
}

// The flat solve must (a) actually solve L y = b and (b) return Σ y² in
// index order.
func TestForwardSolveFlatTo(t *testing.T) {
	for _, n := range []int{1, 9, 64, 100} {
		rng := rand.New(rand.NewSource(int64(n) + 7))
		ch, err := NewCholesky(randSPD(n, rng))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := ch.ForwardSolveVec(b)
		y := make([]float64, n)
		sum := ch.ForwardSolveFlatTo(y, b)
		for i := range want {
			if math.Abs(y[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: flat solve[%d] = %g, blocked = %g", n, i, y[i], want[i])
			}
		}
		var wantSum float64
		for _, v := range y {
			wantSum += v * v
		}
		if sum != wantSum {
			t.Fatalf("n=%d: running sum %g, index-order recompute %g", n, sum, wantSum)
		}
	}
}

// The bitwise-replay contract behind gp.ScoringCache: flat-solving against
// the extended factor reproduces, bit for bit, the prefix solve plus one
// BorderSolveStep per appended row — and the running norms agree exactly.
func TestBorderSolveStepMatchesFlatSolveBitwise(t *testing.T) {
	const n0, appends = 50, 20
	n := n0 + appends
	rng := rand.New(rand.NewSource(3))
	a := randSPD(n, rng)

	lead := NewDense(n0, n0, nil)
	for i := 0; i < n0; i++ {
		copy(lead.Row(i), a.Row(i)[:n0])
	}
	ch, err := NewCholesky(lead)
	if err != nil {
		t.Fatal(err)
	}

	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	// Incremental: solve the prefix flat, then extend the factor row by row
	// and apply one border step per row.
	v := make([]float64, n0, n)
	sum := ch.ForwardSolveFlatTo(v, b[:n0])
	for m := n0; m < n; m++ {
		k := make([]float64, m)
		for j := 0; j < m; j++ {
			k[j] = a.At(m, j)
		}
		l := ch.ForwardSolveVec(k)
		d := math.Sqrt(a.At(m, m) - Dot(l, l))
		ch.Extend(l, d)
		vNew := ch.BorderSolveStep(v, b[m])
		v = append(v, vNew)
		sum += vNew * vNew
	}

	// Rebuild: one flat solve against the final (extended) factor.
	flat := make([]float64, n)
	flatSum := ch.ForwardSolveFlatTo(flat, b)
	for i := range flat {
		if flat[i] != v[i] {
			t.Fatalf("flat[%d] = %g, incremental = %g (must be bitwise equal)", i, flat[i], v[i])
		}
	}
	if flatSum != sum {
		t.Fatalf("flat running norm %g, incremental %g (must be bitwise equal)", flatSum, sum)
	}
}

func TestDenseRemoveRow(t *testing.T) {
	build := func() *Dense {
		m := NewDense(4, 2, nil)
		for i := 0; i < 4; i++ {
			m.Set(i, 0, float64(10*i))
			m.Set(i, 1, float64(10*i+1))
		}
		return m
	}
	for drop := 0; drop < 4; drop++ {
		m := build().RemoveRow(drop)
		if m.Rows() != 3 || m.Cols() != 2 {
			t.Fatalf("drop %d: dims %dx%d", drop, m.Rows(), m.Cols())
		}
		want := 0
		for i := 0; i < 3; i++ {
			if want == drop {
				want++
			}
			if m.At(i, 0) != float64(10*want) || m.At(i, 1) != float64(10*want+1) {
				t.Fatalf("drop %d: row %d = %v, want row %d", drop, i, m.Row(i), want)
			}
			want++
		}
	}
	if got := NewDense(1, 3, nil).RemoveRow(0).Rows(); got != 0 {
		t.Fatalf("removing the only row left %d rows", got)
	}
}
