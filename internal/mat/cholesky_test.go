package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := NewDense(2, 2, []float64{4, 2, 2, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ch.L()
	if !almostEqual(l.At(0, 0), 2, 1e-14) ||
		!almostEqual(l.At(1, 0), 1, 1e-14) ||
		!almostEqual(l.At(1, 1), math.Sqrt2, 1e-14) ||
		l.At(0, 1) != 0 {
		t.Fatalf("unexpected factor:\n%v", l)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = NewCholesky(NewDense(2, 3, nil))
}

func TestCholeskyJitterRecoversSingular(t *testing.T) {
	// Rank-deficient Gram matrix from duplicated rows — the normal condition
	// for datasets with repeated measurements.
	a := NewDense(2, 2, []float64{1, 1, 1, 1})
	ch, err := NewCholeskyJitter(a, 1e-10, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Jitter() == 0 {
		t.Fatal("expected nonzero jitter for singular matrix")
	}
	// Solution should still be finite and approximately solve (A+jI)x=b.
	x := ch.SolveVec([]float64{1, 1})
	if !AllFinite(x) {
		t.Fatalf("solution not finite: %v", x)
	}
}

func TestCholeskyJitterExhausted(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 2, 1})
	// Indefinite matrix: tiny jitter cannot fix eigenvalue -1.
	if _, err := NewCholeskyJitter(a, 1e-12, 1e-9); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskySolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 6)
	xTrue := randomVec(rng, 6)
	b := a.MulVec(xTrue)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.SolveVec(b)
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-8) {
			t.Fatalf("x[%d] = %g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomSPD(rng, 5)
	xTrue := randomDense(rng, 5, 3)
	b := Mul(a, xTrue)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve(b)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(x.At(i, j), xTrue.At(i, j), 1e-8) {
				t.Fatalf("X[%d,%d] = %g want %g", i, j, x.At(i, j), xTrue.At(i, j))
			}
		}
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 4)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	prod := Mul(a, inv)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-8) {
				t.Fatalf("A*A^-1 at %d,%d = %g want %g", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestCholeskyLogDetIdentity(t *testing.T) {
	ch, err := NewCholesky(Eye(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.LogDet(); !almostEqual(got, 0, 1e-14) {
		t.Fatalf("LogDet(I) = %g want 0", got)
	}
}

func TestCholeskyLogDetDiagonal(t *testing.T) {
	a := NewDense(3, 3, []float64{2, 0, 0, 0, 3, 0, 0, 0, 4})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(24)
	if got := ch.LogDet(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("LogDet = %g want %g", got, want)
	}
}

func TestSolveTriangularHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomSPD(rng, 5)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randomVec(rng, 5)
	y := SolveLowerVec(ch.L(), b)
	// L y should reproduce b.
	ly := ch.L().MulVec(y)
	for i := range b {
		if !almostEqual(ly[i], b[i], 1e-10) {
			t.Fatalf("L y != b at %d: %g vs %g", i, ly[i], b[i])
		}
	}
	x := SolveUpperTransposedVec(ch.L(), y)
	ax := a.MulVec(x)
	for i := range b {
		if !almostEqual(ax[i], b[i], 1e-7) {
			t.Fatalf("A x != b at %d: %g vs %g", i, ax[i], b[i])
		}
	}
}

// Property: L Lᵀ reconstructs A for random SPD matrices.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		rec := Mul(ch.L(), ch.L().T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(rec.At(i, j), a.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveVec returns x with A x = b.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		b := randomVec(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := ch.SolveVec(b)
		ax := a.MulVec(x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: log|A| from Cholesky agrees with the product of eigenvalue
// surrogate computed via the determinant of small matrices (n<=3, cofactor
// expansion).
func TestCholeskyLogDetProperty(t *testing.T) {
	det2 := func(a *Dense) float64 {
		return a.At(0, 0)*a.At(1, 1) - a.At(0, 1)*a.At(1, 0)
	}
	det3 := func(a *Dense) float64 {
		return a.At(0, 0)*(a.At(1, 1)*a.At(2, 2)-a.At(1, 2)*a.At(2, 1)) -
			a.At(0, 1)*(a.At(1, 0)*a.At(2, 2)-a.At(1, 2)*a.At(2, 0)) +
			a.At(0, 2)*(a.At(1, 0)*a.At(2, 1)-a.At(1, 1)*a.At(2, 0))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2)
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		var det float64
		if n == 2 {
			det = det2(a)
		} else {
			det = det3(a)
		}
		return almostEqual(ch.LogDet(), math.Log(det), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholesky100(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randomSPD(rng, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve100(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	a := randomSPD(rng, 100)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := randomVec(rng, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SolveVec(rhs)
	}
}

// Property: Rank1Update(u) lands on the factorization of A + u uᵀ.
func TestCholeskyRank1Update(t *testing.T) {
	for _, n := range []int{1, 3, 17, 70} { // 70 crosses the cholBlock boundary
		rng := rand.New(rand.NewSource(int64(n)))
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		u := randomVec(rng, n)
		ch.Rank1Update(append([]float64(nil), u...))

		up := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				up.Set(i, j, up.At(i, j)+u[i]*u[j])
			}
		}
		want, err := NewCholesky(up)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if !almostEqual(ch.L().At(i, j), want.L().At(i, j), 1e-8) {
					t.Fatalf("n=%d: L[%d,%d] = %g want %g", n, i, j, ch.L().At(i, j), want.L().At(i, j))
				}
			}
		}
	}
}

// SolveVecToSerial must agree bitwise with the pooled SolveVec: the sparse
// scoring cache rebuilds through the serial path inside an outer ParallelFor
// while direct predictions may run pooled, and both must see identical
// posterior state.
func TestSolveVecToSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 5, 64, 65, 130, 200} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		b := randomVec(rng, n)
		want := ch.SolveVec(b)
		got := make([]float64, n)
		ch.SolveVecToSerial(got, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: serial solve diverges at %d: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}
