//go:build !amd64

package mat

// Pure-Go fallbacks for architectures without the AVX2+FMA kernels.

const haveFMA = false

func adot(a, b []float64) float64 { return dot4(a, b) }

func axpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}
