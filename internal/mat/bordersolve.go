package mat

import "fmt"

// This file holds the solve kernels behind the incremental posterior cache
// (gp.ScoringCache): a scratch-buffer variant of the blocked forward solve
// for the one-shot prediction path, and the flat/bordered pair whose
// floating-point grouping is the cache's bitwise-replay contract.
//
// The contract: ForwardSolveFlatTo applies plain row-by-row forward
// substitution, each row a single full-prefix adot. BorderSolveStep is
// exactly one such row, applied to the factor's newest (bordered) row.
// Solving a length-n system flat therefore produces bit-for-bit the same
// vector as solving length n₀ flat and then applying n−n₀ border steps as
// the factor grows — which is what lets a cache rebuilt at checkpoint-resume
// time agree bitwise with one maintained incrementally across appends.

// ForwardSolveVecTo solves L y = b into dst without allocating, the
// scratch-buffer form of ForwardSolveVec used by the prediction hot path.
// dst and b must both have length Size; dst may alias b.
func (c *Cholesky) ForwardSolveVecTo(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: ForwardSolveVecTo lengths %d/%d do not match size %d", len(dst), len(b), c.n))
	}
	copy(dst, b)
	c.forwardInPlace(dst)
}

// ForwardSolveVecToSerial is ForwardSolveVecTo restricted to the calling
// goroutine: same blocked sweep, same adot groupings, bitwise-identical
// result. Per-candidate solves that already run inside an outer ParallelFor
// (the prediction hot path) use it so the inner solve never pays a nested
// dispatch allocation.
func (c *Cholesky) ForwardSolveVecToSerial(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: ForwardSolveVecToSerial lengths %d/%d do not match size %d", len(dst), len(b), c.n))
	}
	copy(dst, b)
	c.forwardBlocked(dst, false)
}

// ForwardSolveFlatTo solves L y = b into dst by unblocked forward
// substitution — row i is one adot over the full prefix — and returns the
// running sum Σ dst[i]² accumulated in index order. It is serial and
// cache-unfriendly compared with ForwardSolveVecTo's blocked sweep, but its
// per-row grouping is identical to BorderSolveStep's, which makes it the
// rebuild path of the incremental posterior cache: rebuilt and
// incrementally-extended solve vectors (and their norms) agree bitwise.
func (c *Cholesky) ForwardSolveFlatTo(dst, b []float64) float64 {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: ForwardSolveFlatTo lengths %d/%d do not match size %d", len(dst), len(b), c.n))
	}
	var sum float64
	for i := 0; i < c.n; i++ {
		ri := c.row(i)
		yi := (b[i] - adot(ri[:i], dst[:i])) / ri[i]
		dst[i] = yi
		sum += yi * yi
	}
	return sum
}

// BorderSolveStep extends a forward-solve vector by one entry after the
// factor grew by a bordered row (Extend): given v = L_old⁻¹ k_old and the
// new right-hand-side entry kNew, it returns
//
//	vNew = (kNew − l·v) / d
//
// where (l, d) is the factor's newest packed row. The dot is the same
// SIMD-dispatched adot kernel ForwardSolveFlatTo uses over the same stored
// factor values, so one incremental step is bitwise a flat-solve row. This
// is the O(n) per-candidate work of the cache's append fast path.
func (c *Cholesky) BorderSolveStep(v []float64, kNew float64) float64 {
	if len(v) != c.n-1 {
		panic(fmt.Sprintf("mat: BorderSolveStep solve length %d does not match border %d", len(v), c.n-1))
	}
	r := c.row(c.n - 1)
	return (kNew - adot(r[:c.n-1], v)) / r[c.n-1]
}
