package mat

import (
	"runtime"
	"sync"
	"sync/atomic"

	"alamr/internal/obs"
)

// This file implements the parallel compute layer used by the dense kernels
// in this package (and, through it, by kernel-matrix assembly and GP
// fitting). Three properties drive the design:
//
//  1. Determinism. Parallel execution must produce results bitwise-identical
//     to serial execution, for any worker count, so that the repo's
//     seeded-determinism guarantee survives. Every parallel operation
//     therefore partitions its output so that each element is computed in
//     full by exactly one goroutine, using a floating-point evaluation order
//     that is a fixed function of the problem size only (never of the worker
//     count or chunk boundaries). Reductions that cross the partition
//     (ParallelSum) use fixed-size blocks whose partial sums are combined in
//     ascending block order.
//
//  2. Thresholding. Work smaller than a grain size runs inline on the
//     calling goroutine; dispatch overhead must never dominate early AL
//     iterations where n is tiny.
//
//  3. Deadlock freedom under nesting. The caller of ParallelFor always
//     participates in executing its own chunks, and pool workers never block
//     waiting for other chunks, so nested parallel sections (e.g. a parallel
//     Predict whose per-point solves are themselves parallel-capable) cannot
//     deadlock: in the worst case the inner section degrades to serial
//     execution on the calling goroutine.
type parallelPool struct {
	mu      sync.Mutex
	tasks   chan func()
	started int // goroutines launched so far
}

var (
	pool parallelPool
	// workerTarget is the number of chunks a parallel section is split into.
	// It defaults to GOMAXPROCS and is adjustable (primarily by tests and
	// benchmarks) via SetWorkers. It does not affect numerical results.
	workerTarget atomic.Int64
)

func init() {
	workerTarget.Store(int64(runtime.GOMAXPROCS(0)))
}

// Workers reports the current parallelism target.
func Workers() int { return int(workerTarget.Load()) }

// SetWorkers sets the parallelism target (clamped to at least 1) and returns
// the previous value. n = 1 forces every operation in this package down its
// serial path. Results are bitwise-identical for every setting; this is a
// throughput knob, not a semantics knob.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workerTarget.Swap(int64(n)))
}

// offer hands a helper function to the pool without ever blocking: if no
// pool capacity is available the offer is dropped and the caller simply does
// the work itself.
func (p *parallelPool) offer(fn func(), want int) {
	p.mu.Lock()
	if p.tasks == nil {
		p.tasks = make(chan func(), 4*runtime.GOMAXPROCS(0))
	}
	// Lazily grow the pool up to the requested helper count.
	for p.started < want {
		p.started++
		go func() {
			for t := range p.tasks {
				t()
			}
		}()
	}
	p.mu.Unlock()
	select {
	case p.tasks <- fn:
	default:
	}
}

// ParallelFor runs fn over contiguous chunks of [0, n). minChunk is the
// smallest range worth dispatching to another goroutine; when n < 2*minChunk
// (or the worker target is 1) fn runs inline as fn(0, n).
//
// fn must treat its [lo, hi) range as exclusively owned. Chunk boundaries
// are not part of the numerical contract: fn must produce, for each index,
// the same value regardless of how the range is split (which holds
// automatically when each output element is computed in full from inputs
// that are read-only during the call).
func ParallelFor(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	w := Workers()
	if w == 1 || n < 2*minChunk {
		obs.MatInline.Inc()
		fn(0, n)
		return
	}
	obs.MatDispatch.Inc()
	obs.MatWorkers.Set(float64(w))
	nchunks := (n + minChunk - 1) / minChunk
	if nchunks > w {
		nchunks = w
	}
	size := (n + nchunks - 1) / nchunks
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nchunks)
	run := func() {
		for {
			id := int(next.Add(1)) - 1
			if id >= nchunks {
				return
			}
			lo := id * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			wg.Done()
		}
	}
	for i := 0; i < nchunks-1; i++ {
		pool.offer(run, w-1)
	}
	run() // the caller participates, guaranteeing progress
	wg.Wait()
}

// ParallelWorkers runs fn(0) … fn(w-1) concurrently over the package worker
// pool, with the caller participating. Unlike ParallelFor — which splits one
// index range into interchangeable chunks — each body here has an identity:
// fn(i) typically owns per-worker state (scratch slabs, partial heaps)
// indexed by i, and every body runs exactly once. The usual pool discipline
// applies: helpers are offered without blocking and the caller claims any
// body no helper picked up, so in the worst case (w == 1, a saturated pool,
// or SetWorkers(1)) all bodies run serially on the calling goroutine and
// nothing deadlocks. Like ParallelFor, this is a throughput surface only:
// callers must arrange that results do not depend on which goroutine runs
// which body, or on how bodies interleave.
func ParallelWorkers(w int, fn func(worker int)) {
	if w <= 0 {
		return
	}
	if w == 1 || Workers() == 1 {
		obs.MatInline.Inc()
		for i := 0; i < w; i++ {
			fn(i)
		}
		return
	}
	obs.MatDispatch.Inc()
	obs.MatWorkers.Set(float64(Workers()))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	run := func() {
		for {
			id := int(next.Add(1)) - 1
			if id >= w {
				return
			}
			fn(id)
			wg.Done()
		}
	}
	for i := 0; i < w-1; i++ {
		pool.offer(run, Workers()-1)
	}
	run() // the caller participates, guaranteeing progress
	wg.Wait()
}

// sumBlock is the fixed reduction block size used by ParallelSum. It is a
// constant so that the grouping of partial sums — and therefore the
// floating-point result — is a function of n alone.
const sumBlock = 64

// ParallelSum computes Σ fn(lo, hi) over fixed-size blocks of [0, n),
// combining the per-block partial sums in ascending block order. Because
// the block decomposition does not depend on the worker count, the result
// is bitwise-identical for any parallelism setting. minBlockWork is the
// approximate scalar work per index, used only for the serial threshold.
func ParallelSum(n int, minBlockWork int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nblocks := (n + sumBlock - 1) / sumBlock
	if nblocks == 1 {
		return fn(0, n)
	}
	partials := make([]float64, nblocks)
	minChunk := 1
	if minBlockWork > 0 {
		if mc := grainFlops / (minBlockWork * sumBlock); mc > 1 {
			minChunk = mc
		}
	}
	ParallelFor(nblocks, minChunk, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			blo := b * sumBlock
			bhi := blo + sumBlock
			if bhi > n {
				bhi = n
			}
			partials[b] = fn(blo, bhi)
		}
	})
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}

// grainFlops is the approximate amount of scalar work that justifies
// dispatching a chunk to another goroutine.
const grainFlops = 1 << 15

// ChunkFor converts an estimate of scalar work per item into a ParallelFor
// minChunk value: items cheaper than the dispatch grain are batched so that
// each chunk carries enough work to be worth a goroutine.
func ChunkFor(workPerItem int) int {
	if workPerItem <= 0 {
		return 1
	}
	mc := grainFlops / workPerItem
	if mc < 1 {
		return 1
	}
	return mc
}

// chunkFor is the internal alias used by this package's kernels.
func chunkFor(workPerItem int) int { return ChunkFor(workPerItem) }

// dot4 is the unrolled inner product used by the dense kernels in this
// package: four independent accumulators combined as (s0+s1)+(s2+s3), with
// the tail folded into s0. The evaluation order is a fixed function of the
// slice length, which keeps every caller deterministic. Breaking the single
// accumulator dependency chain of a naive dot is worth ~2-3x on its own:
// each FMA no longer waits on the previous one.
func dot4(a, b []float64) float64 {
	n := len(a)
	b = b[:n] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotBlocked is the exported form of the dispatching deterministic inner
// product. Unlike Dot it does not promise the naive left-to-right summation
// order; it promises a fixed order for a given length (and, across machines,
// instruction set), which is what the parallel layer needs.
func DotBlocked(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: DotBlocked length mismatch")
	}
	return adot(a, b)
}

// TraceMulElem returns the Frobenius inner product Σ_ij a_ij·b_ij, the
// tr(AᵀB) term of the LML gradient, computed row-parallel with a
// deterministic block-ordered reduction.
func TraceMulElem(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: TraceMulElem shape mismatch")
	}
	return ParallelSum(a.rows, 2*a.cols, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += adot(a.Row(i), b.Row(i))
		}
		return s
	})
}
