package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4, nil)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("zero matrix has nonzero at %d,%d", i, j)
			}
		}
	}
}

func TestNewDensePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero rows", func() { NewDense(0, 3, nil) }},
		{"negative cols", func() { NewDense(3, -1, nil) }},
		{"bad data len", func() { NewDense(2, 2, make([]float64, 3)) }},
		{"at out of range", func() { NewDense(2, 2, nil).At(2, 0) }},
		{"set out of range", func() { NewDense(2, 2, nil).Set(0, 2, 1) }},
		{"row out of range", func() { NewDense(2, 2, nil).Row(5) }},
		{"trace non-square", func() { NewDense(2, 3, nil).Trace() }},
		{"adddiag non-square", func() { NewDense(2, 3, nil).AddDiag(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3, nil)
	m.Set(1, 2, 42.5)
	if got := m.At(1, 2); got != 42.5 {
		t.Fatalf("At(1,2) = %g want 42.5", got)
	}
	if got := m.Row(1)[2]; got != 42.5 {
		t.Fatalf("Row(1)[2] = %g want 42.5", got)
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d want 3,2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 4)
	got := Mul(a, Eye(4))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almostEqual(got.At(i, j), a.At(i, j), 1e-14) {
				t.Fatalf("A*I != A at %d,%d", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewDense(2, 2, []float64{58, 64, 139, 154})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul at %d,%d = %g want %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 5, 3)
	x := randomVec(rng, 3)
	xm := NewDense(3, 1, CopyVec(x))
	want := Mul(a, xm)
	got := a.MulVec(x)
	for i := 0; i < 5; i++ {
		if !almostEqual(got[i], want.At(i, 0), 1e-13) {
			t.Fatalf("MulVec[%d] = %g want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 5, 3)
	x := randomVec(rng, 5)
	want := a.T().MulVec(x)
	got := a.MulVecT(x)
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-13) {
			t.Fatalf("MulVecT[%d] = %g want %g", i, got[i], want[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2, []float64{5, 6, 7, 8})
	sum := NewDense(2, 2, nil)
	sum.Add(a, b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("Add = %g want 12", sum.At(1, 1))
	}
	diff := NewDense(2, 2, nil)
	diff.Sub(b, a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("Sub = %g want 4", diff.At(0, 0))
	}
	diff.Scale(0.5)
	if diff.At(0, 1) != 2 {
		t.Fatalf("Scale = %g want 2", diff.At(0, 1))
	}
}

func TestAddDiagAndTrace(t *testing.T) {
	m := Eye(3)
	m.AddDiag(2)
	if got := m.Trace(); got != 9 {
		t.Fatalf("Trace = %g want 9", got)
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 2, 4, 3})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize off-diagonals = %g,%g want 3,3", m.At(0, 1), m.At(1, 0))
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatalf("Clone shares storage with original")
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewDense(2, 2, []float64{1, -7, 3, 4})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %g want 7", got)
	}
}

func TestStringContainsValues(t *testing.T) {
	m := NewDense(1, 2, []float64{1.5, -2})
	s := m.String()
	if s == "" {
		t.Fatal("String is empty")
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randomDense(rng, r, c)
		tt := a.T().T()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if a.At(i, j) != tt.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication is associative (up to roundoff).
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomDense(rng, n, n)
		b := randomDense(rng, n, n)
		c := randomDense(rng, n, n)
		l := Mul(Mul(a, b), c)
		r := Mul(a, Mul(b, c))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(l.At(i, j), r.At(i, j), 1e-10) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		n := 1 + rng.Intn(4)
		a := randomDense(rng, m, k)
		b := randomDense(rng, k, n)
		l := Mul(a, b).T()
		r := Mul(b.T(), a.T())
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if !almostEqual(l.At(i, j), r.At(i, j), 1e-11) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c, nil)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randomSPD builds a random symmetric positive-definite matrix A = BBᵀ + εI.
func randomSPD(rng *rand.Rand, n int) *Dense {
	b := randomDense(rng, n, n)
	a := Mul(b, b.T())
	a.AddDiag(1e-3 * float64(n))
	a.Symmetrize()
	return a
}
