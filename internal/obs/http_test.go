package obs

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Gauge(MetricCampaignCumCost, "cc").Set(12.5)
	r.Counter(MetricLoopIterations, "iters").Add(3)

	s, err := NewServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, MetricCampaignCumCost+" 12.5") {
		t.Fatalf("/metrics missing cum-cost gauge:\n%s", body)
	}
	if !strings.Contains(body, MetricLoopIterations+" 3") {
		t.Fatalf("/metrics missing iteration counter:\n%s", body)
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"`+MetricCampaignCumCost+`": 12.5`) {
		t.Fatalf("/metrics.json status %d body:\n%s", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestBootDisabledIsNil(t *testing.T) {
	b, err := Boot("", "")
	if err != nil || b != nil {
		t.Fatalf("Boot(\"\",\"\") = %v, %v; want nil, nil", b, err)
	}
	if err := b.Close(); err != nil { // nil-safe Close
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("Boot with no flags must leave obs disabled")
	}
}

func TestBootTraceFile(t *testing.T) {
	defer Disable()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	b, err := Boot("", path)
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Boot with trace path must enable obs")
	}
	SpanScore.Start().End()
	SpanRun.Start().EndDetail("job=7")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("Close must disable obs")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, `"name":"score"`) || !strings.Contains(out, `"detail":"job=7"`) {
		t.Fatalf("trace JSONL incomplete:\n%s", out)
	}
}
