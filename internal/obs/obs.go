// Package obs is the campaign observability layer: a zero-dependency
// metrics registry (atomic counters, gauges, and fixed-bucket histograms
// with a Prometheus-text exporter and a JSON snapshot), a span-style event
// tracer (bounded ring buffer, optional JSONL stream), and an HTTP server
// that exposes /metrics and net/http/pprof.
//
// The paper's core claim is economic — RGMA wins on Cumulative Cost and
// Cumulative Regret, not just RMSE — so CC, CR, and memory headroom are
// live gauges here, continuously observable while a campaign runs, rather
// than columns computed after it ends. The AL loop phases (fit / hyperopt /
// score / select / run / feed), the GP internals (Cholesky extend vs.
// rebuild, ScoringCache hit/invalidate/rebuild, worker-pool dispatch), and
// the faults runtime (attempts, retries, backoff, censored kills,
// checkpoint timings) all report through this package.
//
// # Enable/disable contract
//
// Instrumented packages never hold a *Registry; they call through the
// package-level handles declared in handles.go (obs.CacheHits.Inc(),
// obs.SpanScore.Start(), ...). While disabled — the default — every handle
// is unbound and every call is a nil-check no-op: one atomic load on the
// hot path, no wall-clock reads, no allocation. Enable binds all handles
// to a live Registry (and optionally a Tracer); Disable unbinds them.
// Handles are swapped through atomic pointers, so Enable/Disable are safe
// to call while instrumented code runs (though metrics observed across the
// swap may land in either world).
//
// # Determinism contract
//
// Instrumentation is write-only: it never feeds back into the computation,
// never draws from any seeded RNG, and never makes control flow depend on
// the clock. Wall time appears only in metric/trace *output* (durations,
// timestamps), so enabling observability cannot perturb seeded trajectories
// or the bitwise checkpoint-resume guarantee — a property pinned by the
// obs-enabled kill-and-resume tests in internal/online. Tracers built with
// Deterministic: true additionally zero all time fields, making trace
// output itself byte-for-byte reproducible.
package obs

import (
	"sync"
	"sync/atomic"
)

// enabled is the fast-path gate: instrumented code may consult Enabled()
// before building span details or reading the clock.
var enabled atomic.Bool

// global holds the bound registry/tracer (nil when disabled).
var global struct {
	mu       sync.Mutex
	registry atomic.Pointer[Registry]
	tracer   atomic.Pointer[Tracer]
}

// Enabled reports whether a registry is currently bound. Instrumented code
// uses it to skip work that only matters when observability is on (building
// trace detail strings, reading the clock for span durations).
func Enabled() bool { return enabled.Load() }

// Default returns the currently bound registry, or nil while disabled.
func Default() *Registry { return global.registry.Load() }

// CurrentTracer returns the currently bound tracer, or nil.
func CurrentTracer() *Tracer { return global.tracer.Load() }

// Enable binds r (and the optional tracer t, which may be nil) as the
// process-wide observability sink and rebinds every declared handle.
// Enabling with a nil registry is equivalent to Disable.
func Enable(r *Registry, t *Tracer) {
	global.mu.Lock()
	defer global.mu.Unlock()
	if r == nil {
		disableLocked()
		return
	}
	global.registry.Store(r)
	global.tracer.Store(t)
	bindHandles(r)
	enabled.Store(true)
}

// Disable unbinds the registry and tracer; every handle reverts to a no-op.
func Disable() {
	global.mu.Lock()
	defer global.mu.Unlock()
	disableLocked()
}

func disableLocked() {
	enabled.Store(false)
	unbindHandles()
	global.registry.Store(nil)
	global.tracer.Store(nil)
}
