package obs_test

import (
	"os"

	"alamr/internal/obs"
)

// Example_metrics builds a registry, drives each instrument kind, and
// renders the Prometheus text exposition — the same bytes -metrics-addr
// serves at /metrics. Production code does not usually touch instruments
// directly: it calls obs.Enable(reg, tracer) once and the instrumented
// packages write through the package-level nil-safe handles
// (obs.LoopIterations, obs.SpanScore, ...); see examples/observability for
// that end-to-end flow.
func Example_metrics() {
	reg := obs.NewRegistry()

	hits := reg.Counter("demo_cache_hits_total", "cache hits served without a rebuild")
	depth := reg.Gauge("demo_pool_size", "candidates remaining in the pool")
	lat := reg.Histogram("demo_score_seconds", "time to score the pool", obs.LatencyBuckets)

	hits.Inc()
	hits.Inc()
	depth.Set(118)
	lat.Observe(0.004)

	if err := reg.WritePrometheus(os.Stdout); err != nil {
		panic(err)
	}

	// Output:
	// # HELP demo_cache_hits_total cache hits served without a rebuild
	// # TYPE demo_cache_hits_total counter
	// demo_cache_hits_total 2
	// # HELP demo_pool_size candidates remaining in the pool
	// # TYPE demo_pool_size gauge
	// demo_pool_size 118
	// # HELP demo_score_seconds time to score the pool
	// # TYPE demo_score_seconds histogram
	// demo_score_seconds_bucket{le="1e-05"} 0
	// demo_score_seconds_bucket{le="0.0001"} 0
	// demo_score_seconds_bucket{le="0.001"} 0
	// demo_score_seconds_bucket{le="0.01"} 1
	// demo_score_seconds_bucket{le="0.1"} 1
	// demo_score_seconds_bucket{le="0.5"} 1
	// demo_score_seconds_bucket{le="1"} 1
	// demo_score_seconds_bucket{le="5"} 1
	// demo_score_seconds_bucket{le="30"} 1
	// demo_score_seconds_bucket{le="+Inf"} 1
	// demo_score_seconds_sum 0.004
	// demo_score_seconds_count 1
}

// Example_tracer records span events deterministically (wall-clock fields
// zeroed) — the mode the bitwise checkpoint-resume tests run under.
func Example_tracer() {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerConfig{Deterministic: true, Out: os.Stdout})
	obs.Enable(reg, tr)
	defer obs.Disable()

	sp := obs.SpanScore.Start()
	sp.EndDetail("pool=120")
	obs.SpanSelect.Start().End()
	if err := tr.Flush(); err != nil {
		panic(err)
	}

	// Output:
	// {"seq":1,"name":"score","detail":"pool=120"}
	// {"seq":2,"name":"select"}
}
