package obs

import (
	"sync/atomic"
	"time"
)

// Handles are the indirection that makes instrumentation free when
// observability is off. Instrumented packages call the package-level
// handle vars below (obs.CacheHits.Inc(), obs.SpanScore.Start(), ...);
// each handle holds an atomic pointer to its instrument, nil while
// disabled, so a disabled call is one atomic load plus a nil-check no-op.
// Enable/bindHandles swaps live instruments in; Disable swaps nils back.

// CounterHandle is a nil-safe indirection to a Counter.
type CounterHandle struct{ p atomic.Pointer[Counter] }

// Inc adds one; no-op while disabled.
func (h *CounterHandle) Inc() { h.p.Load().Inc() }

// Add adds n; no-op while disabled.
func (h *CounterHandle) Add(n int64) { h.p.Load().Add(n) }

// GaugeHandle is a nil-safe indirection to a Gauge.
type GaugeHandle struct{ p atomic.Pointer[Gauge] }

// Set stores v; no-op while disabled.
func (h *GaugeHandle) Set(v float64) { h.p.Load().Set(v) }

// Add atomically adds delta; no-op while disabled. For gauges that track a
// level (e.g. shards in flight): +1 on entry, -1 on exit.
func (h *GaugeHandle) Add(delta float64) { h.p.Load().Add(delta) }

// HistogramHandle is a nil-safe indirection to a Histogram.
type HistogramHandle struct{ p atomic.Pointer[Histogram] }

// Observe records v; no-op while disabled.
func (h *HistogramHandle) Observe(v float64) { h.p.Load().Observe(v) }

// CounterVecHandle is a nil-safe indirection to a fixed set of labeled
// counters keyed by label value (e.g. fault class). Unknown values are
// silently dropped.
type CounterVecHandle struct {
	p atomic.Pointer[map[string]*Counter]
}

// Inc increments the counter for the given label value; no-op while
// disabled or for unknown values.
func (h *CounterVecHandle) Inc(value string) {
	m := h.p.Load()
	if m == nil {
		return
	}
	(*m)[value].Inc()
}

// HistogramVecHandle is a nil-safe indirection to a fixed set of labeled
// histograms keyed by label value (e.g. HTTP route). Unknown values are
// silently dropped.
type HistogramVecHandle struct {
	p atomic.Pointer[map[string]*Histogram]
}

// Observe records v into the histogram for the given label value; no-op
// while disabled or for unknown values.
func (h *HistogramVecHandle) Observe(value string, v float64) {
	m := h.p.Load()
	if m == nil {
		return
	}
	(*m)[value].Observe(v)
}

// SpanHandle times a named region into a latency histogram and, when a
// tracer is bound, emits a trace event. Usage:
//
//	sp := obs.SpanScore.Start()
//	... work ...
//	sp.End()
//
// While disabled Start returns an inert Span and never reads the clock.
type SpanHandle struct {
	name string
	hist atomic.Pointer[Histogram]
}

// Start begins timing the region; returns an inert Span while disabled.
func (h *SpanHandle) Start() Span {
	hist := h.hist.Load()
	if hist == nil {
		return Span{}
	}
	return Span{name: h.name, hist: hist, start: time.Now()}
}

// Span is an in-flight timed region produced by SpanHandle.Start.
type Span struct {
	name  string
	hist  *Histogram
	start time.Time
}

// End closes the span: observes the elapsed seconds into the handle's
// histogram and emits a trace event if a tracer is bound.
func (s Span) End() { s.EndDetail("") }

// EndDetail is End with a free-form detail string attached to the trace
// event (ignored by the histogram).
func (s Span) EndDetail(detail string) {
	if s.hist == nil {
		return
	}
	d := time.Since(s.start)
	s.hist.Observe(d.Seconds())
	if t := CurrentTracer(); t != nil {
		t.emit(s.name, s.start, d, detail)
	}
}

// The process-wide instrument handles. One var per metric in names.go;
// all no-ops until Enable binds them.
var (
	// AL loop / campaign.
	LoopIterations     CounterHandle
	CampaignViolations CounterHandle
	CampaignCumCost    GaugeHandle
	CampaignCumRegret  GaugeHandle
	CampaignHeadroom   GaugeHandle
	PoolSize           GaugeHandle
	JobCost            HistogramHandle
	JobMem             HistogramHandle

	// Multi-fidelity campaigns.
	FidelityLevels     GaugeHandle
	FidelitySelections CounterVecHandle

	// Loop phase spans (histogram alamr_loop_phase_seconds{phase=...}).
	SpanFit      = SpanHandle{name: PhaseFit}
	SpanHyperopt = SpanHandle{name: PhaseHyperopt}
	SpanScore    = SpanHandle{name: PhaseScore}
	SpanSelect   = SpanHandle{name: PhaseSelect}
	SpanRun      = SpanHandle{name: PhaseRun}
	SpanFeed     = SpanHandle{name: PhaseFeed}

	// GP internals.
	GPRebuilds  CounterHandle
	GPExtends   CounterHandle
	GPTrainRows GaugeHandle

	// ScoringCache.
	CacheHits          CounterHandle
	CacheRebuilds      CounterHandle
	CacheInvalidations CounterHandle
	CacheExtends       CounterHandle

	// Streamed candidate pool. The span histogram times one shard's
	// predict-and-reduce; the in-flight gauge counts shards being scored
	// concurrently (its high-water mark is the achieved parallelism).
	PoolShardsScored   CounterHandle
	PoolShardsPruned   CounterHandle
	PoolStreamLive     GaugeHandle
	PoolShardsInflight GaugeHandle
	SpanShardScore     = SpanHandle{name: "pool.shard"}

	// Per-model incremental scoring caches (sparse/treed).
	ModelCacheOps CounterVecHandle

	// mat worker pool.
	MatDispatch CounterHandle
	MatInline   CounterHandle
	MatWorkers  GaugeHandle

	// Faults runtime.
	FaultAttempts CounterHandle
	FaultRetries  CounterHandle
	FaultSuccess  CounterHandle
	FaultCensored CounterHandle
	FaultFatal    CounterHandle
	FaultByClass  CounterVecHandle
	FaultBackoff  HistogramHandle

	// Checkpointing (spans carry both the counter-adjacent trace event and
	// the duration histogram; the counters count completed operations).
	CheckpointWrites      CounterHandle
	CheckpointRestores    CounterHandle
	SpanCheckpointWrite   = SpanHandle{name: "checkpoint.write"}
	SpanCheckpointRestore = SpanHandle{name: "checkpoint.restore"}

	// Remote lab dispatcher (aggregate across workers; the dispatcher also
	// creates per-worker labeled series dynamically).
	RemoteJobsDispatched CounterHandle
	RemoteJobsCompleted  CounterHandle
	RemoteJobsStolen     CounterHandle
	RemoteJobsLost       CounterHandle
	RemoteWorkersLive    GaugeHandle
	RemoteHeartbeat      HistogramHandle

	// Serving daemon (internal/serve).
	ServeSubmitted   CounterHandle
	ServeRejected    CounterVecHandle
	ServeFinished    CounterVecHandle
	ServeResumed     CounterHandle
	ServeQueueDepth  GaugeHandle
	ServeRunning     GaugeHandle
	ServeHTTPSeconds HistogramVecHandle
)

// faultClassValues mirrors faults.Classes(); kept here so obs has no
// dependency on the packages it instruments.
var faultClassValues = []string{"oom", "timeout", "transient", "corrupt", "unknown"}

// modelCacheOpValues enumerates the label values of MetricModelCacheOps.
var modelCacheOpValues = []string{
	ModelCacheSparseExtend, ModelCacheSparseRebuild,
	ModelCacheTreedExtend, ModelCacheTreedRebuild,
}

// serveRejectValues / serveStateValues / serveRouteValues enumerate the
// label values of the serving-daemon vec metrics.
var (
	serveRejectValues = []string{ServeRejectBackpressure, ServeRejectInvalid}
	serveStateValues  = []string{ServeStateDone, ServeStateFailed, ServeStateCancelled}
	serveRouteValues  = []string{ServeRouteSubmit, ServeRouteGet, ServeRouteStatus, ServeRouteCancel, ServeRouteList}
)

// bindHandles points every handle at live instruments in r. Called under
// global.mu by Enable.
func bindHandles(r *Registry) {
	LoopIterations.p.Store(r.Counter(MetricLoopIterations, "AL loop iterations completed"))
	CampaignViolations.p.Store(r.Counter(MetricCampaignViolations, "selected jobs that exceeded the memory limit"))
	CampaignCumCost.p.Store(r.Gauge(MetricCampaignCumCost, "cumulative cost (node-hours) so far"))
	CampaignCumRegret.p.Store(r.Gauge(MetricCampaignCumRegret, "cumulative regret (node-hours wasted on violations) so far"))
	CampaignHeadroom.p.Store(r.Gauge(MetricCampaignHeadroom, "memory headroom of the last run job (limit - MaxRSS, MB)"))
	PoolSize.p.Store(r.Gauge(MetricPoolSize, "candidate pool size"))
	JobCost.p.Store(r.Histogram(MetricJobCost, "per-job cost (node-hours)", CostBuckets))
	JobMem.p.Store(r.Histogram(MetricJobMem, "per-job peak memory (MB)", SizeBuckets))
	FidelityLevels.p.Store(r.Gauge(MetricFidelityLevels, "fidelity-ladder size of the running campaign"))
	fidLevels := make(map[string]*Counter, len(FidelityLevelValues))
	for _, lv := range FidelityLevelValues {
		fidLevels[lv] = r.Counter(Labeled(MetricFidelitySelections, LabelLevel, lv), "AL selections, by fidelity ladder rung")
	}
	FidelitySelections.p.Store(&fidLevels)

	for _, sp := range []*SpanHandle{&SpanFit, &SpanHyperopt, &SpanScore, &SpanSelect, &SpanRun, &SpanFeed} {
		sp.hist.Store(r.Histogram(Labeled(MetricLoopPhaseSeconds, "phase", sp.name),
			"AL loop phase duration (seconds)", LatencyBuckets))
	}

	GPRebuilds.p.Store(r.Counter(MetricGPRebuilds, "full Cholesky factorizations (Fit/Refit)"))
	GPExtends.p.Store(r.Counter(MetricGPExtends, "incremental rank-1 Cholesky extensions (Append)"))
	GPTrainRows.p.Store(r.Gauge(MetricGPTrainRows, "GP training-set size after the last (re)build"))

	CacheHits.p.Store(r.Counter(MetricCacheHits, "ScoringCache.Scores calls served warm"))
	CacheRebuilds.p.Store(r.Counter(MetricCacheRebuilds, "ScoringCache full rebuilds"))
	CacheInvalidations.p.Store(r.Counter(MetricCacheInvalidations, "ScoringCache invalidations (Fit/Refit)"))
	CacheExtends.p.Store(r.Counter(MetricCacheExtends, "ScoringCache incremental extensions (Append)"))

	PoolShardsScored.p.Store(r.Counter(MetricPoolShardsScored, "streamed-pool shards scored"))
	PoolShardsPruned.p.Store(r.Counter(MetricPoolShardsPruned, "streamed-pool shards pruned by the upper-bound test"))
	PoolStreamLive.p.Store(r.Gauge(MetricPoolStreamLive, "live candidates in the streamed pool"))
	PoolShardsInflight.p.Store(r.Gauge(MetricPoolShardsInflight, "streamed-pool shards being scored right now"))
	SpanShardScore.hist.Store(r.Histogram(MetricPoolShardScoreSecs, "one shard's predict-and-reduce duration (seconds)", LatencyBuckets))
	modelOps := make(map[string]*Counter, len(modelCacheOpValues))
	for _, op := range modelCacheOpValues {
		modelOps[op] = r.Counter(Labeled(MetricModelCacheOps, "kind", op), "per-model scoring-cache maintenance operations")
	}
	ModelCacheOps.p.Store(&modelOps)

	MatDispatch.p.Store(r.Counter(MetricMatDispatch, "ParallelFor calls dispatched to the worker pool"))
	MatInline.p.Store(r.Counter(MetricMatInline, "ParallelFor calls run inline (serial fast path)"))
	MatWorkers.p.Store(r.Gauge(MetricMatWorkers, "worker-pool size at last dispatch"))

	FaultAttempts.p.Store(r.Counter(MetricFaultAttempts, "experiment attempts (including retries)"))
	FaultRetries.p.Store(r.Counter(MetricFaultRetries, "attempts that faulted and were retried"))
	FaultSuccess.p.Store(r.Counter(MetricFaultSuccesses, "experiments that ended in success"))
	FaultCensored.p.Store(r.Counter(MetricFaultCensored, "experiments that ended censored (oom/timeout kill)"))
	FaultFatal.p.Store(r.Counter(MetricFaultFatal, "experiments that ended fatally"))
	classes := make(map[string]*Counter, len(faultClassValues))
	for _, cl := range faultClassValues {
		classes[cl] = r.Counter(Labeled(MetricFaultByClass, "class", cl), "faults observed, by class")
	}
	FaultByClass.p.Store(&classes)
	FaultBackoff.p.Store(r.Histogram(MetricFaultBackoffSeconds, "simulated backoff waits (seconds)", BackoffBuckets))

	CheckpointWrites.p.Store(r.Counter(MetricCheckpointWrites, "checkpoints written"))
	CheckpointRestores.p.Store(r.Counter(MetricCheckpointRestores, "campaigns resumed from a checkpoint"))
	SpanCheckpointWrite.hist.Store(r.Histogram(MetricCheckpointWriteSeconds, "checkpoint write duration (seconds)", LatencyBuckets))
	SpanCheckpointRestore.hist.Store(r.Histogram(MetricCheckpointRestoreSeconds, "checkpoint restore duration (seconds)", LatencyBuckets))

	RemoteJobsDispatched.p.Store(r.Counter(MetricRemoteJobsDispatched, "jobs handed to remote workers (including re-dispatches)"))
	RemoteJobsCompleted.p.Store(r.Counter(MetricRemoteJobsCompleted, "jobs remote workers finished (success or reported fault)"))
	RemoteJobsStolen.p.Store(r.Counter(MetricRemoteJobsStolen, "journaled jobs re-dispatched after a worker loss or resume"))
	RemoteJobsLost.p.Store(r.Counter(MetricRemoteJobsLost, "in-flight jobs lost to a vanished worker"))
	RemoteWorkersLive.p.Store(r.Gauge(MetricRemoteWorkersLive, "remote workers currently connected"))
	RemoteHeartbeat.p.Store(r.Histogram(MetricRemoteHeartbeat, "gap between consecutive frames from a worker (seconds)", LatencyBuckets))

	ServeSubmitted.p.Store(r.Counter(MetricServeSubmitted, "campaign submissions accepted"))
	rejects := make(map[string]*Counter, len(serveRejectValues))
	for _, v := range serveRejectValues {
		rejects[v] = r.Counter(Labeled(MetricServeRejected, LabelReason, v), "campaign submissions rejected, by reason")
	}
	ServeRejected.p.Store(&rejects)
	states := make(map[string]*Counter, len(serveStateValues))
	for _, v := range serveStateValues {
		states[v] = r.Counter(Labeled(MetricServeFinished, LabelState, v), "campaigns finished, by terminal state")
	}
	ServeFinished.p.Store(&states)
	ServeResumed.p.Store(r.Counter(MetricServeResumed, "campaigns requeued on daemon restart"))
	ServeQueueDepth.p.Store(r.Gauge(MetricServeQueueDepth, "campaigns waiting in the scheduler queue"))
	ServeRunning.p.Store(r.Gauge(MetricServeRunning, "campaigns executing right now"))
	routes := make(map[string]*Histogram, len(serveRouteValues))
	for _, v := range serveRouteValues {
		routes[v] = r.Histogram(Labeled(MetricServeHTTPSeconds, LabelRoute, v), "HTTP request duration (seconds), by route", LatencyBuckets)
	}
	ServeHTTPSeconds.p.Store(&routes)
}

// unbindHandles reverts every handle to a no-op. Called under global.mu.
func unbindHandles() {
	for _, c := range []*CounterHandle{
		&LoopIterations, &CampaignViolations,
		&GPRebuilds, &GPExtends,
		&CacheHits, &CacheRebuilds, &CacheInvalidations, &CacheExtends,
		&PoolShardsScored, &PoolShardsPruned,
		&MatDispatch, &MatInline,
		&FaultAttempts, &FaultRetries, &FaultSuccess, &FaultCensored, &FaultFatal,
		&CheckpointWrites, &CheckpointRestores,
		&RemoteJobsDispatched, &RemoteJobsCompleted, &RemoteJobsStolen, &RemoteJobsLost,
		&ServeSubmitted, &ServeResumed,
	} {
		c.p.Store(nil)
	}
	for _, g := range []*GaugeHandle{
		&CampaignCumCost, &CampaignCumRegret, &CampaignHeadroom,
		&PoolSize, &PoolStreamLive, &PoolShardsInflight, &GPTrainRows, &MatWorkers,
		&RemoteWorkersLive, &ServeQueueDepth, &ServeRunning, &FidelityLevels,
	} {
		g.p.Store(nil)
	}
	for _, h := range []*HistogramHandle{&JobCost, &JobMem, &FaultBackoff, &RemoteHeartbeat} {
		h.p.Store(nil)
	}
	for _, sp := range []*SpanHandle{
		&SpanFit, &SpanHyperopt, &SpanScore, &SpanSelect, &SpanRun, &SpanFeed,
		&SpanCheckpointWrite, &SpanCheckpointRestore, &SpanShardScore,
	} {
		sp.hist.Store(nil)
	}
	FaultByClass.p.Store(nil)
	ModelCacheOps.p.Store(nil)
	FidelitySelections.p.Store(nil)
	ServeRejected.p.Store(nil)
	ServeFinished.p.Store(nil)
	ServeHTTPSeconds.p.Store(nil)
}
