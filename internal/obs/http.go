package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// Server exposes a registry over HTTP:
//
//	/metrics        Prometheus text exposition format
//	/metrics.json   indented JSON snapshot
//	/debug/pprof/   the standard net/http/pprof profile endpoints
//
// It listens on its own mux (net/http/pprof's init only touches
// http.DefaultServeMux, so the profile handlers are registered explicitly).
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// NewServer starts serving reg on addr (e.g. ":9090", or ":0" to pick a
// free port — see Addr). It returns once the listener is bound; requests
// are served on a background goroutine.
func NewServer(reg *Registry, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{reg: reg, ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Bundle is the process-level observability kit Boot assembles for the
// campaign binaries: a registry (bound as the global sink), an optional
// HTTP server, and an optional JSONL tracer.
type Bundle struct {
	Registry *Registry
	Tracer   *Tracer
	Server   *Server
	traceF   *os.File
}

// Boot wires observability for a campaign binary from its flag values:
// metricsAddr ("" = no HTTP server) and tracePath ("" = no trace file).
// If either is set, a registry is created, bound globally via Enable, and
// — when metricsAddr is non-empty — served over HTTP. The caller must
// defer Close. When both are empty Boot returns (nil, nil) and the
// process stays on the zero-overhead no-op path.
func Boot(metricsAddr, tracePath string) (*Bundle, error) {
	if metricsAddr == "" && tracePath == "" {
		return nil, nil
	}
	b := &Bundle{Registry: NewRegistry()}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: create trace file: %w", err)
		}
		b.traceF = f
		b.Tracer = NewTracer(TracerConfig{Out: f})
	}
	if metricsAddr != "" {
		srv, err := NewServer(b.Registry, metricsAddr)
		if err != nil {
			if b.traceF != nil {
				b.traceF.Close()
			}
			return nil, err
		}
		b.Server = srv
		fmt.Fprintf(os.Stderr, "obs: serving /metrics and /debug/pprof on http://%s\n", srv.Addr())
	}
	Enable(b.Registry, b.Tracer)
	return b, nil
}

// Close disables the global sink, flushes the trace stream, and stops the
// HTTP server. Safe on a nil *Bundle (the disabled case), so callers can
// unconditionally `defer b.Close()`.
func (b *Bundle) Close() error {
	if b == nil {
		return nil
	}
	Disable()
	var firstErr error
	if b.Tracer != nil {
		if err := b.Tracer.Flush(); err != nil {
			firstErr = err
		}
	}
	if b.traceF != nil {
		if err := b.traceF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if b.Server != nil {
		if err := b.Server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
