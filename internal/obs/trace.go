package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one completed span. Seq is a per-tracer monotone sequence
// number; StartUnixNS/DurNS carry wall time and are the ONLY fields whose
// values depend on the clock — a Deterministic tracer zeroes them so trace
// output is byte-for-byte reproducible across runs.
type Event struct {
	Seq         uint64 `json:"seq"`
	Name        string `json:"name"`
	StartUnixNS int64  `json:"start_unix_ns,omitempty"`
	DurNS       int64  `json:"dur_ns,omitempty"`
	Detail      string `json:"detail,omitempty"`
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// RingSize bounds the in-memory event buffer (default 4096). When
	// full, the oldest events are overwritten.
	RingSize int
	// Out, if non-nil, receives every event as one JSON line. Writes are
	// buffered; call Flush (or Close on the owning process) before
	// reading the stream.
	Out io.Writer
	// Deterministic zeroes the wall-clock fields (StartUnixNS, DurNS) so
	// the JSONL stream depends only on the sequence of instrumented
	// operations, not on timing.
	Deterministic bool
}

// Tracer collects span events into a bounded ring buffer and optionally
// streams them as JSONL. It never feeds back into the traced computation:
// emitting is fire-and-forget, and a nil *Tracer is a valid no-op sink.
type Tracer struct {
	mu     sync.Mutex
	cfg    TracerConfig
	ring   []Event
	seq    uint64
	w      *bufio.Writer
	outErr error
}

// NewTracer creates a tracer with the given config.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	t := &Tracer{cfg: cfg, ring: make([]Event, 0, cfg.RingSize)}
	if cfg.Out != nil {
		t.w = bufio.NewWriter(cfg.Out)
	}
	return t
}

// emit records one completed span.
func (t *Tracer) emit(name string, start time.Time, dur time.Duration, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := Event{Seq: t.seq, Name: name, Detail: detail}
	if !t.cfg.Deterministic {
		ev.StartUnixNS = start.UnixNano()
		ev.DurNS = int64(dur)
	}
	if len(t.ring) < t.cfg.RingSize {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[int((t.seq-1)%uint64(t.cfg.RingSize))] = ev
	}
	if t.w != nil && t.outErr == nil {
		b, err := json.Marshal(ev)
		if err == nil {
			_, err = t.w.Write(append(b, '\n'))
		}
		if err != nil {
			t.outErr = err
		}
	}
}

// Events returns a copy of the buffered events in emission order (oldest
// first; the ring may have dropped early events).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.seq <= uint64(t.cfg.RingSize) {
		out = append(out, t.ring...)
		return out
	}
	// Ring wrapped: oldest entry sits just after the newest.
	head := int(t.seq % uint64(t.cfg.RingSize))
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}

// Len reports the total number of events emitted (including any the ring
// has since dropped).
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Flush drains the buffered JSONL writer and reports any write error
// encountered so far.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w != nil {
		if err := t.w.Flush(); err != nil && t.outErr == nil {
			t.outErr = err
		}
	}
	if t.outErr != nil {
		return fmt.Errorf("obs: trace output: %w", t.outErr)
	}
	return nil
}
