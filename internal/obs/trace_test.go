package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRingAndOrder(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 4, Deterministic: true})
	for i := 0; i < 6; i++ {
		tr.emit("ev", time.Now(), time.Millisecond, "")
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	// Oldest-first: events 3..6 survive.
	for i, ev := range evs {
		if ev.Seq != uint64(i+3) {
			t.Fatalf("evs[%d].Seq = %d, want %d (all: %+v)", i, ev.Seq, i+3, evs)
		}
	}
}

func TestTracerDeterministicZeroesClock(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(TracerConfig{Out: &sb, Deterministic: true})
	tr.emit(PhaseScore, time.Now(), 5*time.Second, "iter=1")
	tr.emit(PhaseSelect, time.Now(), time.Second, "")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if ev.StartUnixNS != 0 || ev.DurNS != 0 {
			t.Fatalf("deterministic tracer leaked wall time: %+v", ev)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("wrote %d JSONL lines, want 2", n)
	}
	if !strings.Contains(sb.String(), `"detail":"iter=1"`) {
		t.Fatalf("detail missing from JSONL: %s", sb.String())
	}
}

func TestTracerWallClockMode(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	start := time.Now()
	tr.emit(PhaseRun, start, 2*time.Millisecond, "")
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].StartUnixNS != start.UnixNano() || evs[0].DurNS != int64(2*time.Millisecond) {
		t.Fatalf("wall-clock fields wrong: %+v", evs[0])
	}
}

func TestSpanEmitsTraceEvent(t *testing.T) {
	defer Disable()
	tr := NewTracer(TracerConfig{Deterministic: true})
	Enable(NewRegistry(), tr)
	SpanFeed.Start().EndDetail("job=42")
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != PhaseFeed || evs[0].Detail != "job=42" {
		t.Fatalf("span trace event wrong: %+v", evs)
	}
}
