package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE block per metric family, in
// sorted name order, histograms as cumulative le-bucket series plus _sum
// and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	counters, gauges, histograms := r.sorted()
	// Same-family labeled series are adjacent in sorted order, so
	// remembering the previous family name is enough to emit each
	// HELP/TYPE header exactly once.
	prevFamily := ""
	writeHeader := func(base, help, typ string) error {
		if base == prevFamily {
			return nil
		}
		prevFamily = base
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, help); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
		return err
	}
	for _, c := range counters {
		base, labels := splitLabels(c.name)
		if err := writeHeader(base, c.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", base, labels, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		base, labels := splitLabels(g.name)
		if err := writeHeader(base, g.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatFloat(g.Value())); err != nil {
			return err
		}
	}
	for _, h := range histograms {
		base, labels := splitLabels(h.name)
		if err := writeHeader(base, h.help, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		counts := h.bucketCounts()
		for i, ub := range h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				base, withLabel(labels, "le", formatFloat(ub)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabel(labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(h.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// splitLabels splits `name{label="v"}` into ("name", `{label="v"}`);
// unlabeled names return ("name", "").
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// withLabel merges an extra label pair into an existing (possibly empty)
// label block: withLabel(`{phase="fit"}`, "le", "0.5") →
// `{phase="fit",le="0.5"}`.
func withLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is a point-in-time JSON-friendly dump of a registry, used by
// the /metrics.json endpoint and report.ObsSummary.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot captures one histogram's state.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // non-cumulative; last is +Inf
}

// TakeSnapshot captures the registry's current state.
func (r *Registry) TakeSnapshot() Snapshot {
	counters, gauges, histograms := r.sorted()
	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range histograms {
		s.Histograms[h.name] = HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Bounds:  h.Bounds(),
			Buckets: h.bucketCounts(),
		}
	}
	return s
}

// WriteJSON renders TakeSnapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}
