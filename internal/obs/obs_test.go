package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("counter registration not idempotent")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("hist count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("hist sum = %g, want 106", got)
	}
	// Bounds are inclusive: 0.5 and 1 land in le=1; 1.5 in le=2; 3 in
	// le=4; 100 overflows to +Inf.
	want := []int64{2, 1, 1, 1}
	for i, n := range h.bucketCounts() {
		if n != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, n, want[i], h.bucketCounts())
		}
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	_ = c.Value()
	_ = g.Value()
	_ = h.Count()
	_ = tr.Events()
	_ = tr.Len()
	_ = tr.Flush()
}

func TestHandlesDisabledAndEnabled(t *testing.T) {
	Disable()
	defer Disable()

	// Disabled: every handle call is a no-op, spans never read the clock.
	CacheHits.Inc()
	CampaignCumCost.Set(3)
	JobCost.Observe(1)
	FaultByClass.Inc("oom")
	sp := SpanScore.Start()
	if sp.hist != nil {
		t.Fatal("disabled SpanHandle.Start returned a live span")
	}
	sp.End()
	if Enabled() {
		t.Fatal("Enabled() true while disabled")
	}

	r := NewRegistry()
	Enable(r, nil)
	if !Enabled() || Default() != r {
		t.Fatal("Enable did not bind the registry")
	}
	CacheHits.Inc()
	CacheHits.Inc()
	CampaignCumCost.Set(7.25)
	FaultByClass.Inc("oom")
	FaultByClass.Inc("nonsense-class") // unknown values are dropped
	SpanScore.Start().End()

	if v, ok := r.CounterValue(MetricCacheHits); !ok || v != 2 {
		t.Fatalf("cache hits = %d (ok=%v), want 2", v, ok)
	}
	if v, ok := r.GaugeValue(MetricCampaignCumCost); !ok || v != 7.25 {
		t.Fatalf("cum cost = %g (ok=%v), want 7.25", v, ok)
	}
	if v, ok := r.CounterValue(Labeled(MetricFaultByClass, "class", "oom")); !ok || v != 1 {
		t.Fatalf("oom class = %d (ok=%v), want 1", v, ok)
	}

	Disable()
	CacheHits.Inc() // must not land anywhere
	if v, _ := r.CounterValue(MetricCacheHits); v != 2 {
		t.Fatalf("counter advanced after Disable: %d", v)
	}
}

func TestEnableDisableConcurrentWithInstrumentation(t *testing.T) {
	defer Disable()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			CacheHits.Inc()
			SpanScore.Start().End()
			FaultByClass.Inc("transient")
			CampaignHeadroom.Set(1)
		}
	}()
	for i := 0; i < 50; i++ {
		Enable(NewRegistry(), NewTracer(TracerConfig{Deterministic: true}))
		Disable()
	}
	close(stop)
	wg.Wait()
}

func TestMetricNamesUnique(t *testing.T) {
	seen := make(map[string]bool, len(AllMetricNames))
	for _, name := range AllMetricNames {
		if seen[name] {
			t.Errorf("duplicate metric name: %s", name)
		}
		seen[name] = true
		base, _ := splitLabels(name)
		if !strings.HasPrefix(base, "alamr_") {
			t.Errorf("metric %s missing alamr_ prefix", name)
		}
	}
}

// TestAllMetricNamesBound checks that Enable registers exactly the series
// promised by AllMetricNames — the declared contract and the live registry
// cannot drift apart.
func TestAllMetricNamesBound(t *testing.T) {
	defer Disable()
	r := NewRegistry()
	Enable(r, nil)
	counters, gauges, histograms := r.sorted()
	live := make(map[string]bool)
	for _, c := range counters {
		live[c.name] = true
	}
	for _, g := range gauges {
		live[g.name] = true
	}
	for _, h := range histograms {
		live[h.name] = true
	}
	for _, name := range AllMetricNames {
		if !live[name] {
			t.Errorf("declared metric %s not registered by Enable", name)
		}
		delete(live, name)
	}
	for name := range live {
		t.Errorf("registered metric %s not declared in AllMetricNames", name)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("alamr_x_total", "things").Add(3)
	r.Gauge("alamr_y", "level").Set(1.5)
	h := r.Histogram(`alamr_z_seconds{phase="fit"}`, "timings", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP alamr_x_total things",
		"# TYPE alamr_x_total counter",
		"alamr_x_total 3",
		"# TYPE alamr_y gauge",
		"alamr_y 1.5",
		"# TYPE alamr_z_seconds histogram",
		`alamr_z_seconds_bucket{phase="fit",le="1"} 1`,
		`alamr_z_seconds_bucket{phase="fit",le="2"} 1`,
		`alamr_z_seconds_bucket{phase="fit",le="+Inf"} 2`,
		`alamr_z_seconds_sum{phase="fit"} 3.5`,
		`alamr_z_seconds_count{phase="fit"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestHeaderEmittedOncePerFamily(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Labeled(MetricLoopPhaseSeconds, "phase", "fit"), "phases", []float64{1})
	r.Histogram(Labeled(MetricLoopPhaseSeconds, "phase", "score"), "phases", []float64{1})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE "+MetricLoopPhaseSeconds); n != 1 {
		t.Fatalf("TYPE header for shared family emitted %d times, want 1\n%s", n, sb.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("alamr_a_total", "").Inc()
	r.Gauge("alamr_b", "").Set(9)
	r.Histogram("alamr_c", "", []float64{1}).Observe(0.5)
	s := r.TakeSnapshot()
	if s.Counters["alamr_a_total"] != 1 || s.Gauges["alamr_b"] != 9 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	hs := s.Histograms["alamr_c"]
	if hs.Count != 1 || hs.Sum != 0.5 || len(hs.Buckets) != 2 {
		t.Fatalf("bad histogram snapshot: %+v", hs)
	}
}
