package obs

// Metric names. Every exported instrument in the process is declared here
// (and documented in DESIGN.md §Observability); TestMetricNamesUnique lints
// the list for duplicates so two subsystems cannot silently share a series.
//
// Naming follows Prometheus conventions: `alamr_` prefix, `_total` suffix
// for counters, base units in the name (`_seconds`, `_nh` node-hours,
// `_mb` megabytes). Labels are embedded in the full series name
// (`name{label="value"}`) and split back out by the exporter.
const (
	// AL loop / campaign.
	MetricLoopIterations     = "alamr_loop_iterations_total"
	MetricLoopPhaseSeconds   = "alamr_loop_phase_seconds" // label: phase
	MetricCampaignViolations = "alamr_campaign_violations_total"
	MetricCampaignCumCost    = "alamr_campaign_cum_cost_nh"
	MetricCampaignCumRegret  = "alamr_campaign_cum_regret_nh"
	MetricCampaignHeadroom   = "alamr_campaign_mem_headroom_mb"
	MetricPoolSize           = "alamr_pool_size"
	MetricJobCost            = "alamr_job_cost_nh"
	MetricJobMem             = "alamr_job_mem_mb"

	// Multi-fidelity campaigns: the ladder size of the running campaign and
	// the selection count per ladder rung (label: level, the ladder index
	// "0".."3" — the maxlevel grid bounds the ladder at four rungs).
	MetricFidelityLevels     = "alamr_fidelity_levels"
	MetricFidelitySelections = "alamr_fidelity_selections_total" // label: level

	// GP internals.
	MetricGPRebuilds  = "alamr_gp_rebuild_total"
	MetricGPExtends   = "alamr_gp_extend_total"
	MetricGPTrainRows = "alamr_gp_train_rows"

	// ScoringCache.
	MetricCacheHits          = "alamr_cache_hits_total"
	MetricCacheRebuilds      = "alamr_cache_rebuilds_total"
	MetricCacheInvalidations = "alamr_cache_invalidations_total"
	MetricCacheExtends       = "alamr_cache_extends_total"

	// Streamed candidate pool (engine.StreamState). Shard scoring is
	// parallel: the in-flight gauge tracks shards being scored at this
	// instant, the histogram times individual shard-scoring spans, and —
	// like the sweep series below — per-worker scored counts additionally
	// appear as dynamically-created `{worker="..."}` series of
	// MetricPoolWorkerShards (absent from AllMetricNames: worker indices
	// are only known at run time).
	MetricPoolShardsScored   = "alamr_pool_shards_scored_total"
	MetricPoolShardsPruned   = "alamr_pool_shards_pruned_total"
	MetricPoolStreamLive     = "alamr_pool_stream_live"
	MetricPoolShardsInflight = "alamr_pool_shards_inflight"
	MetricPoolShardScoreSecs = "alamr_pool_shard_score_seconds"
	MetricPoolWorkerShards   = "alamr_pool_worker_shards_total" // label: worker

	// Per-model incremental scoring caches (sparse/treed analogues of
	// ScoringCache). One labeled series per (model, operation) pair.
	MetricModelCacheOps = "alamr_model_cache_ops_total" // label: kind

	// mat worker pool.
	MetricMatDispatch = "alamr_mat_dispatch_total"
	MetricMatInline   = "alamr_mat_inline_total"
	MetricMatWorkers  = "alamr_mat_workers"

	// Faults runtime.
	MetricFaultAttempts       = "alamr_faults_attempts_total"
	MetricFaultRetries        = "alamr_faults_retries_total"
	MetricFaultSuccesses      = "alamr_faults_successes_total"
	MetricFaultCensored       = "alamr_faults_censored_total"
	MetricFaultFatal          = "alamr_faults_fatal_total"
	MetricFaultByClass        = "alamr_faults_by_class_total" // label: class
	MetricFaultBackoffSeconds = "alamr_faults_backoff_seconds"

	// Checkpointing.
	MetricCheckpointWrites         = "alamr_checkpoint_writes_total"
	MetricCheckpointRestores       = "alamr_checkpoint_restores_total"
	MetricCheckpointWriteSeconds   = "alamr_checkpoint_write_seconds"
	MetricCheckpointRestoreSeconds = "alamr_checkpoint_restore_seconds"

	// Remote lab (internal/remotelab dispatcher). The aggregate series
	// below are static; per-worker breakdowns additionally appear as
	// dynamically-created `{worker="..."}` series (see the sweep note
	// below for why those are absent from AllMetricNames).
	MetricRemoteJobsDispatched = "alamr_remote_jobs_dispatched_total"
	MetricRemoteJobsCompleted  = "alamr_remote_jobs_completed_total"
	MetricRemoteJobsStolen     = "alamr_remote_jobs_stolen_total"
	MetricRemoteJobsLost       = "alamr_remote_jobs_lost_total"
	MetricRemoteWorkersLive    = "alamr_remote_workers_live"
	MetricRemoteHeartbeat      = "alamr_remote_heartbeat_seconds"

	// Serving daemon (internal/serve). Aggregate series for the scheduler
	// and HTTP front end; per-campaign progress additionally appears as the
	// dynamically-labeled sweep series below (the daemon attaches an
	// engine.CampaignObs scope per campaign).
	MetricServeSubmitted   = "alamr_serve_submitted_total"
	MetricServeRejected    = "alamr_serve_rejected_total" // label: reason
	MetricServeFinished    = "alamr_serve_finished_total" // label: state
	MetricServeResumed     = "alamr_serve_resumed_total"
	MetricServeQueueDepth  = "alamr_serve_queue_depth"
	MetricServeRunning     = "alamr_serve_running"
	MetricServeHTTPSeconds = "alamr_serve_http_seconds" // label: route

	// Per-campaign sweep series. These are labeled with the campaign id
	// (`{campaign="..."}`), whose values are only known at sweep time, so —
	// unlike every other name here — their labeled series are created
	// dynamically and are deliberately absent from AllMetricNames (the
	// bound-names lint runs against the statically declarable set).
	MetricSweepIterations = "alamr_sweep_campaign_iterations_total"
	MetricSweepViolations = "alamr_sweep_campaign_violations_total"
	MetricSweepCumCost    = "alamr_sweep_campaign_cum_cost_nh"
	MetricSweepCumRegret  = "alamr_sweep_campaign_cum_regret_nh"
)

// LabelCampaign is the label key of the per-campaign sweep series.
const LabelCampaign = "campaign"

// LabelWorker is the label key of the per-worker remote-lab series.
const LabelWorker = "worker"

// Label keys of the serving-daemon series.
const (
	LabelReason = "reason"
	LabelState  = "state"
	LabelRoute  = "route"
)

// Label values of MetricServeRejected: why a submission was turned away.
const (
	ServeRejectBackpressure = "backpressure"
	ServeRejectInvalid      = "invalid"
)

// Label values of MetricServeFinished: the terminal campaign states.
const (
	ServeStateDone      = "done"
	ServeStateFailed    = "failed"
	ServeStateCancelled = "cancelled"
)

// Label values of MetricServeHTTPSeconds: the daemon's route families.
const (
	ServeRouteSubmit = "submit"
	ServeRouteGet    = "get"
	ServeRouteStatus = "status"
	ServeRouteCancel = "cancel"
	ServeRouteList   = "list"
)

// Label values of MetricModelCacheOps: which model family's incremental
// scoring cache performed which maintenance operation.
const (
	ModelCacheSparseExtend  = "sparse-extend"
	ModelCacheSparseRebuild = "sparse-rebuild"
	ModelCacheTreedExtend   = "treed-extend"
	ModelCacheTreedRebuild  = "treed-rebuild"
)

// LabelLevel is the label key of the per-rung fidelity series.
const LabelLevel = "level"

// FidelityLevelValues enumerates the label values of
// MetricFidelitySelections: ladder indices, bounded by the maxlevel grid.
var FidelityLevelValues = []string{"0", "1", "2", "3"}

// Phase labels used with MetricLoopPhaseSeconds and trace span names.
const (
	PhaseFit      = "fit"
	PhaseHyperopt = "hyperopt"
	PhaseScore    = "score"
	PhaseSelect   = "select"
	PhaseRun      = "run"
	PhaseFeed     = "feed"
)

// AllMetricNames lists every metric series this process can emit, with
// labeled series spelled out per label value. The duplicate lint and the
// DESIGN.md coverage test iterate over it.
var AllMetricNames = []string{
	MetricLoopIterations,
	Labeled(MetricLoopPhaseSeconds, "phase", PhaseFit),
	Labeled(MetricLoopPhaseSeconds, "phase", PhaseHyperopt),
	Labeled(MetricLoopPhaseSeconds, "phase", PhaseScore),
	Labeled(MetricLoopPhaseSeconds, "phase", PhaseSelect),
	Labeled(MetricLoopPhaseSeconds, "phase", PhaseRun),
	Labeled(MetricLoopPhaseSeconds, "phase", PhaseFeed),
	MetricCampaignViolations,
	MetricCampaignCumCost,
	MetricCampaignCumRegret,
	MetricCampaignHeadroom,
	MetricPoolSize,
	MetricJobCost,
	MetricJobMem,
	MetricFidelityLevels,
	Labeled(MetricFidelitySelections, LabelLevel, "0"),
	Labeled(MetricFidelitySelections, LabelLevel, "1"),
	Labeled(MetricFidelitySelections, LabelLevel, "2"),
	Labeled(MetricFidelitySelections, LabelLevel, "3"),
	MetricGPRebuilds,
	MetricGPExtends,
	MetricGPTrainRows,
	MetricCacheHits,
	MetricCacheRebuilds,
	MetricCacheInvalidations,
	MetricCacheExtends,
	MetricPoolShardsScored,
	MetricPoolShardsPruned,
	MetricPoolStreamLive,
	MetricPoolShardsInflight,
	MetricPoolShardScoreSecs,
	Labeled(MetricModelCacheOps, "kind", ModelCacheSparseExtend),
	Labeled(MetricModelCacheOps, "kind", ModelCacheSparseRebuild),
	Labeled(MetricModelCacheOps, "kind", ModelCacheTreedExtend),
	Labeled(MetricModelCacheOps, "kind", ModelCacheTreedRebuild),
	MetricMatDispatch,
	MetricMatInline,
	MetricMatWorkers,
	MetricFaultAttempts,
	MetricFaultRetries,
	MetricFaultSuccesses,
	MetricFaultCensored,
	MetricFaultFatal,
	Labeled(MetricFaultByClass, "class", "oom"),
	Labeled(MetricFaultByClass, "class", "timeout"),
	Labeled(MetricFaultByClass, "class", "transient"),
	Labeled(MetricFaultByClass, "class", "corrupt"),
	Labeled(MetricFaultByClass, "class", "unknown"),
	MetricFaultBackoffSeconds,
	MetricCheckpointWrites,
	MetricCheckpointRestores,
	MetricCheckpointWriteSeconds,
	MetricCheckpointRestoreSeconds,
	MetricRemoteJobsDispatched,
	MetricRemoteJobsCompleted,
	MetricRemoteJobsStolen,
	MetricRemoteJobsLost,
	MetricRemoteWorkersLive,
	MetricRemoteHeartbeat,
	MetricServeSubmitted,
	Labeled(MetricServeRejected, LabelReason, ServeRejectBackpressure),
	Labeled(MetricServeRejected, LabelReason, ServeRejectInvalid),
	Labeled(MetricServeFinished, LabelState, ServeStateDone),
	Labeled(MetricServeFinished, LabelState, ServeStateFailed),
	Labeled(MetricServeFinished, LabelState, ServeStateCancelled),
	MetricServeResumed,
	MetricServeQueueDepth,
	MetricServeRunning,
	Labeled(MetricServeHTTPSeconds, LabelRoute, ServeRouteSubmit),
	Labeled(MetricServeHTTPSeconds, LabelRoute, ServeRouteGet),
	Labeled(MetricServeHTTPSeconds, LabelRoute, ServeRouteStatus),
	Labeled(MetricServeHTTPSeconds, LabelRoute, ServeRouteCancel),
	Labeled(MetricServeHTTPSeconds, LabelRoute, ServeRouteList),
}

// Labeled builds the full series name for a single-label metric:
// Labeled("alamr_faults_by_class_total", "class", "oom") →
// `alamr_faults_by_class_total{class="oom"}`.
func Labeled(name, label, value string) string {
	return name + `{` + label + `="` + value + `"}`
}
