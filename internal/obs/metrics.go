package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metrics. All instruments are idempotently
// created by name: the first Counter/Gauge/Histogram call for a name
// creates the instrument, later calls return the same one (a histogram
// re-request ignores the bucket argument). Names follow the Prometheus
// convention; labels are carried inside the name, e.g.
// `alamr_loop_phase_seconds{phase="score"}` — the exporter splits them back
// out. All methods are safe for concurrent use; instrument updates are
// lock-free atomics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the histogram with the given name.
// buckets are the inclusive upper bounds of the fixed bucket layout, in
// strictly ascending order; an implicit +Inf bucket is always appended.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending: %v", name, buckets))
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), buckets...),
		buckets: make([]atomic.Int64, len(buckets)+1),
	}
	r.histograms[name] = h
	return h
}

// CounterValue reports the current value of a counter, or (0, false) if no
// counter with that name exists. Intended for tests and report tables.
func (r *Registry) CounterValue(name string) (int64, bool) {
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return c.Value(), true
}

// GaugeValue reports the current value of a gauge, or (0, false).
func (r *Registry) GaugeValue(name string) (float64, bool) {
	r.mu.Lock()
	g, ok := r.gauges[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return g.Value(), true
}

// sortedNames returns the registry's instrument names in one sorted list
// per kind, for stable export order.
func (r *Registry) sorted() (counters []*Counter, gauges []*Gauge, histograms []*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(histograms, func(i, j int) bool { return histograms[i].name < histograms[j].name })
	return counters, gauges, histograms
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a float64 metric that can go up and down. Stored as IEEE-754
// bits in an atomic word.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram counts observations into a fixed set of buckets (cumulative
// export à la Prometheus) and tracks the observation sum and count.
type Histogram struct {
	name, help string
	bounds     []float64      // inclusive upper bounds, ascending
	buckets    []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// bucketCounts returns the non-cumulative per-bucket counts (last = +Inf).
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Fixed bucket layouts (documented in DESIGN.md §Observability). Layouts
// are part of the metric contract: dashboards and the exporter rely on
// them, so change them only with a docs update.
var (
	// LatencyBuckets covers phase/checkpoint timings: 10 µs .. 30 s.
	LatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30}
	// BackoffBuckets covers retry backoff waits in seconds.
	BackoffBuckets = []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128}
	// CostBuckets covers per-job cost in node-hours (the paper's Table I
	// spans ~2.5e-3 .. 12 NH).
	CostBuckets = []float64{0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50}
	// SizeBuckets covers per-job memory in MB.
	SizeBuckets = []float64{0.01, 0.1, 0.5, 1, 5, 10, 50, 100, 1000}
)
