package remotelab

import (
	"time"

	"alamr/internal/engine"
)

// init registers the dispatcher in the engine lab registry, so a campaign
// spec targets a worker fleet with `"lab": {"name": "remote", ...}` and
// nothing else changes. Building the lab blocks until min_workers have
// connected (bounded by wait_sec), because a campaign that starts selecting
// before the fleet exists would just burn its retry budget.
func init() {
	engine.RegisterLab("remote", func(s engine.LabSpec, _ engine.LabDeps) (engine.Lab, error) {
		return NewDispatcher(Config{
			Listen:     s.Listen,
			Seed:       s.Seed,
			MinWorkers: s.MinWorkers,
			Heartbeat:  time.Duration(s.HeartbeatSec * float64(time.Second)),
			Wait:       time.Duration(s.WaitSec * float64(time.Second)),
			RSSLimitMB: s.RSSLimitMB,
		})
	})
}
