// Package remotelab runs lab workers as separate processes behind the
// engine.Lab seam: a dispatcher listens on TCP, al-worker processes connect
// and execute jobs, and every way a worker can fail — connection reset,
// heartbeat silence, an OOM kill it managed to report, a frame that breaks
// the protocol — is classified onto the faults taxonomy the campaign
// runtime already understands. The paper ran on a real batch system (Edison
// + SLURM) where exactly these failures happened; internal/faults simulates
// them, this package makes them real.
//
// Determinism across failures is the load-bearing property: the dispatcher
// assigns each logical job a run index that seeds the worker's measurement
// noise, and journals the assignment until the job completes. A retry after
// a lost worker re-dispatches the same (combo, seed) pair — to any worker —
// and produces the identical measurement, so a campaign whose fleet lost a
// worker mid-batch ends on the same trajectory as one that never did. The
// journal rides inside the campaign checkpoint via faults.Resumable, which
// extends the guarantee across a killed campaign process.
package remotelab

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"

	"alamr/internal/dataset"
)

// protocolVersion gates the wire schema; a worker and dispatcher must agree
// exactly (there is no negotiation — fleets deploy from one binary).
const protocolVersion = 1

// maxFrame bounds a single frame so a corrupt or hostile length prefix
// cannot make the reader allocate unbounded memory.
const maxFrame = 1 << 20

// Message types.
const (
	// msgHello is the worker's first frame: its name and protocol version.
	msgHello = "hello"
	// msgJob is a dispatcher→worker assignment: combo + noise seed.
	msgJob = "job"
	// msgHeartbeat is a worker→dispatcher liveness frame carrying how many
	// node-hours of the in-flight job have been consumed so far — the
	// partial cost charged if the worker vanishes.
	msgHeartbeat = "heartbeat"
	// msgResult terminates an assignment: a clean job, an OOM report, or an
	// executor error.
	msgResult = "result"
)

// message is the single wire envelope. Exactly one of the payload groups is
// populated per type; unknown fields are a protocol violation (the decoder
// is strict so schema drift fails loudly).
type message struct {
	Type    string `json:"type"`
	Version int    `json:"version,omitempty"` // hello
	Worker  string `json:"worker,omitempty"`  // hello
	// ID matches a result/heartbeat to its assignment; the dispatcher
	// rejects frames for an assignment that is not in flight.
	ID    uint64         `json:"id,omitempty"`
	Combo *dataset.Combo `json:"combo,omitempty"` // job
	Seed  int64          `json:"seed,omitempty"`  // job: noise seed
	// Fidelity rides on job frames of multi-fidelity campaigns: the combo's
	// ladder index (0 = cheapest rung), so a heterogeneous fleet can route or
	// provision per rung without re-deriving the ladder worker-side. Absent
	// (0) on single-fidelity campaigns — their frames are byte-identical to
	// the pre-fidelity protocol.
	Fidelity int `json:"fidelity,omitempty"`
	// RSSLimitMB rides on job frames so the whole fleet enforces the
	// dispatcher's memory limit without per-worker configuration.
	RSSLimitMB float64 `json:"rss_limit_mb,omitempty"`
	// Result payload: the measured job, or a partial one when OOM is set.
	Job *dataset.Job `json:"job,omitempty"`
	// OOM marks a result as an OOM kill the worker itself observed and
	// reported: Job carries the censored observation (MemMB = limit).
	OOM bool `json:"oom,omitempty"`
	// Error carries an executor failure (the remote analogue of a lab
	// returning an error).
	Error string `json:"error,omitempty"`
	// ProgressNH is the heartbeat's consumed-so-far node-hours.
	ProgressNH float64 `json:"progress_nh,omitempty"`
}

// writeFrame sends one length-prefixed JSON frame.
func writeFrame(conn net.Conn, m message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("remotelab: encoding %s frame: %w", m.Type, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("remotelab: %s frame of %d bytes exceeds the %d-byte limit", m.Type, len(body), maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = conn.Write(buf)
	return err
}

// errProtocol marks a frame that violates the wire contract — garbage where
// a length or JSON envelope should be. The dispatcher maps it to a Fatal
// fault: a peer speaking a different protocol is not a transient condition.
type errProtocol struct{ err error }

func (e *errProtocol) Error() string { return "remotelab: protocol violation: " + e.err.Error() }
func (e *errProtocol) Unwrap() error { return e.err }

// readFrame reads one length-prefixed JSON frame. I/O failures (reset,
// timeout, EOF) come back as-is; undecodable payloads come back as
// *errProtocol so the caller can tell a dead peer from a misbehaving one.
func readFrame(conn net.Conn) (message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return message{}, &errProtocol{fmt.Errorf("frame length %d outside (0, %d]", n, maxFrame)}
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return message{}, err
	}
	var m message
	if err := json.Unmarshal(body, &m); err != nil {
		return message{}, &errProtocol{fmt.Errorf("undecodable frame: %w", err)}
	}
	if m.Type == "" {
		return message{}, &errProtocol{fmt.Errorf("frame carries no type")}
	}
	return m, nil
}
