package remotelab

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/faults"
	"alamr/internal/obs"
	"alamr/internal/stats"
)

// Config configures the dispatcher side of a worker fleet.
type Config struct {
	// Listen is the TCP address workers connect to; "127.0.0.1:0" picks a
	// free port (read it back from Addr).
	Listen string
	// Seed is the base of the per-run noise-seed stream: the job holding
	// run index r executes under stats.SplitSeed(Seed, r) on whichever
	// worker it lands.
	Seed int64
	// MinWorkers blocks NewDispatcher until that many workers have
	// connected (0 = do not wait), so a campaign cannot start selecting
	// against an empty fleet.
	MinWorkers int
	// Heartbeat is the per-worker silence deadline: a worker that sends no
	// frame (result or heartbeat) for this long is declared lost and its
	// in-flight job reassigned. Default 5s.
	Heartbeat time.Duration
	// Wait bounds how long one dispatch waits for an idle live worker (and
	// how long NewDispatcher waits for MinWorkers). When it expires the
	// dispatch fails with a retryable fault, so a fully-dead fleet drains
	// the campaign's retry budget instead of hanging it. Default 30s.
	Wait time.Duration
	// RSSLimitMB is forwarded to workers on every job frame; a worker
	// whose measured MaxRSS reaches it reports an OOM kill (censored
	// observation) instead of a clean result. 0 disables enforcement.
	RSSLimitMB float64
	// Candidates is the dispatcher's candidate pool; nil means the paper's
	// full combination grid.
	Candidates []dataset.Combo
	// Fidelity declares the campaign's fidelity ladder: the candidate pool
	// restricts to the ladder's MaxLevel rungs and every job frame carries
	// the combo's ladder index (see message.Fidelity). Nil keeps the
	// single-fidelity wire format byte-identical.
	Fidelity *engine.FidelitySpec
}

func (c *Config) setDefaults() {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.Wait <= 0 {
		c.Wait = 30 * time.Second
	}
}

// assignmentEnd is how an in-flight dispatch terminates: a result frame
// from the worker, or the worker's loss.
type assignmentEnd struct {
	msg  message // valid when err == nil
	err  error   // loss cause: I/O error, or *errProtocol
	lost bool    // true when the worker vanished instead of answering
}

// workerObs is the per-worker labeled metric set, created dynamically at
// registration (like engine.CampaignObs — worker names are only known at
// connect time, so these series are absent from obs.AllMetricNames).
type workerObs struct {
	dispatched, completed, stolen, lost *obs.Counter
}

func newWorkerObs(name string) workerObs {
	r := obs.Default()
	if r == nil {
		return workerObs{}
	}
	return workerObs{
		dispatched: r.Counter(obs.Labeled(obs.MetricRemoteJobsDispatched, obs.LabelWorker, name), "jobs dispatched to this worker"),
		completed:  r.Counter(obs.Labeled(obs.MetricRemoteJobsCompleted, obs.LabelWorker, name), "jobs this worker completed"),
		stolen:     r.Counter(obs.Labeled(obs.MetricRemoteJobsStolen, obs.LabelWorker, name), "journaled jobs re-dispatched to this worker"),
		lost:       r.Counter(obs.Labeled(obs.MetricRemoteJobsLost, obs.LabelWorker, name), "jobs lost when this worker vanished"),
	}
}

// workerConn is the dispatcher's handle on one connected worker. The reader
// goroutine owns all reads; Run (via the dispatcher) owns all writes.
type workerConn struct {
	d    *Dispatcher
	name string
	conn net.Conn
	wobs workerObs

	mu        sync.Mutex
	alive     bool
	assignID  uint64
	delivered bool
	resultCh  chan assignmentEnd
	progress  float64 // node-hours reported consumed by the in-flight job
	nDone     int     // jobs completed (WorkerStatus)
}

// busy reports whether an assignment is in flight (under w.mu).
func (w *workerConn) busyLocked() bool { return w.assignID != 0 }

// begin opens an assignment window for frame id.
func (w *workerConn) begin(id uint64) <-chan assignmentEnd {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.assignID = id
	w.delivered = false
	w.progress = 0
	w.resultCh = make(chan assignmentEnd, 1)
	return w.resultCh
}

// deliver terminates the open assignment exactly once; frames or losses
// arriving outside an assignment window are dropped.
func (w *workerConn) deliver(end assignmentEnd) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.assignID == 0 || w.delivered {
		return
	}
	w.delivered = true
	w.resultCh <- end
}

// clear closes the assignment window and reports the last progress figure.
func (w *workerConn) clear() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.assignID = 0
	return w.progress
}

// fail marks the worker dead, unregisters it, and — if a job was in
// flight — terminates the assignment as lost.
func (w *workerConn) fail(err error) {
	w.mu.Lock()
	already := !w.alive
	w.alive = false
	w.mu.Unlock()
	if already {
		return
	}
	w.conn.Close()
	w.d.unregister(w)
	w.deliver(assignmentEnd{err: err, lost: true})
}

// readLoop owns the connection's read side: every frame re-arms the
// heartbeat deadline, so a worker that goes silent — SIGKILL with the
// socket held open by a NAT, a hung process, a dead machine — is detected
// within Heartbeat even when no TCP reset ever arrives.
func (w *workerConn) readLoop() {
	last := time.Now()
	for {
		w.conn.SetReadDeadline(time.Now().Add(w.d.cfg.Heartbeat))
		m, err := readFrame(w.conn)
		if err != nil {
			w.fail(err)
			return
		}
		now := time.Now()
		obs.RemoteHeartbeat.Observe(now.Sub(last).Seconds())
		last = now
		switch m.Type {
		case msgHeartbeat:
			w.mu.Lock()
			if m.ID == w.assignID {
				w.progress = m.ProgressNH
			}
			w.mu.Unlock()
		case msgResult:
			w.mu.Lock()
			ok := m.ID == w.assignID && w.assignID != 0
			w.mu.Unlock()
			if !ok {
				w.fail(&errProtocol{fmt.Errorf("worker %s: result for assignment %d which is not in flight", w.name, m.ID)})
				return
			}
			w.deliver(assignmentEnd{msg: m})
		default:
			w.fail(&errProtocol{fmt.Errorf("worker %s: unexpected %q frame", w.name, m.Type)})
			return
		}
	}
}

// WorkerStatus is a point-in-time snapshot of one worker for introspection
// (tests, the chaos harness, future status endpoints).
type WorkerStatus struct {
	Name string
	Busy bool
	Done int // jobs completed
}

// Dispatcher serves the engine.Lab interface from a fleet of remote worker
// processes. It also implements faults.Resumable: the run counter and the
// journal of in-flight assignments checkpoint with the campaign, so a
// killed campaign re-dispatches exactly the journaled incomplete jobs under
// their original noise seeds.
type Dispatcher struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	workers  map[string]*workerConn
	idle     []*workerConn // FIFO: longest-idle worker gets the next job
	runs     int
	journal  map[dataset.Combo]int // combo → run index, until the job completes
	attempts map[dataset.Combo]int
	nextID   uint64

	idleCh chan struct{} // cap-1 wakeup hint: idle pool or fleet changed
	closed chan struct{}
	once   sync.Once
}

// NewDispatcher listens for workers and, when cfg.MinWorkers > 0, blocks
// until that many have joined (bounded by cfg.Wait).
func NewDispatcher(cfg Config) (*Dispatcher, error) {
	cfg.setDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("remotelab: listen %s: %w", cfg.Listen, err)
	}
	d := &Dispatcher{
		cfg:      cfg,
		ln:       ln,
		workers:  make(map[string]*workerConn),
		journal:  make(map[dataset.Combo]int),
		attempts: make(map[dataset.Combo]int),
		idleCh:   make(chan struct{}, 1),
		closed:   make(chan struct{}),
	}
	go d.acceptLoop()
	if cfg.MinWorkers > 0 {
		deadline := time.NewTimer(cfg.Wait)
		defer deadline.Stop()
		for d.liveWorkers() < cfg.MinWorkers {
			select {
			case <-d.idleCh:
			case <-deadline.C:
				d.Close()
				return nil, fmt.Errorf("remotelab: %d of %d workers connected within %v",
					d.liveWorkers(), cfg.MinWorkers, cfg.Wait)
			}
		}
	}
	return d, nil
}

// Addr is the address workers should dial — the resolved form of
// cfg.Listen (useful with ":0").
func (d *Dispatcher) Addr() string { return d.ln.Addr().String() }

// Close stops accepting workers and disconnects the fleet. In-flight
// dispatches terminate as lost-worker faults.
func (d *Dispatcher) Close() {
	d.once.Do(func() {
		close(d.closed)
		d.ln.Close()
		d.mu.Lock()
		ws := make([]*workerConn, 0, len(d.workers))
		for _, w := range d.workers {
			ws = append(ws, w)
		}
		d.mu.Unlock()
		for _, w := range ws {
			w.fail(errors.New("remotelab: dispatcher closed"))
		}
	})
}

func (d *Dispatcher) acceptLoop() {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go d.handshake(conn)
	}
}

// handshake admits a worker: one hello frame with the right protocol
// version and a name not already connected. Rejections just close the
// socket — the campaign never saw this worker, so nothing is charged.
func (d *Dispatcher) handshake(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(d.cfg.Wait))
	m, err := readFrame(conn)
	if err != nil || m.Type != msgHello || m.Version != protocolVersion || m.Worker == "" {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	w := &workerConn{d: d, name: m.Worker, conn: conn, alive: true, wobs: newWorkerObs(m.Worker)}
	d.mu.Lock()
	if _, taken := d.workers[w.name]; taken {
		d.mu.Unlock()
		conn.Close()
		return
	}
	d.workers[w.name] = w
	d.idle = append(d.idle, w)
	live := len(d.workers)
	d.mu.Unlock()
	obs.RemoteWorkersLive.Set(float64(live))
	d.wake()
	go w.readLoop()
}

func (d *Dispatcher) unregister(w *workerConn) {
	d.mu.Lock()
	if d.workers[w.name] == w {
		delete(d.workers, w.name)
	}
	live := len(d.workers)
	d.mu.Unlock()
	obs.RemoteWorkersLive.Set(float64(live))
	d.wake()
}

// wake nudges whoever is waiting on fleet/idle state; the cap-1 channel
// coalesces bursts (waiters re-check real state after every wakeup).
func (d *Dispatcher) wake() {
	select {
	case d.idleCh <- struct{}{}:
	default:
	}
}

func (d *Dispatcher) liveWorkers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers)
}

// Workers snapshots the fleet, sorted by name.
func (d *Dispatcher) Workers() []WorkerStatus {
	d.mu.Lock()
	out := make([]WorkerStatus, 0, len(d.workers))
	for _, w := range d.workers {
		w.mu.Lock()
		out = append(out, WorkerStatus{Name: w.name, Busy: w.busyLocked(), Done: w.nDone})
		w.mu.Unlock()
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// acquire pops the longest-idle live worker, waiting up to cfg.Wait for
// one to free up; nil means no live worker appeared in time.
func (d *Dispatcher) acquire() *workerConn {
	deadline := time.NewTimer(d.cfg.Wait)
	defer deadline.Stop()
	for {
		d.mu.Lock()
		for len(d.idle) > 0 {
			w := d.idle[0]
			d.idle = d.idle[1:]
			w.mu.Lock()
			ok := w.alive
			w.mu.Unlock()
			if ok {
				d.mu.Unlock()
				return w
			}
		}
		d.mu.Unlock()
		select {
		case <-d.idleCh:
		case <-d.closed:
			return nil
		case <-deadline.C:
			return nil
		}
	}
}

// release returns a worker to the idle pool (unless it died meanwhile).
func (d *Dispatcher) release(w *workerConn) {
	w.mu.Lock()
	ok := w.alive
	w.nDone++
	w.mu.Unlock()
	if !ok {
		return
	}
	d.mu.Lock()
	d.idle = append(d.idle, w)
	d.mu.Unlock()
	d.wake()
}

// Candidates implements engine.Lab; a configured fidelity ladder restricts
// the pool to its rungs.
func (d *Dispatcher) Candidates() []dataset.Combo {
	pool := d.cfg.Candidates
	if pool == nil {
		pool = dataset.AllCombos()
	}
	if d.cfg.Fidelity == nil {
		return pool
	}
	out := make([]dataset.Combo, 0, len(pool))
	for _, c := range pool {
		if d.cfg.Fidelity.LevelOf(c.MaxLevel) >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// Run implements engine.Lab: journal a run index for the configuration
// (reusing the journaled one on a re-dispatch, which is what keeps retries
// and resumes bitwise-identical), hand the job to the longest-idle worker,
// and classify whatever comes back onto the faults taxonomy:
//
//	worker loss (reset, heartbeat silence) → ClassTransient, Retryable,
//	    with the last heartbeat's progress charged as the partial cost;
//	worker-reported OOM kill → ClassOOM, Censored, carrying the censored
//	    observation for the memory surrogate;
//	protocol violation → ClassUnknown, Fatal;
//	worker-reported executor error → a plain error (fatal upstream),
//	    mirroring how FaultyLab passes inner lab errors through.
func (d *Dispatcher) Run(c dataset.Combo) (dataset.Job, error) {
	d.mu.Lock()
	d.attempts[c]++
	attempt := d.attempts[c]
	run, journaled := d.journal[c]
	if !journaled {
		d.runs++
		run = d.runs
		d.journal[c] = run
	}
	d.nextID++
	id := d.nextID
	d.mu.Unlock()
	seed := stats.SplitSeed(d.cfg.Seed, run)

	w := d.acquire()
	if w == nil {
		// The journal entry survives: when a worker finally joins, the
		// retry re-dispatches under the same run index.
		return dataset.Job{}, &faults.Fault{
			Class:    faults.ClassTransient,
			Severity: faults.Retryable,
			Combo:    c,
			Attempt:  attempt,
			Err:      fmt.Errorf("remotelab: no live worker within %v", d.cfg.Wait),
		}
	}
	if journaled {
		obs.RemoteJobsStolen.Inc()
		w.wobs.stolen.Inc()
	}
	resultCh := w.begin(id)
	obs.RemoteJobsDispatched.Inc()
	w.wobs.dispatched.Inc()
	frame := message{Type: msgJob, ID: id, Combo: &c, Seed: seed, RSSLimitMB: d.cfg.RSSLimitMB}
	if d.cfg.Fidelity != nil {
		frame.Fidelity = d.cfg.Fidelity.LevelOf(c.MaxLevel)
	}
	if err := writeFrame(w.conn, frame); err != nil {
		w.fail(err)
	}
	end := <-resultCh
	progress := w.clear()

	if end.lost {
		var pv *errProtocol
		if errors.As(end.err, &pv) {
			return dataset.Job{}, &faults.Fault{
				Class:    faults.ClassUnknown,
				Severity: faults.Fatal,
				Combo:    c,
				Attempt:  attempt,
				Err:      end.err,
			}
		}
		obs.RemoteJobsLost.Inc()
		w.wobs.lost.Inc()
		return dataset.Job{}, &faults.Fault{
			Class:    faults.ClassTransient,
			Severity: faults.Retryable,
			Combo:    c,
			Attempt:  attempt,
			LostNH:   progress,
			Err:      fmt.Errorf("remotelab: worker %s lost mid-job: %v", w.name, end.err),
		}
	}

	obs.RemoteJobsCompleted.Inc()
	w.wobs.completed.Inc()
	d.release(w)
	m := end.msg
	switch {
	case m.Error != "":
		d.forget(c)
		return dataset.Job{}, fmt.Errorf("remotelab: worker %s: %s", w.name, m.Error)
	case m.OOM && m.Job != nil:
		d.forget(c)
		return dataset.Job{}, &faults.Fault{
			Class:    faults.ClassOOM,
			Severity: faults.Censored,
			Combo:    c,
			Attempt:  attempt,
			LostNH:   m.Job.CostNH,
			Job:      *m.Job,
		}
	case m.Job != nil:
		d.forget(c)
		return *m.Job, nil
	default:
		w.fail(&errProtocol{fmt.Errorf("worker %s: result frame carries neither job nor error", w.name)})
		return dataset.Job{}, &faults.Fault{
			Class:    faults.ClassUnknown,
			Severity: faults.Fatal,
			Combo:    c,
			Attempt:  attempt,
			Err:      fmt.Errorf("remotelab: worker %s sent an empty result", w.name),
		}
	}
}

// forget closes a configuration's journal entry once its job reached a
// terminal outcome (success, censored kill, or executor error).
func (d *Dispatcher) forget(c dataset.Combo) {
	d.mu.Lock()
	delete(d.journal, c)
	d.mu.Unlock()
}

// labState is the JSON schema of the dispatcher's checkpointable state: the
// run counter (so future assignments draw fresh noise streams), the journal
// of incomplete assignments (re-dispatched under their original run indices
// on resume), and the per-configuration attempt counters.
type labState struct {
	Runs     int            `json:"runs"`
	Pending  []pendingJob   `json:"pending,omitempty"`
	Attempts []comboCounter `json:"attempts,omitempty"`
}

type pendingJob struct {
	Combo dataset.Combo `json:"combo"`
	Run   int           `json:"run"`
}

type comboCounter struct {
	Combo dataset.Combo `json:"combo"`
	N     int           `json:"n"`
}

func comboLess(a, b dataset.Combo) bool {
	switch {
	case a.P != b.P:
		return a.P < b.P
	case a.Mx != b.Mx:
		return a.Mx < b.Mx
	case a.MaxLevel != b.MaxLevel:
		return a.MaxLevel < b.MaxLevel
	case a.R0 != b.R0:
		return a.R0 < b.R0
	default:
		return a.RhoIn < b.RhoIn
	}
}

// LabState implements faults.Resumable.
func (d *Dispatcher) LabState() ([]byte, error) {
	d.mu.Lock()
	st := labState{Runs: d.runs}
	for c, r := range d.journal {
		st.Pending = append(st.Pending, pendingJob{Combo: c, Run: r})
	}
	for c, n := range d.attempts {
		st.Attempts = append(st.Attempts, comboCounter{Combo: c, N: n})
	}
	d.mu.Unlock()
	sort.Slice(st.Pending, func(i, j int) bool { return comboLess(st.Pending[i].Combo, st.Pending[j].Combo) })
	sort.Slice(st.Attempts, func(i, j int) bool { return comboLess(st.Attempts[i].Combo, st.Attempts[j].Combo) })
	return json.Marshal(st)
}

// RestoreLabState implements faults.Resumable.
func (d *Dispatcher) RestoreLabState(state []byte) error {
	var st labState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("remotelab: decoding dispatcher state: %w", err)
	}
	d.mu.Lock()
	d.runs = st.Runs
	d.journal = make(map[dataset.Combo]int, len(st.Pending))
	for _, p := range st.Pending {
		d.journal[p.Combo] = p.Run
	}
	d.attempts = make(map[dataset.Combo]int, len(st.Attempts))
	for _, a := range st.Attempts {
		d.attempts[a.Combo] = a.N
	}
	d.mu.Unlock()
	return nil
}
