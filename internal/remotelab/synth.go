package remotelab

import (
	"math"
	"math/rand"

	"alamr/internal/dataset"
)

// SynthLab is an analytic executor: cost grows with resolution and depth
// and shrinks with node count, memory with the per-node working set —
// qualitatively the paper's AMR scaling, computed in nanoseconds. It backs
// the remote-lab tests and `al-worker -lab synth` smoke fleets, where the
// point is exercising the wire, not the physics.
type SynthLab struct{}

// RunSeeded implements Executor. The measurement is a pure function of
// (c, noiseSeed): the analytic base response with a small seeded
// multiplicative noise, so any worker re-executing a lost job reproduces
// it exactly.
func (SynthLab) RunSeeded(c dataset.Combo, noiseSeed int64) (dataset.Job, error) {
	wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
		(1 + c.R0) / (0.3 + c.RhoIn)
	mem := 0.05 * float64(c.Mx) * float64(c.Mx) / 64 *
		math.Pow(2, float64(c.MaxLevel-3)) / math.Sqrt(float64(c.P))
	noise := rand.New(rand.NewSource(noiseSeed))
	wall *= 1 + 0.02*noise.NormFloat64()
	mem *= 1 + 0.01*noise.NormFloat64()
	if wall < 1e-9 {
		wall = 1e-9
	}
	if mem < 1e-9 {
		mem = 1e-9
	}
	return dataset.Job{
		P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
		WallSec: wall,
		CostNH:  wall * float64(c.P) / 3600,
		MemMB:   mem,
	}, nil
}

// Candidates lets SynthLab double as a local engine.Lab in tests.
func (SynthLab) Candidates() []dataset.Combo { return dataset.AllCombos() }

// Run executes with an unseeded (zero-seed) noise stream; prefer RunSeeded.
func (l SynthLab) Run(c dataset.Combo) (dataset.Job, error) { return l.RunSeeded(c, 0) }
