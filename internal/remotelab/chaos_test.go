package remotelab

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"testing"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/obs"
	"alamr/internal/online"
)

// TestRemoteWorkerHelper is not a test: it is the body of the worker
// subprocesses the chaos test spawns by re-exec'ing the test binary (the
// standard helper-process pattern). Without the env gate it skips.
func TestRemoteWorkerHelper(t *testing.T) {
	addr := os.Getenv("AL_REMOTE_WORKER_ADDR")
	if addr == "" {
		t.Skip("helper process: only meaningful when re-exec'd by the chaos test")
	}
	slowdown, err := time.ParseDuration(os.Getenv("AL_REMOTE_WORKER_SLOWDOWN"))
	if err != nil {
		t.Fatalf("bad AL_REMOTE_WORKER_SLOWDOWN: %v", err)
	}
	if err := RunWorker(addr, WorkerConfig{
		Name:      os.Getenv("AL_REMOTE_WORKER_NAME"),
		Executor:  SynthLab{},
		Heartbeat: 50 * time.Millisecond,
		Slowdown:  slowdown,
	}); err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// spawnWorkerProcess forks one real al-worker-shaped OS process (the test
// binary re-running TestRemoteWorkerHelper) and registers a SIGKILL+reap
// cleanup. It exits on its own when the dispatcher closes.
func spawnWorkerProcess(t *testing.T, addr, name string, slowdown time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestRemoteWorkerHelper$")
	cmd.Env = append(os.Environ(),
		"AL_REMOTE_WORKER_ADDR="+addr,
		"AL_REMOTE_WORKER_NAME="+name,
		"AL_REMOTE_WORKER_SLOWDOWN="+slowdown.String(),
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning worker %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// TestChaosWorkerKillBitwiseIdentical is the acceptance pin for the remote
// lab: a campaign against four worker processes, one of which is SIGKILLed
// mid-job, completes with a trajectory bitwise identical to the same seed
// on an unkilled fleet. Only the Health ledger and the obs counters may
// differ — and they must record the loss, agree with each other, and
// balance.
func TestChaosWorkerKillBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker subprocesses; run directly or via make chaos-remote")
	}
	const seed = 7
	pool := dataset.AllCombos()[:64]
	cfg := remoteCampaignCfg(seed)

	// Reference: the same campaign on an unkilled in-process fleet. Jobs
	// are pure functions of (combo, dispatcher-assigned seed), so worker
	// placement cannot show up in the trajectory.
	want, err := online.Run(synthFleet(t, seed, 4, pool), cfg)
	if err != nil {
		t.Fatalf("unkilled run failed: %v", err)
	}

	// Observability on for the chaos run only, so the counters below
	// account exactly one campaign.
	defer obs.Disable()
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)

	d := testDispatcher(t, Config{Seed: seed, Candidates: pool, Heartbeat: 700 * time.Millisecond})
	procs := make(map[string]*exec.Cmd, 4)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		procs[name] = spawnWorkerProcess(t, d.Addr(), name, 300*time.Millisecond)
	}
	waitWorkers(t, d, 4)

	// The assassin: once the campaign is past its second completed job,
	// SIGKILL the next worker observed *entering* a job — mid-batch and
	// almost the full Slowdown away from reporting a result.
	killed := make(chan string, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		wasBusy := make(map[string]bool)
		for {
			select {
			case <-stop:
				return
			default:
			}
			done := 0
			victim := ""
			for _, w := range d.Workers() {
				done += w.Done
				if w.Busy && !wasBusy[w.Name] {
					victim = w.Name
				}
				wasBusy[w.Name] = w.Busy
			}
			if done >= 2 && victim != "" {
				procs[victim].Process.Kill()
				killed <- victim
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	got, err := online.Run(d, cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	var victim string
	select {
	case victim = <-killed:
	default:
		t.Fatal("assassin never fired: the campaign finished before a worker could be killed")
	}

	// The trajectory — selections, costs, regret, violations, censoring,
	// stop reason — must be bitwise identical; only the fault ledger may
	// (and must) differ.
	a, b := *want, *got
	a.Health, b.Health = online.Health{}, online.Health{}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("killing %s changed the trajectory:\nchaos:  %+v\nclean:  %+v", victim, b, a)
	}

	h := got.Health
	if !h.Consistent() {
		t.Fatalf("chaos health ledger does not balance: %+v", h)
	}
	if h.Retries < 1 {
		t.Fatalf("SIGKILL of %s left no retry in the ledger: %+v", victim, h)
	}
	if h.FaultsByClass["transient"] < 1 {
		t.Fatalf("worker loss not classified transient: %+v", h)
	}

	// Ledger ↔ obs reconciliation: the two accounting systems are built
	// independently and must agree job for job.
	dispatched, _ := reg.CounterValue(obs.MetricRemoteJobsDispatched)
	completed, _ := reg.CounterValue(obs.MetricRemoteJobsCompleted)
	lost, _ := reg.CounterValue(obs.MetricRemoteJobsLost)
	stolen, _ := reg.CounterValue(obs.MetricRemoteJobsStolen)
	if lost < 1 {
		t.Fatalf("no lost job counted after killing %s", victim)
	}
	if dispatched != completed+lost {
		t.Fatalf("dispatched=%d != completed=%d + lost=%d", dispatched, completed, lost)
	}
	if stolen != lost {
		t.Fatalf("every lost job must be re-dispatched exactly once: stolen=%d lost=%d", stolen, lost)
	}
	if int64(h.Attempts) != dispatched {
		t.Fatalf("ledger attempts=%d != obs dispatched=%d", h.Attempts, dispatched)
	}
	if int64(h.FaultsByClass["transient"]) != lost {
		t.Fatalf("ledger transient=%d != obs lost=%d", h.FaultsByClass["transient"], lost)
	}
	if vlost, _ := reg.CounterValue(obs.Labeled(obs.MetricRemoteJobsLost, obs.LabelWorker, victim)); vlost < 1 {
		t.Fatalf("per-worker loss counter for %s is %d", victim, vlost)
	}
	if live, ok := reg.GaugeValue(obs.MetricRemoteWorkersLive); !ok || live != 3 {
		t.Fatalf("live worker gauge = %v after losing one of four", live)
	}
}
