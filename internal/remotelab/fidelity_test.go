package remotelab

import (
	"testing"

	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/online"
)

// TestFidelityJobFrames: a dispatcher configured with a fidelity ladder
// restricts its candidate pool to the ladder and stamps every job frame with
// the combo's ladder index, so workers see the fidelity without re-deriving
// the ladder.
func TestFidelityJobFrames(t *testing.T) {
	ladder := &engine.FidelitySpec{Levels: []int{3, 4, 6}}
	d := testDispatcher(t, Config{Seed: 13, Fidelity: ladder})

	for _, c := range d.Candidates() {
		if ladder.LevelOf(c.MaxLevel) < 0 {
			t.Fatalf("candidate %+v is off the ladder %v", c, ladder.Levels)
		}
	}
	if got, want := len(d.Candidates()), len(dataset.AllCombos())*3/4; got != want {
		t.Fatalf("ladder pool has %d candidates, want %d (3 of 4 maxlevel rungs)", got, want)
	}

	conn := rawConn(t, d.Addr(), "observer")
	waitWorkers(t, d, 1)

	for _, combo := range []dataset.Combo{
		{P: 8, Mx: 16, MaxLevel: 3, R0: 0.3, RhoIn: 0.1},
		{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1},
		{P: 8, Mx: 16, MaxLevel: 6, R0: 0.3, RhoIn: 0.1},
	} {
		done := make(chan error, 1)
		go func() {
			m, err := readFrame(conn)
			if err != nil {
				done <- err
				return
			}
			if want := ladder.LevelOf(m.Combo.MaxLevel); m.Fidelity != want {
				t.Errorf("job frame for maxlevel %d carries fidelity %d, want %d",
					m.Combo.MaxLevel, m.Fidelity, want)
			}
			job, _ := SynthLab{}.RunSeeded(*m.Combo, m.Seed)
			done <- writeFrame(conn, message{Type: msgResult, ID: m.ID, Job: &job})
		}()
		if _, err := d.Run(combo); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFidelityCampaignOverFleet drives a full multi-fidelity online campaign
// through a worker fleet: the co-kriging surrogate, the cost-per-information
// acquisition, and the remote execution seam compose, and every selection's
// ladder level is recorded.
func TestFidelityCampaignOverFleet(t *testing.T) {
	ladder := &engine.FidelitySpec{Levels: []int{3, 4, 6}}
	d := testDispatcher(t, Config{Seed: 19, Fidelity: ladder})
	startWorker(t, d, "w0", SynthLab{}, 0)
	startWorker(t, d, "w1", SynthLab{}, 0)
	waitWorkers(t, d, 2)

	res, err := online.Run(d, online.Config{
		Policy:         engine.CostPerInfo{},
		MaxExperiments: 6,
		Seed:           19,
		Fidelity:       ladder,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectedLevel) != 6 {
		t.Fatalf("recorded %d selection levels, want 6", len(res.SelectedLevel))
	}
	for i, j := range res.Jobs {
		if ladder.LevelOf(j.MaxLevel) < 0 {
			t.Fatalf("job %d ran at maxlevel %d, off the ladder", i, j.MaxLevel)
		}
	}
}
