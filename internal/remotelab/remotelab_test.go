package remotelab

import (
	"encoding/json"
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/faults"
	"alamr/internal/stats"
)

// testDispatcher builds a dispatcher on a free port with test-sized
// timeouts and closes it with the test.
func testDispatcher(t *testing.T, cfg Config) *Dispatcher {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.Wait == 0 {
		cfg.Wait = 5 * time.Second
	}
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// startWorker runs an in-process worker against the dispatcher; it exits
// when the dispatcher closes (cleanup closes the dispatcher — idempotent —
// then waits the worker goroutine out, since t.Cleanup runs LIFO).
func startWorker(t *testing.T, d *Dispatcher, name string, exec Executor, slowdown time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(d.Addr(), WorkerConfig{
			Name: name, Executor: exec,
			Heartbeat: 100 * time.Millisecond,
			Slowdown:  slowdown,
		})
	}()
	t.Cleanup(func() {
		d.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("worker goroutine leaked past dispatcher close")
		}
	})
}

func waitWorkers(t *testing.T, d *Dispatcher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for d.liveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers joined", d.liveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

var testCombo = dataset.Combo{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1}

// TestDispatcherMatchesLocalExecution pins the core determinism contract:
// jobs run through the fleet equal SynthLab run locally under the
// dispatcher-assigned seeds, regardless of which worker served them.
func TestDispatcherMatchesLocalExecution(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 11})
	startWorker(t, d, "w0", SynthLab{}, 0)
	startWorker(t, d, "w1", SynthLab{}, 0)
	waitWorkers(t, d, 2)

	combos := dataset.AllCombos()[:8]
	for i, c := range combos {
		got, err := d.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := SynthLab{}.RunSeeded(c, stats.SplitSeed(11, i+1))
		if got != want {
			t.Fatalf("combo %d: remote %+v != local %+v", i, got, want)
		}
	}

	ws := d.Workers()
	if len(ws) != 2 || ws[0].Name != "w0" || ws[1].Name != "w1" {
		t.Fatalf("workers = %+v", ws)
	}
	if ws[0].Done+ws[1].Done != len(combos) {
		t.Fatalf("completed %d+%d jobs, want %d", ws[0].Done, ws[1].Done, len(combos))
	}
}

// TestNoWorkersIsRetryable: an empty (or fully dead) fleet must charge a
// retryable transient fault, not hang the campaign — RunWithRetry then
// drains the attempt budget deterministically.
func TestNoWorkersIsRetryable(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 1, Wait: 50 * time.Millisecond})
	_, err := d.Run(testCombo)
	var f *faults.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want a classified fault", err)
	}
	if f.Class != faults.ClassTransient || f.Severity != faults.Retryable {
		t.Fatalf("fault = %v/%v, want transient/retryable", f.Class, f.Severity)
	}
	// The journal entry must survive so a late-joining worker serves the
	// retry under the original run index.
	st, _ := d.LabState()
	var ls labState
	if err := json.Unmarshal(st, &ls); err != nil {
		t.Fatal(err)
	}
	if len(ls.Pending) != 1 || ls.Pending[0].Combo != testCombo || ls.Pending[0].Run != 1 {
		t.Fatalf("pending = %+v, want the failed combo at run 1", ls.Pending)
	}

	startWorker(t, d, "late", SynthLab{}, 0)
	waitWorkers(t, d, 1)
	got, err := d.Run(testCombo)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := SynthLab{}.RunSeeded(testCombo, stats.SplitSeed(1, 1))
	if got != want {
		t.Fatalf("retry after worker joined: %+v != %+v", got, want)
	}
}

// TestOOMReportIsCensored: a worker-reported OOM maps onto the Censored
// severity with the censored observation attached — the same contract
// faults.FaultyLab provides, so the memory surrogate's censored-feed path
// works against real fleets unchanged.
func TestOOMReportIsCensored(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 7, RSSLimitMB: 1e-6})
	startWorker(t, d, "w0", SynthLab{}, 0)
	waitWorkers(t, d, 1)

	_, err := d.Run(testCombo)
	var f *faults.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want a classified fault", err)
	}
	if f.Class != faults.ClassOOM || f.Severity != faults.Censored {
		t.Fatalf("fault = %v/%v, want oom/censored", f.Class, f.Severity)
	}
	if f.Job.MemMB != 1e-6 {
		t.Fatalf("censored MemMB = %g, want the limit", f.Job.MemMB)
	}
	if f.Job.CostNH <= 0 || f.LostNH != f.Job.CostNH {
		t.Fatalf("partial cost %g / lost %g", f.Job.CostNH, f.LostNH)
	}
	// Terminal outcome: the journal entry is closed.
	st, _ := d.LabState()
	var ls labState
	json.Unmarshal(st, &ls)
	if len(ls.Pending) != 0 {
		t.Fatalf("censored job left pending journal %+v", ls.Pending)
	}
	// And the report is reproducible: re-running the combo draws a fresh
	// run index but the same deterministic kill rule.
	if _, err2 := d.Run(testCombo); err2 == nil {
		t.Fatal("second run unexpectedly survived the RSS limit")
	}
}

// errExec is an executor whose jobs always fail.
type errExec struct{}

func (errExec) RunSeeded(dataset.Combo, int64) (dataset.Job, error) {
	return dataset.Job{}, errors.New("reactor meltdown")
}

// TestExecutorErrorPassesThrough: a worker-side lab error comes back as a
// plain (unclassified) error, which RunWithRetry treats as fatal — exactly
// how a local lab's own error propagates.
func TestExecutorErrorPassesThrough(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 3})
	startWorker(t, d, "w0", errExec{}, 0)
	waitWorkers(t, d, 1)

	_, err := d.Run(testCombo)
	if err == nil || !strings.Contains(err.Error(), "reactor meltdown") {
		t.Fatalf("err = %v, want the executor's message", err)
	}
	var f *faults.Fault
	if errors.As(err, &f) {
		t.Fatalf("executor error was classified as %v; must stay plain", f)
	}
}

// rawConn dials the dispatcher and speaks the protocol by hand — the tool
// for misbehaving-peer tests.
func rawConn(t *testing.T, addr, name string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := writeFrame(conn, message{Type: msgHello, Version: protocolVersion, Worker: name}); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestProtocolViolationIsFatal: a worker that answers with a frame outside
// the protocol is not a retry candidate — the fault is fatal.
func TestProtocolViolationIsFatal(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 5})
	conn := rawConn(t, d.Addr(), "rogue")
	waitWorkers(t, d, 1)

	go func() {
		// Swallow the job, answer with nonsense.
		readFrame(conn)
		writeFrame(conn, message{Type: "exfiltrate", ID: 1})
	}()
	_, err := d.Run(testCombo)
	var f *faults.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want a classified fault", err)
	}
	if f.Class != faults.ClassUnknown || f.Severity != faults.Fatal {
		t.Fatalf("fault = %v/%v, want unknown/fatal", f.Class, f.Severity)
	}
}

// TestWorkerLossMidJob: a worker that vanishes with a job in flight yields
// a retryable transient fault charging the last reported progress, and the
// retry re-executes the identical job on the surviving worker.
func TestWorkerLossMidJob(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 9, Heartbeat: time.Second})
	conn := rawConn(t, d.Addr(), "doomed")
	waitWorkers(t, d, 1)
	startWorker(t, d, "survivor", SynthLab{}, 0)
	waitWorkers(t, d, 2)

	go func() {
		m, err := readFrame(conn)
		if err != nil {
			return
		}
		// Report progress, then die without a result.
		writeFrame(conn, message{Type: msgHeartbeat, ID: m.ID, ProgressNH: 0.0625})
		time.Sleep(50 * time.Millisecond) // let the heartbeat land first
		conn.Close()
	}()

	_, err := d.Run(testCombo) // FIFO: lands on "doomed" (joined first)
	var f *faults.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want a classified fault", err)
	}
	if f.Class != faults.ClassTransient || f.Severity != faults.Retryable {
		t.Fatalf("fault = %v/%v, want transient/retryable", f.Class, f.Severity)
	}
	if f.LostNH != 0.0625 {
		t.Fatalf("LostNH = %g, want the heartbeat's 0.0625", f.LostNH)
	}

	// Retry: journal reuse pins the same run index, so the surviving
	// worker reproduces what the doomed one would have measured.
	got, err := d.Run(testCombo)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := SynthLab{}.RunSeeded(testCombo, stats.SplitSeed(9, 1))
	if got != want {
		t.Fatalf("stolen job %+v != original assignment %+v", got, want)
	}
}

// hangExec blocks every job until released — it parks an assignment in
// flight so tests can inspect mid-job state.
type hangExec struct {
	release chan struct{}
	once    sync.Once
}

func (h *hangExec) RunSeeded(c dataset.Combo, seed int64) (dataset.Job, error) {
	<-h.release
	return SynthLab{}.RunSeeded(c, seed)
}

// TestJournalRoundTripsThroughLabState: an in-flight assignment appears in
// LabState, and restoring that state into a fresh dispatcher re-dispatches
// the job under its original run index.
func TestJournalRoundTripsThroughLabState(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 21})
	h := &hangExec{release: make(chan struct{})}
	startWorker(t, d, "w0", h, 0)
	waitWorkers(t, d, 1)

	runDone := make(chan error, 1)
	go func() {
		_, err := d.Run(testCombo)
		runDone <- err
	}()
	// Wait until the assignment is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ws := d.Workers()
		if len(ws) == 1 && ws[0].Busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("assignment never went in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, err := d.LabState()
	if err != nil {
		t.Fatal(err)
	}
	var ls labState
	if err := json.Unmarshal(st, &ls); err != nil {
		t.Fatal(err)
	}
	if ls.Runs != 1 || len(ls.Pending) != 1 || ls.Pending[0].Combo != testCombo || ls.Pending[0].Run != 1 {
		t.Fatalf("mid-flight state = %+v, want run counter 1 and the combo pending at run 1", ls)
	}

	h.once.Do(func() { close(h.release) })
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh dispatcher (a resumed campaign process): the
	// journaled job re-dispatches under run index 1, and the next new
	// combo draws run index 2.
	d2 := testDispatcher(t, Config{Seed: 21})
	if err := d2.RestoreLabState(st); err != nil {
		t.Fatal(err)
	}
	startWorker(t, d2, "w0", SynthLab{}, 0)
	waitWorkers(t, d2, 1)
	got, err := d2.Run(testCombo)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := SynthLab{}.RunSeeded(testCombo, stats.SplitSeed(21, 1))
	if got != want {
		t.Fatalf("restored journal job %+v != original %+v", got, want)
	}
	other := dataset.AllCombos()[0]
	if other == testCombo {
		other = dataset.AllCombos()[1]
	}
	got2, err := d2.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := SynthLab{}.RunSeeded(other, stats.SplitSeed(21, 2))
	if got2 != want2 {
		t.Fatalf("post-restore run counter drifted: %+v != %+v", got2, want2)
	}

	// Corrupt state is rejected with a descriptive error.
	if err := d2.RestoreLabState([]byte(`{"runs": "NaN"}`)); err == nil {
		t.Fatal("corrupt dispatcher state accepted")
	}
}

// TestRestoredStateSorted: LabState output is canonical (sorted), so
// checkpoints are byte-stable across map iteration order.
func TestLabStateCanonical(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 2, Wait: 20 * time.Millisecond})
	// Fail several dispatches against an empty fleet to populate the
	// journal in arbitrary map order.
	combos := dataset.AllCombos()
	for _, c := range []dataset.Combo{combos[7], combos[3], combos[5]} {
		d.Run(c)
	}
	a, err := d.LabState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.LabState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("LabState not canonical:\n%s\n%s", a, b)
	}
	var ls labState
	json.Unmarshal(a, &ls)
	if len(ls.Pending) != 3 {
		t.Fatalf("pending = %+v", ls.Pending)
	}
	for i := 1; i < len(ls.Pending); i++ {
		if !comboLess(ls.Pending[i-1].Combo, ls.Pending[i].Combo) {
			t.Fatalf("pending not sorted: %+v", ls.Pending)
		}
	}
}

// TestMinWorkersTimeout: NewDispatcher fails loudly when the fleet does
// not materialize.
func TestMinWorkersTimeout(t *testing.T) {
	_, err := NewDispatcher(Config{Listen: "127.0.0.1:0", MinWorkers: 2, Wait: 50 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "0 of 2 workers") {
		t.Fatalf("err = %v, want a fleet-timeout error", err)
	}
}

// TestHandshakeRejectsBadHello: wrong versions and duplicate names never
// enter the fleet.
func TestHandshakeRejectsBadHello(t *testing.T) {
	d := testDispatcher(t, Config{Seed: 1})
	startWorker(t, d, "w0", SynthLab{}, 0)
	waitWorkers(t, d, 1)

	for name, hello := range map[string]message{
		"wrong version": {Type: msgHello, Version: 99, Worker: "vnext"},
		"no name":       {Type: msgHello, Version: protocolVersion},
		"dup name":      {Type: msgHello, Version: protocolVersion, Worker: "w0"},
	} {
		conn, err := net.Dial("tcp", d.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, hello); err != nil {
			t.Fatal(err)
		}
		// The dispatcher must hang up on us.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := readFrame(conn); err == nil {
			t.Fatalf("%s: handshake accepted", name)
		}
		conn.Close()
	}
	if n := d.liveWorkers(); n != 1 {
		t.Fatalf("fleet size %d after rejected hellos, want 1", n)
	}
}

// TestFrameGuards: the length prefix is bounded and garbage is a protocol
// error distinct from I/O failure.
func TestFrameGuards(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0xff, 0xff, 0xff, 0xff})
	_, err := readFrame(b)
	var pv *errProtocol
	if !errors.As(err, &pv) {
		t.Fatalf("oversized frame: err = %v, want protocol violation", err)
	}

	go func() {
		var buf [4]byte
		buf[3] = 4
		a.Write(buf[:])
		a.Write([]byte("}{!?"))
	}()
	_, err = readFrame(b)
	if !errors.As(err, &pv) {
		t.Fatalf("garbage frame: err = %v, want protocol violation", err)
	}

	if err := writeFrame(a, message{Type: strings.Repeat("x", maxFrame)}); err == nil {
		t.Fatal("oversized write accepted")
	}
}
