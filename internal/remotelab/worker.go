package remotelab

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/stats"
)

// Executor is what a worker process actually runs: a lab whose measurement
// is a pure function of (configuration, noise seed). online.SimLab
// implements it (RunSeeded); SynthLab below is the fast analytic stand-in
// for tests and smoke fleets.
type Executor interface {
	RunSeeded(c dataset.Combo, noiseSeed int64) (dataset.Job, error)
}

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Name identifies the worker to the dispatcher (and in per-worker
	// metrics); it must be unique across the fleet.
	Name string
	// Executor runs the jobs.
	Executor Executor
	// Heartbeat is the liveness-frame interval. It must be comfortably
	// under the dispatcher's silence deadline; default 1s.
	Heartbeat time.Duration
	// Slowdown stretches each job's execution to at least this long
	// (progress heartbeats tick during the stretch). Real labs are slow on
	// their own; simulated labs use it to give chaos harnesses a window to
	// kill a mid-job worker. 0 = report results immediately.
	Slowdown time.Duration
}

func (c *WorkerConfig) setDefaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
}

// RunWorker connects to the dispatcher at addr and serves jobs until the
// connection closes (dispatcher shutdown returns nil; anything else
// returns the transport error).
func RunWorker(addr string, cfg WorkerConfig) error {
	cfg.setDefaults()
	if cfg.Name == "" {
		return errors.New("remotelab: worker needs a name")
	}
	if cfg.Executor == nil {
		return errors.New("remotelab: worker needs an executor")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("remotelab: dialing dispatcher %s: %w", addr, err)
	}
	defer conn.Close()
	w := &worker{cfg: cfg, conn: conn, stop: make(chan struct{})}
	defer close(w.stop)
	if err := w.write(message{Type: msgHello, Version: protocolVersion, Worker: cfg.Name}); err != nil {
		return err
	}
	go w.heartbeatLoop()
	for {
		m, err := readFrame(conn)
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("remotelab: worker %s read: %w", cfg.Name, err)
		}
		if m.Type != msgJob || m.Combo == nil {
			return fmt.Errorf("remotelab: worker %s: unexpected %q frame", cfg.Name, m.Type)
		}
		if err := w.serve(m); err != nil {
			return err
		}
	}
}

// worker is the connection-scoped state of one RunWorker call.
type worker struct {
	cfg  WorkerConfig
	conn net.Conn
	stop chan struct{}

	writeMu sync.Mutex // result and heartbeat writers share the socket

	mu       sync.Mutex
	jobID    uint64  // in-flight assignment, 0 when idle
	progress float64 // node-hours consumed so far
}

func (w *worker) write(m message) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	return writeFrame(w.conn, m)
}

// heartbeatLoop keeps the dispatcher's silence deadline from firing: every
// interval it sends the in-flight job's consumed cost (or an idle beat).
// Write errors are left for the main loop's reads to surface.
func (w *worker) heartbeatLoop() {
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			id, progress := w.jobID, w.progress
			w.mu.Unlock()
			if w.write(message{Type: msgHeartbeat, ID: id, ProgressNH: progress}) != nil {
				return
			}
		}
	}
}

// serve executes one assignment and reports its outcome. The measurement
// is computed up front (it is deterministic and fast); the Slowdown stretch
// then simulates the wall-clock of real execution, with progress advancing
// linearly — which is the window a chaos harness SIGKILLs workers in, and
// the source of the partial cost a lost worker leaves behind.
func (w *worker) serve(m message) error {
	w.mu.Lock()
	w.jobID, w.progress = m.ID, 0
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.jobID, w.progress = 0, 0
		w.mu.Unlock()
	}()

	job, err := w.cfg.Executor.RunSeeded(*m.Combo, m.Seed)
	if err != nil {
		return w.write(message{Type: msgResult, ID: m.ID, Error: err.Error()})
	}

	oom := m.RSSLimitMB > 0 && job.MemMB >= m.RSSLimitMB
	final := job
	if oom {
		// The kill lands a deterministic fraction of the way through the
		// run — the same rule (and the same censoring: MaxRSS >= limit) as
		// faults.FaultyLab, derived from the job's own seed so a
		// re-executed job reports the identical kill on any worker.
		rng := rand.New(rand.NewSource(stats.SplitSeed(m.Seed, 1)))
		frac := 0.25 + 0.75*rng.Float64()
		final.MemMB = m.RSSLimitMB
		final.WallSec *= frac
		final.CostNH *= frac
	}

	if w.cfg.Slowdown > 0 {
		// March progress forward in heartbeat-sized steps so the
		// dispatcher's partial-cost figure tracks the simulated execution.
		start := time.Now()
		step := w.cfg.Heartbeat / 4
		for {
			elapsed := time.Since(start)
			if elapsed >= w.cfg.Slowdown {
				break
			}
			w.mu.Lock()
			w.progress = final.CostNH * (elapsed.Seconds() / w.cfg.Slowdown.Seconds())
			w.mu.Unlock()
			time.Sleep(min(step, w.cfg.Slowdown-elapsed))
		}
	}

	return w.write(message{Type: msgResult, ID: m.ID, Job: &final, OOM: oom})
}
