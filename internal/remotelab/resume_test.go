package remotelab

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/faults"
	"alamr/internal/online"
)

// synthFleet builds a dispatcher plus n in-process SynthLab workers, all
// torn down with the test.
func synthFleet(t *testing.T, seed int64, n int, pool []dataset.Combo) *Dispatcher {
	t.Helper()
	d := testDispatcher(t, Config{Seed: seed, Candidates: pool})
	for i := 0; i < n; i++ {
		startWorker(t, d, fmt.Sprintf("w%d", i), SynthLab{}, 0)
	}
	waitWorkers(t, d, n)
	return d
}

// remoteCampaignCfg is the shared campaign shape of the resume and chaos
// tests: a small candidate pool (speed), a memory limit comfortably above
// the pool's analytic footprints (so the memory-aware policy keeps
// selecting), seeded retries.
func remoteCampaignCfg(seed int64) online.Config {
	return online.Config{
		Policy:         core.RGMA{},
		MaxExperiments: 8,
		MemLimitMB:     0.5,
		Seed:           seed,
		Retry:          faults.RetryPolicy{MaxAttempts: 6},
	}
}

// crashLab wraps a dispatcher and fails fatally after a fixed number of
// campaign lab calls — the stand-in for kill -9 of the *campaign* process
// (the workers and their dispatcher die with it; resume builds new ones).
type crashLab struct {
	d     *Dispatcher
	after int
	calls int
}

func (l *crashLab) Candidates() []dataset.Combo { return l.d.Candidates() }

func (l *crashLab) Run(c dataset.Combo) (dataset.Job, error) {
	l.calls++
	if l.calls > l.after {
		return dataset.Job{}, errors.New("campaign process killed")
	}
	return l.d.Run(c)
}

func (l *crashLab) LabState() ([]byte, error) { return l.d.LabState() }

func (l *crashLab) RestoreLabState(b []byte) error { return l.d.RestoreLabState(b) }

// TestDispatcherCampaignKillResume is the kill-the-campaign recovery
// contract for the remote lab: a campaign driving a worker fleet dies
// mid-flight, and a fresh campaign process — new dispatcher, new port, new
// workers — resumes from the checkpoint to a Result bitwise identical to
// an uninterrupted run. The dispatcher's run counter travels in LabState,
// so resumed assignments draw the same per-run noise seeds the dead
// campaign would have.
func TestDispatcherCampaignKillResume(t *testing.T) {
	const seed = 7
	pool := dataset.AllCombos()[:64]
	cfg := remoteCampaignCfg(seed)

	uninterrupted, err := online.Run(synthFleet(t, seed, 2, pool), cfg)
	if err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}
	if got := uninterrupted.Health.Attempts; got < 9 {
		t.Fatalf("uninterrupted run executed %d jobs, want the full init+8 campaign", got)
	}

	for _, killAfter := range []int{2, 6} {
		t.Run(fmt.Sprintf("killAfter=%d", killAfter), func(t *testing.T) {
			ckpt := cfg
			ckpt.CheckpointPath = filepath.Join(t.TempDir(), "campaign.ckpt")

			// First campaign process: dies after killAfter lab calls.
			kl := &crashLab{d: synthFleet(t, seed, 2, pool), after: killAfter}
			partial, err := online.Run(kl, ckpt)
			if err == nil {
				t.Fatal("campaign survived the kill")
			}
			if partial == nil {
				t.Fatal("no partial result returned")
			}

			// Second campaign process: a brand-new fleet resumes the
			// checkpoint.
			resumed, err := online.Run(synthFleet(t, seed, 2, pool), ckpt)
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if !reflect.DeepEqual(resumed, uninterrupted) {
				t.Fatalf("resumed trajectory diverged:\n%+v\nvs uninterrupted\n%+v",
					resumed, uninterrupted)
			}
		})
	}
}
