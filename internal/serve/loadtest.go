package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"alamr/internal/report"
)

// LoadConfig drives a latency load test against a running daemon: a pool of
// submitters pushes campaigns while a pool of pollers hammers the status
// endpoint, and the measured p99 latencies are gated against hard ceilings.
// The test exercises the serving layer, not the campaigns themselves — specs
// should be small so queue dynamics (not GP math) dominate.
type LoadConfig struct {
	// Addr is the daemon's host:port.
	Addr string
	// Specs are submitted round-robin (vary the seed across entries so
	// workers stay busy with distinct campaigns). At least one is required.
	Specs []json.RawMessage
	// Tenants cycle across submissions (default: one tenant, "load").
	Tenants []string
	// Campaigns is the total number of submissions (default 32).
	Campaigns int
	// Submitters and Pollers size the client pools (default 4 each).
	Submitters int
	Pollers    int
	// P99SubmitMax / P99PollMax are the latency gates; 0 disables a gate.
	P99SubmitMax time.Duration
	P99PollMax   time.Duration
	// Timeout bounds the whole run (default 5 minutes).
	Timeout time.Duration
	Logf    func(format string, args ...any)
}

// GateCheck is one pass/fail latency verdict in a LoadReport.
type GateCheck struct {
	Name     string  `json:"name"`
	LimitMs  float64 `json:"limit_ms"`
	ActualMs float64 `json:"actual_ms"`
	Passed   bool    `json:"passed"`
}

// LoadReport is the load test outcome, JSON-shaped for BENCH_serve.json.
type LoadReport struct {
	Campaigns   int                   `json:"campaigns"`
	Tenants     int                   `json:"tenants"`
	Submitters  int                   `json:"submitters"`
	Pollers     int                   `json:"pollers"`
	Rejected429 int                   `json:"rejected_429"`
	Failed      int                   `json:"failed_campaigns"`
	WallSeconds float64               `json:"wall_seconds"`
	Submit      report.LatencySummary `json:"submit"`
	Poll        report.LatencySummary `json:"poll"`
	Gates       []GateCheck           `json:"gates"`
	Passed      bool                  `json:"passed"`
}

// Table renders the submit/poll latency distributions for terminal output.
func (r *LoadReport) Table() *report.Table {
	return report.LatencyTable([]report.LatencySummary{r.Submit, r.Poll})
}

func (c *LoadConfig) fill() error {
	if c.Addr == "" {
		return fmt.Errorf("serve: load test needs a daemon address")
	}
	if len(c.Specs) == 0 {
		return fmt.Errorf("serve: load test needs at least one campaign spec")
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []string{"load"}
	}
	if c.Campaigns <= 0 {
		c.Campaigns = 32
	}
	if c.Submitters <= 0 {
		c.Submitters = 4
	}
	if c.Pollers <= 0 {
		c.Pollers = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// loadState is the shared board: submitted campaign IDs and which are done.
type loadState struct {
	mu       sync.Mutex
	ids      []string
	terminal map[string]bool
	rejected int
	failed   int
	allIn    bool // all submissions issued
}

func (st *loadState) add(id string) {
	st.mu.Lock()
	st.ids = append(st.ids, id)
	st.mu.Unlock()
}

func (st *loadState) snapshot() (pending []string, done bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, id := range st.ids {
		if !st.terminal[id] {
			pending = append(pending, id)
		}
	}
	return pending, st.allIn && len(pending) == 0
}

func (st *loadState) markTerminal(id string, failed bool) {
	st.mu.Lock()
	if !st.terminal[id] {
		st.terminal[id] = true
		if failed {
			st.failed++
		}
	}
	st.mu.Unlock()
}

// RunLoadTest submits cfg.Campaigns campaigns from concurrent submitters
// while concurrent pollers read status until every campaign is terminal,
// then summarizes both latency distributions and applies the p99 gates.
// Backpressured submissions (429) honor Retry-After and retry; they count in
// Rejected429, not in the submit latencies.
func RunLoadTest(cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	st := &loadState{terminal: map[string]bool{}}
	deadline := time.Now().Add(cfg.Timeout)
	start := time.Now()

	// Submitters: campaign i goes to tenant i%len(Tenants) with spec
	// i%len(Specs), partitioned across the pool by index stride.
	var wgSubmit sync.WaitGroup
	submitSecs := make([][]float64, cfg.Submitters)
	submitErr := make([]error, cfg.Submitters)
	for w := 0; w < cfg.Submitters; w++ {
		wgSubmit.Add(1)
		go func(w int) {
			defer wgSubmit.Done()
			client := NewClient(cfg.Addr)
			for i := w; i < cfg.Campaigns; i += cfg.Submitters {
				tenant := cfg.Tenants[i%len(cfg.Tenants)]
				spec := cfg.Specs[i%len(cfg.Specs)]
				for {
					if time.Now().After(deadline) {
						submitErr[w] = fmt.Errorf("serve: load test timed out submitting campaign %d", i)
						return
					}
					t0 := time.Now()
					m, err := client.Submit(tenant, "", spec)
					if IsBackpressure(err) {
						st.mu.Lock()
						st.rejected++
						st.mu.Unlock()
						ra := err.(*APIError).RetryAfter
						if ra <= 0 {
							ra = 1
						}
						time.Sleep(time.Duration(ra) * 100 * time.Millisecond)
						continue
					}
					if err != nil {
						submitErr[w] = fmt.Errorf("serve: load test submit %d: %w", i, err)
						return
					}
					submitSecs[w] = append(submitSecs[w], time.Since(t0).Seconds())
					st.add(m.ID)
					break
				}
			}
		}(w)
	}

	// Pollers: sweep the pending set with instant status reads until every
	// campaign lands in a terminal state.
	var wgPoll sync.WaitGroup
	pollSecs := make([][]float64, cfg.Pollers)
	pollErr := make([]error, cfg.Pollers)
	for w := 0; w < cfg.Pollers; w++ {
		wgPoll.Add(1)
		go func(w int) {
			defer wgPoll.Done()
			client := NewClient(cfg.Addr)
			for {
				if time.Now().After(deadline) {
					pollErr[w] = fmt.Errorf("serve: load test timed out polling")
					return
				}
				pending, done := st.snapshot()
				if done {
					return
				}
				if len(pending) == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				// Stride so pollers spread over distinct campaigns.
				for i := w; i < len(pending); i += cfg.Pollers {
					t0 := time.Now()
					m, err := client.Status(pending[i], 0, 0)
					if err != nil {
						pollErr[w] = fmt.Errorf("serve: load test poll %s: %w", pending[i], err)
						return
					}
					pollSecs[w] = append(pollSecs[w], time.Since(t0).Seconds())
					if m.State.Terminal() {
						st.markTerminal(m.ID, m.State != StateDone)
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	wgSubmit.Wait()
	st.mu.Lock()
	st.allIn = true
	st.mu.Unlock()
	wgPoll.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range append(submitErr, pollErr...) {
		if err != nil {
			return nil, err
		}
	}

	var allSubmit, allPoll []float64
	for _, s := range submitSecs {
		allSubmit = append(allSubmit, s...)
	}
	for _, s := range pollSecs {
		allPoll = append(allPoll, s...)
	}
	st.mu.Lock()
	rep := &LoadReport{
		Campaigns:   cfg.Campaigns,
		Tenants:     len(cfg.Tenants),
		Submitters:  cfg.Submitters,
		Pollers:     cfg.Pollers,
		Rejected429: st.rejected,
		Failed:      st.failed,
		WallSeconds: wall,
		Submit:      report.SummarizeLatencies("submit", allSubmit, wall),
		Poll:        report.SummarizeLatencies("status-poll", allPoll, wall),
	}
	rep.Submit.RejectedCount = st.rejected
	st.mu.Unlock()

	rep.Passed = true
	gate := func(name string, limit time.Duration, actualSec float64) {
		if limit <= 0 {
			return
		}
		g := GateCheck{
			Name:     name,
			LimitMs:  float64(limit) / float64(time.Millisecond),
			ActualMs: actualSec * 1e3,
			Passed:   actualSec <= limit.Seconds(),
		}
		rep.Gates = append(rep.Gates, g)
		if !g.Passed {
			rep.Passed = false
		}
	}
	gate("submit-p99", cfg.P99SubmitMax, rep.Submit.P99)
	gate("poll-p99", cfg.P99PollMax, rep.Poll.P99)
	if rep.Failed > 0 {
		rep.Passed = false
	}
	cfg.Logf("serve: load test %d campaigns, %d tenants: submit p99 %.1fms, poll p99 %.1fms, %d rejected, wall %.1fs",
		rep.Campaigns, rep.Tenants, rep.Submit.P99*1e3, rep.Poll.P99*1e3, rep.Rejected429, wall)
	return rep, nil
}
