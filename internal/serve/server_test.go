package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postRaw submits a raw body straight to the submit endpoint, returning the
// status code and decoded error (if any).
func postRaw(t *testing.T, addr, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	json.Unmarshal(data, &er)
	return resp.StatusCode, er.Error, resp.Header
}

// TestSubmitValidationTable pins the HTTP-boundary error contract: every
// malformed or unresolvable submission is a 400 whose body carries the
// registry's "known alternatives" message, so a typo'd policy name tells
// the operator what would have worked.
func TestSubmitValidationTable(t *testing.T) {
	// No dataset: replay-mode submissions are rejected too.
	_, client := newTestDaemon(t, Config{Workers: 1})
	addr := client.base[len("http://"):]

	spec := func(body string) string {
		return fmt.Sprintf(`{"tenant":"t","spec":%s}`, body)
	}
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantErr    string
	}{
		{"malformed JSON", `{"tenant": nope}`, 400, "decoding submission"},
		{"unknown envelope field", `{"tenannt":"x","spec":{"version":1}}`, 400, "unknown field"},
		{"missing spec", `{"tenant":"x"}`, 400, `"spec" field`},
		{"bad priority", `{"priority":"urgent","spec":{"version":1,"mode":"replay","policy":{"name":"maxsigma"},"replay":{"n_init":4}}}`,
			400, `unknown priority "urgent" (known: high, normal, low)`},
		{"unknown spec field",
			spec(`{"version":1,"mode":"replay","policyy":{"name":"maxsigma"},"replay":{"n_init":4}}`),
			400, "unknown field"},
		{"wrong spec version",
			spec(`{"version":9,"mode":"replay","policy":{"name":"maxsigma"},"replay":{"n_init":4}}`),
			400, "spec version 9"},
		{"unknown mode",
			spec(`{"version":1,"mode":"batch","policy":{"name":"maxsigma"}}`),
			400, `unknown mode "batch"`},
		{"unknown policy",
			spec(`{"version":1,"mode":"replay","policy":{"name":"entropy"},"replay":{"n_init":4}}`),
			400, `unknown policy "entropy" (registered:`},
		{"unknown kernel",
			spec(`{"version":1,"mode":"replay","policy":{"name":"maxsigma"},"kernel":{"name":"periodic"},"replay":{"n_init":4}}`),
			400, `unknown kernel "periodic" (registered:`},
		{"unknown lab",
			spec(`{"version":1,"mode":"online","policy":{"name":"maxsigma"},"online":{"lab":{"name":"slurm"}}}`),
			400, `unknown lab "slurm" (registered:`},
		{"unknown batch strategy",
			spec(`{"version":1,"mode":"replay","policy":{"name":"maxsigma"},"replay":{"n_init":4,"batch":{"q":2,"strategy":"kriging"}}}`),
			400, `unknown batch strategy "kriging" (registered:`},
		{"replay needs dataset",
			spec(`{"version":1,"mode":"replay","policy":{"name":"maxsigma"},"replay":{"n_init":4}}`),
			400, "without -data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, msg, _ := postRaw(t, addr, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d want %d (error %q)", status, tc.wantStatus, msg)
			}
			if !strings.Contains(msg, tc.wantErr) {
				t.Fatalf("error %q does not contain %q", msg, tc.wantErr)
			}
		})
	}
}

func TestUnknownCampaignRoutes(t *testing.T) {
	_, client := newTestDaemon(t, Config{Workers: 1})
	if _, err := client.Get("c999999"); !is404(err) {
		t.Fatalf("Get unknown: %v", err)
	}
	if _, err := client.Status("c999999", 0, 0); !is404(err) {
		t.Fatalf("Status unknown: %v", err)
	}
	if _, err := client.Cancel("c999999"); !is404(err) {
		t.Fatalf("Cancel unknown: %v", err)
	}
}

func is404(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusNotFound
}

func TestSubmitRunStatusLifecycle(t *testing.T) {
	_, client := newTestDaemon(t, Config{Workers: 2, Dataset: testDataset(60, 11)})
	m, err := client.Submit("acme", "", replaySpecJSON("lifecycle", 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateQueued || m.Tenant != "acme" || m.Priority != DefaultPriority || m.Seq != 1 {
		t.Fatalf("submit meta = %+v", m)
	}

	final, err := client.WaitTerminal(m.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Seq <= m.Seq {
		t.Fatalf("seq did not advance: %d → %d", m.Seq, final.Seq)
	}

	detail, err := client.Get(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(detail.Spec) == 0 || len(detail.Result) == 0 {
		t.Fatalf("detail missing spec/result: %+v", detail.Meta)
	}
	var tr struct {
		Reason string `json:"Reason"`
	}
	if err := json.Unmarshal(detail.Result, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Reason != "max-iterations" {
		t.Fatalf("result reason = %q", tr.Reason)
	}

	// The list endpoints see the campaign under its tenant only.
	if metas, _ := client.List("acme"); len(metas) != 1 || metas[0].ID != m.ID {
		t.Fatalf("List(acme) = %+v", metas)
	}
	if metas, _ := client.List("other"); len(metas) != 0 {
		t.Fatalf("List(other) = %+v", metas)
	}

	// Long-poll on a terminal campaign with wait returns after the timeout
	// (no change to wait for) and promptly with seq 0.
	t0 := time.Now()
	if _, err := client.Status(m.ID, final.Seq, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) < 80*time.Millisecond {
		t.Fatalf("terminal long-poll returned too fast")
	}
	if got, err := client.Status(m.ID, 0, 10*time.Second); err != nil || got.Seq != final.Seq {
		t.Fatalf("status seq=0 long-poll: %+v %v", got, err)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	// One worker, queue cap 1: the first campaign occupies the worker, the
	// second fills the queue, the third bounces with 429 + Retry-After.
	_, client := newTestDaemon(t, Config{Workers: 1, QueueCap: 1, Dataset: testDataset(120, 13)})
	addr := client.base[len("http://"):]
	for i := 0; i < 2; i++ {
		if _, err := client.Submit("t", "", replaySpecJSON(fmt.Sprintf("bp-%d", i), int64(i+1), 80)); err != nil {
			t.Fatal(err)
		}
	}
	var status int
	var hdr http.Header
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := fmt.Sprintf(`{"tenant":"t","spec":%s}`, replaySpecJSON("bp-extra", 9, 80))
		var msg string
		status, msg, hdr = postRaw(t, addr, body)
		if status == http.StatusTooManyRequests {
			if !strings.Contains(msg, "queue full") {
				t.Fatalf("429 body: %q", msg)
			}
			break
		}
		// The worker may have drained the queue between submits; top it up
		// until the queue is genuinely full.
		if status != http.StatusCreated || time.Now().After(deadline) {
			t.Fatalf("no backpressure observed (last status %d)", status)
		}
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q", ra)
	}
}

func TestClientIsBackpressure(t *testing.T) {
	if !IsBackpressure(&APIError{Status: 429, Msg: "queue full"}) {
		t.Fatal("429 not classified as backpressure")
	}
	if IsBackpressure(&APIError{Status: 400}) || IsBackpressure(fmt.Errorf("boom")) {
		t.Fatal("non-429 classified as backpressure")
	}
}
