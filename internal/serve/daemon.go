package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/obs"
)

// Config configures a Daemon.
type Config struct {
	// StoreDir is the campaign store root (required).
	StoreDir string
	// Addr is the HTTP listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Workers bounds concurrently running campaigns (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the queued-campaign backlog; submissions beyond it
	// are rejected with 429 (default 256, negative = unbounded).
	QueueCap int
	// Dataset optionally provides the offline dataset; submissions whose
	// spec needs it (replay mode, the "replay" lab, mem_limit_paper_rule)
	// are rejected with 400 when it is absent.
	Dataset *dataset.Dataset
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// campaign is the in-memory runtime record of one campaign. The store holds
// the durable truth; this struct adds the mutable machinery — the change
// broadcast channel for long-polls and the cancellation hooks.
type campaign struct {
	mu        sync.Mutex
	meta      Meta
	spec      engine.CampaignSpec
	rawSpec   []byte        // canonical bytes as persisted
	changed   chan struct{} // closed and replaced on every meta mutation
	cancelRun context.CancelFunc
	cancelled bool // cancellation requested (any state)
}

// snapshot returns a copy of the current meta.
func (c *campaign) snapshot() Meta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta
}

// Daemon is the campaign-serving runtime: store + scheduler + worker pool +
// HTTP server. Create with New, start serving with Start, stop with Close.
type Daemon struct {
	cfg   Config
	store *Store
	sched *scheduler
	logf  func(string, ...any)

	mu        sync.Mutex
	campaigns map[string]*campaign

	httpServer *http.Server
	listener   net.Listener
	workersWG  sync.WaitGroup
	runCtx     context.Context
	runCancel  context.CancelFunc
}

// New opens the store, recovers persisted campaigns, and requeues every
// non-terminal one — the crash-recovery path. Online campaigns that were
// mid-flight resume from their checkpoint; replay campaigns rerun
// deterministically. The daemon is not yet serving HTTP; call Start.
func New(cfg Config) (*Daemon, error) {
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("serve: Config.StoreDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 256
	}
	if cfg.QueueCap < 0 {
		cfg.QueueCap = 0 // scheduler treats 0 as unbounded
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:       cfg,
		store:     store,
		sched:     newScheduler(cfg.QueueCap),
		logf:      logf,
		campaigns: map[string]*campaign{},
	}
	d.runCtx, d.runCancel = context.WithCancel(context.Background())
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// recover reloads the store and requeues non-terminal campaigns.
func (d *Daemon) recover() error {
	stored, err := d.store.LoadAll()
	if err != nil {
		return err
	}
	for _, s := range stored {
		spec, err := engine.ParseCampaignSpec(s.Spec)
		if err != nil {
			return fmt.Errorf("serve: recovering %s: %w", s.Meta.ID, err)
		}
		c := &campaign{meta: s.Meta, spec: spec, rawSpec: s.Spec, changed: make(chan struct{})}
		d.campaigns[s.Meta.ID] = c
		if s.Meta.State.Terminal() {
			continue
		}
		// queued and running both go back to queued: the run slot was lost
		// with the old process; the checkpoint (if any) carries the progress.
		if s.Meta.State != StateQueued {
			d.transition(c, func(m *Meta) { m.State = StateQueued; m.Error = "" })
		}
		obs.ServeResumed.Inc()
		if err := d.sched.enqueue(c); err != nil {
			return fmt.Errorf("serve: requeueing %s: %w", s.Meta.ID, err)
		}
		d.logf("serve: requeued %s (tenant=%s)", s.Meta.ID, s.Meta.Tenant)
	}
	return nil
}

// Start binds the listener and launches the worker pool and HTTP server.
// Returns once the daemon is accepting requests; Addr reports the bound
// address.
func (d *Daemon) Start() error {
	addr := d.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	d.listener = ln
	d.httpServer = &http.Server{Handler: d.handler()}
	for i := 0; i < d.cfg.Workers; i++ {
		d.workersWG.Add(1)
		go d.worker()
	}
	go func() {
		if err := d.httpServer.Serve(ln); err != nil && err != http.ErrServerClosed {
			d.logf("serve: http server: %v", err)
		}
	}()
	d.logf("serve: listening on %s (workers=%d queue-cap=%d)", ln.Addr(), d.cfg.Workers, d.cfg.QueueCap)
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (d *Daemon) Addr() string {
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// Close stops accepting requests, cancels running campaigns cooperatively,
// and waits for the workers to drain. Queued campaigns stay queued on disk.
func (d *Daemon) Close() error {
	var err error
	if d.httpServer != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = d.httpServer.Shutdown(ctx)
		cancel()
	}
	d.runCancel()
	d.sched.close()
	d.workersWG.Wait()
	return err
}

// Submit validates and enqueues one campaign. Validation failures return a
// *SubmitError carrying the HTTP status the front end should answer with.
func (d *Daemon) Submit(tenant, priority string, rawSpec []byte) (Meta, error) {
	if tenant == "" {
		tenant = "default"
	}
	if priority == "" {
		priority = DefaultPriority
	}
	if !ValidPriority(priority) {
		obs.ServeRejected.Inc(obs.ServeRejectInvalid)
		return Meta{}, &SubmitError{
			Status: http.StatusBadRequest,
			Msg:    fmt.Sprintf("unknown priority %q (known: high, normal, low)", priority),
		}
	}
	spec, err := engine.ParseCampaignSpec(rawSpec)
	if err != nil {
		obs.ServeRejected.Inc(obs.ServeRejectInvalid)
		return Meta{}, &SubmitError{Status: http.StatusBadRequest, Msg: err.Error()}
	}
	if spec.Mode == engine.ModeOnline {
		if err := engine.LabRegistered(spec.Online.Lab.Name); err != nil {
			obs.ServeRejected.Inc(obs.ServeRejectInvalid)
			return Meta{}, &SubmitError{Status: http.StatusBadRequest, Msg: err.Error()}
		}
	}
	if engine.SpecNeedsDataset(spec) && d.cfg.Dataset == nil {
		obs.ServeRejected.Inc(obs.ServeRejectInvalid)
		return Meta{}, &SubmitError{
			Status: http.StatusBadRequest,
			Msg:    "spec needs the offline dataset (replay mode, the \"replay\" lab, or mem_limit_paper_rule) but the daemon was started without -data",
		}
	}

	id := d.store.NewID()
	// Online campaigns checkpoint into their store directory so a killed
	// daemon resumes them; the stored spec records the injected path as
	// provenance of what actually ran.
	if spec.Mode == engine.ModeOnline && spec.Online.CheckpointPath == "" {
		o := *spec.Online
		o.CheckpointPath = d.store.CheckpointPath(id)
		spec.Online = &o
	}
	canonical, err := spec.Marshal()
	if err != nil {
		return Meta{}, &SubmitError{Status: http.StatusInternalServerError, Msg: err.Error()}
	}

	c := &campaign{
		meta:    Meta{ID: id, Tenant: tenant, Priority: priority, State: StateQueued, Seq: 1},
		spec:    spec,
		rawSpec: canonical,
		changed: make(chan struct{}),
	}
	if err := d.store.WriteSpec(id, canonical); err != nil {
		return Meta{}, &SubmitError{Status: http.StatusInternalServerError, Msg: err.Error()}
	}
	if err := d.store.WriteState(c.meta); err != nil {
		return Meta{}, &SubmitError{Status: http.StatusInternalServerError, Msg: err.Error()}
	}
	d.mu.Lock()
	d.campaigns[id] = c
	d.mu.Unlock()
	if err := d.sched.enqueue(c); err != nil {
		// Queue full: the campaign is on disk but will not run in this
		// process; mark it cancelled so it does not resurrect on restart.
		d.transition(c, func(m *Meta) {
			m.State = StateCancelled
			m.Error = "rejected: queue full"
		})
		obs.ServeRejected.Inc(obs.ServeRejectBackpressure)
		return Meta{}, &SubmitError{Status: http.StatusTooManyRequests, Msg: err.Error(), RetryAfter: 1}
	}
	obs.ServeSubmitted.Inc()
	return c.snapshot(), nil
}

// SubmitError is a validation or backpressure failure with its HTTP status.
type SubmitError struct {
	Status     int
	Msg        string
	RetryAfter int // seconds; nonzero adds a Retry-After header
}

func (e *SubmitError) Error() string { return e.Msg }

// Get returns a campaign's current meta.
func (d *Daemon) Get(id string) (Meta, bool) {
	d.mu.Lock()
	c, ok := d.campaigns[id]
	d.mu.Unlock()
	if !ok {
		return Meta{}, false
	}
	return c.snapshot(), true
}

// Spec returns a campaign's stored canonical spec bytes.
func (d *Daemon) Spec(id string) ([]byte, bool) {
	d.mu.Lock()
	c, ok := d.campaigns[id]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	return c.rawSpec, true
}

// Result returns a done campaign's canonical result bytes.
func (d *Daemon) Result(id string) ([]byte, error) {
	return d.store.ReadResult(id)
}

// List returns the metas of all campaigns, optionally filtered by tenant,
// sorted by ID (submission order).
func (d *Daemon) List(tenant string) []Meta {
	d.mu.Lock()
	out := make([]Meta, 0, len(d.campaigns))
	for _, c := range d.campaigns {
		m := c.snapshot()
		if tenant == "" || m.Tenant == tenant {
			out = append(out, m)
		}
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WaitChange blocks until the campaign's Seq exceeds afterSeq or the
// timeout elapses, then returns the current meta — the long-poll primitive
// behind GET /status.
func (d *Daemon) WaitChange(id string, afterSeq int64, timeout time.Duration) (Meta, bool) {
	d.mu.Lock()
	c, ok := d.campaigns[id]
	d.mu.Unlock()
	if !ok {
		return Meta{}, false
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		m := c.meta
		ch := c.changed
		c.mu.Unlock()
		if m.Seq > afterSeq || timeout <= 0 {
			return m, true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return c.snapshot(), true
		}
	}
}

// Cancel requests cancellation. Queued campaigns cancel immediately;
// running ones stop cooperatively at the next round boundary (partial
// progress stays checkpointed). Terminal campaigns are unaffected
// (idempotent). The second return is false for unknown IDs.
func (d *Daemon) Cancel(id string) (Meta, bool) {
	d.mu.Lock()
	c, ok := d.campaigns[id]
	d.mu.Unlock()
	if !ok {
		return Meta{}, false
	}
	c.mu.Lock()
	state := c.meta.State
	c.cancelled = true
	cancel := c.cancelRun
	c.mu.Unlock()
	if state.Terminal() {
		return c.snapshot(), true
	}
	if state == StateQueued && d.sched.remove(c) {
		d.finish(c, StateCancelled, "", nil)
		return c.snapshot(), true
	}
	if cancel != nil {
		cancel()
	}
	// Between queue removal failing and the worker observing c.cancelled
	// there is nothing to do: the worker checks the flag before running.
	return c.snapshot(), true
}

// transition applies a meta mutation, bumps Seq, persists, and wakes
// long-polls.
func (d *Daemon) transition(c *campaign, mutate func(*Meta)) {
	c.mu.Lock()
	mutate(&c.meta)
	c.meta.Seq++
	meta := c.meta
	ch := c.changed
	c.changed = make(chan struct{})
	c.mu.Unlock()
	close(ch)
	if err := d.store.WriteState(meta); err != nil {
		d.logf("serve: persisting %s: %v", meta.ID, err)
	}
}

// finish moves a campaign to a terminal state, persisting the result first
// (if any) so a crash between the two writes reruns the campaign and
// rewrites an identical result.
func (d *Daemon) finish(c *campaign, state State, errMsg string, result []byte) {
	if result != nil {
		if err := d.store.WriteResult(c.meta.ID, result); err != nil {
			d.logf("serve: writing result of %s: %v", c.meta.ID, err)
			state, errMsg = StateFailed, err.Error()
		}
	}
	d.transition(c, func(m *Meta) { m.State = state; m.Error = errMsg })
	switch state {
	case StateDone:
		obs.ServeFinished.Inc(obs.ServeStateDone)
	case StateFailed:
		obs.ServeFinished.Inc(obs.ServeStateFailed)
	case StateCancelled:
		obs.ServeFinished.Inc(obs.ServeStateCancelled)
	}
}

// worker is one slot of the bounded pool: claim, execute, release, repeat.
func (d *Daemon) worker() {
	defer d.workersWG.Done()
	for {
		c := d.sched.next()
		if c == nil {
			return
		}
		d.execute(c)
		d.sched.release(c.meta.Tenant)
	}
}

// execute runs one campaign end to end.
func (d *Daemon) execute(c *campaign) {
	c.mu.Lock()
	if c.cancelled {
		c.mu.Unlock()
		d.finish(c, StateCancelled, "", nil)
		return
	}
	ctx, cancel := context.WithCancel(d.runCtx)
	c.cancelRun = cancel
	c.mu.Unlock()
	defer func() {
		cancel()
		c.mu.Lock()
		c.cancelRun = nil
		c.mu.Unlock()
	}()

	d.transition(c, func(m *Meta) { m.State = StateRunning })
	obs.ServeRunning.Add(1)
	defer obs.ServeRunning.Add(-1)

	scope := engine.NewCampaignObs(c.meta.ID)
	v, err := engine.RunCampaignSpec(ctx, c.spec, d.cfg.Dataset, scope)
	if err != nil {
		d.finish(c, StateFailed, err.Error(), nil)
		return
	}
	result, merr := MarshalResult(v)
	if merr != nil {
		d.finish(c, StateFailed, merr.Error(), nil)
		return
	}
	// A cooperative cancellation returns a partial result without error;
	// daemon shutdown (runCtx) requeues instead, so restart resumes it.
	if ctx.Err() != nil {
		if d.runCtx.Err() != nil && !c.isCancelled() {
			d.transition(c, func(m *Meta) { m.State = StateQueued })
			return
		}
		d.finish(c, StateCancelled, "", result)
		return
	}
	d.finish(c, StateDone, "", result)
}

func (c *campaign) isCancelled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// QueueDepth reports the scheduler backlog (tests and ops).
func (d *Daemon) QueueDepth() int { return d.sched.depth() }

// marshalJSON is a small helper for HTTP responses.
func marshalJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"encoding response"}`)
	}
	return data
}
