package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreIDsAndRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2 := st.NewID(), st.NewID()
	if id1 != "c000001" || id2 != "c000002" {
		t.Fatalf("ids = %s, %s", id1, id2)
	}

	spec := []byte(replaySpecJSON("s", 1, 2))
	if err := st.WriteSpec(id1, spec); err != nil {
		t.Fatal(err)
	}
	m := Meta{ID: id1, Tenant: "a", Priority: "normal", State: StateQueued, Seq: 1}
	if err := st.WriteState(m); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadState(id1)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("state round trip: got %+v want %+v", got, m)
	}
	gotSpec, err := st.ReadSpec(id1)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSpec) != string(spec) {
		t.Fatalf("spec round trip mismatch")
	}

	// Result is absent until written, then round-trips.
	if _, err := st.ReadResult(id1); !os.IsNotExist(err) {
		t.Fatalf("ReadResult before write: %v", err)
	}
	if err := st.WriteResult(id1, []byte("{\"x\":1}\n")); err != nil {
		t.Fatal(err)
	}
	res, err := st.ReadResult(id1)
	if err != nil || string(res) != "{\"x\":1}\n" {
		t.Fatalf("result round trip: %q %v", res, err)
	}

	// Reopening continues the ID sequence past what is on disk.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if id := st2.NewID(); id != "c000002" {
		// only c000001 has a directory; c000002 was issued but never created
		t.Fatalf("reopened store issued %s", id)
	}
}

func TestStoreLoadAll(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Create out of order; LoadAll must sort by ID.
	for _, id := range []string{"c000002", "c000001"} {
		if err := st.WriteSpec(id, []byte(replaySpecJSON(id, 3, 2))); err != nil {
			t.Fatal(err)
		}
		if err := st.WriteState(Meta{ID: id, Tenant: "t", Priority: "low", State: StateDone, Seq: 4}); err != nil {
			t.Fatal(err)
		}
	}
	// Non-campaign entries are ignored.
	if err := os.WriteFile(filepath.Join(dir, "addr"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "not-a-campaign"), 0o755); err != nil {
		t.Fatal(err)
	}

	all, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Meta.ID != "c000001" || all[1].Meta.ID != "c000002" {
		t.Fatalf("LoadAll = %+v", all)
	}
}

func TestStoreLoadAllRejectsCorruptState(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "c000001"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c000001", "state.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadAll(); err == nil || !strings.Contains(err.Error(), "c000001") {
		t.Fatalf("corrupt state not surfaced: %v", err)
	}
}

func TestStateTerminal(t *testing.T) {
	for s, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v", s, !want)
		}
	}
}
