package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"alamr/internal/obs"
)

// The HTTP/JSON API (documented operator-facing in API.md):
//
//	POST   /v1/campaigns             submit  {tenant, priority, spec}
//	GET    /v1/campaigns?tenant=t    list metas
//	GET    /v1/campaigns/{id}        meta + spec + result (when finished)
//	GET    /v1/campaigns/{id}/status meta; ?seq=N&wait_ms=M long-polls
//	DELETE /v1/campaigns/{id}        cancel (idempotent)
//
// Every response is JSON; errors are {"error": "..."} with a 4xx/5xx status.

// SubmitRequest is the POST /v1/campaigns body: the scheduling envelope
// around a raw CampaignSpec. Unknown envelope fields are rejected, exactly
// like unknown spec fields.
type SubmitRequest struct {
	// Tenant is the fair-share accounting unit (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the lane: high, normal (default), or low.
	Priority string `json:"priority,omitempty"`
	// Spec is the campaign itself, engine.CampaignSpec JSON.
	Spec json.RawMessage `json:"spec"`
}

// CampaignDetail is the GET /v1/campaigns/{id} response: the meta record
// plus the canonical spec and, for finished campaigns, the result.
type CampaignDetail struct {
	Meta
	Spec   json.RawMessage `json:"spec,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// ListResponse is the GET /v1/campaigns response.
type ListResponse struct {
	Campaigns []Meta `json:"campaigns"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// maxSpecBytes bounds submission bodies; a spec is configuration, not data.
const maxSpecBytes = 1 << 20

// maxStatusWait caps the long-poll duration per request.
const maxStatusWait = 30 * time.Second

// handler builds the daemon's route table.
func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", timed(obs.ServeRouteSubmit, d.handleSubmit))
	mux.HandleFunc("GET /v1/campaigns", timed(obs.ServeRouteList, d.handleList))
	mux.HandleFunc("GET /v1/campaigns/{id}", timed(obs.ServeRouteGet, d.handleGet))
	mux.HandleFunc("GET /v1/campaigns/{id}/status", timed(obs.ServeRouteStatus, d.handleStatus))
	mux.HandleFunc("DELETE /v1/campaigns/{id}", timed(obs.ServeRouteCancel, d.handleCancel))
	return mux
}

// timed wraps a handler with the per-route latency histogram.
func timed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		obs.ServeHTTPSeconds.Observe(route, time.Since(t0).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(marshalJSON(v), '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxSpecBytes)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		obs.ServeRejected.Inc(obs.ServeRejectInvalid)
		writeError(w, http.StatusBadRequest, "decoding submission: %v", err)
		return
	}
	if len(req.Spec) == 0 {
		obs.ServeRejected.Inc(obs.ServeRejectInvalid)
		writeError(w, http.StatusBadRequest, "submission needs a %q field carrying the campaign spec", "spec")
		return
	}
	meta, err := d.Submit(req.Tenant, req.Priority, req.Spec)
	if err != nil {
		se, ok := err.(*SubmitError)
		if !ok {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if se.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
		}
		writeError(w, se.Status, "%s", se.Msg)
		return
	}
	writeJSON(w, http.StatusCreated, meta)
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	metas := d.List(r.URL.Query().Get("tenant"))
	writeJSON(w, http.StatusOK, ListResponse{Campaigns: metas})
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, ok := d.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	detail := CampaignDetail{Meta: meta}
	if spec, ok := d.Spec(id); ok {
		detail.Spec = json.RawMessage(spec)
	}
	if meta.State == StateDone || meta.State == StateCancelled {
		if result, err := d.Result(id); err == nil {
			detail.Result = json.RawMessage(result)
		} else if !os.IsNotExist(err) {
			writeError(w, http.StatusInternalServerError, "reading result: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, detail)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	var afterSeq int64
	if s := q.Get("seq"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seq %q: %v", s, err)
			return
		}
		afterSeq = v
	}
	var wait time.Duration
	if s := q.Get("wait_ms"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad wait_ms %q", s)
			return
		}
		wait = time.Duration(v) * time.Millisecond
		if wait > maxStatusWait {
			wait = maxStatusWait
		}
	}
	meta, ok := d.WaitChange(id, afterSeq, wait)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, ok := d.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}
