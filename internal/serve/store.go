// Package serve implements the campaign-serving daemon behind cmd/al-serve:
// an HTTP/JSON front end that accepts CampaignSpec submissions, a bounded
// worker pool that schedules many concurrent campaigns with per-tenant
// fair-share and priority lanes, and an on-disk store that makes every
// campaign durable — a SIGKILL'd daemon restarts and resumes all in-flight
// campaigns from their last checkpoint, bitwise identical to an uninterrupted
// run.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// State is one node of the campaign state machine. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled                         (cancelled before dispatch)
//	running → queued                           (daemon restart: requeued)
//
// The terminal states are never left.
type State string

// Campaign states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// valid reports whether s is a known state (used when loading state files).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Priority lanes, strongest first. The scheduler drains lanes strictly in
// this order; fair-share across tenants applies within a lane.
var Priorities = []string{"high", "normal", "low"}

// DefaultPriority is assumed when a submission names none.
const DefaultPriority = "normal"

// ValidPriority reports whether p names a priority lane.
func ValidPriority(p string) bool {
	for _, q := range Priorities {
		if p == q {
			return true
		}
	}
	return false
}

// Meta is the persistent, client-visible record of one campaign: identity,
// scheduling attributes, and the state machine. Seq increases on every
// mutation and drives the long-poll status endpoint. Meta carries no
// timestamps: the store's contents are a pure function of the submitted
// specs, which is what makes killed-and-restarted runs bitwise comparable
// to uninterrupted ones.
type Meta struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority string `json:"priority"`
	State    State  `json:"state"`
	// Error holds the failure message for StateFailed campaigns.
	Error string `json:"error,omitempty"`
	// Seq is the mutation counter: bump on every state change. Status
	// long-polls hand back the last Seq they saw and block until it grows.
	Seq int64 `json:"seq"`
}

// Store is the on-disk campaign store. Layout, one directory per campaign:
//
//	<root>/<id>/spec.json       canonical CampaignSpec (provenance)
//	<root>/<id>/state.json      Meta record, rewritten atomically per transition
//	<root>/<id>/result.json     canonical result, written before the terminal state
//	<root>/<id>/checkpoint.ckpt online-mode engine checkpoint (resume source)
//
// All writes are temp-file + rename in the campaign's directory, the same
// atomicity discipline as the engine's checkpoints: a crash leaves either
// the old file or the new one, never a torn mix.
type Store struct {
	root string
	mu   sync.Mutex
	next int // next numeric id suffix
}

// OpenStore opens (creating if necessary) the store rooted at dir and scans
// existing campaign directories so newly issued IDs never collide.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening store: %w", err)
	}
	st := &Store{root: dir, next: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, ok := parseID(e.Name()); ok && n >= st.next {
			st.next = n + 1
		}
	}
	return st, nil
}

// Root returns the store's root directory.
func (st *Store) Root() string { return st.root }

// NewID issues the next campaign ID (c000001, c000002, ...). IDs are
// sequential so directory listings sort in submission order.
func (st *Store) NewID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	id := fmt.Sprintf("c%06d", st.next)
	st.next++
	return id
}

func parseID(name string) (int, bool) {
	if !strings.HasPrefix(name, "c") || len(name) != 7 {
		return 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Dir returns the campaign's directory.
func (st *Store) Dir(id string) string { return filepath.Join(st.root, id) }

// CheckpointPath returns where the campaign's engine checkpoint lives. The
// daemon injects it into online-mode specs at submission so a restarted
// daemon resumes from it.
func (st *Store) CheckpointPath(id string) string {
	return filepath.Join(st.Dir(id), "checkpoint.ckpt")
}

// writeAtomic writes data to path via a temp file + rename in the same
// directory.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// WriteSpec creates the campaign directory and persists the canonical spec
// bytes. Called exactly once, at submission.
func (st *Store) WriteSpec(id string, spec []byte) error {
	dir := st.Dir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating campaign dir: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, "spec.json"), spec); err != nil {
		return fmt.Errorf("serve: writing spec: %w", err)
	}
	return nil
}

// WriteState persists the Meta record atomically.
func (st *Store) WriteState(m Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding state: %w", err)
	}
	if err := writeAtomic(filepath.Join(st.Dir(m.ID), "state.json"), append(data, '\n')); err != nil {
		return fmt.Errorf("serve: writing state: %w", err)
	}
	return nil
}

// WriteResult persists the canonical result bytes atomically. Written
// before the terminal state transition, so a crash in between reruns the
// campaign and rewrites an identical file.
func (st *Store) WriteResult(id string, data []byte) error {
	if err := writeAtomic(filepath.Join(st.Dir(id), "result.json"), data); err != nil {
		return fmt.Errorf("serve: writing result: %w", err)
	}
	return nil
}

// ReadSpec returns the stored canonical spec bytes.
func (st *Store) ReadSpec(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.Dir(id), "spec.json"))
}

// ReadState returns the stored Meta record.
func (st *Store) ReadState(id string) (Meta, error) {
	data, err := os.ReadFile(filepath.Join(st.Dir(id), "state.json"))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("serve: decoding state of %s: %w", id, err)
	}
	if m.ID != id || !m.State.valid() {
		return Meta{}, fmt.Errorf("serve: state of %s is inconsistent (id %q, state %q)", id, m.ID, m.State)
	}
	return m, nil
}

// ReadResult returns the stored result bytes, or os.ErrNotExist before the
// campaign finished.
func (st *Store) ReadResult(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.Dir(id), "result.json"))
}

// Stored is one campaign as recovered from disk.
type Stored struct {
	Meta Meta
	Spec []byte
}

// LoadAll recovers every campaign from disk, sorted by ID. Directories with
// unreadable or inconsistent records are reported as an error (the store is
// the system of record; silently dropping a campaign would lose work).
func (st *Store) LoadAll() ([]Stored, error) {
	entries, err := os.ReadDir(st.root)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning store: %w", err)
	}
	var out []Stored
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, ok := parseID(e.Name()); !ok {
			continue
		}
		meta, err := st.ReadState(e.Name())
		if err != nil {
			return nil, fmt.Errorf("serve: recovering %s: %w", e.Name(), err)
		}
		spec, err := st.ReadSpec(e.Name())
		if err != nil {
			return nil, fmt.Errorf("serve: recovering %s: %w", e.Name(), err)
		}
		out = append(out, Stored{Meta: meta, Spec: spec})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.ID < out[j].Meta.ID })
	return out, nil
}

// MarshalResult serializes a campaign result in the canonical form the
// store persists (indented, trailing newline). Tests compare a daemon's
// result.json bitwise against MarshalResult of a direct engine run.
func MarshalResult(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: encoding result: %w", err)
	}
	return append(data, '\n'), nil
}

// ErrQueueFull is returned by Submit when the scheduler queue is at
// capacity; the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: queue full")
