package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/engine"
)

// directResult runs a spec straight through the engine (no daemon) and
// returns the canonical result bytes — the bitwise reference every daemon
// test compares against.
func directResult(t *testing.T, rawSpec []byte, ds *dataset.Dataset) []byte {
	t.Helper()
	spec, err := engine.ParseCampaignSpec(rawSpec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := engine.RunCampaignSpec(context.Background(), spec, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalResult(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDaemonConcurrentBitwise is the serving-layer acceptance pin: N
// concurrent campaigns across two tenants and both modes, scheduled on a
// bounded pool, must each produce a result bitwise identical to running the
// same spec directly through the engine.
func TestDaemonConcurrentBitwise(t *testing.T) {
	ds := testDataset(90, 21)
	d, client := newTestDaemon(t, Config{Workers: 4, Dataset: ds})

	type sub struct {
		tenant string
		spec   json.RawMessage
	}
	var subs []sub
	for i := 0; i < 4; i++ {
		subs = append(subs,
			sub{"acme", replaySpecJSON(fmt.Sprintf("r-%d", i), int64(100+i), 5)},
			sub{"globex", onlineSpecJSON(fmt.Sprintf("o-%d", i), int64(200+i), 6, ds)},
		)
	}
	ids := make([]string, len(subs))
	for i, s := range subs {
		m, err := client.Submit(s.tenant, "", s.spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
	}
	for i, id := range ids {
		m, err := client.WaitTerminal(id, 120*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.State != StateDone {
			t.Fatalf("campaign %s: state %s (%s)", id, m.State, m.Error)
		}
		got, err := d.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		want := directResult(t, subs[i].spec, ds)
		if string(got) != string(want) {
			t.Fatalf("campaign %s (%s): daemon result differs from direct engine run", id, subs[i].tenant)
		}
	}
}

// TestDaemonCancelRunning: DELETE on a running campaign stops it at the
// next round boundary with the partial result stored and the cancelled
// stop reason recorded.
func TestDaemonCancelRunning(t *testing.T) {
	ds := testDataset(200, 31)
	d, client := newTestDaemon(t, Config{Workers: 1, Dataset: ds})
	m, err := client.Submit("t", "", replaySpecJSON("cancel-me", 7, 150))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running, then cancel.
	var seq int64
	for {
		st, err := client.Status(m.ID, seq, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("campaign finished before cancel: %s", st.State)
		}
		seq = st.Seq
	}
	if _, err := client.Cancel(m.ID); err != nil {
		t.Fatal(err)
	}
	final, err := client.WaitTerminal(m.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("state after cancel = %s (%s)", final.State, final.Error)
	}
	// The partial result is stored with the cancelled stop reason.
	res, err := d.Result(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Reason string `json:"Reason"`
	}
	if err := json.Unmarshal(res, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Reason != string(engine.StopCancelled) {
		t.Fatalf("partial result reason = %q", tr.Reason)
	}
	// Cancel is idempotent on terminal campaigns.
	again, err := client.Cancel(m.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("second cancel: %+v %v", again, err)
	}
}

// TestDaemonCancelQueued: cancelling a campaign that never got a worker
// finalizes it immediately without running anything.
func TestDaemonCancelQueued(t *testing.T) {
	ds := testDataset(120, 41)
	d, client := newTestDaemon(t, Config{Workers: 1, Dataset: ds})
	// Occupy the single worker, then queue a victim behind it.
	if _, err := client.Submit("t", "", replaySpecJSON("blocker", 1, 100)); err != nil {
		t.Fatal(err)
	}
	victim, err := client.Submit("t", "", replaySpecJSON("victim", 2, 100))
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Cancel(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("queued cancel state = %s", got.State)
	}
	if _, err := d.Result(victim.ID); !os.IsNotExist(err) {
		t.Fatalf("cancelled-while-queued campaign has a result: %v", err)
	}
}

// TestDaemonRestartResume: a daemon closed with campaigns still queued
// reopens the same store and finishes them, bitwise identical to direct
// runs — the graceful-restart half of the durability story (the SIGKILL
// half is TestDaemonSIGKILLResume).
func TestDaemonRestartResume(t *testing.T) {
	ds := testDataset(90, 51)
	store := t.TempDir()

	d1, err := New(Config{StoreDir: store, Workers: 1, Dataset: ds, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	client := NewClient(d1.Addr())
	specs := [][]byte{
		replaySpecJSON("restart-0", 61, 60),
		onlineSpecJSON("restart-1", 62, 8, ds),
		replaySpecJSON("restart-2", 63, 5),
	}
	ids := make([]string, len(specs))
	for i, s := range specs {
		m, err := client.Submit("t", "", s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
	}
	// Close while the first (long) campaign runs: it goes back to queued,
	// the rest never started.
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{StoreDir: store, Workers: 2, Dataset: ds, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	client2 := NewClient(d2.Addr())
	for i, id := range ids {
		m, err := client2.WaitTerminal(id, 120*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.State != StateDone {
			t.Fatalf("campaign %s after restart: %s (%s)", id, m.State, m.Error)
		}
		got, err := d2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := directResult(t, specs[i], ds); string(got) != string(want) {
			t.Fatalf("campaign %s: restarted result differs from direct run", id)
		}
	}
}

// TestServeDaemonHelper is not a test: it is the daemon subprocess the
// SIGKILL test spawns by re-exec'ing the test binary. It serves until
// killed, announcing its address through a file in the store root.
func TestServeDaemonHelper(t *testing.T) {
	store := os.Getenv("AL_SERVE_STORE")
	if store == "" {
		t.Skip("helper process: only meaningful when re-exec'd by the SIGKILL test")
	}
	ds, err := dataset.LoadFile(os.Getenv("AL_SERVE_DATA"))
	if err != nil {
		t.Fatalf("helper: loading dataset: %v", err)
	}
	d, err := New(Config{StoreDir: store, Workers: 2, Dataset: ds})
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("helper: %v", err)
	}
	if err := os.WriteFile(filepath.Join(store, "addr"), []byte(d.Addr()), 0o644); err != nil {
		t.Fatalf("helper: %v", err)
	}
	select {} // run until SIGKILLed
}

// TestDaemonSIGKILLResume is the durability acceptance pin: a daemon
// process running online campaigns is SIGKILLed mid-flight; a fresh daemon
// on the same store resumes every in-flight campaign from its last
// checkpoint and finishes all of them with results bitwise identical to
// uninterrupted direct runs.
func TestDaemonSIGKILLResume(t *testing.T) {
	ds := testDataset(150, 71)
	dir := t.TempDir()
	dsPath := filepath.Join(dir, "ds.csv")
	if err := ds.SaveFile(dsPath); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "store")

	cmd := exec.Command(os.Args[0], "-test.run=^TestServeDaemonHelper$")
	cmd.Env = append(os.Environ(), "AL_SERVE_STORE="+store, "AL_SERVE_DATA="+dsPath)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// Wait for the subprocess daemon to announce its address.
	var addr string
	for deadline := time.Now().Add(30 * time.Second); ; {
		if data, err := os.ReadFile(filepath.Join(store, "addr")); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon subprocess never announced its address")
		}
		time.Sleep(20 * time.Millisecond)
	}
	client := NewClient(addr)

	// Long online campaigns (checkpoint after every experiment) across two
	// tenants: plenty of mid-flight window to kill into.
	specs := [][]byte{
		onlineSpecJSON("kill-0", 81, 30, ds),
		onlineSpecJSON("kill-1", 82, 30, ds),
		onlineSpecJSON("kill-2", 83, 30, ds),
		onlineSpecJSON("kill-3", 84, 30, ds),
	}
	tenants := []string{"acme", "globex", "acme", "globex"}
	ids := make([]string, len(specs))
	for i, s := range specs {
		m, err := client.Submit(tenants[i], "", s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
	}

	// Kill the daemon the moment the first checkpoint lands on disk —
	// guaranteed mid-flight, past at least one experiment.
	for deadline := time.Now().Add(60 * time.Second); ; {
		found := false
		for _, id := range ids {
			if _, err := os.Stat(filepath.Join(store, id, "checkpoint.ckpt")); err == nil {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared before the kill deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same store, in-process this time, and let everything
	// finish.
	d, err := New(Config{StoreDir: store, Workers: 2, Dataset: ds, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client2 := NewClient(d.Addr())
	for i, id := range ids {
		m, err := client2.WaitTerminal(id, 120*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.State != StateDone {
			t.Fatalf("campaign %s after SIGKILL+restart: %s (%s)", id, m.State, m.Error)
		}
		got, err := d.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := directResult(t, specs[i], ds); string(got) != string(want) {
			t.Fatalf("campaign %s: resumed result differs bitwise from an unkilled run", id)
		}
	}
}
