package serve

import (
	"sync"

	"alamr/internal/obs"
)

// scheduler decides which queued campaign runs next on the daemon's bounded
// worker pool. Two rules, in order:
//
//  1. Strict priority lanes: no normal-lane campaign is dispatched while a
//     high-lane campaign waits, and no low-lane campaign while any higher
//     lane is non-empty.
//  2. Fair-share within a lane: among tenants with queued work, dispatch
//     the one with the fewest campaigns currently running; ties go to the
//     tenant dispatched least recently (then to the lexicographically
//     smaller name, so the choice is deterministic). Within one tenant the
//     queue is FIFO.
//
// The total queue is bounded: enqueue past the cap fails with ErrQueueFull,
// which the HTTP layer surfaces as 429 backpressure.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  []laneState // index = position in Priorities
	queued int
	cap    int
	closed bool

	running  map[string]int   // tenant → campaigns running now
	lastPick map[string]int64 // tenant → dispatch stamp (for tie-breaks)
	pickSeq  int64
}

type laneState struct {
	byTenant map[string][]*campaign // FIFO per tenant
}

func newScheduler(queueCap int) *scheduler {
	s := &scheduler{
		cap:      queueCap,
		lanes:    make([]laneState, len(Priorities)),
		running:  map[string]int{},
		lastPick: map[string]int64{},
		pickSeq:  1, // 0 means "never dispatched" in lastPick
	}
	for i := range s.lanes {
		s.lanes[i].byTenant = map[string][]*campaign{}
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func laneIndex(priority string) int {
	for i, p := range Priorities {
		if p == priority {
			return i
		}
	}
	return len(Priorities) - 1 // unknown → weakest lane (submit validates anyway)
}

// enqueue adds a campaign to its lane, or fails with ErrQueueFull.
func (s *scheduler) enqueue(c *campaign) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap > 0 && s.queued >= s.cap {
		return ErrQueueFull
	}
	lane := &s.lanes[laneIndex(c.meta.Priority)]
	lane.byTenant[c.meta.Tenant] = append(lane.byTenant[c.meta.Tenant], c)
	s.queued++
	obs.ServeQueueDepth.Set(float64(s.queued))
	s.cond.Signal()
	return nil
}

// remove pulls a still-queued campaign back out (cancellation). Reports
// whether the campaign was found; false means a worker already claimed it.
func (s *scheduler) remove(c *campaign) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	lane := &s.lanes[laneIndex(c.meta.Priority)]
	q := lane.byTenant[c.meta.Tenant]
	for i, qc := range q {
		if qc == c {
			lane.byTenant[c.meta.Tenant] = append(q[:i:i], q[i+1:]...)
			s.queued--
			obs.ServeQueueDepth.Set(float64(s.queued))
			return true
		}
	}
	return false
}

// next blocks until a campaign is dispatchable and claims it, bumping the
// tenant's running count. Returns nil after close.
func (s *scheduler) next() *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		for li := range s.lanes {
			if c := s.pickLocked(&s.lanes[li]); c != nil {
				s.queued--
				obs.ServeQueueDepth.Set(float64(s.queued))
				s.running[c.meta.Tenant]++
				s.lastPick[c.meta.Tenant] = s.pickSeq
				s.pickSeq++
				return c
			}
		}
		s.cond.Wait()
	}
}

// pickLocked chooses the fair-share tenant within one lane and pops its
// queue head. Called with s.mu held.
func (s *scheduler) pickLocked(lane *laneState) *campaign {
	best := ""
	for tenant, q := range lane.byTenant {
		if len(q) == 0 {
			continue
		}
		if best == "" || s.lessLocked(tenant, best) {
			best = tenant
		}
	}
	if best == "" {
		return nil
	}
	q := lane.byTenant[best]
	c := q[0]
	lane.byTenant[best] = q[1:]
	if len(lane.byTenant[best]) == 0 {
		delete(lane.byTenant, best)
	}
	return c
}

// lessLocked orders tenants for dispatch: fewest running, then least
// recently dispatched, then name.
func (s *scheduler) lessLocked(a, b string) bool {
	if s.running[a] != s.running[b] {
		return s.running[a] < s.running[b]
	}
	if s.lastPick[a] != s.lastPick[b] {
		return s.lastPick[a] < s.lastPick[b]
	}
	return a < b
}

// release returns a worker slot: the tenant's campaign finished.
func (s *scheduler) release(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running[tenant] > 0 {
		s.running[tenant]--
	}
	if s.running[tenant] == 0 {
		delete(s.running, tenant)
	}
}

// close wakes all workers; next returns nil immediately. Still-queued
// campaigns stay persisted as queued and are requeued on the next start.
func (s *scheduler) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// depth reports the current queue length (tests and metrics).
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}
