package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client is a minimal Go client for the daemon's HTTP API. The zero-config
// entry point for programs that drive campaigns from Go; everything it does
// maps 1:1 onto the documented curl calls.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a daemon at host:port (no scheme).
func NewClient(addr string) *Client {
	return &Client{base: "http://" + addr, http: &http.Client{}}
}

// APIError is a non-2xx response.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter int // seconds, from the Retry-After header (429s)
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Msg)
}

// IsBackpressure reports whether err is the daemon's 429 queue-full
// rejection; callers should wait RetryAfter seconds and resubmit.
func IsBackpressure(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusTooManyRequests
}

func (c *Client) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er errorResponse
		msg := string(bytes.TrimSpace(data))
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return &APIError{Status: resp.StatusCode, Msg: msg, RetryAfter: retry}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Submit posts one campaign and returns its meta record.
func (c *Client) Submit(tenant, priority string, spec json.RawMessage) (Meta, error) {
	body, err := json.Marshal(SubmitRequest{Tenant: tenant, Priority: priority, Spec: spec})
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	err = c.do(http.MethodPost, "/v1/campaigns", body, &m)
	return m, err
}

// Get fetches the full campaign record (meta + spec + result when done).
func (c *Client) Get(id string) (CampaignDetail, error) {
	var detail CampaignDetail
	err := c.do(http.MethodGet, "/v1/campaigns/"+url.PathEscape(id), nil, &detail)
	return detail, err
}

// Status fetches the meta record. With wait > 0 it long-polls: the daemon
// holds the request until Seq exceeds afterSeq or the wait elapses.
func (c *Client) Status(id string, afterSeq int64, wait time.Duration) (Meta, error) {
	path := fmt.Sprintf("/v1/campaigns/%s/status?seq=%d&wait_ms=%d",
		url.PathEscape(id), afterSeq, wait.Milliseconds())
	var m Meta
	err := c.do(http.MethodGet, path, nil, &m)
	return m, err
}

// Cancel requests cancellation (idempotent) and returns the current meta.
func (c *Client) Cancel(id string) (Meta, error) {
	var m Meta
	err := c.do(http.MethodDelete, "/v1/campaigns/"+url.PathEscape(id), nil, &m)
	return m, err
}

// List fetches all campaign metas, optionally filtered by tenant.
func (c *Client) List(tenant string) ([]Meta, error) {
	path := "/v1/campaigns"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var lr ListResponse
	err := c.do(http.MethodGet, path, nil, &lr)
	return lr.Campaigns, err
}

// WaitTerminal long-polls status until the campaign reaches a terminal
// state or the timeout elapses.
func (c *Client) WaitTerminal(id string, timeout time.Duration) (Meta, error) {
	deadline := time.Now().Add(timeout)
	var seq int64
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return Meta{}, fmt.Errorf("serve: campaign %s not terminal after %v", id, timeout)
		}
		if remain > maxStatusWait {
			remain = maxStatusWait
		}
		m, err := c.Status(id, seq, remain)
		if err != nil {
			return Meta{}, err
		}
		if m.State.Terminal() {
			return m, nil
		}
		seq = m.Seq
	}
}
