package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestLoadTestAgainstDaemon(t *testing.T) {
	ds := testDataset(80, 91)
	_, client := newTestDaemon(t, Config{Workers: 2, Dataset: ds})
	addr := client.base[len("http://"):]

	var specs []json.RawMessage
	for i := 0; i < 4; i++ {
		specs = append(specs, replaySpecJSON(fmt.Sprintf("lt-%d", i), int64(i+1), 3))
	}
	rep, err := RunLoadTest(LoadConfig{
		Addr:         addr,
		Specs:        specs,
		Tenants:      []string{"acme", "globex"},
		Campaigns:    10,
		Submitters:   2,
		Pollers:      2,
		P99SubmitMax: 10 * time.Second, // generous: correctness, not perf, here
		P99PollMax:   10 * time.Second,
		Timeout:      2 * time.Minute,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("load test failed: %+v", rep.Gates)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d campaigns failed", rep.Failed)
	}
	if rep.Submit.Count != 10 {
		t.Fatalf("submit count = %d", rep.Submit.Count)
	}
	if rep.Poll.Count == 0 {
		t.Fatal("no status polls recorded")
	}
	if len(rep.Gates) != 2 || rep.Gates[0].Name != "submit-p99" || rep.Gates[1].Name != "poll-p99" {
		t.Fatalf("gates = %+v", rep.Gates)
	}
	// The report marshals (BENCH_serve.json) and renders as a table.
	if _, err := json.MarshalIndent(rep, "", "  "); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "submit") || !strings.Contains(sb.String(), "status-poll") {
		t.Fatalf("table missing rows:\n%s", sb.String())
	}
}

func TestLoadTestGateFailure(t *testing.T) {
	ds := testDataset(60, 95)
	_, client := newTestDaemon(t, Config{Workers: 2, Dataset: ds})
	addr := client.base[len("http://"):]
	rep, err := RunLoadTest(LoadConfig{
		Addr:         addr,
		Specs:        []json.RawMessage{replaySpecJSON("gate", 3, 2)},
		Campaigns:    3,
		P99SubmitMax: time.Nanosecond, // impossible gate
		Timeout:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("impossible gate passed")
	}
	var violated bool
	for _, g := range rep.Gates {
		if g.Name == "submit-p99" && !g.Passed {
			violated = true
		}
	}
	if !violated {
		t.Fatalf("submit-p99 gate not recorded as violated: %+v", rep.Gates)
	}
}

func TestLoadTestConfigValidation(t *testing.T) {
	if _, err := RunLoadTest(LoadConfig{Specs: []json.RawMessage{[]byte("{}")}}); err == nil ||
		!strings.Contains(err.Error(), "address") {
		t.Fatalf("missing addr: %v", err)
	}
	if _, err := RunLoadTest(LoadConfig{Addr: "127.0.0.1:1"}); err == nil ||
		!strings.Contains(err.Error(), "spec") {
		t.Fatalf("missing specs: %v", err)
	}
}
