package serve

import (
	"testing"
	"time"
)

func qc(id, tenant, priority string) *campaign {
	return &campaign{
		meta:    Meta{ID: id, Tenant: tenant, Priority: priority, State: StateQueued},
		changed: make(chan struct{}),
	}
}

func TestSchedPriorityLanes(t *testing.T) {
	s := newScheduler(0)
	for _, c := range []*campaign{
		qc("c1", "a", "low"), qc("c2", "a", "normal"), qc("c3", "a", "high"),
	} {
		if err := s.enqueue(c); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 3; i++ {
		got = append(got, s.next().meta.ID)
	}
	if got[0] != "c3" || got[1] != "c2" || got[2] != "c1" {
		t.Fatalf("dispatch order %v, want high→normal→low", got)
	}
}

func TestSchedTenantFairShare(t *testing.T) {
	s := newScheduler(0)
	// Tenant a floods the queue; tenant b submits one campaign later. With
	// no releases, the fair-share rule interleaves b right after a's first
	// dispatch (a is running 1, b running 0).
	for _, c := range []*campaign{
		qc("c1", "a", "normal"), qc("c2", "a", "normal"),
		qc("c3", "a", "normal"), qc("c4", "b", "normal"),
	} {
		if err := s.enqueue(c); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 4; i++ {
		got = append(got, s.next().meta.ID)
	}
	want := []string{"c1", "c4", "c2", "c3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

func TestSchedFairShareAfterRelease(t *testing.T) {
	s := newScheduler(0)
	for _, c := range []*campaign{
		qc("c1", "a", "normal"), qc("c2", "a", "normal"), qc("c3", "b", "normal"),
	} {
		if err := s.enqueue(c); err != nil {
			t.Fatal(err)
		}
	}
	first := s.next() // a (ties break to the lexicographically smaller name)
	if first.meta.Tenant != "a" {
		t.Fatalf("first dispatch from %s", first.meta.Tenant)
	}
	s.release("a")
	// With a's slot released both tenants run 0 campaigns, but a was
	// dispatched more recently — b goes next.
	if c := s.next(); c.meta.ID != "c3" {
		t.Fatalf("post-release dispatch = %s, want c3 (tenant b)", c.meta.ID)
	}
}

func TestSchedQueueCap(t *testing.T) {
	s := newScheduler(2)
	if err := s.enqueue(qc("c1", "a", "normal")); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(qc("c2", "a", "normal")); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(qc("c3", "a", "normal")); err != ErrQueueFull {
		t.Fatalf("over-cap enqueue: %v, want ErrQueueFull", err)
	}
	// Draining one slot readmits.
	s.next()
	if err := s.enqueue(qc("c3", "a", "normal")); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

func TestSchedRemove(t *testing.T) {
	s := newScheduler(0)
	c := qc("c1", "a", "normal")
	if err := s.enqueue(c); err != nil {
		t.Fatal(err)
	}
	if !s.remove(c) {
		t.Fatal("remove of queued campaign failed")
	}
	if s.remove(c) {
		t.Fatal("second remove reported success")
	}
	if d := s.depth(); d != 0 {
		t.Fatalf("depth after remove = %d", d)
	}
}

func TestSchedCloseWakesWorkers(t *testing.T) {
	s := newScheduler(0)
	done := make(chan *campaign, 1)
	go func() { done <- s.next() }()
	time.Sleep(10 * time.Millisecond)
	s.close()
	select {
	case c := <-done:
		if c != nil {
			t.Fatalf("next after close returned %v", c.meta.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("next did not return after close")
	}
}
