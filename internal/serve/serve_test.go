package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"alamr/internal/dataset"
	_ "alamr/internal/online" // registers the online mode runner + sim lab
)

// testDataset builds a small dataset with well-conditioned responses (the
// same synthetic the online package's spec tests use), suitable for backing
// replay campaigns and the "replay" lab.
func testDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	combos := dataset.AllCombos()
	rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	ds := &dataset.Dataset{}
	for _, c := range combos[:n] {
		wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
			(1 + c.R0) / (0.3 + c.RhoIn)
		ds.Jobs = append(ds.Jobs, dataset.Job{
			P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
			WallSec: wall,
			CostNH:  wall * float64(c.P) / 3600,
			MemMB:   0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) / math.Sqrt(float64(c.P)),
		})
	}
	return ds
}

// replaySpecJSON builds a small replay-mode campaign spec.
func replaySpecJSON(name string, seed int64, iters int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(
		`{"version":1,"name":%q,"mode":"replay","policy":{"name":"maxsigma"},"seed":%d,"max_iterations":%d,"replay":{"n_init":8,"n_test":20}}`,
		name, seed, iters))
}

// onlineSpecJSON builds an online-mode campaign against the "replay" lab
// (fast: no physics), checkpointing after every experiment. The init design
// is pinned to the dataset's first job so the lab can always serve it (the
// package default init combo need not be in a subset dataset).
func onlineSpecJSON(name string, seed int64, n int, ds *dataset.Dataset) json.RawMessage {
	initDesign, err := json.Marshal([]dataset.Combo{ds.Jobs[0].Config()})
	if err != nil {
		panic(err)
	}
	return json.RawMessage(fmt.Sprintf(
		`{"version":1,"name":%q,"mode":"online","policy":{"name":"rgma"},"seed":%d,"online":{"lab":{"name":"replay"},"max_experiments":%d,"checkpoint_every":1,"init_design":%s}}`,
		name, seed, n, initDesign))
}

// newTestDaemon starts a daemon on a fresh store and ephemeral port, with
// cleanup registered, and returns it with a pointed client.
func newTestDaemon(t *testing.T, cfg Config) (*Daemon, *Client) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, NewClient(d.Addr())
}
