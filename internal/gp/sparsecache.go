package gp

import (
	"fmt"
	"math"

	"alamr/internal/mat"
	"alamr/internal/obs"
)

// SparseScoringCache is the ScoringCache analogue for the SoR surrogate:
// for every live candidate i it stores the inducing-kernel row
// kᵢ = k(xᵢ, Z), the A-solve vector wᵢ = A⁻¹kᵢ, and the SoR variance
// vᵢ = kᵢ·wᵢ, so re-scoring m candidates costs O(m·k) per AL iteration
// (one dot against β per candidate) instead of the O(m·k²) of solving each
// candidate afresh through Predict.
//
// The cache tracks its Sparse model across the loop's mutations:
//
//   - Append: A gains the rank-1 term u uᵀ (u = k_m/σ), so by
//     Sherman-Morrison A_new⁻¹ = A⁻¹ − z zᵀ/denom with z = A⁻¹u and
//     denom = 1 + uᵀz. Each stored wᵢ and vᵢ updates from the single
//     shared z in O(k): wᵢ ← wᵢ − z·(gᵢ/denom), vᵢ ← vᵢ − gᵢ²/denom with
//     gᵢ = z·kᵢ. That is the O(m·k) extend; the model computes z against
//     the pre-update factor and hands it over before running cholupdate.
//   - Refit / project (new hyperparameters or inducing set): every stored
//     row is wrong; the cache marks itself stale and the next Scores call
//     rebuilds all candidates in one parallel batched pass.
//   - Candidate removal: O(1) swap-delete, same scheme as ScoringCache.
//
// Determinism contract (mirrors ScoringCache, with one honest difference):
// the rebuild pass computes each candidate with exactly Predict's
// arithmetic (zEval row, Dot against β, serial scratch solve, Dot for the
// variance), so a freshly rebuilt cache agrees with Sparse.Predict
// bitwise. Sherman-Morrison-extended state is NOT bitwise against a fresh
// solve — the update is algebraically exact but rounds differently — so
// extended state is pinned to ≤1e-8 of direct scoring, and every
// Refit/project resynchronizes the cache exactly. DESIGN.md §Surrogate
// scaling records this contract.
type SparseScoringCache struct {
	s *Sparse

	// Slot-major per-candidate state; order maps pool position → slot so
	// removal swap-deletes the O(k) payload (see ScoringCache).
	xs [][]float64 // candidate features (private copies)
	km [][]float64 // kᵢ = k(xᵢ, Z)
	w  [][]float64 // wᵢ = A⁻¹kᵢ
	v  []float64   // vᵢ = kᵢ·wᵢ (SoR variance)

	order []int
	stale bool

	mu, sigma []float64 // pool-order output buffers, reused across calls
}

// NewSparseScoringCache attaches a posterior cache for the candidate rows
// of x to the fitted sparse model s. Candidate features are copied. The
// cache registers itself with s — every Append extends it, every
// projection invalidates it — until Close detaches it.
func NewSparseScoringCache(s *Sparse, x *mat.Dense) *SparseScoringCache {
	if !s.fitted {
		panic("gp: NewSparseScoringCache before Fit")
	}
	m := x.Rows()
	c := &SparseScoringCache{
		s:     s,
		xs:    make([][]float64, m),
		km:    make([][]float64, m),
		w:     make([][]float64, m),
		v:     make([]float64, m),
		order: make([]int, m),
		stale: true,
	}
	for i := 0; i < m; i++ {
		c.xs[i] = mat.CopyVec(x.Row(i))
		c.order[i] = i
	}
	s.caches = append(s.caches, c)
	return c
}

// Len reports the number of live candidates.
func (c *SparseScoringCache) Len() int { return len(c.order) }

// Close detaches the cache from its model.
func (c *SparseScoringCache) Close() {
	for i, o := range c.s.caches {
		if o == c {
			c.s.caches = append(c.s.caches[:i], c.s.caches[i+1:]...)
			break
		}
	}
}

// invalidate marks every stored row stale; called by project, i.e.
// whenever hyperparameters, the inducing set, or the factor changed
// wholesale.
func (c *SparseScoringCache) invalidate() {
	c.stale = true
	obs.CacheInvalidations.Inc()
}

// Scores returns the posterior mean and standard deviation for every live
// candidate in pool order. The returned slices are owned by the cache and
// overwritten by the next call.
func (c *SparseScoringCache) Scores() (mu, sigma []float64) {
	if c.stale {
		c.rebuild()
	} else {
		obs.CacheHits.Inc()
	}
	m := len(c.order)
	if cap(c.mu) < m {
		c.mu = make([]float64, m)
		c.sigma = make([]float64, m)
	}
	c.mu, c.sigma = c.mu[:m], c.sigma[:m]
	beta, yMean := c.s.beta, c.s.yMean
	k := len(beta)
	mat.ParallelFor(m, mat.ChunkFor(k+8), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			s := c.order[p]
			c.mu[p] = mat.Dot(c.km[s][:k], beta) + yMean
			variance := c.v[s]
			if variance < 0 {
				variance = 0
			}
			c.sigma[p] = math.Sqrt(variance)
		}
	})
	return c.mu, c.sigma
}

// Remove deletes the candidate at pool position p by O(1) swap-delete.
func (c *SparseScoringCache) Remove(p int) {
	if p < 0 || p >= len(c.order) {
		panic(fmt.Sprintf("gp: SparseScoringCache.Remove position %d out of range %d", p, len(c.order)))
	}
	s := c.order[p]
	c.order = append(c.order[:p], c.order[p+1:]...)
	last := len(c.xs) - 1
	if s != last {
		c.xs[s], c.km[s], c.w[s] = c.xs[last], c.km[last], c.w[last]
		c.v[s] = c.v[last]
		for q, t := range c.order {
			if t == last {
				c.order[q] = s
				break
			}
		}
	}
	c.xs, c.km, c.w = c.xs[:last], c.km[:last], c.w[:last]
	c.v = c.v[:last]
}

// rebuild recomputes every candidate against the model's current inducing
// set and factor with exactly Predict's per-point arithmetic (see the type
// comment for the bitwise contract).
func (c *SparseScoringCache) rebuild() {
	obs.CacheRebuilds.Inc()
	obs.ModelCacheOps.Inc(obs.ModelCacheSparseRebuild)
	s := c.s
	k := s.z.Rows()
	mat.ParallelFor(len(c.xs), mat.ChunkFor(k*k+4*k), func(lo, hi int) {
		fwd := make([]float64, k)
		for i := lo; i < hi; i++ {
			c.km[i] = growVec(c.km[i], k)
			c.w[i] = growVec(c.w[i], k)
			s.zEval(c.xs[i], 0, c.km[i])
			// Variance through Predict's forward half-solve (bitwise
			// contract); the full solve vector is kept separately because
			// the Sherman-Morrison extend updates it in O(k).
			s.aChol.ForwardSolveVecToSerial(fwd, c.km[i])
			c.v[i] = mat.Dot(fwd, fwd)
			s.aChol.SolveVecToSerial(c.w[i], c.km[i])
		}
	})
	c.stale = false
}

// extendAppend absorbs one model Append via Sherman-Morrison: z = A⁻¹u
// against the pre-update factor and denom = 1 + uᵀz are shared across all
// candidates, so each slot updates in O(k). kᵢ is unchanged (the inducing
// set did not move). A stale cache skips the work.
func (c *SparseScoringCache) extendAppend(z []float64, denom float64) {
	if c.stale || len(c.xs) == 0 {
		return
	}
	obs.CacheExtends.Inc()
	obs.ModelCacheOps.Inc(obs.ModelCacheSparseExtend)
	k := len(z)
	mat.ParallelFor(len(c.xs), mat.ChunkFor(2*k+16), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := mat.Dot(z, c.km[i][:k])
			scale := g / denom
			w := c.w[i]
			for j := range w {
				w[j] -= scale * z[j]
			}
			c.v[i] -= g * scale
		}
	})
}
