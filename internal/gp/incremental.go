package gp

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/mat"
	"alamr/internal/obs"
)

// Append adds one training sample to a fitted GP without re-optimizing
// hyperparameters, extending the Cholesky factor by a rank-1 border in
// O(n²) arithmetic. This is the fast path of the active-learning loop
// (Algorithm 1 in the paper): hyperparameters are re-optimized only
// periodically via Fit, while every iteration's model update uses Append.
//
// Storage grows with amortized capacity doubling: the packed Cholesky
// factor, the design matrix, and the target slice all extend by append
// rather than by reallocating and copying every call, so a burst of k
// appends moves O(n² + k²) memory instead of O(k·n²).
func (g *GP) Append(x []float64, y float64) error {
	if !g.fitted {
		return errors.New("gp: Append before Fit")
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return errors.New("gp: non-finite target in Append")
	}
	if len(x) != g.x.Cols() {
		return fmt.Errorf("gp: Append input dim %d, want %d", len(x), g.x.Cols())
	}
	n := g.x.Rows()

	// Border column: k(x_i, x_new) for existing rows, via the batch row
	// evaluator (hoisted hyperparameter transforms, precomputed norms).
	k := make([]float64, n)
	g.rowEval.Eval(x, 0, k)
	noise2 := math.Exp(2 * g.logNoise)
	kss := g.kern.Eval(x, x) + noise2 + g.chol.Jitter()

	// New factor row: l = L⁻¹ k, pivot d = sqrt(kss − lᵀl).
	l := g.chol.ForwardSolveVec(k)
	d2 := kss - mat.Dot(l, l)
	if d2 <= 0 {
		// Duplicate or near-duplicate input: fall back to a guarded pivot
		// proportional to the noise floor rather than failing.
		d2 = math.Max(noise2*1e-8, 1e-12)
	}
	g.chol.Extend(l, math.Sqrt(d2))

	// Grow the design matrix and (centred) targets. The centring mean is
	// kept fixed between full fits — a shifting mean would silently change
	// the values of all previous residuals.
	g.x = g.x.AppendRow(x)
	g.y = append(g.y, y-g.yMean)
	// Hyperparameters are unchanged on this path, so the row evaluator only
	// needs to absorb the new row — O(d) instead of rebuilding all n norms.
	g.rowEval.Extend(g.x)

	g.alpha = g.chol.SolveVec(g.y)
	g.lml = -0.5*mat.Dot(g.y, g.alpha) - 0.5*g.chol.LogDet() - 0.5*float64(n+1)*math.Log(2*math.Pi)
	obs.GPExtends.Inc()
	obs.GPTrainRows.Set(float64(n + 1))
	for _, c := range g.caches {
		c.extendAppend()
	}
	return nil
}

// Refit re-optimizes hyperparameters on the GP's current training set
// (warm-started from the present values) and rebuilds the posterior. Use
// together with Append: Append every iteration, Refit every few.
func (g *GP) Refit() error {
	if g.x == nil || g.x.Rows() == 0 {
		return ErrNoData
	}
	if !g.cfg.NoOptimize && len(g.y) >= 2 {
		g.optimizeHyperparams()
	}
	return g.precompute()
}

// TrainingData returns copies of the design matrix and (uncentred) targets.
func (g *GP) TrainingData() (*mat.Dense, []float64) {
	if g.x == nil {
		return nil, nil
	}
	y := make([]float64, len(g.y))
	for i, v := range g.y {
		y[i] = v + g.yMean
	}
	return g.x.Clone(), y
}
