package gp_test

import (
	"fmt"
	"math"

	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// ExampleGP shows the basic fit/predict cycle on noiseless 1D data: the
// posterior interpolates the observations and its uncertainty collapses at
// them.
func ExampleGP() {
	x := mat.NewDense(5, 1, []float64{0, 0.25, 0.5, 0.75, 1})
	y := make([]float64, 5)
	for i := 0; i < 5; i++ {
		y[i] = math.Sin(2 * math.Pi * x.At(i, 0))
	}
	g := gp.New(kernel.NewRBF(0.3, 1), gp.Config{
		Noise: 1e-4, FixedNoise: true, NoOptimize: true,
	})
	if err := g.Fit(x, y); err != nil {
		panic(err)
	}
	mean, std := g.PredictOne([]float64{0.25})
	fmt.Printf("at a training point: mean %.3f (true 1.000), std %.3f\n", mean, std)
	_, stdFar := g.PredictOne([]float64{3})
	fmt.Printf("far from data the prior std returns: %.2f\n", stdFar)
	// Output:
	// at a training point: mean 1.000 (true 1.000), std 0.000
	// far from data the prior std returns: 1.00
}

// ExampleGP_Append demonstrates the O(n²) incremental update used inside
// the active-learning loop.
func ExampleGP_Append() {
	x := mat.NewDense(2, 1, []float64{0, 1})
	g := gp.New(kernel.NewRBF(0.5, 1), gp.Config{
		Noise: 0.01, FixedNoise: true, NoOptimize: true,
	})
	if err := g.Fit(x, []float64{0, 1}); err != nil {
		panic(err)
	}
	_, before := g.PredictOne([]float64{0.5})
	if err := g.Append([]float64{0.5}, 0.5); err != nil {
		panic(err)
	}
	_, after := g.PredictOne([]float64{0.5})
	fmt.Printf("uncertainty at x=0.5 shrank: %v\n", after < before/2)
	fmt.Printf("training size: %d\n", g.NumTrain())
	// Output:
	// uncertainty at x=0.5 shrank: true
	// training size: 3
}
