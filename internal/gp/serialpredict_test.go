package gp

import (
	"math/rand"
	"sync"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// serialModel is the prediction surface under test: the batched
// buffer-writing path plus its single-goroutine twin.
type serialModel interface {
	Model
	PredictInto(xs *mat.Dense, mean, std []float64)
	PredictIntoSerial(xs *mat.Dense, mean, std []float64)
}

// serialFixtures fits one model per family on the same synthetic data.
func serialFixtures(t *testing.T, n int) map[string]serialModel {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	x := mat.NewDense(n, 3, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.Float64()*2)
		}
		y[i] = x.Row(i)[0] - 0.5*x.Row(i)[1]*x.Row(i)[2] + 0.1*rng.NormFloat64()
	}
	cfg := Config{Noise: 0.1, NoOptimize: true}
	out := map[string]serialModel{
		"exact":  New(kernel.NewRBF(0.8, 1.1), cfg),
		"sparse": NewSparse(kernel.NewRBF(0.8, 1.1), cfg, 24),
		"treed":  NewTreed(kernel.NewRBF(0.8, 1.1), cfg, 32),
	}
	for name, m := range out {
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return out
}

func serialPool(seed int64, m int) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	xs := mat.NewDense(m, 3, nil)
	for i := 0; i < m; i++ {
		for j := 0; j < 3; j++ {
			xs.Set(i, j, rng.Float64()*2)
		}
	}
	return xs
}

// TestPredictIntoSerialMatchesParallel: for every surrogate family the
// single-goroutine path is bitwise-identical to PredictInto at any worker
// setting — they share the per-candidate arithmetic, so only the dispatch
// differs.
func TestPredictIntoSerialMatchesParallel(t *testing.T) {
	models := serialFixtures(t, 120)
	xs := serialPool(32, 257)
	m := xs.Rows()
	for name, model := range models {
		serialMean := make([]float64, m)
		serialStd := make([]float64, m)
		model.PredictIntoSerial(xs, serialMean, serialStd)
		for _, workers := range []int{1, 4} {
			prev := mat.SetWorkers(workers)
			mean := make([]float64, m)
			std := make([]float64, m)
			model.PredictInto(xs, mean, std)
			mat.SetWorkers(prev)
			if !bitwiseEq(mean, serialMean) || !bitwiseEq(std, serialStd) {
				t.Fatalf("%s: PredictInto at %d workers diverges from PredictIntoSerial", name, workers)
			}
		}
	}
}

// TestPredictIntoSerialReentrant pins the concurrency contract the
// engine's shard workers rely on: many goroutines may call
// PredictIntoSerial on one fitted model at once (model state is read-only,
// scratch is call-local). Runs under -race via the race make target.
func TestPredictIntoSerialReentrant(t *testing.T) {
	models := serialFixtures(t, 90)
	xs := serialPool(33, 192)
	m := xs.Rows()
	for name, model := range models {
		want := make([]float64, 2*m)
		model.PredictIntoSerial(xs, want[:m], want[m:])
		const lanes = 8
		got := make([][]float64, lanes)
		var wg sync.WaitGroup
		for l := 0; l < lanes; l++ {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				buf := make([]float64, 2*m)
				model.PredictIntoSerial(xs, buf[:m], buf[m:])
				got[l] = buf
			}(l)
		}
		wg.Wait()
		for l := 0; l < lanes; l++ {
			if !bitwiseEq(got[l], want) {
				t.Fatalf("%s: concurrent PredictIntoSerial lane %d diverges from serial result", name, l)
			}
		}
	}
}

// TestTreedPredictRangeAllocs: treed batch prediction must not allocate
// per candidate — the shared scratch regrows only when a larger leaf shows
// up, so a whole shard costs a handful of allocations, not O(rows).
func TestTreedPredictRangeAllocs(t *testing.T) {
	model := serialFixtures(t, 300)["treed"].(*Treed)
	xs := serialPool(34, 512)
	mean := make([]float64, xs.Rows())
	std := make([]float64, xs.Rows())
	allocs := testing.AllocsPerRun(5, func() {
		model.PredictIntoSerial(xs, mean, std)
	})
	if allocs > 16 {
		t.Fatalf("treed PredictIntoSerial allocates %.0f times per 512-row batch, want O(leaf growth) <= 16", allocs)
	}
}
