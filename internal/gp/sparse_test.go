package gp

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

func sparseData(rng *rand.Rand, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Sin(4*a) + 0.5*math.Cos(3*b)
	}
	return x, y
}

func TestSparseFitValidation(t *testing.T) {
	s := NewSparse(kernel.NewRBF(0.3, 1), Config{Noise: 0.05}, 16)
	if err := s.Fit(nil, nil); err == nil {
		t.Fatal("nil fit accepted")
	}
	x := mat.NewDense(2, 1, []float64{0, 1})
	if err := s.Fit(x, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := s.Append([]float64{0}, 1); err == nil {
		t.Fatal("append before fit accepted")
	}
}

func TestSparsePredictBeforeFitPanics(t *testing.T) {
	s := NewSparse(kernel.NewRBF(0.3, 1), Config{}, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Predict(mat.NewDense(1, 1, []float64{0}))
}

func TestSparseMatchesExactWhenInducingIsAll(t *testing.T) {
	// With m >= n the SoR posterior mean equals the exact GP's.
	rng := rand.New(rand.NewSource(1))
	x, y := sparseData(rng, 20)
	cfg := Config{Noise: 0.1, FixedNoise: true, NoOptimize: true, NormalizeY: false}
	sp := NewSparse(kernel.NewRBF(0.4, 1), cfg, 20)
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ex := New(kernel.NewRBF(0.4, 1), cfg)
	if err := ex.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe, _ := sparseData(rng, 8)
	ms, _ := sp.Predict(probe)
	me, _ := ex.Predict(probe)
	for i := range ms {
		if math.Abs(ms[i]-me[i]) > 1e-5 {
			t.Fatalf("mean[%d]: sparse %g exact %g", i, ms[i], me[i])
		}
	}
}

func TestSparseAccuracyWithFewInducing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := sparseData(rng, 300)
	sp := NewSparse(kernel.NewRBF(0.4, 1), Config{Noise: 0.05, FixedNoise: true, NoOptimize: true}, 40)
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if sp.NumInducing() != 40 {
		t.Fatalf("inducing = %d want 40", sp.NumInducing())
	}
	probeX, probeY := sparseData(rng, 60)
	mean, _ := sp.Predict(probeX)
	var mse float64
	for i := range mean {
		d := mean[i] - probeY[i]
		mse += d * d
	}
	rmse := math.Sqrt(mse / float64(len(mean)))
	if rmse > 0.1 {
		t.Fatalf("sparse RMSE = %g, expected < 0.1 with 40 inducing points", rmse)
	}
}

func TestSparseAppendAbsorbsData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := sparseData(rng, 30)
	sp := NewSparse(kernel.NewRBF(0.4, 1), Config{Noise: 0.05, FixedNoise: true, NoOptimize: true}, 16)
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, b := rng.Float64(), rng.Float64()
		if err := sp.Append([]float64{a, b}, math.Sin(4*a)+0.5*math.Cos(3*b)); err != nil {
			t.Fatal(err)
		}
	}
	if sp.NumTrain() != 50 {
		t.Fatalf("train = %d want 50", sp.NumTrain())
	}
	mean, _ := sp.Predict(mat.NewDense(1, 2, []float64{0.5, 0.5}))
	want := math.Sin(2) + 0.5*math.Cos(1.5)
	if math.Abs(mean[0]-want) > 0.15 {
		t.Fatalf("mean = %g want ~%g", mean[0], want)
	}
}

func TestSparseDuplicateRowsInducing(t *testing.T) {
	// All-duplicate data: greedy selection stops early instead of looping.
	n := 20
	x := mat.NewDense(n, 1, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 0.5)
		y[i] = 1
	}
	sp := NewSparse(kernel.NewRBF(0.3, 1), Config{Noise: 0.1, FixedNoise: true, NoOptimize: true}, 8)
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if sp.NumInducing() != 1 {
		t.Fatalf("inducing = %d want 1 for duplicate data", sp.NumInducing())
	}
}

func TestSparseRefitAndInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := sparseData(rng, 60)
	var m Model = NewSparse(kernel.NewRBF(0.4, 1), Config{Noise: 0.05, Seed: 5}, 24)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	m.SetRestarts(0)
	if err := m.Refit(); err != nil {
		t.Fatal(err)
	}
	h := m.Hyperparams()
	if len(h) != 3 {
		t.Fatalf("hyperparams = %d want 3", len(h))
	}
	_, std := m.Predict(x)
	for _, v := range std {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bad std %g", v)
		}
	}
}

func TestGreedyInducingSpaceFilling(t *testing.T) {
	// Points on a line: the first few inducing picks must include both
	// extremes.
	n := 11
	x := mat.NewDense(n, 1, nil)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)/10)
	}
	z := greedyInducing(x, 3)
	vals := []float64{z.At(0, 0), z.At(1, 0), z.At(2, 0)}
	hasZero, hasOne := false, false
	for _, v := range vals {
		if v == 0 {
			hasZero = true
		}
		if v == 1 {
			hasOne = true
		}
	}
	if !hasZero || !hasOne {
		t.Fatalf("greedy selection missed the extremes: %v", vals)
	}
}

func BenchmarkSparseVsExactAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x, y := sparseData(rng, 300)
	b.Run("sparse-m32", func(b *testing.B) {
		sp := NewSparse(kernel.NewRBF(0.4, 1), Config{Noise: 0.05, NoOptimize: true}, 32)
		if err := sp.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sp.Append([]float64{rng.Float64(), rng.Float64()}, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		ex := New(kernel.NewRBF(0.4, 1), Config{Noise: 0.05, NoOptimize: true})
		if err := ex.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ex.Append([]float64{rng.Float64(), rng.Float64()}, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}
