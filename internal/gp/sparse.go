package gp

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// Sparse is a subset-of-regressors (SoR / Nyström) approximation to GP
// regression, the family of sparse methods the paper's related work (§II-B,
// sparse pseudo-input GPs) flags as compatible with cost- and memory-aware
// AL: m ≪ n inducing points carry the posterior, reducing the per-update
// cost from O(n³) to O(n m²).
//
// With inducing set Z, K_mm = k(Z,Z), K_nm = k(X,Z), and noise σ²:
//
//	A  = K_mm + σ⁻² K_nmᵀ K_nm
//	μ* = σ⁻² k_*mᵀ A⁻¹ K_nmᵀ y
//	v* = k_*mᵀ A⁻¹ k_*m        (SoR predictive variance)
//
// Hyperparameters are re-optimized on the inducing subset with an exact GP
// (a standard, documented heuristic), then projected onto the full data.
//
// Append is incremental: absorbing one observation adds exactly one rank-1
// term σ⁻² k_m k_mᵀ to A and one σ⁻² y·k_m term to the projected targets,
// so the factor is updated by a cholupdate in O(m²) instead of rebuilding
// the O(n·m²) projection. Attached SparseScoringCaches ride the same
// update through a Sherman-Morrison step, O(m) per candidate.
type Sparse struct {
	kern     kernel.Kernel
	cfg      Config
	m        int
	logNoise float64

	x     *mat.Dense // all training inputs
	y     []float64  // centred targets
	yMean float64

	z     *mat.Dense // inducing inputs
	aChol *mat.Cholesky
	beta  []float64 // A⁻¹ K_nmᵀ y / σ²
	kty   []float64 // σ⁻² K_nmᵀ y, maintained incrementally between projections
	zEval func(x []float64, from int, out []float64)

	caches []*SparseScoringCache
	fitted bool
}

var _ Model = (*Sparse)(nil)

// NewSparse creates a sparse GP with at most m inducing points (minimum 4).
func NewSparse(k kernel.Kernel, cfg Config, m int) *Sparse {
	if m < 4 {
		m = 4
	}
	cfg.setDefaults()
	return &Sparse{kern: k.Clone(), cfg: cfg, m: m, logNoise: math.Log(cfg.Noise)}
}

// NumInducing reports the current inducing-set size.
func (s *Sparse) NumInducing() int {
	if s.z == nil {
		return 0
	}
	return s.z.Rows()
}

// NumTrain reports the number of absorbed training samples.
func (s *Sparse) NumTrain() int {
	if s.x == nil {
		return 0
	}
	return s.x.Rows()
}

// Fit implements Model.
func (s *Sparse) Fit(x *mat.Dense, y []float64) error {
	if x == nil || x.Rows() == 0 {
		return ErrNoData
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("gp: sparse fit with %d rows and %d targets", x.Rows(), len(y))
	}
	s.x = x.Clone()
	s.yMean = 0
	if s.cfg.NormalizeY {
		s.yMean = mat.SumVec(y) / float64(len(y))
	}
	s.y = make([]float64, len(y))
	for i, v := range y {
		s.y[i] = v - s.yMean
	}
	s.z = greedyInducing(s.x, s.m)
	if !s.cfg.NoOptimize && len(y) >= 2 {
		if err := s.refitHyper(); err != nil {
			return err
		}
	}
	return s.project()
}

// greedyInducing picks up to m rows by farthest-point (max-min distance)
// selection, a standard space-filling inducing-set heuristic.
func greedyInducing(x *mat.Dense, m int) *mat.Dense {
	n := x.Rows()
	if m > n {
		m = n
	}
	chosen := make([]int, 0, m)
	chosen = append(chosen, 0)
	minDist := make([]float64, n)
	for i := 0; i < n; i++ {
		minDist[i] = mat.SqDist(x.Row(i), x.Row(0))
	}
	for len(chosen) < m {
		best, bestIdx := -1.0, -1
		for i := 0; i < n; i++ {
			if minDist[i] > best {
				best, bestIdx = minDist[i], i
			}
		}
		if bestIdx < 0 || best == 0 {
			break // all remaining points duplicate the chosen set
		}
		chosen = append(chosen, bestIdx)
		for i := 0; i < n; i++ {
			if d := mat.SqDist(x.Row(i), x.Row(bestIdx)); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	z := mat.NewDense(len(chosen), x.Cols(), nil)
	for r, i := range chosen {
		copy(z.Row(r), x.Row(i))
	}
	return z
}

// refitHyper optimizes hyperparameters with an exact GP on the inducing
// subset (targets of the rows nearest to each inducing point).
func (s *Sparse) refitHyper() error {
	// Gather the targets of the training rows the inducing points were
	// copied from: nearest-row lookup.
	zy := make([]float64, s.z.Rows())
	for i := 0; i < s.z.Rows(); i++ {
		bestD, bestJ := math.Inf(1), 0
		for j := 0; j < s.x.Rows(); j++ {
			if d := mat.SqDist(s.z.Row(i), s.x.Row(j)); d < bestD {
				bestD, bestJ = d, j
			}
		}
		zy[i] = s.y[bestJ]
	}
	sub := New(s.kern, Config{
		Noise:      math.Exp(s.logNoise),
		FixedNoise: s.cfg.FixedNoise,
		Restarts:   s.cfg.Restarts,
		Seed:       s.cfg.Seed,
		MaxIter:    s.cfg.MaxIter,
		NormalizeY: false, // already centred
	})
	if err := sub.Fit(s.z, zy); err != nil {
		return err
	}
	h := sub.Hyperparams()
	s.kern.SetParams(h[:len(h)-1])
	s.logNoise = h[len(h)-1]
	return nil
}

// project rebuilds A and β from the full training set and invalidates every
// attached scoring cache (the factor, and possibly Z and the
// hyperparameters, changed wholesale).
func (s *Sparse) project() error {
	m := s.z.Rows()
	noise2 := math.Exp(2 * s.logNoise)
	kmm := kernel.Gram(s.kern, s.z)
	knm := kernel.Cross(s.kern, s.x, s.z)

	// A = K_mm + σ⁻² K_nmᵀ K_nm (+ jitter).
	a := mat.Mul(knm.T(), knm)
	a.Scale(1 / noise2)
	aFull := mat.NewDense(m, m, nil)
	aFull.Add(a, kmm)
	aFull.Symmetrize()
	ch, err := mat.NewCholeskyJitter(aFull, 1e-8, 1e-2)
	if err != nil {
		return fmt.Errorf("gp: sparse projection failed: %w", err)
	}
	s.aChol = ch

	// β = σ⁻² A⁻¹ K_nmᵀ y.
	s.kty = knm.MulVecT(s.y)
	mat.ScaleVec(1/noise2, s.kty)
	s.beta = ch.SolveVec(s.kty)
	s.zEval = kernel.RowEvaluator(s.kern, s.z)
	s.fitted = true
	for _, c := range s.caches {
		c.invalidate()
	}
	return nil
}

// Predict implements Model.
//
// The per-point arithmetic — k_m through zEval, mean as one Dot against β,
// variance as ‖L⁻¹k_m‖² through the serial forward half-solve (the
// backward sweep cancels in the quadratic form, so it is never computed) —
// is exactly the SparseScoringCache rebuild path, so a freshly rebuilt
// cache and Predict agree bitwise.
func (s *Sparse) Predict(xs *mat.Dense) (mean, std []float64) {
	if !s.fitted {
		panic("gp: Sparse.Predict before Fit")
	}
	n := xs.Rows()
	mean = make([]float64, n)
	std = make([]float64, n)
	s.PredictInto(xs, mean, std)
	return mean, std
}

// PredictInto is Predict writing into caller-owned buffers, the
// allocation-free form the streamed pool uses per shard. mean and std must
// have xs.Rows() entries.
func (s *Sparse) PredictInto(xs *mat.Dense, mean, std []float64) {
	if !s.fitted {
		panic("gp: Sparse.PredictInto before Fit")
	}
	n := xs.Rows()
	if len(mean) != n || len(std) != n {
		panic(fmt.Sprintf("gp: PredictInto buffers %d/%d for %d rows", len(mean), len(std), n))
	}
	m := s.z.Rows()
	// Test points are independent: batch kernel rows via the cached
	// evaluator and fan out over the pool with per-chunk scratch.
	mat.ParallelFor(n, mat.ChunkFor(m*m+4*m), func(lo, hi int) {
		s.predictRange(xs, mean, std, lo, hi)
	})
}

// predictRange scores rows [lo, hi) with one scratch pair for the whole
// range. Prediction reads model state only (zEval is concurrent-safe, the
// factor solve writes caller scratch), so concurrent predictRange calls on
// one fitted model are race-free.
func (s *Sparse) predictRange(xs *mat.Dense, mean, std []float64, lo, hi int) {
	m := s.z.Rows()
	km := make([]float64, m)
	w := make([]float64, m)
	for i := lo; i < hi; i++ {
		s.zEval(xs.Row(i), 0, km)
		mean[i] = mat.Dot(km, s.beta) + s.yMean
		s.aChol.ForwardSolveVecToSerial(w, km)
		v := mat.Dot(w, w)
		if v < 0 {
			v = 0
		}
		std[i] = math.Sqrt(v)
	}
}

// PredictIntoSerial is PredictInto pinned to the calling goroutine —
// bitwise-equal output (same per-candidate arithmetic), no worker-pool
// dispatch. See GP.PredictIntoSerial for the use case and the concurrency
// contract.
func (s *Sparse) PredictIntoSerial(xs *mat.Dense, mean, std []float64) {
	if !s.fitted {
		panic("gp: Sparse.PredictInto before Fit")
	}
	n := xs.Rows()
	if len(mean) != n || len(std) != n {
		panic(fmt.Sprintf("gp: PredictIntoSerial buffers %d/%d for %d rows", len(mean), len(std), n))
	}
	s.predictRange(xs, mean, std, 0, n)
}

// Append implements Model: one observation adds the rank-1 term
// σ⁻² k_m k_mᵀ to A and σ⁻² y·k_m to the projected targets, so the factor
// absorbs it with an O(m²) cholupdate — no O(n·m²) re-projection. Attached
// caches are updated first (they need one solve against the pre-update
// factor for their Sherman-Morrison step).
func (s *Sparse) Append(x []float64, y float64) error {
	if !s.fitted {
		return errors.New("gp: Sparse.Append before Fit")
	}
	if len(x) != s.x.Cols() {
		return fmt.Errorf("gp: sparse append dim %d, want %d", len(x), s.x.Cols())
	}
	m := s.z.Rows()
	noise := math.Exp(s.logNoise)
	km := make([]float64, m)
	s.zEval(x, 0, km)
	u := make([]float64, m)
	for i, v := range km {
		u[i] = v / noise
	}
	if len(s.caches) > 0 {
		// A_new⁻¹ = A⁻¹ − z zᵀ/denom with z = A⁻¹u, denom = 1 + uᵀz.
		z := s.aChol.SolveVec(u)
		denom := 1 + mat.Dot(u, z)
		for _, c := range s.caches {
			c.extendAppend(z, denom)
		}
	}
	s.aChol.Rank1Update(u) // consumes u
	yc := y - s.yMean
	for i, v := range km {
		s.kty[i] += v * yc / (noise * noise)
	}
	s.beta = s.aChol.SolveVec(s.kty)
	s.x = s.x.AppendRow(x)
	s.y = append(s.y, yc)
	return nil
}

// Refit implements Model: re-selects inducing points, re-optimizes
// hyperparameters, and re-projects.
func (s *Sparse) Refit() error {
	if s.x == nil {
		return ErrNoData
	}
	s.z = greedyInducing(s.x, s.m)
	if !s.cfg.NoOptimize && len(s.y) >= 2 {
		if err := s.refitHyper(); err != nil {
			return err
		}
	}
	return s.project()
}

// Hyperparams implements Model.
func (s *Sparse) Hyperparams() []float64 {
	return append(s.kern.Params(), s.logNoise)
}

// SetRestarts implements Model.
func (s *Sparse) SetRestarts(n int) {
	if n < 0 {
		n = 0
	}
	s.cfg.Restarts = n
}
