package gp

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// multiFidData synthesizes a correlated two-level dataset over a 2-dim
// point space with fidelity dial in column 2 of a 3-dim feature row:
// f_hi = 1.8·f_lo + δ with a smooth discrepancy.
func multiFidData(rng *rand.Rand, nLo, nHi int, ladder []float64) (*mat.Dense, []float64) {
	n := nLo + nHi
	x := mat.NewDense(n, 3, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		lo := math.Sin(5*a) + b*b
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if i < nLo {
			x.Set(i, 2, ladder[0])
			y[i] = lo
		} else {
			x.Set(i, 2, ladder[len(ladder)-1])
			y[i] = 1.8*lo + 0.3*math.Cos(3*a) - 0.2*b
		}
	}
	return x, y
}

func stripCol(x *mat.Dense, dim int) *mat.Dense {
	out := mat.NewDense(x.Rows(), x.Cols()-1, nil)
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		dst := out.Row(i)
		copy(dst[:dim], row[:dim])
		copy(dst[dim:], row[dim+1:])
	}
	return out
}

func newTestMultiFid(t *testing.T, ladder, rho []float64, cfg Config) *MultiFid {
	t.Helper()
	m, err := NewMultiFid(kernel.NewRBF(0.5, 1), cfg, MultiFidConfig{Dim: 2, Ladder: ladder, Rho: rho})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiFidConfigValidation(t *testing.T) {
	k := kernel.NewRBF(0.5, 1)
	cases := []MultiFidConfig{
		{Dim: 2},                              // empty ladder
		{Dim: 2, Ladder: []float64{0.5, 0.5}}, // not ascending
		{Dim: 2, Ladder: []float64{0, 1}, Rho: []float64{1}}, // rho length
		{Dim: -1, Ladder: []float64{0, 1}},                   // bad column
	}
	for i, mf := range cases {
		if _, err := NewMultiFid(k, Config{}, mf); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, mf)
		}
	}
}

func TestMultiFidRejectsOffLadderRows(t *testing.T) {
	m := newTestMultiFid(t, []float64{0, 1}, nil, Config{NoOptimize: true})
	x := mat.NewDense(2, 3, []float64{0.1, 0.2, 0, 0.3, 0.4, 0.5})
	if err := m.Fit(x, []float64{1, 2}); err == nil {
		t.Fatal("off-ladder dial accepted")
	}
}

func TestMultiFidRequiresBaseLevel(t *testing.T) {
	m := newTestMultiFid(t, []float64{0, 1}, nil, Config{NoOptimize: true})
	x := mat.NewDense(2, 3, []float64{0.1, 0.2, 1, 0.3, 0.4, 1})
	if err := m.Fit(x, []float64{1, 2}); err == nil {
		t.Fatal("fit with empty base level accepted")
	}
}

// TestMultiFidOneLevelBitwiseExactGP is the degenerate-ladder half of the
// single-fidelity equivalence pin: a MultiFid with a one-rung ladder IS the
// exact GP on the stripped features — identical fit, identical predictions,
// identical hyperparameters, bit for bit.
func TestMultiFidOneLevelBitwiseExactGP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := multiFidData(rng, 40, 0, []float64{0.25})
	cfg := Config{Noise: 0.05, Seed: 11, NormalizeY: true}

	m := newTestMultiFid(t, []float64{0.25}, nil, cfg)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ref := New(kernel.NewRBF(0.5, 1), cfg)
	if err := ref.Fit(stripCol(x, 2), y); err != nil {
		t.Fatal(err)
	}

	xt, _ := multiFidData(rand.New(rand.NewSource(8)), 25, 0, []float64{0.25})
	gotMu, gotSig := m.Predict(xt)
	wantMu, wantSig := ref.Predict(stripCol(xt, 2))
	for i := range gotMu {
		if gotMu[i] != wantMu[i] || gotSig[i] != wantSig[i] {
			t.Fatalf("row %d: multifid (%v, %v) != exact (%v, %v)",
				i, gotMu[i], gotSig[i], wantMu[i], wantSig[i])
		}
	}
	gh, wh := m.Hyperparams(), ref.Hyperparams()
	if len(gh) != len(wh) {
		t.Fatalf("hyperparams length %d != %d", len(gh), len(wh))
	}
	for i := range gh {
		if gh[i] != wh[i] {
			t.Fatalf("hyperparam %d: %v != %v", i, gh[i], wh[i])
		}
	}
}

// TestMultiFidRhoZeroMatchesIndependentGPs pins the ρ=0 decoupling: with
// the inter-level scale frozen at zero the top level is an independent GP
// on its own observations alone, so predictions agree within ≤1e-8 (the
// satellite's bound; the only arithmetic difference is the recursion
// adding a zero-scaled term).
func TestMultiFidRhoZeroMatchesIndependentGPs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ladder := []float64{0, 1}
	x, y := multiFidData(rng, 30, 30, ladder)
	cfg := Config{Noise: 0.05, Seed: 3, NormalizeY: true}

	m := newTestMultiFid(t, ladder, []float64{0, 0}, cfg)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	// Independent reference: the top level's own rows only, seeded the way
	// the multifid seeds level 1.
	var hiRows []int
	for i := 0; i < x.Rows(); i++ {
		if x.At(i, 2) == ladder[1] {
			hiRows = append(hiRows, i)
		}
	}
	xHi := mat.NewDense(len(hiRows), 2, nil)
	yHi := make([]float64, len(hiRows))
	for r, i := range hiRows {
		xHi.Set(r, 0, x.At(i, 0))
		xHi.Set(r, 1, x.At(i, 1))
		yHi[r] = y[i]
	}
	refCfg := cfg
	refCfg.Seed++
	ref := New(kernel.NewRBF(0.5, 1), refCfg)
	if err := ref.Fit(xHi, yHi); err != nil {
		t.Fatal(err)
	}

	xt, _ := multiFidData(rand.New(rand.NewSource(10)), 0, 20, ladder)
	gotMu, gotSig := m.Predict(xt)
	wantMu, wantSig := ref.Predict(stripCol(xt, 2))
	for i := range gotMu {
		if math.Abs(gotMu[i]-wantMu[i]) > 1e-8 || math.Abs(gotSig[i]-wantSig[i]) > 1e-8 {
			t.Fatalf("row %d: rho=0 multifid (%v, %v) vs independent (%v, %v)",
				i, gotMu[i], gotSig[i], wantMu[i], wantSig[i])
		}
	}
}

// TestMultiFidLearnsCorrelatedLevels checks the point of co-kriging: with
// correlated levels and only a few expensive observations, borrowing the
// cheap level must beat ignoring it.
func TestMultiFidLearnsCorrelatedLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ladder := []float64{0, 1}
	x, y := multiFidData(rng, 60, 10, ladder)
	cfg := Config{Noise: 0.05, Seed: 5, NormalizeY: true}

	m := newTestMultiFid(t, ladder, nil, cfg)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	rho := m.Rho()
	if math.Abs(rho[1]-1.8) > 0.5 {
		t.Fatalf("estimated rho = %v, want near 1.8", rho[1])
	}

	// Independent top-level-only baseline.
	var hiX [][]float64
	var hiY []float64
	for i := 0; i < x.Rows(); i++ {
		if x.At(i, 2) == ladder[1] {
			hiX = append(hiX, []float64{x.At(i, 0), x.At(i, 1)})
			hiY = append(hiY, y[i])
		}
	}
	ref := New(kernel.NewRBF(0.5, 1), cfg)
	if err := ref.Fit(rowsDense(hiX), hiY); err != nil {
		t.Fatal(err)
	}

	xt, yt := multiFidData(rand.New(rand.NewSource(13)), 0, 50, ladder)
	mfMu, _ := m.Predict(xt)
	refMu, _ := ref.Predict(stripCol(xt, 2))
	var mfErr, refErr float64
	for i := range yt {
		mfErr += (mfMu[i] - yt[i]) * (mfMu[i] - yt[i])
		refErr += (refMu[i] - yt[i]) * (refMu[i] - yt[i])
	}
	if mfErr >= refErr {
		t.Fatalf("co-kriging RMSE² %v not below single-fidelity %v", mfErr, refErr)
	}
}

// TestMultiFidAppendRefitResumesBitwise pins the determinism the online
// checkpoint relies on: fitting on a prefix and replaying the remaining
// observations through Append (with a Refit mid-stream) must land in
// exactly the state of a second model driven identically.
func TestMultiFidAppendRefitResumesBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ladder := []float64{0, 0.5, 1}
	x, y := multiFidData(rng, 24, 24, []float64{0, 1})
	// Re-dial a third of the rows to the middle rung for a 3-level stream.
	for i := 0; i < x.Rows(); i += 3 {
		x.Set(i, 2, 0.5)
	}
	cfg := Config{Noise: 0.05, Seed: 17, NormalizeY: true}

	drive := func() *MultiFid {
		m := newTestMultiFid(t, ladder, nil, cfg)
		init := 12
		xi := mat.NewDense(init, 3, nil)
		for i := 0; i < init; i++ {
			copy(xi.Row(i), x.Row(i))
		}
		if err := m.Fit(xi, y[:init]); err != nil {
			t.Fatal(err)
		}
		for i := init; i < x.Rows(); i++ {
			if err := m.Append(x.Row(i), y[i]); err != nil {
				t.Fatal(err)
			}
			if i == 30 {
				if err := m.Refit(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return m
	}
	a, b := drive(), drive()
	xt, _ := multiFidData(rand.New(rand.NewSource(22)), 10, 10, []float64{0, 1})
	aMu, aSig := a.Predict(xt)
	bMu, bSig := b.Predict(xt)
	for i := range aMu {
		if aMu[i] != bMu[i] || aSig[i] != bSig[i] {
			t.Fatalf("row %d: replayed models diverge: (%v,%v) vs (%v,%v)",
				i, aMu[i], aSig[i], bMu[i], bSig[i])
		}
	}
	ah, bh := a.Hyperparams(), b.Hyperparams()
	for i := range ah {
		if ah[i] != bh[i] {
			t.Fatalf("hyperparam %d diverges: %v vs %v", i, ah[i], bh[i])
		}
	}
}

// TestMultiFidCacheMatchesPredict pins the per-level incremental cache to
// direct prediction across the loop's mutations (append, refit, removal):
// selections must agree exactly, values to the ScoringCache's ≤1e-12 class.
func TestMultiFidCacheMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ladder := []float64{0, 1}
	x, y := multiFidData(rng, 30, 20, ladder)
	cfg := Config{Noise: 0.05, Seed: 7, NormalizeY: true}
	m := newTestMultiFid(t, ladder, nil, cfg)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	pool, _ := multiFidData(rand.New(rand.NewSource(32)), 15, 15, ladder)
	cache := NewPoolCache(m, pool)
	if cache == nil {
		t.Fatal("NewPoolCache returned nil for MultiFid")
	}
	defer cache.Close()
	if _, ok := cache.(*MultiFidCache); !ok {
		t.Fatalf("NewPoolCache returned %T, want *MultiFidCache", cache)
	}

	check := func(step string) {
		t.Helper()
		mu, sig := cache.Scores()
		wantMu, wantSig := m.Predict(pool)
		for i := range mu {
			if math.Abs(mu[i]-wantMu[i]) > 1e-8 || math.Abs(sig[i]-wantSig[i]) > 1e-8 {
				t.Fatalf("%s row %d: cache (%v, %v) vs predict (%v, %v)",
					step, i, mu[i], sig[i], wantMu[i], wantSig[i])
			}
		}
		gains := cache.(FidelityScorer).TopInfoGains()
		wantGains := m.TopInfoGains(pool)
		for i := range gains {
			if math.Abs(gains[i]-wantGains[i]) > 1e-8 {
				t.Fatalf("%s row %d: gain %v vs %v", step, i, gains[i], wantGains[i])
			}
		}
	}
	check("fresh")

	if err := m.Append(pool.Row(3), 0.7); err != nil {
		t.Fatal(err)
	}
	check("after append")

	cache.Remove(3)
	pool = pool.RemoveRow(3)
	check("after remove")

	if err := m.Refit(); err != nil {
		t.Fatal(err)
	}
	check("after refit")
}

// TestMultiFidLateLevelAppears drives a level from empty through its first
// observations via Append and checks the cache follows along.
func TestMultiFidLateLevelAppears(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ladder := []float64{0, 1}
	x, y := multiFidData(rng, 25, 0, ladder) // no top-level data at fit time
	cfg := Config{Noise: 0.05, Seed: 9, NormalizeY: true, NoOptimize: true}
	m := newTestMultiFid(t, ladder, nil, cfg)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	pool, _ := multiFidData(rand.New(rand.NewSource(42)), 8, 8, ladder)
	cache := NewMultiFidCache(m, pool)
	defer cache.Close()
	_, sig0 := cache.Scores()
	top := append([]float64(nil), sig0...)

	// First top-level observation: level 1's δ-GP appears.
	if err := m.Append(pool.Row(10), 1.5); err != nil {
		t.Fatal(err)
	}
	mu, sig := cache.Scores()
	wantMu, wantSig := m.Predict(pool)
	for i := range mu {
		if math.Abs(mu[i]-wantMu[i]) > 1e-8 || math.Abs(sig[i]-wantSig[i]) > 1e-8 {
			t.Fatalf("row %d: cache (%v, %v) vs predict (%v, %v)", i, mu[i], sig[i], wantMu[i], wantSig[i])
		}
	}
	if sig[10] >= top[10] {
		t.Fatalf("observed candidate's sigma did not shrink: %v -> %v", top[10], sig[10])
	}
}
