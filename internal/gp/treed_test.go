package gp

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

func treedData(rng *rand.Rand, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		// Piecewise-smooth target: a different regime per half-space — the
		// situation local models exist for.
		if a < 0.5 {
			y[i] = math.Sin(6*a) + b
		} else {
			y[i] = 3 - 4*a + 0.5*b
		}
	}
	return x, y
}

func TestTreedFitValidation(t *testing.T) {
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, NoOptimize: true}, 8)
	if err := tr.Fit(nil, nil); err == nil {
		t.Fatal("nil fit accepted")
	}
	x := mat.NewDense(2, 1, []float64{0, 1})
	if err := tr.Fit(x, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestTreedPredictBeforeFitPanics(t *testing.T) {
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{}, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Predict(mat.NewDense(1, 1, []float64{0}))
}

func TestTreedSplitsLargeData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := treedData(rng, 120)
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, FixedNoise: true, NoOptimize: true}, 16)
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() < 4 {
		t.Fatalf("leaves = %d, expected a real partition", tr.NumLeaves())
	}
}

func TestTreedSmallDataSingleLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := treedData(rng, 10)
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, NoOptimize: true}, 16)
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("leaves = %d want 1", tr.NumLeaves())
	}
}

func TestTreedAccuracyOnPiecewiseTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := treedData(rng, 200)
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.02, Seed: 4}, 32)
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probeX, probeY := treedData(rng, 50)
	mean, std := tr.Predict(probeX)
	var mse float64
	for i := range mean {
		d := mean[i] - probeY[i]
		mse += d * d
		if std[i] < 0 {
			t.Fatal("negative std")
		}
	}
	rmse := math.Sqrt(mse / float64(len(mean)))
	if rmse > 0.25 {
		t.Fatalf("treed RMSE = %g, expected < 0.25", rmse)
	}
}

func TestTreedAppendRoutesAndResplits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := treedData(rng, 40)
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, FixedNoise: true, NoOptimize: true}, 16)
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append([]float64{-1, 0}, 1); err == nil {
		// -1 routes to the leftmost leaf; fine. Just make sure no error on a
		// boundary-ish point either.
		_ = err
	}
	before := tr.NumLeaves()
	// Flood one region so its leaf exceeds 2x capacity and re-splits.
	for i := 0; i < 60; i++ {
		a := 0.9 + 0.1*rng.Float64()
		b := rng.Float64()
		if err := tr.Append([]float64{a, b}, 3-4*a+0.5*b); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumLeaves() <= before {
		t.Fatalf("leaves did not grow under load: %d -> %d", before, tr.NumLeaves())
	}
	// The flooded region must still predict well.
	mean, _ := tr.Predict(mat.NewDense(1, 2, []float64{0.95, 0.5}))
	want := 3 - 4*0.95 + 0.25
	if math.Abs(mean[0]-want) > 0.2 {
		t.Fatalf("post-resplit prediction %g want ~%g", mean[0], want)
	}
}

func TestTreedAppendBeforeFit(t *testing.T) {
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{}, 8)
	if err := tr.Append([]float64{0}, 1); err == nil {
		t.Fatal("Append before Fit accepted")
	}
}

func TestTreedRefitAndHyperparams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := treedData(rng, 60)
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, Seed: 7}, 16)
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	h := tr.Hyperparams()
	if len(h) != tr.NumLeaves()*3 { // RBF: logℓ, logσf, logσn per leaf
		t.Fatalf("hyperparams = %d for %d leaves", len(h), tr.NumLeaves())
	}
	tr.SetRestarts(0)
	if err := tr.Refit(); err != nil {
		t.Fatal(err)
	}
}

func TestTreedConstantInputsFallBack(t *testing.T) {
	// All rows identical: no split plane exists; must degrade to one leaf.
	n := 30
	x := mat.NewDense(n, 2, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 0.5)
		x.Set(i, 1, 0.5)
		y[i] = 1
	}
	tr := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.1, FixedNoise: true, NoOptimize: true}, 8)
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("leaves = %d want 1 for constant inputs", tr.NumLeaves())
	}
}

func TestTreedAsModelInterface(t *testing.T) {
	var m Model = NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, NoOptimize: true}, 16)
	rng := rand.New(rand.NewSource(8))
	x, y := treedData(rng, 50)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mean, std := m.Predict(x)
	if len(mean) != 50 || len(std) != 50 {
		t.Fatal("predict sizes")
	}
}

func BenchmarkTreedVsFlatFit400(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x, y := treedData(rng, 400)
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := New(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, NoOptimize: true})
			if err := g.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("treed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := NewTreed(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, NoOptimize: true}, 50)
			if err := g.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}
