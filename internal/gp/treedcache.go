package gp

import (
	"fmt"

	"alamr/internal/mat"
	"alamr/internal/obs"
)

// PoolCache is the incremental pool-scoring surface the engine consumes:
// posterior over every live candidate, O(1)-amortized candidate removal,
// and automatic tracking of the model's Append/Refit mutations. Each
// surrogate family has its own implementation (ScoringCache for the exact
// GP, SparseScoringCache for SoR, TreedScoringCache for the partitioned
// model); NewPoolCache picks it by model type.
type PoolCache interface {
	// Scores returns posterior mean and std for every live candidate in
	// pool order; the slices are owned by the cache.
	Scores() (mu, sigma []float64)
	// Remove deletes the candidate at pool position p.
	Remove(p int)
	// Len reports the number of live candidates.
	Len() int
	// Close detaches the cache from its model.
	Close()
}

var (
	_ PoolCache = (*ScoringCache)(nil)
	_ PoolCache = (*SparseScoringCache)(nil)
	_ PoolCache = (*TreedScoringCache)(nil)
)

// NewPoolCache attaches the model-appropriate incremental scoring cache
// for the candidate rows of x, or returns nil for model types without one
// (callers fall back to direct Predict).
func NewPoolCache(m Model, x *mat.Dense) PoolCache {
	switch mm := m.(type) {
	case *GP:
		return NewScoringCache(mm, x)
	case *Sparse:
		return NewSparseScoringCache(mm, x)
	case *Treed:
		return NewTreedScoringCache(mm, x)
	case *MultiFid:
		return NewMultiFidCache(mm, x)
	}
	return nil
}

// TreedScoringCache is the ScoringCache analogue for the treed surrogate:
// every candidate routes to its covering leaf, and one ordinary
// ScoringCache per occupied leaf holds the per-candidate posterior state
// against that leaf's GP. Because a Treed.Append touches exactly one leaf
// GP, only that leaf's ScoringCache extends — every other leaf's
// candidates keep their cached state untouched, which is the per-leaf
// invalidation the treed model exists for. The per-leaf caches inherit the
// exact-GP bitwise contract (extended state ≡ rebuilt state) from
// ScoringCache, so the treed cache as a whole scores bitwise-identically
// whether it reached the current training set by appends or by a fresh
// rebuild.
//
// Leaf re-splits (a leaf outgrowing rebalance×LeafSize) retire that leaf's
// GP: the cache closes the dead leaf's ScoringCache and re-routes only its
// members to the replacement leaves — candidates of untouched leaves are
// never re-scored.
//
// Internally candidates live in stable slots (slot features are copied
// once); removal drops a candidate from the pool order and from its leaf
// cache but does not compact slot storage — the retained per-slot payload
// is one feature row, negligible next to the O(n_leaf) state the leaf
// caches swap-delete themselves.
type TreedScoringCache struct {
	t *Treed

	xs      [][]float64 // slot → candidate features (private copies)
	slotGP  []*GP       // slot → leaf model currently caching it (nil before build)
	slotPos []int       // slot → pool position within that leaf's cache

	order   []int // pool position → slot
	entries map[*GP]*treedLeafEntry
	built   bool

	slotMu, slotSigma []float64 // scatter buffers, slot-major
	mu, sigma         []float64 // pool-order output buffers
}

type treedLeafEntry struct {
	cache   *ScoringCache
	members []int // slot ids, in the leaf cache's pool order
}

// NewTreedScoringCache attaches a per-leaf-routed posterior cache for the
// candidate rows of x to the fitted treed model t. Candidate features are
// copied. The cache registers itself with t until Close detaches it.
func NewTreedScoringCache(t *Treed, x *mat.Dense) *TreedScoringCache {
	if t.root == nil {
		panic("gp: NewTreedScoringCache before Fit")
	}
	m := x.Rows()
	c := &TreedScoringCache{
		t:       t,
		xs:      make([][]float64, m),
		slotGP:  make([]*GP, m),
		slotPos: make([]int, m),
		order:   make([]int, m),
	}
	for i := 0; i < m; i++ {
		c.xs[i] = mat.CopyVec(x.Row(i))
		c.order[i] = i
	}
	t.caches = append(t.caches, c)
	return c
}

// Len reports the number of live candidates.
func (c *TreedScoringCache) Len() int { return len(c.order) }

// Close detaches the cache from its model and releases every leaf cache.
func (c *TreedScoringCache) Close() {
	for i, o := range c.t.caches {
		if o == c {
			c.t.caches = append(c.t.caches[:i], c.t.caches[i+1:]...)
			break
		}
	}
	c.dropEntries()
}

func (c *TreedScoringCache) dropEntries() {
	for _, e := range c.entries {
		e.cache.Close()
	}
	c.entries = nil
	c.built = false
}

// onReset is called when the whole tree was rebuilt (Fit): every leaf GP
// is new, so all routing and leaf caches are discarded and lazily rebuilt.
func (c *TreedScoringCache) onReset() { c.dropEntries() }

// onResplit is called when one over-full leaf was replaced by a subtree:
// only that leaf's members re-route; other leaves' caches are untouched.
func (c *TreedScoringCache) onResplit(old *GP) {
	if !c.built {
		return
	}
	e := c.entries[old]
	if e == nil {
		return
	}
	e.cache.Close()
	delete(c.entries, old)
	c.routeSlots(e.members)
}

// routeSlots assigns each given slot to its covering leaf and (re)builds
// the affected leaf entries. Slots landing in a leaf that already has an
// entry force that entry's rebuild with the combined member set.
func (c *TreedScoringCache) routeSlots(slots []int) {
	groups := make(map[*GP][]int)
	for _, s := range slots {
		leaf := c.t.leafFor(c.xs[s])
		groups[leaf.model] = append(groups[leaf.model], s)
	}
	for model, members := range groups {
		if prev := c.entries[model]; prev != nil {
			prev.cache.Close()
			members = append(prev.members, members...)
		}
		obs.ModelCacheOps.Inc(obs.ModelCacheTreedRebuild)
		d := mat.NewDense(len(members), len(c.xs[members[0]]), nil)
		for r, s := range members {
			copy(d.Row(r), c.xs[s])
		}
		c.entries[model] = &treedLeafEntry{cache: NewScoringCache(model, d), members: members}
		for p, s := range members {
			c.slotGP[s] = model
			c.slotPos[s] = p
		}
	}
}

func (c *TreedScoringCache) ensureBuilt() {
	if c.built {
		return
	}
	c.entries = make(map[*GP]*treedLeafEntry)
	c.built = true
	live := make([]int, len(c.order))
	copy(live, c.order)
	c.routeSlots(live)
}

// Scores returns the posterior mean and standard deviation for every live
// candidate in pool order, gathering each occupied leaf's ScoringCache.
// The returned slices are owned by the cache.
func (c *TreedScoringCache) Scores() (mu, sigma []float64) {
	c.ensureBuilt()
	nSlots := len(c.xs)
	if cap(c.slotMu) < nSlots {
		c.slotMu = make([]float64, nSlots)
		c.slotSigma = make([]float64, nSlots)
	}
	c.slotMu, c.slotSigma = c.slotMu[:nSlots], c.slotSigma[:nSlots]
	for _, e := range c.entries {
		emu, esigma := e.cache.Scores()
		for p, s := range e.members {
			c.slotMu[s] = emu[p]
			c.slotSigma[s] = esigma[p]
		}
	}
	m := len(c.order)
	if cap(c.mu) < m {
		c.mu = make([]float64, m)
		c.sigma = make([]float64, m)
	}
	c.mu, c.sigma = c.mu[:m], c.sigma[:m]
	for p, s := range c.order {
		c.mu[p] = c.slotMu[s]
		c.sigma[p] = c.slotSigma[s]
	}
	return c.mu, c.sigma
}

// Remove deletes the candidate at pool position p: it leaves the pool
// order and its leaf's cache; the slot's feature row is retained (stable
// slot ids keep leaf membership bookkeeping O(members) instead of global).
func (c *TreedScoringCache) Remove(p int) {
	if p < 0 || p >= len(c.order) {
		panic(fmt.Sprintf("gp: TreedScoringCache.Remove position %d out of range %d", p, len(c.order)))
	}
	s := c.order[p]
	c.order = append(c.order[:p], c.order[p+1:]...)
	if !c.built {
		return
	}
	e := c.entries[c.slotGP[s]]
	j := c.slotPos[s]
	e.cache.Remove(j)
	copy(e.members[j:], e.members[j+1:])
	e.members = e.members[:len(e.members)-1]
	for q := j; q < len(e.members); q++ {
		c.slotPos[e.members[q]] = q
	}
	c.slotGP[s] = nil
}
