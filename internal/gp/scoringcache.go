package gp

import (
	"fmt"
	"math"

	"alamr/internal/mat"
	"alamr/internal/obs"
)

// ScoringCache is a persistent posterior cache over a candidate pool: for
// every live candidate i it stores the cross-kernel row kᵢ = k(xᵢ, X), the
// solve vector vᵢ = L⁻¹kᵢ, the running norm ‖vᵢ‖², and the prior variance
// k(xᵢ, xᵢ). With that state the posterior over the whole pool is
//
//	μᵢ = α·kᵢ + ȳ           (one O(n) dot per candidate)
//	σᵢ² = k(xᵢ,xᵢ) − ‖vᵢ‖²   (O(1) per candidate)
//
// so re-scoring m candidates costs O(m·n) per AL iteration instead of the
// O(m·n²) of calling Predict over the pool (a fresh triangular solve per
// candidate). The cache tracks its GP across the loop's three mutations:
//
//   - Append: every kᵢ gains one entry through the GP's own row evaluator,
//     and every vᵢ gains one entry via mat.Cholesky.BorderSolveStep against
//     the new factor row — O(n) per candidate, in parallel over candidates.
//   - Refit / Fit (new hyperparameters): every stored row is wrong; the
//     cache marks itself stale and the next Scores call rebuilds all
//     candidates in one parallel batched pass.
//   - Candidate removal: O(1) swap-delete of the heavy per-candidate state.
//
// Determinism: the rebuild pass solves each vᵢ with the flat substitution
// (ForwardSolveFlatTo) whose per-row grouping is bitwise identical to
// BorderSolveStep, and ‖vᵢ‖² is accumulated in index order in both paths.
// A cache freshly built at size n therefore holds bit-for-bit the state of
// a cache built at size n₀ < n and extended through n−n₀ appends — the
// property checkpoint resume relies on (the online runtime rebuilds caches
// after replaying the feed log and must continue the trajectory bitwise).
//
// Scores is deliberately not bitwise-equal to Predict: Predict's blocked
// forward solve and its different mean reduction differ from the cache in
// the last ulps. Equivalence tests pin the agreement to ≤1e-12 and the
// policy selections to exact equality on fixed seeds.
//
// A ScoringCache is not safe for concurrent use, matching the sequential
// structure of the AL loop; distinct (GP, cache) pairs are independent.
type ScoringCache struct {
	g *GP

	// Per-candidate state, slot-major: position p of the caller's pool maps
	// to slot order[p]. Swap-delete moves one slot's O(n) payload instead
	// of shifting all of them; the position→slot indirection keeps Scores
	// in pool order.
	xs  [][]float64 // candidate features (private copies)
	ks  [][]float64 // kᵢ = k(xᵢ, X)
	vs  [][]float64 // vᵢ = L⁻¹kᵢ
	v2  []float64   // running ‖vᵢ‖², extended in index order
	kss []float64   // prior variance k(xᵢ, xᵢ)

	order []int // pool position → slot
	stale bool  // hyperparameters changed since the last (re)build

	mu, sigma []float64 // pool-order output buffers, reused across calls
}

// NewScoringCache attaches a posterior cache for the candidate rows of x to
// the fitted GP g. Candidate features are copied; the caller may reuse x.
// The cache registers itself with g — every later Append extends it and
// every Fit/Refit invalidates it — until Close detaches it.
func NewScoringCache(g *GP, x *mat.Dense) *ScoringCache {
	if !g.fitted {
		panic("gp: NewScoringCache before Fit")
	}
	m := x.Rows()
	c := &ScoringCache{
		g:     g,
		xs:    make([][]float64, m),
		ks:    make([][]float64, m),
		vs:    make([][]float64, m),
		v2:    make([]float64, m),
		kss:   make([]float64, m),
		order: make([]int, m),
		stale: true,
	}
	for i := 0; i < m; i++ {
		c.xs[i] = mat.CopyVec(x.Row(i))
		c.order[i] = i
	}
	g.caches = append(g.caches, c)
	return c
}

// Len reports the number of live candidates.
func (c *ScoringCache) Len() int { return len(c.order) }

// Close detaches the cache from its GP; after Close the GP's appends and
// refits no longer spend time maintaining it.
func (c *ScoringCache) Close() {
	for i, o := range c.g.caches {
		if o == c {
			c.g.caches = append(c.g.caches[:i], c.g.caches[i+1:]...)
			break
		}
	}
}

// invalidate marks every stored row stale; called by precompute, i.e.
// whenever hyperparameters (and hence the factor and all kernel rows) may
// have changed.
func (c *ScoringCache) invalidate() {
	c.stale = true
	obs.CacheInvalidations.Inc()
}

// Scores returns the posterior mean and standard deviation for every live
// candidate in pool order. The returned slices are owned by the cache and
// are overwritten by the next call. A stale cache (after Fit/Refit) is
// rebuilt first in one parallel batched pass.
func (c *ScoringCache) Scores() (mu, sigma []float64) {
	if c.stale {
		c.rebuild()
	} else {
		obs.CacheHits.Inc()
	}
	m := len(c.order)
	if cap(c.mu) < m {
		c.mu = make([]float64, m)
		c.sigma = make([]float64, m)
	}
	c.mu, c.sigma = c.mu[:m], c.sigma[:m]
	alpha, yMean := c.g.alpha, c.g.yMean
	n := len(alpha)
	mat.ParallelFor(m, mat.ChunkFor(2*n+8), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			s := c.order[p]
			c.mu[p] = mat.DotBlocked(c.ks[s][:n], alpha) + yMean
			variance := c.kss[s] - c.v2[s]
			if variance < 0 {
				variance = 0
			}
			c.sigma[p] = math.Sqrt(variance)
		}
	})
	return c.mu, c.sigma
}

// Remove deletes the candidate at pool position p (the index the caller's
// pool — and hence Scores — uses). The heavy O(n) per-candidate payload is
// swap-deleted in O(1); only the machine-word position index shifts, the
// same cost class as the caller's own pool bookkeeping.
func (c *ScoringCache) Remove(p int) {
	if p < 0 || p >= len(c.order) {
		panic(fmt.Sprintf("gp: ScoringCache.Remove position %d out of range %d", p, len(c.order)))
	}
	s := c.order[p]
	c.order = append(c.order[:p], c.order[p+1:]...)
	last := len(c.xs) - 1
	if s != last {
		c.xs[s], c.ks[s], c.vs[s] = c.xs[last], c.ks[last], c.vs[last]
		c.v2[s], c.kss[s] = c.v2[last], c.kss[last]
		for q, t := range c.order {
			if t == last {
				c.order[q] = s
				break
			}
		}
	}
	c.xs, c.ks, c.vs = c.xs[:last], c.ks[:last], c.vs[:last]
	c.v2, c.kss = c.v2[:last], c.kss[:last]
}

// rebuild recomputes every candidate's cached state against the GP's
// current hyperparameters and factor, in parallel over candidates. The flat
// forward solve keeps rebuilt state bitwise identical to incrementally
// extended state (see the type comment).
func (c *ScoringCache) rebuild() {
	obs.CacheRebuilds.Inc()
	g := c.g
	n := g.x.Rows()
	mat.ParallelFor(len(c.xs), mat.ChunkFor(n*n/2+32*n+8), func(lo, hi int) {
		for s := lo; s < hi; s++ {
			c.ks[s] = growVec(c.ks[s], n)
			c.vs[s] = growVec(c.vs[s], n)
			g.rowEval.Eval(c.xs[s], 0, c.ks[s])
			c.v2[s] = g.chol.ForwardSolveFlatTo(c.vs[s], c.ks[s])
			c.kss[s] = g.kern.Eval(c.xs[s], c.xs[s])
		}
	})
	c.stale = false
}

// extendAppend absorbs one Append into every candidate: kᵢ gains the entry
// against the just-appended training row (evaluated through the GP's own
// extended row evaluator, the rebuild code path, so both agree bitwise) and
// vᵢ gains one border-solve step — O(n) per candidate. A stale cache skips
// the work; the pending rebuild covers the new row.
func (c *ScoringCache) extendAppend() {
	if c.stale || len(c.xs) == 0 {
		return
	}
	obs.CacheExtends.Inc()
	g := c.g
	n := g.x.Rows() // post-append size; cached rows have n−1 entries
	mat.ParallelFor(len(c.xs), mat.ChunkFor(2*n+64), func(lo, hi int) {
		var kNew [1]float64
		for s := lo; s < hi; s++ {
			g.rowEval.Eval(c.xs[s], n-1, kNew[:])
			vNew := g.chol.BorderSolveStep(c.vs[s], kNew[0])
			c.ks[s] = append(c.ks[s], kNew[0])
			c.vs[s] = append(c.vs[s], vNew)
			c.v2[s] += vNew * vNew
		}
	})
}

// growVec resizes b to length n, reusing capacity when possible and
// over-allocating on growth so a run of appends amortizes.
func growVec(b []float64, n int) []float64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]float64, n, n+n/2+8)
}
