package gp

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// MultiFidConfig describes the fidelity structure of a MultiFid surrogate:
// which input column carries the fidelity dial and which dial values form
// the ladder. Inputs are full feature rows; the surrogate derives each
// sample's level from the dial column and strips that column before it
// reaches the per-level GPs (within one level the dial is constant and
// carries no information).
type MultiFidConfig struct {
	// Dim is the index of the fidelity column in the input features.
	Dim int
	// Ladder holds the dial values, ascending in fidelity; the slice index
	// is the level (0 = cheapest, len-1 = top fidelity).
	Ladder []float64
	// Rho optionally freezes the inter-level scales instead of estimating
	// them: Rho[l] links level l to level l−1 (Rho[0] is ignored). Nil
	// estimates each ρ_l by least squares at every fit.
	Rho []float64
	// Tol is the dial-matching tolerance (default 1e-9).
	Tol float64
}

// MultiFid is an autoregressive co-kriging surrogate over a fidelity ladder
// (Kennedy & O'Hagan's recursive formulation): level 0 is an ordinary GP on
// the cheapest observations, and every higher level models the discrepancy
// from a scaled version of the level below,
//
//	f_l(x) = ρ_l·f_{l−1}(x) + δ_l(x),   δ_l ~ GP(0, k),
//
// so the posterior at level l combines recursively as
//
//	μ_l = ρ_l·μ_{l−1} + μ_δl,   σ_l² = ρ_l²·σ_{l−1}² + σ_δl².
//
// Each δ_l is an independent exact GP (own hyperparameters, own incremental
// Cholesky), which keeps every ScoringCache/Append/Refit property of the
// single-fidelity engine intact per level. The scale ρ_l is re-estimated by
// least squares against the lower-level posterior mean at every Fit/Refit;
// Append computes the new sample's residual against the lower levels'
// current state (exact again at the next Refit, which rebuilds residuals
// from the raw observations it stores).
//
// A MultiFid with a one-rung ladder is exactly the base GP on the stripped
// features — the degenerate case the single-fidelity equivalence tests pin.
//
// Determinism: levels fit and predict in ladder order with index-ordered
// accumulations, and each per-level GP is seeded from cfg.Seed offset by
// its level, so identical observation sequences rebuild identical state —
// the property checkpoint resume relies on.
type MultiFid struct {
	proto kernel.Kernel
	cfg   Config
	mf    MultiFidConfig

	// Raw per-level observations (stripped point features, uncentred
	// targets). δ-GP training targets are residuals derived from these;
	// keeping the raw values lets Refit rebuild every residual exactly.
	xs [][][]float64
	ys [][]float64

	levels []*GP     // per-level δ-GPs; nil while a level has no data
	rho    []float64 // rho[l] links level l to l−1; rho[0] unused

	restarts    int
	restartsSet bool
	fitted      bool
}

var _ Model = (*MultiFid)(nil)

// NewMultiFid creates a multi-fidelity surrogate with the given kernel
// prototype (cloned per level), per-level GP configuration, and fidelity
// structure. The ladder must hold at least one strictly ascending dial
// value; a fixed Rho, when given, must have one entry per level.
func NewMultiFid(k kernel.Kernel, cfg Config, mf MultiFidConfig) (*MultiFid, error) {
	if len(mf.Ladder) == 0 {
		return nil, errors.New("gp: multifid ladder is empty")
	}
	for l := 1; l < len(mf.Ladder); l++ {
		if mf.Ladder[l] <= mf.Ladder[l-1] {
			return nil, fmt.Errorf("gp: multifid ladder must be strictly ascending, got %v", mf.Ladder)
		}
	}
	if mf.Rho != nil && len(mf.Rho) != len(mf.Ladder) {
		return nil, fmt.Errorf("gp: multifid fixed rho has %d entries for %d levels", len(mf.Rho), len(mf.Ladder))
	}
	if mf.Dim < 0 {
		return nil, fmt.Errorf("gp: multifid fidelity column %d", mf.Dim)
	}
	if mf.Tol <= 0 {
		mf.Tol = 1e-9
	}
	return &MultiFid{proto: k.Clone(), cfg: cfg, mf: mf}, nil
}

// NumLevels reports the ladder length.
func (m *MultiFid) NumLevels() int { return len(m.mf.Ladder) }

// Rho returns a copy of the current inter-level scales (index l links level
// l to l−1; index 0 is unused and always zero).
func (m *MultiFid) Rho() []float64 { return append([]float64(nil), m.rho...) }

// Level derives the ladder level of a full feature row from its fidelity
// column, or an error when the dial value is off the ladder.
func (m *MultiFid) Level(x []float64) (int, error) {
	if m.mf.Dim >= len(x) {
		return 0, fmt.Errorf("gp: multifid fidelity column %d out of range for %d features", m.mf.Dim, len(x))
	}
	v := x[m.mf.Dim]
	for l, dial := range m.mf.Ladder {
		if math.Abs(v-dial) <= m.mf.Tol {
			return l, nil
		}
	}
	return 0, fmt.Errorf("gp: fidelity dial %v is not on the ladder %v", v, m.mf.Ladder)
}

// strip copies a full feature row without the fidelity column.
func (m *MultiFid) strip(x []float64) []float64 {
	out := make([]float64, 0, len(x)-1)
	out = append(out, x[:m.mf.Dim]...)
	return append(out, x[m.mf.Dim+1:]...)
}

// stripInto is strip writing into a caller-owned buffer of length len(x)−1.
func (m *MultiFid) stripInto(dst, x []float64) {
	copy(dst[:m.mf.Dim], x[:m.mf.Dim])
	copy(dst[m.mf.Dim:], x[m.mf.Dim+1:])
}

// Fit buckets the samples by ladder level and fits the per-level δ-GPs in
// ladder order. The base level must hold at least one observation; higher
// levels may start empty (their δ-GP appears at the first Append).
func (m *MultiFid) Fit(x *mat.Dense, y []float64) error {
	if x == nil || x.Rows() == 0 {
		return ErrNoData
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("gp: x has %d rows but y has %d values", x.Rows(), len(y))
	}
	L := len(m.mf.Ladder)
	xs := make([][][]float64, L)
	ys := make([][]float64, L)
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		l, err := m.Level(row)
		if err != nil {
			return err
		}
		xs[l] = append(xs[l], m.strip(row))
		ys[l] = append(ys[l], y[i])
	}
	if len(ys[0]) == 0 {
		return errors.New("gp: multifid needs at least one observation at the base fidelity level")
	}
	m.xs, m.ys = xs, ys
	m.levels = make([]*GP, L)
	m.rho = make([]float64, L)
	for l := 0; l < L; l++ {
		if err := m.fitLevel(l); err != nil {
			return err
		}
	}
	m.fitted = true
	return nil
}

// fitLevel (re)derives level l's scale and residuals from the raw stored
// observations and fits its δ-GP, reusing the existing GP object when one
// exists so attached scoring caches stay registered across Refit.
func (m *MultiFid) fitLevel(l int) error {
	if len(m.ys[l]) == 0 {
		m.levels[l] = nil
		m.rho[l] = m.defaultRho(l)
		return nil
	}
	resid := make([]float64, len(m.ys[l]))
	if l == 0 {
		m.rho[0] = 0
		copy(resid, m.ys[0])
	} else {
		below := make([]float64, len(m.ys[l]))
		for i, p := range m.xs[l] {
			below[i], _ = m.predictPoint(l-1, p)
		}
		m.rho[l] = m.estimateRho(l, below, m.ys[l])
		for i := range resid {
			resid[i] = m.ys[l][i] - m.rho[l]*below[i]
		}
	}
	g := m.levels[l]
	if g == nil {
		g = New(m.proto, m.levelConfig(l))
		if m.restartsSet {
			g.SetRestarts(m.restarts)
		}
		m.levels[l] = g
	}
	return g.Fit(rowsDense(m.xs[l]), resid)
}

// levelConfig is the per-level GP configuration: the shared config with the
// restart seed offset by the level, so sibling δ-GPs do not draw identical
// random restarts. Level 0 keeps the seed untouched — a one-rung ladder is
// bitwise the plain GP.
func (m *MultiFid) levelConfig(l int) Config {
	cfg := m.cfg
	cfg.Seed += int64(l)
	return cfg
}

// estimateRho returns the scale linking level l to the one below: the fixed
// value when configured, otherwise the least-squares fit of y against the
// lower-level posterior mean, ρ = ⟨μ_below, y⟩/⟨μ_below, μ_below⟩, with a
// degenerate (near-zero) denominator collapsing to ρ = 0.
func (m *MultiFid) estimateRho(l int, below, y []float64) float64 {
	if m.mf.Rho != nil {
		return m.mf.Rho[l]
	}
	var num, den float64
	for i := range below {
		num += below[i] * y[i]
		den += below[i] * below[i]
	}
	if den <= 1e-12 {
		return 0
	}
	return num / den
}

// defaultRho is the scale assigned to a level with no observations yet:
// the fixed value when configured, otherwise 1 (pass the lower level
// through unscaled until data arrives to estimate better).
func (m *MultiFid) defaultRho(l int) float64 {
	if m.mf.Rho != nil {
		return m.mf.Rho[l]
	}
	return 1
}

// Append adds one observation: the sample's level is derived from its
// fidelity column, its residual is computed against the lower levels'
// current posterior (frozen ρ — the stale-residual approximation Refit
// later makes exact), and it rides the level δ-GP's incremental Append.
// The first observation at a previously-empty level fits that level's
// δ-GP from scratch instead.
func (m *MultiFid) Append(x []float64, y float64) error {
	if !m.fitted {
		return errors.New("gp: Append before Fit")
	}
	l, err := m.Level(x)
	if err != nil {
		return err
	}
	p := m.strip(x)
	m.xs[l] = append(m.xs[l], p)
	m.ys[l] = append(m.ys[l], y)
	if m.levels[l] == nil {
		return m.fitLevel(l)
	}
	resid := y
	if l > 0 {
		below, _ := m.predictPoint(l-1, p)
		resid = y - m.rho[l]*below
	}
	return m.levels[l].Append(p, resid)
}

// Refit rebuilds every level from the raw stored observations — scales,
// residuals, hyperparameters (warm-started per level), posterior — in
// ladder order, making the stale residuals accumulated by Append exact
// again. Existing level GPs are reused, so attached caches survive.
func (m *MultiFid) Refit() error {
	if !m.fitted {
		return ErrNoData
	}
	for l := range m.levels {
		if err := m.fitLevel(l); err != nil {
			return err
		}
	}
	return nil
}

// predictPoint evaluates the recursive posterior at a stripped point up to
// the given level. Levels without data contribute zero mean and the kernel
// prototype's prior standard deviation.
func (m *MultiFid) predictPoint(level int, p []float64) (mean, std float64) {
	var mu, variance float64
	for l := 0; l <= level; l++ {
		var md, sd float64
		if g := m.levels[l]; g != nil {
			md, sd = g.PredictOne(p)
		} else {
			md, sd = 0, m.priorStd(p)
		}
		if l == 0 {
			mu, variance = md, sd*sd
		} else {
			r := m.rho[l]
			mu = r*mu + md
			variance = r*r*variance + sd*sd
		}
	}
	return mu, math.Sqrt(variance)
}

// priorStd is the prior standard deviation the recursion charges for a
// level that has no observations yet, from the unfitted kernel prototype.
func (m *MultiFid) priorStd(p []float64) float64 {
	v := m.proto.Eval(p, p)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Predict returns the recursive posterior mean and standard deviation at
// each row of xs, each row evaluated at its own fidelity level. Rows are
// independent and evaluate in parallel.
func (m *MultiFid) Predict(xs *mat.Dense) (mean, std []float64) {
	mm := xs.Rows()
	mean = make([]float64, mm)
	std = make([]float64, mm)
	m.PredictInto(xs, mean, std)
	return mean, std
}

// PredictInto is Predict writing into caller-owned buffers.
func (m *MultiFid) PredictInto(xs *mat.Dense, mean, std []float64) {
	if !m.fitted {
		panic("gp: Predict before Fit")
	}
	mm := xs.Rows()
	if len(mean) != mm || len(std) != mm {
		panic(fmt.Sprintf("gp: PredictInto buffers %d/%d for %d rows", len(mean), len(std), mm))
	}
	n := m.maxTrain()
	mat.ParallelFor(mm, mat.ChunkFor(len(m.mf.Ladder)*(n*n/2+32*n)+8), func(lo, hi int) {
		m.predictRange(xs, mean, std, lo, hi)
	})
}

// PredictIntoSerial is PredictInto pinned to the calling goroutine,
// bitwise-equal output, for callers that are themselves one lane of a
// higher-level dispatch.
func (m *MultiFid) PredictIntoSerial(xs *mat.Dense, mean, std []float64) {
	if !m.fitted {
		panic("gp: Predict before Fit")
	}
	mm := xs.Rows()
	if len(mean) != mm || len(std) != mm {
		panic(fmt.Sprintf("gp: PredictIntoSerial buffers %d/%d for %d rows", len(mean), len(std), mm))
	}
	m.predictRange(xs, mean, std, 0, mm)
}

func (m *MultiFid) predictRange(xs *mat.Dense, mean, std []float64, lo, hi int) {
	p := make([]float64, xs.Cols()-1)
	for i := lo; i < hi; i++ {
		row := xs.Row(i)
		l, err := m.Level(row)
		if err != nil {
			panic(err)
		}
		m.stripInto(p, row)
		mean[i], std[i] = m.predictPoint(l, p)
	}
}

// TopInfoGains returns, for each row of xs, the predicted reduction in
// top-fidelity variance from observing that candidate at its own level:
// w_l²·σ_δl²(x) with w_l = Π_{j>l} ρ_j — the numerator of the
// cost-per-information acquisition. Rows off the ladder panic (callers
// filter pools to the ladder first).
func (m *MultiFid) TopInfoGains(xs *mat.Dense) []float64 {
	if !m.fitted {
		panic("gp: TopInfoGains before Fit")
	}
	gains := make([]float64, xs.Rows())
	p := make([]float64, xs.Cols()-1)
	for i := range gains {
		row := xs.Row(i)
		l, err := m.Level(row)
		if err != nil {
			panic(err)
		}
		m.stripInto(p, row)
		var sd float64
		if g := m.levels[l]; g != nil {
			_, sd = g.PredictOne(p)
		} else {
			sd = m.priorStd(p)
		}
		gains[i] = m.topWeight(l) * sd * sd
	}
	return gains
}

// topWeight is w_l² = (Π_{j>l} ρ_j)², the factor by which level-l δ
// variance propagates into the top-fidelity posterior.
func (m *MultiFid) topWeight(l int) float64 {
	w := 1.0
	for j := l + 1; j < len(m.mf.Ladder); j++ {
		w *= m.rho[j]
	}
	return w * w
}

// Hyperparams concatenates the inter-level scales ρ_1..ρ_{L−1} with each
// fitted level's hyperparameter vector in ladder order. A one-rung ladder
// therefore reports exactly the base GP's vector.
func (m *MultiFid) Hyperparams() []float64 {
	h := append([]float64(nil), m.rho[1:]...)
	for _, g := range m.levels {
		if g != nil {
			h = append(h, g.Hyperparams()...)
		}
	}
	return h
}

// SetRestarts forwards to every level GP, present and future.
func (m *MultiFid) SetRestarts(n int) {
	m.restarts = n
	m.restartsSet = true
	for _, g := range m.levels {
		if g != nil {
			g.SetRestarts(n)
		}
	}
}

// maxTrain is the largest per-level training-set size, the cost driver of
// one recursive prediction.
func (m *MultiFid) maxTrain() int {
	n := 1
	for _, g := range m.levels {
		if g != nil && g.NumTrain() > n {
			n = g.NumTrain()
		}
	}
	return n
}

// rowsDense packs row slices into a fresh Dense matrix.
func rowsDense(rows [][]float64) *mat.Dense {
	d := mat.NewDense(len(rows), len(rows[0]), nil)
	for i, r := range rows {
		copy(d.Row(i), r)
	}
	return d
}
