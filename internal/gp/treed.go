package gp

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// Model is the surrogate interface the active-learning loop consumes. *GP
// implements it; Treed provides the partitioned variant the paper's future
// work proposes ("train multiple local performance models simultaneously",
// §VI; cf. the treed GPR of its related work §II-B).
type Model interface {
	Fit(x *mat.Dense, y []float64) error
	Predict(xs *mat.Dense) (mean, std []float64)
	Append(x []float64, y float64) error
	Refit() error
	Hyperparams() []float64
	SetRestarts(n int)
}

var (
	_ Model = (*GP)(nil)
	_ Model = (*Treed)(nil)
)

// Treed is a partitioned Gaussian process: the input space is recursively
// split (widest-spread dimension, at the median) until every leaf holds at
// most LeafSize training points, and an independent GP is fitted per leaf.
// Predictions route to the covering leaf. This trades the O(n³) global fit
// for several small fits — the standard answer to GPR's cubic scaling — at
// the cost of discontinuities across leaf boundaries.
type Treed struct {
	proto    kernel.Kernel
	cfg      Config
	leafSize int
	root     *treeNode
}

type treeNode struct {
	dim       int
	threshold float64
	left      *treeNode
	right     *treeNode

	// Leaf state (left == nil).
	model *GP
	x     *mat.Dense
	y     []float64
}

// NewTreed creates a treed GP with the given kernel prototype, per-leaf GP
// configuration, and leaf capacity (minimum 8).
func NewTreed(k kernel.Kernel, cfg Config, leafSize int) *Treed {
	if leafSize < 8 {
		leafSize = 8
	}
	return &Treed{proto: k.Clone(), cfg: cfg, leafSize: leafSize}
}

// Fit builds the partition tree and fits every leaf GP.
func (t *Treed) Fit(x *mat.Dense, y []float64) error {
	if x == nil || x.Rows() == 0 {
		return ErrNoData
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("gp: treed fit with %d rows and %d targets", x.Rows(), len(y))
	}
	root, err := t.build(x.Clone(), append([]float64(nil), y...), 0)
	if err != nil {
		return err
	}
	t.root = root
	return nil
}

func (t *Treed) build(x *mat.Dense, y []float64, depth int) (*treeNode, error) {
	n := x.Rows()
	if n <= t.leafSize || depth >= 12 {
		leaf := &treeNode{x: x, y: y, model: New(t.proto, t.cfg)}
		if err := leaf.model.Fit(x, y); err != nil {
			return nil, err
		}
		return leaf, nil
	}
	dim, threshold, ok := splitPlane(x)
	if !ok {
		leaf := &treeNode{x: x, y: y, model: New(t.proto, t.cfg)}
		if err := leaf.model.Fit(x, y); err != nil {
			return nil, err
		}
		return leaf, nil
	}
	var li, ri []int
	for i := 0; i < n; i++ {
		if x.At(i, dim) < threshold {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	lx, ly := subset(x, y, li)
	rx, ry := subset(x, y, ri)
	left, err := t.build(lx, ly, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := t.build(rx, ry, depth+1)
	if err != nil {
		return nil, err
	}
	return &treeNode{dim: dim, threshold: threshold, left: left, right: right}, nil
}

// splitPlane picks the dimension with the largest spread and splits at its
// median. Returns ok=false when every dimension is constant (no useful
// split exists).
func splitPlane(x *mat.Dense) (dim int, threshold float64, ok bool) {
	n, d := x.Dims()
	bestSpread := 0.0
	for j := 0; j < d; j++ {
		lo, hi := x.At(0, j), x.At(0, j)
		for i := 1; i < n; i++ {
			v := x.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s := hi - lo; s > bestSpread {
			bestSpread = s
			dim = j
		}
	}
	if bestSpread == 0 {
		return 0, 0, false
	}
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		col[i] = x.At(i, dim)
	}
	threshold = medianOf(col)
	// Guard: a median equal to the minimum would put everything on one
	// side; nudge to the midpoint of the range instead.
	lo, hi := col[0], col[0]
	for _, v := range col {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	left := 0
	for _, v := range col {
		if v < threshold {
			left++
		}
	}
	if left == 0 || left == n {
		threshold = (lo + hi) / 2
		left = 0
		for _, v := range col {
			if v < threshold {
				left++
			}
		}
		if left == 0 || left == n {
			return 0, 0, false
		}
	}
	return dim, threshold, true
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	// Insertion sort: leaf sizes are small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func subset(x *mat.Dense, y []float64, idx []int) (*mat.Dense, []float64) {
	out := mat.NewDense(len(idx), x.Cols(), nil)
	oy := make([]float64, len(idx))
	for r, i := range idx {
		copy(out.Row(r), x.Row(i))
		oy[r] = y[i]
	}
	return out, oy
}

// leafFor routes a point to its covering leaf.
func (t *Treed) leafFor(x []float64) *treeNode {
	node := t.root
	for node.left != nil {
		if x[node.dim] < node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node
}

// Predict implements Model: each row routes to its leaf GP.
func (t *Treed) Predict(xs *mat.Dense) (mean, std []float64) {
	if t.root == nil {
		panic("gp: Treed.Predict before Fit")
	}
	m := xs.Rows()
	mean = make([]float64, m)
	std = make([]float64, m)
	for i := 0; i < m; i++ {
		leaf := t.leafFor(xs.Row(i))
		mean[i], std[i] = leaf.model.PredictOne(xs.Row(i))
	}
	return mean, std
}

// Append implements Model: the sample joins its covering leaf; a leaf grown
// past twice its capacity is re-split.
func (t *Treed) Append(x []float64, y float64) error {
	if t.root == nil {
		return errors.New("gp: Treed.Append before Fit")
	}
	leaf := t.leafFor(x)
	if err := leaf.model.Append(x, y); err != nil {
		return err
	}
	// Mirror the training data for rebuilds.
	n := leaf.x.Rows()
	nx := mat.NewDense(n+1, leaf.x.Cols(), nil)
	for i := 0; i < n; i++ {
		copy(nx.Row(i), leaf.x.Row(i))
	}
	copy(nx.Row(n), x)
	leaf.x = nx
	leaf.y = append(leaf.y, y)

	if leaf.x.Rows() > 2*t.leafSize {
		sub, err := t.build(leaf.x, leaf.y, 0)
		if err != nil {
			return err
		}
		*leaf = *sub
	}
	return nil
}

// Refit implements Model: every leaf re-optimizes its hyperparameters.
func (t *Treed) Refit() error {
	if t.root == nil {
		return ErrNoData
	}
	return walkLeaves(t.root, func(n *treeNode) error { return n.model.Refit() })
}

// Hyperparams implements Model: the concatenation of all leaf
// hyperparameters (leaf order is deterministic: left before right).
func (t *Treed) Hyperparams() []float64 {
	var out []float64
	if t.root == nil {
		return nil
	}
	_ = walkLeaves(t.root, func(n *treeNode) error {
		out = append(out, n.model.Hyperparams()...)
		return nil
	})
	return out
}

// SetRestarts implements Model.
func (t *Treed) SetRestarts(n int) {
	t.cfg.Restarts = n
	if t.root == nil {
		return
	}
	_ = walkLeaves(t.root, func(node *treeNode) error {
		node.model.SetRestarts(n)
		return nil
	})
}

// NumLeaves reports the number of local models.
func (t *Treed) NumLeaves() int {
	if t.root == nil {
		return 0
	}
	count := 0
	_ = walkLeaves(t.root, func(*treeNode) error { count++; return nil })
	return count
}

func walkLeaves(n *treeNode, f func(*treeNode) error) error {
	if n.left == nil {
		return f(n)
	}
	if err := walkLeaves(n.left, f); err != nil {
		return err
	}
	return walkLeaves(n.right, f)
}
