package gp

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/kernel"
	"alamr/internal/mat"
	"alamr/internal/obs"
)

// Model is the surrogate interface the active-learning loop consumes. *GP
// implements it; Treed provides the partitioned variant the paper's future
// work proposes ("train multiple local performance models simultaneously",
// §VI; cf. the treed GPR of its related work §II-B).
type Model interface {
	Fit(x *mat.Dense, y []float64) error
	Predict(xs *mat.Dense) (mean, std []float64)
	Append(x []float64, y float64) error
	Refit() error
	Hyperparams() []float64
	SetRestarts(n int)
}

var (
	_ Model = (*GP)(nil)
	_ Model = (*Treed)(nil)
	_ Model = (*Sparse)(nil)
)

// Treed is a partitioned Gaussian process: the input space is recursively
// split (widest-spread dimension, at the median) until every leaf holds at
// most LeafSize training points, and an independent GP is fitted per leaf.
// Predictions route to the covering leaf. This trades the O(n³) global fit
// for several small fits — the standard answer to GPR's cubic scaling — at
// the cost of discontinuities across leaf boundaries.
//
// Appends are amortized end to end: the sample rides the leaf GP's own
// incremental Append (rank-1 Cholesky border extension) and the training
// mirror grows through mat.Dense.AppendRow (amortized doubling), so no
// refit and no O(n_leaf) re-copy happens on the hot path. A leaf grown
// past rebalance×LeafSize is re-split, with the children warm-started from
// the parent leaf's learned hyperparameters (a single local optimization
// instead of a cold multi-restart search) so pathological insert orders
// cannot degenerate into one giant leaf without bounded, amortized cost.
type Treed struct {
	proto    kernel.Kernel
	cfg      Config
	leafSize int
	// rebalance is the re-split trigger factor: a leaf is split when it
	// exceeds rebalance×leafSize rows. Minimum 1 (split as soon as the
	// capacity is exceeded); default 2.
	rebalance int
	root      *treeNode

	caches []*TreedScoringCache
}

type treeNode struct {
	dim       int
	threshold float64
	left      *treeNode
	right     *treeNode

	// Leaf state (left == nil).
	model *GP
	x     *mat.Dense
	y     []float64
}

// NewTreed creates a treed GP with the given kernel prototype, per-leaf GP
// configuration, and leaf capacity (minimum 8).
func NewTreed(k kernel.Kernel, cfg Config, leafSize int) *Treed {
	if leafSize < 8 {
		leafSize = 8
	}
	return &Treed{proto: k.Clone(), cfg: cfg, leafSize: leafSize, rebalance: 2}
}

// SetRebalance sets the leaf re-split trigger factor: a leaf splits once
// it holds more than f×LeafSize rows. Values below 1 clamp to 1.
func (t *Treed) SetRebalance(f int) {
	if f < 1 {
		f = 1
	}
	t.rebalance = f
}

// LeafSize reports the configured leaf capacity.
func (t *Treed) LeafSize() int { return t.leafSize }

// Fit builds the partition tree and fits every leaf GP.
func (t *Treed) Fit(x *mat.Dense, y []float64) error {
	if x == nil || x.Rows() == 0 {
		return ErrNoData
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("gp: treed fit with %d rows and %d targets", x.Rows(), len(y))
	}
	root, err := t.buildWith(t.proto, t.cfg, x.Clone(), append([]float64(nil), y...), 0)
	if err != nil {
		return err
	}
	t.root = root
	for _, c := range t.caches {
		c.onReset()
	}
	return nil
}

// buildWith recursively partitions (x, y) fitting each leaf with the given
// kernel prototype and config. Fit passes the Treed's own proto/cfg;
// resplit passes a warm-started prototype carrying the parent leaf's
// learned hyperparameters.
func (t *Treed) buildWith(proto kernel.Kernel, cfg Config, x *mat.Dense, y []float64, depth int) (*treeNode, error) {
	n := x.Rows()
	if n <= t.leafSize || depth >= 12 {
		return t.fitLeaf(proto, cfg, x, y)
	}
	dim, threshold, ok := splitPlane(x)
	if !ok {
		return t.fitLeaf(proto, cfg, x, y)
	}
	var li, ri []int
	for i := 0; i < n; i++ {
		if x.At(i, dim) < threshold {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	lx, ly := subset(x, y, li)
	rx, ry := subset(x, y, ri)
	left, err := t.buildWith(proto, cfg, lx, ly, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := t.buildWith(proto, cfg, rx, ry, depth+1)
	if err != nil {
		return nil, err
	}
	return &treeNode{dim: dim, threshold: threshold, left: left, right: right}, nil
}

func (t *Treed) fitLeaf(proto kernel.Kernel, cfg Config, x *mat.Dense, y []float64) (*treeNode, error) {
	leaf := &treeNode{x: x, y: y, model: New(proto, cfg)}
	if err := leaf.model.Fit(x, y); err != nil {
		return nil, err
	}
	return leaf, nil
}

// splitPlane picks the dimension with the largest spread and splits at its
// median. Returns ok=false when every dimension is constant (no useful
// split exists).
func splitPlane(x *mat.Dense) (dim int, threshold float64, ok bool) {
	n, d := x.Dims()
	bestSpread := 0.0
	for j := 0; j < d; j++ {
		lo, hi := x.At(0, j), x.At(0, j)
		for i := 1; i < n; i++ {
			v := x.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s := hi - lo; s > bestSpread {
			bestSpread = s
			dim = j
		}
	}
	if bestSpread == 0 {
		return 0, 0, false
	}
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		col[i] = x.At(i, dim)
	}
	threshold = medianOf(col)
	// Guard: a median equal to the minimum would put everything on one
	// side; nudge to the midpoint of the range instead.
	lo, hi := col[0], col[0]
	for _, v := range col {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	left := 0
	for _, v := range col {
		if v < threshold {
			left++
		}
	}
	if left == 0 || left == n {
		threshold = (lo + hi) / 2
		left = 0
		for _, v := range col {
			if v < threshold {
				left++
			}
		}
		if left == 0 || left == n {
			return 0, 0, false
		}
	}
	return dim, threshold, true
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	// Insertion sort: leaf sizes are small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func subset(x *mat.Dense, y []float64, idx []int) (*mat.Dense, []float64) {
	out := mat.NewDense(len(idx), x.Cols(), nil)
	oy := make([]float64, len(idx))
	for r, i := range idx {
		copy(out.Row(r), x.Row(i))
		oy[r] = y[i]
	}
	return out, oy
}

// leafFor routes a point to its covering leaf.
func (t *Treed) leafFor(x []float64) *treeNode {
	node := t.root
	for node.left != nil {
		if x[node.dim] < node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node
}

// Predict implements Model: each row routes to its leaf GP. Rows are
// independent, so the pool fans out over candidates (routing is read-only
// and PredictOne uses local scratch).
func (t *Treed) Predict(xs *mat.Dense) (mean, std []float64) {
	m := xs.Rows()
	mean = make([]float64, m)
	std = make([]float64, m)
	t.PredictInto(xs, mean, std)
	return mean, std
}

// PredictInto is Predict writing into caller-owned buffers, the
// zero-allocation form streamed pool scoring loops over.
func (t *Treed) PredictInto(xs *mat.Dense, mean, std []float64) {
	if t.root == nil {
		panic("gp: Treed.Predict before Fit")
	}
	m := xs.Rows()
	if len(mean) != m || len(std) != m {
		panic(fmt.Sprintf("gp: PredictInto buffers %d/%d for %d rows", len(mean), len(std), m))
	}
	mat.ParallelFor(m, mat.ChunkFor(4*t.leafSize+16), func(lo, hi int) {
		t.predictRange(xs, mean, std, lo, hi)
	})
}

// predictRange scores rows [lo, hi) with one growable scratch pair shared
// across the whole range — scratch is sized to the largest leaf seen so
// far, so a range allocates O(distinct leaf-size increases) rather than the
// O(rows) a per-candidate PredictOne would. Routing and the leaf models are
// read-only during prediction, so concurrent predictRange calls are
// race-free.
func (t *Treed) predictRange(xs *mat.Dense, mean, std []float64, lo, hi int) {
	var scratch []float64
	for i := lo; i < hi; i++ {
		leaf := t.leafFor(xs.Row(i))
		n := leaf.model.NumTrain()
		if cap(scratch) < 2*n {
			scratch = make([]float64, 2*n)
		}
		s := scratch[:2*n]
		mean[i], std[i] = leaf.model.predictOneInto(xs.Row(i), s[:n], s[n:])
	}
}

// PredictIntoSerial is PredictInto pinned to the calling goroutine —
// bitwise-equal output (each row goes through the same predictOneInto its
// leaf's PredictOne uses), no worker-pool dispatch. See GP.PredictIntoSerial
// for the use case and the concurrency contract.
func (t *Treed) PredictIntoSerial(xs *mat.Dense, mean, std []float64) {
	if t.root == nil {
		panic("gp: Treed.Predict before Fit")
	}
	m := xs.Rows()
	if len(mean) != m || len(std) != m {
		panic(fmt.Sprintf("gp: PredictIntoSerial buffers %d/%d for %d rows", len(mean), len(std), m))
	}
	t.predictRange(xs, mean, std, 0, m)
}

// Append implements Model: the sample joins its covering leaf through the
// leaf GP's amortized incremental Append (rank-1 border extension — no
// refit), and the training mirror grows by AppendRow (amortized doubling —
// no O(n_leaf) copy). A leaf grown past rebalance×LeafSize re-splits with
// warm-started children.
func (t *Treed) Append(x []float64, y float64) error {
	if t.root == nil {
		return errors.New("gp: Treed.Append before Fit")
	}
	leaf := t.leafFor(x)
	if err := leaf.model.Append(x, y); err != nil {
		return err
	}
	leaf.x = leaf.x.AppendRow(x)
	leaf.y = append(leaf.y, y)
	if len(t.caches) > 0 {
		// The leaf's attached ScoringCaches extended themselves inside
		// leaf.model.Append; this counter attributes the work to the treed
		// family for the extend-vs-rebuild ledger.
		obs.ModelCacheOps.Inc(obs.ModelCacheTreedExtend)
	}

	if leaf.x.Rows() > t.rebalance*t.leafSize {
		return t.resplit(leaf)
	}
	return nil
}

// resplit rebuilds the subtree under an over-full leaf. The children are
// warm-started: the split subtree is built with a kernel prototype carrying
// the leaf's learned hyperparameters and a single local optimization
// (Restarts=0) instead of the cold multi-restart search a full Fit runs —
// the leaf already sits near good hyperparameters, so the split costs
// O(children · leafSize³) and no hyperparameter search restarts. Attached
// pool caches re-route the dead leaf's candidates to the new leaves.
func (t *Treed) resplit(leaf *treeNode) error {
	old := leaf.model
	h := old.Hyperparams()
	proto := t.proto.Clone()
	proto.SetParams(h[:len(h)-1])
	cfg := t.cfg
	cfg.Noise = math.Exp(h[len(h)-1])
	cfg.Restarts = 0
	sub, err := t.buildWith(proto, cfg, leaf.x, leaf.y, 0)
	if err != nil {
		return err
	}
	*leaf = *sub
	for _, c := range t.caches {
		c.onResplit(old)
	}
	return nil
}

// Refit implements Model: every leaf re-optimizes its hyperparameters.
func (t *Treed) Refit() error {
	if t.root == nil {
		return ErrNoData
	}
	return walkLeaves(t.root, func(n *treeNode) error { return n.model.Refit() })
}

// Hyperparams implements Model: the concatenation of all leaf
// hyperparameters (leaf order is deterministic: left before right).
func (t *Treed) Hyperparams() []float64 {
	var out []float64
	if t.root == nil {
		return nil
	}
	_ = walkLeaves(t.root, func(n *treeNode) error {
		out = append(out, n.model.Hyperparams()...)
		return nil
	})
	return out
}

// SetRestarts implements Model.
func (t *Treed) SetRestarts(n int) {
	t.cfg.Restarts = n
	if t.root == nil {
		return
	}
	_ = walkLeaves(t.root, func(node *treeNode) error {
		node.model.SetRestarts(n)
		return nil
	})
}

// NumLeaves reports the number of local models.
func (t *Treed) NumLeaves() int {
	if t.root == nil {
		return 0
	}
	count := 0
	_ = walkLeaves(t.root, func(*treeNode) error { count++; return nil })
	return count
}

func walkLeaves(n *treeNode, f func(*treeNode) error) error {
	if n.left == nil {
		return f(n)
	}
	if err := walkLeaves(n.left, f); err != nil {
		return err
	}
	return walkLeaves(n.right, f)
}
