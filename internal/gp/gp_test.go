package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

func gridX(lo, hi float64, n int) *mat.Dense {
	x := mat.NewDense(n, 1, nil)
	for i := 0; i < n; i++ {
		x.Set(i, 0, lo+(hi-lo)*float64(i)/float64(n-1))
	}
	return x
}

func TestFitEmptyErrors(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	if err := g.Fit(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v want ErrNoData", err)
	}
}

func TestFitShapeMismatch(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	if err := g.Fit(gridX(0, 1, 4), []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestFitNonFiniteTargets(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	if err := g.Fit(gridX(0, 1, 2), []float64{1, math.NaN()}); err == nil {
		t.Fatal("expected error for NaN target")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Predict(gridX(0, 1, 2))
}

func TestInterpolatesNoiselessData(t *testing.T) {
	// With tiny fixed noise and no optimization, GPR must interpolate.
	x := gridX(0, 1, 6)
	y := make([]float64, 6)
	for i := range y {
		y[i] = math.Sin(3 * x.At(i, 0))
	}
	g := New(kernel.NewRBF(0.5, 1), Config{Noise: 1e-5, FixedNoise: true, NoOptimize: true})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mean, std := g.Predict(x)
	for i := range y {
		if math.Abs(mean[i]-y[i]) > 1e-3 {
			t.Fatalf("mean[%d] = %g want %g", i, mean[i], y[i])
		}
		if std[i] > 1e-2 {
			t.Fatalf("std[%d] = %g, expected near zero at training points", i, std[i])
		}
	}
}

func TestPredictionRevertsToPriorFarAway(t *testing.T) {
	x := gridX(0, 1, 5)
	y := []float64{5, 5.1, 4.9, 5.05, 5}
	g := New(kernel.NewRBF(0.3, 1), Config{Noise: 0.05, FixedNoise: true, NoOptimize: true, NormalizeY: true})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Far from data: mean reverts to the training mean, std to ~σ_f.
	mean, std := g.PredictOne([]float64{100})
	if math.Abs(mean-5.01) > 0.1 {
		t.Fatalf("far mean = %g want ~5.01", mean)
	}
	if math.Abs(std-1) > 0.05 {
		t.Fatalf("far std = %g want ~1 (prior σ_f)", std)
	}
}

func TestUncertaintyShrinksWithData(t *testing.T) {
	probe := []float64{0.35}
	cfg := Config{Noise: 0.01, FixedNoise: true, NoOptimize: true}
	f := func(v float64) float64 { return math.Sin(5 * v) }

	build := func(n int) float64 {
		x := gridX(0, 1, n)
		y := make([]float64, n)
		for i := range y {
			y[i] = f(x.At(i, 0))
		}
		g := New(kernel.NewRBF(0.3, 1), cfg)
		if err := g.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		_, std := g.PredictOne(probe)
		return std
	}
	s3, s10, s30 := build(3), build(10), build(30)
	if !(s30 <= s10 && s10 <= s3) {
		t.Fatalf("std not shrinking: %g, %g, %g", s3, s10, s30)
	}
}

func TestHyperparamOptimizationImprovesLML(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 25
	x := gridX(0, 4, n)
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(2*x.At(i, 0)) + 0.05*rng.NormFloat64()
	}
	// Deliberately bad initial hyperparameters.
	fixed := New(kernel.NewRBF(5, 0.1), Config{Noise: 1, NoOptimize: true})
	if err := fixed.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	opt := New(kernel.NewRBF(5, 0.1), Config{Noise: 1, Seed: 2})
	if err := opt.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if opt.LogMarginalLikelihood() <= fixed.LogMarginalLikelihood() {
		t.Fatalf("optimized LML %g not better than fixed %g",
			opt.LogMarginalLikelihood(), fixed.LogMarginalLikelihood())
	}
	// The optimized model should track the signal closely.
	xs := gridX(0.1, 3.9, 20)
	mean, _ := opt.Predict(xs)
	for i := range mean {
		want := math.Sin(2 * xs.At(i, 0))
		if math.Abs(mean[i]-want) > 0.25 {
			t.Fatalf("prediction at %g = %g want ~%g", xs.At(i, 0), mean[i], want)
		}
	}
}

func TestLMLGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d := 12, 2
	x := mat.NewDense(n, d, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = rng.NormFloat64()
	}
	k := kernel.NewRBF(0.8, 1.2)
	logNoise := math.Log(0.3)
	lml0, grad, err := logMarginalLikelihood(k, logNoise, x, y, true)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	// Kernel parameter derivatives.
	p0 := k.Params()
	for tIdx := 0; tIdx < k.NumParams(); tIdx++ {
		p := mat.CopyVec(p0)
		p[tIdx] += h
		k.SetParams(p)
		lp, _, err := logMarginalLikelihood(k, logNoise, x, y, true)
		if err != nil {
			t.Fatal(err)
		}
		p[tIdx] -= 2 * h
		k.SetParams(p)
		lm, _, err := logMarginalLikelihood(k, logNoise, x, y, true)
		if err != nil {
			t.Fatal(err)
		}
		k.SetParams(p0)
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-grad[tIdx]) > 1e-4*math.Max(1, math.Abs(fd)) {
			t.Fatalf("kernel grad[%d] = %g, fd = %g (lml=%g)", tIdx, grad[tIdx], fd, lml0)
		}
	}
	// Noise derivative.
	lp, _, _ := logMarginalLikelihood(k, logNoise+h, x, y, true)
	lm, _, _ := logMarginalLikelihood(k, logNoise-h, x, y, true)
	fd := (lp - lm) / (2 * h)
	if math.Abs(fd-grad[k.NumParams()]) > 1e-4*math.Max(1, math.Abs(fd)) {
		t.Fatalf("noise grad = %g, fd = %g", grad[k.NumParams()], fd)
	}
}

func TestHandlesDuplicateRows(t *testing.T) {
	// Repeated measurements (the dataset's 75 repeats) must not break the
	// factorization.
	x := mat.NewDense(6, 1, []float64{0.5, 0.5, 0.5, 1, 1, 2})
	y := []float64{1.0, 1.1, 0.9, 2.0, 2.1, 3.0}
	g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, Seed: 4})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mean, std := g.PredictOne([]float64{0.5})
	if math.Abs(mean-1.0) > 0.3 {
		t.Fatalf("mean at duplicate = %g want ~1.0", mean)
	}
	if math.IsNaN(std) {
		t.Fatal("NaN std at duplicate")
	}
}

func TestSingleSampleFit(t *testing.T) {
	// n_init = 1 is a first-class scenario in the paper.
	x := mat.NewDense(1, 2, []float64{0.5, 0.5})
	g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, NormalizeY: true})
	if err := g.Fit(x, []float64{3}); err != nil {
		t.Fatal(err)
	}
	mean, _ := g.PredictOne([]float64{0.5, 0.5})
	if math.Abs(mean-3) > 0.5 {
		t.Fatalf("mean = %g want ~3", mean)
	}
	if g.NumTrain() != 1 {
		t.Fatalf("NumTrain = %d", g.NumTrain())
	}
}

func TestWarmStartRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20
	x := gridX(0, 2, n)
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Cos(3*x.At(i, 0)) + 0.02*rng.NormFloat64()
	}
	g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, Seed: 6})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1 := g.Hyperparams()
	// Refit with one more point: warm start keeps hyperparameters nearby.
	x2 := gridX(0, 2.1, n+1)
	y2 := make([]float64, n+1)
	for i := range y2 {
		y2[i] = math.Cos(3*x2.At(i, 0)) + 0.02*rng.NormFloat64()
	}
	g.cfg.Restarts = 0 // pure warm start for the incremental refit
	if err := g.Fit(x2, y2); err != nil {
		t.Fatal(err)
	}
	p2 := g.Hyperparams()
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 2 {
			t.Fatalf("hyperparams jumped: %v -> %v", p1, p2)
		}
	}
}

func TestHyperparamsRoundTrip(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	p := g.Hyperparams()
	p[0] = 0.5
	g.SetHyperparams(p)
	if g.Hyperparams()[0] != 0.5 {
		t.Fatal("SetHyperparams did not stick")
	}
}

func TestSetHyperparamsWrongLenPanics(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.SetHyperparams([]float64{1})
}

func TestDeterminismAcrossFits(t *testing.T) {
	x := gridX(0, 1, 15)
	y := make([]float64, 15)
	for i := range y {
		y[i] = math.Sin(6 * x.At(i, 0))
	}
	run := func() []float64 {
		g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, Seed: 7})
		if err := g.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		m, _ := g.Predict(gridX(0, 1, 5))
		return m
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic fit: %v vs %v", a, b)
		}
	}
}

func TestMaternKernelGP(t *testing.T) {
	x := gridX(0, 1, 12)
	y := make([]float64, 12)
	for i := range y {
		y[i] = x.At(i, 0) * x.At(i, 0)
	}
	g := New(kernel.NewMatern(2.5, 0.5, 1), Config{Noise: 0.01, Seed: 8})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mean, _ := g.PredictOne([]float64{0.5})
	if math.Abs(mean-0.25) > 0.05 {
		t.Fatalf("Matern GP mean = %g want ~0.25", mean)
	}
}

// Property: the posterior mean at a training input lies within a few noise
// standard deviations of the observed target.
func TestPosteriorNearTrainingTargetsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		x := mat.NewDense(n, 1, nil)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x.Set(i, 0, float64(i)+rng.Float64()*0.5)
			y[i] = rng.NormFloat64()
		}
		g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, FixedNoise: true, NoOptimize: true})
		if err := g.Fit(x, y); err != nil {
			return false
		}
		mean, _ := g.Predict(x)
		for i := range y {
			if math.Abs(mean[i]-y[i]) > 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictive std is non-negative and bounded by ~σ_f for the
// stationary prior.
func TestStdBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		x := mat.NewDense(n, 2, nil)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x.Set(i, 0, rng.Float64())
			x.Set(i, 1, rng.Float64())
			y[i] = rng.NormFloat64()
		}
		g := New(kernel.NewRBF(0.5, 2), Config{Noise: 0.1, FixedNoise: true, NoOptimize: true})
		if err := g.Fit(x, y); err != nil {
			return false
		}
		probe := mat.NewDense(1, 2, []float64{rng.Float64() * 3, rng.Float64() * 3})
		_, std := g.Predict(probe)
		return std[0] >= 0 && std[0] <= 2+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit100(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := 100
	x := mat.NewDense(n, 5, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, Restarts: -1, MaxIter: 20, Seed: 1})
		if err := g.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict100x200(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	n := 100
	x := mat.NewDense(n, 5, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = rng.NormFloat64()
	}
	g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, NoOptimize: true})
	if err := g.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	xs := mat.NewDense(200, 5, nil)
	for i := 0; i < 200; i++ {
		for j := 0; j < 5; j++ {
			xs.Set(i, j, rng.Float64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(xs)
	}
}
