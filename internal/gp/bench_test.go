package gp

import (
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

var gpBenchSizes = []struct {
	name string
	n    int
}{
	{"50", 50},
	{"200", 200},
	{"600", 600},
	{"1920", 1920},
}

func benchTraining(n, d int) (*mat.Dense, []float64) {
	rng := rand.New(rand.NewSource(int64(n)))
	x := mat.NewDense(n, d, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = row[0]*row[0] + 0.1*rng.NormFloat64()
	}
	return x, y
}

// BenchmarkFitNoOpt measures Fit with hyperparameter optimization off:
// kernel-matrix assembly + Cholesky factorization + the alpha solve. This is
// the acceptance-criteria benchmark at n=600.
func BenchmarkFitNoOpt(b *testing.B) {
	for _, bs := range gpBenchSizes {
		if testing.Short() && bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x, y := benchTraining(bs.n, 2)
			g := New(kernel.NewRBF(1, 1), Config{NoOptimize: true, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitLMLGradient isolates one LML+gradient evaluation, the unit of
// work inside every L-BFGS iteration of hyperparameter optimization.
func BenchmarkFitLMLGradient(b *testing.B) {
	for _, bs := range gpBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x, y := benchTraining(bs.n, 2)
			k := kernel.NewRBF(1, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := logMarginalLikelihood(k, -1, x, y, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPredict(b *testing.B) {
	for _, bs := range gpBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x, y := benchTraining(bs.n, 2)
			g := New(kernel.NewRBF(1, 1), Config{NoOptimize: true, Seed: 1})
			if err := g.Fit(x, y); err != nil {
				b.Fatal(err)
			}
			xs, _ := benchTraining(256, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Predict(xs)
			}
		})
	}
}

// BenchmarkAppend measures absorbing one sample into a fitted model of size
// n, the per-iteration fast path of Algorithm 1.
func BenchmarkAppend(b *testing.B) {
	for _, bs := range gpBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x, y := benchTraining(bs.n, 2)
			g := New(kernel.NewRBF(1, 1), Config{NoOptimize: true, Seed: 1})
			if err := g.Fit(x, y); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			pt := []float64{rng.NormFloat64(), rng.NormFloat64()}
			b.ResetTimer()
			// Rebuild the model after bursts of 64 appends so the measured
			// size stays ~n regardless of b.N (otherwise the model grows
			// with the iteration count and the cost drifts quadratically).
			appended := 0
			for i := 0; i < b.N; i++ {
				if appended == 64 {
					b.StopTimer()
					g = New(kernel.NewRBF(1, 1), Config{NoOptimize: true, Seed: 1})
					if err := g.Fit(x, y); err != nil {
						b.Fatal(err)
					}
					appended = 0
					b.StartTimer()
				}
				if err := g.Append(pt, 1.5); err != nil {
					b.Fatal(err)
				}
				appended++
			}
		})
	}
}

// BenchmarkAppendGrowth measures a burst of appends from n to n+64, the
// pattern an AL trajectory actually executes between refits; it is the
// benchmark for the amortized-growth satellite fix.
func BenchmarkAppendGrowth(b *testing.B) {
	for _, bs := range gpBenchSizes {
		if bs.n > 600 {
			continue
		}
		b.Run(bs.name, func(b *testing.B) {
			x, y := benchTraining(bs.n, 2)
			g := New(kernel.NewRBF(1, 1), Config{NoOptimize: true, Seed: 1})
			if err := g.Fit(x, y); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(10))
			pts := make([][]float64, 64)
			for i := range pts {
				pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gi := New(kernel.NewRBF(1, 1), Config{NoOptimize: true, Seed: 1})
				if err := gi.Fit(x, y); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, p := range pts {
					if err := gi.Append(p, 1.5); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
