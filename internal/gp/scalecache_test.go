package gp

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// smallEqTol pins the small-size equivalence contract: with the
// approximation degrees of freedom saturated (sparse k=n, treed
// leafSize>=n) the scalable surrogates must reproduce the exact GP.
const smallEqTol = 1e-8

// extendTol pins Sherman-Morrison-extended sparse cache state against a
// direct Predict. The extend is algebraically exact but rounds differently
// from a fresh solve, so it is close rather than bitwise; every
// Refit/projection resynchronizes exactly (see SparseScoringCache).
const extendTol = 1e-8

func scaleTrainingSet(rng *rand.Rand, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*3, rng.Float64()*3
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Sin(2*a)*math.Cos(b) + 0.1*a
	}
	return x, y
}

// TestSparseFullInducingMatchesExactTight: with every training point
// inducing, the SoR posterior mean is algebraically the exact GP mean
// everywhere, and the SoR variance coincides with the exact posterior
// variance at the training points themselves.
func TestSparseFullInducingMatchesExactTight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := scaleTrainingSet(rng, 30)
	cfg := Config{Noise: 0.1, FixedNoise: true, NoOptimize: true, NormalizeY: false}
	sp := NewSparse(kernel.NewRBF(0.6, 1.1), cfg, 30)
	ex := New(kernel.NewRBF(0.6, 1.1), cfg)
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := ex.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if sp.NumInducing() != 30 {
		t.Fatalf("inducing set %d, want all 30", sp.NumInducing())
	}
	probe, _ := scaleTrainingSet(rng, 12)
	ms, _ := sp.Predict(probe)
	me, _ := ex.Predict(probe)
	for i := range ms {
		if math.Abs(ms[i]-me[i]) > smallEqTol {
			t.Fatalf("off-data mean[%d]: sparse %.12g exact %.12g", i, ms[i], me[i])
		}
	}
	// At training points the Nystrom approximation K_nm K_mm^-1 K_mn is
	// exact, so the predictive variance matches too.
	ms, ss := sp.Predict(x)
	me, se := ex.Predict(x)
	for i := range ms {
		if math.Abs(ms[i]-me[i]) > smallEqTol || math.Abs(ss[i]-se[i]) > smallEqTol {
			t.Fatalf("train point %d: sparse (%.12g, %.12g) exact (%.12g, %.12g)",
				i, ms[i], ss[i], me[i], se[i])
		}
	}
}

// TestTreedSingleLeafMatchesExactTight: with leafSize >= n the tree never
// splits, so the treed surrogate is one exact GP and must agree with it.
func TestTreedSingleLeafMatchesExactTight(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := scaleTrainingSet(rng, 40)
	cfg := Config{Noise: 0.05, NoOptimize: true}
	td := NewTreed(kernel.NewRBF(0.6, 1.1), cfg, 64)
	ex := New(kernel.NewRBF(0.6, 1.1), cfg)
	if err := td.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := ex.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe, _ := scaleTrainingSet(rng, 15)
	mt, st := td.Predict(probe)
	me, se := ex.Predict(probe)
	for i := range mt {
		if math.Abs(mt[i]-me[i]) > smallEqTol || math.Abs(st[i]-se[i]) > smallEqTol {
			t.Fatalf("probe %d: treed (%.12g, %.12g) exact (%.12g, %.12g)",
				i, mt[i], st[i], me[i], se[i])
		}
	}
}

func fitScaleSparse(t *testing.T, rng *rand.Rand, n, m int) *Sparse {
	t.Helper()
	x, y := scaleTrainingSet(rng, n)
	s := NewSparse(kernel.NewRBF(0.7, 1.0), Config{Noise: 0.08, FixedNoise: true, NoOptimize: true}, m)
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSparseCacheRebuildBitwiseVsPredict: a freshly built (or freshly
// invalidated) sparse cache computes each candidate with exactly Predict's
// arithmetic, so the agreement is bitwise, not approximate.
func TestSparseCacheRebuildBitwiseVsPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := fitScaleSparse(t, rng, 60, 24)
	pool, _ := scaleTrainingSet(rng, 200)
	c := NewSparseScoringCache(s, pool)
	defer c.Close()
	mu, sigma := c.Scores()
	wantMu, wantSigma := s.Predict(pool)
	if !bitwiseEq(mu, wantMu) || !bitwiseEq(sigma, wantSigma) {
		t.Fatal("rebuilt sparse cache is not bitwise-identical to Predict")
	}
}

// TestSparseCacheExtendTracksPredict: across a schedule of appends the
// Sherman-Morrison-extended cache stays within extendTol of direct
// scoring, and a Refit resynchronizes it bitwise.
func TestSparseCacheExtendTracksPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := fitScaleSparse(t, rng, 50, 20)
	pool, _ := scaleTrainingSet(rng, 150)
	c := NewSparseScoringCache(s, pool)
	defer c.Close()
	c.Scores() // prime the cache so appends extend rather than rebuild

	for step := 0; step < 12; step++ {
		xs := []float64{rng.Float64() * 3, rng.Float64() * 3}
		if err := s.Append(xs, math.Sin(2*xs[0])*math.Cos(xs[1])); err != nil {
			t.Fatal(err)
		}
		mu, sigma := c.Scores()
		wantMu, wantSigma := s.Predict(pool)
		for i := range mu {
			if math.Abs(mu[i]-wantMu[i]) > extendTol || math.Abs(sigma[i]-wantSigma[i]) > extendTol {
				t.Fatalf("step %d candidate %d: extended (%.12g, %.12g) direct (%.12g, %.12g)",
					step, i, mu[i], sigma[i], wantMu[i], wantSigma[i])
			}
		}
	}

	// Refit reprojects the model and invalidates the cache; the next
	// Scores rebuilds through the Predict-identical path.
	if err := s.Refit(); err != nil {
		t.Fatal(err)
	}
	mu, sigma := c.Scores()
	wantMu, wantSigma := s.Predict(pool)
	if !bitwiseEq(mu, wantMu) || !bitwiseEq(sigma, wantSigma) {
		t.Fatal("post-refit sparse cache is not bitwise-identical to Predict")
	}
}

// TestSparseCacheRemove: swap-delete keeps surviving candidates aligned
// with direct scoring of the surviving pool.
func TestSparseCacheRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := fitScaleSparse(t, rng, 40, 16)
	pool, _ := scaleTrainingSet(rng, 60)
	live := make([][]float64, pool.Rows())
	for i := range live {
		live[i] = append([]float64(nil), pool.Row(i)...)
	}
	c := NewSparseScoringCache(s, pool)
	defer c.Close()
	for _, p := range []int{40, 0, 17, 17, 5} {
		c.Remove(p)
		live = append(live[:p], live[p+1:]...)
		if c.Len() != len(live) {
			t.Fatalf("cache len %d, want %d", c.Len(), len(live))
		}
		mu, sigma := c.Scores()
		wantMu, wantSigma := s.Predict(denseOf(live))
		if !bitwiseEq(mu, wantMu) || !bitwiseEq(sigma, wantSigma) {
			t.Fatal("post-remove sparse cache diverged from Predict over survivors")
		}
	}
}

// TestTreedCacheMatchesPredict: the per-leaf-routed cache reproduces
// Treed.Predict over the pool within the exact-cache tolerance (per-leaf
// ScoringCaches group the flat solve differently from PredictOne).
func TestTreedCacheMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y := scaleTrainingSet(rng, 120)
	td := NewTreed(kernel.NewRBF(0.6, 1.0), Config{Noise: 0.05, NoOptimize: true}, 24)
	if err := td.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pool, _ := scaleTrainingSet(rng, 180)
	c := NewTreedScoringCache(td, pool)
	defer c.Close()
	mu, sigma := c.Scores()
	wantMu, wantSigma := td.Predict(pool)
	for i := range mu {
		if math.Abs(mu[i]-wantMu[i]) > scoringTol || math.Abs(sigma[i]-wantSigma[i]) > scoringTol {
			t.Fatalf("candidate %d: cached (%.17g, %.17g) Predict (%.17g, %.17g)",
				i, mu[i], sigma[i], wantMu[i], wantSigma[i])
		}
	}
}

// TestTreedCacheExtendMatchesRebuildBitwise: an incrementally maintained
// treed cache — extended through appends, re-routed through resplits,
// compacted through removals — is bitwise-identical to a cache built fresh
// against the final model and pool. This inherits the exact-GP cache's
// extend==rebuild contract leaf by leaf.
func TestTreedCacheExtendMatchesRebuildBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y := scaleTrainingSet(rng, 90)
	td := NewTreed(kernel.NewRBF(0.6, 1.0), Config{Noise: 0.05, NoOptimize: true}, 16)
	if err := td.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pool, _ := scaleTrainingSet(rng, 140)
	live := make([][]float64, pool.Rows())
	for i := range live {
		live[i] = append([]float64(nil), pool.Row(i)...)
	}
	c := NewTreedScoringCache(td, pool)
	defer c.Close()
	c.Scores()

	// Enough appends to force at least one leaf past rebalance*leafSize.
	for step := 0; step < 40; step++ {
		xs := []float64{rng.Float64() * 3, rng.Float64() * 3}
		if err := td.Append(xs, math.Sin(2*xs[0])*math.Cos(xs[1])); err != nil {
			t.Fatal(err)
		}
		if step%7 == 3 {
			p := rng.Intn(len(live))
			c.Remove(p)
			live = append(live[:p], live[p+1:]...)
		}
		mu, sigma := c.Scores()
		fresh := NewTreedScoringCache(td, denseOf(live))
		wantMu, wantSigma := fresh.Scores()
		if !bitwiseEq(mu, wantMu) || !bitwiseEq(sigma, wantSigma) {
			fresh.Close()
			t.Fatalf("step %d: incrementally maintained treed cache diverged from fresh build", step)
		}
		fresh.Close()
	}
}

// TestPoolCacheFactory: NewPoolCache routes each surrogate family to its
// cache implementation and declines unknown model types.
func TestPoolCacheFactory(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x, y := scaleTrainingSet(rng, 30)
	pool, _ := scaleTrainingSet(rng, 10)
	cfg := Config{Noise: 0.05, NoOptimize: true}

	ex := New(kernel.NewRBF(0.5, 1), cfg)
	if err := ex.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, ok := NewPoolCache(ex, pool).(*ScoringCache); !ok {
		t.Fatal("exact GP did not get a ScoringCache")
	}

	sp := NewSparse(kernel.NewRBF(0.5, 1), cfg, 12)
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, ok := NewPoolCache(sp, pool).(*SparseScoringCache); !ok {
		t.Fatal("sparse model did not get a SparseScoringCache")
	}

	td := NewTreed(kernel.NewRBF(0.5, 1), cfg, 16)
	if err := td.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, ok := NewPoolCache(td, pool).(*TreedScoringCache); !ok {
		t.Fatal("treed model did not get a TreedScoringCache")
	}

	if c := NewPoolCache(nil, pool); c != nil {
		t.Fatal("unknown model type should yield a nil cache")
	}
}
