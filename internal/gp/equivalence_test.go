package gp

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

func withWorkers(n int, fn func()) {
	prev := mat.SetWorkers(n)
	defer mat.SetWorkers(prev)
	fn()
}

func bitwiseEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqTrainingSet(rng *rand.Rand, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2, nil)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64()*4)
		x.Set(i, 1, rng.Float64()*4)
		y[i] = math.Sin(x.At(i, 0)) * math.Cos(x.At(i, 1))
	}
	return x, y
}

// The end-to-end guarantee: a full fit (hyperopt on), prediction, and a burst
// of incremental appends produce bitwise-identical state regardless of the
// worker count. Sizes straddle the Cholesky panel width.
func TestFitSerialParallelIdentical(t *testing.T) {
	sizes := []int{10, 63, 65, 130}
	if testing.Short() {
		sizes = []int{10, 65}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		x, y := eqTrainingSet(rng, n)
		xtest, _ := eqTrainingSet(rand.New(rand.NewSource(int64(n)+99)), 17)

		run := func(workers int) (alpha, mean, std []float64, lml float64) {
			var g *GP
			withWorkers(workers, func() {
				g = New(kernel.NewRBF(1, 1), Config{Noise: 1e-2})
				if err := g.Fit(x, y); err != nil {
					t.Fatalf("n=%d workers=%d: Fit: %v", n, workers, err)
				}
				mean, std = g.Predict(xtest)
			})
			return append([]float64(nil), g.alpha...), mean, std, g.lml
		}
		aS, mS, sS, lmlS := run(1)
		aP, mP, sP, lmlP := run(8)
		if lmlS != lmlP {
			t.Fatalf("n=%d: LML differs across worker counts: %v vs %v", n, lmlS, lmlP)
		}
		if !bitwiseEq(aS, aP) {
			t.Fatalf("n=%d: alpha differs across worker counts", n)
		}
		if !bitwiseEq(mS, mP) || !bitwiseEq(sS, sP) {
			t.Fatalf("n=%d: predictions differ across worker counts", n)
		}
	}
}

func TestAppendSerialParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := eqTrainingSet(rng, 60)
	extra, ey := eqTrainingSet(rand.New(rand.NewSource(6)), 20)

	run := func(workers int) (alpha []float64, lml float64) {
		var g *GP
		withWorkers(workers, func() {
			g = New(kernel.NewRBF(1, 1), Config{Noise: 1e-2, NoOptimize: true})
			if err := g.Fit(x, y); err != nil {
				t.Fatalf("workers=%d: Fit: %v", workers, err)
			}
			for i := 0; i < extra.Rows(); i++ {
				if err := g.Append(extra.Row(i), ey[i]); err != nil {
					t.Fatalf("workers=%d: Append %d: %v", workers, i, err)
				}
			}
		})
		return append([]float64(nil), g.alpha...), g.lml
	}
	aS, lmlS := run(1)
	aP, lmlP := run(8)
	if lmlS != lmlP {
		t.Fatalf("LML after appends differs across worker counts: %v vs %v", lmlS, lmlP)
	}
	if !bitwiseEq(aS, aP) {
		t.Fatal("alpha after appends differs across worker counts")
	}
}
