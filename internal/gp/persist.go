package gp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// savedModel is the JSON schema for a persisted GP.
type savedModel struct {
	Version    int         `json:"version"`
	KernelType string      `json:"kernel_type"`
	Nu         float64     `json:"nu,omitempty"`
	Dims       int         `json:"dims"`
	Params     []float64   `json:"kernel_params"` // log space
	LogNoise   float64     `json:"log_noise"`
	YMean      float64     `json:"y_mean"`
	X          [][]float64 `json:"x"`
	Y          []float64   `json:"y"` // uncentred targets
}

// Save serializes a fitted GP (kernel, hyperparameters, training data) as
// JSON. The posterior is reconstructed on Load, so only O(n·d) state is
// stored.
func (g *GP) Save(w io.Writer) error {
	if !g.fitted {
		return fmt.Errorf("gp: Save before Fit")
	}
	sm := savedModel{
		Version:  1,
		Params:   g.kern.Params(),
		LogNoise: g.logNoise,
		YMean:    g.yMean,
		Dims:     g.x.Cols(),
	}
	switch k := g.kern.(type) {
	case *kernel.RBF:
		sm.KernelType = "rbf"
	case *kernel.ARDRBF:
		sm.KernelType = "ardrbf"
	case *kernel.Matern:
		sm.KernelType = "matern"
		sm.Nu = k.Nu()
	default:
		return fmt.Errorf("gp: cannot persist kernel type %T", g.kern)
	}
	n := g.x.Rows()
	sm.X = make([][]float64, n)
	sm.Y = make([]float64, n)
	for i := 0; i < n; i++ {
		sm.X[i] = mat.CopyVec(g.x.Row(i))
		sm.Y[i] = g.y[i] + g.yMean
	}
	enc := json.NewEncoder(w)
	return enc.Encode(sm)
}

// Load reconstructs a GP persisted with Save. The returned model is ready
// for Predict/Append; its hyperparameters are exactly those saved (no
// re-optimization happens).
func Load(r io.Reader) (*GP, error) {
	var sm savedModel
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("gp: decoding model: %w", err)
	}
	if sm.Version != 1 {
		return nil, fmt.Errorf("gp: unsupported model version %d", sm.Version)
	}
	if len(sm.X) == 0 || len(sm.X) != len(sm.Y) {
		return nil, fmt.Errorf("gp: corrupt model: %d inputs, %d targets", len(sm.X), len(sm.Y))
	}

	var k kernel.Kernel
	switch sm.KernelType {
	case "rbf":
		k = kernel.NewRBF(1, 1)
	case "ardrbf":
		if sm.Dims < 1 {
			return nil, fmt.Errorf("gp: ARD kernel with dims %d", sm.Dims)
		}
		ls := make([]float64, sm.Dims)
		for i := range ls {
			ls[i] = 1
		}
		k = kernel.NewARDRBF(ls, 1)
	case "matern":
		k = kernel.NewMatern(sm.Nu, 1, 1)
	default:
		return nil, fmt.Errorf("gp: unknown kernel type %q", sm.KernelType)
	}
	if len(sm.Params) != k.NumParams() {
		return nil, fmt.Errorf("gp: kernel %q expects %d params, got %d", sm.KernelType, k.NumParams(), len(sm.Params))
	}
	k.SetParams(sm.Params)

	g := New(k, Config{
		Noise:      math.Exp(sm.LogNoise),
		NoOptimize: true,
		NormalizeY: sm.YMean != 0,
	})
	g.logNoise = sm.LogNoise

	n, d := len(sm.X), sm.Dims
	x := mat.NewDense(n, d, nil)
	for i, row := range sm.X {
		if len(row) != d {
			return nil, fmt.Errorf("gp: row %d has %d dims, want %d", i, len(row), d)
		}
		copy(x.Row(i), row)
	}
	if err := g.Fit(x, sm.Y); err != nil {
		return nil, err
	}
	// Fit recomputed yMean from the data when NormalizeY; restore the exact
	// saved centring so predictions reproduce bit-for-bit behaviour of the
	// saved model's hyperparameters.
	if g.yMean != sm.YMean {
		g.yMean = sm.YMean
		for i := range g.y {
			g.y[i] = sm.Y[i] - sm.YMean
		}
		if err := g.precompute(); err != nil {
			return nil, err
		}
	}
	return g, nil
}
